package repro

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/dispatch"
	"repro/internal/exp"
	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/sp"
)

// BenchmarkIngressThroughput: the concurrent front door end to end — N
// producer goroutines push the workload through the gateway's per-shard
// queues and the stamped-order drain feeds the dispatch engine. It
// reports matched requests/second and the p99 ingress wait for 1 vs. N
// producers, with gomaxprocs so single-core results aren't misread (on a
// one-CPU host producers time-slice, so extra producers measure fan-in
// overhead, not parallel speedup). Run under -race in CI so the full
// producer/drain fan-in runs under the detector on every push.
func BenchmarkIngressThroughput(b *testing.B) {
	world, err := exp.BuildWorld(exp.WorldOptions{Scale: 0.008, Trips: 200, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	const fleet = 400
	for _, producers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("producers=%d", producers), func(b *testing.B) {
			var p99 time.Duration
			var m *sim.Metrics
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := sim.Config{
					Graph:     world.Graph,
					Servers:   fleet,
					Capacity:  4,
					Algorithm: sim.AlgoTreeSlack,
					Seed:      9,
					Workers:   4,
					Oracle: cache.NewShared(func() sp.Oracle {
						return sp.NewBidirectional(world.Graph)
					}, world.Graph.N(), 1<<20, 1<<12, 0),
				}
				e, err := dispatch.New(cfg, nil)
				if err != nil {
					b.Fatal(err)
				}
				gw := ingest.New(ingest.Config{Queues: e.Shards(), Depth: 64, Policy: ingest.Block})
				src := ingest.SliceSource(world.Requests)
				b.StartTimer()
				driveErr := make(chan error, 1)
				go func() { driveErr <- ingest.Drive(gw, &src, producers) }()
				gw.Drain(func(r sim.Request) { e.Submit(r) })
				b.StopTimer()
				if err := <-driveErr; err != nil {
					b.Fatalf("drive: %v", err)
				}
				m = e.Metrics()
				gw.MetricsInto(m)
				if m.Admitted != len(world.Requests) || m.Shed() != 0 {
					b.Fatalf("admitted %d, shed %d — blocking gateway must be lossless", m.Admitted, m.Shed())
				}
				if m.Matched == 0 {
					b.Fatal("nothing matched")
				}
				p99 = m.IngressWaitP99()
				e.Close()
				b.StartTimer()
			}
			reqPerSec := float64(len(world.Requests)) * float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(reqPerSec, "req/s")
			b.ReportMetric(float64(p99.Microseconds()), "p99-ingress-wait-µs")
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
			if dir := obs.BenchDir(); dir != "" {
				r := obs.NewBenchResult(fmt.Sprintf("ingress_throughput_producers%d", producers))
				r.Metrics["req_per_sec"] = reqPerSec
				r.Metrics["p99_ingress_wait_ns"] = float64(p99.Nanoseconds())
				r.Metrics["p99_match_latency_ns"] = float64(m.MatchLatency.Quantile(0.99))
				r.Metrics["dist_cache_hit_rate"] = m.DistCacheHitRate()
				if err := obs.WriteBench(dir, r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// Deadline-shed mode: the gateway must never hand the engine a
	// request whose service-guarantee window is already blown. The
	// producers finish before the drain starts (queue capacity exceeds
	// the stream), so the gateway clock is final and the handoff-lag
	// assertion is exact.
	b.Run("deadline-shed", func(b *testing.B) {
		const wait = 600
		var admitted, shed int
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cfg := sim.Config{
				Graph:       world.Graph,
				Servers:     fleet,
				Capacity:    4,
				WaitSeconds: wait,
				Algorithm:   sim.AlgoTreeSlack,
				Seed:        9,
				Workers:     4,
				Oracle: cache.NewShared(func() sp.Oracle {
					return sp.NewBidirectional(world.Graph)
				}, world.Graph.N(), 1<<20, 1<<12, 0),
			}
			e, err := dispatch.New(cfg, nil)
			if err != nil {
				b.Fatal(err)
			}
			gw := ingest.New(ingest.Config{
				Queues:      e.Shards(),
				Depth:       len(world.Requests),
				Policy:      ingest.ShedDeadline,
				WaitSeconds: wait,
			})
			src := ingest.SliceSource(world.Requests)
			b.StartTimer()
			if err := ingest.Drive(gw, &src, 4); err != nil {
				b.Fatalf("drive: %v", err)
			}
			gw.Drain(func(r sim.Request) {
				if lag := gw.Now() - r.Time; lag > wait {
					b.Fatalf("request %d handed off %.0f s late (window %d s)", r.ID, lag, wait)
				}
				e.Submit(r)
			})
			b.StopTimer()
			m := gw.Metrics()
			admitted, shed = m.Admitted, m.ShedDeadline
			if admitted+shed != len(world.Requests) {
				b.Fatalf("admitted %d + shed %d != %d submissions", admitted, shed, len(world.Requests))
			}
			e.Close()
			b.StartTimer()
		}
		b.ReportMetric(float64(admitted), "admitted")
		b.ReportMetric(float64(shed), "deadline-shed")
		b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
	})
}
