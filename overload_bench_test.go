package repro

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/dispatch"
	"repro/internal/exp"
	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/sp"
)

// overloadStep is one point on a degradation curve.
type overloadStep struct {
	mult       int
	offered    int     // requests actually offered
	goodputRPS float64 // within-SLO matched requests per wall second
	rawRPS     float64 // matched per wall second, SLO ignored
	shedRate   float64 // shed fraction of offered
	p99MatchNs float64
}

// BenchmarkOverloadDegradation sweeps offered load from 1x to 8x of the
// measured matcher capacity and records the goodput curve for the fixed
// queue-depth policy (ShedOldest) versus SLO-driven adaptive admission.
// The fixed arm's goodput is discounted to its within-wall-SLO fraction
// (CountAtOrBelow over the ingress-wait histogram); the adaptive arm's
// releases are within-SLO by construction, so its goodput is its matched
// rate. Degradation acceptance: adaptive goodput at every multiplier
// stays >= 90% of its own 1x value — overload degrades the curve
// smoothly instead of cliff-diving.
//
// Simulated time advances 2 requests per simulated second at every
// multiplier, so fleet occupancy (and per-request matching cost) is the
// same at 1x and 8x: the only variable across the sweep is wall-clock
// arrival pressure on the gateway.
func BenchmarkOverloadDegradation(b *testing.B) {
	world, err := exp.BuildWorld(exp.WorldOptions{Scale: 0.008, Trips: 400, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	const (
		fleet    = 400
		slo      = 250 * time.Millisecond
		simDt    = 0.5 // simulated seconds between consecutive requests
		stepWall = 500 * time.Millisecond
		maxReqs  = 500_000
	)

	newEngine := func() *dispatch.Engine {
		cfg := sim.Config{
			Graph:     world.Graph,
			Servers:   fleet,
			Capacity:  4,
			Algorithm: sim.AlgoTreeSlack,
			Seed:      9,
			Workers:   4,
			Oracle: cache.NewShared(func() sp.Oracle {
				return sp.NewBidirectional(world.Graph)
			}, world.Graph.N(), 1<<20, 1<<12, 0),
		}
		e, err := dispatch.New(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		return e
	}
	makeReqs := func(n int) []sim.Request {
		reqs := make([]sim.Request, n)
		for i := range reqs {
			w := world.Requests[i%len(world.Requests)]
			reqs[i] = sim.Request{
				ID:      int64(i),
				Time:    float64(i) * simDt,
				Pickup:  w.Pickup,
				Dropoff: w.Dropoff,
			}
		}
		return reqs
	}

	// Capacity calibration: unthrottled direct submission measures the
	// matcher's service rate mu with the same request mix and simulated
	// time density the sweep uses.
	calibrate := func() float64 {
		e := newEngine()
		defer e.Close()
		reqs := makeReqs(maxReqs)
		start := time.Now()
		n := 0
		for time.Since(start) < 400*time.Millisecond && n < len(reqs) {
			e.Submit(reqs[n])
			n++
		}
		return float64(n) / time.Since(start).Seconds()
	}

	// runStep offers `mult x mu` for stepWall through one gateway policy
	// and returns the degradation-curve point.
	runStep := func(policy ingest.Policy, mu float64, mult int) overloadStep {
		offered := mu * float64(mult)
		n := int(offered * stepWall.Seconds())
		if n > maxReqs {
			n = maxReqs
		}
		if n < 1 {
			n = 1
		}
		reqs := makeReqs(n)
		e := newEngine()
		defer e.Close()
		gw := ingest.New(ingest.Config{
			Queues:  e.Shards(),
			Depth:   256,
			Policy:  policy,
			WallSLO: slo,
		})
		start := time.Now()
		go func() {
			// Open-loop paced producer: bursts on a 2ms tick hold the
			// offered rate regardless of what the gateway does with the
			// requests (both policies admit without blocking).
			p := gw.Producers(1)[0]
			i := 0
			for i < len(reqs) {
				target := int(offered * time.Since(start).Seconds())
				for ; i <= target && i < len(reqs); i++ {
					p.Submit(reqs[i])
				}
				time.Sleep(2 * time.Millisecond)
			}
			p.Close()
		}()
		matched := 0
		gw.Drain(func(r sim.Request) {
			if ok, _ := e.Submit(r); ok {
				matched++
			}
		})
		wall := time.Since(start).Seconds()
		m := e.Metrics()
		gw.MetricsInto(m)

		raw := float64(matched) / wall
		goodput := raw
		if policy != ingest.Adaptive {
			// Discount served-but-late: the fraction of releases whose
			// gateway residence met the wall SLO. Adaptive sheds those at
			// handoff, so its matched count is already within-SLO.
			if total := m.IngressWait.Count(); total > 0 {
				goodput = raw * float64(m.IngressWait.CountAtOrBelow(slo.Nanoseconds())) / float64(total)
			}
		}
		return overloadStep{
			mult:       mult,
			offered:    n,
			goodputRPS: goodput,
			rawRPS:     raw,
			shedRate:   float64(m.Shed()) / float64(n),
			p99MatchNs: float64(m.MatchLatency.Quantile(0.99)),
		}
	}

	mults := []int{1, 2, 4, 8}
	var fixed, adaptive []overloadStep
	var mu float64
	for i := 0; i < b.N; i++ {
		mu = calibrate()
		fixed = fixed[:0]
		adaptive = adaptive[:0]
		for _, k := range mults {
			fixed = append(fixed, runStep(ingest.ShedOldest, mu, k))
			adaptive = append(adaptive, runStep(ingest.Adaptive, mu, k))
		}
		base := adaptive[0].goodputRPS
		for _, s := range adaptive[1:] {
			if s.goodputRPS < 0.9*base {
				b.Fatalf("adaptive goodput cliff: %.0f req/s at %dx vs %.0f req/s at 1x (< 90%%)",
					s.goodputRPS, s.mult, base)
			}
		}
	}

	b.ReportMetric(mu, "capacity-req/s")
	b.ReportMetric(adaptive[0].goodputRPS, "adaptive-goodput-1x")
	b.ReportMetric(adaptive[len(adaptive)-1].goodputRPS, "adaptive-goodput-8x")
	b.ReportMetric(fixed[len(fixed)-1].goodputRPS, "fixed-goodput-8x")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
	for _, s := range adaptive {
		b.Logf("adaptive %dx: offered=%d goodput=%.0f raw=%.0f shed=%.2f p99match=%.2fms",
			s.mult, s.offered, s.goodputRPS, s.rawRPS, s.shedRate, s.p99MatchNs/1e6)
	}
	for _, s := range fixed {
		b.Logf("fixed    %dx: offered=%d goodput=%.0f raw=%.0f shed=%.2f p99match=%.2fms",
			s.mult, s.offered, s.goodputRPS, s.rawRPS, s.shedRate, s.p99MatchNs/1e6)
	}

	if dir := obs.BenchDir(); dir != "" {
		r := obs.NewBenchResult("Overload")
		r.Metrics["capacity_req_per_sec"] = mu
		record := func(arm string, steps []overloadStep) {
			for _, s := range steps {
				prefix := fmt.Sprintf("%s_x%d_", arm, s.mult)
				r.Metrics[prefix+"goodput_req_per_sec"] = s.goodputRPS
				r.Metrics[prefix+"raw_matched_req_per_sec"] = s.rawRPS
				r.Metrics[prefix+"shed_rate"] = s.shedRate
				r.Metrics[prefix+"p99_match_latency_ns"] = s.p99MatchNs
			}
		}
		record("adaptive", adaptive)
		record("fixed", fixed)
		if err := obs.WriteBench(dir, r); err != nil {
			b.Fatal(err)
		}
	}
}
