// Command benchcheck validates benchmark result files. It globs
// BENCH_*.json in each directory argument (default ".") and
// schema-checks every file with obs.ValidateBench, printing a one-line
// summary per result. It exits nonzero when a file is malformed or — with
// -min-files — when fewer results than expected were found, so CI's
// benchmark smoke step fails loudly instead of silently emitting nothing.
//
//	BENCH_JSON_DIR=out go test -bench BenchmarkDispatchThroughput -benchtime 1x .
//	benchcheck -min-files 4 out
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/obs"
)

func main() {
	minFiles := flag.Int("min-files", 1, "fail unless at least this many BENCH_*.json files are found")
	flag.Parse()

	dirs := flag.Args()
	if len(dirs) == 0 {
		dirs = []string{"."}
	}
	var files []string
	for _, dir := range dirs {
		fs, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
		if err != nil {
			fatal(err)
		}
		files = append(files, fs...)
	}
	sort.Strings(files)

	bad := 0
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			fatal(err)
		}
		r, err := obs.ValidateBench(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", f, err)
			bad++
			continue
		}
		fmt.Printf("%s: %s @ %s (%d metrics, gomaxprocs %d)\n",
			filepath.Base(f), r.Name, short(r.GitSHA), len(r.Metrics), r.GOMAXPROCS)
	}
	if bad > 0 {
		fatal(fmt.Errorf("%d of %d result files malformed", bad, len(files)))
	}
	if len(files) < *minFiles {
		fatal(fmt.Errorf("found %d BENCH_*.json files, want at least %d", len(files), *minFiles))
	}
}

func short(sha string) string {
	if len(sha) > 12 {
		return sha[:12]
	}
	return sha
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcheck:", err)
	os.Exit(1)
}
