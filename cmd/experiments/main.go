// Command experiments regenerates the paper's evaluation tables and figures
// (see DESIGN.md §4 for the experiment index). Example:
//
//	experiments -scale 0.02 -exp table1,fig6a
//	experiments -scale 0.05 -exp all -out results.txt
//
// Absolute times depend on the host; the shapes (who wins, by what factor)
// are what the experiments reproduce.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/exp"
)

func main() {
	var (
		charts      = flag.Bool("charts", false, "render sweep experiments as ASCII charts too")
		scale       = flag.Float64("scale", 0.02, "world size relative to the paper's Shanghai setup (1.0 = 122k vertices, 432k trips)")
		expList     = flag.String("exp", "all", "comma-separated experiment IDs, or 'all' (available: "+strings.Join(exp.AllIDs(), ", ")+")")
		trips       = flag.Int("trips", 0, "override the scaled trip count")
		maxRequests = flag.Int("max-requests", 0, "truncate the request stream per run (bounds slow baselines)")
		seed        = flag.Int64("seed", 1, "world seed")
		outPath     = flag.String("out", "", "write tables to this file instead of stdout")
		verbose     = flag.Bool("v", false, "log each simulation run to stderr")
	)
	flag.Parse()

	if err := run(*scale, *expList, *trips, *maxRequests, *seed, *outPath, *verbose, *charts); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(scale float64, expList string, trips, maxRequests int, seed int64, outPath string, verbose, charts bool) error {
	var out io.Writer = os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	var vlog io.Writer
	if verbose {
		vlog = os.Stderr
	}

	start := time.Now()
	world, err := exp.BuildWorld(exp.WorldOptions{Scale: scale, Trips: trips, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "world: scale=%.3f vertices=%d edges=%d trips=%d (built in %v)\n\n",
		scale, world.Graph.N(), world.Graph.M(), len(world.Requests), time.Since(start).Round(time.Millisecond))

	h := exp.NewHarness(world, maxRequests, vlog)
	registry := h.Experiments()

	ids := exp.AllIDs()
	if expList != "all" {
		ids = strings.Split(expList, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		fn, ok := registry[id]
		if !ok {
			return fmt.Errorf("unknown experiment %q (available: %s)", id, strings.Join(exp.AllIDs(), ", "))
		}
		t0 := time.Now()
		table, err := fn()
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		table.Notes = append(table.Notes, fmt.Sprintf("generated in %v at scale %.3f", time.Since(t0).Round(time.Millisecond), scale))
		if err := table.Render(out); err != nil {
			return err
		}
		if charts && strings.HasPrefix(id, "fig") {
			if err := exp.ChartFromTable(table, table.Columns[0]).Render(out); err != nil {
				return err
			}
		}
	}
	return nil
}
