// Command genmap generates a synthetic road network and writes it in the
// RNG1 binary format consumed by ridesim and gentrips.
//
//	genmap -scale 0.05 -out city.bin
//	genmap -kind grid -rows 100 -cols 100 -spacing 250 -out grid.bin
//	genmap -kind ringradial -rings 30 -spokes 48 -out rings.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/roadnet"
)

func main() {
	var (
		kind    = flag.String("kind", "city", "network kind: city, grid, ringradial")
		scale   = flag.Float64("scale", 0.05, "city scale relative to Shanghai (kind=city)")
		rows    = flag.Int("rows", 50, "grid rows (kind=grid)")
		cols    = flag.Int("cols", 50, "grid columns (kind=grid)")
		spacing = flag.Float64("spacing", 200, "grid spacing in meters (kind=grid)")
		rings   = flag.Int("rings", 20, "ring count (kind=ringradial)")
		spokes  = flag.Int("spokes", 36, "spoke count (kind=ringradial)")
		ringGap = flag.Float64("ringgap", 600, "ring spacing in meters (kind=ringradial)")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "city.bin", "output path")
	)
	flag.Parse()

	if err := run(*kind, *scale, *rows, *cols, *spacing, *rings, *spokes, *ringGap, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "genmap:", err)
		os.Exit(1)
	}
}

func run(kind string, scale float64, rows, cols int, spacing float64, rings, spokes int, ringGap float64, seed int64, out string) error {
	var g *roadnet.Graph
	var err error
	switch kind {
	case "city":
		g, err = roadnet.SyntheticCity(roadnet.CityOptions{Scale: scale, Seed: seed})
	case "grid":
		g, err = roadnet.Grid(roadnet.GridOptions{
			Rows: rows, Cols: cols, Spacing: spacing,
			Jitter: 0.2, WeightVar: 0.15, Seed: seed,
		})
	case "ringradial":
		g, err = roadnet.RingRadial(roadnet.RingRadialOptions{
			Rings: rings, Spokes: spokes, RingGap: ringGap,
			WeightVar: 0.15, Seed: seed,
		})
	default:
		return fmt.Errorf("unknown kind %q (want city, grid, or ringradial)", kind)
	}
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := g.WriteTo(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d vertices, %d edges\n", out, g.N(), g.M())
	return nil
}
