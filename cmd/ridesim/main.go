// Command ridesim runs one ridesharing simulation and prints its metrics.
//
//	ridesim -scale 0.02 -servers 200 -algo ktree-slack -capacity 6
//	ridesim -graph city.bin -trips trips.csv -algo branchbound
//	ridesim -scale 0.02 -servers 2000 -workers 8 -batch 10 -cache-stripes 64
//	ridesim -scale 0.02 -servers 2000 -workers 4 -producers 8 -arrival surge
//
// Without -graph/-trips it generates a synthetic city and workload at the
// requested scale. With -workers/-shards the sharded concurrent dispatch
// engine (internal/dispatch) replaces the sequential matching loop; -batch
// additionally matches requests in fixed windows instead of on arrival.
// Caching backends ("+lru") run all shards against one fleet-wide shared
// distance cache (cache.Shared); -dist-cache/-path-cache/-cache-stripes
// size it, and the end-of-run summary reports its hit rates.
//
// With -producers N the request stream enters through the concurrent
// ingress gateway (internal/ingest): N producer goroutines submit into
// per-shard bounded queues (-queue-depth) under the chosen backpressure
// policy (-shed-policy block|shed-oldest|deadline|adaptive), and the
// stamped-order drain feeds the engine. The adaptive policy runs the
// SLO-driven admission controller: -slo sets the wall-clock residence
// target it defends. -arrival poisson|surge|hotspot replaces the
// replayed trace with the streaming open-loop generator
// (internal/workload); combined with -producers the stream is generated
// and served live rather than materialized. The end-of-run summary gains
// an ingress line (admitted/shed/queue peak/p99 ingress wait).
//
// -fault-plan <name> arms the deterministic fault-injection harness
// (internal/faults) across all three seams — producer crashes/skew/
// bursts, worker stalls, oracle latency spikes and transient errors
// behind the bounded-retry facade — and prints an injection summary.
// Plans are seed-deterministic: the same plan and workload injects the
// same faults every run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/dispatch"
	"repro/internal/exp"
	"repro/internal/faults"
	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/roadnet"
	"repro/internal/sim"
	"repro/internal/sp"
	"repro/internal/trace"
	"repro/internal/workload"
)

// options carries every flag; run takes it whole instead of a parameter
// per flag.
type options struct {
	scale        float64
	graphPath    string
	tripsPath    string
	servers      int
	fleet        int
	autoTune     bool
	capacity     int
	waitMin      float64
	epsPct       float64
	algoName     string
	theta        float64
	lazy         bool
	oracleSel    string
	seed         int64
	artOut       bool
	jsonOut      bool
	workers      int
	shards       int
	batchWin     float64
	distEntries  int
	pathEntries  int
	cacheStripes int
	producers    int
	queueDepth   int
	shedPolicy   string
	slo          time.Duration
	sloObjective float64
	faultPlan    string
	arrival      string
	obsAddr      string
	obsInterval  time.Duration
	traceOut     string
	traceCap     int
}

func main() {
	var o options
	flag.Float64Var(&o.scale, "scale", 0.02, "synthetic world scale when no -graph is given")
	flag.StringVar(&o.graphPath, "graph", "", "road network file (RNG1 format, see genmap)")
	flag.StringVar(&o.tripsPath, "trips", "", "trip CSV (see gentrips); requires -graph")
	flag.IntVar(&o.servers, "servers", 200, "fleet size")
	flag.IntVar(&o.fleet, "fleet", 0, "fleet size (overrides -servers; convenience for city-scale runs)")
	flag.BoolVar(&o.autoTune, "auto-tune", false, "derive shard count and grid cell size from fleet size and graph extent")
	flag.IntVar(&o.capacity, "capacity", 4, "vehicle capacity (0 = unlimited)")
	flag.Float64Var(&o.waitMin, "wait", 10, "waiting-time constraint in minutes")
	flag.Float64Var(&o.epsPct, "eps", 20, "service constraint in percent extra ride")
	flag.StringVar(&o.algoName, "algo", "ktree-slack", "matching algorithm: ktree, ktree-slack, ktree-hotspot, bruteforce, branchbound, mip")
	flag.Float64Var(&o.theta, "theta", 300, "hotspot radius in meters (ktree-hotspot)")
	flag.BoolVar(&o.lazy, "lazy", false, "use lazy tree invalidation (paper §IV-A)")
	flag.StringVar(&o.oracleSel, "oracle", "bidij+lru", "shortest-path backend: dijkstra, bidij, astar, alt, arcflags, hublabels, bidij+lru")
	flag.Int64Var(&o.seed, "seed", 1, "random seed")
	flag.BoolVar(&o.artOut, "art", false, "print the ART-by-request-count breakdown")
	flag.BoolVar(&o.jsonOut, "json", false, "emit metrics as JSON instead of text")
	flag.IntVar(&o.workers, "workers", 0, "trial worker-pool size; >1 (or -shards/-batch) selects the concurrent dispatch engine")
	flag.IntVar(&o.shards, "shards", 0, "fleet partitions for the dispatch engine (default: one per worker)")
	flag.Float64Var(&o.batchWin, "batch", 0, "batch window in seconds; 0 matches each request on arrival")
	flag.IntVar(&o.distEntries, "dist-cache", cache.DefaultDistEntries, "distance-cache capacity in entries (caching backends)")
	flag.IntVar(&o.pathEntries, "path-cache", cache.DefaultPathEntries, "path-cache capacity in entries (caching backends)")
	flag.IntVar(&o.cacheStripes, "cache-stripes", 0, "stripe count of the shared distance cache (0 = default, dispatch engine only)")
	flag.IntVar(&o.producers, "producers", 0, "concurrent request producers; >0 routes the stream through the ingress gateway")
	flag.IntVar(&o.queueDepth, "queue-depth", 256, "per-shard ingress queue capacity")
	flag.StringVar(&o.shedPolicy, "shed-policy", "block", "ingress backpressure policy: block, shed-oldest, deadline, adaptive")
	flag.DurationVar(&o.slo, "slo", 500*time.Millisecond, "wall-clock ingress residence SLO defended by the adaptive admission controller")
	flag.Float64Var(&o.sloObjective, "slo-objective", 0.99, "fraction of requests that must meet -slo; drives the error-budget burn account (gateway runs)")
	flag.StringVar(&o.faultPlan, "fault-plan", "", "deterministic fault-injection plan: none, "+strings.Join(faults.PlanNames(), ", "))
	flag.StringVar(&o.arrival, "arrival", "", "streaming workload pattern: poisson, surge, hotspot (default: replay the built trace)")
	flag.StringVar(&o.obsAddr, "obs-addr", "", "serve live /metrics JSON and /debug/pprof on this address (e.g. localhost:6060, :0)")
	flag.DurationVar(&o.obsInterval, "obs-interval", 0, "write interval progress snapshots to stderr as JSON lines (0 = off)")
	flag.StringVar(&o.traceOut, "trace-out", "", "drain the request lifecycle trace to this JSONL file at end of run")
	flag.IntVar(&o.traceCap, "trace-cap", 0, "per-ring trace retention in events (0 = default)")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "ridesim:", err)
		os.Exit(1)
	}
}

func parseAlgo(name string) (sim.Algorithm, error) {
	for _, a := range []sim.Algorithm{
		sim.AlgoTreeBasic, sim.AlgoTreeSlack, sim.AlgoTreeHotspot,
		sim.AlgoBruteForce, sim.AlgoBranchBound, sim.AlgoMIP,
	} {
		if a.String() == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("unknown algorithm %q", name)
}

// buildEngine constructs the selected shortest-path backend over g and
// reports whether the selection asked for the LRU caching layer on top.
func buildEngine(name string, g *roadnet.Graph) (engine func() sp.Oracle, cached bool, err error) {
	switch name {
	case "dijkstra":
		return func() sp.Oracle { return sp.NewDijkstra(g) }, false, nil
	case "bidij":
		return func() sp.Oracle { return sp.NewBidirectional(g) }, false, nil
	case "astar":
		return func() sp.Oracle { return sp.NewAStar(g) }, false, nil
	case "alt":
		return func() sp.Oracle { return sp.NewALT(g, 8) }, false, nil
	case "arcflags":
		return func() sp.Oracle { return sp.NewArcFlags(g, 6) }, false, nil
	case "hublabels":
		// Built once and shared: HubLabels is an sp.SharedOracle.
		hl := sp.NewHubLabels(g)
		return func() sp.Oracle { return hl }, false, nil
	case "bidij+lru":
		return func() sp.Oracle { return sp.NewBidirectional(g) }, true, nil
	}
	return nil, false, fmt.Errorf("unknown oracle %q", name)
}

func run(o options) error {
	algo, err := parseAlgo(o.algoName)
	if err != nil {
		return err
	}
	if o.fleet > 0 {
		o.servers = o.fleet
	}

	var g *roadnet.Graph
	var reqs []sim.Request
	switch {
	case o.graphPath != "":
		f, err := os.Open(o.graphPath)
		if err != nil {
			return err
		}
		g, err = roadnet.ReadGraph(f)
		f.Close()
		if err != nil {
			return err
		}
		if o.tripsPath != "" {
			tf, err := os.Open(o.tripsPath)
			if err != nil {
				return err
			}
			reqs, err = trace.ReadCSV(tf, g)
			tf.Close()
			if err != nil {
				return err
			}
		} else {
			reqs, err = trace.Generate(g, trace.GenOptions{Trips: 2000, Seed: o.seed})
			if err != nil {
				return err
			}
		}
	case o.tripsPath != "":
		return fmt.Errorf("-trips requires -graph")
	default:
		world, err := exp.BuildWorld(exp.WorldOptions{Scale: o.scale, Seed: o.seed})
		if err != nil {
			return err
		}
		g, reqs = world.Graph, world.Requests
	}

	// Observability: -trace-out turns on lifecycle tracing, and either of
	// -obs-addr/-obs-interval turns on the live atomic counters. Both stay
	// nil (the no-op state) otherwise — instrumentation never changes
	// matching outcomes either way.
	var tracer *obs.Tracer
	var live *obs.Live
	var slo *obs.SLOTracker
	if o.traceOut != "" {
		tracer = obs.NewTracer(o.traceCap)
	}
	if o.obsAddr != "" || o.obsInterval > 0 {
		live = &obs.Live{}
	}
	if o.producers > 0 {
		// Error-budget burn accounting only makes sense where the wall-SLO
		// is defended: gateway runs. The tracker feeds Live's burn gauge
		// and the end-of-run SLO summary.
		slo = obs.NewSLOTracker(o.sloObjective, 0)
	}
	if o.obsAddr != "" {
		srv, err := obs.Serve(o.obsAddr,
			func() any { return live.Snapshot() },
			func(pw *obs.PromWriter) { promMetrics(pw, live, slo) })
		if err != nil {
			return err
		}
		defer srv.Close()
		if !o.jsonOut {
			fmt.Printf("observability: /metrics (JSON + Prometheus) and /debug/pprof/ on http://%s\n", srv.Addr())
		}
	}
	if o.obsInterval > 0 {
		rep := obs.NewReporter(os.Stderr, o.obsInterval, func() any { return live.Snapshot() })
		defer rep.Stop()
	}

	// -arrival swaps the replayed trace for the streaming open-loop
	// generator over the same graph: materialized for the direct feed,
	// streamed live through the gateway when -producers is set.
	var src ingest.Source
	var genErr func() error // post-run check: did the stream end abnormally?
	if o.arrival != "" {
		pattern, err := workload.ParsePattern(o.arrival)
		if err != nil {
			return err
		}
		trips := len(reqs)
		if trips == 0 {
			trips = 2000
		}
		gen, err := workload.New(g, workload.Options{Pattern: pattern, Trips: trips, Seed: o.seed, Trace: tracer})
		if err != nil {
			return err
		}
		genErr = gen.Err
		if o.producers > 0 {
			src = gen
			reqs = nil
		} else {
			reqs = gen.All()
			if err := gen.Err(); err != nil {
				return err
			}
		}
	}
	if o.producers > 0 && src == nil {
		s := ingest.SliceSource(reqs)
		src = &s
	}

	if !o.jsonOut {
		if src != nil && o.arrival != "" {
			fmt.Printf("network: %d vertices, %d edges; streaming %s arrivals; fleet %d x capacity %d; algo %s\n",
				g.N(), g.M(), o.arrival, o.servers, o.capacity, algo)
		} else {
			fmt.Printf("network: %d vertices, %d edges; %d requests; fleet %d x capacity %d; algo %s\n",
				g.N(), g.M(), len(reqs), o.servers, o.capacity, algo)
		}
	}

	engine, cached, err := buildEngine(o.oracleSel, g)
	if err != nil {
		return err
	}

	// -fault-plan arms the injector. Its oracle hooks sit ABOVE the cache
	// facades (an injected failure must never poison a cache entry) inside
	// the bounded-retry facade; worker hooks ride cfg.Faults; producer
	// hooks are handed out by DriveInjected. A nil injector leaves every
	// seam bit-identical to the unhooked pipeline.
	plan, err := faults.ParsePlan(o.faultPlan)
	if err != nil {
		return err
	}
	var inj *faults.Injector
	if plan.Enabled() {
		inj = faults.New(plan)
		// Before any hook is handed out, so injected latency shows up as
		// overlay spans in the drained trace.
		inj.SetTrace(tracer)
	}
	retryOpts := sp.RetryOptions{Seed: uint64(o.seed)}
	wrapFault := func(oracle sp.Oracle) sp.Oracle {
		if inj == nil {
			return oracle
		}
		return faults.WrapOracle(oracle, inj.Oracle(), retryOpts)
	}

	cfg := sim.Config{
		Graph:            g,
		Servers:          o.servers,
		Capacity:         o.capacity,
		WaitSeconds:      o.waitMin * 60,
		Epsilon:          o.epsPct / 100,
		Algorithm:        algo,
		HotspotTheta:     o.theta,
		LazyInvalidation: o.lazy,
		Seed:             o.seed,
		Workers:          o.workers,
		Shards:           o.shards,
		BatchWindow:      o.batchWin,
		AutoTune:         o.autoTune,
		Trace:            tracer,
		Live:             live,
		Faults:           inj,
	}

	var m *sim.Metrics
	var ds ingest.DriveStats
	var wall time.Duration
	// Allocation accounting for the tuning summary: deltas cover engine
	// construction plus the run.
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	if o.workers > 1 || o.shards > 1 || o.batchWin > 0 {
		var eng *dispatch.Engine
		if cached {
			// One fleet-wide shared distance cache; each shard gets a
			// facade with a private path cache and inner engine. The fault
			// wrap goes around each shard's facade, not the backend, so a
			// degraded lookup can never poison a cache entry.
			shared := cache.NewShared(engine, g.N(), o.distEntries, o.pathEntries, o.cacheStripes)
			cfg.Oracle = shared
			if inj != nil {
				eng, err = dispatch.New(cfg, func() sp.Oracle { return wrapFault(shared.NewWorkerOracle()) })
			} else {
				eng, err = dispatch.New(cfg, nil)
			}
		} else {
			// Uncached backends supply one oracle per shard; for a
			// SharedOracle backend (hublabels) every call returns the
			// same safely-shared instance.
			eng, err = dispatch.New(cfg, func() sp.Oracle { return wrapFault(engine()) })
		}
		if err != nil {
			return err
		}
		defer eng.Close()
		if !o.jsonOut {
			fmt.Printf("dispatch engine: %d workers, %d shards, batch window %gs\n",
				eng.Workers(), eng.Shards(), o.batchWin)
		}
		if o.producers > 0 {
			m, ds, wall, err = runGateway(o, inj, eng.Shards(), cfg.WaitSeconds, tracer, live, slo, src,
				func(r sim.Request) { eng.Enqueue(r) },
				func() error { eng.Flush(); return eng.Drain() },
				eng.Metrics)
			if err != nil {
				return err
			}
		} else {
			start := time.Now()
			m, err = eng.Run(reqs)
			wall = time.Since(start)
			if err != nil {
				return err
			}
		}
		if err := eng.CheckInvariants(); err != nil {
			return fmt.Errorf("invariant violated: %w", err)
		}
	} else {
		if cached {
			cfg.Oracle = wrapFault(cache.New(engine(), g.N(), o.distEntries, o.pathEntries))
		} else {
			cfg.Oracle = wrapFault(engine())
		}
		s, err := sim.New(cfg)
		if err != nil {
			return err
		}
		if o.producers > 0 {
			m, ds, wall, err = runGateway(o, inj, 1, cfg.WaitSeconds, tracer, live, slo, src,
				func(r sim.Request) { s.Submit(r) },
				s.Drain,
				s.Metrics)
			if err != nil {
				return err
			}
		} else {
			start := time.Now()
			m, err = s.Run(reqs)
			wall = time.Since(start)
			if err != nil {
				return err
			}
		}
		if err := s.CheckInvariants(); err != nil {
			return fmt.Errorf("invariant violated: %w", err)
		}
	}

	// A streamed generator ends its stream silently from the driver's
	// point of view; surface an abnormal (sampling-failure) ending rather
	// than reporting metrics over a quietly truncated workload.
	if genErr != nil {
		if err := genErr(); err != nil {
			return err
		}
	}
	runtime.ReadMemStats(&ms1)

	// Drain the lifecycle trace once the pipeline is quiescent: events from
	// every ring, globally ordered, one JSON object per line.
	if tracer != nil {
		f, err := os.Create(o.traceOut)
		if err != nil {
			return err
		}
		written, dropped, derr := tracer.Drain(f)
		if cerr := f.Close(); derr == nil {
			derr = cerr
		}
		if derr != nil {
			return fmt.Errorf("trace drain: %w", derr)
		}
		if !o.jsonOut {
			fmt.Printf("trace: %d records (events + spans) -> %s (%d dropped by ring caps)\n", written, o.traceOut, dropped)
		}
	}

	if o.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(m.Snapshot())
	}
	fmt.Printf("\n%s\nwall time: %v\n", m, wall.Round(time.Millisecond))
	max, mean, top := m.OccupancyStats()
	fmt.Printf("occupancy: max=%d mean=%.2f top20%%=%.2f\n", max, mean, top)
	tunedBy := "configured"
	if m.AutoTuned {
		tunedBy = "auto-tuned"
	}
	allocBytes := ms1.TotalAlloc - ms0.TotalAlloc
	allocObjs := ms1.Mallocs - ms0.Mallocs
	bytesPerReq := float64(0)
	if m.Requests > 0 {
		bytesPerReq = float64(allocBytes) / float64(m.Requests)
	}
	fmt.Printf("tuning (%s): %d shards, cell size %.0f m; alloc %.1f MB / %d objects (%.0f B/req); GC pause total %v\n",
		tunedBy, m.TunedShards, m.TunedCellSize,
		float64(allocBytes)/(1<<20), allocObjs, bytesPerReq,
		time.Duration(ms1.PauseTotalNs-ms0.PauseTotalNs).Round(time.Microsecond))
	if o.batchWin > 0 {
		fmt.Printf("batch repair: %d conflicts repaired incrementally, %d retrial insertions saved vs full re-fan-out\n",
			m.ConflictsRepaired, m.RetrialTrialsSaved)
	}
	if o.producers > 0 {
		fmt.Printf("ingress: %d producers, policy %s, queue depth %d; admitted %d, shed %d (overflow %d, deadline %d, adaptive %d); queue peak %d; wait mean %v p99 %v\n",
			o.producers, o.shedPolicy, o.queueDepth,
			m.Admitted, m.Shed(), m.ShedOverflow, m.ShedDeadline, m.ShedAdaptive,
			m.IngressQueuePeak,
			m.IngressWaitMean().Round(time.Microsecond), m.IngressWaitP99().Round(time.Microsecond))
		if o.shedPolicy == "adaptive" {
			fmt.Printf("admission: SLO %v; shed level peak %d‰, %d controller transitions\n",
				o.slo, m.AdmissionShedPeakPM, m.AdmissionTransitions)
		}
		if slo != nil {
			snap := slo.Snapshot()
			fmt.Printf("slo: objective %.2f%% within %v; good %d, bad %d; error budget consumed %.1f%%; burn %.2fx\n",
				m.SLOObjective*100, o.slo, m.SLOGood, m.SLOBad, m.SLOBudgetConsumed()*100, snap.BurnRate)
		}
	}
	if inj != nil {
		fmt.Printf("faults: plan %s; %s\n", plan.Name, inj.Stats())
		if o.producers > 0 {
			fmt.Printf("drive: sourced %d, submitted %d, dropped %d, discarded %d\n",
				ds.Sourced, ds.Submitted, ds.Dropped, ds.Discarded)
		}
	}
	printCacheStats(m)
	if o.artOut {
		fmt.Println("\nART by scheduled requests:")
		for _, b := range m.ARTBuckets() {
			d, n := m.ART(b)
			fmt.Printf("  %2d requests: %10v  (%d trials)\n", b, d, n)
		}
	}
	return nil
}

// runGateway is the shared gateway-run protocol for both engines: stream
// src through the ingress gateway from o.producers goroutines into sink,
// drain the matcher behind it, and fold the gateway's ingress counters
// into the matcher's metrics. The wall time covers submission through the
// matcher's drain. The drive error is collected through a channel rather
// than discarded: an injected (or real) producer panic is reported after
// the drain instead of being lost in a dead goroutine — Drive's recovery
// path closes the panicked producer's watermark, so the drain itself
// never deadlocks on it.
func runGateway(o options, inj *faults.Injector, queues int, waitSeconds float64, tracer *obs.Tracer, live *obs.Live, slo *obs.SLOTracker,
	src ingest.Source, sink func(sim.Request), drain func() error, metrics func() *sim.Metrics,
) (*sim.Metrics, ingest.DriveStats, time.Duration, error) {
	gw, err := newGateway(o, queues, waitSeconds, tracer, live, slo)
	if err != nil {
		return nil, ingest.DriveStats{}, 0, err
	}
	start := time.Now()
	var ds ingest.DriveStats
	done := make(chan error, 1)
	go func() {
		var derr error
		ds, derr = ingest.DriveInjected(gw, src, o.producers, inj)
		done <- derr
	}()
	gw.Drain(sink)
	driveErr := <-done
	derr := drain()
	wall := time.Since(start)
	m := metrics()
	gw.MetricsInto(m)
	if driveErr != nil {
		return nil, ds, 0, fmt.Errorf("ingress drive: %w", driveErr)
	}
	if derr != nil {
		return nil, ds, 0, derr
	}
	return m, ds, wall, nil
}

// newGateway builds the ingress gateway for this run: one bounded
// admission queue per engine shard (keyed by dispatch.ShardIndex), the
// configured backpressure policy, and the fleet waiting-time window for
// deadline shedding.
func newGateway(o options, queues int, waitSeconds float64, tracer *obs.Tracer, live *obs.Live, slo *obs.SLOTracker) (*ingest.Gateway, error) {
	policy, err := ingest.ParsePolicy(o.shedPolicy)
	if err != nil {
		return nil, err
	}
	return ingest.New(ingest.Config{
		Queues:      queues,
		Depth:       o.queueDepth,
		Policy:      policy,
		WaitSeconds: waitSeconds,
		WallSLO:     o.slo,
		SLO:         slo,
		Trace:       tracer,
		Live:        live,
	}), nil
}

// promMetrics renders the live counter surface (and, on gateway runs, the
// SLO error-budget account) in the Prometheus text format for /metrics
// scrapes. Everything here is atomics or mutex-guarded snapshots — safe
// to read mid-run, unlike the quiescent-only histograms.
func promMetrics(pw *obs.PromWriter, live *obs.Live, slo *obs.SLOTracker) {
	s := live.Snapshot()
	pw.Counter("ridesim_requests_total", "Requests submitted to the matching engine.", s.Requests, nil)
	pw.Counter("ridesim_matched_total", "Requests assigned a vehicle.", s.Matched, nil)
	pw.Counter("ridesim_rejected_total", "Requests no vehicle could serve.", s.Rejected, nil)
	pw.Counter("ridesim_admitted_total", "Requests stamped into the gateway order.", s.Admitted, nil)
	pw.Counter("ridesim_shed_overflow_total", "Requests shed for queue overflow.", s.ShedOverflow, nil)
	pw.Counter("ridesim_shed_deadline_total", "Requests shed for blown service windows.", s.ShedDeadline, nil)
	pw.Counter("ridesim_shed_adaptive_total", "Requests shed by the adaptive admission controller.", s.ShedAdaptive, nil)
	pw.Counter("ridesim_completed_total", "Trips dropped off.", s.Completed, nil)
	pw.Counter("ridesim_flushes_total", "Batch windows flushed.", s.Flushes, nil)
	pw.Counter("ridesim_conflicts_total", "Batch conflicts repaired.", s.Conflicts, nil)
	pw.Gauge("ridesim_backlog", "Requests currently resident in gateway queues.", float64(s.Backlog), nil)
	pw.Gauge("ridesim_shed_level_permille", "Adaptive shed probability, per mille.", float64(s.ShedLevel), nil)
	if slo != nil {
		snap := slo.Snapshot()
		pw.Counter("ridesim_slo_good_total", "Requests released within the wall-clock SLO.", snap.Good, nil)
		pw.Counter("ridesim_slo_bad_total", "Requests released late or shed against the SLO budget.", snap.Bad, nil)
		pw.Gauge("ridesim_slo_objective", "Configured good-fraction objective.", snap.Objective, nil)
		pw.Gauge("ridesim_slo_burn_rate", "Rolling-window error-budget burn rate (1 = on budget).", snap.BurnRate, nil)
		pw.Gauge("ridesim_slo_budget_consumed", "Fraction of the lifetime error budget consumed.", snap.BudgetConsumed, nil)
	}
}

// printCacheStats reports the aggregate shortest-path cache efficacy
// (summed across all shards for the dispatch engine); silent when the
// selected backend has no caches.
func printCacheStats(m *sim.Metrics) {
	if m.DistCacheHits+m.DistCacheMisses == 0 && m.PathCacheHits+m.PathCacheMisses == 0 {
		return
	}
	fmt.Printf("dist cache: %.1f%% hit (%d hits, %d misses); path cache: %.1f%% hit (%d hits, %d misses)\n",
		m.DistCacheHitRate()*100, m.DistCacheHits, m.DistCacheMisses,
		m.PathCacheHitRate()*100, m.PathCacheHits, m.PathCacheMisses)
}
