// Command ridesim runs one ridesharing simulation and prints its metrics.
//
//	ridesim -scale 0.02 -servers 200 -algo ktree-slack -capacity 6
//	ridesim -graph city.bin -trips trips.csv -algo branchbound
//	ridesim -scale 0.02 -servers 2000 -workers 8 -batch 10
//
// Without -graph/-trips it generates a synthetic city and workload at the
// requested scale. With -workers/-shards the sharded concurrent dispatch
// engine (internal/dispatch) replaces the sequential matching loop; -batch
// additionally matches requests in fixed windows instead of on arrival.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cache"
	"repro/internal/dispatch"
	"repro/internal/exp"
	"repro/internal/roadnet"
	"repro/internal/sim"
	"repro/internal/sp"
	"repro/internal/trace"
)

func main() {
	var (
		scale     = flag.Float64("scale", 0.02, "synthetic world scale when no -graph is given")
		graphPath = flag.String("graph", "", "road network file (RNG1 format, see genmap)")
		tripsPath = flag.String("trips", "", "trip CSV (see gentrips); requires -graph")
		servers   = flag.Int("servers", 200, "fleet size")
		capacity  = flag.Int("capacity", 4, "vehicle capacity (0 = unlimited)")
		waitMin   = flag.Float64("wait", 10, "waiting-time constraint in minutes")
		epsPct    = flag.Float64("eps", 20, "service constraint in percent extra ride")
		algoName  = flag.String("algo", "ktree-slack", "matching algorithm: ktree, ktree-slack, ktree-hotspot, bruteforce, branchbound, mip")
		theta     = flag.Float64("theta", 300, "hotspot radius in meters (ktree-hotspot)")
		lazy      = flag.Bool("lazy", false, "use lazy tree invalidation (paper §IV-A)")
		oracleSel = flag.String("oracle", "bidij+lru", "shortest-path backend: dijkstra, bidij, astar, alt, arcflags, hublabels, bidij+lru")
		seed      = flag.Int64("seed", 1, "random seed")
		artOut    = flag.Bool("art", false, "print the ART-by-request-count breakdown")
		jsonOut   = flag.Bool("json", false, "emit metrics as JSON instead of text")
		workers   = flag.Int("workers", 0, "trial worker-pool size; >1 (or -shards/-batch) selects the concurrent dispatch engine")
		shards    = flag.Int("shards", 0, "fleet partitions for the dispatch engine (default: one per worker)")
		batchWin  = flag.Float64("batch", 0, "batch window in seconds; 0 matches each request on arrival")
	)
	flag.Parse()

	if err := run(*scale, *graphPath, *tripsPath, *servers, *capacity, *waitMin, *epsPct, *algoName, *theta, *lazy, *oracleSel, *seed, *artOut, *jsonOut, *workers, *shards, *batchWin); err != nil {
		fmt.Fprintln(os.Stderr, "ridesim:", err)
		os.Exit(1)
	}
}

func parseAlgo(name string) (sim.Algorithm, error) {
	for _, a := range []sim.Algorithm{
		sim.AlgoTreeBasic, sim.AlgoTreeSlack, sim.AlgoTreeHotspot,
		sim.AlgoBruteForce, sim.AlgoBranchBound, sim.AlgoMIP,
	} {
		if a.String() == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("unknown algorithm %q", name)
}

// buildOracle constructs the selected shortest-path backend over g.
func buildOracle(name string, g *roadnet.Graph) (sp.Oracle, error) {
	switch name {
	case "dijkstra":
		return sp.NewDijkstra(g), nil
	case "bidij":
		return sp.NewBidirectional(g), nil
	case "astar":
		return sp.NewAStar(g), nil
	case "alt":
		return sp.NewALT(g, 8), nil
	case "arcflags":
		return sp.NewArcFlags(g, 6), nil
	case "hublabels":
		return sp.NewHubLabels(g), nil
	case "bidij+lru":
		return cache.NewDefault(sp.NewBidirectional(g), g.N()), nil
	}
	return nil, fmt.Errorf("unknown oracle %q", name)
}

func run(scale float64, graphPath, tripsPath string, servers, capacity int, waitMin, epsPct float64, algoName string, theta float64, lazy bool, oracleSel string, seed int64, artOut, jsonOut bool, workers, shards int, batchWin float64) error {
	algo, err := parseAlgo(algoName)
	if err != nil {
		return err
	}

	var g *roadnet.Graph
	var reqs []sim.Request
	switch {
	case graphPath != "":
		f, err := os.Open(graphPath)
		if err != nil {
			return err
		}
		g, err = roadnet.ReadGraph(f)
		f.Close()
		if err != nil {
			return err
		}
		if tripsPath != "" {
			tf, err := os.Open(tripsPath)
			if err != nil {
				return err
			}
			reqs, err = trace.ReadCSV(tf, g)
			tf.Close()
			if err != nil {
				return err
			}
		} else {
			reqs, err = trace.Generate(g, trace.GenOptions{Trips: 2000, Seed: seed})
			if err != nil {
				return err
			}
		}
	case tripsPath != "":
		return fmt.Errorf("-trips requires -graph")
	default:
		world, err := exp.BuildWorld(exp.WorldOptions{Scale: scale, Seed: seed})
		if err != nil {
			return err
		}
		g, reqs = world.Graph, world.Requests
	}

	if !jsonOut {
		fmt.Printf("network: %d vertices, %d edges; %d requests; fleet %d x capacity %d; algo %s\n",
			g.N(), g.M(), len(reqs), servers, capacity, algo)
	}

	cfg := sim.Config{
		Graph:            g,
		Servers:          servers,
		Capacity:         capacity,
		WaitSeconds:      waitMin * 60,
		Epsilon:          epsPct / 100,
		Algorithm:        algo,
		HotspotTheta:     theta,
		LazyInvalidation: lazy,
		Seed:             seed,
		Workers:          workers,
		Shards:           shards,
		BatchWindow:      batchWin,
	}

	var m *sim.Metrics
	var wall time.Duration
	if workers > 1 || shards > 1 || batchWin > 0 {
		// The engine builds one oracle per shard through the factory;
		// building the first one eagerly validates the -oracle name.
		first, err := buildOracle(oracleSel, g)
		if err != nil {
			return err
		}
		eng, err := dispatch.New(cfg, func() sp.Oracle {
			if first != nil {
				o := first
				first = nil
				return o
			}
			o, err := buildOracle(oracleSel, g)
			if err != nil {
				panic(err) // unreachable: name validated by the first build
			}
			return o
		})
		if err != nil {
			return err
		}
		defer eng.Close()
		if !jsonOut {
			fmt.Printf("dispatch engine: %d workers, %d shards, batch window %gs\n",
				eng.Workers(), eng.Shards(), batchWin)
		}
		start := time.Now()
		m = eng.Run(reqs)
		wall = time.Since(start)
		if err := eng.CheckInvariants(); err != nil {
			return fmt.Errorf("invariant violated: %w", err)
		}
	} else {
		cfg.Oracle, err = buildOracle(oracleSel, g)
		if err != nil {
			return err
		}
		s, err := sim.New(cfg)
		if err != nil {
			return err
		}
		start := time.Now()
		m = s.Run(reqs)
		wall = time.Since(start)
		if err := s.CheckInvariants(); err != nil {
			return fmt.Errorf("invariant violated: %w", err)
		}
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(m.Snapshot())
	}
	fmt.Printf("\n%s\nwall time: %v\n", m, wall.Round(time.Millisecond))
	max, mean, top := m.OccupancyStats()
	fmt.Printf("occupancy: max=%d mean=%.2f top20%%=%.2f\n", max, mean, top)
	if artOut {
		fmt.Println("\nART by scheduled requests:")
		for _, b := range m.ARTBuckets() {
			d, n := m.ART(b)
			fmt.Printf("  %2d requests: %10v  (%d trials)\n", b, d, n)
		}
	}
	return nil
}
