// Command vetkit is the repo's static-analysis multichecker: four
// go/analysis-style passes that enforce, at compile time, the invariants
// the equivalence suites only catch after the fact. It speaks the
// `go vet -vettool` protocol; run it over the whole module with
//
//	go build -o /tmp/vetkit ./cmd/vetkit
//	go vet -vettool=/tmp/vetkit ./...
//
// The passes, and the invariant each enforces (see README "Invariants"
// for the full table and the //vetkit:allow <rule> <reason> escape hatch):
//
//	determinism     no wall clock, global PRNG, racing selects, or
//	                order-dependent map iteration in the packages whose
//	                outputs must be bit-identical across runs
//	oracletaxonomy  per-goroutine sp.Oracle values never cross goroutine
//	                boundaries (only SharedOracle / WorkerSource facades do)
//	poolownership   kinetic-tree pool nodes are released exactly once and
//	                never committed after release
//	lockdiscipline  no lock-containing values copied by value; sim.Metrics
//	                and obs.Histogram merge only via their merge functions
package main

import (
	"repro/internal/analysis/passes/determinism"
	"repro/internal/analysis/passes/lockdiscipline"
	"repro/internal/analysis/passes/oracletaxonomy"
	"repro/internal/analysis/passes/poolownership"
	"repro/internal/analysis/unitchecker"
)

func main() {
	unitchecker.Main(
		determinism.Analyzer,
		lockdiscipline.Analyzer,
		oracletaxonomy.Analyzer,
		poolownership.Analyzer,
	)
}
