package main

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"repro/internal/obs"
)

func readGolden(t *testing.T) *obs.Trace {
	t.Helper()
	tr, err := readTraceFile("testdata/golden.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestGoldenReportReproduced pins the whole analysis chain: the committed
// golden trace must reproduce the committed attribution byte for byte.
// If an obs critical-path rule or a report field changes, regenerate with
//
//	go run ./cmd/tracetool report -json -top 3 cmd/tracetool/testdata/golden.jsonl
func TestGoldenReportReproduced(t *testing.T) {
	want, err := os.ReadFile("testdata/golden_report.json")
	if err != nil {
		t.Fatal(err)
	}
	rep := buildReport(readGolden(t), 3)
	got, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	if !bytes.Equal(got, want) {
		t.Fatalf("report drifted from testdata/golden_report.json;\ngot:\n%s", got)
	}
}

// TestGoldenShape sanity-checks the golden workload still has the
// structure the CI smoke step relies on: batch mode (phase1 + repair +
// flush spans, no match spans) behind the gateway (admit/queue_wait/
// release for every request).
func TestGoldenShape(t *testing.T) {
	a, paths := obs.Analyze(readGolden(t))
	if a.Requests == 0 || len(paths) != a.Requests {
		t.Fatalf("no requests analyzed: %+v", a)
	}
	for _, stage := range []string{"admit", "queue_wait", "release"} {
		if st := a.Stages[stage]; st == nil || st.Spans != a.Requests {
			t.Fatalf("stage %s: %+v, want one span per request (%d)", stage, a.Stages[stage], a.Requests)
		}
	}
	if st := a.Stages["phase1"]; st == nil || st.Spans%a.Requests != 0 {
		t.Fatalf("phase1 spans = %+v, want a whole number per request (shard fan-out)", a.Stages["phase1"])
	}
	if a.Stages["match"] != nil {
		t.Fatal("golden is a batch-mode trace; it must not carry match spans")
	}
	if st := a.Stages["flush"]; st == nil || st.Spans == 0 || st.Requests != 0 {
		t.Fatalf("flush spans = %+v, want fleet-level only", a.Stages["flush"])
	}
}

func TestStructuralDiffSelfAndDrift(t *testing.T) {
	tr := readGolden(t)
	if drift := diffStructural(tr, tr); len(drift) != 0 {
		t.Fatalf("self-diff reported drift: %v", drift)
	}
	// Drop every repair span: the shape check must name the stage.
	mut := &obs.Trace{Events: tr.Events}
	for _, sp := range tr.Spans {
		if sp.Stage != "repair" {
			mut.Spans = append(mut.Spans, sp)
		}
	}
	drift := diffStructural(tr, mut)
	if len(drift) == 0 {
		t.Fatal("dropped repair spans went undetected")
	}
	found := false
	for _, d := range drift {
		if bytes.Contains([]byte(d), []byte("repair")) {
			found = true
		}
	}
	if !found {
		t.Fatalf("drift does not name the repair stage: %v", drift)
	}
}

func TestTimingDiffTolerance(t *testing.T) {
	mk := func(queueNs int64) *obs.Trace {
		return &obs.Trace{Spans: []obs.SpanRecord{
			{ID: obs.SpanID(1, obs.StageQueueWait, 0), Req: 1, Stage: "queue_wait", StartNs: 0, EndNs: queueNs},
			{ID: obs.SpanID(1, obs.StageMatch, 0), Req: 1, Stage: "match", StartNs: queueNs, EndNs: queueNs + 100},
		}}
	}
	same, shifted := mk(100), mk(300)
	if drift := diffTiming(same, same, 0); len(drift) != 0 {
		t.Fatalf("identical traces drifted: %v", drift)
	}
	// 50/50 vs 75/25 split: 25pp apart, outside a 5pp tolerance...
	if drift := diffTiming(same, shifted, 5); len(drift) == 0 {
		t.Fatal("25pp share shift went undetected at tol=5")
	}
	// ...and inside a 30pp one.
	if drift := diffTiming(same, shifted, 30); len(drift) != 0 {
		t.Fatalf("25pp shift flagged at tol=30: %v", drift)
	}
}
