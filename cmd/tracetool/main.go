// Command tracetool analyzes drained ridesim lifecycle traces (the JSONL
// files -trace-out writes): causal-span critical-path reports, per-stage
// contribution histograms, and trace-to-trace drift detection.
//
//	tracetool report [-json] [-top K] trace.jsonl
//	tracetool hist -stage <stage|total> trace.jsonl
//	tracetool diff [-structural] [-tol pct] old.jsonl new.jsonl
//
// report decomposes every request's wall time into per-stage
// contributions (internal/obs critical-path rules: concurrent phase-1
// shard spans contribute their max, match its self time, fault spans
// overlay), aggregates the fleet-wide attribution, and prints the top-K
// slowest requests with their span trees.
//
// hist prints one stage's per-request contribution distribution as the
// histogram's non-empty buckets with ASCII bars ("total" selects the
// whole-request wall distribution).
//
// diff compares two traces' attributions. -structural compares the
// span-count shape (requests and spans per stage) exactly — the mode CI
// uses against the committed golden trace, since counts are seed-
// deterministic while timings are not. Without -structural it compares
// each stage's share of the attributed wall within -tol percentage
// points. Any drift exits nonzero.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "report":
		err = cmdReport(os.Args[2:])
	case "hist":
		err = cmdHist(os.Args[2:])
	case "diff":
		err = cmdDiff(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracetool:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tracetool report [-json] [-top K] trace.jsonl
  tracetool hist -stage <stage|total> trace.jsonl
  tracetool diff [-structural] [-tol pct] old.jsonl new.jsonl`)
	os.Exit(2)
}

func readTraceFile(path string) (*obs.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return obs.ReadTrace(f)
}

// stageLine is one stage's row of the report, JSON-stable for the golden
// comparison.
type stageLine struct {
	Stage    string  `json:"stage"`
	Spans    int     `json:"spans"`
	Requests int     `json:"requests"`
	Dominant int     `json:"dominant"`
	TotalNs  int64   `json:"total_ns"`
	SharePct float64 `json:"share_pct"`
	P50Ns    int64   `json:"p50_ns"`
	P99Ns    int64   `json:"p99_ns"`
	MaxNs    int64   `json:"max_ns"`
}

type outlierLine struct {
	Req      int64    `json:"req"`
	TotalNs  int64    `json:"total_ns"`
	Dominant string   `json:"dominant"`
	Tree     []string `json:"tree"`
}

type report struct {
	Events     int           `json:"events"`
	Spans      int           `json:"spans"`
	Requests   int           `json:"requests"`
	WallP50Ns  int64         `json:"wall_p50_ns"`
	WallP99Ns  int64         `json:"wall_p99_ns"`
	QueueNs    int64         `json:"queue_ns"`
	ComputeNs  int64         `json:"compute_ns"`
	OtherNs    int64         `json:"other_ns"`
	QueuePct   float64       `json:"queue_pct"`
	ComputePct float64       `json:"compute_pct"`
	OtherPct   float64       `json:"other_pct"`
	Stages     []stageLine   `json:"stages"`
	Outliers   []outlierLine `json:"outliers,omitempty"`
}

// pct is a share in percent rounded to 2 decimals, so the JSON report is
// byte-stable across formatting environments.
func pct(part, whole int64) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part*10000/whole) / 100
}

// buildReport runs the critical-path analysis and shapes it for output.
func buildReport(tr *obs.Trace, topK int) report {
	a, paths := obs.Analyze(tr)
	rep := report{
		Events:    len(tr.Events),
		Spans:     len(tr.Spans),
		Requests:  a.Requests,
		WallP50Ns: a.Total.Quantile(0.50),
		WallP99Ns: a.Total.Quantile(0.99),
		QueueNs:   a.QueueNs,
		ComputeNs: a.ComputeNs,
		OtherNs:   a.OtherNs,
	}
	attributed := a.QueueNs + a.ComputeNs + a.OtherNs
	rep.QueuePct = pct(a.QueueNs, attributed)
	rep.ComputePct = pct(a.ComputeNs, attributed)
	rep.OtherPct = pct(a.OtherNs, attributed)
	for _, name := range a.StageNames() {
		st := a.Stages[name]
		rep.Stages = append(rep.Stages, stageLine{
			Stage:    name,
			Spans:    st.Spans,
			Requests: st.Requests,
			Dominant: st.Dominant,
			TotalNs:  st.TotalNs,
			SharePct: pct(st.TotalNs, attributed),
			P50Ns:    st.Contrib.Quantile(0.50),
			P99Ns:    st.Contrib.Quantile(0.99),
			MaxNs:    st.Contrib.Max(),
		})
	}
	if topK > 0 {
		sort.Slice(paths, func(i, j int) bool {
			if paths[i].TotalNs != paths[j].TotalNs {
				return paths[i].TotalNs > paths[j].TotalNs
			}
			return paths[i].Req < paths[j].Req
		})
		if topK > len(paths) {
			topK = len(paths)
		}
		for _, p := range paths[:topK] {
			rep.Outliers = append(rep.Outliers, outlierLine{
				Req: p.Req, TotalNs: p.TotalNs, Dominant: p.Dominant,
				Tree: renderTree(&p),
			})
		}
	}
	return rep
}

// renderTree renders a request's span tree: children under their Parent
// span, top-level spans under the synthetic request root, orphans (parent
// outside this request, e.g. when a ring wrapped) at top level too.
func renderTree(p *obs.RequestPath) []string {
	ids := map[uint64]bool{}
	for _, sp := range p.Spans {
		ids[sp.ID] = true
	}
	children := map[uint64][]obs.SpanRecord{}
	root := obs.RootSpanID(p.Req)
	for _, sp := range p.Spans {
		parent := sp.Parent
		if parent != root && !ids[parent] {
			parent = root
		}
		children[parent] = append(children[parent], sp)
	}
	var lines []string
	var walk func(id uint64, depth int)
	walk = func(id uint64, depth int) {
		for _, sp := range children[id] {
			lines = append(lines, fmt.Sprintf("%s%s %v arg=%d",
				strings.Repeat("  ", depth), sp.Stage,
				time.Duration(sp.DurationNs()), sp.Arg))
			if sp.ID != id { // self-parented spans would loop forever
				walk(sp.ID, depth+1)
			}
		}
	}
	walk(root, 0)
	return lines
}

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	topK := fs.Int("top", 5, "slowest requests to show with span trees (0 = none)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	tr, err := readTraceFile(fs.Arg(0))
	if err != nil {
		return err
	}
	rep := buildReport(tr, *topK)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	printReport(rep)
	return nil
}

func printReport(rep report) {
	fmt.Printf("trace: %d events, %d spans, %d requests\n", rep.Events, rep.Spans, rep.Requests)
	fmt.Printf("wall per request: p50 %v, p99 %v\n",
		time.Duration(rep.WallP50Ns), time.Duration(rep.WallP99Ns))
	fmt.Printf("queue/compute split: queue %v (%.2f%%), compute %v (%.2f%%), other %v (%.2f%%)\n",
		time.Duration(rep.QueueNs), rep.QueuePct,
		time.Duration(rep.ComputeNs), rep.ComputePct,
		time.Duration(rep.OtherNs), rep.OtherPct)
	fmt.Printf("\n%-17s %8s %8s %8s %12s %7s %12s %12s\n",
		"stage", "spans", "reqs", "dominant", "total", "share", "p50", "p99")
	for _, st := range rep.Stages {
		fmt.Printf("%-17s %8d %8d %8d %12v %6.2f%% %12v %12v\n",
			st.Stage, st.Spans, st.Requests, st.Dominant,
			time.Duration(st.TotalNs), st.SharePct,
			time.Duration(st.P50Ns), time.Duration(st.P99Ns))
	}
	if len(rep.Outliers) > 0 {
		fmt.Printf("\nslowest %d requests:\n", len(rep.Outliers))
		for _, o := range rep.Outliers {
			fmt.Printf("req %d: %v total, dominant %s\n", o.Req, time.Duration(o.TotalNs), o.Dominant)
			for _, line := range o.Tree {
				fmt.Printf("  %s\n", line)
			}
		}
	}
}

func cmdHist(args []string) error {
	fs := flag.NewFlagSet("hist", flag.ExitOnError)
	stage := fs.String("stage", "", "stage to plot (one of the report's stages, or \"total\")")
	fs.Parse(args)
	if fs.NArg() != 1 || *stage == "" {
		usage()
	}
	tr, err := readTraceFile(fs.Arg(0))
	if err != nil {
		return err
	}
	a, _ := obs.Analyze(tr)
	var h *obs.Histogram
	if *stage == "total" {
		h = a.Total
	} else if st := a.Stages[*stage]; st != nil {
		h = st.Contrib
	}
	if h.Count() == 0 {
		return fmt.Errorf("stage %q has no samples (stages present: total %s)",
			*stage, strings.Join(a.StageNames(), " "))
	}
	fmt.Printf("%s: %s\n", *stage, h)
	buckets := h.Buckets()
	var maxCount uint64
	for _, b := range buckets {
		if b.Count > maxCount {
			maxCount = b.Count
		}
	}
	for _, b := range buckets {
		bar := strings.Repeat("#", int(b.Count*40/maxCount))
		if bar == "" {
			bar = "."
		}
		fmt.Printf("%14v .. %-14v %8d %s\n",
			time.Duration(b.Lo), time.Duration(b.Hi), b.Count, bar)
	}
	return nil
}

// structSig is the seed-deterministic shape of a trace: request count and
// spans per stage. Timings vary run to run; these must not.
func structSig(a *obs.Attribution) map[string]int {
	sig := map[string]int{"__requests__": a.Requests}
	for name, st := range a.Stages {
		if name == "other" {
			// "other" is residual timing, not an emitted span stage.
			continue
		}
		sig[name] = st.Spans
	}
	return sig
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	structural := fs.Bool("structural", false, "compare span-count shape exactly (ignore timings)")
	tol := fs.Float64("tol", 5, "allowed per-stage share drift in percentage points (timing mode)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
	}
	trA, err := readTraceFile(fs.Arg(0))
	if err != nil {
		return err
	}
	trB, err := readTraceFile(fs.Arg(1))
	if err != nil {
		return err
	}
	var drift []string
	if *structural {
		drift = diffStructural(trA, trB)
	} else {
		drift = diffTiming(trA, trB, *tol)
	}
	if len(drift) > 0 {
		for _, d := range drift {
			fmt.Printf("drift: %s\n", d)
		}
		return fmt.Errorf("%d drift(s) between %s and %s", len(drift), fs.Arg(0), fs.Arg(1))
	}
	fmt.Println("no drift")
	return nil
}

func diffStructural(trA, trB *obs.Trace) []string {
	aAttr, _ := obs.Analyze(trA)
	bAttr, _ := obs.Analyze(trB)
	sigA, sigB := structSig(aAttr), structSig(bAttr)
	keys := map[string]bool{}
	for k := range sigA {
		keys[k] = true
	}
	for k := range sigB {
		keys[k] = true
	}
	names := make([]string, 0, len(keys))
	for k := range keys {
		names = append(names, k)
	}
	sort.Strings(names)
	var drift []string
	for _, k := range names {
		if sigA[k] != sigB[k] {
			label := k
			if k == "__requests__" {
				label = "requests"
			}
			drift = append(drift, fmt.Sprintf("%s: %d vs %d", label, sigA[k], sigB[k]))
		}
	}
	return drift
}

func diffTiming(trA, trB *obs.Trace, tol float64) []string {
	repA := buildReport(trA, 0)
	repB := buildReport(trB, 0)
	shares := func(rep report) map[string]float64 {
		m := map[string]float64{}
		for _, st := range rep.Stages {
			m[st.Stage] = st.SharePct
		}
		return m
	}
	sA, sB := shares(repA), shares(repB)
	keys := map[string]bool{}
	for k := range sA {
		keys[k] = true
	}
	for k := range sB {
		keys[k] = true
	}
	names := make([]string, 0, len(keys))
	for k := range keys {
		names = append(names, k)
	}
	sort.Strings(names)
	var drift []string
	for _, k := range names {
		if d := sA[k] - sB[k]; d > tol || d < -tol {
			drift = append(drift, fmt.Sprintf("stage %s share: %.2f%% vs %.2f%% (tol %.1fpp)", k, sA[k], sB[k], tol))
		}
	}
	return drift
}
