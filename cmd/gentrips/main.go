// Command gentrips generates a synthetic trip-request workload over a road
// network written by genmap, in the CSV format consumed by ridesim.
//
//	gentrips -graph city.bin -trips 20000 -out trips.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/roadnet"
	"repro/internal/trace"
)

func main() {
	var (
		graphPath = flag.String("graph", "city.bin", "road network file (RNG1 format)")
		trips     = flag.Int("trips", 10000, "number of requests")
		horizon   = flag.Float64("horizon", 86400, "request time span in seconds")
		hotspots  = flag.Int("hotspots", 8, "number of demand clusters")
		frac      = flag.Float64("hotspot-frac", 0.6, "fraction of endpoints drawn from clusters")
		seed      = flag.Int64("seed", 1, "random seed")
		out       = flag.String("out", "trips.csv", "output path")
	)
	flag.Parse()

	if err := run(*graphPath, *trips, *horizon, *hotspots, *frac, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "gentrips:", err)
		os.Exit(1)
	}
}

func run(graphPath string, trips int, horizon float64, hotspots int, frac float64, seed int64, out string) error {
	f, err := os.Open(graphPath)
	if err != nil {
		return err
	}
	g, err := roadnet.ReadGraph(f)
	f.Close()
	if err != nil {
		return err
	}
	reqs, err := trace.Generate(g, trace.GenOptions{
		Trips:          trips,
		HorizonSeconds: horizon,
		Hotspots:       hotspots,
		HotspotFrac:    frac,
		Seed:           seed,
	})
	if err != nil {
		return err
	}
	of, err := os.Create(out)
	if err != nil {
		return err
	}
	defer of.Close()
	if err := trace.WriteCSV(of, reqs); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d requests over %.1f hours on %d vertices\n", out, len(reqs), horizon/3600, g.N())
	return nil
}
