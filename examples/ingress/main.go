// Ingress: the concurrent front door end to end. A streaming Poisson
// workload (internal/workload) is served live — never materialized — by
// eight producer goroutines racing into the ingress gateway
// (internal/ingest), whose stamped-order drain feeds the sharded dispatch
// engine. The same stream is then replayed under each backpressure policy
// with a deliberately tiny queue so the trade-offs are visible:
//
//   - block never drops a rider but makes producers wait (lossless, the
//     policy under which gateway runs are bit-identical to a single
//     producer);
//   - shed-oldest bounds producer latency by evicting the stalest queued
//     request when a queue is full;
//   - deadline refuses any request whose waiting-time window the gateway
//     lag has already blown, so the engine never burns trial insertions
//     on a rider the service guarantee has lost.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cache"
	"repro/internal/dispatch"
	"repro/internal/ingest"
	"repro/internal/roadnet"
	"repro/internal/sim"
	"repro/internal/sp"
	"repro/internal/workload"
)

func main() {
	g, err := roadnet.Grid(roadnet.GridOptions{
		Rows: 20, Cols: 20, Spacing: 400, Jitter: 0.2, WeightVar: 0.1, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("city: %d vertices, %d edges; streaming poisson arrivals, 8 producers\n\n", g.N(), g.M())

	const wait = 600 // 10-minute waiting-time windows
	for _, policy := range []ingest.Policy{ingest.Block, ingest.ShedOldest, ingest.ShedDeadline} {
		cfg := sim.Config{
			Graph:       g,
			Oracle:      cache.NewShared(func() sp.Oracle { return sp.NewBidirectional(g) }, g.N(), 1<<20, 1<<12, 0),
			Servers:     60,
			Capacity:    4,
			WaitSeconds: wait,
			Algorithm:   sim.AlgoTreeSlack,
			Seed:        42,
			Workers:     4,
		}
		eng, err := dispatch.New(cfg, nil)
		if err != nil {
			log.Fatal(err)
		}
		// Identical stream per policy: same seed, same options.
		gen, err := workload.New(g, workload.Options{
			Pattern: workload.Poisson, Trips: 800, HorizonSeconds: 7200, Seed: 11,
		})
		if err != nil {
			log.Fatal(err)
		}
		gw := ingest.New(ingest.Config{
			Queues:      eng.Shards(),
			Depth:       16, // tiny on purpose: let the policies differ
			Policy:      policy,
			WaitSeconds: wait,
		})
		start := time.Now()
		driveErr := make(chan error, 1)
		go func() { driveErr <- ingest.Drive(gw, gen, 8) }()
		gw.Drain(func(r sim.Request) { eng.Enqueue(r) })
		wall := time.Since(start)
		if err := <-driveErr; err != nil {
			log.Fatalf("%s: drive: %v", policy, err)
		}
		if err := gen.Err(); err != nil {
			log.Fatalf("%s: %v", policy, err)
		}
		if err := eng.Drain(); err != nil {
			log.Fatal(err)
		}
		if err := eng.CheckInvariants(); err != nil {
			log.Fatalf("%s: %v", policy, err)
		}
		m := eng.Metrics()
		gw.MetricsInto(m)
		fmt.Printf("%-12s admitted %4d  shed %4d (overflow %4d, deadline %4d)  matched %4d  queue peak %2d  p99 ingress wait %v  (wall %v)\n",
			policy, m.Admitted, m.Shed(), m.ShedOverflow, m.ShedDeadline,
			m.Matched, m.IngressQueuePeak, m.IngressWaitP99().Round(time.Microsecond), wall.Round(time.Millisecond))
		eng.Close()
	}
	fmt.Println("\nblock is lossless (and bit-identical to a single producer); the shedding")
	fmt.Println("policies trade riders for bounded queues and bounded staleness.")
}
