// Rushhour: a fleet-scale comparison on a synthetic city with a morning and
// evening demand peak — the setting of the paper's §VI evaluation, scaled to
// run in seconds. It replays the same day of requests through the kinetic
// tree and the branch-and-bound baseline and reports ACRT, match rate, and
// occupancy, showing the tree's response-time advantage on identical
// matching decisionspace.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cache"
	"repro/internal/exp"
	"repro/internal/sim"
	"repro/internal/sp"
)

func main() {
	world, err := exp.BuildWorld(exp.WorldOptions{Scale: 0.01, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("city: %d vertices, %d edges; %d requests over the day\n\n",
		world.Graph.N(), world.Graph.M(), len(world.Requests))

	for _, algo := range []sim.Algorithm{sim.AlgoTreeSlack, sim.AlgoBranchBound} {
		oracle := cache.New(sp.NewBidirectional(world.Graph), world.Graph.N(), 1<<20, 1<<12)
		s, err := sim.New(sim.Config{
			Graph:     world.Graph,
			Oracle:    oracle,
			Servers:   100,
			Capacity:  4,
			Algorithm: algo,
			Seed:      42,
		})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		m, err := s.Run(world.Requests)
		wall := time.Since(start)
		if err != nil {
			log.Fatalf("%s: %v", algo, err)
		}
		if err := s.CheckInvariants(); err != nil {
			log.Fatalf("%s: %v", algo, err)
		}
		max, mean, _ := m.OccupancyStats()
		fmt.Printf("%-12s  ACRT %-10v  matched %d/%d  detour x%.2f  peak occupancy max/mean %d/%.2f  (wall %v)\n",
			algo, m.ACRT(), m.Matched, m.Requests, m.MeanDetourFactor(), max, mean, wall.Round(time.Millisecond))
	}
	fmt.Println("\nexpected shape (paper Fig. 6): the kinetic tree answers requests ~2x faster than")
	fmt.Println("branch-and-bound while matching a comparable share of requests.")
}
