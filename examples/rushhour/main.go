// Rushhour: a fleet-scale comparison on a synthetic city with a morning and
// evening demand peak — the setting of the paper's §VI evaluation, scaled to
// run in seconds. The day of demand is drawn from the streaming workload
// generator's surge mode (internal/workload, non-homogeneous Poisson over
// the double rush-hour curve) and enters through the concurrent ingress
// gateway (internal/ingest): four producer goroutines submit the stream,
// and the stamped-order drain feeds each matcher — so both algorithms see
// the identical time-sorted demand a single producer would have produced.
// The gateway runs shed-oldest with enough queue capacity for the whole
// day, and the run asserts that nothing was actually shed at that
// configured capacity.
//
// It replays the same day through the kinetic tree and the
// branch-and-bound baseline and reports ACRT, match rate, and occupancy,
// showing the tree's response-time advantage on identical matching
// decisionspace.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cache"
	"repro/internal/ingest"
	"repro/internal/roadnet"
	"repro/internal/sim"
	"repro/internal/sp"
	"repro/internal/workload"
)

const (
	trips      = 2000
	producers  = 4
	queues     = 4
	queueDepth = 512 // queues x depth >= trips: the whole surge fits
)

func main() {
	// Just the graph: demand comes from the workload generator, so there is
	// no reason to pay for the full exp.BuildWorld trace it would replace.
	g, err := roadnet.SyntheticCity(roadnet.CityOptions{Scale: 0.01, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	// One materialized day, streamed through the gateway for each
	// algorithm, so the comparison stays apples to apples. (The surge
	// process can end at the horizon before reaching the Trips cap, so the
	// header counts the actual day, not the cap.)
	gen, err := workload.New(g, workload.Options{Pattern: workload.Surge, Trips: trips, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	day := gen.All()
	if err := gen.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("city: %d vertices, %d edges; %d surge-mode requests over the day\n\n",
		g.N(), g.M(), len(day))

	for _, algo := range []sim.Algorithm{sim.AlgoTreeSlack, sim.AlgoBranchBound} {
		oracle := cache.New(sp.NewBidirectional(g), g.N(), 1<<20, 1<<12)
		s, err := sim.New(sim.Config{
			Graph:     g,
			Oracle:    oracle,
			Servers:   100,
			Capacity:  4,
			Algorithm: algo,
			Seed:      42,
		})
		if err != nil {
			log.Fatal(err)
		}
		gw := ingest.New(ingest.Config{
			Queues: queues,
			Depth:  queueDepth,
			Policy: ingest.ShedOldest,
		})
		src := ingest.SliceSource(day)
		start := time.Now()
		driveErr := make(chan error, 1)
		go func() { driveErr <- ingest.Drive(gw, &src, producers) }()
		gw.Drain(func(r sim.Request) { s.Submit(r) })
		if err := <-driveErr; err != nil {
			log.Fatalf("%s: drive: %v", algo, err)
		}
		if err := s.Drain(); err != nil {
			log.Fatalf("%s: %v", algo, err)
		}
		wall := time.Since(start)
		if err := s.CheckInvariants(); err != nil {
			log.Fatalf("%s: %v", algo, err)
		}
		m := s.Metrics()
		gw.MetricsInto(m)
		if m.Shed() != 0 {
			log.Fatalf("%s: gateway shed %d requests at configured capacity %d x %d",
				algo, m.Shed(), queues, queueDepth)
		}
		max, mean, _ := m.OccupancyStats()
		fmt.Printf("%-12s  ACRT %-10v  matched %d/%d  detour x%.2f  peak occupancy max/mean %d/%.2f  (wall %v)\n",
			algo, m.ACRT(), m.Matched, m.Requests, m.MeanDetourFactor(), max, mean, wall.Round(time.Millisecond))
		fmt.Printf("              ingress: %d producers, admitted %d, shed 0, queue peak %d/%d, p99 wait %v\n",
			producers, m.Admitted, m.IngressQueuePeak, queueDepth, m.IngressWaitP99().Round(time.Microsecond))
	}
	fmt.Println("\nexpected shape (paper Fig. 6): the kinetic tree answers requests ~2x faster than")
	fmt.Println("branch-and-bound while matching a comparable share of requests.")
}
