// Airport: the scenario motivating hotspot clustering (paper §V). Eight
// passengers request pickups from the same airport curb within a short
// window; without clustering, every permutation of the clustered pickups is
// a distinct valid schedule and the kinetic tree explodes combinatorially
// ("8! = 40,320 possibilities already"). The hotspot variant merges the
// co-located points into one node and stays small, at a bounded extra cost
// of at most 2(m+1)·θ.
package main

import (
	"fmt"
	"log"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/roadnet"
	"repro/internal/sp"
)

func main() {
	g, err := roadnet.Grid(roadnet.GridOptions{
		Rows: 14, Cols: 14, Spacing: 300, Jitter: 0.15, WeightVar: 0.1, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	oracle := cache.New(sp.NewBidirectional(g), g.N(), 1<<16, 1<<10)

	// The "airport": vertex 0's corner of the grid; terminals are the
	// vertices adjacent to it. Dropoffs are spread across the city.
	airport := roadnet.VertexID(0)
	terminals, _ := g.Neighbors(airport)
	dropoffs := []roadnet.VertexID{97, 133, 188, 55, 142, 79, 191, 120}

	const wait = 25 * 60 * roadnet.Speed // generous: everyone shares
	const eps = 1.0                      // up to 2x the direct ride

	run := func(name string, opts core.TreeOptions) {
		tree := core.NewTree(oracle, airport, 0, opts)
		accepted := 0
		for i, d := range dropoffs {
			pickup := terminals[i%len(terminals)] // curbs cluster around the airport
			trip, err := core.NewTripState(int64(i), pickup, d, wait, eps, tree.Odo(), oracle)
			if err != nil {
				log.Fatal(err)
			}
			cand, ok, err := tree.TrialInsert(trip)
			if err != nil {
				fmt.Printf("%-14s request %d: tree blew past the node budget (%v)\n", name, i, err)
				return
			}
			if !ok {
				continue
			}
			tree.Commit(cand)
			accepted++
		}
		cost, _, _ := tree.Best()
		fmt.Printf("%-14s accepted %d/%d airport pickups, best schedule %.0f m, tree size %d nodes\n",
			name, accepted, len(dropoffs), cost, tree.Nodes())
	}

	// A modest budget makes the combinatorial difference visible: the
	// exact variants exhaust it, hotspot clustering sails through.
	const budget = 4000
	run("basic", core.TreeOptions{MaxTreeNodes: budget})
	run("slack", core.TreeOptions{Slack: true, MaxTreeNodes: budget})
	run("hotspot θ=600m", core.TreeOptions{Slack: true, HotspotTheta: 600, MaxTreeNodes: budget})
}
