// Quickstart: build a small road network, create one kinetic-tree server,
// and walk it through three ride requests — trial insertion, commit, and
// advancing along the chosen schedule. This is the minimal end-to-end use
// of the library's core API.
package main

import (
	"fmt"
	"log"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/roadnet"
	"repro/internal/sp"
)

func main() {
	// A 10x10 jittered grid, ~250 m blocks.
	g, err := roadnet.Grid(roadnet.GridOptions{
		Rows: 10, Cols: 10, Spacing: 250, Jitter: 0.2, WeightVar: 0.1, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Bidirectional Dijkstra behind the paper's dual LRU caches.
	oracle := cache.New(sp.NewBidirectional(g), g.N(), 1<<16, 1<<10)

	// One server at vertex 0 with capacity 4, slack-time filtering on.
	tree := core.NewTree(oracle, 0, 0, core.TreeOptions{Slack: true, Capacity: 4})

	// Service guarantee: pickup within 8,400 m of driving (10 minutes at
	// 14 m/s) and at most 20% detour on every ride.
	const wait = 10 * 60 * roadnet.Speed
	const eps = 0.2

	requests := []struct{ pickup, dropoff roadnet.VertexID }{
		{12, 87},
		{23, 78},
		{45, 9},
	}
	for i, r := range requests {
		trip, err := core.NewTripState(int64(i), r.pickup, r.dropoff, wait, eps, tree.Odo(), oracle)
		if err != nil {
			log.Fatal(err)
		}
		cand, ok, err := tree.TrialInsert(trip)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			fmt.Printf("request %d (%d -> %d): rejected, no valid augmented schedule\n", i, r.pickup, r.dropoff)
			continue
		}
		tree.Commit(cand)
		fmt.Printf("request %d (%d -> %d): accepted, schedule cost %.0f m, tree holds %d nodes\n",
			i, r.pickup, r.dropoff, cand.Cost, tree.Nodes())
	}

	cost, order, _ := tree.Best()
	fmt.Printf("\nchosen schedule (%.0f m):", cost)
	for _, s := range order {
		fmt.Printf(" %v", s)
	}
	fmt.Println()

	// Drive the schedule to completion.
	for !tree.Empty() {
		served, err := tree.Advance()
		if err != nil {
			log.Fatal(err)
		}
		for _, sv := range served {
			fmt.Printf("served %v at odometer %.0f m\n", sv.Stop, sv.Odo)
		}
	}
	fmt.Printf("all passengers delivered after %.0f m of driving\n", tree.Odo())
}
