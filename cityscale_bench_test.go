package repro

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/cache"
	"repro/internal/dispatch"
	"repro/internal/obs"
	"repro/internal/roadnet"
	"repro/internal/sim"
	"repro/internal/sp"
	"repro/internal/workload"
)

// BenchmarkCityScale is the capacity tier: 10k- and 100k-vehicle fleets on
// proportionally sized synthetic cities, fed a streamed request workload
// (internal/workload), matched by the dispatch engine with auto-tuned
// sharding and cell size. Each tier runs a GOMAXPROCS=1 row and a
// GOMAXPROCS=NumCPU row (identical on single-core hosts — read the
// gomaxprocs metric before comparing), measuring req/s, p99 match latency,
// allocated bytes per request, and GC pause time. With BENCH_JSON_DIR set,
// every row is folded into one aggregate BENCH_CityScale.json keyed
// fleet<tier>_p<procs>_<metric>, so benchcheck validates both tiers in one
// file.
//
// The waiting budget is 2 minutes rather than the paper's 10: at city
// scale the candidate disk must stay a neighborhood, not a third of the
// map, or every request would trial thousands of vehicles.
func BenchmarkCityScale(b *testing.B) {
	tiers := []struct {
		label string
		fleet int
		scale float64
		trips int
	}{
		{"10k", 10_000, 0.15, 120},
		{"100k", 100_000, 0.8, 80},
	}
	procRows := []int{1, runtime.NumCPU()}
	for _, tier := range tiers {
		g, err := roadnet.SyntheticCity(roadnet.CityOptions{Scale: tier.scale, Seed: 17})
		if err != nil {
			b.Fatal(err)
		}
		gen, err := workload.New(g, workload.Options{
			Pattern: workload.Poisson,
			Trips:   tier.trips,
			Rate:    2, // ~1 request/500ms of simulated time: a compact horizon
			Seed:    17,
		})
		if err != nil {
			b.Fatal(err)
		}
		reqs := gen.All()
		if err := gen.Err(); err != nil {
			b.Fatal(err)
		}
		factory := func() sp.Oracle {
			return cache.New(sp.NewBidirectional(g), g.N(), 1<<20, 1<<12)
		}
		seen := map[int]bool{}
		for _, procs := range procRows {
			if seen[procs] {
				continue // single-core host: the NumCPU row is the procs=1 row
			}
			seen[procs] = true
			b.Run(fmt.Sprintf("fleet=%s/procs=%d", tier.label, procs), func(b *testing.B) {
				prev := runtime.GOMAXPROCS(procs)
				defer runtime.GOMAXPROCS(prev)
				var m *sim.Metrics
				var allocBytes, allocObjs, gcPause uint64
				var ms0, ms1 runtime.MemStats
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					cfg := sim.Config{
						Graph:       g,
						Servers:     tier.fleet,
						Capacity:    4,
						WaitSeconds: 120,
						Algorithm:   sim.AlgoTreeSlack,
						Seed:        23,
						Workers:     procs,
						AutoTune:    true,
					}
					e, err := dispatch.New(cfg, factory)
					if err != nil {
						b.Fatal(err)
					}
					runtime.ReadMemStats(&ms0)
					b.StartTimer()
					for j := range reqs {
						e.Submit(reqs[j])
					}
					b.StopTimer()
					runtime.ReadMemStats(&ms1)
					allocBytes += ms1.TotalAlloc - ms0.TotalAlloc
					allocObjs += ms1.Mallocs - ms0.Mallocs
					gcPause += ms1.PauseTotalNs - ms0.PauseTotalNs
					m = e.Metrics()
					if m.Matched == 0 {
						b.Fatal("nothing matched at city scale")
					}
					e.Close()
					b.StartTimer()
				}
				nReq := float64(len(reqs)) * float64(b.N)
				reqPerSec := nReq / b.Elapsed().Seconds()
				p99Match := float64(m.MatchLatency.Quantile(0.99))
				bytesPerReq := float64(allocBytes) / nReq
				b.ReportMetric(reqPerSec, "req/s")
				b.ReportMetric(p99Match, "p99-match-ns")
				b.ReportMetric(bytesPerReq, "B/req")
				b.ReportMetric(float64(gcPause)/float64(b.N), "gc-pause-ns")
				b.ReportMetric(float64(m.TunedShards), "shards")
				b.ReportMetric(m.TunedCellSize, "cell-m")
				b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
				if dir := obs.BenchDir(); dir != "" {
					prefix := fmt.Sprintf("fleet%s_p%d_", tier.label, procs)
					mergeCityScaleBench(b, dir, prefix, map[string]float64{
						"req_per_sec":          reqPerSec,
						"p99_match_latency_ns": p99Match,
						"bytes_per_req":        bytesPerReq,
						"allocs_per_req":       float64(allocObjs) / nReq,
						"gc_pause_ns":          float64(gcPause) / float64(b.N),
						"gomaxprocs":           float64(procs),
						"tuned_shards":         float64(m.TunedShards),
						"tuned_cell_size_m":    m.TunedCellSize,
						"match_rate":           float64(m.Matched) / float64(m.Requests),
					})
				}
			})
		}
	}
}

// mergeCityScaleBench folds one tier/procs row into the aggregate
// BENCH_CityScale.json. Read-modify-write keeps the rows of every
// subbenchmark — and of separate invocations — in one benchcheck-valid
// file, so the 10k and 100k tiers always validate together.
func mergeCityScaleBench(b *testing.B, dir, prefix string, kv map[string]float64) {
	b.Helper()
	r := obs.NewBenchResult("CityScale")
	if data, err := os.ReadFile(filepath.Join(dir, "BENCH_CityScale.json")); err == nil {
		if prevRun, err := obs.ValidateBench(data); err == nil {
			r.Metrics = prevRun.Metrics
		}
	}
	for k, v := range kv {
		r.Metrics[prefix+k] = v
	}
	if err := obs.WriteBench(dir, r); err != nil {
		b.Fatal(err)
	}
}
