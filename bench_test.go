// Package repro's root benchmark harness: one benchmark per table and
// figure of the paper's evaluation (§VI). DESIGN.md §4 maps each figure to
// its benchmark. Two kinds of benchmarks appear here:
//
//   - ART benchmarks (Figs. 6a, 7a, 8a/b, 9a/b) measure one scheduling
//     trial on a prepared vehicle state with k active requests — exactly
//     the quantity those figures plot;
//   - ACRT benchmarks (Table I/II, Figs. 6b/c, 7b/c, 9c, occupancy) replay
//     a full miniature simulation, measuring end-to-end request matching.
//
// Run with: go test -bench=. -benchmem
package repro

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/roadnet"
	"repro/internal/sim"
	"repro/internal/sp"
)

// benchWorld is a small city shared by all benchmarks (static after init).
type benchWorld struct {
	g      *roadnet.Graph
	oracle sp.Oracle
	reqs   []sim.Request
}

var worldCache = map[int64]*benchWorld{}

func getWorld(b *testing.B, seed int64) *benchWorld {
	b.Helper()
	if w, ok := worldCache[seed]; ok {
		return w
	}
	world, err := exp.BuildWorld(exp.WorldOptions{Scale: 0.004, Trips: 150, Seed: seed})
	if err != nil {
		b.Fatal(err)
	}
	w := &benchWorld{
		g:      world.Graph,
		oracle: cache.New(sp.NewBidirectional(world.Graph), world.Graph.N(), 1<<20, 1<<12),
		reqs:   world.Requests,
	}
	worldCache[seed] = w
	return w
}

// scenario is a prepared vehicle state plus a new request to trial-insert.
type scenario struct {
	tree  *core.Tree     // fresh clone source is impossible; tree scenarios trial and discard
	inst  *core.Instance // for stateless schedulers (includes the new trip last)
	trial core.TripState
}

// makeScenarios builds vehicle states carrying k active trips under the
// given constraints, paired with a new nearby request.
func makeScenarios(b *testing.B, w *benchWorld, count, k, capacity int, waitMin, eps float64, treeOpts core.TreeOptions) []scenario {
	b.Helper()
	rng := rand.New(rand.NewSource(int64(k)*1000 + 7))
	waitMeters := waitMin * 60 * roadnet.Speed
	n := int32(w.g.N())
	var out []scenario
	for attempts := 0; len(out) < count && attempts < count*200; attempts++ {
		origin := roadnet.VertexID(rng.Int31n(n))
		opts := treeOpts
		opts.Capacity = capacity
		tree := core.NewTree(w.oracle, origin, 0, opts)
		var trips []core.TripState
		ok := true
		for len(trips) < k {
			s := roadnet.VertexID(rng.Int31n(n))
			e := roadnet.VertexID(rng.Int31n(n))
			if s == e {
				continue
			}
			ts, err := core.NewTripState(int64(len(trips)), s, e, waitMeters, eps, tree.Odo(), w.oracle)
			if err != nil {
				continue
			}
			cand, accepted, err := tree.TrialInsert(ts)
			if err != nil || !accepted {
				// This state can't grow to k trips; give up on it.
				if len(trips) == 0 {
					ok = false
					break
				}
				continue
			}
			tree.Commit(cand)
			trips = append(trips, ts)
			if len(trips) == k {
				break
			}
		}
		if !ok || len(trips) < k {
			continue
		}
		// The new request to trial.
		var trial core.TripState
		for {
			s := roadnet.VertexID(rng.Int31n(n))
			e := roadnet.VertexID(rng.Int31n(n))
			if s == e {
				continue
			}
			ts, err := core.NewTripState(int64(k), s, e, waitMeters, eps, tree.Odo(), w.oracle)
			if err != nil {
				continue
			}
			trial = ts
			break
		}
		inst := &core.Instance{Origin: origin, Odo: 0, Capacity: capacity}
		inst.Trips = append(inst.Trips, trips...)
		inst.Trips = append(inst.Trips, trial)
		out = append(out, scenario{tree: tree, inst: inst, trial: trial})
	}
	if len(out) == 0 {
		b.Fatalf("could not build any scenario with k=%d", k)
	}
	return out
}

// benchART measures one scheduling trial per iteration.
func benchART(b *testing.B, w *benchWorld, algo string, scens []scenario) {
	var sched core.Scheduler
	switch algo {
	case "bruteforce":
		sched = core.NewBruteForce(w.oracle)
	case "branchbound":
		sched = core.NewBranchBound(w.oracle)
	case "mip":
		m := core.NewMIPScheduler(w.oracle, 20000)
		m.SetTimeBudget(50 * time.Millisecond) // as in the simulator
		sched = m
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := scens[i%len(scens)]
		if sched != nil {
			res := sched.Schedule(sc.inst)
			_ = res
		} else {
			cand, ok, err := sc.tree.TrialInsert(sc.trial)
			_ = cand
			_ = ok
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// artBenchmark runs the ART benchmark grid for one figure.
func artBenchmark(b *testing.B, ks []int, capacity int, waitMin, eps float64, algos []string) {
	w := getWorld(b, 1)
	for _, k := range ks {
		for _, algo := range algos {
			b.Run(fmt.Sprintf("req=%d/%s", k, algo), func(b *testing.B) {
				opts := core.TreeOptions{}
				switch algo {
				case "ktree-slack":
					opts.Slack = true
				case "ktree-hotspot":
					opts.Slack = true
					opts.HotspotTheta = 300
				}
				scens := makeScenarios(b, w, 8, k, capacity, waitMin, eps, opts)
				benchART(b, w, algo, scens)
			})
		}
	}
}

// BenchmarkFig6a: ART vs scheduled requests, four algorithms
// (capacity 4, 10 min / 20%).
func BenchmarkFig6a(b *testing.B) {
	artBenchmark(b, []int{0, 1, 2, 3}, 4, 10, 0.2,
		[]string{"ktree-slack", "branchbound", "bruteforce", "mip"})
}

// BenchmarkFig7a: ART vs scheduled requests, tree variants
// (capacity 6, 10 min / 20%).
func BenchmarkFig7a(b *testing.B) {
	artBenchmark(b, []int{0, 2, 4, 6}, 6, 10, 0.2,
		[]string{"ktree", "ktree-slack", "ktree-hotspot"})
}

// BenchmarkFig8a: ART at 4 scheduled requests vs constraints, four
// algorithms.
func BenchmarkFig8a(b *testing.B) {
	w := getWorld(b, 1)
	for _, c := range exp.Constraints {
		for _, algo := range []string{"ktree-slack", "branchbound", "bruteforce", "mip"} {
			b.Run(fmt.Sprintf("%dmin-%dpct/%s", c.WaitMinutes, c.EpsPercent, algo), func(b *testing.B) {
				opts := core.TreeOptions{Slack: true}
				scens := makeScenarios(b, w, 8, 4, 4, float64(c.WaitMinutes), float64(c.EpsPercent)/100, opts)
				benchART(b, w, algo, scens)
			})
		}
	}
}

// BenchmarkFig8b: the servers dimension of Fig. 8 varies fleet density, not
// the per-trial problem, so the bench varies the trial workload clustering
// instead (more servers = less clustered per-vehicle load in the paper).
func BenchmarkFig8b(b *testing.B) {
	artBenchmark(b, []int{4}, 4, 10, 0.2,
		[]string{"ktree-slack", "branchbound", "bruteforce", "mip"})
}

// BenchmarkFig9a: ART at 6 scheduled requests vs constraints, tree variants.
func BenchmarkFig9a(b *testing.B) {
	w := getWorld(b, 1)
	for _, c := range exp.Constraints {
		for _, algo := range []string{"ktree", "ktree-slack", "ktree-hotspot"} {
			b.Run(fmt.Sprintf("%dmin-%dpct/%s", c.WaitMinutes, c.EpsPercent, algo), func(b *testing.B) {
				opts := core.TreeOptions{}
				switch algo {
				case "ktree-slack":
					opts.Slack = true
				case "ktree-hotspot":
					opts.Slack = true
					opts.HotspotTheta = 300
				}
				scens := makeScenarios(b, w, 8, 6, 6, float64(c.WaitMinutes), float64(c.EpsPercent)/100, opts)
				benchART(b, w, algo, scens)
			})
		}
	}
}

// BenchmarkFig9b: ART at 6 scheduled requests, tree variants (fleet-size
// dimension realized as per-vehicle load, as in Fig. 8b).
func BenchmarkFig9b(b *testing.B) {
	artBenchmark(b, []int{6}, 6, 10, 0.2,
		[]string{"ktree", "ktree-slack", "ktree-hotspot"})
}

// simBenchmark replays the benchmark workload through one configuration.
func simBenchmark(b *testing.B, algo sim.Algorithm, servers, capacity int) {
	w := getWorld(b, 2)
	for i := 0; i < b.N; i++ {
		s, err := sim.New(sim.Config{
			Graph:     w.g,
			Oracle:    w.oracle,
			Servers:   servers,
			Capacity:  capacity,
			Algorithm: algo,
			Seed:      9,
		})
		if err != nil {
			b.Fatal(err)
		}
		m, err := s.Run(w.reqs)
		if err != nil {
			b.Fatal(err)
		}
		if m.Violations != 0 {
			b.Fatalf("service violations: %d", m.Violations)
		}
		b.ReportMetric(float64(m.ACRT().Nanoseconds()), "acrt-ns")
	}
}

// BenchmarkTable1: full matching runs at the four-algorithm defaults.
func BenchmarkTable1(b *testing.B) {
	for _, algo := range []sim.Algorithm{
		sim.AlgoTreeSlack, sim.AlgoBranchBound, sim.AlgoBruteForce, sim.AlgoMIP,
	} {
		b.Run(algo.String(), func(b *testing.B) { simBenchmark(b, algo, 40, 4) })
	}
}

// BenchmarkTable2 and BenchmarkFig7bc: full matching runs at the tree
// defaults (capacity 6, smaller fleet).
func BenchmarkTable2(b *testing.B) {
	for _, algo := range []sim.Algorithm{
		sim.AlgoTreeBasic, sim.AlgoTreeSlack, sim.AlgoTreeHotspot,
	} {
		b.Run(algo.String(), func(b *testing.B) { simBenchmark(b, algo, 8, 6) })
	}
}

// BenchmarkFig6bc: the constraint/fleet sweeps of Figs. 6b/6c at their
// default point (the full sweep is cmd/experiments -exp fig6b,fig6c).
func BenchmarkFig6bc(b *testing.B) {
	for _, servers := range []int{10, 40, 80} {
		b.Run(fmt.Sprintf("servers=%d/ktree-slack", servers), func(b *testing.B) {
			simBenchmark(b, sim.AlgoTreeSlack, servers, 4)
		})
		b.Run(fmt.Sprintf("servers=%d/branchbound", servers), func(b *testing.B) {
			simBenchmark(b, sim.AlgoBranchBound, servers, 4)
		})
	}
}

// BenchmarkFig7bc: tree-variant fleet sweep at the tree defaults.
func BenchmarkFig7bc(b *testing.B) {
	for _, servers := range []int{4, 8, 20} {
		for _, algo := range []sim.Algorithm{sim.AlgoTreeBasic, sim.AlgoTreeSlack, sim.AlgoTreeHotspot} {
			b.Run(fmt.Sprintf("servers=%d/%s", servers, algo), func(b *testing.B) {
				simBenchmark(b, algo, servers, 6)
			})
		}
	}
}

// BenchmarkFig9c: capacity sweep including unlimited (capacity 0), tree
// variants; the hotspot variant is the one expected to stay flat.
func BenchmarkFig9c(b *testing.B) {
	for _, capacity := range []int{4, 6, 8, 0} {
		for _, algo := range []sim.Algorithm{sim.AlgoTreeSlack, sim.AlgoTreeHotspot} {
			name := fmt.Sprintf("cap=%d/%s", capacity, algo)
			if capacity == 0 {
				name = fmt.Sprintf("cap=unlim/%s", algo)
			}
			b.Run(name, func(b *testing.B) { simBenchmark(b, algo, 8, capacity) })
		}
	}
}

// BenchmarkDispatchThroughput: end-to-end matching throughput (requests/sec)
// of the sharded dispatch engine on a ≥1000-vehicle fleet, by worker count.
// workers=1 runs the fan-out inline on the caller and is the sequential
// baseline; on a multicore host (GOMAXPROCS > 1) higher counts beat it,
// which is the point of the sharding. The dense fleet makes every request
// trial against hundreds of candidate vehicles, exactly the load the engine
// parallelizes. The gomaxprocs metric is emitted so results from
// single-CPU hosts — where goroutines time-slice and >1 worker can only
// add overhead — are not misread as a scaling regression.
func BenchmarkDispatchThroughput(b *testing.B) {
	world, err := exp.BuildWorld(exp.WorldOptions{Scale: 0.008, Trips: 200, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	factory := func() sp.Oracle {
		return cache.New(sp.NewBidirectional(world.Graph), world.Graph.N(), 1<<20, 1<<12)
	}
	const fleet = 1200
	// The obs=on variants run the identical workload with lifecycle
	// tracing and live counters enabled — the acceptance bar is that full
	// instrumentation costs under 5% of throughput (assignments are
	// bit-identical either way; the traced equivalence tests pin that).
	for _, bc := range []struct {
		workers int
		obsOn   bool
	}{
		{1, false}, {2, false}, {4, false}, {8, false},
		{1, true}, {4, true},
	} {
		workers := bc.workers
		name := fmt.Sprintf("workers=%d", workers)
		if bc.obsOn {
			name += "/obs=on"
		}
		b.Run(name, func(b *testing.B) {
			var m *sim.Metrics
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := sim.Config{
					Graph:     world.Graph,
					Servers:   fleet,
					Capacity:  4,
					Algorithm: sim.AlgoTreeSlack,
					Seed:      9,
					Workers:   workers,
				}
				if bc.obsOn {
					cfg.Trace = obs.NewTracer(0)
					cfg.Live = &obs.Live{}
				}
				e, err := dispatch.New(cfg, factory)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for j := range world.Requests {
					e.Submit(world.Requests[j])
				}
				b.StopTimer()
				m = e.Metrics()
				if m.Matched == 0 {
					b.Fatal("nothing matched")
				}
				// Aggregate distance-cache hit rate across the shards, so a
				// single-core smoke run still shows whether the per-shard
				// caches are re-learning each other's distances.
				b.ReportMetric(m.DistCacheHitRate()*100, "dist-hit-%")
				e.Close()
				b.StartTimer()
			}
			reqPerSec := float64(len(world.Requests)) * float64(b.N) / b.Elapsed().Seconds()
			p99Match := m.MatchLatency.Quantile(0.99)
			b.ReportMetric(reqPerSec, "req/s")
			b.ReportMetric(float64(p99Match), "p99-match-ns")
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
			if dir := obs.BenchDir(); dir != "" {
				benchName := fmt.Sprintf("dispatch_throughput_workers%d", workers)
				if bc.obsOn {
					benchName += "_obs"
				}
				r := obs.NewBenchResult(benchName)
				r.Metrics["req_per_sec"] = reqPerSec
				r.Metrics["p99_match_latency_ns"] = float64(p99Match)
				r.Metrics["dist_cache_hit_rate"] = m.DistCacheHitRate()
				r.Metrics["path_cache_hit_rate"] = m.PathCacheHitRate()
				if err := obs.WriteBench(dir, r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTracedOverheadGuard: the acceptance guard for the observability
// layer's hot-path cost. It runs the BenchmarkDispatchThroughput/workers=1
// workload twice per round — untraced, then with full instrumentation
// (lifecycle events + causal spans + live counters) — interleaved, and
// compares the MINIMUM wall time of each variant across the rounds:
// min-of-N is robust to scheduler noise where means are not, so the guard
// can hard-fail instead of merely reporting. Traced must stay within 5%
// of untraced. Run with -benchtime=1x (the paired measurement is internal
// and independent of b.N).
func BenchmarkTracedOverheadGuard(b *testing.B) {
	world, err := exp.BuildWorld(exp.WorldOptions{Scale: 0.006, Trips: 150, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	factory := func() sp.Oracle {
		return cache.New(sp.NewBidirectional(world.Graph), world.Graph.N(), 1<<20, 1<<12)
	}
	run := func(traced bool) time.Duration {
		cfg := sim.Config{
			Graph:     world.Graph,
			Servers:   600,
			Capacity:  4,
			Algorithm: sim.AlgoTreeSlack,
			Seed:      9,
			Workers:   1,
		}
		if traced {
			cfg.Trace = obs.NewTracer(0)
			cfg.Live = &obs.Live{}
		}
		e, err := dispatch.New(cfg, factory)
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		for j := range world.Requests {
			e.Submit(world.Requests[j])
		}
		elapsed := time.Since(start)
		if e.Metrics().Matched == 0 {
			b.Fatal("nothing matched")
		}
		e.Close()
		return elapsed
	}
	// One warmup of each variant primes the oracle caches and the
	// allocator before anything is timed.
	run(false)
	run(true)
	const rounds = 7
	for i := 0; i < b.N; i++ {
		var minOff, minOn time.Duration
		for r := 0; r < rounds; r++ {
			if off := run(false); r == 0 || off < minOff {
				minOff = off
			}
			if on := run(true); r == 0 || on < minOn {
				minOn = on
			}
		}
		overhead := float64(minOn-minOff) / float64(minOff)
		b.ReportMetric(overhead*100, "traced-overhead-%")
		if overhead > 0.05 {
			b.Fatalf("traced run overhead %.2f%% (untraced min %v, traced min %v) exceeds the 5%% budget",
				overhead*100, minOff, minOn)
		}
	}
}

// BenchmarkDispatchCacheHitRate: the shared-vs-per-shard distance cache
// comparison on a multi-shard workload. Both configurations run the same
// fleet and request stream at 4 workers / 4 shards; "per-shard" gives each
// shard a cold private LRU (the pre-shared-stack layout), "shared" runs all
// shards against one striped cache.Shared. The dist-hit-% metric is the
// aggregate distance-cache hit rate — shared must be at least as high,
// since every shard's misses feed every other shard — and req/s plus
// gomaxprocs are emitted so throughput effects on single-core hosts are
// not misread.
func BenchmarkDispatchCacheHitRate(b *testing.B) {
	world, err := exp.BuildWorld(exp.WorldOptions{Scale: 0.008, Trips: 200, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	const workers = 4
	for _, mode := range []string{"per-shard", "shared"} {
		b.Run("cache="+mode, func(b *testing.B) {
			var hitRate float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := sim.Config{
					Graph:     world.Graph,
					Servers:   1200,
					Capacity:  4,
					Algorithm: sim.AlgoTreeSlack,
					Seed:      9,
					Workers:   workers,
				}
				var e *dispatch.Engine
				var err error
				if mode == "shared" {
					cfg.Oracle = cache.NewShared(func() sp.Oracle {
						return sp.NewBidirectional(world.Graph)
					}, world.Graph.N(), 1<<20, 1<<12, 0)
					e, err = dispatch.New(cfg, nil)
				} else {
					e, err = dispatch.New(cfg, func() sp.Oracle {
						return cache.New(sp.NewBidirectional(world.Graph), world.Graph.N(), 1<<20, 1<<12)
					})
				}
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for j := range world.Requests {
					e.Submit(world.Requests[j])
				}
				b.StopTimer()
				m := e.Metrics()
				if m.Matched == 0 {
					b.Fatal("nothing matched")
				}
				hitRate = m.DistCacheHitRate()
				e.Close()
				b.StartTimer()
			}
			b.ReportMetric(hitRate*100, "dist-hit-%")
			b.ReportMetric(float64(len(world.Requests))*float64(b.N)/b.Elapsed().Seconds(), "req/s")
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
		})
	}
}

// BenchmarkDispatchBatchThroughput: the same fleet matched in 30-second
// batch windows, the batching route to throughput of Simonetto et al.
func BenchmarkDispatchBatchThroughput(b *testing.B) {
	world, err := exp.BuildWorld(exp.WorldOptions{Scale: 0.008, Trips: 200, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	factory := func() sp.Oracle {
		return cache.New(sp.NewBidirectional(world.Graph), world.Graph.N(), 1<<20, 1<<12)
	}
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := sim.Config{
					Graph:       world.Graph,
					Servers:     1200,
					Capacity:    4,
					Algorithm:   sim.AlgoTreeSlack,
					Seed:        9,
					Workers:     workers,
					BatchWindow: 30,
				}
				e, err := dispatch.New(cfg, factory)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for j := range world.Requests {
					e.Enqueue(world.Requests[j])
				}
				e.Flush()
				b.StopTimer()
				e.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(len(world.Requests))*float64(b.N)/b.Elapsed().Seconds(), "req/s")
		})
	}
}

// BenchmarkBatchConflictRepair: dense batch windows on a scarce fleet —
// the worst case for intra-batch conflicts, and the tail-latency hot spot
// batching is meant to fix. Incremental repair re-trials only the
// candidates dirtied by earlier commits in the flush and merges them with
// the surviving clean phase-1 trials; `trials-saved` counts the trial
// insertions a full re-fan-out would have re-run per run, and
// `saved/conflict` is the per-conflicted-request reduction (strictly
// positive whenever a conflicted request had any clean or infeasible
// candidates). Run under -race in CI so the repair path's shard fan-out is
// exercised by the detector.
func BenchmarkBatchConflictRepair(b *testing.B) {
	world, err := exp.BuildWorld(exp.WorldOptions{Scale: 0.008, Trips: 200, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	factory := func() sp.Oracle {
		return cache.New(sp.NewBidirectional(world.Graph), world.Graph.N(), 1<<20, 1<<12)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var m *sim.Metrics
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := sim.Config{
					Graph:       world.Graph,
					Servers:     60, // scarce: every window contends for the same vehicles
					Capacity:    4,
					Algorithm:   sim.AlgoTreeSlack,
					Seed:        9,
					Workers:     workers,
					BatchWindow: 300,
				}
				e, err := dispatch.New(cfg, factory)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for j := range world.Requests {
					e.Enqueue(world.Requests[j])
				}
				e.Flush()
				b.StopTimer()
				m = e.Metrics()
				if m.ConflictsRepaired == 0 {
					b.Fatal("no conflicts repaired — the workload never exercised the repair path")
				}
				e.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(m.ConflictsRepaired), "conflicts")
			b.ReportMetric(float64(m.RetrialTrialsSaved), "trials-saved")
			b.ReportMetric(float64(m.RetrialTrialsSaved)/float64(m.ConflictsRepaired), "saved/conflict")
			b.ReportMetric(float64(len(world.Requests))*float64(b.N)/b.Elapsed().Seconds(), "req/s")
		})
	}
}

// BenchmarkOccupancy: unlimited-capacity run reporting the occupancy stats
// of §VI-B alongside the timing.
func BenchmarkOccupancy(b *testing.B) {
	w := getWorld(b, 2)
	for i := 0; i < b.N; i++ {
		s, err := sim.New(sim.Config{
			Graph:     w.g,
			Oracle:    w.oracle,
			Servers:   8,
			Capacity:  0,
			Algorithm: sim.AlgoTreeHotspot,
			Seed:      9,
		})
		if err != nil {
			b.Fatal(err)
		}
		m, err := s.Run(w.reqs)
		if err != nil {
			b.Fatal(err)
		}
		max, mean, top := m.OccupancyStats()
		b.ReportMetric(float64(max), "peak-max")
		b.ReportMetric(mean, "peak-mean")
		b.ReportMetric(top, "peak-top20")
	}
}
