package workload

import (
	"math"
	"testing"

	"repro/internal/roadnet"
)

func testGraph(t testing.TB) *roadnet.Graph {
	t.Helper()
	g, err := roadnet.Grid(roadnet.GridOptions{
		Rows: 20, Cols: 20, Spacing: 400, Jitter: 0.2, WeightVar: 0.1, Seed: 7,
	})
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	return g
}

// TestStreamDeterministic: the same options must produce the identical
// stream request for request — the property multi-producer reproducibility
// rests on.
func TestStreamDeterministic(t *testing.T) {
	g := testGraph(t)
	for _, p := range []Pattern{Poisson, Surge, Hotspot} {
		opt := Options{Pattern: p, Trips: 300, Seed: 11}
		a, err := New(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		ra, rb := a.All(), b.All()
		if len(ra) == 0 || len(ra) != len(rb) {
			t.Fatalf("%v: stream lengths %d vs %d", p, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("%v: request %d diverges: %+v vs %+v", p, i, ra[i], rb[i])
			}
		}
	}
}

// TestStreamShape: times are strictly increasing within the horizon, IDs
// sequential, endpoints valid and far enough apart.
func TestStreamShape(t *testing.T) {
	g := testGraph(t)
	for _, p := range []Pattern{Poisson, Surge, Hotspot} {
		gen, err := New(g, Options{Pattern: p, Trips: 400, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		last := math.Inf(-1)
		n := 0
		for {
			req, ok := gen.Next()
			if !ok {
				break
			}
			if req.Time <= last {
				t.Fatalf("%v: time went backwards: %v after %v", p, req.Time, last)
			}
			last = req.Time
			if req.Time < 0 || req.Time > 86400 {
				t.Fatalf("%v: time %v outside horizon", p, req.Time)
			}
			if req.ID != int64(n) {
				t.Fatalf("%v: ID %d at position %d", p, req.ID, n)
			}
			if int(req.Pickup) >= g.N() || int(req.Dropoff) >= g.N() || req.Pickup == req.Dropoff {
				t.Fatalf("%v: bad endpoints %d -> %d", p, req.Pickup, req.Dropoff)
			}
			if g.EuclideanDist(req.Pickup, req.Dropoff) < 1000 {
				t.Fatalf("%v: trip below MinTripMeters", p)
			}
			n++
		}
		if n == 0 {
			t.Fatalf("%v: empty stream", p)
		}
		// Exhausted generators stay exhausted.
		if _, ok := gen.Next(); ok {
			t.Fatalf("%v: stream resumed after ending", p)
		}
	}
}

// TestSurgeConcentratesInPeaks: the surge stream must put substantially
// more demand into the rush-hour windows than a uniform process would —
// the property rushhour-style scenarios rely on.
func TestSurgeConcentratesInPeaks(t *testing.T) {
	g := testGraph(t)
	gen, err := New(g, Options{Pattern: Surge, Rate: 0.05, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	inPeak, total := 0, 0
	for {
		req, ok := gen.Next()
		if !ok {
			break
		}
		h := req.Time / 3600
		if (h >= 7 && h <= 10) || (h >= 16 && h <= 20) {
			inPeak++
		}
		total++
	}
	if total < 500 {
		t.Fatalf("surge stream too short: %d", total)
	}
	// The two windows cover 7/24 ≈ 29%% of the day; the double-peak curve
	// concentrates well over half the demand there.
	if frac := float64(inPeak) / float64(total); frac < 0.5 {
		t.Fatalf("only %.0f%% of surge demand in rush-hour windows", frac*100)
	}
}

// TestHotspotConcentratesPickups: the hotspot pattern must cluster
// pickups far more tightly than dropoffs.
func TestHotspotConcentratesPickups(t *testing.T) {
	g := testGraph(t)
	gen, err := New(g, Options{Pattern: Hotspot, Trips: 500, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	reqs := gen.All()
	if len(reqs) < 400 {
		t.Fatalf("stream too short: %d", len(reqs))
	}
	pickups := make(map[roadnet.VertexID]int)
	dropoffs := make(map[roadnet.VertexID]int)
	for _, r := range reqs {
		pickups[r.Pickup]++
		dropoffs[r.Dropoff]++
	}
	if len(pickups)*2 >= len(dropoffs) {
		t.Fatalf("pickups hit %d distinct vertices vs %d dropoffs — not clustered",
			len(pickups), len(dropoffs))
	}
}

// TestRateDerivation: a Trips-capped stream with no explicit rate spans
// most of the horizon instead of front-loading.
func TestRateDerivation(t *testing.T) {
	g := testGraph(t)
	gen, err := New(g, Options{Pattern: Poisson, Trips: 300, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	reqs := gen.All()
	if len(reqs) == 0 {
		t.Fatal("empty stream")
	}
	if last := reqs[len(reqs)-1].Time; last < 86400/4 {
		t.Fatalf("300 trips ended at t=%.0f — rate not derived from horizon", last)
	}
}

// TestOptionValidation covers constructor misuse.
func TestOptionValidation(t *testing.T) {
	g := testGraph(t)
	if _, err := New(g, Options{Pattern: Poisson}); err == nil {
		t.Fatal("neither Trips nor Rate must be rejected")
	}
	if _, err := ParsePattern("rush"); err == nil {
		t.Fatal("unknown pattern accepted")
	}
	for _, p := range []Pattern{Poisson, Surge, Hotspot} {
		got, err := ParsePattern(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePattern(%q) = %v, %v", p.String(), got, err)
		}
	}
}

// TestSamplingExhaustionReported: when the spatial mix cannot produce a
// valid trip (every vertex pair shorter than MinTripMeters), the stream
// must end with a non-nil Err instead of masquerading as a normal horizon
// ending.
func TestSamplingExhaustionReported(t *testing.T) {
	g := testGraph(t)
	gen, err := New(g, Options{Pattern: Poisson, Trips: 50, Seed: 3, MinTripMeters: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if reqs := gen.All(); len(reqs) != 0 {
		t.Fatalf("impossible mix emitted %d requests", len(reqs))
	}
	if gen.Err() == nil {
		t.Fatal("sampling exhaustion not reported via Err")
	}
	// The normal endings stay err-free.
	ok, err := New(g, Options{Pattern: Poisson, Trips: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The Poisson process may run out the horizon under the Trips cap;
	// either way the ending is normal.
	if n := len(ok.All()); n == 0 {
		t.Fatal("normal stream emitted nothing")
	}
	if err := ok.Err(); err != nil {
		t.Fatalf("normal ending reported %v", err)
	}
}
