// Package workload is the streaming open-loop load generator: it produces
// an unbounded-in-principle, time-sorted trip-request stream one request
// at a time, instead of materializing a day of demand as a slice the way
// internal/trace does. Open-loop means arrivals follow a stochastic
// process independent of how fast the system drains them — the
// load-testing discipline real-time dispatchers are judged under — and
// streaming means the driver (ingest.Drive) can fan the requests out to
// concurrent producer goroutines as they are drawn.
//
// Three arrival patterns cover the paper-shaped scenarios:
//
//   - Poisson: homogeneous arrivals at a constant mean rate, endpoints
//     drawn from the usual uniform/hotspot mixture — steady city traffic;
//   - Surge: a non-homogeneous Poisson process (thinning) against the
//     double rush-hour day curve — morning and evening peaks over a
//     nighttime trough, the demand shape of the paper's Shanghai day;
//   - Hotspot: homogeneous arrivals whose pickups concentrate on a few
//     tight clusters (airport curbs, stadium gates) while dropoffs spread
//     city-wide — the spatial mix that stresses kinetic-tree blow-up and
//     motivates hotspot clustering (paper §V).
//
// A Generator is deterministic for a fixed seed: the same options produce
// the same stream request for request, which is what makes multi-producer
// ingress runs reproducible and comparable against single-producer
// baselines.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/obs"
	"repro/internal/roadnet"
	"repro/internal/sim"
)

// Pattern selects the arrival process and spatial mix.
type Pattern int

const (
	// Poisson is steady traffic: exponential inter-arrivals at the mean
	// rate, mixed uniform/hotspot endpoints.
	Poisson Pattern = iota
	// Surge follows the double rush-hour day curve via thinning.
	Surge
	// Hotspot concentrates pickups on a few tight clusters with
	// city-wide dropoffs.
	Hotspot
)

func (p Pattern) String() string {
	switch p {
	case Poisson:
		return "poisson"
	case Surge:
		return "surge"
	case Hotspot:
		return "hotspot"
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// ParsePattern maps the CLI spellings (poisson, surge, hotspot) to a
// Pattern.
func ParsePattern(s string) (Pattern, error) {
	for _, p := range []Pattern{Poisson, Surge, Hotspot} {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown arrival pattern %q", s)
}

// Options configures a Generator. Zero values select the defaults noted
// per field.
type Options struct {
	Pattern Pattern
	// Trips caps the stream length when positive; with Trips == 0 the
	// stream ends at the horizon with however many requests the arrival
	// process produced.
	Trips int
	// HorizonSeconds bounds request times (default 86400, one day).
	HorizonSeconds float64
	// Rate is the mean arrival rate in requests/second. 0 derives it
	// from Trips over the horizon (so a Trips-capped stream spans the
	// whole day on average); with both zero, New fails.
	Rate float64
	// Hotspots is the number of high-demand clusters (default 8; the
	// Hotspot pattern defaults to 3 tighter ones).
	Hotspots int
	// HotspotSigma is a cluster's spatial spread in meters (default 800;
	// 300 for the Hotspot pattern).
	HotspotSigma float64
	// HotspotFrac is the fraction of endpoints drawn from clusters
	// (default 0.6; for the Hotspot pattern, the fraction of pickups,
	// default 0.9).
	HotspotFrac float64
	// MinTripMeters rejects trips shorter than this Euclidean length
	// (default 1000).
	MinTripMeters float64
	Seed          int64
	// Trace, when non-nil, stamps a KindGenerated lifecycle event for every
	// request drawn from the stream (ring label "workload"). Tracing never
	// alters the stream: the same seed and options produce the same
	// requests with tracing on or off.
	Trace *obs.Tracer
}

func (o Options) withDefaults() Options {
	if o.HorizonSeconds == 0 {
		o.HorizonSeconds = 86400
	}
	if o.Hotspots == 0 {
		if o.Pattern == Hotspot {
			o.Hotspots = 3
		} else {
			o.Hotspots = 8
		}
	}
	if o.HotspotSigma == 0 {
		if o.Pattern == Hotspot {
			o.HotspotSigma = 300
		} else {
			o.HotspotSigma = 800
		}
	}
	if o.HotspotFrac == 0 {
		if o.Pattern == Hotspot {
			o.HotspotFrac = 0.9
		} else {
			o.HotspotFrac = 0.6
		}
	}
	if o.MinTripMeters == 0 {
		o.MinTripMeters = 1000
	}
	return o
}

// DayCurve is the relative request intensity at time-of-day t over the
// horizon: morning and evening rush-hour peaks over a nighttime trough
// (mean ≈ 0.5 over the day). It is THE demand curve of the repo — the
// trace replayer (internal/trace) and the Surge pattern both draw from it,
// so tuning it retunes replayed and streamed demand together.
func DayCurve(t, horizon float64) float64 {
	h := 24 * t / horizon // hour of day
	peak := func(center, width float64) float64 {
		d := (h - center) / width
		return math.Exp(-d * d / 2)
	}
	return 0.15 + peak(8.5, 1.5) + 0.9*peak(18, 2)
}

// Generator draws the stream. Not safe for concurrent use: one goroutine
// pulls (ingest.Drive does this) and fans out from there.
type Generator struct {
	opt     Options
	g       *roadnet.Graph
	rng     *rand.Rand
	locator *roadnet.VertexLocator

	spots                  []spot
	minX, minY, maxX, maxY float64

	baseRate  float64 // homogeneous rate, or the thinning envelope
	shapeMax  float64 // max of DayCurve over the horizon
	shapeMean float64 // mean of DayCurve over the horizon

	t     float64 // current stream time
	count int     // requests emitted
	done  bool
	err   error     // sampling failure that ended the stream early
	ring  *obs.Ring // KindGenerated events (nil = tracing off)
}

type spot struct{ x, y float64 }

// New builds a generator over g. Either Trips or Rate must be positive.
func New(g *roadnet.Graph, opt Options) (*Generator, error) {
	opt = opt.withDefaults()
	if g.N() < 2 {
		return nil, fmt.Errorf("workload: graph too small (%d vertices)", g.N())
	}
	if opt.Trips <= 0 && opt.Rate <= 0 {
		return nil, fmt.Errorf("workload: need Trips or Rate")
	}
	gen := &Generator{
		opt:     opt,
		g:       g,
		rng:     rand.New(rand.NewSource(opt.Seed)),
		locator: roadnet.NewVertexLocator(g, 8),
		ring:    opt.Trace.Ring("workload"),
	}
	gen.minX, gen.minY, gen.maxX, gen.maxY = g.Bounds()
	for i := 0; i < opt.Hotspots; i++ {
		gen.spots = append(gen.spots, spot{
			x: gen.minX + gen.rng.Float64()*(gen.maxX-gen.minX),
			y: gen.minY + gen.rng.Float64()*(gen.maxY-gen.minY),
		})
	}
	// Deterministic numeric sweep of the day curve for the thinning
	// envelope and the Trips -> Rate normalization.
	gen.shapeMax, gen.shapeMean = 0, 0
	const samples = 200
	for i := 0; i < samples; i++ {
		s := DayCurve(opt.HorizonSeconds*float64(i)/samples, opt.HorizonSeconds)
		gen.shapeMax = math.Max(gen.shapeMax, s)
		gen.shapeMean += s / samples
	}
	rate := opt.Rate
	if rate <= 0 {
		rate = float64(opt.Trips) / opt.HorizonSeconds
	}
	if opt.Pattern == Surge {
		// rate is the desired mean; the envelope rate is scaled so that
		// thinning against shape/shapeMax preserves that mean.
		gen.baseRate = rate * gen.shapeMax / gen.shapeMean
	} else {
		gen.baseRate = rate
	}
	return gen, nil
}

// Next draws the following request: a monotone arrival time from the
// pattern's process and endpoints from its spatial mix, snapped to graph
// vertices. ok is false once the stream has ended — Trips emitted, the
// horizon passed, or trip sampling failed (the one abnormal ending,
// reported by Err).
func (gen *Generator) Next() (req sim.Request, ok bool) {
	if gen.done || (gen.opt.Trips > 0 && gen.count >= gen.opt.Trips) {
		gen.done = true
		return sim.Request{}, false
	}
	for {
		// Exponential inter-arrival against the envelope rate...
		gen.t += gen.rng.ExpFloat64() / gen.baseRate
		if gen.t > gen.opt.HorizonSeconds {
			gen.done = true
			return sim.Request{}, false
		}
		// ...thinned by the day curve for the non-homogeneous Surge.
		if gen.opt.Pattern == Surge &&
			gen.rng.Float64()*gen.shapeMax > DayCurve(gen.t, gen.opt.HorizonSeconds) {
			continue
		}
		break
	}
	s, e, ok := gen.sampleTrip()
	if !ok {
		// Not a normal end: the spatial mix can't produce a valid trip on
		// this graph. End the stream but record it, so callers can tell a
		// truncated workload from one that ran out the horizon (Err).
		gen.done = true
		gen.err = fmt.Errorf(
			"workload: no valid trip after 200 samples at t=%.0fs (%d emitted); graph too small for MinTripMeters=%.0f?",
			gen.t, gen.count, gen.opt.MinTripMeters)
		return sim.Request{}, false
	}
	req = sim.Request{ID: int64(gen.count), Time: gen.t, Pickup: s, Dropoff: e}
	gen.count++
	gen.ring.Emit(obs.KindGenerated, req.ID, req.Time, 0)
	return req, true
}

// sampleTrip draws one (pickup, dropoff) pair per the pattern's spatial
// mix, rejecting degenerate and too-short trips.
func (gen *Generator) sampleTrip() (s, e roadnet.VertexID, ok bool) {
	for tries := 0; tries < 200; tries++ {
		var sx, sy, ex, ey float64
		if gen.opt.Pattern == Hotspot {
			// Clustered pickups (airport curbs), city-wide dropoffs.
			sx, sy = gen.samplePoint(gen.opt.HotspotFrac)
			ex, ey = gen.sampleUniform()
		} else {
			sx, sy = gen.samplePoint(gen.opt.HotspotFrac)
			ex, ey = gen.samplePoint(gen.opt.HotspotFrac)
		}
		s = gen.locator.Nearest(sx, sy)
		e = gen.locator.Nearest(ex, ey)
		if s != e && gen.g.EuclideanDist(s, e) >= gen.opt.MinTripMeters {
			return s, e, true
		}
	}
	return 0, 0, false
}

// samplePoint draws from the cluster mixture: with probability frac a
// Gaussian around a random hotspot, otherwise uniform over the bounds.
func (gen *Generator) samplePoint(frac float64) (float64, float64) {
	if gen.rng.Float64() < frac && len(gen.spots) > 0 {
		s := gen.spots[gen.rng.Intn(len(gen.spots))]
		return s.x + gen.rng.NormFloat64()*gen.opt.HotspotSigma,
			s.y + gen.rng.NormFloat64()*gen.opt.HotspotSigma
	}
	return gen.sampleUniform()
}

func (gen *Generator) sampleUniform() (float64, float64) {
	return gen.minX + gen.rng.Float64()*(gen.maxX-gen.minX),
		gen.minY + gen.rng.Float64()*(gen.maxY-gen.minY)
}

// Err reports why the stream ended early, if it did: non-nil only when
// trip sampling failed (the graph can't satisfy the spatial mix), nil for
// the normal Trips-cap and horizon endings. Check it after the stream is
// drained.
func (gen *Generator) Err() error { return gen.err }

// All drains the remaining stream into a slice — the bridge to the
// slice-replay engines and to baselines that need the same demand twice
// (regenerate with the same seed for an identical stream).
func (gen *Generator) All() []sim.Request {
	var out []sim.Request
	for {
		req, ok := gen.Next()
		if !ok {
			return out
		}
		out = append(out, req)
	}
}
