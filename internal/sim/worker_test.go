package sim

import (
	"testing"

	"repro/internal/roadnet"
	"repro/internal/sp"
)

// splitWorld is a two-component graph: vertices {0,1} and {2,3} are each
// connected internally but unreachable from one another, while all four sit
// within a few hundred meters so the Euclidean pre-filter never skips a
// trial.
func splitWorld(t *testing.T) *roadnet.Graph {
	t.Helper()
	b := roadnet.NewBuilder(4)
	b.SetCoord(0, 0, 0)
	b.SetCoord(1, 300, 0)
	b.SetCoord(2, 0, 300)
	b.SetCoord(3, 300, 300)
	b.AddEdge(0, 1, 300)
	b.AddEdge(2, 3, 300)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestTrialFailureCountingUnreachable: a trial whose dropoff is unreachable
// from the pickup (NewTripState error) must count as a TrialFailure like
// every other infeasible path, on both the kinetic-tree and the stateless
// scheduling paths.
func TestTrialFailureCountingUnreachable(t *testing.T) {
	g := splitWorld(t)
	for _, algo := range []Algorithm{AlgoTreeSlack, AlgoBranchBound} {
		cfg := Config{Graph: g, Oracle: sp.NewDijkstra(g), Servers: 1, Capacity: 4, Algorithm: algo, Seed: 1}
		m := NewMetrics()
		w := NewWorker(cfg, cfg.Oracle, m)
		v := w.NewVehicle(0, 0)

		// Pickup in the vehicle's component, dropoff in the other.
		req := Request{ID: 1, Time: 0, Pickup: 1, Dropoff: 2}
		waitMeters, eps := w.Budget(req)
		px, py := g.Coord(req.Pickup)
		if _, ok := w.Trial(v, req, px, py, waitMeters, eps); ok {
			t.Fatalf("%s: trial with unreachable dropoff succeeded", algo)
		}
		if m.TrialCalls != 1 {
			t.Fatalf("%s: TrialCalls=%d, want 1", algo, m.TrialCalls)
		}
		if m.TrialFailures != 1 {
			t.Fatalf("%s: TrialFailures=%d, want 1 — unreachable dropoff not counted as a failure", algo, m.TrialFailures)
		}

		// A reachable trip on the same vehicle still succeeds and does not
		// add a failure.
		req = Request{ID: 2, Time: 0, Pickup: 0, Dropoff: 1}
		px, py = g.Coord(req.Pickup)
		if _, ok := w.Trial(v, req, px, py, waitMeters, eps); !ok {
			t.Fatalf("%s: feasible trial failed", algo)
		}
		if m.TrialFailures != 1 {
			t.Fatalf("%s: TrialFailures=%d after a feasible trial, want 1", algo, m.TrialFailures)
		}
	}
}
