package sim

import (
	"math"
	"testing"

	"repro/internal/roadnet"
)

// newIdleSim builds a 1-vehicle simulator for motion tests.
func newIdleSim(t *testing.T, algo Algorithm) *Simulator {
	t.Helper()
	g, oracle, _ := testSetup(t, 1)
	s, err := New(Config{Graph: g, Oracle: oracle, Servers: 1, Capacity: 4, Algorithm: algo, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCruiseConsumesBudget: an idle vehicle moves at roadnet.Speed and its
// odometer tracks elapsed time.
func TestCruiseConsumesBudget(t *testing.T) {
	s := newIdleSim(t, AlgoTreeSlack)
	v := s.vehicles[0]
	s.advanceTo(v, 100) // 100 seconds = 1400 m of driving budget
	if v.odo > 100*roadnet.Speed+1e-6 {
		t.Fatalf("odometer %v exceeds budget %v", v.odo, 100*roadnet.Speed)
	}
	// Vertex-granular motion can leave at most one edge of slack.
	maxEdge := 0.0
	ts, ws := s.graph.Neighbors(v.loc)
	for i := range ts {
		maxEdge = math.Max(maxEdge, ws[i])
	}
	if v.odo < 100*roadnet.Speed-2*maxEdge {
		t.Fatalf("odometer %v too small for 100s of cruising", v.odo)
	}
	if v.clock != 100 {
		t.Fatalf("clock %v, want 100", v.clock)
	}
}

// TestAdvanceToIsMonotonic: advancing to an earlier time is a no-op.
func TestAdvanceToIsMonotonic(t *testing.T) {
	s := newIdleSim(t, AlgoTreeSlack)
	v := s.vehicles[0]
	s.advanceTo(v, 50)
	odo := v.odo
	s.advanceTo(v, 10)
	if v.odo != odo || v.clock != 50 {
		t.Fatal("advanceTo went backwards")
	}
}

// TestServeDeliversPassenger: submit one request near the vehicle and drive
// until both stops are served; accounting must record the wait and ride.
func TestServeDeliversPassenger(t *testing.T) {
	for _, algo := range []Algorithm{AlgoTreeSlack, AlgoBranchBound} {
		s := newIdleSim(t, algo)
		v := s.vehicles[0]
		// Pick stops reachable well within the waiting budget.
		pickup := v.loc
		var dropoff roadnet.VertexID
		for d := 0; d < s.graph.N(); d++ {
			dd := s.oracle.Dist(pickup, roadnet.VertexID(d))
			if dd > 1500 && dd < 4000 {
				dropoff = roadnet.VertexID(d)
				break
			}
		}
		matched, veh := s.Submit(Request{ID: 7, Time: 1, Pickup: pickup, Dropoff: dropoff})
		if !matched || veh != 0 {
			t.Fatalf("%v: request not matched to the only vehicle (matched=%v veh=%d)", algo, matched, veh)
		}
		s.advanceTo(v, 4000) // plenty of time to finish
		if v.Busy() {
			t.Fatalf("%v: vehicle still busy after an hour", algo)
		}
		if s.metrics.Completed != 1 {
			t.Fatalf("%v: completed=%d", algo, s.metrics.Completed)
		}
		if s.metrics.Violations != 0 {
			t.Fatalf("%v: violations=%d", algo, s.metrics.Violations)
		}
		if s.metrics.TotalRideMeters <= 0 || s.metrics.TotalWaitMeters < 0 {
			t.Fatalf("%v: accounting wait=%v ride=%v", algo, s.metrics.TotalWaitMeters, s.metrics.TotalRideMeters)
		}
	}
}

// TestRejectedWhenNoServerInRange: a request far from the only (pinned)
// vehicle must be rejected.
func TestRejectedWhenNoServerInRange(t *testing.T) {
	g, oracle, _ := testSetup(t, 1)
	s, err := New(Config{
		Graph: g, Oracle: oracle, Servers: 1, Capacity: 4,
		Algorithm:   AlgoTreeSlack,
		WaitSeconds: 30, // 420 m of waiting budget
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	v := s.vehicles[0]
	// Find a pickup more than the waiting budget away from the vehicle.
	var far roadnet.VertexID = -1
	for d := 0; d < g.N(); d++ {
		if oracle.Dist(v.loc, roadnet.VertexID(d)) > 2000 {
			far = roadnet.VertexID(d)
			break
		}
	}
	if far < 0 {
		t.Skip("graph too small")
	}
	ts, _ := g.Neighbors(far)
	matched, _ := s.Submit(Request{ID: 1, Time: 0.1, Pickup: far, Dropoff: ts[0]})
	if matched {
		t.Fatal("matched a request outside every server's waiting range")
	}
	if s.metrics.Rejected != 1 {
		t.Fatalf("rejected=%d", s.metrics.Rejected)
	}
}

// TestMetricsARTBuckets checks bucket bookkeeping.
func TestMetricsARTBuckets(t *testing.T) {
	m := newMetrics()
	m.recordART(0, 100)
	m.recordART(0, 300)
	m.recordART(2, 500)
	if d, n := m.ART(0); n != 2 || d != 200 {
		t.Fatalf("ART(0) = %v, %d", d, n)
	}
	if d, n := m.ART(1); n != 0 || d != 0 {
		t.Fatalf("ART(1) = %v, %d", d, n)
	}
	buckets := m.ARTBuckets()
	if len(buckets) != 2 || buckets[0] != 0 || buckets[1] != 2 {
		t.Fatalf("buckets %v", buckets)
	}
	if m.TrialCalls != 3 {
		t.Fatalf("TrialCalls=%d", m.TrialCalls)
	}
}

// TestOccupancyStats checks the top-20% computation.
func TestOccupancyStats(t *testing.T) {
	m := newMetrics()
	for _, p := range []int{1, 1, 1, 1, 2, 2, 3, 3, 4, 17} {
		m.AddOccupancy(p)
	}
	max, mean, top := m.OccupancyStats()
	if max != 17 {
		t.Fatalf("max=%d", max)
	}
	if math.Abs(mean-3.5) > 1e-9 {
		t.Fatalf("mean=%v", mean)
	}
	// ceil(20% of 10) = 2 servers: 17 and 4 -> 10.5.
	if math.Abs(top-10.5) > 1e-9 {
		t.Fatalf("top20=%v", top)
	}
	empty := newMetrics()
	if a, b, c := empty.OccupancyStats(); a != 0 || b != 0 || c != 0 {
		t.Fatal("empty occupancy stats not zero")
	}
}

// TestSnapshotRoundTrip checks the JSON view mirrors the metrics.
func TestSnapshotRoundTrip(t *testing.T) {
	m := newMetrics()
	m.Requests = 10
	m.Matched = 8
	m.Rejected = 2
	m.Completed = 8
	m.recordACRT(1000)
	m.recordART(3, 500)
	m.AddOccupancy(2)
	m.AddOccupancy(4)
	s := m.Snapshot()
	if s.Requests != 10 || s.Matched != 8 || s.Rejected != 2 {
		t.Fatalf("counts: %+v", s)
	}
	if s.ACRTNanos != 100 {
		t.Fatalf("acrt %d, want 100 (1000ns over 10 requests)", s.ACRTNanos)
	}
	if len(s.ART) != 1 || s.ART[0].Requests != 3 || s.ART[0].Samples != 1 {
		t.Fatalf("art: %+v", s.ART)
	}
	if s.OccupancyMax != 4 || s.OccupancyMean != 3 {
		t.Fatalf("occupancy: %+v", s)
	}
}

// TestIndividualizedConstraints: a request with a personal waiting budget
// larger than the fleet default can be matched where the default could not.
func TestIndividualizedConstraints(t *testing.T) {
	g, oracle, _ := testSetup(t, 1)
	mk := func() *Simulator {
		s, err := New(Config{
			Graph: g, Oracle: oracle, Servers: 1, Capacity: 4,
			Algorithm:   AlgoTreeSlack,
			WaitSeconds: 60, // tight fleet default: 840 m
			Seed:        3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s := mk()
	v := s.vehicles[0]
	var far roadnet.VertexID = -1
	for d := 0; d < g.N(); d++ {
		dd := oracle.Dist(v.loc, roadnet.VertexID(d))
		if dd > 2000 && dd < 5000 {
			far = roadnet.VertexID(d)
			break
		}
	}
	if far < 0 {
		t.Skip("graph too small")
	}
	ts, _ := g.Neighbors(far)
	drop := ts[0]

	if matched, _ := s.Submit(Request{ID: 1, Time: 0.1, Pickup: far, Dropoff: drop}); matched {
		t.Fatal("default budget should not reach the far pickup")
	}
	s2 := mk()
	matched, _ := s2.Submit(Request{
		ID: 1, Time: 0.1, Pickup: far, Dropoff: drop,
		WaitSeconds: 900, // 12.6 km personal budget
	})
	if !matched {
		t.Fatal("personal waiting budget should make the far pickup reachable")
	}
	s2.Drain()
	if s2.metrics.Violations != 0 {
		t.Fatalf("violations=%d with individualized constraint", s2.metrics.Violations)
	}
}
