// Package sim is the simulation framework of the paper's evaluation (§VI):
// it replays a stream of trip requests against a fleet of servers moving on
// the road network, matching each request to the vehicle that can serve it
// at minimum augmented-schedule cost, and measures the matching performance
// (ACRT and ART) together with service statistics.
package sim

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
)

// Metrics aggregates the measurements the paper reports.
type Metrics struct {
	Requests int // requests submitted
	Matched  int // requests assigned to a server
	Rejected int // requests no server could satisfy

	// ACRT (average customer response time): total wall-clock time spent
	// completing the search for the best vehicle across all requests
	// (paper: "the average time required to complete the search for the
	// minimum time needed to satisfy a new request").
	acrtTotal time.Duration

	// ACRTSamples counts the AddACRT calls folded into acrtTotal. Both
	// engines attribute search time per request — immediate mode records
	// one sample per Submit, batch mode one per batch item (its share of
	// the phase-1 fan-out plus any conflict-repair retrial) — so a run
	// with consistent accounting has ACRTSamples == Requests.
	ACRTSamples int

	// ART (average response time) bucketed by the number of requests
	// already scheduled on the candidate vehicle (paper: "we calculate
	// ART separately for different current request sizes").
	artTotal map[int]time.Duration
	artCount map[int]int

	TrialCalls    int // scheduling trials performed
	TrialFailures int // trials that found no valid augmented schedule
	OverBudget    int // tree trials aborted by the candidate-size budget
	// (the paper's 3 GB cutoff analogue)

	// Batch-window conflict repair (internal/dispatch batch mode): a
	// request whose retained phase-1 candidates were dirtied by an earlier
	// commit in the same flush is repaired by re-trialing only the dirty
	// candidates. RetrialTrialsSaved counts the trial insertions a full
	// re-fan-out would have re-run but incremental repair skipped.
	ConflictsRepaired  int
	RetrialTrialsSaved int

	// Service statistics.
	Completed        int     // trips dropped off
	TotalWaitMeters  float64 // sum of pickup distances (request -> pickup)
	TotalRideMeters  float64 // sum of in-vehicle distances
	TotalShortestLen float64 // sum of d(s, e) over completed trips
	Violations       int     // service-guarantee violations (must stay 0)

	// Occupancy (paper §VI-B, unlimited capacity): the distribution of
	// per-server peak simultaneous passengers, one sample per drained
	// vehicle. Small counts land in the histogram's exact range, so the
	// paper's max/mean/top-20% stats stay exact at realistic occupancies.
	Occupancy *obs.Histogram

	// Stage-latency distributions (streaming histograms — fixed memory,
	// mergeable, quantiles without retained samples). Latencies are in
	// nanoseconds unless the field name says otherwise.
	MatchLatency  *obs.Histogram // per-request match search (the ACRT samples)
	FlushLatency  *obs.Histogram // batch mode: whole flush wall time
	Phase1Latency *obs.Histogram // batch mode: phase-1 trial fan-out wall time
	RepairLatency *obs.Histogram // batch mode: per-conflict incremental repair
	ReleaseLagMs  *obs.Histogram // ingest: simulated ms, admission to release
	// Sampled shortest-path distance lookup latency, split by cache
	// outcome (set from the oracle stack like the cache counters).
	DistHitLatency  *obs.Histogram
	DistMissLatency *obs.Histogram

	TotalVehicleMeters float64 // fleet distance traveled
	TreeNodesMax       int     // largest committed kinetic tree observed

	// Shortest-path cache counters (paper §VI: the two LRU caches), set
	// from the engine's oracle stack when it exposes them — aggregated
	// across all shards/workers for the dispatch engine. Zero everywhere
	// when the oracle has no caches.
	DistCacheHits   uint64
	DistCacheMisses uint64
	PathCacheHits   uint64
	PathCacheMisses uint64

	// Ingress-gateway counters (internal/ingest), zero when requests are
	// fed directly. Admitted counts requests that cleared admission and
	// were handed to an engine; ShedOverflow counts requests evicted by a
	// full queue under the shed-oldest policy, ShedDeadline requests
	// dropped because their waiting-time window was already blown before
	// they could be dispatched. IngressQueuePeak is the deepest any
	// admission queue ever got. ShedAdaptive counts requests the
	// adaptive admission controller refused (probabilistic admission
	// shed or wall-SLO handoff shed); AdmissionShedPeakPM is the highest
	// shed level (per mille) the controller reached, and
	// AdmissionTransitions how many times it crossed between the open
	// and shedding states.
	Admitted             int
	ShedOverflow         int
	ShedDeadline         int
	ShedAdaptive         int
	IngressQueuePeak     int
	AdmissionShedPeakPM  int
	AdmissionTransitions int

	// SLO error-budget account (internal/obs SLOTracker, fed by the
	// gateway): SLOGood counts requests released within the wall-clock
	// SLO, SLOBad late releases plus SLO-motivated sheds. SLOObjective is
	// the configured good-fraction target (0 when no tracker ran).
	SLOGood      int
	SLOBad       int
	SLOObjective float64

	// IngressWait is the distribution of wall time (ns) each admitted
	// request spent in the gateway, admission to handoff.
	IngressWait *obs.Histogram

	// Engine-capacity parameters the run actually used — derived when
	// Config.AutoTune is set, configured otherwise. The engines record
	// them at construction; shard-local metrics leave them zero, and
	// Merge keeps the maximum so aggregation never erases them.
	AutoTuned     bool    // Config.AutoTune was set
	TunedShards   int     // fleet partition count (1 for the sequential Simulator)
	TunedCellSize float64 // spatial-index cell size in meters
}

// SetTuning records the capacity parameters the engine resolved at
// construction (shard count, spatial-index cell size, and whether they
// were auto-derived) so snapshots and summaries can report them.
func (m *Metrics) SetTuning(shards int, cellSize float64, auto bool) {
	m.TunedShards = shards
	m.TunedCellSize = cellSize
	m.AutoTuned = auto
}

// CacheStatser is implemented by caching oracle stacks that report
// cumulative hit/miss counters (cache.Oracle, cache.Shared). The engines
// use it to fold cache efficacy into their Metrics.
type CacheStatser interface {
	DistStats() (hits, misses uint64)
	PathStats() (hits, misses uint64)
}

// CacheLatencyStatser is implemented by oracle stacks that additionally
// sample shortest-path distance lookup latency split by cache outcome
// (cache.Oracle, cache.Shared). The engines fold the sampled hit/miss
// distributions into their Metrics on read.
type CacheLatencyStatser interface {
	DistLatency() (hit, miss *obs.Histogram)
}

func newMetrics() *Metrics {
	return &Metrics{
		artTotal:        make(map[int]time.Duration),
		artCount:        make(map[int]int),
		Occupancy:       obs.NewHistogram(),
		MatchLatency:    obs.NewHistogram(),
		FlushLatency:    obs.NewHistogram(),
		Phase1Latency:   obs.NewHistogram(),
		RepairLatency:   obs.NewHistogram(),
		ReleaseLagMs:    obs.NewHistogram(),
		DistHitLatency:  obs.NewHistogram(),
		DistMissLatency: obs.NewHistogram(),
		IngressWait:     obs.NewHistogram(),
	}
}

// ACRT returns the mean per-request response time.
func (m *Metrics) ACRT() time.Duration {
	if m.Requests == 0 {
		return 0
	}
	return m.acrtTotal / time.Duration(m.Requests)
}

// ART returns the mean per-trial scheduling time for vehicles that had
// `active` requests scheduled, and the number of samples.
func (m *Metrics) ART(active int) (time.Duration, int) {
	c := m.artCount[active]
	if c == 0 {
		return 0, 0
	}
	return m.artTotal[active] / time.Duration(c), c
}

// ARTBuckets returns the sorted list of active-request sizes observed.
func (m *Metrics) ARTBuckets() []int {
	out := make([]int, 0, len(m.artCount))
	for k := range m.artCount {
		out = append(out, k) //vetkit:allow determinism sort.Ints below makes the returned order deterministic
	}
	sort.Ints(out)
	return out
}

func (m *Metrics) recordACRT(d time.Duration) {
	m.acrtTotal += d
	m.ACRTSamples++
	m.MatchLatency.Record(d.Nanoseconds())
}

// NewMetrics returns an empty metrics sink. The sharded dispatch engine
// gives each shard its own and merges them on read.
func NewMetrics() *Metrics { return newMetrics() }

// AddACRT adds one request's match-search wall time to the response-time
// total; the dispatch engine records its fan-out/reduce latency here the
// way Submit does for the sequential scan.
func (m *Metrics) AddACRT(d time.Duration) { m.recordACRT(d) }

// Merge folds o into m: counters and totals add, ART buckets combine,
// histograms merge (equivalent to recording the union of their samples),
// and maxima take the larger value. Merging per-shard metrics in shard
// order yields deterministic totals for a fixed shard count.
func (m *Metrics) Merge(o *Metrics) {
	m.Requests += o.Requests
	m.Matched += o.Matched
	m.Rejected += o.Rejected
	m.acrtTotal += o.acrtTotal
	m.ACRTSamples += o.ACRTSamples
	for k, d := range o.artTotal {
		m.artTotal[k] += d
	}
	for k, c := range o.artCount {
		m.artCount[k] += c
	}
	m.TrialCalls += o.TrialCalls
	m.TrialFailures += o.TrialFailures
	m.OverBudget += o.OverBudget
	m.ConflictsRepaired += o.ConflictsRepaired
	m.RetrialTrialsSaved += o.RetrialTrialsSaved
	m.Completed += o.Completed
	m.TotalWaitMeters += o.TotalWaitMeters
	m.TotalRideMeters += o.TotalRideMeters
	m.TotalShortestLen += o.TotalShortestLen
	m.Violations += o.Violations
	m.Occupancy.Merge(o.Occupancy)
	m.MatchLatency.Merge(o.MatchLatency)
	m.FlushLatency.Merge(o.FlushLatency)
	m.Phase1Latency.Merge(o.Phase1Latency)
	m.RepairLatency.Merge(o.RepairLatency)
	m.ReleaseLagMs.Merge(o.ReleaseLagMs)
	m.DistHitLatency.Merge(o.DistHitLatency)
	m.DistMissLatency.Merge(o.DistMissLatency)
	m.TotalVehicleMeters += o.TotalVehicleMeters
	if o.TreeNodesMax > m.TreeNodesMax {
		m.TreeNodesMax = o.TreeNodesMax
	}
	m.DistCacheHits += o.DistCacheHits
	m.DistCacheMisses += o.DistCacheMisses
	m.PathCacheHits += o.PathCacheHits
	m.PathCacheMisses += o.PathCacheMisses
	m.Admitted += o.Admitted
	m.ShedOverflow += o.ShedOverflow
	m.ShedDeadline += o.ShedDeadline
	m.ShedAdaptive += o.ShedAdaptive
	if o.AdmissionShedPeakPM > m.AdmissionShedPeakPM {
		m.AdmissionShedPeakPM = o.AdmissionShedPeakPM
	}
	m.AdmissionTransitions += o.AdmissionTransitions
	m.SLOGood += o.SLOGood
	m.SLOBad += o.SLOBad
	if o.SLOObjective > m.SLOObjective {
		m.SLOObjective = o.SLOObjective
	}
	if o.IngressQueuePeak > m.IngressQueuePeak {
		m.IngressQueuePeak = o.IngressQueuePeak
	}
	m.IngressWait.Merge(o.IngressWait)
	m.AutoTuned = m.AutoTuned || o.AutoTuned
	if o.TunedShards > m.TunedShards {
		m.TunedShards = o.TunedShards
	}
	if o.TunedCellSize > m.TunedCellSize {
		m.TunedCellSize = o.TunedCellSize
	}
}

// Shed is the total number of requests the ingress gateway dropped, over
// every shed reason.
func (m *Metrics) Shed() int { return m.ShedOverflow + m.ShedDeadline + m.ShedAdaptive }

// SLOBudgetConsumed returns the fraction of the run's SLO error budget
// the bad outcomes spent: bad / (allowed-bad-fraction x total outcomes).
// 1.0 means the budget is exactly exhausted, >1 the objective was missed.
// 0 when no tracker ran or nothing was observed.
func (m *Metrics) SLOBudgetConsumed() float64 {
	total := m.SLOGood + m.SLOBad
	allowed := 1 - m.SLOObjective
	if total == 0 || allowed <= 0 {
		return 0
	}
	return float64(m.SLOBad) / (float64(total) * allowed)
}

// AddIngressWait records one admitted request's gateway residence time
// (admission to handoff).
func (m *Metrics) AddIngressWait(d time.Duration) {
	m.IngressWait.Record(d.Nanoseconds())
}

// IngressWaitMean returns the mean gateway residence time over admitted
// requests, or 0 before any handoffs.
func (m *Metrics) IngressWaitMean() time.Duration {
	return time.Duration(m.IngressWait.Mean())
}

// IngressWaitP99 returns the 99th-percentile gateway residence time, or 0
// before any handoffs. Histogram-backed: exact rank, value within the
// documented bucket error (<= 12.5% relative).
func (m *Metrics) IngressWaitP99() time.Duration {
	return time.Duration(m.IngressWait.Quantile(0.99))
}

// SetCacheStats overwrites the cache counters from an oracle stack's
// cumulative counts. Set, not add: the counters are lifetime totals read
// from the stack, so re-reading must stay idempotent.
func (m *Metrics) SetCacheStats(distHits, distMisses, pathHits, pathMisses uint64) {
	m.DistCacheHits = distHits
	m.DistCacheMisses = distMisses
	m.PathCacheHits = pathHits
	m.PathCacheMisses = pathMisses
}

// SetDistLatency overwrites the sampled distance-lookup latency
// distributions from an oracle stack's lifetime histograms. Set, not add,
// for the same idempotence reason as SetCacheStats.
func (m *Metrics) SetDistLatency(hit, miss *obs.Histogram) {
	m.DistHitLatency.CopyFrom(hit)
	m.DistMissLatency.CopyFrom(miss)
}

// DistCacheHitRate returns the distance-cache hit rate, or 0 before any
// lookups.
func (m *Metrics) DistCacheHitRate() float64 {
	return hitRate(m.DistCacheHits, m.DistCacheMisses)
}

// PathCacheHitRate returns the path-cache hit rate, or 0 before any
// lookups.
func (m *Metrics) PathCacheHitRate() float64 {
	return hitRate(m.PathCacheHits, m.PathCacheMisses)
}

func hitRate(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

func (m *Metrics) recordART(active int, d time.Duration) {
	m.artTotal[active] += d
	m.artCount[active]++
	m.TrialCalls++
}

// AddOccupancy records one server's peak simultaneous passenger count.
func (m *Metrics) AddOccupancy(peak int) {
	m.Occupancy.Record(int64(peak))
}

// OccupancyStats summarizes per-server peak occupancy as the paper does:
// the maximum across servers, the mean, and the mean over the top 20% most
// filled servers. Max and mean are exact; the top-20% mean uses the
// histogram's bucket midpoints, which are exact for peaks below 16.
func (m *Metrics) OccupancyStats() (max int, mean, top20Mean float64) {
	n := m.Occupancy.Count()
	if n == 0 {
		return 0, 0, 0
	}
	max = int(m.Occupancy.Max())
	mean = float64(m.Occupancy.Sum()) / float64(n)
	top20Mean = m.Occupancy.TopMean((n + 4) / 5) // ceil(20%)
	return max, mean, top20Mean
}

// MeanDetourFactor returns the mean of (actual ride length / shortest
// length) over completed trips, a service-quality indicator.
func (m *Metrics) MeanDetourFactor() float64 {
	if m.TotalShortestLen == 0 {
		return 0
	}
	return m.TotalRideMeters / m.TotalShortestLen
}

// String renders a one-screen summary.
func (m *Metrics) String() string {
	max, mean, top := m.OccupancyStats()
	return fmt.Sprintf(
		"requests=%d matched=%d rejected=%d completed=%d violations=%d acrt=%v trials=%d occupancy(max/mean/top20)=%d/%.2f/%.2f detour=%.3f",
		m.Requests, m.Matched, m.Rejected, m.Completed, m.Violations,
		m.ACRT(), m.TrialCalls, max, mean, top, m.MeanDetourFactor())
}

// Snapshot is the JSON-serializable view of Metrics.
type Snapshot struct {
	Requests      int         `json:"requests"`
	Matched       int         `json:"matched"`
	Rejected      int         `json:"rejected"`
	Completed     int         `json:"completed"`
	Violations    int         `json:"violations"`
	ACRTNanos     int64       `json:"acrt_ns"`
	ACRTSamples   int         `json:"acrt_samples"`
	TrialCalls    int         `json:"trial_calls"`
	TrialFailures int         `json:"trial_failures"`
	OverBudget    int         `json:"over_budget"`
	ART           []ARTBucket `json:"art"`

	ConflictsRepaired  int     `json:"conflicts_repaired"`
	RetrialTrialsSaved int     `json:"retrial_trials_saved"`
	WaitMeters         float64 `json:"total_wait_meters"`
	RideMeters         float64 `json:"total_ride_meters"`
	DetourFactor       float64 `json:"mean_detour_factor"`
	VehicleMeters      float64 `json:"total_vehicle_meters"`
	OccupancyMax       int     `json:"occupancy_max"`
	OccupancyMean      float64 `json:"occupancy_mean"`
	OccupancyTop       float64 `json:"occupancy_top20_mean"`
	TreeNodesMax       int     `json:"tree_nodes_max"`

	DistCacheHits    uint64  `json:"dist_cache_hits"`
	DistCacheMisses  uint64  `json:"dist_cache_misses"`
	DistCacheHitRate float64 `json:"dist_cache_hit_rate"`
	PathCacheHits    uint64  `json:"path_cache_hits"`
	PathCacheMisses  uint64  `json:"path_cache_misses"`
	PathCacheHitRate float64 `json:"path_cache_hit_rate"`

	Admitted           int   `json:"admitted"`
	ShedOverflow       int   `json:"shed_overflow"`
	ShedDeadline       int   `json:"shed_deadline"`
	ShedAdaptive       int   `json:"shed_adaptive"`
	IngressQueuePeak   int   `json:"ingress_queue_peak"`
	AdmissionPeakPM    int   `json:"admission_peak_shed_pm"`
	AdmissionSwitches  int   `json:"admission_transitions"`
	IngressWaitMeanNs  int64 `json:"ingress_wait_mean_ns"`
	IngressWaitP99Ns   int64 `json:"ingress_wait_p99_ns"`
	IngressWaitSamples int   `json:"ingress_wait_samples"`

	SLOGood           int     `json:"slo_good"`
	SLOBad            int     `json:"slo_bad"`
	SLOObjective      float64 `json:"slo_objective"`
	SLOBudgetConsumed float64 `json:"slo_budget_consumed"`

	AutoTuned     bool    `json:"auto_tuned"`
	TunedShards   int     `json:"tuned_shards"`
	TunedCellSize float64 `json:"tuned_cell_size_m"`

	// Stage-latency digests (count/mean/p50/p90/p99/max) from the
	// streaming histograms.
	MatchLatencyNs  obs.Summary `json:"match_latency_ns"`
	FlushLatencyNs  obs.Summary `json:"flush_latency_ns"`
	Phase1LatencyNs obs.Summary `json:"phase1_latency_ns"`
	RepairLatencyNs obs.Summary `json:"repair_latency_ns"`
	ReleaseLagMs    obs.Summary `json:"release_lag_ms"`
	DistHitNs       obs.Summary `json:"dist_hit_latency_ns"`
	DistMissNs      obs.Summary `json:"dist_miss_latency_ns"`
}

// ARTBucket is one ART histogram bucket in a Snapshot.
type ARTBucket struct {
	Requests int   `json:"requests"`
	MeanNs   int64 `json:"mean_ns"`
	Samples  int   `json:"samples"`
}

// Snapshot converts the metrics into their serializable form.
func (m *Metrics) Snapshot() Snapshot {
	max, mean, top := m.OccupancyStats()
	s := Snapshot{
		Requests:      m.Requests,
		Matched:       m.Matched,
		Rejected:      m.Rejected,
		Completed:     m.Completed,
		Violations:    m.Violations,
		ACRTNanos:     m.ACRT().Nanoseconds(),
		ACRTSamples:   m.ACRTSamples,
		TrialCalls:    m.TrialCalls,
		TrialFailures: m.TrialFailures,
		OverBudget:    m.OverBudget,

		ConflictsRepaired:  m.ConflictsRepaired,
		RetrialTrialsSaved: m.RetrialTrialsSaved,

		WaitMeters:    m.TotalWaitMeters,
		RideMeters:    m.TotalRideMeters,
		DetourFactor:  m.MeanDetourFactor(),
		VehicleMeters: m.TotalVehicleMeters,
		OccupancyMax:  max,
		OccupancyMean: mean,
		OccupancyTop:  top,
		TreeNodesMax:  m.TreeNodesMax,

		DistCacheHits:    m.DistCacheHits,
		DistCacheMisses:  m.DistCacheMisses,
		DistCacheHitRate: m.DistCacheHitRate(),
		PathCacheHits:    m.PathCacheHits,
		PathCacheMisses:  m.PathCacheMisses,
		PathCacheHitRate: m.PathCacheHitRate(),

		Admitted:           m.Admitted,
		ShedOverflow:       m.ShedOverflow,
		ShedDeadline:       m.ShedDeadline,
		ShedAdaptive:       m.ShedAdaptive,
		IngressQueuePeak:   m.IngressQueuePeak,
		AdmissionPeakPM:    m.AdmissionShedPeakPM,
		AdmissionSwitches:  m.AdmissionTransitions,
		IngressWaitMeanNs:  m.IngressWaitMean().Nanoseconds(),
		IngressWaitP99Ns:   m.IngressWaitP99().Nanoseconds(),
		IngressWaitSamples: int(m.IngressWait.Count()),

		SLOGood:           m.SLOGood,
		SLOBad:            m.SLOBad,
		SLOObjective:      m.SLOObjective,
		SLOBudgetConsumed: m.SLOBudgetConsumed(),

		AutoTuned:     m.AutoTuned,
		TunedShards:   m.TunedShards,
		TunedCellSize: m.TunedCellSize,

		MatchLatencyNs:  m.MatchLatency.Summary(),
		FlushLatencyNs:  m.FlushLatency.Summary(),
		Phase1LatencyNs: m.Phase1Latency.Summary(),
		RepairLatencyNs: m.RepairLatency.Summary(),
		ReleaseLagMs:    m.ReleaseLagMs.Summary(),
		DistHitNs:       m.DistHitLatency.Summary(),
		DistMissNs:      m.DistMissLatency.Summary(),
	}
	for _, b := range m.ARTBuckets() {
		d, n := m.ART(b)
		s.ART = append(s.ART, ARTBucket{Requests: b, MeanNs: d.Nanoseconds(), Samples: n})
	}
	return s
}
