package sim

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/roadnet"
	"repro/internal/sp"
)

// Worker executes the per-vehicle mechanics of the simulation — movement,
// trial scheduling, commits, and service accounting — against one oracle and
// one metrics sink. The sequential Simulator drives a single Worker over the
// whole fleet; the sharded dispatch engine (internal/dispatch) drives one
// Worker per shard, each with its own per-goroutine oracle — a fully
// private engine, or a cache.SharedWorker facade whose distance lookups go
// through the fleet-wide concurrency-safe cache — so no unsynchronized
// oracle state is ever shared across goroutines.
//
// A Worker itself is not safe for concurrent use; concurrency comes from
// running disjoint Workers over disjoint vehicles.
type Worker struct {
	cfg     Config // defaults applied
	graph   *roadnet.Graph
	oracle  sp.Oracle
	metrics *Metrics
	sched   core.Scheduler // shared by this worker's stateless vehicles
	ring    *obs.Ring      // lifecycle events (nil = tracing off)
	live    *obs.Live      // live counters (nil = off)
}

// NewWorker builds a worker over the graph in cfg using the given oracle
// (which may differ from cfg.Oracle when the fleet is sharded) and metrics
// sink. Stateless algorithms get a scheduler instance private to the worker.
func NewWorker(cfg Config, oracle sp.Oracle, m *Metrics) *Worker {
	cfg = cfg.withDefaults()
	w := &Worker{cfg: cfg, graph: cfg.Graph, oracle: oracle, metrics: m}
	switch cfg.Algorithm {
	case AlgoBruteForce:
		w.sched = core.NewBruteForce(oracle)
	case AlgoBranchBound:
		w.sched = core.NewBranchBound(oracle)
	case AlgoMIP:
		ms := core.NewMIPScheduler(oracle, cfg.MIPMaxNodes)
		if cfg.MIPTimeBudget > 0 {
			ms.SetTimeBudget(cfg.MIPTimeBudget)
		}
		w.sched = ms
	}
	return w
}

// SetTrace attaches a lifecycle-event ring and live counter set to the
// worker. Both may be nil (the default): emission is then a no-op. The
// engines call this once at construction, before any request is driven.
func (w *Worker) SetTrace(ring *obs.Ring, live *obs.Live) {
	w.ring = ring
	w.live = live
}

// Metrics returns the worker's metrics sink.
func (w *Worker) Metrics() *Metrics { return w.metrics }

// Oracle returns the worker's shortest-path oracle; the dispatch engine
// uses it to aggregate cache statistics across shards.
func (w *Worker) Oracle() sp.Oracle { return w.oracle }

// ReportInterval returns the configured seconds between position reports.
func (w *Worker) ReportInterval() float64 { return w.cfg.ReportInterval }

// CellSize returns the configured spatial-index cell size in meters.
func (w *Worker) CellSize() float64 { return w.cfg.CellSize }

// Budget resolves the request's waiting budget (in meters) and service
// constraint, applying per-request overrides over the fleet defaults.
func (w *Worker) Budget(req Request) (waitMeters, eps float64) {
	waitMeters = w.cfg.WaitSeconds * roadnet.Speed
	if req.WaitSeconds > 0 {
		waitMeters = req.WaitSeconds * roadnet.Speed
	}
	eps = w.cfg.Epsilon
	if req.Epsilon > 0 {
		eps = req.Epsilon
	}
	return waitMeters, eps
}

// CandidateRadius is the spatial-index search radius for a request with the
// given waiting budget: the budget plus the maximum drift a vehicle may have
// accumulated since its last position report.
func (w *Worker) CandidateRadius(waitMeters float64) float64 {
	return waitMeters + w.cfg.ReportInterval*roadnet.Speed
}

// Placement is a vehicle's seed-determined starting state: its initial
// vertex and the time of its first position report.
type Placement struct {
	Loc         roadnet.VertexID
	FirstReport float64
}

// Placements returns the initial fleet layout for cfg ("a vehicle is
// initialized to a random vertex in the city", §VI). The sequential
// Simulator and the sharded dispatch engine both place their fleets with
// this, which is what makes their matching decisions comparable
// bit-for-bit regardless of how the fleet is partitioned.
func Placements(cfg Config) []Placement {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := int32(cfg.Graph.N())
	out := make([]Placement, cfg.Servers)
	for i := range out {
		out[i] = Placement{
			Loc:         roadnet.VertexID(rng.Int31n(n)),
			FirstReport: rng.Float64() * cfg.ReportInterval,
		}
	}
	return out
}

// NewVehicle creates vehicle id at loc, with the per-vehicle cruise RNG and
// (for tree algorithms) a kinetic tree bound to this worker's oracle.
func (w *Worker) NewVehicle(id int, loc roadnet.VertexID) *Vehicle {
	v := &Vehicle{
		id:         id,
		loc:        loc,
		rng:        rand.New(rand.NewSource(w.cfg.Seed + int64(id) + 1)),
		requestOdo: make(map[int64]float64),
		pickupOdo:  make(map[int64]float64),
	}
	switch w.cfg.Algorithm {
	case AlgoTreeBasic, AlgoTreeSlack, AlgoTreeHotspot:
		opts := core.TreeOptions{
			Capacity:         w.cfg.Capacity,
			MaxTreeNodes:     w.cfg.MaxTreeNodes,
			LazyInvalidation: w.cfg.LazyInvalidation,
		}
		if w.cfg.Algorithm != AlgoTreeBasic {
			opts.Slack = true
		}
		if w.cfg.Algorithm == AlgoTreeHotspot {
			opts.HotspotTheta = w.cfg.HotspotTheta
		}
		v.tree = core.NewTree(w.oracle, loc, 0, opts)
	default:
		v.sched = w.sched
	}
	return v
}

// Trial is the outcome of a successful trial insertion, ready to Commit on
// the same vehicle provided no mutation of that vehicle intervened.
//
// Retention semantics: a Trial stays committable until its own vehicle
// mutates (a Commit on it, or movement via AdvanceTo), no matter how many
// further Trials run on the same vehicle in between — trial insertions
// leave the vehicle untouched (a kinetic-tree candidate is an independent
// new tree; a stateless result references only the instance it was built
// from). The batch planner relies on this to retain every candidate's
// phase-1 trial across a whole flush and commit the surviving winner, or
// merge retained clean trials with fresh retrials of dirtied vehicles.
type Trial struct {
	Cost     float64
	treeCand *core.Candidate
	result   core.Result
	trip     core.TripState
}

// Release returns the trial's retained candidate tree to the node pool.
// Call it when the trial has definitively lost and will never be
// committed; releasing a trial whose candidate was already committed (or
// already released) is a no-op, so engines may sweep-release every trial
// of a request after the winner commits. A released trial must not be
// committed afterwards. Stateless-scheduler trials hold no tree and
// release nothing.
func (tr Trial) Release() { tr.treeCand.Release() }

// Trial trial-schedules req on v, which must already be advanced to the
// request time. (px, py) are the pickup coordinates; vehicles whose exact
// position lies beyond the waiting budget are skipped (Euclidean distance
// lower-bounds network distance on generator graphs). It records trial
// metrics exactly as the paper's evaluation counts them and reports whether
// v can serve the request.
func (w *Worker) Trial(v *Vehicle, req Request, px, py, waitMeters, eps float64) (Trial, bool) {
	vx, vy := w.graph.Coord(v.loc)
	if dx, dy := vx-px, vy-py; dx*dx+dy*dy > waitMeters*waitMeters {
		return Trial{}, false
	}
	active := v.activeTrips()
	trialStart := time.Now() //vetkit:allow determinism ART metric only; trial feasibility and cost are time-independent
	if v.isTree() {
		trip, err := core.NewTripState(req.ID, req.Pickup, req.Dropoff, waitMeters, eps, v.odo, w.oracle)
		if err != nil {
			// Unreachable dropoff: an infeasible trial like any other.
			w.metrics.recordART(active, time.Since(trialStart)) //vetkit:allow determinism ART metric only
			w.metrics.TrialFailures++
			return Trial{}, false
		}
		cand, ok, err := v.tree.TrialInsert(trip)
		w.metrics.recordART(active, time.Since(trialStart)) //vetkit:allow determinism ART metric only
		if err != nil {
			// Candidate tree exceeded the size budget: the paper's
			// basic/slack variants "break off" here (Fig. 9c).
			w.metrics.OverBudget++
			w.metrics.TrialFailures++
			return Trial{}, false
		}
		if !ok {
			w.metrics.TrialFailures++
			return Trial{}, false
		}
		return Trial{Cost: cand.Cost, treeCand: cand, trip: trip}, true
	}
	inst, trip, ok := w.buildInstance(v, req, waitMeters, eps)
	if !ok {
		// Unreachable dropoff: an infeasible trial like any other.
		w.metrics.recordART(active, time.Since(trialStart)) //vetkit:allow determinism ART metric only
		w.metrics.TrialFailures++
		return Trial{}, false
	}
	res := v.sched.Schedule(inst)
	w.metrics.recordART(active, time.Since(trialStart)) //vetkit:allow determinism ART metric only
	if !res.OK {
		w.metrics.TrialFailures++
		return Trial{}, false
	}
	return Trial{Cost: res.Cost, result: res, trip: trip}, true
}

// Commit adopts a successful trial on v and accounts the match. The trial
// must have been produced since v's last mutation (Commit or movement);
// per Trial's retention semantics, trials on v in between are harmless.
func (w *Worker) Commit(v *Vehicle, tr Trial) {
	v.requestOdo[tr.trip.ID] = v.odo
	if v.isTree() {
		v.tree.Commit(tr.treeCand)
		if n := v.tree.Nodes(); n > w.metrics.TreeNodesMax {
			w.metrics.TreeNodesMax = n
		}
	} else {
		w.commitStateless(v, tr.result, tr.trip)
	}
	w.metrics.Matched++
	w.live.AddMatched(1)
}

// buildInstance assembles the rescheduling instance for a stateless vehicle:
// its active trips plus the new request, origin at its current position.
func (w *Worker) buildInstance(v *Vehicle, req Request, waitMeters, eps float64) (*core.Instance, core.TripState, bool) {
	trip, err := core.NewTripState(req.ID, req.Pickup, req.Dropoff, waitMeters, eps, v.odo, w.oracle)
	if err != nil {
		return nil, core.TripState{}, false
	}
	inst := &core.Instance{Origin: v.loc, Odo: v.odo, Capacity: w.cfg.Capacity}
	for i := range v.trips {
		if !v.done[i] {
			inst.Trips = append(inst.Trips, v.trips[i])
		}
	}
	inst.Trips = append(inst.Trips, trip)
	return inst, trip, true
}

// commitStateless adopts the scheduler's order on the vehicle. The order's
// trip indices reference the instance's compacted trip list; they are
// remapped to the vehicle's slot array.
func (w *Worker) commitStateless(v *Vehicle, res core.Result, trip core.TripState) {
	slot := make([]int, 0, len(v.trips)+1)
	for i := range v.trips {
		if !v.done[i] {
			slot = append(slot, i)
		}
	}
	v.trips = append(v.trips, trip)
	v.done = append(v.done, false)
	slot = append(slot, len(v.trips)-1)
	route := make([]core.Stop, len(res.Order))
	for i, st := range res.Order {
		st.Trip = slot[st.Trip]
		route[i] = st
	}
	v.route = route
	v.path = nil
	v.pathPos = 0
}

// CheckVehicle verifies the per-vehicle invariants: a consistent kinetic
// tree and peak occupancy within the configured capacity.
func (w *Worker) CheckVehicle(v *Vehicle) error {
	if v.isTree() {
		if err := v.tree.Validate(); err != nil {
			return err
		}
	}
	if w.cfg.Capacity > 0 && v.peakOnboard > w.cfg.Capacity {
		return fmt.Errorf("peak occupancy %d exceeds capacity %d", v.peakOnboard, w.cfg.Capacity)
	}
	return nil
}
