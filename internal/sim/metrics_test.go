package sim

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// recordRandom feeds n pseudo-random samples into m through the same entry
// points the engines use. Float totals get integer-valued increments so
// summation order cannot perturb them.
func recordRandom(m *Metrics, r *rand.Rand, n int) {
	for i := 0; i < n; i++ {
		m.Requests++
		if r.Intn(10) > 0 {
			m.Matched++
		} else {
			m.Rejected++
		}
		m.recordACRT(time.Duration(r.Intn(1_000_000)))
		m.recordART(r.Intn(6), time.Duration(r.Intn(100_000)))
		if r.Intn(3) == 0 {
			m.TrialFailures++
		}
		m.AddOccupancy(r.Intn(12))
		m.AddIngressWait(time.Duration(r.Intn(5_000_000)))
		m.FlushLatency.Record(int64(r.Intn(2_000_000)))
		m.Phase1Latency.Record(int64(r.Intn(1_000_000)))
		m.RepairLatency.Record(int64(r.Intn(500_000)))
		m.ReleaseLagMs.Record(int64(r.Intn(1000)))
		m.TotalWaitMeters += float64(r.Intn(1000))
		m.TotalRideMeters += float64(r.Intn(5000))
		m.TotalShortestLen += float64(r.Intn(4000))
		m.TotalVehicleMeters += float64(r.Intn(8000))
		m.Completed++
		if v := r.Intn(50); v > m.TreeNodesMax {
			m.TreeNodesMax = v
		}
	}
}

// TestMergeRoundTrip pins the merge law the sharded engines rely on:
// snapshotting the merge of independently recorded metrics is identical to
// snapshotting one metrics object that recorded every sample itself, and
// merge is commutative, associative, and has the empty metrics as
// identity — all observed through the full Snapshot (histogram summaries
// included).
func TestMergeRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		sizes := []int{137, 71, 203}
		// whole records every part's samples in sequence.
		whole := newMetrics()
		parts := make([]*Metrics, len(sizes))
		for i, n := range sizes {
			recordRandom(whole, rand.New(rand.NewSource(seed*10+int64(i))), n)
			parts[i] = newMetrics()
			recordRandom(parts[i], rand.New(rand.NewSource(seed*10+int64(i))), n)
		}

		merged := newMetrics()
		for _, p := range parts {
			merged.Merge(p)
		}
		if got, want := merged.Snapshot(), whole.Snapshot(); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: snapshot of merged parts != snapshot of whole\n got: %+v\nwant: %+v",
				seed, got, want)
		}

		// Commutativity: reverse merge order, same snapshot.
		rev := newMetrics()
		for i := len(parts) - 1; i >= 0; i-- {
			rev.Merge(parts[i])
		}
		if !reflect.DeepEqual(rev.Snapshot(), whole.Snapshot()) {
			t.Fatalf("seed %d: merge is not commutative", seed)
		}

		// Associativity: (a+b)+c vs a+(b+c).
		ab := newMetrics()
		ab.Merge(parts[0])
		ab.Merge(parts[1])
		ab.Merge(parts[2])
		bc := newMetrics()
		bc.Merge(parts[1])
		bc.Merge(parts[2])
		aBC := newMetrics()
		aBC.Merge(parts[0])
		aBC.Merge(bc)
		if !reflect.DeepEqual(ab.Snapshot(), aBC.Snapshot()) {
			t.Fatalf("seed %d: merge is not associative", seed)
		}

		// Identity: merging an empty metrics changes nothing.
		merged.Merge(newMetrics())
		if !reflect.DeepEqual(merged.Snapshot(), whole.Snapshot()) {
			t.Fatalf("seed %d: empty merge is not the identity", seed)
		}
	}
}

// TestMetricsHistogramsBounded pins the satellite fix itself: recording a
// city-scale number of ingress waits and occupancies leaves the metrics at
// fixed size (histogram counters), and quantile queries stay cheap and
// sane.
func TestMetricsHistogramsBounded(t *testing.T) {
	m := newMetrics()
	r := rand.New(rand.NewSource(42))
	const n = 1_000_000
	for i := 0; i < n; i++ {
		m.AddIngressWait(time.Duration(r.ExpFloat64() * 1e6))
	}
	if got := m.IngressWait.Count(); got != n {
		t.Fatalf("ingress wait count = %d, want %d", got, n)
	}
	mean, p99 := m.IngressWaitMean(), m.IngressWaitP99()
	if mean <= 0 || p99 < mean {
		t.Fatalf("implausible wait stats: mean=%v p99=%v", mean, p99)
	}
}
