package sim

// Report is a scheduled vehicle position report ("around 17,000 taxis
// update their locations every 20 to 60 seconds", §IV): vehicle Veh owes a
// location refresh at simulated time Due.
type Report struct {
	Due float64
	Veh int
}

// ReportHeap is a hand-rolled binary min-heap of Reports ordered by
// (Due, Veh). It replaces the container/heap implementation both engines
// used before: container/heap's Push(any)/Pop() any interface boxes every
// Report on every operation, and at city scale the report drain is the
// single largest allocation site on the hot path (~79% of all objects in
// the dispatch throughput profile). A value-typed heap allocates only when
// the backing array grows, and ReplaceMin lets the drain loop reschedule
// the due vehicle with one sift-down instead of a pop plus push.
//
// Ties on Due are broken by Veh so the pop order is canonical — vehicle
// position refreshes commute (each touches only its own vehicle and index
// entry), but a deterministic order keeps traces and debugging stable
// across runs and engines.
type ReportHeap []Report

// Len returns the number of pending reports.
func (q ReportHeap) Len() int { return len(q) }

// Min returns the earliest-due report without removing it. It must not be
// called on an empty heap.
func (q ReportHeap) Min() Report { return q[0] }

func (q ReportHeap) less(i, j int) bool {
	if q[i].Due != q[j].Due {
		return q[i].Due < q[j].Due
	}
	return q[i].Veh < q[j].Veh
}

// Push adds a report to the heap.
func (q *ReportHeap) Push(r Report) {
	*q = append(*q, r)
	q.siftUp(len(*q) - 1)
}

// Pop removes and returns the earliest-due report. It must not be called
// on an empty heap.
func (q *ReportHeap) Pop() Report {
	h := *q
	min := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = Report{}
	*q = h[:last]
	if last > 0 {
		q.siftDown(0)
	}
	return min
}

// ReplaceMin overwrites the earliest-due report with r and restores heap
// order with a single sift-down — the allocation- and copy-free form of
// Pop followed by Push that the report drain loops use to reschedule a
// vehicle's next report.
func (q *ReportHeap) ReplaceMin(r Report) {
	(*q)[0] = r
	q.siftDown(0)
}

func (q ReportHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (q ReportHeap) siftDown(i int) {
	n := len(q)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && q.less(r, l) {
			m = r
		}
		if !q.less(m, i) {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
}
