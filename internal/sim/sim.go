package sim

import (
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/roadnet"
	"repro/internal/sp"
	"repro/internal/spatial"
)

// Algorithm selects the matching algorithm a fleet runs.
type Algorithm int

// Matching algorithms (paper §VI-A/B).
const (
	AlgoTreeBasic Algorithm = iota
	AlgoTreeSlack
	AlgoTreeHotspot
	AlgoBruteForce
	AlgoBranchBound
	AlgoMIP
)

func (a Algorithm) String() string {
	switch a {
	case AlgoTreeBasic:
		return "ktree"
	case AlgoTreeSlack:
		return "ktree-slack"
	case AlgoTreeHotspot:
		return "ktree-hotspot"
	case AlgoBruteForce:
		return "bruteforce"
	case AlgoBranchBound:
		return "branchbound"
	case AlgoMIP:
		return "mip"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Request is one trip request submitted to the system. WaitSeconds and
// Epsilon, when positive, override the fleet-wide constraints for this
// request (the paper's individualized-constraint generalization, §I-A:
// "our proposed algorithms can be easily generalized to individualized
// waiting time and service constraints").
type Request struct {
	ID      int64
	Time    float64 // seconds since simulation start
	Pickup  roadnet.VertexID
	Dropoff roadnet.VertexID

	WaitSeconds float64 // per-request waiting constraint; 0 = fleet default
	Epsilon     float64 // per-request service constraint; 0 = fleet default
}

// Config parameterizes a simulation run. Zero values select the defaults
// noted per field.
type Config struct {
	Graph  *roadnet.Graph
	Oracle sp.Oracle

	Servers  int
	Capacity int // max simultaneous passengers; 0 = unlimited

	WaitSeconds float64 // waiting-time constraint w (default 600 = 10 min)
	Epsilon     float64 // service constraint ε (default 0.2 = 20%)

	Algorithm    Algorithm
	HotspotTheta float64 // meters (AlgoTreeHotspot; default 300)
	// LazyInvalidation defers kinetic-tree pruning on movement to the
	// next request (paper §IV-A); applies to the tree algorithms only.
	LazyInvalidation bool
	MaxTreeNodes     int // candidate-tree size cap; 0 = 200000
	MIPMaxNodes      int // MIP branch&bound node cap; 0 = solver default
	// MIPTimeBudget bounds each MIP trial's wall time; the warm-started
	// incumbent is returned on truncation (0 = 50ms; negative = unbounded).
	MIPTimeBudget time.Duration

	ReportInterval float64 // seconds between vehicle position reports (default 30)
	CellSize       float64 // spatial-index cell size in meters (default 1000)

	// AutoTune derives the capacity knobs left unset from the fleet size
	// and graph extent instead of using the static defaults: CellSize via
	// DeriveCellSize when zero, and the dispatch engine's shard count via
	// DeriveShards when Shards is zero. Explicitly set values always win.
	// Tuning never changes matching decisions — the grid's candidate
	// superset is exactly filtered and shard count is equivalence-proven
	// — only throughput. The values actually used are surfaced in
	// Metrics (TunedShards, TunedCellSize).
	AutoTune bool

	Seed int64

	// Workers, Shards, and BatchWindow configure the sharded concurrent
	// dispatch engine (internal/dispatch): Workers sizes its trial worker
	// pool, Shards partitions the fleet (default: one shard per worker),
	// and BatchWindow, when positive, collects requests for that many
	// seconds and matches them as a batch. The sequential Simulator
	// ignores all three; callers such as cmd/ridesim select the engine
	// when Workers or Shards is set.
	Workers     int
	Shards      int
	BatchWindow float64

	// Trace, when non-nil, captures per-request lifecycle events
	// (trialed, matched, rejected, completed) into ring buffers — one per
	// engine goroutine — drainable to JSONL. Tracing changes no control
	// flow, so traced runs produce bit-identical assignments.
	Trace *obs.Tracer
	// Live, when non-nil, receives atomically readable progress counters
	// that the interval reporter and /metrics endpoint may poll mid-run.
	Live *obs.Live
	// Faults, when non-nil, wires the deterministic fault-injection
	// hooks (internal/faults) into the engine's worker seam: per-shard
	// fan-out stalls and slowed trial insertions. Injected worker
	// faults are latency-only, so assignments stay bit-identical to a
	// fault-free run; a nil injector (the default) is proven
	// bit-identical to an unhooked engine by the equivalence tests.
	Faults *faults.Injector
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.WaitSeconds == 0 {
		out.WaitSeconds = 600
	}
	if out.Epsilon == 0 {
		out.Epsilon = 0.2
	}
	if out.HotspotTheta == 0 {
		out.HotspotTheta = 300
	}
	if out.MaxTreeNodes == 0 {
		out.MaxTreeNodes = 200000
	}
	if out.ReportInterval == 0 {
		out.ReportInterval = 30
	}
	if out.CellSize == 0 {
		if out.AutoTune {
			out.CellSize = DeriveCellSize(out.Graph, out.Servers)
		} else {
			out.CellSize = DefaultCellSize
		}
	}
	if out.MIPTimeBudget == 0 {
		out.MIPTimeBudget = 50 * time.Millisecond
	}
	return out
}

// Simulator replays a request stream against a fleet.
//
// Not safe for concurrent use: the matching path is single-threaded, as in
// the paper's evaluation. internal/dispatch provides the concurrent engine;
// both drive the same Worker primitives, so for a fixed seed they produce
// identical matches.
type Simulator struct {
	cfg        Config
	graph      *roadnet.Graph
	oracle     sp.Oracle
	w          *Worker
	grid       *spatial.GridIndex
	vehicles   []*Vehicle
	metrics    *Metrics
	clock      float64
	reports    ReportHeap
	candidates []spatial.ObjectID // scratch
	ring       *obs.Ring          // lifecycle events (nil = tracing off)
	live       *obs.Live          // live counters (nil = off)
	fault      *faults.WorkerHook // injected stalls/slow trials (nil = off)

	drainRoundCap int   // test hook; 0 selects DefaultDrainRoundCap
	drainErr      error // sticky Drain truncation error, surfaced by CheckInvariants
}

// DrainStep is the simulated seconds each Drain round advances the fleet.
const DrainStep = 3600

// DefaultDrainRoundCap bounds Drain to ~11 simulated years. It is a sanity
// cap against a wedged fleet (a vehicle that never finishes its schedule),
// not a truncation point for long-but-finite schedules: hitting it is
// reported as an explicit error instead of silently abandoning in-flight
// passengers.
const DefaultDrainRoundCap = 100000

// New creates a simulator with an idle fleet placed at random vertices
// ("a vehicle is initialized to a random vertex in the city", §VI).
func New(cfg Config) (*Simulator, error) {
	cfg = cfg.withDefaults()
	if cfg.Graph == nil || cfg.Oracle == nil {
		return nil, fmt.Errorf("sim: Graph and Oracle are required")
	}
	if cfg.Servers <= 0 {
		return nil, fmt.Errorf("sim: need at least one server, got %d", cfg.Servers)
	}
	minX, minY, maxX, maxY := cfg.Graph.Bounds()
	grid, err := spatial.NewGridIndex(minX, minY, maxX, maxY, cfg.CellSize)
	if err != nil {
		return nil, err
	}
	metrics := newMetrics()
	metrics.SetTuning(1, cfg.CellSize, cfg.AutoTune)
	s := &Simulator{
		cfg:     cfg,
		graph:   cfg.Graph,
		oracle:  cfg.Oracle,
		w:       NewWorker(cfg, cfg.Oracle, metrics),
		grid:    grid,
		metrics: metrics,
		ring:    cfg.Trace.Ring("sim"),
		live:    cfg.Live,
		fault:   cfg.Faults.Worker(),
	}
	s.w.SetTrace(s.ring, s.live)
	for i, p := range Placements(cfg) {
		v := s.w.NewVehicle(i, p.Loc)
		s.vehicles = append(s.vehicles, v)
		x, y := cfg.Graph.Coord(v.loc)
		s.grid.Insert(spatial.ObjectID(i), x, y)
		// Stagger position reports across the fleet.
		s.reports.Push(Report{Due: p.FirstReport, Veh: i})
	}
	return s, nil
}

// Metrics returns the accumulated measurements. When the oracle stack
// reports cache counters they are refreshed into the metrics here, so the
// snapshot always carries the current cache efficacy.
func (s *Simulator) Metrics() *Metrics {
	if cs, ok := s.oracle.(CacheStatser); ok {
		dh, dm := cs.DistStats()
		ph, pm := cs.PathStats()
		s.metrics.SetCacheStats(dh, dm, ph, pm)
	}
	if cls, ok := s.oracle.(CacheLatencyStatser); ok {
		s.metrics.SetDistLatency(cls.DistLatency())
	}
	return s.metrics
}

// advanceTo forwards to the worker; kept as a method because motion tests
// exercise it directly.
func (s *Simulator) advanceTo(v *Vehicle, t float64) { s.w.AdvanceTo(v, t) }

// drainReportsUntil advances all vehicles whose position report is due
// before time t and refreshes their index entries. Each due vehicle is
// rescheduled in place with ReplaceMin, so the loop touches no heap
// storage beyond the existing backing array.
func (s *Simulator) drainReportsUntil(t float64) {
	for s.reports.Len() > 0 && s.reports.Min().Due <= t {
		r := s.reports.Min()
		v := s.vehicles[r.Veh]
		s.w.AdvanceTo(v, r.Due)
		x, y := s.graph.Coord(v.loc)
		s.grid.Update(spatial.ObjectID(r.Veh), x, y)
		s.reports.ReplaceMin(Report{Due: r.Due + s.cfg.ReportInterval, Veh: r.Veh})
	}
}

// Submit processes one request at its arrival time: it advances the clock,
// finds candidate servers via the spatial index, trial-schedules the request
// on each, and commits it to the cheapest (paper §I-A: "find the vehicle
// that minimizes the overall trip cost for the augmented valid trip
// schedule"). It reports whether the request was matched and to which
// vehicle.
func (s *Simulator) Submit(req Request) (matched bool, vehID int) {
	matchStart := s.ring.SpanStart()
	if req.Time < s.clock {
		req.Time = s.clock // tolerate slightly out-of-order input
	}
	s.drainReportsUntil(req.Time)
	s.clock = req.Time
	s.metrics.Requests++
	s.live.AddRequests(1)

	waitMeters, eps := s.w.Budget(req)
	px, py := s.graph.Coord(req.Pickup)
	// Candidate radius: the waiting budget plus the maximum drift since a
	// vehicle's last position report. The grid returns candidates sorted by
	// ID, which fixes the tie-breaking order.
	s.candidates = s.grid.Within(s.candidates[:0], px, py, s.w.CandidateRadius(waitMeters))

	s.fault.BeforeFanout(req.ID, req.Time)
	started := time.Now() //vetkit:allow determinism ACRT metric only; candidate selection depends on trials, not time
	bestVeh := -1
	var best Trial
	for _, id := range s.candidates {
		v := s.vehicles[int(id)]
		s.fault.BeforeTrial(req.ID, req.Time)
		s.w.AdvanceTo(v, req.Time)
		tr, ok := s.w.Trial(v, req, px, py, waitMeters, eps)
		if !ok {
			continue
		}
		if bestVeh < 0 || tr.Cost < best.Cost {
			best.Release() // dethroned candidate will never commit
			best = tr
			bestVeh = int(id)
		} else {
			tr.Release()
		}
	}
	s.metrics.recordACRT(time.Since(started)) //vetkit:allow determinism ACRT metric only
	s.ring.Emit(obs.KindTrialed, req.ID, req.Time, int64(len(s.candidates)))

	if bestVeh < 0 {
		s.metrics.Rejected++
		s.live.AddRejected(1)
		s.ring.Emit(obs.KindRejected, req.ID, req.Time, -1)
		s.emitMatchSpan(req, matchStart, -1)
		return false, -1
	}
	// Trial results are only valid against the vehicle state they were
	// computed from; if later trials were run on other vehicles this one's
	// state is unchanged, so the trial is still fresh.
	s.w.Commit(s.vehicles[bestVeh], best)
	s.ring.Emit(obs.KindMatched, req.ID, req.Time, int64(bestVeh))
	s.emitMatchSpan(req, matchStart, int64(bestVeh))
	return true, bestVeh
}

// emitMatchSpan closes the sequential simulator's match span around one
// Submit — the whole candidate scan, trial loop, and commit. There is no
// fan-out here, so no phase1 spans nest under it: match self time is the
// full span.
func (s *Simulator) emitMatchSpan(req Request, start int64, veh int64) {
	s.ring.EmitSpan(obs.Span{
		ID:     obs.SpanID(req.ID, obs.StageMatch, 0),
		Parent: obs.RootSpanID(req.ID),
		Req:    req.ID, Stage: obs.StageMatch, T: req.Time,
		Arg: veh, Start: start,
	})
}

// Run replays all requests (which must be sorted by time) and then lets the
// fleet finish its committed schedules. It returns the metrics, plus
// Drain's truncation error if the fleet could not finish within the
// drain-round sanity cap — the metrics are still returned, but they omit
// the stuck vehicles' completions.
func (s *Simulator) Run(reqs []Request) (*Metrics, error) {
	for i := range reqs {
		s.Submit(reqs[i])
	}
	err := s.Drain()
	return s.Metrics(), err
}

// Drain advances every vehicle until its committed schedule is finished, so
// completion statistics cover all matched requests. A fleet still busy
// after the sanity cap (DefaultDrainRoundCap rounds of DrainStep seconds)
// is wedged; Drain returns an explicit error naming the stuck vehicles
// instead of silently dropping their in-flight passengers, and
// CheckInvariants reports the same error afterwards.
func (s *Simulator) Drain() error {
	s.drainErr = nil // a drain that completes clears any earlier truncation
	rounds := s.drainRoundCap
	if rounds <= 0 {
		rounds = DefaultDrainRoundCap
	}
	idle := false
	for round := 0; round < rounds && !idle; round++ {
		idle = true
		s.clock += DrainStep
		for _, v := range s.vehicles {
			if v.Busy() {
				s.w.AdvanceTo(v, s.clock)
				idle = idle && !v.Busy()
			}
		}
	}
	if !idle {
		stuck := 0
		for _, v := range s.vehicles {
			if v.Busy() {
				stuck++
			}
		}
		s.drainErr = fmt.Errorf("sim: drain truncated after %d rounds (%.0f s): %d vehicles still busy", rounds, float64(rounds)*DrainStep, stuck)
	}
	for _, v := range s.vehicles {
		s.metrics.AddOccupancy(v.peakOnboard)
	}
	return s.drainErr
}

// CheckInvariants verifies cross-cutting simulator invariants; tests call it
// after runs. It returns an error describing the first violation found.
func (s *Simulator) CheckInvariants() error {
	if s.drainErr != nil {
		return s.drainErr
	}
	if s.metrics.Violations > 0 {
		return fmt.Errorf("sim: %d service-guarantee violations", s.metrics.Violations)
	}
	for _, v := range s.vehicles {
		if err := s.w.CheckVehicle(v); err != nil {
			return fmt.Errorf("sim: vehicle %d: %w", v.id, err)
		}
	}
	return nil
}
