package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/roadnet"
	"repro/internal/sp"
	"repro/internal/spatial"
)

// Algorithm selects the matching algorithm a fleet runs.
type Algorithm int

// Matching algorithms (paper §VI-A/B).
const (
	AlgoTreeBasic Algorithm = iota
	AlgoTreeSlack
	AlgoTreeHotspot
	AlgoBruteForce
	AlgoBranchBound
	AlgoMIP
)

func (a Algorithm) String() string {
	switch a {
	case AlgoTreeBasic:
		return "ktree"
	case AlgoTreeSlack:
		return "ktree-slack"
	case AlgoTreeHotspot:
		return "ktree-hotspot"
	case AlgoBruteForce:
		return "bruteforce"
	case AlgoBranchBound:
		return "branchbound"
	case AlgoMIP:
		return "mip"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Request is one trip request submitted to the system. WaitSeconds and
// Epsilon, when positive, override the fleet-wide constraints for this
// request (the paper's individualized-constraint generalization, §I-A:
// "our proposed algorithms can be easily generalized to individualized
// waiting time and service constraints").
type Request struct {
	ID      int64
	Time    float64 // seconds since simulation start
	Pickup  roadnet.VertexID
	Dropoff roadnet.VertexID

	WaitSeconds float64 // per-request waiting constraint; 0 = fleet default
	Epsilon     float64 // per-request service constraint; 0 = fleet default
}

// Config parameterizes a simulation run. Zero values select the defaults
// noted per field.
type Config struct {
	Graph  *roadnet.Graph
	Oracle sp.Oracle

	Servers  int
	Capacity int // max simultaneous passengers; 0 = unlimited

	WaitSeconds float64 // waiting-time constraint w (default 600 = 10 min)
	Epsilon     float64 // service constraint ε (default 0.2 = 20%)

	Algorithm    Algorithm
	HotspotTheta float64 // meters (AlgoTreeHotspot; default 300)
	// LazyInvalidation defers kinetic-tree pruning on movement to the
	// next request (paper §IV-A); applies to the tree algorithms only.
	LazyInvalidation bool
	MaxTreeNodes     int // candidate-tree size cap; 0 = 200000
	MIPMaxNodes      int // MIP branch&bound node cap; 0 = solver default
	// MIPTimeBudget bounds each MIP trial's wall time; the warm-started
	// incumbent is returned on truncation (0 = 50ms; negative = unbounded).
	MIPTimeBudget time.Duration

	ReportInterval float64 // seconds between vehicle position reports (default 30)
	CellSize       float64 // spatial-index cell size in meters (default 1000)

	Seed int64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.WaitSeconds == 0 {
		out.WaitSeconds = 600
	}
	if out.Epsilon == 0 {
		out.Epsilon = 0.2
	}
	if out.HotspotTheta == 0 {
		out.HotspotTheta = 300
	}
	if out.MaxTreeNodes == 0 {
		out.MaxTreeNodes = 200000
	}
	if out.ReportInterval == 0 {
		out.ReportInterval = 30
	}
	if out.CellSize == 0 {
		out.CellSize = 1000
	}
	if out.MIPTimeBudget == 0 {
		out.MIPTimeBudget = 50 * time.Millisecond
	}
	return out
}

// Simulator replays a request stream against a fleet.
//
// Not safe for concurrent use: the matching path is single-threaded, as in
// the paper's evaluation.
type Simulator struct {
	cfg        Config
	graph      *roadnet.Graph
	oracle     sp.Oracle
	grid       *spatial.GridIndex
	vehicles   []*vehicle
	sched      core.Scheduler // stateless algorithms only
	metrics    *Metrics
	waitMeters float64
	clock      float64
	reports    reportQueue
	candidates []spatial.ObjectID // scratch
}

// New creates a simulator with an idle fleet placed at random vertices
// ("a vehicle is initialized to a random vertex in the city", §VI).
func New(cfg Config) (*Simulator, error) {
	cfg = cfg.withDefaults()
	if cfg.Graph == nil || cfg.Oracle == nil {
		return nil, fmt.Errorf("sim: Graph and Oracle are required")
	}
	if cfg.Servers <= 0 {
		return nil, fmt.Errorf("sim: need at least one server, got %d", cfg.Servers)
	}
	minX, minY, maxX, maxY := cfg.Graph.Bounds()
	grid, err := spatial.NewGridIndex(minX, minY, maxX, maxY, cfg.CellSize)
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		cfg:        cfg,
		graph:      cfg.Graph,
		oracle:     cfg.Oracle,
		grid:       grid,
		metrics:    newMetrics(),
		waitMeters: cfg.WaitSeconds * roadnet.Speed,
	}
	switch cfg.Algorithm {
	case AlgoBruteForce:
		s.sched = core.NewBruteForce(cfg.Oracle)
	case AlgoBranchBound:
		s.sched = core.NewBranchBound(cfg.Oracle)
	case AlgoMIP:
		ms := core.NewMIPScheduler(cfg.Oracle, cfg.MIPMaxNodes)
		if cfg.MIPTimeBudget > 0 {
			ms.SetTimeBudget(cfg.MIPTimeBudget)
		}
		s.sched = ms
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := int32(cfg.Graph.N())
	for i := 0; i < cfg.Servers; i++ {
		v := &vehicle{
			id:         i,
			loc:        roadnet.VertexID(rng.Int31n(n)),
			rng:        rand.New(rand.NewSource(cfg.Seed + int64(i) + 1)),
			requestOdo: make(map[int64]float64),
			pickupOdo:  make(map[int64]float64),
		}
		switch cfg.Algorithm {
		case AlgoTreeBasic, AlgoTreeSlack, AlgoTreeHotspot:
			opts := core.TreeOptions{
				Capacity:         cfg.Capacity,
				MaxTreeNodes:     cfg.MaxTreeNodes,
				LazyInvalidation: cfg.LazyInvalidation,
			}
			if cfg.Algorithm != AlgoTreeBasic {
				opts.Slack = true
			}
			if cfg.Algorithm == AlgoTreeHotspot {
				opts.HotspotTheta = cfg.HotspotTheta
			}
			v.tree = core.NewTree(cfg.Oracle, v.loc, 0, opts)
		default:
			v.sched = s.sched
		}
		s.vehicles = append(s.vehicles, v)
		x, y := cfg.Graph.Coord(v.loc)
		s.grid.Insert(spatial.ObjectID(i), x, y)
		// Stagger position reports across the fleet.
		heap.Push(&s.reports, report{
			due: rng.Float64() * cfg.ReportInterval,
			veh: i,
		})
	}
	return s, nil
}

// Metrics returns the accumulated measurements.
func (s *Simulator) Metrics() *Metrics { return s.metrics }

// report is a scheduled vehicle position report ("around 17,000 taxis
// update their locations every 20 to 60 seconds", §IV).
type report struct {
	due float64
	veh int
}

type reportQueue []report

func (q reportQueue) Len() int           { return len(q) }
func (q reportQueue) Less(i, j int) bool { return q[i].due < q[j].due }
func (q reportQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *reportQueue) Push(x any)        { *q = append(*q, x.(report)) }
func (q *reportQueue) Pop() any {
	old := *q
	it := old[len(old)-1]
	*q = old[:len(old)-1]
	return it
}

// drainReportsUntil advances all vehicles whose position report is due
// before time t and refreshes their index entries.
func (s *Simulator) drainReportsUntil(t float64) {
	for len(s.reports) > 0 && s.reports[0].due <= t {
		r := heap.Pop(&s.reports).(report)
		v := s.vehicles[r.veh]
		s.advanceTo(v, r.due)
		x, y := s.graph.Coord(v.loc)
		s.grid.Update(spatial.ObjectID(r.veh), x, y)
		heap.Push(&s.reports, report{due: r.due + s.cfg.ReportInterval, veh: r.veh})
	}
}

// Submit processes one request at its arrival time: it advances the clock,
// finds candidate servers via the spatial index, trial-schedules the request
// on each, and commits it to the cheapest (paper §I-A: "find the vehicle
// that minimizes the overall trip cost for the augmented valid trip
// schedule"). It reports whether the request was matched and to which
// vehicle.
func (s *Simulator) Submit(req Request) (matched bool, vehID int) {
	if req.Time < s.clock {
		req.Time = s.clock // tolerate slightly out-of-order input
	}
	s.drainReportsUntil(req.Time)
	s.clock = req.Time
	s.metrics.Requests++

	waitMeters := s.waitMeters
	if req.WaitSeconds > 0 {
		waitMeters = req.WaitSeconds * roadnet.Speed
	}
	eps := s.cfg.Epsilon
	if req.Epsilon > 0 {
		eps = req.Epsilon
	}

	px, py := s.graph.Coord(req.Pickup)
	// Candidate radius: the waiting budget plus the maximum drift since a
	// vehicle's last position report.
	radius := waitMeters + s.cfg.ReportInterval*roadnet.Speed
	s.candidates = s.grid.Within(s.candidates[:0], px, py, radius)
	// The grid returns candidates in map order; sort for deterministic
	// tie-breaking and accumulation across runs.
	sort.Slice(s.candidates, func(i, j int) bool { return s.candidates[i] < s.candidates[j] })

	started := time.Now()
	bestCost := 0.0
	bestVeh := -1
	var bestTreeCand *core.Candidate
	var bestResult core.Result
	var bestTrip core.TripState

	for _, id := range s.candidates {
		v := s.vehicles[int(id)]
		s.advanceTo(v, req.Time)
		// Exact-location confirmation: skip vehicles whose true position
		// is beyond the waiting budget (Euclidean lower-bounds network
		// distance on generator graphs).
		vx, vy := s.graph.Coord(v.loc)
		if dx, dy := vx-px, vy-py; dx*dx+dy*dy > waitMeters*waitMeters {
			continue
		}
		active := v.activeTrips()
		trialStart := time.Now()
		if v.isTree() {
			trip, err := core.NewTripState(req.ID, req.Pickup, req.Dropoff, waitMeters, eps, v.odo, s.oracle)
			if err != nil {
				s.metrics.recordART(active, time.Since(trialStart))
				continue
			}
			cand, ok, err := v.tree.TrialInsert(trip)
			s.metrics.recordART(active, time.Since(trialStart))
			if err != nil {
				// Candidate tree exceeded the size budget: the paper's
				// basic/slack variants "break off" here (Fig. 9c).
				s.metrics.OverBudget++
				s.metrics.TrialFailures++
				continue
			}
			if !ok {
				s.metrics.TrialFailures++
				continue
			}
			if bestVeh < 0 || cand.Cost < bestCost {
				bestCost = cand.Cost
				bestVeh = int(id)
				bestTreeCand = cand
				bestTrip = trip
			}
		} else {
			inst, trip, ok := s.buildInstance(v, req, waitMeters, eps)
			if !ok {
				s.metrics.recordART(active, time.Since(trialStart))
				continue
			}
			res := v.sched.Schedule(inst)
			s.metrics.recordART(active, time.Since(trialStart))
			if !res.OK {
				s.metrics.TrialFailures++
				continue
			}
			if bestVeh < 0 || res.Cost < bestCost {
				bestCost = res.Cost
				bestVeh = int(id)
				bestResult = res
				bestTrip = trip
			}
		}
	}
	s.metrics.recordACRT(time.Since(started))

	if bestVeh < 0 {
		s.metrics.Rejected++
		return false, -1
	}
	v := s.vehicles[bestVeh]
	v.requestOdo[req.ID] = v.odo
	if v.isTree() {
		// TrialInsert results are only valid against the tree state they
		// were computed from; if later trials were run on other vehicles
		// this one's state is unchanged, so the candidate is still fresh.
		v.tree.Commit(bestTreeCand)
		if n := v.tree.Nodes(); n > s.metrics.TreeNodesMax {
			s.metrics.TreeNodesMax = n
		}
	} else {
		s.commitStateless(v, bestResult, bestTrip)
	}
	s.metrics.Matched++
	return true, bestVeh
}

// buildInstance assembles the rescheduling instance for a stateless vehicle:
// its active trips plus the new request, origin at its current position.
func (s *Simulator) buildInstance(v *vehicle, req Request, waitMeters, eps float64) (*core.Instance, core.TripState, bool) {
	trip, err := core.NewTripState(req.ID, req.Pickup, req.Dropoff, waitMeters, eps, v.odo, s.oracle)
	if err != nil {
		return nil, core.TripState{}, false
	}
	inst := &core.Instance{Origin: v.loc, Odo: v.odo, Capacity: s.cfg.Capacity}
	for i := range v.trips {
		if !v.done[i] {
			inst.Trips = append(inst.Trips, v.trips[i])
		}
	}
	inst.Trips = append(inst.Trips, trip)
	return inst, trip, true
}

// commitStateless adopts the scheduler's order on the vehicle. The order's
// trip indices reference the instance's compacted trip list; they are
// remapped to the vehicle's slot array.
func (s *Simulator) commitStateless(v *vehicle, res core.Result, trip core.TripState) {
	slot := make([]int, 0, len(v.trips)+1)
	for i := range v.trips {
		if !v.done[i] {
			slot = append(slot, i)
		}
	}
	v.trips = append(v.trips, trip)
	v.done = append(v.done, false)
	slot = append(slot, len(v.trips)-1)
	route := make([]core.Stop, len(res.Order))
	for i, st := range res.Order {
		st.Trip = slot[st.Trip]
		route[i] = st
	}
	v.route = route
	v.path = nil
	v.pathPos = 0
}

// Run replays all requests (which must be sorted by time) and then lets the
// fleet finish its committed schedules. It returns the metrics.
func (s *Simulator) Run(reqs []Request) *Metrics {
	for i := range reqs {
		s.Submit(reqs[i])
	}
	s.Drain()
	return s.metrics
}

// Drain advances every vehicle until its committed schedule is finished, so
// completion statistics cover all matched requests.
func (s *Simulator) Drain() {
	const step = 3600 // seconds per drain round
	for round := 0; round < 200; round++ {
		busy := false
		s.clock += step
		for _, v := range s.vehicles {
			if v.busy() {
				s.advanceTo(v, s.clock)
				busy = busy || v.busy()
			}
		}
		if !busy {
			break
		}
	}
	for _, v := range s.vehicles {
		s.metrics.PeakOccupancy = append(s.metrics.PeakOccupancy, v.peakOnboard)
	}
}

// CheckInvariants verifies cross-cutting simulator invariants; tests call it
// after runs. It returns an error describing the first violation found.
func (s *Simulator) CheckInvariants() error {
	if s.metrics.Violations > 0 {
		return fmt.Errorf("sim: %d service-guarantee violations", s.metrics.Violations)
	}
	for _, v := range s.vehicles {
		if v.isTree() {
			if err := v.tree.Validate(); err != nil {
				return fmt.Errorf("sim: vehicle %d: %w", v.id, err)
			}
		}
		if s.cfg.Capacity > 0 && v.peakOnboard > s.cfg.Capacity {
			return fmt.Errorf("sim: vehicle %d peak occupancy %d exceeds capacity %d", v.id, v.peakOnboard, s.cfg.Capacity)
		}
	}
	return nil
}
