package sim

import (
	"testing"

	"repro/internal/roadnet"
)

// lineGraph builds a graph whose vertices lie at the given coordinates,
// chained by unit edges so Build accepts it.
func lineGraph(t *testing.T, coords [][2]float64) *roadnet.Graph {
	t.Helper()
	b := roadnet.NewBuilder(0)
	for _, c := range coords {
		b.AddVertex(c[0], c[1])
	}
	for i := 1; i < len(coords); i++ {
		b.AddEdge(roadnet.VertexID(i-1), roadnet.VertexID(i), 1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestDeriveCellSizeDeterministic(t *testing.T) {
	g, _, _ := testSetup(t, 0)
	for _, servers := range []int{1, 10, 500, 10000, 100000} {
		a := DeriveCellSize(g, servers)
		b := DeriveCellSize(g, servers)
		if a != b {
			t.Fatalf("servers=%d: DeriveCellSize not deterministic: %v vs %v", servers, a, b)
		}
		if a < AutoMinCellSize || a > AutoMaxCellSize {
			t.Fatalf("servers=%d: cell size %v outside [%v, %v]", servers, a, AutoMinCellSize, AutoMaxCellSize)
		}
	}
	// Bigger fleets on the same map must get same-or-smaller cells.
	if small, big := DeriveCellSize(g, 100), DeriveCellSize(g, 100000); big > small {
		t.Fatalf("cell size grew with fleet: %v (100 veh) < %v (100k veh)", small, big)
	}
}

func TestDeriveCellSizeDegenerateExtents(t *testing.T) {
	cases := []struct {
		name   string
		coords [][2]float64
	}{
		{"single vertex", [][2]float64{{5, -3}}},
		{"coincident vertices", [][2]float64{{2, 2}, {2, 2}, {2, 2}}},
		{"horizontal line", [][2]float64{{0, 7}, {4000, 7}, {9000, 7}}},
		{"vertical line", [][2]float64{{-1, 0}, {-1, 2500}}},
	}
	for _, tc := range cases {
		g := lineGraph(t, tc.coords)
		for _, servers := range []int{1, 3, 1000} {
			c := DeriveCellSize(g, servers)
			if c <= 0 {
				t.Errorf("%s, servers=%d: non-positive cell size %v", tc.name, servers, c)
			}
		}
	}
	if c := DeriveCellSize(nil, 100); c != DefaultCellSize {
		t.Errorf("nil graph: got %v, want default %v", c, DefaultCellSize)
	}
	if c := DeriveCellSize(lineGraph(t, [][2]float64{{0, 0}, {1, 1}}), 0); c != DefaultCellSize {
		t.Errorf("zero servers: got %v, want default %v", c, DefaultCellSize)
	}
}

func TestDeriveShards(t *testing.T) {
	cases := []struct {
		servers, workers, want int
	}{
		{100, 1, 1},        // small fleet: one shard per worker
		{100, 4, 4},        // never fewer shards than workers
		{10000, 1, 3},      // ceil(10000/4096) = 3 > 1 worker
		{100000, 4, 16},    // ceil(100000/4096) = 25, capped at 4x workers
		{100000, 8, 25},    // 25 fits under 32
		{2, 8, 2},          // never more shards than vehicles
		{0, 0, 1},          // degenerate: still at least one shard
		{1, -3, 1},         // negative workers treated as 1
		{4096 * 3, 1, 3},   // exact multiples
		{4096*3 + 1, 1, 4}, // round up
	}
	for _, tc := range cases {
		if got := DeriveShards(tc.servers, tc.workers); got != tc.want {
			t.Errorf("DeriveShards(%d, %d) = %d, want %d", tc.servers, tc.workers, got, tc.want)
		}
		if again := DeriveShards(tc.servers, tc.workers); again != DeriveShards(tc.servers, tc.workers) {
			t.Errorf("DeriveShards(%d, %d) not deterministic", tc.servers, tc.workers)
		}
	}
}

// TestAutoTuneRespectsOverrides checks that explicitly configured values
// always beat derivation, and that the used values surface in Metrics.
func TestAutoTuneRespectsOverrides(t *testing.T) {
	g, oracle, _ := testSetup(t, 0)

	explicit := Config{Graph: g, Oracle: oracle, Servers: 50, AutoTune: true, CellSize: 123}
	s, err := New(explicit)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := s.Metrics().TunedCellSize; got != 123 {
		t.Fatalf("explicit CellSize overridden: got %v, want 123", got)
	}
	if !s.Metrics().AutoTuned {
		t.Fatalf("AutoTuned flag not surfaced")
	}

	derived := Config{Graph: g, Oracle: oracle, Servers: 50, AutoTune: true}
	s2, err := New(derived)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	want := DeriveCellSize(g, 50)
	if got := s2.Metrics().TunedCellSize; got != want {
		t.Fatalf("derived CellSize: got %v, want %v", got, want)
	}

	off := Config{Graph: g, Oracle: oracle, Servers: 50}
	s3, err := New(off)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := s3.Metrics().TunedCellSize; got != DefaultCellSize {
		t.Fatalf("AutoTune off: got cell size %v, want default %v", got, DefaultCellSize)
	}
	if s3.Metrics().AutoTuned {
		t.Fatalf("AutoTuned flag set without AutoTune")
	}
}
