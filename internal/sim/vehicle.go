package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/roadnet"
)

// Vehicle is one server: either a kinetic-tree vehicle (incremental state)
// or a stateless-scheduler vehicle that reschedules from scratch on every
// trial, exactly the distinction the paper draws between the tree algorithm
// and the brute-force/branch-and-bound/MIP baselines. Vehicles are moved and
// scheduled through a Worker; the type itself exposes only read accessors.
type Vehicle struct {
	id    int
	loc   roadnet.VertexID
	odo   float64 // meters traveled since simulation start
	clock float64 // simulation time (seconds) of the last advance

	// Tree algorithms.
	tree *core.Tree

	// Stateless algorithms.
	sched core.Scheduler
	trips []core.TripState
	done  []bool
	route []core.Stop // committed order, indices into trips

	// Current leg being driven (toward route/tree target or cruising).
	path    []roadnet.VertexID // path[0] == loc conceptually; consumed from front
	pathPos int

	peakOnboard int
	rng         *rand.Rand

	// bookkeeping for service accounting, keyed by trip ID
	requestOdo map[int64]float64 // odometer at request time
	pickupOdo  map[int64]float64 // odometer at pickup
}

// ID returns the vehicle's fleet-wide identifier.
func (v *Vehicle) ID() int { return v.id }

// Loc returns the vehicle's current vertex.
func (v *Vehicle) Loc() roadnet.VertexID { return v.loc }

// PeakOnboard returns the largest simultaneous passenger count observed.
func (v *Vehicle) PeakOnboard() int { return v.peakOnboard }

func (v *Vehicle) isTree() bool { return v.tree != nil }

// activeTrips returns the number of accepted, uncompleted trips.
func (v *Vehicle) activeTrips() int {
	if v.isTree() {
		return v.tree.ActiveTrips()
	}
	n := 0
	for i := range v.trips {
		if !v.done[i] {
			n++
		}
	}
	return n
}

func (v *Vehicle) onboard() int {
	if v.isTree() {
		return v.tree.OnBoard()
	}
	n := 0
	for i := range v.trips {
		if !v.done[i] && v.trips[i].OnBoard {
			n++
		}
	}
	return n
}

// Busy reports whether the vehicle has committed stops to serve.
func (v *Vehicle) Busy() bool {
	if v.isTree() {
		return !v.tree.Empty()
	}
	return len(v.route) > 0
}

// nextTarget returns the vertex of the next committed stop.
func (v *Vehicle) nextTarget() (roadnet.VertexID, bool) {
	if v.isTree() {
		stops := v.tree.NextStops()
		if len(stops) == 0 {
			return 0, false
		}
		return stops[0].Vertex, true
	}
	if len(v.route) == 0 {
		return 0, false
	}
	return v.route[0].Vertex, true
}

// AdvanceTo moves the vehicle forward to simulation time t, following its
// committed schedule when busy and cruising randomly when idle ("a vehicle
// ... follows a given route when there are customer(s) on board or,
// otherwise, follows the current road segment; at intersections, the next
// segment to follow is chosen randomly", §VI).
func (w *Worker) AdvanceTo(v *Vehicle, t float64) {
	if t < v.clock {
		return
	}
	budget := (t - v.clock) * roadnet.Speed // meters available
	v.clock = t
	for budget > 1e-9 {
		if v.Busy() {
			target, _ := v.nextTarget()
			if target == v.loc {
				budget = w.serveStop(v, budget)
				continue
			}
			if !w.stepToward(v, target, &budget) {
				return // unreachable target: freeze (cannot happen on connected graphs)
			}
		} else {
			w.cruise(v, &budget)
		}
	}
}

// stepToward advances along the shortest path to target, consuming budget.
// Returns false if no path exists.
func (w *Worker) stepToward(v *Vehicle, target roadnet.VertexID, budget *float64) bool {
	if v.pathPos >= len(v.path) || v.path[len(v.path)-1] != target || v.path[v.pathPos] != v.loc {
		v.path = w.oracle.Path(v.loc, target)
		v.pathPos = 0
		if len(v.path) == 0 {
			return false
		}
	}
	for v.pathPos+1 < len(v.path) && *budget > 1e-9 {
		next := v.path[v.pathPos+1]
		ew, ok := w.graph.EdgeWeight(v.loc, next)
		if !ok {
			// Path vertices are always adjacent; defensive only.
			ew = w.oracle.Dist(v.loc, next)
		}
		if ew > *budget {
			// Cannot complete the edge this step; hold position at the
			// current vertex (vertex-granular motion).
			*budget = 0
			return true
		}
		*budget -= ew
		v.odo += ew
		v.loc = next
		v.pathPos++
		w.metrics.TotalVehicleMeters += ew
		if v.isTree() {
			v.tree.SetLocation(v.loc, v.odo)
		}
	}
	return true
}

// cruise moves the idle vehicle along random road segments.
func (w *Worker) cruise(v *Vehicle, budget *float64) {
	ts, ws := w.graph.Neighbors(v.loc)
	if len(ts) == 0 {
		*budget = 0
		return
	}
	i := v.rng.Intn(len(ts))
	if ws[i] > *budget {
		*budget = 0 // vertex-granular: stay until enough budget accrues
		return
	}
	*budget -= ws[i]
	v.odo += ws[i]
	v.loc = ts[i]
	w.metrics.TotalVehicleMeters += ws[i]
	if v.isTree() {
		// Keep the (empty) tree's root in sync while cruising: the next
		// trial insertion computes every leg from the tree's location.
		v.tree.SetLocation(v.loc, v.odo)
	}
}

// serveStop handles arrival at the next scheduled stop and returns the
// remaining budget (intra-hotspot travel is consumed from it).
func (w *Worker) serveStop(v *Vehicle, budget float64) float64 {
	if v.isTree() {
		v.tree.SetLocation(v.loc, v.odo)
		pre := v.tree.Odo()
		served, err := v.tree.Advance()
		if err != nil {
			panic(fmt.Sprintf("sim: vehicle %d: %v", v.id, err))
		}
		delta := v.tree.Odo() - pre // intra-hotspot distance
		budget -= delta
		v.odo = v.tree.Odo()
		v.loc = v.tree.Loc()
		w.metrics.TotalVehicleMeters += delta
		for _, sv := range served {
			w.accountStop(v, sv.Stop.Kind, sv.Trip, sv.Odo)
		}
		return budget
	}
	// Stateless vehicle: serve every consecutive leading stop at this
	// vertex.
	for len(v.route) > 0 && v.route[0].Vertex == v.loc {
		stop := v.route[0]
		v.route = v.route[1:]
		tr := &v.trips[stop.Trip]
		switch stop.Kind {
		case core.Pickup:
			tr.MarkPickedUp(v.odo)
		case core.Dropoff:
			v.done[stop.Trip] = true
		}
		w.accountStop(v, stop.Kind, *tr, v.odo)
	}
	if len(v.route) == 0 {
		v.trips = v.trips[:0]
		v.done = v.done[:0]
	}
	return budget
}

// accountStop updates service metrics when a stop is served at odometer at.
func (w *Worker) accountStop(v *Vehicle, kind core.StopKind, tr core.TripState, at float64) {
	switch kind {
	case core.Pickup:
		if ob := v.onboard(); ob > v.peakOnboard {
			v.peakOnboard = ob
		}
		v.pickupOdo[tr.ID] = at
		if reqOdo, ok := v.requestOdo[tr.ID]; ok {
			w.metrics.TotalWaitMeters += at - reqOdo
		}
		// The trip state carries its own (possibly individualized)
		// waiting deadline.
		if at > tr.WaitDeadline+1 {
			w.metrics.Violations++
		}
	case core.Dropoff:
		w.metrics.Completed++
		w.live.AddCompleted(1)
		w.ring.Emit(obs.KindCompleted, tr.ID, v.clock, int64(v.id))
		if pOdo, ok := v.pickupOdo[tr.ID]; ok {
			ride := at - pOdo
			w.metrics.TotalRideMeters += ride
			w.metrics.TotalShortestLen += tr.ShortestLen
			if ride > tr.MaxRide+1 {
				w.metrics.Violations++
			}
			delete(v.pickupOdo, tr.ID)
		}
		delete(v.requestOdo, tr.ID)
	}
}
