package sim

import (
	"math"

	"repro/internal/roadnet"
)

// Auto-tuning derives the two capacity knobs that city-scale runs must
// otherwise hand-pick: the spatial-index cell size and the dispatch shard
// count. Both derivations are pure functions of the fleet size and the
// graph extent, so a fixed (graph, fleet) pair always tunes identically —
// and neither knob affects matching decisions (the grid returns a superset
// that the worker filters exactly, and shard count is equivalence-proven),
// so tuning changes throughput, never assignments.

// DefaultCellSize is the static spatial-index cell size (meters) used when
// auto-tuning is off and no explicit size is configured.
const DefaultCellSize = 1000

const (
	// AutoMinCellSize and AutoMaxCellSize clamp the derived cell size.
	// The floor keeps tiny dense fleets from degrading the index into
	// per-vehicle cells (whose walk overhead beats any filtering win);
	// the ceiling keeps sparse fleets on huge maps from collapsing the
	// index into one cell that every query must scan.
	AutoMinCellSize = 50.0
	AutoMaxCellSize = 5000.0

	// autoVehPerCell is the target mean vehicle population per grid cell.
	// A candidate query scans the cells under its radius disk; a few
	// vehicles per cell keeps that scan dense (little empty-cell
	// overhead) without making per-cell membership updates expensive.
	autoVehPerCell = 4

	// autoVehPerShard is the target fleet slice per dispatch shard beyond
	// which extra shards are added over the worker count. 4096 vehicles
	// keeps a shard's trial fan-out chunk large enough to amortize task
	// handoff while letting 100k-vehicle fleets spread past a small
	// worker pool for finer load balancing.
	autoVehPerShard = 4096
)

func clampCell(c float64) float64 {
	if c < AutoMinCellSize {
		return AutoMinCellSize
	}
	if c > AutoMaxCellSize {
		return AutoMaxCellSize
	}
	return c
}

// DeriveCellSize returns the auto-tuned spatial-index cell size in meters
// for a fleet of the given size on g: the size at which a uniformly spread
// fleet averages autoVehPerCell vehicles per cell, clamped to
// [AutoMinCellSize, AutoMaxCellSize]. It is deterministic in (g, servers)
// and always positive: degenerate extents (nil graph, empty or
// single-vertex graphs, collinear vertices) fall back to DefaultCellSize
// or a 1-D corridor derivation rather than returning zero.
func DeriveCellSize(g *roadnet.Graph, servers int) float64 {
	if g == nil || servers <= 0 {
		return DefaultCellSize
	}
	minX, minY, maxX, maxY := g.Bounds()
	w, h := maxX-minX, maxY-minY
	area := w * h
	if area <= 0 {
		// Collinear or single-point extent: the grid is effectively one
		// row of cells, so size cells along the corridor instead.
		span := math.Max(w, h)
		if span <= 0 {
			return DefaultCellSize
		}
		return clampCell(span * autoVehPerCell / float64(servers))
	}
	return clampCell(math.Sqrt(area * autoVehPerCell / float64(servers)))
}

// DeriveShards returns the auto-tuned dispatch shard count for a fleet of
// the given size matched by the given worker-pool size: one shard per
// autoVehPerShard vehicles, never fewer than the workers (each worker
// always has a shard to run) and never more than 4x the workers (beyond
// that, fan-out task overhead outweighs the load-balancing win), capped at
// one shard per vehicle. Deterministic in (servers, workers) and always
// at least 1.
func DeriveShards(servers, workers int) int {
	if workers <= 0 {
		workers = 1
	}
	s := (servers + autoVehPerShard - 1) / autoVehPerShard
	if s < workers {
		s = workers
	}
	if max := 4 * workers; s > max {
		s = max
	}
	if servers > 0 && s > servers {
		s = servers
	}
	if s < 1 {
		s = 1
	}
	return s
}
