package sim

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/roadnet"
	"repro/internal/sp"
)

// testSetup builds a small city, an exact cached oracle, and a request
// stream shared by the integration tests.
func testSetup(t testing.TB, trips int) (*roadnet.Graph, sp.Oracle, []Request) {
	t.Helper()
	g, err := roadnet.Grid(roadnet.GridOptions{
		Rows: 20, Cols: 20, Spacing: 400, Jitter: 0.2, WeightVar: 0.1, DropFrac: 0.05, Seed: 7,
	})
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	oracle := cache.New(sp.NewBidirectional(g), g.N(), 1<<20, 1<<14)
	reqs := genRequests(t, g, trips)
	return g, oracle, reqs
}

// genRequests produces a deterministic request stream without importing
// internal/trace (which would create an import cycle in tests).
func genRequests(t testing.TB, g *roadnet.Graph, n int) []Request {
	t.Helper()
	reqs := make([]Request, 0, n)
	nv := int32(g.N())
	// Simple LCG so the stream is stable across Go versions.
	state := int64(12345)
	next := func(mod int32) int32 {
		state = state*6364136223846793005 + 1442695040888963407
		v := int32((state >> 33) % int64(mod))
		if v < 0 {
			v += mod
		}
		return v
	}
	for i := 0; len(reqs) < n; i++ {
		s := roadnet.VertexID(next(nv))
		e := roadnet.VertexID(next(nv))
		if s == e || g.EuclideanDist(s, e) < 800 {
			continue
		}
		reqs = append(reqs, Request{
			ID:      int64(len(reqs)),
			Time:    float64(len(reqs)) * 5, // one request every 5 seconds
			Pickup:  s,
			Dropoff: e,
		})
	}
	return reqs
}

// TestSimulationAllAlgorithms runs the same workload through every matching
// algorithm and checks the service-guarantee invariants hold throughout.
func TestSimulationAllAlgorithms(t *testing.T) {
	g, oracle, reqs := testSetup(t, 120)
	for _, algo := range []Algorithm{
		AlgoTreeBasic, AlgoTreeSlack, AlgoTreeHotspot,
		AlgoBruteForce, AlgoBranchBound, AlgoMIP,
	} {
		t.Run(algo.String(), func(t *testing.T) {
			s, err := New(Config{
				Graph:       g,
				Oracle:      oracle,
				Servers:     25,
				Capacity:    4,
				Algorithm:   algo,
				MIPMaxNodes: 3000, // bound pathological MIP instances
				Seed:        42,
			})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			m, err := s.Run(reqs)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("invariants: %v", err)
			}
			if m.Requests != len(reqs) {
				t.Fatalf("requests: got %d want %d", m.Requests, len(reqs))
			}
			if m.Matched+m.Rejected != m.Requests {
				t.Fatalf("matched %d + rejected %d != requests %d", m.Matched, m.Rejected, m.Requests)
			}
			if m.Matched == 0 {
				t.Fatal("no request matched — workload or dispatch broken")
			}
			if m.Completed != m.Matched {
				t.Fatalf("completed %d != matched %d after drain", m.Completed, m.Matched)
			}
			if m.Violations != 0 {
				t.Fatalf("%d service violations", m.Violations)
			}
			t.Logf("%s: %s", algo, m)
		})
	}
}

// TestSimulationDeterminism checks that the same seed and workload give
// identical outcomes.
func TestSimulationDeterminism(t *testing.T) {
	g, oracle, reqs := testSetup(t, 60)
	run := func() *Metrics {
		s, err := New(Config{Graph: g, Oracle: oracle, Servers: 15, Capacity: 4, Algorithm: AlgoTreeSlack, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		m, err := s.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	if a.Matched != b.Matched || a.Rejected != b.Rejected || a.Completed != b.Completed {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
	if a.TotalRideMeters != b.TotalRideMeters {
		t.Fatalf("nondeterministic ride meters: %f vs %f", a.TotalRideMeters, b.TotalRideMeters)
	}
}

// TestMatchRateComparable checks the tree and exhaustive algorithms accept a
// similar share of requests: they solve the same matching problem, so large
// divergence indicates a bug (small divergence is expected because greedy
// assignment history differs).
func TestMatchRateComparable(t *testing.T) {
	g, oracle, reqs := testSetup(t, 100)
	rates := map[Algorithm]int{}
	for _, algo := range []Algorithm{AlgoTreeSlack, AlgoBranchBound} {
		s, err := New(Config{Graph: g, Oracle: oracle, Servers: 20, Capacity: 4, Algorithm: algo, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		m, err := s.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		rates[algo] = m.Matched
	}
	a, b := rates[AlgoTreeSlack], rates[AlgoBranchBound]
	if a == 0 || b == 0 {
		t.Fatalf("zero match rate: tree=%d bb=%d", a, b)
	}
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	if diff > len(reqs)/5 {
		t.Fatalf("match rates diverge: tree=%d bb=%d of %d", a, b, len(reqs))
	}
}

// TestZeroServers checks constructor validation.
func TestZeroServers(t *testing.T) {
	g, oracle, _ := testSetup(t, 1)
	if _, err := New(Config{Graph: g, Oracle: oracle, Servers: 0}); err == nil {
		t.Fatal("expected error for zero servers")
	}
	if _, err := New(Config{Servers: 3}); err == nil {
		t.Fatal("expected error for missing graph/oracle")
	}
}
