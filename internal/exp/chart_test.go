package exp

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestChartRender(t *testing.T) {
	c := &Chart{
		Title:  "demo chart",
		XLabel: "constraints",
		YLabel: "time",
		XTicks: []string{"a", "b", "c"},
		Series: []Series{
			{Name: "fast", Values: []float64{1000, 2000, 3000}},
			{Name: "slow", Values: []float64{5000, math.NaN(), 9000}},
		},
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo chart", "*=fast", "o=slow", "(constraints)"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart output missing %q:\n%s", want, out)
		}
	}
	// The NaN point must not be plotted: count 'o' glyphs inside plot rows
	// only (lines containing the axis bar).
	plotted := 0
	for _, line := range strings.Split(out, "\n") {
		if i := strings.IndexByte(line, '|'); i >= 0 {
			plotted += strings.Count(line[i:], "o")
		}
	}
	if plotted != 2 {
		t.Errorf("series 'slow' should plot exactly 2 points, found %d\n%s", plotted, out)
	}
}

func TestChartEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Chart{Title: "empty"}).Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no data") {
		t.Errorf("empty chart output: %q", buf.String())
	}
	c := &Chart{Title: "all-nan", XTicks: []string{"x"}, Series: []Series{{Name: "s", Values: []float64{math.NaN()}}}}
	buf.Reset()
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no data") {
		t.Errorf("all-NaN chart output: %q", buf.String())
	}
}

func TestChartFromTable(t *testing.T) {
	table := &Table{
		ID:      "figX",
		Title:   "sweep",
		Columns: []string{"dim", "algo1", "algo2"},
		Rows: [][]string{
			{"p1", "1ms", "10ms"},
			{"p2", "2ms", "DNF"},
		},
	}
	c := ChartFromTable(table, "dim")
	if len(c.Series) != 2 {
		t.Fatalf("series count %d", len(c.Series))
	}
	if len(c.XTicks) != 2 || c.XTicks[0] != "p1" {
		t.Fatalf("xticks %v", c.XTicks)
	}
	if c.Series[0].Values[0] != 1e6 {
		t.Fatalf("parsed value %v, want 1e6 ns", c.Series[0].Values[0])
	}
	if !math.IsNaN(c.Series[1].Values[1]) {
		t.Fatalf("DNF should parse to NaN, got %v", c.Series[1].Values[1])
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
}
