package exp

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

// tinyHarness builds a minimal world for smoke tests.
func tinyHarness(t testing.TB) *Harness {
	t.Helper()
	w, err := BuildWorld(WorldOptions{Scale: 0.004, Trips: 120, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	return NewHarness(w, 0, nil)
}

func TestBuildWorldValidation(t *testing.T) {
	if _, err := BuildWorld(WorldOptions{Scale: 0}); err == nil {
		t.Fatal("expected error for zero scale")
	}
	if _, err := BuildWorld(WorldOptions{Scale: -1}); err == nil {
		t.Fatal("expected error for negative scale")
	}
}

func TestScaleCount(t *testing.T) {
	w, err := BuildWorld(WorldOptions{Scale: 0.004, Trips: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.ScaleCount(10000, 10); got != 40 {
		t.Fatalf("ScaleCount(10000)=%d, want 40", got)
	}
	if got := w.ScaleCount(100, 10); got != 10 {
		t.Fatalf("min clamp: got %d", got)
	}
}

func TestHarnessMemoizes(t *testing.T) {
	h := tinyHarness(t)
	p := RunParams{Algo: sim.AlgoTreeSlack, Servers: 10, Capacity: 4, Constraint: DefaultConstraint}
	a, err := h.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical params were re-run instead of memoized")
	}
}

// TestExperimentsSmoke runs every experiment on a tiny world and checks the
// tables render with the right structure. This is the integration test of
// the whole reproduction pipeline (network -> trace -> sim -> tables).
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep in -short mode")
	}
	h := tinyHarness(t)
	for _, id := range AllIDs() {
		fn := h.Experiments()[id]
		if fn == nil {
			t.Fatalf("experiment %s not registered", id)
		}
		table, err := fn()
		if err != nil {
			t.Fatalf("experiment %s: %v", id, err)
		}
		if table.ID != id {
			t.Errorf("experiment %s: table ID %s", id, table.ID)
		}
		if len(table.Rows) == 0 {
			t.Errorf("experiment %s: no rows", id)
		}
		var buf bytes.Buffer
		if err := table.Render(&buf); err != nil {
			t.Fatalf("experiment %s: render: %v", id, err)
		}
		out := buf.String()
		if !strings.Contains(out, table.Title) {
			t.Errorf("experiment %s: rendered output missing title", id)
		}
		for _, col := range table.Columns {
			if !strings.Contains(out, col) {
				t.Errorf("experiment %s: rendered output missing column %q", id, col)
			}
		}
	}
}

func TestTableRender(t *testing.T) {
	table := &Table{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"a", "bbbb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"a note"},
	}
	var buf bytes.Buffer
	if err := table.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== x: demo ==", "a    bbbb", "333  4", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}
