// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§VI) as text tables. Each experiment is
// one parameter sweep over full simulation runs; DESIGN.md §4 maps paper
// figure IDs to the functions here, and cmd/experiments is the CLI driver.
//
// Absolute times depend on the host; the shapes the paper reports (who wins,
// by what factor, where curves cross) are what these experiments reproduce.
package exp

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/roadnet"
	"repro/internal/sim"
	"repro/internal/sp"
	"repro/internal/trace"
)

// World is the shared experimental environment: a synthetic-Shanghai road
// network, a cached shortest-path oracle, and a day of trip requests.
type World struct {
	Graph    *roadnet.Graph
	Requests []sim.Request
	Scale    float64
	seed     int64
}

// WorldOptions configures BuildWorld.
type WorldOptions struct {
	// Scale sizes everything relative to the paper's setup: road network
	// vertices, fleet sizes, and trip counts all scale together.
	// Scale 1.0 = 122,319 vertices / 432,327 trips / fleets up to 20,000.
	Scale float64
	// Trips overrides the scaled trip count when positive.
	Trips int
	// HorizonSeconds sets the request time span (default 86400, a full
	// day: servers and trips both scale with Scale, so per-server demand
	// stays paper-like without compressing the clock).
	HorizonSeconds float64
	Seed           int64
}

// BuildWorld constructs the experimental environment.
func BuildWorld(opt WorldOptions) (*World, error) {
	if opt.Scale <= 0 {
		return nil, fmt.Errorf("exp: scale must be positive, got %v", opt.Scale)
	}
	g, err := roadnet.SyntheticCity(roadnet.CityOptions{Scale: opt.Scale, Seed: opt.Seed})
	if err != nil {
		return nil, err
	}
	trips := opt.Trips
	if trips <= 0 {
		trips = int(float64(trace.ShanghaiTrips) * opt.Scale)
		if trips < 200 {
			trips = 200
		}
	}
	horizon := opt.HorizonSeconds
	if horizon <= 0 {
		horizon = 86400
	}
	reqs, err := trace.Generate(g, trace.GenOptions{
		Trips:          trips,
		HorizonSeconds: horizon,
		Seed:           opt.Seed + 1,
	})
	if err != nil {
		return nil, err
	}
	return &World{Graph: g, Requests: reqs, Scale: opt.Scale, seed: opt.Seed}, nil
}

// NewOracle returns a fresh cached oracle for this world. Each simulation
// run gets its own so wall-clock measurements are not skewed by cache state
// left behind by a previous run.
func (w *World) NewOracle() sp.Oracle {
	// Cache sizes follow the paper (10M distances / 10K paths) but are
	// scaled down with the world to keep small runs lightweight.
	distEntries := int(float64(cache.DefaultDistEntries) * w.Scale)
	if distEntries < 1<<18 {
		distEntries = 1 << 18
	}
	return cache.New(sp.NewBidirectional(w.Graph), w.Graph.N(), distEntries, cache.DefaultPathEntries)
}

// ScaleCount scales a paper-sized fleet or trip count to this world,
// keeping at least min.
func (w *World) ScaleCount(paperCount, min int) int {
	n := int(math.Round(float64(paperCount) * w.Scale))
	if n < min {
		n = min
	}
	return n
}

// Constraint is one waiting-time/service-constraint setting from Table I/II.
type Constraint struct {
	WaitMinutes int
	EpsPercent  int
}

func (c Constraint) String() string {
	return fmt.Sprintf("%d min / %d%%", c.WaitMinutes, c.EpsPercent)
}

// Paper parameter grids (Tables I and II).
var (
	Constraints = []Constraint{{5, 10}, {10, 20}, {15, 30}, {20, 40}, {25, 50}}
	// DefaultConstraint is the bolded default 10 min / 20%.
	DefaultConstraint = Constraint{10, 20}
	// FourAlgoServers is Table I's fleet sweep (default 10,000).
	FourAlgoServers = []int{1000, 2000, 5000, 10000, 20000}
	// TreeServers is Table II's fleet sweep (default 2,000).
	TreeServers = []int{500, 1000, 2000, 5000, 10000}
	// TreeCapacities is the Fig. 9c sweep; 0 denotes unlimited.
	TreeCapacities = []int{3, 4, 5, 6, 7, 8, 12, 16, 0}
)

// FourAlgos are the algorithms of the §VI-A comparison.
var FourAlgos = []sim.Algorithm{
	sim.AlgoTreeSlack, sim.AlgoBranchBound, sim.AlgoBruteForce, sim.AlgoMIP,
}

// TreeAlgos are the kinetic-tree variants of the §VI-B comparison.
var TreeAlgos = []sim.Algorithm{
	sim.AlgoTreeBasic, sim.AlgoTreeSlack, sim.AlgoTreeHotspot,
}

// RunParams identifies one simulation configuration.
type RunParams struct {
	Algo       sim.Algorithm
	Servers    int
	Capacity   int
	Constraint Constraint
}

// Harness executes simulation runs with memoization so that sweeps sharing
// a configuration (e.g. every figure's default point) run once.
type Harness struct {
	World *World
	// MaxRequests truncates the request stream per run when positive,
	// bounding the wall-clock cost of slow baselines (the paper instead
	// waited hours; the shapes survive truncation).
	MaxRequests int
	Verbose     io.Writer // progress log, may be nil
	memo        map[RunParams]*sim.Metrics
}

// NewHarness returns a harness over the world.
func NewHarness(w *World, maxRequests int, verbose io.Writer) *Harness {
	return &Harness{World: w, MaxRequests: maxRequests, Verbose: verbose, memo: make(map[RunParams]*sim.Metrics)}
}

// Run executes (or recalls) the simulation for the given parameters.
func (h *Harness) Run(p RunParams) (*sim.Metrics, error) {
	if m, ok := h.memo[p]; ok {
		return m, nil
	}
	reqs := h.World.Requests
	if h.MaxRequests > 0 && len(reqs) > h.MaxRequests {
		reqs = reqs[:h.MaxRequests]
	}
	cfg := sim.Config{
		Graph:       h.World.Graph,
		Oracle:      h.World.NewOracle(),
		Servers:     p.Servers,
		Capacity:    p.Capacity,
		WaitSeconds: float64(p.Constraint.WaitMinutes) * 60,
		Epsilon:     float64(p.Constraint.EpsPercent) / 100,
		Algorithm:   p.Algo,
		Seed:        h.World.seed + 1000,
		// Bound MIP effort per trial so loose-constraint sweeps finish;
		// the warm-started incumbent keeps answers valid (Exact=false).
		MIPMaxNodes:   5000,
		MIPTimeBudget: 20 * time.Millisecond,
	}
	s, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	m, err := s.Run(reqs)
	if err != nil {
		return nil, fmt.Errorf("exp: run %+v: %w", p, err)
	}
	if err := s.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("exp: run %+v: %w", p, err)
	}
	if h.Verbose != nil {
		fmt.Fprintf(h.Verbose, "# run algo=%s servers=%d cap=%d constraint=%s: %s (wall %v)\n",
			p.Algo, p.Servers, p.Capacity, p.Constraint, m, time.Since(start).Round(time.Millisecond))
	}
	h.memo[p] = m
	return m, nil
}

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render writes the table in aligned plain text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if pad := widths[i] - len(c); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		return b.String()
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(line(t.Columns)))); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// fmtDur renders a duration for table cells.
func fmtDur(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return d.Round(100 * time.Nanosecond).String()
}
