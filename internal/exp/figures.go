package exp

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/sp"
	"repro/internal/trace"
)

// fourAlgoDefaults returns the §VI-A default parameters scaled to the world:
// capacity 4, 10 min / 20%, 10,000 servers.
func (h *Harness) fourAlgoDefaults() RunParams {
	return RunParams{
		Servers:    h.World.ScaleCount(10000, 10),
		Capacity:   4,
		Constraint: DefaultConstraint,
	}
}

// treeDefaults returns the §VI-B default parameters scaled to the world:
// capacity 6, 10 min / 20%, 2,000 servers.
func (h *Harness) treeDefaults() RunParams {
	return RunParams{
		Servers:    h.World.ScaleCount(2000, 5),
		Capacity:   6,
		Constraint: DefaultConstraint,
	}
}

// artTable builds an ART-by-request-count table for a set of algorithms at
// fixed parameters.
func (h *Harness) artTable(id, title string, algos []sim.Algorithm, base RunParams) (*Table, error) {
	metrics := make([]*sim.Metrics, len(algos))
	maxBucket := 0
	for i, a := range algos {
		p := base
		p.Algo = a
		m, err := h.Run(p)
		if err != nil {
			return nil, err
		}
		metrics[i] = m
		for _, b := range m.ARTBuckets() {
			if b > maxBucket {
				maxBucket = b
			}
		}
	}
	t := &Table{ID: id, Title: title, Columns: []string{"requests"}}
	for _, a := range algos {
		t.Columns = append(t.Columns, a.String())
	}
	for b := 0; b <= maxBucket; b++ {
		row := []string{fmt.Sprintf("%d", b)}
		any := false
		for _, m := range metrics {
			d, n := m.ART(b)
			if n > 0 {
				any = true
			}
			row = append(row, fmtDur(d))
		}
		if any {
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf("servers=%d capacity=%d constraint=%s; ART = mean per-trial scheduling time bucketed by the candidate vehicle's scheduled request count", base.Servers, base.Capacity, base.Constraint))
	return t, nil
}

// acrtSweep builds an ACRT table over a one-dimensional sweep.
func (h *Harness) acrtSweep(id, title, dim string, algos []sim.Algorithm, points []RunParams, labels []string) (*Table, error) {
	t := &Table{ID: id, Title: title, Columns: []string{dim}}
	for _, a := range algos {
		t.Columns = append(t.Columns, a.String())
	}
	for i, base := range points {
		row := []string{labels[i]}
		for _, a := range algos {
			p := base
			p.Algo = a
			m, err := h.Run(p)
			if err != nil {
				return nil, err
			}
			cell := fmtDur(m.ACRT())
			if m.OverBudget > 0 {
				cell = "DNF" // exceeded the tree-size budget (3 GB analogue)
			}
			row = append(row, cell)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// artAtSweep builds an ART@k table over a sweep (Figs. 8 and 9a/b report
// the response time for vehicles that already carry k requests).
func (h *Harness) artAtSweep(id, title, dim string, k int, algos []sim.Algorithm, points []RunParams, labels []string) (*Table, error) {
	t := &Table{ID: id, Title: title, Columns: []string{dim}}
	for _, a := range algos {
		t.Columns = append(t.Columns, fmt.Sprintf("%s@%d", a, k))
	}
	for i, base := range points {
		row := []string{labels[i]}
		for _, a := range algos {
			p := base
			p.Algo = a
			m, err := h.Run(p)
			if err != nil {
				return nil, err
			}
			d, n := m.ART(k)
			if n == 0 {
				// No vehicle reached k scheduled requests at this
				// scale; fall back to the largest observed bucket
				// and annotate the cell.
				fallback := -1
				for _, b := range m.ARTBuckets() {
					if b < k && b > fallback {
						if _, cnt := m.ART(b); cnt > 0 {
							fallback = b
						}
					}
				}
				if fallback < 0 {
					row = append(row, "n/a")
				} else {
					fd, _ := m.ART(fallback)
					row = append(row, fmt.Sprintf("%s@%d", fmtDur(fd), fallback))
				}
			} else {
				row = append(row, fmtDur(d))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("cells are mean scheduling time for trials on vehicles already carrying %d requests; a cell like '50µs@3' falls back to the largest observed request count at this scale", k))
	return t, nil
}

// constraintPoints expands the constraint sweep around a base configuration.
func constraintPoints(base RunParams) ([]RunParams, []string) {
	pts := make([]RunParams, len(Constraints))
	labels := make([]string, len(Constraints))
	for i, c := range Constraints {
		p := base
		p.Constraint = c
		pts[i] = p
		labels[i] = c.String()
	}
	return pts, labels
}

// serverPoints expands a fleet-size sweep around a base configuration.
func (h *Harness) serverPoints(base RunParams, paperCounts []int) ([]RunParams, []string) {
	pts := make([]RunParams, len(paperCounts))
	labels := make([]string, len(paperCounts))
	for i, n := range paperCounts {
		p := base
		p.Servers = h.World.ScaleCount(n, 3)
		pts[i] = p
		labels[i] = fmt.Sprintf("%d (paper %d)", p.Servers, n)
	}
	return pts, labels
}

// Fig6a: ART for different numbers of scheduled requests, four algorithms.
func (h *Harness) Fig6a() (*Table, error) {
	return h.artTable("fig6a", "ART vs. scheduled requests (four algorithms)", FourAlgos, h.fourAlgoDefaults())
}

// Fig6b: ACRT for varying constraints, four algorithms.
func (h *Harness) Fig6b() (*Table, error) {
	pts, labels := constraintPoints(h.fourAlgoDefaults())
	return h.acrtSweep("fig6b", "ACRT vs. constraints (four algorithms)", "constraints", FourAlgos, pts, labels)
}

// Fig6c: ACRT for varying fleet size, four algorithms.
func (h *Harness) Fig6c() (*Table, error) {
	pts, labels := h.serverPoints(h.fourAlgoDefaults(), FourAlgoServers)
	return h.acrtSweep("fig6c", "ACRT vs. number of servers (four algorithms)", "servers", FourAlgos, pts, labels)
}

// Fig7a: ART for different numbers of scheduled requests, tree variants
// (capacity 6, 2,000 servers).
func (h *Harness) Fig7a() (*Table, error) {
	return h.artTable("fig7a", "ART vs. scheduled requests (tree variants)", TreeAlgos, h.treeDefaults())
}

// Fig7b: ACRT vs constraints, tree variants.
func (h *Harness) Fig7b() (*Table, error) {
	pts, labels := constraintPoints(h.treeDefaults())
	return h.acrtSweep("fig7b", "ACRT vs. constraints (tree variants)", "constraints", TreeAlgos, pts, labels)
}

// Fig7c: ACRT vs fleet size, tree variants.
func (h *Harness) Fig7c() (*Table, error) {
	pts, labels := h.serverPoints(h.treeDefaults(), TreeServers)
	return h.acrtSweep("fig7c", "ACRT vs. number of servers (tree variants)", "servers", TreeAlgos, pts, labels)
}

// Fig8a: ART for four scheduled requests vs constraints, four algorithms.
func (h *Harness) Fig8a() (*Table, error) {
	pts, labels := constraintPoints(h.fourAlgoDefaults())
	return h.artAtSweep("fig8a", "ART@4 vs. constraints (four algorithms)", "constraints", 4, FourAlgos, pts, labels)
}

// Fig8b: ART for four scheduled requests vs fleet size, four algorithms.
func (h *Harness) Fig8b() (*Table, error) {
	pts, labels := h.serverPoints(h.fourAlgoDefaults(), FourAlgoServers)
	return h.artAtSweep("fig8b", "ART@4 vs. number of servers (four algorithms)", "servers", 4, FourAlgos, pts, labels)
}

// Fig9a: ART for six scheduled requests vs constraints, tree variants.
func (h *Harness) Fig9a() (*Table, error) {
	pts, labels := constraintPoints(h.treeDefaults())
	return h.artAtSweep("fig9a", "ART@6 vs. constraints (tree variants)", "constraints", 6, TreeAlgos, pts, labels)
}

// Fig9b: ART for six scheduled requests vs fleet size, tree variants.
func (h *Harness) Fig9b() (*Table, error) {
	pts, labels := h.serverPoints(h.treeDefaults(), TreeServers)
	return h.artAtSweep("fig9b", "ART@6 vs. number of servers (tree variants)", "servers", 6, TreeAlgos, pts, labels)
}

// Fig9c: ACRT for varying capacity including unlimited, tree variants.
// Only the hotspot variant is expected to complete the largest capacities
// within the tree-size budget ("Only hotspot clustering algorithm can
// complete for unlimited capacity").
func (h *Harness) Fig9c() (*Table, error) {
	base := h.treeDefaults()
	pts := make([]RunParams, len(TreeCapacities))
	labels := make([]string, len(TreeCapacities))
	for i, c := range TreeCapacities {
		p := base
		p.Capacity = c
		pts[i] = p
		if c == 0 {
			labels[i] = "unlim"
		} else {
			labels[i] = fmt.Sprintf("%d", c)
		}
	}
	return h.acrtSweep("fig9c", "ACRT vs. capacity (tree variants)", "capacity", TreeAlgos, pts, labels)
}

// Fig9cStress reproduces the capacity cliff of Fig. 9c under dense demand:
// a tiny fleet faces a one-hour surge of strongly clustered requests with
// loose constraints, so unlimited-capacity vehicles accumulate co-located
// stops and the exact tree variants blow past the node budget ("The ACRT
// breaks off for each algorithm when it can no longer finish", §VI-B) while
// hotspot clustering completes.
func (h *Harness) Fig9cStress() (*Table, error) {
	reqs, err := trace.Generate(h.World.Graph, trace.GenOptions{
		Trips:          600,
		HorizonSeconds: 3600,
		Hotspots:       3,
		HotspotSigma:   250,
		HotspotFrac:    0.95,
		Seed:           99,
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig9cstress",
		Title:   "Surge workload at unlimited capacity (Fig. 9c cliff)",
		Columns: []string{"algorithm", "ACRT", "over-budget trials", "max tree nodes", "matched"},
	}
	for _, a := range TreeAlgos {
		cfg := sim.Config{
			Graph:        h.World.Graph,
			Oracle:       h.World.NewOracle(),
			Servers:      3,
			Capacity:     0, // unlimited
			WaitSeconds:  25 * 60,
			Epsilon:      0.5,
			Algorithm:    a,
			MaxTreeNodes: 30000,
			Seed:         1000,
		}
		s, err := sim.New(cfg)
		if err != nil {
			return nil, err
		}
		m, err := s.Run(reqs)
		if err != nil {
			return nil, fmt.Errorf("exp: fig9cstress %s: %w", a, err)
		}
		if err := s.CheckInvariants(); err != nil {
			return nil, fmt.Errorf("exp: fig9cstress %s: %w", a, err)
		}
		acrt := fmtDur(m.ACRT())
		if m.OverBudget > 0 {
			acrt += " (DNF)"
		}
		t.Rows = append(t.Rows, []string{
			a.String(), acrt,
			fmt.Sprintf("%d", m.OverBudget),
			fmt.Sprintf("%d", m.TreeNodesMax),
			fmt.Sprintf("%d/%d", m.Matched, m.Requests),
		})
	}
	t.Notes = append(t.Notes,
		"3 servers, 600 requests in one hour, 95% from 3 tight hotspots, 25 min / 50% constraints, 30k-node tree budget (3 GB analogue)",
		"paper shape: only hotspot clustering completes capacity > 7 and unlimited")
	return t, nil
}

// Occupancy reproduces the §VI-B closing statistics: peak passengers per
// server at unlimited capacity with 2,000 (scaled) servers.
func (h *Harness) Occupancy() (*Table, error) {
	p := h.treeDefaults()
	p.Capacity = 0
	p.Algo = sim.AlgoTreeHotspot
	m, err := h.Run(p)
	if err != nil {
		return nil, err
	}
	max, mean, top := m.OccupancyStats()
	t := &Table{
		ID:      "occupancy",
		Title:   "Peak occupancy at unlimited capacity (hotspot tree)",
		Columns: []string{"statistic", "measured", "paper"},
		Rows: [][]string{
			{"max passengers in one server", fmt.Sprintf("%d", max), "17"},
			{"mean peak per server", fmt.Sprintf("%.2f", mean), "1.7"},
			{"mean over top-20% filled", fmt.Sprintf("%.2f", top), "3.9"},
		},
		Notes: []string{fmt.Sprintf("servers=%d constraint=%s; paper values are for the full-scale Shanghai run", p.Servers, p.Constraint)},
	}
	return t, nil
}

// Table1 summarizes the four-algorithm comparison at the default parameters
// with the headline ratios the paper reports in §VI-A.
func (h *Harness) Table1() (*Table, error) {
	base := h.fourAlgoDefaults()
	t := &Table{
		ID:      "table1",
		Title:   "Four-algorithm comparison at defaults (Table I parameters)",
		Columns: []string{"algorithm", "ACRT", "vs branchbound", "matched", "rejected"},
	}
	var bbACRT time.Duration
	type rowData struct {
		algo sim.Algorithm
		m    *sim.Metrics
	}
	var rows []rowData
	for _, a := range []sim.Algorithm{sim.AlgoTreeSlack, sim.AlgoBranchBound, sim.AlgoBruteForce, sim.AlgoMIP} {
		p := base
		p.Algo = a
		m, err := h.Run(p)
		if err != nil {
			return nil, err
		}
		if a == sim.AlgoBranchBound {
			bbACRT = m.ACRT()
		}
		rows = append(rows, rowData{a, m})
	}
	for _, r := range rows {
		ratio := "-"
		if bbACRT > 0 && r.m.ACRT() > 0 {
			ratio = fmt.Sprintf("%.2fx", float64(r.m.ACRT())/float64(bbACRT))
		}
		t.Rows = append(t.Rows, []string{
			r.algo.String(), fmtDur(r.m.ACRT()), ratio,
			fmt.Sprintf("%d", r.m.Matched), fmt.Sprintf("%d", r.m.Rejected),
		})
	}
	t.Notes = append(t.Notes,
		"paper shapes: tree ~2x faster than branch-and-bound; brute force ~ branch-and-bound; MIP ~20x slower",
		fmt.Sprintf("defaults: servers=%d capacity=%d constraint=%s", base.Servers, base.Capacity, base.Constraint))
	return t, nil
}

// Table2 summarizes the tree-variant comparison at its defaults with the
// slack-time saving the paper reports in §VI-B.
func (h *Harness) Table2() (*Table, error) {
	base := h.treeDefaults()
	t := &Table{
		ID:      "table2",
		Title:   "Tree-variant comparison at defaults (Table II parameters)",
		Columns: []string{"algorithm", "ACRT", "saving vs basic", "max tree nodes"},
	}
	var basic time.Duration
	for _, a := range TreeAlgos {
		p := base
		p.Algo = a
		m, err := h.Run(p)
		if err != nil {
			return nil, err
		}
		if a == sim.AlgoTreeBasic {
			basic = m.ACRT()
		}
		saving := "-"
		if basic > 0 && a != sim.AlgoTreeBasic {
			saving = fmt.Sprintf("%.0f%%", 100*(1-float64(m.ACRT())/float64(basic)))
		}
		t.Rows = append(t.Rows, []string{a.String(), fmtDur(m.ACRT()), saving, fmt.Sprintf("%d", m.TreeNodesMax)})
	}
	t.Notes = append(t.Notes,
		"paper shapes: slack-time saves ~18% at defaults, up to 32% at the tightest constraints",
		fmt.Sprintf("defaults: servers=%d capacity=%d constraint=%s", base.Servers, base.Capacity, base.Constraint))
	return t, nil
}

// Experiments maps experiment IDs to their functions.
func (h *Harness) Experiments() map[string]func() (*Table, error) {
	return map[string]func() (*Table, error){
		"table1":         h.Table1,
		"table2":         h.Table2,
		"fig6a":          h.Fig6a,
		"fig6b":          h.Fig6b,
		"fig6c":          h.Fig6c,
		"fig7a":          h.Fig7a,
		"fig7b":          h.Fig7b,
		"fig7c":          h.Fig7c,
		"fig8a":          h.Fig8a,
		"fig8b":          h.Fig8b,
		"fig9a":          h.Fig9a,
		"fig9b":          h.Fig9b,
		"fig9c":          h.Fig9c,
		"occupancy":      h.Occupancy,
		"servicerate":    h.ServiceRate,
		"oracleablation": h.OracleAblation,
		"fig9cstress":    h.Fig9cStress,
	}
}

// AllIDs lists experiment IDs in presentation order.
func AllIDs() []string {
	return []string{
		"table1", "table2",
		"fig6a", "fig6b", "fig6c",
		"fig7a", "fig7b", "fig7c",
		"fig8a", "fig8b",
		"fig9a", "fig9b", "fig9c",
		"occupancy", "servicerate", "oracleablation", "fig9cstress",
	}
}

// ServiceRate compares the share of requests each algorithm matches at the
// four-algorithm defaults. All algorithms solve the same matching problem
// exactly, so rates should be close; this experiment corresponds to the
// "maximize requests served" objective the paper lists for deadline DARP
// (§VII) and doubles as an end-to-end consistency check.
func (h *Harness) ServiceRate() (*Table, error) {
	base := h.fourAlgoDefaults()
	t := &Table{
		ID:      "servicerate",
		Title:   "Requests matched at the four-algorithm defaults",
		Columns: []string{"algorithm", "matched", "rejected", "rate", "mean detour"},
	}
	for _, a := range FourAlgos {
		p := base
		p.Algo = a
		m, err := h.Run(p)
		if err != nil {
			return nil, err
		}
		rate := 0.0
		if m.Requests > 0 {
			rate = float64(m.Matched) / float64(m.Requests)
		}
		t.Rows = append(t.Rows, []string{
			a.String(),
			fmt.Sprintf("%d", m.Matched),
			fmt.Sprintf("%d", m.Rejected),
			fmt.Sprintf("%.1f%%", 100*rate),
			fmt.Sprintf("x%.3f", m.MeanDetourFactor()),
		})
	}
	t.Notes = append(t.Notes, "rates should be close across algorithms (same matching problem, greedy assignment history differs); detour factor must stay <= 1+ε")
	return t, nil
}

// OracleAblation compares end-to-end matching cost across shortest-path
// backends at the tree defaults: on-demand Dijkstra, bidirectional
// Dijkstra, A*, ALT, and the paper's design of a precomputed index behind
// the dual LRU caches. It quantifies why §VI invests in hub labels and
// caching: the matcher issues millions of distance queries.
func (h *Harness) OracleAblation() (*Table, error) {
	base := h.treeDefaults()
	base.Algo = sim.AlgoTreeSlack
	reqs := h.World.Requests
	if h.MaxRequests > 0 && len(reqs) > h.MaxRequests {
		reqs = reqs[:h.MaxRequests]
	}
	t := &Table{
		ID:      "oracleablation",
		Title:   "ACRT by shortest-path backend (slack tree at tree defaults)",
		Columns: []string{"oracle", "ACRT", "run wall time"},
	}
	backends := []struct {
		name  string
		build func() sp.Oracle
	}{
		{"dijkstra", func() sp.Oracle { return sp.NewDijkstra(h.World.Graph) }},
		{"bidirectional", func() sp.Oracle { return sp.NewBidirectional(h.World.Graph) }},
		{"astar", func() sp.Oracle { return sp.NewAStar(h.World.Graph) }},
		{"alt", func() sp.Oracle { return sp.NewALT(h.World.Graph, 8) }},
		{"bidirectional+lru", h.World.NewOracle},
	}
	for _, be := range backends {
		cfg := sim.Config{
			Graph:       h.World.Graph,
			Oracle:      be.build(),
			Servers:     base.Servers,
			Capacity:    base.Capacity,
			WaitSeconds: float64(base.Constraint.WaitMinutes) * 60,
			Epsilon:     float64(base.Constraint.EpsPercent) / 100,
			Algorithm:   base.Algo,
			Seed:        1000,
		}
		s, err := sim.New(cfg)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		m, err := s.Run(reqs)
		wall := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("exp: oracle ablation %s: %w", be.name, err)
		}
		if err := s.CheckInvariants(); err != nil {
			return nil, fmt.Errorf("exp: oracle ablation %s: %w", be.name, err)
		}
		t.Rows = append(t.Rows, []string{be.name, fmtDur(m.ACRT()), wall.Round(time.Millisecond).String()})
	}
	t.Notes = append(t.Notes, "the paper's design point is a precomputed distance index behind the dual LRU caches (§VI); plain Dijkstra shows what the caching layer buys")
	return t, nil
}
