package exp

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"
)

// Chart renders one or more named series as an ASCII line chart, giving the
// figures of §VI a visual form in terminal output. X positions are the row
// labels of the originating table; Y values are durations in nanoseconds or
// plain numbers.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	XTicks []string
	Series []Series
	Height int // rows of the plot area (default 12)
}

// Series is one named line of a chart.
type Series struct {
	Name   string
	Values []float64 // NaN = missing point (e.g. DNF)
}

// seriesGlyphs mark the points of up to six series.
var seriesGlyphs = []byte{'*', 'o', '+', 'x', '#', '@'}

// Render draws the chart in plain text.
func (c *Chart) Render(w io.Writer) error {
	height := c.Height
	if height <= 0 {
		height = 12
	}
	if len(c.Series) == 0 || len(c.XTicks) == 0 {
		_, err := fmt.Fprintf(w, "%s: (no data)\n", c.Title)
		return err
	}
	// Value range over all present points.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, v := range s.Values {
			if math.IsNaN(v) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		_, err := fmt.Fprintf(w, "%s: (no data)\n", c.Title)
		return err
	}
	if hi == lo {
		hi = lo + 1
	}

	colWidth := 4
	for _, t := range c.XTicks {
		if len(t)+2 > colWidth {
			colWidth = len(t) + 2
		}
	}
	plotW := colWidth * len(c.XTicks)
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", plotW))
	}
	rowOf := func(v float64) int {
		frac := (v - lo) / (hi - lo)
		r := int(math.Round(float64(height-1) * (1 - frac)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for si, s := range c.Series {
		glyph := seriesGlyphs[si%len(seriesGlyphs)]
		for xi, v := range s.Values {
			if xi >= len(c.XTicks) || math.IsNaN(v) {
				continue
			}
			col := xi*colWidth + colWidth/2
			row := rowOf(v)
			if grid[row][col] == ' ' {
				grid[row][col] = glyph
			} else {
				grid[row][col] = '&' // overlapping series
			}
		}
	}

	if _, err := fmt.Fprintf(w, "%s\n", c.Title); err != nil {
		return err
	}
	yfmt := func(v float64) string {
		if c.YLabel == "time" {
			return time.Duration(v).Round(time.Microsecond).String()
		}
		return fmt.Sprintf("%.3g", v)
	}
	labelW := len(yfmt(hi))
	if l := len(yfmt(lo)); l > labelW {
		labelW = l
	}
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", labelW)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", labelW, yfmt(hi))
		case height - 1:
			label = fmt.Sprintf("%*s", labelW, yfmt(lo))
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(grid[r])); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", plotW)); err != nil {
		return err
	}
	// X tick labels.
	var ticks strings.Builder
	for _, t := range c.XTicks {
		ticks.WriteString(fmt.Sprintf("%-*s", colWidth, t))
	}
	if _, err := fmt.Fprintf(w, "%s  %s (%s)\n", strings.Repeat(" ", labelW), ticks.String(), c.XLabel); err != nil {
		return err
	}
	// Legend.
	var legend []string
	for si, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", seriesGlyphs[si%len(seriesGlyphs)], s.Name))
	}
	_, err := fmt.Fprintf(w, "%s  legend: %s\n\n", strings.Repeat(" ", labelW), strings.Join(legend, "  "))
	return err
}

// ChartFromTable converts a sweep table (first column = x tick, remaining
// columns = series of durations) into a Chart. Cells that fail to parse
// (e.g. "DNF", "n/a") become missing points.
func ChartFromTable(t *Table, xLabel string) *Chart {
	c := &Chart{Title: fmt.Sprintf("%s — %s", t.ID, t.Title), XLabel: xLabel, YLabel: "time"}
	for _, row := range t.Rows {
		if len(row) > 0 {
			c.XTicks = append(c.XTicks, row[0])
		}
	}
	for col := 1; col < len(t.Columns); col++ {
		s := Series{Name: t.Columns[col]}
		for _, row := range t.Rows {
			v := math.NaN()
			if col < len(row) {
				if d, err := time.ParseDuration(row[col]); err == nil {
					v = float64(d)
				}
			}
			s.Values = append(s.Values, v)
		}
		c.Series = append(c.Series, s)
	}
	return c
}
