package roadnet

import (
	"fmt"
	"math"
	"math/rand"
)

// GridOptions configures Grid.
type GridOptions struct {
	Rows, Cols int     // vertex grid dimensions
	Spacing    float64 // nominal block length in meters
	Jitter     float64 // max coordinate perturbation as a fraction of Spacing
	DropFrac   float64 // fraction of edges randomly removed (largest component kept)
	WeightVar  float64 // multiplicative weight noise, e.g. 0.1 for ±10%
	Seed       int64
}

// Grid generates a jittered Manhattan-style grid network. Edge weights are
// the Euclidean length between the (jittered) endpoints scaled by a random
// factor in [1, 1+WeightVar], so Euclidean distance stays an admissible A*
// lower bound. If DropFrac > 0, that fraction of edges is removed and the
// largest connected component is returned, so the result may have slightly
// fewer than Rows*Cols vertices.
func Grid(opt GridOptions) (*Graph, error) {
	if opt.Rows < 2 || opt.Cols < 2 {
		return nil, fmt.Errorf("roadnet: grid needs at least 2x2 vertices, got %dx%d", opt.Rows, opt.Cols)
	}
	if opt.Spacing <= 0 {
		return nil, fmt.Errorf("roadnet: grid spacing must be positive, got %v", opt.Spacing)
	}
	if opt.DropFrac < 0 || opt.DropFrac >= 1 {
		return nil, fmt.Errorf("roadnet: drop fraction must be in [0,1), got %v", opt.DropFrac)
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	n := opt.Rows * opt.Cols
	b := NewBuilder(n)
	id := func(r, c int) VertexID { return VertexID(r*opt.Cols + c) }
	for r := 0; r < opt.Rows; r++ {
		for c := 0; c < opt.Cols; c++ {
			jx := (rng.Float64()*2 - 1) * opt.Jitter * opt.Spacing
			jy := (rng.Float64()*2 - 1) * opt.Jitter * opt.Spacing
			b.SetCoord(id(r, c), float64(c)*opt.Spacing+jx, float64(r)*opt.Spacing+jy)
		}
	}
	addEdge := func(u, v VertexID) {
		if opt.DropFrac > 0 && rng.Float64() < opt.DropFrac {
			return
		}
		dx := b.xs[u] - b.xs[v]
		dy := b.ys[u] - b.ys[v]
		w := math.Hypot(dx, dy) * (1 + rng.Float64()*opt.WeightVar)
		b.AddEdge(u, v, w)
	}
	for r := 0; r < opt.Rows; r++ {
		for c := 0; c < opt.Cols; c++ {
			if c+1 < opt.Cols {
				addEdge(id(r, c), id(r, c+1))
			}
			if r+1 < opt.Rows {
				addEdge(id(r, c), id(r+1, c))
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	if opt.DropFrac > 0 {
		g, _ = g.LargestComponent()
	}
	return g, nil
}

// RingRadialOptions configures RingRadial.
type RingRadialOptions struct {
	Rings     int     // number of concentric rings
	Spokes    int     // number of radial roads
	RingGap   float64 // distance between consecutive rings in meters
	WeightVar float64 // multiplicative weight noise
	Seed      int64
}

// RingRadial generates a ring-and-radial network resembling the elevated
// ring roads of cities like Shanghai: a central vertex, Rings concentric
// rings each crossed by Spokes radial roads, with ring segments connecting
// angular neighbors.
func RingRadial(opt RingRadialOptions) (*Graph, error) {
	if opt.Rings < 1 || opt.Spokes < 3 {
		return nil, fmt.Errorf("roadnet: ring-radial needs >=1 ring and >=3 spokes, got %d/%d", opt.Rings, opt.Spokes)
	}
	if opt.RingGap <= 0 {
		return nil, fmt.Errorf("roadnet: ring gap must be positive, got %v", opt.RingGap)
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	n := 1 + opt.Rings*opt.Spokes
	b := NewBuilder(n)
	b.SetCoord(0, 0, 0)
	id := func(ring, spoke int) VertexID { return VertexID(1 + (ring-1)*opt.Spokes + spoke) }
	for ring := 1; ring <= opt.Rings; ring++ {
		radius := float64(ring) * opt.RingGap
		for s := 0; s < opt.Spokes; s++ {
			theta := 2 * math.Pi * float64(s) / float64(opt.Spokes)
			b.SetCoord(id(ring, s), radius*math.Cos(theta), radius*math.Sin(theta))
		}
	}
	weight := func(u, v VertexID) float64 {
		dx := b.xs[u] - b.xs[v]
		dy := b.ys[u] - b.ys[v]
		return math.Hypot(dx, dy) * (1 + rng.Float64()*opt.WeightVar)
	}
	for s := 0; s < opt.Spokes; s++ {
		b.AddEdge(0, id(1, s), weight(0, id(1, s)))
		for ring := 1; ring < opt.Rings; ring++ {
			b.AddEdge(id(ring, s), id(ring+1, s), weight(id(ring, s), id(ring+1, s)))
		}
	}
	for ring := 1; ring <= opt.Rings; ring++ {
		for s := 0; s < opt.Spokes; s++ {
			next := (s + 1) % opt.Spokes
			b.AddEdge(id(ring, s), id(ring, next), weight(id(ring, s), id(ring, next)))
		}
	}
	return b.Build()
}

// CityOptions configures SyntheticCity.
type CityOptions struct {
	// Scale sizes the network relative to the paper's Shanghai graph
	// (122,319 vertices, 188,426 edges). Scale 1.0 targets those counts;
	// Scale 0.01 produces a ~1,200-vertex network for tests.
	Scale float64
	Seed  int64
}

// ShanghaiVertices and ShanghaiEdges are the sizes of the road network used
// in the paper's evaluation (§VI).
const (
	ShanghaiVertices = 122319
	ShanghaiEdges    = 188426
)

// SyntheticCity generates the stand-in for the Shanghai road network: a
// jittered grid with ~3% of edges removed, sized so that at Scale 1.0 the
// vertex and edge counts approximate the paper's 122,319 / 188,426. The
// spacing is chosen so the city diameter is ~50 km at full scale, matching
// a 10-minute (8,400 m) waiting-time radius covering a realistic fraction
// of the city.
func SyntheticCity(opt CityOptions) (*Graph, error) {
	if opt.Scale <= 0 {
		return nil, fmt.Errorf("roadnet: city scale must be positive, got %v", opt.Scale)
	}
	target := float64(ShanghaiVertices) * opt.Scale
	side := int(math.Round(math.Sqrt(target)))
	if side < 2 {
		side = 2
	}
	// A side x side grid has 2*side*(side-1) edges ~ 2*V; dropping ~22%
	// of edges yields E/V ~ 1.54, matching Shanghai's 188,426/122,319.
	g, err := Grid(GridOptions{
		Rows:      side,
		Cols:      side,
		Spacing:   50000.0 / float64(int(math.Sqrt(float64(ShanghaiVertices)))),
		Jitter:    0.25,
		DropFrac:  0.22,
		WeightVar: 0.15,
		Seed:      opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	return g, nil
}
