package roadnet

import "math"

// VertexLocator answers nearest-vertex queries over a fixed Graph using a
// uniform cell grid. It is the snapping step of the paper's simulation
// framework ("starting and destination trip coordinates are pre-mapped to
// the closest vertex in the graph", §VI).
//
// VertexLocator is immutable after construction and safe for concurrent use.
type VertexLocator struct {
	g          *Graph
	minX, minY float64
	cellSize   float64
	cols, rows int
	cells      [][]VertexID
}

// NewVertexLocator builds a locator with approximately targetPerCell
// vertices per grid cell (clamped to at least 1).
func NewVertexLocator(g *Graph, targetPerCell int) *VertexLocator {
	if targetPerCell < 1 {
		targetPerCell = 1
	}
	minX, minY, maxX, maxY := g.Bounds()
	w := maxX - minX
	h := maxY - minY
	if w <= 0 {
		w = 1
	}
	if h <= 0 {
		h = 1
	}
	nCells := g.N()/targetPerCell + 1
	// Choose a roughly square cell layout covering the bounding box.
	aspect := w / h
	cols := int(math.Max(1, math.Round(math.Sqrt(float64(nCells)*aspect))))
	rows := (nCells + cols - 1) / cols
	if rows < 1 {
		rows = 1
	}
	cellSize := math.Max(w/float64(cols), h/float64(rows))
	cols = int(w/cellSize) + 1
	rows = int(h/cellSize) + 1

	l := &VertexLocator{
		g:        g,
		minX:     minX,
		minY:     minY,
		cellSize: cellSize,
		cols:     cols,
		rows:     rows,
		cells:    make([][]VertexID, cols*rows),
	}
	for v := 0; v < g.N(); v++ {
		c := l.cellOf(g.xs[v], g.ys[v])
		l.cells[c] = append(l.cells[c], VertexID(v))
	}
	return l
}

func (l *VertexLocator) cellOf(x, y float64) int {
	cx := int((x - l.minX) / l.cellSize)
	cy := int((y - l.minY) / l.cellSize)
	if cx < 0 {
		cx = 0
	}
	if cx >= l.cols {
		cx = l.cols - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= l.rows {
		cy = l.rows - 1
	}
	return cy*l.cols + cx
}

// Nearest returns the vertex closest to (x, y) in Euclidean distance.
// It panics only if the underlying graph has no vertices.
func (l *VertexLocator) Nearest(x, y float64) VertexID {
	if l.g.N() == 0 {
		panic("roadnet: Nearest on empty graph")
	}
	// Clamp the starting cell into the grid so queries far outside the
	// bounding box still reach populated cells; the ring lower bound
	// remains valid because every ring-r cell is at least (r-1) cell
	// widths from the query point.
	cx := int((x - l.minX) / l.cellSize)
	cy := int((y - l.minY) / l.cellSize)
	if cx < 0 {
		cx = 0
	}
	if cx >= l.cols {
		cx = l.cols - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= l.rows {
		cy = l.rows - 1
	}

	best := VertexID(-1)
	bestD := math.Inf(1)
	// Expand rings of cells until the best candidate cannot be beaten by
	// anything in an unexplored ring.
	maxRing := l.cols
	if l.rows > maxRing {
		maxRing = l.rows
	}
	for ring := 0; ring <= maxRing; ring++ {
		if best >= 0 {
			// Any vertex in a cell at Chebyshev ring r is at least
			// (r-1)*cellSize away from the query point.
			if float64(ring-1)*l.cellSize > bestD {
				break
			}
		}
		l.scanRing(cx, cy, ring, x, y, &best, &bestD)
	}
	return best
}

func (l *VertexLocator) scanRing(cx, cy, ring int, x, y float64, best *VertexID, bestD *float64) {
	scan := func(gx, gy int) {
		if gx < 0 || gx >= l.cols || gy < 0 || gy >= l.rows {
			return
		}
		for _, v := range l.cells[gy*l.cols+gx] {
			d := math.Hypot(l.g.xs[v]-x, l.g.ys[v]-y)
			if d < *bestD {
				*bestD = d
				*best = v
			}
		}
	}
	if ring == 0 {
		scan(cx, cy)
		return
	}
	for dx := -ring; dx <= ring; dx++ {
		scan(cx+dx, cy-ring)
		scan(cx+dx, cy+ring)
	}
	for dy := -ring + 1; dy <= ring-1; dy++ {
		scan(cx-ring, cy+dy)
		scan(cx+ring, cy+dy)
	}
}
