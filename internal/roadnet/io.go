package roadnet

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary graph format:
//
//	magic   "RNG1" (4 bytes)
//	n       uint32  vertex count
//	m       uint32  undirected edge count
//	coords  n x (float64 x, float64 y)
//	edges   m x (uint32 u, uint32 v, float64 w)
//
// All integers little-endian. The format stores each undirected edge once.
const graphMagic = "RNG1"

// WriteTo serializes the graph in the RNG1 binary format.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	put := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		written += int64(binary.Size(v))
		return nil
	}
	if _, err := bw.WriteString(graphMagic); err != nil {
		return written, err
	}
	written += int64(len(graphMagic))
	if err := put(uint32(g.N())); err != nil {
		return written, err
	}
	if err := put(uint32(g.M())); err != nil {
		return written, err
	}
	for i := 0; i < g.N(); i++ {
		if err := put(g.xs[i]); err != nil {
			return written, err
		}
		if err := put(g.ys[i]); err != nil {
			return written, err
		}
	}
	for u := 0; u < g.N(); u++ {
		ts, ws := g.Neighbors(VertexID(u))
		for i, t := range ts {
			if VertexID(u) < t { // each undirected edge once
				if err := put(uint32(u)); err != nil {
					return written, err
				}
				if err := put(uint32(t)); err != nil {
					return written, err
				}
				if err := put(ws[i]); err != nil {
					return written, err
				}
			}
		}
	}
	return written, bw.Flush()
}

// ReadGraph deserializes a graph written by WriteTo.
func ReadGraph(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(graphMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("roadnet: reading magic: %w", err)
	}
	if string(magic) != graphMagic {
		return nil, fmt.Errorf("roadnet: bad magic %q, want %q", magic, graphMagic)
	}
	var n, m uint32
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("roadnet: reading vertex count: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, fmt.Errorf("roadnet: reading edge count: %w", err)
	}
	const maxReasonable = 1 << 28
	if n > maxReasonable || m > maxReasonable {
		return nil, fmt.Errorf("roadnet: implausible sizes n=%d m=%d", n, m)
	}
	b := NewBuilder(int(n))
	for i := uint32(0); i < n; i++ {
		var x, y float64
		if err := binary.Read(br, binary.LittleEndian, &x); err != nil {
			return nil, fmt.Errorf("roadnet: reading coord %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &y); err != nil {
			return nil, fmt.Errorf("roadnet: reading coord %d: %w", i, err)
		}
		if math.IsNaN(x) || math.IsNaN(y) {
			return nil, fmt.Errorf("roadnet: NaN coordinate at vertex %d", i)
		}
		b.SetCoord(VertexID(i), x, y)
	}
	for i := uint32(0); i < m; i++ {
		var u, v uint32
		var w float64
		if err := binary.Read(br, binary.LittleEndian, &u); err != nil {
			return nil, fmt.Errorf("roadnet: reading edge %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
			return nil, fmt.Errorf("roadnet: reading edge %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &w); err != nil {
			return nil, fmt.Errorf("roadnet: reading edge %d: %w", i, err)
		}
		b.AddEdge(VertexID(u), VertexID(v), w)
	}
	return b.Build()
}
