// Package roadnet provides the road-network substrate for the ridesharing
// system: a compact undirected weighted graph in CSR (compressed sparse row)
// form, synthetic network generators that stand in for the Shanghai road
// network used in the paper, nearest-vertex snapping, and serialization.
//
// Edge weights are travel costs in meters. At the paper's constant speed of
// 14 m/s, distance and time measures are interchangeable (paper §I-A); the
// rest of the system stores costs in meters and converts for reporting.
package roadnet

import (
	"fmt"
	"math"
	"sort"
)

// VertexID identifies a vertex of a Graph. Valid IDs are in [0, Graph.N()).
type VertexID = int32

// Speed is the assumed constant driving speed in meters/second
// (paper §VI: "approximately 48 kilometers/hour").
const Speed = 14.0

// Graph is an undirected weighted road network stored in CSR form.
// The zero value is an empty graph; use a Builder to construct one.
//
// Graph is immutable after construction and safe for concurrent use.
type Graph struct {
	xs, ys  []float64 // vertex coordinates in meters
	offsets []int32   // CSR row offsets, len N+1
	targets []VertexID
	weights []float64 // cost in meters, parallel to targets
	m       int       // number of undirected edges
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.xs) }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// Coord returns the planar coordinates of v in meters.
func (g *Graph) Coord(v VertexID) (x, y float64) { return g.xs[v], g.ys[v] }

// Degree returns the number of edges incident to v.
func (g *Graph) Degree(v VertexID) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the adjacency of v as parallel slices of target vertices
// and edge weights. The returned slices alias internal storage and must not
// be modified.
func (g *Graph) Neighbors(v VertexID) ([]VertexID, []float64) {
	lo, hi := g.offsets[v], g.offsets[v+1]
	return g.targets[lo:hi], g.weights[lo:hi]
}

// EdgeWeight returns the weight of edge (u, v) and whether the edge exists.
func (g *Graph) EdgeWeight(u, v VertexID) (float64, bool) {
	ts, ws := g.Neighbors(u)
	for i, t := range ts {
		if t == v {
			return ws[i], true
		}
	}
	return 0, false
}

// EuclideanDist returns the straight-line distance between two vertices in
// meters. It is a lower bound on network distance for generator-produced
// graphs whose weights are at least the Euclidean edge length, which makes
// it admissible as an A* heuristic.
func (g *Graph) EuclideanDist(u, v VertexID) float64 {
	dx := g.xs[u] - g.xs[v]
	dy := g.ys[u] - g.ys[v]
	return math.Hypot(dx, dy)
}

// Bounds returns the bounding box of all vertex coordinates.
// It returns zeros for an empty graph.
func (g *Graph) Bounds() (minX, minY, maxX, maxY float64) {
	if g.N() == 0 {
		return 0, 0, 0, 0
	}
	minX, maxX = g.xs[0], g.xs[0]
	minY, maxY = g.ys[0], g.ys[0]
	for i := 1; i < len(g.xs); i++ {
		minX = math.Min(minX, g.xs[i])
		maxX = math.Max(maxX, g.xs[i])
		minY = math.Min(minY, g.ys[i])
		maxY = math.Max(maxY, g.ys[i])
	}
	return minX, minY, maxX, maxY
}

// Builder accumulates vertices and edges and produces an immutable Graph.
type Builder struct {
	xs, ys []float64
	us, vs []VertexID
	ws     []float64
}

// NewBuilder returns a Builder pre-sized for n vertices, all at the origin.
func NewBuilder(n int) *Builder {
	return &Builder{
		xs: make([]float64, n),
		ys: make([]float64, n),
	}
}

// SetCoord sets the planar coordinates of vertex v in meters.
func (b *Builder) SetCoord(v VertexID, x, y float64) {
	b.xs[v] = x
	b.ys[v] = y
}

// AddVertex appends a new vertex and returns its ID.
func (b *Builder) AddVertex(x, y float64) VertexID {
	b.xs = append(b.xs, x)
	b.ys = append(b.ys, y)
	return VertexID(len(b.xs) - 1)
}

// AddEdge records an undirected edge (u, v) with weight w meters.
// Self-loops and non-positive weights are rejected at Build time.
func (b *Builder) AddEdge(u, v VertexID, w float64) {
	b.us = append(b.us, u)
	b.vs = append(b.vs, v)
	b.ws = append(b.ws, w)
}

// NumVertices returns the number of vertices added so far.
func (b *Builder) NumVertices() int { return len(b.xs) }

// Build validates the accumulated vertices and edges and returns the Graph.
// Duplicate edges are collapsed keeping the minimum weight.
func (b *Builder) Build() (*Graph, error) {
	n := len(b.xs)
	for i := range b.us {
		u, v, w := b.us[i], b.vs[i], b.ws[i]
		if u < 0 || int(u) >= n || v < 0 || int(v) >= n {
			return nil, fmt.Errorf("roadnet: edge %d: vertex out of range: (%d, %d) with n=%d", i, u, v, n)
		}
		if u == v {
			return nil, fmt.Errorf("roadnet: edge %d: self-loop at vertex %d", i, u)
		}
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("roadnet: edge %d (%d,%d): invalid weight %v", i, u, v, w)
		}
	}

	// Deduplicate, keeping minimum weight per unordered pair.
	type key struct{ a, b VertexID }
	dedup := make(map[key]float64, len(b.us))
	for i := range b.us {
		u, v := b.us[i], b.vs[i]
		if u > v {
			u, v = v, u
		}
		k := key{u, v}
		if old, ok := dedup[k]; !ok || b.ws[i] < old {
			dedup[k] = b.ws[i]
		}
	}

	deg := make([]int32, n+1)
	for k := range dedup {
		deg[k.a+1]++
		deg[k.b+1]++
	}
	offsets := make([]int32, n+1)
	for i := 0; i < n; i++ {
		offsets[i+1] = offsets[i] + deg[i+1]
	}
	targets := make([]VertexID, offsets[n])
	weights := make([]float64, offsets[n])
	cursor := make([]int32, n)
	copy(cursor, offsets[:n])
	for k, w := range dedup {
		targets[cursor[k.a]] = k.b
		weights[cursor[k.a]] = w
		cursor[k.a]++
		targets[cursor[k.b]] = k.a
		weights[cursor[k.b]] = w
		cursor[k.b]++
	}

	g := &Graph{
		xs:      append([]float64(nil), b.xs...),
		ys:      append([]float64(nil), b.ys...),
		offsets: offsets,
		targets: targets,
		weights: weights,
		m:       len(dedup),
	}
	g.sortAdjacency()
	return g, nil
}

// sortAdjacency orders each vertex's neighbor list by target ID so that
// adjacency scans are deterministic and cache-friendly.
func (g *Graph) sortAdjacency() {
	for v := 0; v < g.N(); v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		ts := g.targets[lo:hi]
		ws := g.weights[lo:hi]
		sort.Sort(&adjSorter{ts, ws})
	}
}

type adjSorter struct {
	ts []VertexID
	ws []float64
}

func (s *adjSorter) Len() int           { return len(s.ts) }
func (s *adjSorter) Less(i, j int) bool { return s.ts[i] < s.ts[j] }
func (s *adjSorter) Swap(i, j int) {
	s.ts[i], s.ts[j] = s.ts[j], s.ts[i]
	s.ws[i], s.ws[j] = s.ws[j], s.ws[i]
}

// ConnectedComponents returns a component label per vertex and the number of
// components. Labels are in [0, count) and assigned in order of discovery.
func (g *Graph) ConnectedComponents() (labels []int32, count int) {
	n := g.N()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	var queue []VertexID
	for start := 0; start < n; start++ {
		if labels[start] >= 0 {
			continue
		}
		labels[start] = int32(count)
		queue = append(queue[:0], VertexID(start))
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			ts, _ := g.Neighbors(v)
			for _, t := range ts {
				if labels[t] < 0 {
					labels[t] = int32(count)
					queue = append(queue, t)
				}
			}
		}
		count++
	}
	return labels, count
}

// LargestComponent returns the subgraph induced by the largest connected
// component, together with a mapping from new vertex IDs to the originals.
// If the graph is already connected it is returned unchanged with an
// identity mapping.
func (g *Graph) LargestComponent() (*Graph, []VertexID) {
	labels, count := g.ConnectedComponents()
	if count <= 1 {
		idmap := make([]VertexID, g.N())
		for i := range idmap {
			idmap[i] = VertexID(i)
		}
		return g, idmap
	}
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	best := 0
	for c, s := range sizes {
		if s > sizes[best] {
			best = c
		}
	}
	old2new := make([]VertexID, g.N())
	var new2old []VertexID
	for v := range old2new {
		if labels[v] == int32(best) {
			old2new[v] = VertexID(len(new2old))
			new2old = append(new2old, VertexID(v))
		} else {
			old2new[v] = -1
		}
	}
	b := NewBuilder(len(new2old))
	for nv, ov := range new2old {
		b.SetCoord(VertexID(nv), g.xs[ov], g.ys[ov])
	}
	for ov, nv := range old2new {
		if nv < 0 {
			continue
		}
		ts, ws := g.Neighbors(VertexID(ov))
		for i, t := range ts {
			if nt := old2new[t]; nt >= 0 && nv < nt {
				b.AddEdge(nv, nt, ws[i])
			}
		}
	}
	sub, err := b.Build()
	if err != nil {
		// The induced subgraph of a valid graph is always valid.
		panic("roadnet: internal error building component: " + err.Error())
	}
	return sub, new2old
}
