package roadnet

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderValidation(t *testing.T) {
	cases := []struct {
		name string
		edit func(*Builder)
	}{
		{"self-loop", func(b *Builder) { b.AddEdge(1, 1, 5) }},
		{"out-of-range", func(b *Builder) { b.AddEdge(0, 99, 5) }},
		{"negative-weight", func(b *Builder) { b.AddEdge(0, 1, -2) }},
		{"zero-weight", func(b *Builder) { b.AddEdge(0, 1, 0) }},
		{"nan-weight", func(b *Builder) { b.AddEdge(0, 1, math.NaN()) }},
		{"inf-weight", func(b *Builder) { b.AddEdge(0, 1, math.Inf(1)) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder(3)
			tc.edit(b)
			if _, err := b.Build(); err == nil {
				t.Fatal("expected build error")
			}
		})
	}
}

func TestBuilderDeduplicatesEdges(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1, 5)
	b.AddEdge(1, 0, 3) // duplicate, lower weight wins
	b.AddEdge(0, 1, 7)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Fatalf("M=%d, want 1", g.M())
	}
	if w, ok := g.EdgeWeight(0, 1); !ok || w != 3 {
		t.Fatalf("EdgeWeight=%v,%v want 3,true", w, ok)
	}
	if w, ok := g.EdgeWeight(1, 0); !ok || w != 3 {
		t.Fatalf("reverse EdgeWeight=%v,%v want 3,true", w, ok)
	}
}

func TestGridShape(t *testing.T) {
	g, err := Grid(GridOptions{Rows: 10, Cols: 15, Spacing: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 150 {
		t.Fatalf("N=%d, want 150", g.N())
	}
	wantEdges := 10*14 + 15*9 // horizontal + vertical
	if g.M() != wantEdges {
		t.Fatalf("M=%d, want %d", g.M(), wantEdges)
	}
	// Degrees are between 2 (corners) and 4.
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(VertexID(v)); d < 2 || d > 4 {
			t.Fatalf("vertex %d degree %d", v, d)
		}
	}
}

func TestGridWeightsAdmissible(t *testing.T) {
	g, err := Grid(GridOptions{Rows: 8, Cols: 8, Spacing: 250, Jitter: 0.3, WeightVar: 0.25, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		ts, ws := g.Neighbors(VertexID(v))
		for i, u := range ts {
			if ws[i] < g.EuclideanDist(VertexID(v), u)-1e-9 {
				t.Fatalf("edge (%d,%d) weight %.2f below Euclidean %.2f — A* heuristic would be inadmissible",
					v, u, ws[i], g.EuclideanDist(VertexID(v), u))
			}
		}
	}
}

func TestGridDropKeepsConnected(t *testing.T) {
	g, err := Grid(GridOptions{Rows: 20, Cols: 20, Spacing: 100, DropFrac: 0.25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, count := g.ConnectedComponents(); count != 1 {
		t.Fatalf("largest-component extraction left %d components", count)
	}
	if g.N() < 200 {
		t.Fatalf("component too small: %d of 400", g.N())
	}
}

func TestRingRadial(t *testing.T) {
	g, err := RingRadial(RingRadialOptions{Rings: 4, Spokes: 12, RingGap: 800, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 1+4*12 {
		t.Fatalf("N=%d", g.N())
	}
	if _, count := g.ConnectedComponents(); count != 1 {
		t.Fatalf("ring-radial disconnected: %d components", count)
	}
	// Center connects to all first-ring vertices.
	if d := g.Degree(0); d != 12 {
		t.Fatalf("center degree %d, want 12", d)
	}
}

func TestSyntheticCityScale(t *testing.T) {
	g, err := SyntheticCity(CityOptions{Scale: 0.01, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// ~1% of Shanghai: about 1223 vertices before drop; the largest
	// component keeps most of them.
	if g.N() < 900 || g.N() > 1400 {
		t.Fatalf("N=%d, want ~1100-1300", g.N())
	}
	ratio := float64(g.M()) / float64(g.N())
	// Shanghai's E/V is 188426/122319 = 1.54.
	if ratio < 1.2 || ratio > 1.8 {
		t.Fatalf("edge/vertex ratio %.2f, want ~1.5", ratio)
	}
	if _, count := g.ConnectedComponents(); count != 1 {
		t.Fatal("synthetic city disconnected")
	}
}

func TestLargestComponentMapping(t *testing.T) {
	b := NewBuilder(5)
	for i := 0; i < 5; i++ {
		b.SetCoord(VertexID(i), float64(i), 0)
	}
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(3, 4, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sub, idmap := g.LargestComponent()
	if sub.N() != 3 {
		t.Fatalf("component N=%d, want 3", sub.N())
	}
	for nv, ov := range idmap {
		nx, ny := sub.Coord(VertexID(nv))
		ox, oy := g.Coord(ov)
		if nx != ox || ny != oy {
			t.Fatalf("coordinate mismatch for mapping %d->%d", nv, ov)
		}
	}
}

func TestGraphRoundTrip(t *testing.T) {
	g, err := Grid(GridOptions{Rows: 9, Cols: 7, Spacing: 120, Jitter: 0.2, WeightVar: 0.1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip size mismatch: %d/%d vs %d/%d", g2.N(), g2.M(), g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		x1, y1 := g.Coord(VertexID(v))
		x2, y2 := g2.Coord(VertexID(v))
		if x1 != x2 || y1 != y2 {
			t.Fatalf("coord mismatch at %d", v)
		}
		t1, w1 := g.Neighbors(VertexID(v))
		t2, w2 := g2.Neighbors(VertexID(v))
		if len(t1) != len(t2) {
			t.Fatalf("degree mismatch at %d", v)
		}
		for i := range t1 {
			if t1[i] != t2[i] || w1[i] != w2[i] {
				t.Fatalf("adjacency mismatch at %d", v)
			}
		}
	}
}

func TestReadGraphRejectsGarbage(t *testing.T) {
	if _, err := ReadGraph(bytes.NewReader([]byte("not a graph"))); err == nil {
		t.Fatal("expected error for bad magic")
	}
	if _, err := ReadGraph(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected error for empty input")
	}
}

// TestNearestMatchesBruteForce is a property test for the vertex locator.
func TestNearestMatchesBruteForce(t *testing.T) {
	g, err := Grid(GridOptions{Rows: 10, Cols: 10, Spacing: 200, Jitter: 0.4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	loc := NewVertexLocator(g, 4)
	minX, minY, maxX, maxY := g.Bounds()
	rng := rand.New(rand.NewSource(8))
	f := func(a, b uint16) bool {
		x := minX + (maxX-minX)*(float64(a)/65535*1.2-0.1) // include out-of-bounds queries
		y := minY + (maxY-minY)*(float64(b)/65535*1.2-0.1)
		got := loc.Nearest(x, y)
		bestD := math.Inf(1)
		best := VertexID(-1)
		for v := 0; v < g.N(); v++ {
			vx, vy := g.Coord(VertexID(v))
			if d := math.Hypot(vx-x, vy-y); d < bestD {
				bestD = d
				best = VertexID(v)
			}
		}
		gx, gy := g.Coord(got)
		return math.Abs(math.Hypot(gx-x, gy-y)-bestD) < 1e-9 || got == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundsEmptyAndSingle(t *testing.T) {
	empty, err := NewBuilder(0).Build()
	if err != nil {
		t.Fatal(err)
	}
	if x0, y0, x1, y1 := empty.Bounds(); x0 != 0 || y0 != 0 || x1 != 0 || y1 != 0 {
		t.Fatal("empty bounds not zero")
	}
	b := NewBuilder(1)
	b.SetCoord(0, 5, -3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if x0, y0, x1, y1 := g.Bounds(); x0 != 5 || y0 != -3 || x1 != 5 || y1 != -3 {
		t.Fatal("single-vertex bounds wrong")
	}
}
