package sp

import (
	"fmt"
	"sync"

	"repro/internal/roadnet"
)

// Matrix is an all-pairs shortest-path oracle backed by a dense distance
// matrix computed with Floyd–Warshall. It is O(n³) to build and O(n²)
// memory, so it is intended for tests (cross-validating the other engines)
// and for tiny scheduling instances, not for city-scale graphs.
//
// Matrix is a SharedOracle: Dist reads the immutable matrix and is safe for
// unsynchronized concurrent use; Path serializes on an internal mutex
// around the shared Dijkstra engine.
type Matrix struct {
	g    *roadnet.Graph
	n    int
	dist []float64 // n*n row-major

	pathMu sync.Mutex
	dij    *Dijkstra // for Path reconstruction; guarded by pathMu
}

// MaxMatrixVertices caps the graph size accepted by NewMatrix to avoid
// accidental multi-gigabyte allocations.
const MaxMatrixVertices = 4096

// NewMatrix computes the all-pairs distance matrix of g.
func NewMatrix(g *roadnet.Graph) (*Matrix, error) {
	n := g.N()
	if n > MaxMatrixVertices {
		return nil, fmt.Errorf("sp: matrix oracle limited to %d vertices, got %d", MaxMatrixVertices, n)
	}
	m := &Matrix{g: g, n: n, dist: make([]float64, n*n), dij: NewDijkstra(g)}
	for i := range m.dist {
		m.dist[i] = Inf
	}
	for v := 0; v < n; v++ {
		m.dist[v*n+v] = 0
		ts, ws := g.Neighbors(roadnet.VertexID(v))
		for i, t := range ts {
			if ws[i] < m.dist[v*n+int(t)] {
				m.dist[v*n+int(t)] = ws[i]
			}
		}
	}
	for k := 0; k < n; k++ {
		rowK := m.dist[k*n : k*n+n]
		for i := 0; i < n; i++ {
			dik := m.dist[i*n+k]
			if dik == Inf {
				continue
			}
			rowI := m.dist[i*n : i*n+n]
			for j := 0; j < n; j++ {
				if d := dik + rowK[j]; d < rowI[j] {
					rowI[j] = d
				}
			}
		}
	}
	return m, nil
}

// Dist returns the precomputed shortest-path cost from u to v.
func (m *Matrix) Dist(u, v roadnet.VertexID) float64 {
	return m.dist[int(u)*m.n+int(v)]
}

// Path returns a shortest path from u to v via an on-demand Dijkstra.
// Concurrent calls serialize on an internal mutex.
func (m *Matrix) Path(u, v roadnet.VertexID) []roadnet.VertexID {
	m.pathMu.Lock()
	defer m.pathMu.Unlock()
	return m.dij.Path(u, v)
}

// ConcurrencySafe marks Matrix as a SharedOracle.
func (m *Matrix) ConcurrencySafe() {}
