// Package sp provides shortest-path engines over a roadnet.Graph: plain
// Dijkstra, bidirectional Dijkstra, A*, an all-pairs matrix (for testing),
// and a hub-labeling index (pruned landmark labeling), which is the
// "state-of-art hub-labeling algorithm" the paper implements for its
// evaluation (§VI).
//
// All engines implement the Oracle interface consumed by the scheduling
// algorithms in internal/core. Distances are in meters, matching
// roadnet.Graph edge weights; unreachable pairs report +Inf.
package sp

import (
	"math"

	"repro/internal/roadnet"
)

// Oracle answers shortest-path queries on a road network.
//
// Thread-safety taxonomy. Every oracle in the system falls into one of two
// documented classes:
//
//   - Per-goroutine engines (Dijkstra, Bidirectional, AStar, ALT,
//     ArcFlags, cache.Oracle): NOT safe for concurrent use. They reuse
//     internal search buffers across queries, which is what makes the
//     simulator's millions of queries cheap. Every concurrent user needs
//     its own instance.
//   - SharedOracle implementations (Matrix, HubLabels, cache.Shared):
//     safe for concurrent use by any number of goroutines; see
//     SharedOracle for the exact guarantee.
//
// A WorkerSource bridges the two classes: it is shared state that hands
// out per-goroutine facades, so a worker pool can amortize one cache
// across all workers while keeping each worker's hot path single-threaded.
//
// The taxonomy is machine-enforced: the oracletaxonomy pass in cmd/vetkit
// flags per-goroutine oracles crossing a goroutine boundary, factories
// that hand out one captured instance, and dispatch fields typed as plain
// Oracle. See the "Invariants" table in the README for the full rule set
// and the //vetkit:allow escape hatch.
type Oracle interface {
	// Dist returns the shortest-path cost from u to v in meters,
	// or +Inf if v is unreachable from u.
	Dist(u, v roadnet.VertexID) float64
	// Path returns the vertex sequence of a shortest path from u to v
	// (inclusive of both endpoints), or nil if unreachable.
	// Path(u, u) returns [u].
	Path(u, v roadnet.VertexID) []roadnet.VertexID
}

// SharedOracle is an Oracle that is additionally safe for concurrent use:
// Dist and Path may be called from any number of goroutines with no
// external locking. Dist must be wait-free or near it (it is the hot
// query); Path may serialize internally, since path reconstruction is
// orders of magnitude rarer (the paper caches ten million distances but
// only ten thousand paths, §VI).
//
// Implementations: Matrix and HubLabels (immutable distance structures,
// mutex-serialized path engines) and cache.Shared (striped concurrent
// distance cache over pooled engines).
type SharedOracle interface {
	Oracle
	// ConcurrencySafe is a compile-time marker carrying the guarantee
	// above; it does nothing at runtime.
	ConcurrencySafe()
}

// WorkerSource is implemented by oracle stacks that hand out per-goroutine
// Oracle facades over shared concurrency-safe state (see cache.Shared).
// Each facade is itself a per-goroutine engine — its hot path touches
// worker-private buffers and caches — but all facades consult the same
// shared distance cache, so work done by one worker is visible to all.
// The sharded dispatch engine builds one facade per shard from a
// WorkerSource instead of requiring a factory of cold private oracles.
type WorkerSource interface {
	// NewWorkerOracle returns a facade for the exclusive use of one
	// goroutine. Facades may be created concurrently.
	NewWorkerOracle() Oracle
}

// Inf is the distance reported for unreachable vertex pairs.
var Inf = math.Inf(1)

// pathCost sums the edge weights along a vertex sequence; used by tests and
// by schedule validation helpers.
func pathCost(g *roadnet.Graph, path []roadnet.VertexID) float64 {
	total := 0.0
	for i := 0; i+1 < len(path); i++ {
		w, ok := g.EdgeWeight(path[i], path[i+1])
		if !ok {
			return Inf
		}
		total += w
	}
	return total
}
