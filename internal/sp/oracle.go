// Package sp provides shortest-path engines over a roadnet.Graph: plain
// Dijkstra, bidirectional Dijkstra, A*, an all-pairs matrix (for testing),
// and a hub-labeling index (pruned landmark labeling), which is the
// "state-of-art hub-labeling algorithm" the paper implements for its
// evaluation (§VI).
//
// All engines implement the Oracle interface consumed by the scheduling
// algorithms in internal/core. Distances are in meters, matching
// roadnet.Graph edge weights; unreachable pairs report +Inf.
package sp

import (
	"math"

	"repro/internal/roadnet"
)

// Oracle answers shortest-path queries on a road network.
//
// Implementations in this package are NOT safe for concurrent use unless
// stated otherwise: they reuse internal search buffers across queries, which
// is what makes the simulator's millions of queries cheap. Wrap with one
// oracle per goroutine if needed.
type Oracle interface {
	// Dist returns the shortest-path cost from u to v in meters,
	// or +Inf if v is unreachable from u.
	Dist(u, v roadnet.VertexID) float64
	// Path returns the vertex sequence of a shortest path from u to v
	// (inclusive of both endpoints), or nil if unreachable.
	// Path(u, u) returns [u].
	Path(u, v roadnet.VertexID) []roadnet.VertexID
}

// Inf is the distance reported for unreachable vertex pairs.
var Inf = math.Inf(1)

// pathCost sums the edge weights along a vertex sequence; used by tests and
// by schedule validation helpers.
func pathCost(g *roadnet.Graph, path []roadnet.VertexID) float64 {
	total := 0.0
	for i := 0; i+1 < len(path); i++ {
		w, ok := g.EdgeWeight(path[i], path[i+1])
		if !ok {
			return Inf
		}
		total += w
	}
	return total
}
