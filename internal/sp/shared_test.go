package sp

import (
	"math"
	"sync"
	"testing"

	"repro/internal/roadnet"
)

// The taxonomy's compile-time contracts.
var (
	_ SharedOracle = (*Matrix)(nil)
	_ SharedOracle = (*HubLabels)(nil)
	_ Oracle       = (*Dijkstra)(nil)
	_ Oracle       = (*Bidirectional)(nil)
)

// TestSharedOraclesConcurrent exercises the SharedOracle guarantee under
// -race: Dist and Path from many goroutines at once, results always
// matching a single-threaded reference.
func TestSharedOraclesConcurrent(t *testing.T) {
	g, err := roadnet.Grid(roadnet.GridOptions{Rows: 7, Cols: 7, Spacing: 300, Jitter: 0.1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	mat, err := NewMatrix(g)
	if err != nil {
		t.Fatal(err)
	}
	oracles := map[string]SharedOracle{
		"matrix":    mat,
		"hublabels": NewHubLabels(g),
	}
	n := g.N()
	for name, o := range oracles {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for w := 0; w < 6; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					ref := NewDijkstra(g) // per-goroutine engine, per the taxonomy
					state := seed
					for q := 0; q < 200; q++ {
						state = state*6364136223846793005 + 1442695040888963407
						u := roadnet.VertexID(uint64(state>>16) % uint64(n))
						v := roadnet.VertexID(uint64(state>>40) % uint64(n))
						if got, want := o.Dist(u, v), ref.Dist(u, v); math.Abs(got-want) > 1e-6 {
							t.Errorf("Dist(%d,%d) = %v, want %v", u, v, got, want)
							return
						}
						if q%23 == 0 && u != v {
							if p := o.Path(u, v); len(p) == 0 || p[0] != u || p[len(p)-1] != v {
								t.Errorf("Path(%d,%d) = %v", u, v, p)
								return
							}
						}
					}
				}(int64(w + 1))
			}
			wg.Wait()
		})
	}
}
