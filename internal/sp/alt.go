package sp

import (
	"repro/internal/roadnet"
)

// ALT is an A*-with-landmarks engine (Goldberg & Harrelson), one of the
// goal-directed techniques the paper surveys for the shortest-path substrate
// (§VI). Preprocessing selects k landmarks by farthest-point sampling and
// runs one full Dijkstra per landmark; queries use the triangle-inequality
// lower bound
//
//	h(v) = max_L |d(L, t) − d(L, v)|
//
// which is admissible and consistent on undirected graphs, typically
// dominating the Euclidean heuristic on road networks with non-metric
// weights.
//
// Not safe for concurrent use.
type ALT struct {
	g         *roadnet.Graph
	landmarks []roadnet.VertexID
	distTo    [][]float64 // per landmark: distance to every vertex

	dist   []float64
	parent []roadnet.VertexID
	stamp  []uint32
	epoch  uint32
	heap   distHeap

	active []int // landmark subset used for the current query
}

// NewALT builds an ALT engine with k landmarks (clamped to [1, 16]).
func NewALT(g *roadnet.Graph, k int) *ALT {
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	n := g.N()
	a := &ALT{
		g:      g,
		dist:   make([]float64, n),
		parent: make([]roadnet.VertexID, n),
		stamp:  make([]uint32, n),
	}
	if n == 0 {
		return a
	}
	dij := NewDijkstra(g)
	// Farthest-point sampling: start from vertex 0, then repeatedly take
	// the vertex maximizing the minimum distance to chosen landmarks.
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = Inf
	}
	cur := roadnet.VertexID(0)
	for len(a.landmarks) < k {
		a.landmarks = append(a.landmarks, cur)
		d := dij.All(cur)
		a.distTo = append(a.distTo, d)
		far := cur
		farD := -1.0
		for v := 0; v < n; v++ {
			if d[v] < minDist[v] {
				minDist[v] = d[v]
			}
			if minDist[v] != Inf && minDist[v] > farD {
				farD = minDist[v]
				far = roadnet.VertexID(v)
			}
		}
		if far == cur {
			break // graph exhausted (small or disconnected)
		}
		cur = far
	}
	return a
}

// NumLandmarks returns the number of landmarks actually selected.
func (a *ALT) NumLandmarks() int { return len(a.landmarks) }

// h returns the landmark lower bound on d(v, t) using the active subset.
func (a *ALT) h(v, t roadnet.VertexID) float64 {
	best := 0.0
	for _, li := range a.active {
		d := a.distTo[li]
		if d[t] == Inf || d[v] == Inf {
			continue
		}
		diff := d[t] - d[v]
		if diff < 0 {
			diff = -diff
		}
		if diff > best {
			best = diff
		}
	}
	return best
}

// selectActive picks the landmarks giving the best bound for this
// source/target pair (using all of them per relax would dominate runtime).
func (a *ALT) selectActive(s, t roadnet.VertexID) {
	a.active = a.active[:0]
	type scored struct {
		idx   int
		bound float64
	}
	var best1, best2 scored
	best1.idx, best2.idx = -1, -1
	for i := range a.landmarks {
		d := a.distTo[i]
		if d[s] == Inf || d[t] == Inf {
			continue
		}
		diff := d[t] - d[s]
		if diff < 0 {
			diff = -diff
		}
		switch {
		case best1.idx < 0 || diff > best1.bound:
			best2 = best1
			best1 = scored{i, diff}
		case best2.idx < 0 || diff > best2.bound:
			best2 = scored{i, diff}
		}
	}
	if best1.idx >= 0 {
		a.active = append(a.active, best1.idx)
	}
	if best2.idx >= 0 {
		a.active = append(a.active, best2.idx)
	}
}

func (a *ALT) reset() {
	a.epoch++
	if a.epoch == 0 {
		for i := range a.stamp {
			a.stamp[i] = 0
		}
		a.epoch = 1
	}
	a.heap = a.heap[:0]
}

// Dist returns the shortest-path cost from u to v.
func (a *ALT) Dist(u, v roadnet.VertexID) float64 {
	d, _ := a.search(u, v)
	return d
}

// Path returns a shortest path from u to v, or nil if unreachable.
func (a *ALT) Path(u, v roadnet.VertexID) []roadnet.VertexID {
	if u == v {
		return []roadnet.VertexID{u}
	}
	if d, ok := a.search(u, v); !ok || d == Inf {
		return nil
	}
	var rev []roadnet.VertexID
	for at := v; at != -1; at = a.parent[at] {
		rev = append(rev, at)
		if at == u {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

func (a *ALT) search(u, v roadnet.VertexID) (float64, bool) {
	if u == v {
		return 0, true
	}
	a.selectActive(u, v)
	a.reset()
	a.stamp[u] = a.epoch
	a.dist[u] = 0
	a.parent[u] = -1
	a.heap.push(distItem{u, a.h(u, v)})
	for len(a.heap) > 0 {
		it := a.heap.pop()
		g := a.dist[it.v]
		if it.dist > g+a.h(it.v, v)+1e-9 {
			continue // stale
		}
		if it.v == v {
			return g, true
		}
		ts, ws := a.g.Neighbors(it.v)
		for i, t := range ts {
			ng := g + ws[i]
			if a.stamp[t] != a.epoch || ng < a.dist[t] {
				a.stamp[t] = a.epoch
				a.dist[t] = ng
				a.parent[t] = it.v
				a.heap.push(distItem{t, ng + a.h(t, v)})
			}
		}
	}
	return Inf, false
}
