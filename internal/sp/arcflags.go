package sp

import (
	"math"

	"repro/internal/roadnet"
)

// ArcFlags is an arc-flag shortest-path engine (Lauther), one of the
// goal-directed techniques the paper surveys ("Arc-flag (directing the
// search towards the goal)", §VI). The graph's bounding box is partitioned
// into a grid of regions; preprocessing marks, per directed edge and
// region, whether the edge lies on some shortest path into that region.
// Queries run Dijkstra but relax only edges whose flag for the target's
// region is set, which shrinks the search cone dramatically on long
// queries.
//
// Preprocessing runs one Dijkstra per region-boundary vertex, so it suits
// medium graphs or offline index construction; build cost is reported by
// BoundaryVertices. Correctness follows the standard argument: a shortest
// path to target t either stays inside t's region (intra-region edges carry
// their own region's flag) or enters it for the last time through a
// boundary vertex b, and its prefix is a shortest path to b, whose
// shortest-path-DAG edges are flagged during b's backward search.
//
// Not safe for concurrent use.
type ArcFlags struct {
	g       *roadnet.Graph
	regions int // total regions (gridDim²)
	region  []int32
	// flags[edgeIdx] is a bitmask over regions; edgeIdx is the CSR
	// position of the directed edge.
	flags    []uint64
	bases    []int // cumulative out-degrees: CSR edge base per vertex
	boundary int

	dist   []float64
	parent []roadnet.VertexID
	stamp  []uint32
	epoch  uint32
	heap   distHeap
}

// MaxArcFlagRegions bounds the region count to the flag word width.
const MaxArcFlagRegions = 64

// NewArcFlags builds the index with a gridDim x gridDim region partition
// (gridDim clamped so that regions <= MaxArcFlagRegions).
func NewArcFlags(g *roadnet.Graph, gridDim int) *ArcFlags {
	if gridDim < 1 {
		gridDim = 1
	}
	for gridDim*gridDim > MaxArcFlagRegions {
		gridDim--
	}
	n := g.N()
	a := &ArcFlags{
		g:       g,
		regions: gridDim * gridDim,
		region:  make([]int32, n),
		flags:   make([]uint64, numDirectedEdges(g)),
		dist:    make([]float64, n),
		parent:  make([]roadnet.VertexID, n),
		stamp:   make([]uint32, n),
	}
	if n == 0 {
		return a
	}
	minX, minY, maxX, maxY := g.Bounds()
	w := math.Max(maxX-minX, 1e-9)
	h := math.Max(maxY-minY, 1e-9)
	for v := 0; v < n; v++ {
		x, y := g.Coord(roadnet.VertexID(v))
		cx := int(float64(gridDim) * (x - minX) / w)
		cy := int(float64(gridDim) * (y - minY) / h)
		if cx >= gridDim {
			cx = gridDim - 1
		}
		if cy >= gridDim {
			cy = gridDim - 1
		}
		a.region[v] = int32(cy*gridDim + cx)
	}

	// Intra-region edges carry their own region's flag.
	for u := 0; u < n; u++ {
		ts, _ := g.Neighbors(roadnet.VertexID(u))
		for i, t := range ts {
			if a.region[u] == a.region[t] {
				a.flags[a.edgeIdx(roadnet.VertexID(u), i)] |= 1 << uint(a.region[t])
			}
		}
	}

	// One backward Dijkstra per boundary vertex. The graph is undirected,
	// so a forward search from b computes distances to b.
	dij := NewDijkstra(g)
	for v := 0; v < n; v++ {
		if !a.isBoundary(roadnet.VertexID(v)) {
			continue
		}
		a.boundary++
		db := dij.All(roadnet.VertexID(v))
		bit := uint64(1) << uint(a.region[v])
		for u := 0; u < n; u++ {
			if db[u] == Inf {
				continue
			}
			ts, ws := g.Neighbors(roadnet.VertexID(u))
			for i, t := range ts {
				// Edge (u,t) is tight toward b if d(u,b) = w + d(t,b).
				if math.Abs(db[u]-(ws[i]+db[t])) < 1e-9 {
					a.flags[a.edgeIdx(roadnet.VertexID(u), i)] |= bit
				}
			}
		}
	}
	return a
}

func numDirectedEdges(g *roadnet.Graph) int {
	total := 0
	for v := 0; v < g.N(); v++ {
		total += g.Degree(roadnet.VertexID(v))
	}
	return total
}

// edgeIdx returns the flag index of the i-th outgoing edge of u.
func (a *ArcFlags) edgeIdx(u roadnet.VertexID, i int) int {
	// Recompute the CSR offset by walking degrees once would be O(n);
	// instead use cumulative degree baked at construction time.
	return a.edgeBase(u) + i
}

// edgeBase caches cumulative degrees lazily.
func (a *ArcFlags) edgeBase(u roadnet.VertexID) int {
	if a.bases == nil {
		a.bases = make([]int, a.g.N()+1)
		for v := 0; v < a.g.N(); v++ {
			a.bases[v+1] = a.bases[v] + a.g.Degree(roadnet.VertexID(v))
		}
	}
	return a.bases[u]
}

// isBoundary reports whether v has a neighbor in another region.
func (a *ArcFlags) isBoundary(v roadnet.VertexID) bool {
	ts, _ := a.g.Neighbors(v)
	for _, t := range ts {
		if a.region[t] != a.region[v] {
			return true
		}
	}
	return false
}

// BoundaryVertices returns the number of boundary vertices, i.e. the number
// of Dijkstra runs preprocessing performed.
func (a *ArcFlags) BoundaryVertices() int { return a.boundary }

func (a *ArcFlags) reset() {
	a.epoch++
	if a.epoch == 0 {
		for i := range a.stamp {
			a.stamp[i] = 0
		}
		a.epoch = 1
	}
	a.heap = a.heap[:0]
}

// Dist returns the shortest-path cost from u to v.
func (a *ArcFlags) Dist(u, v roadnet.VertexID) float64 {
	d, _ := a.search(u, v)
	return d
}

// Path returns a shortest path from u to v, or nil if unreachable.
func (a *ArcFlags) Path(u, v roadnet.VertexID) []roadnet.VertexID {
	if u == v {
		return []roadnet.VertexID{u}
	}
	if d, ok := a.search(u, v); !ok || d == Inf {
		return nil
	}
	var rev []roadnet.VertexID
	for at := v; at != -1; at = a.parent[at] {
		rev = append(rev, at)
		if at == u {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

func (a *ArcFlags) search(u, v roadnet.VertexID) (float64, bool) {
	if u == v {
		return 0, true
	}
	bit := uint64(1) << uint(a.region[v])
	a.reset()
	a.stamp[u] = a.epoch
	a.dist[u] = 0
	a.parent[u] = -1
	a.heap.push(distItem{u, 0})
	for len(a.heap) > 0 {
		it := a.heap.pop()
		if it.dist > a.dist[it.v] {
			continue
		}
		if it.v == v {
			return it.dist, true
		}
		base := a.edgeBase(it.v)
		ts, ws := a.g.Neighbors(it.v)
		for i, t := range ts {
			if a.flags[base+i]&bit == 0 {
				continue // edge provably off all shortest paths into v's region
			}
			nd := it.dist + ws[i]
			if a.stamp[t] != a.epoch || nd < a.dist[t] {
				a.stamp[t] = a.epoch
				a.dist[t] = nd
				a.parent[t] = it.v
				a.heap.push(distItem{t, nd})
			}
		}
	}
	return Inf, false
}
