package sp

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/roadnet"
)

var errFlaky = errors.New("transient")

// scripted is a Fallible whose first failBefore calls (per method-call
// counter, shared across lookups) fail.
type scripted struct {
	failBefore int
	calls      int
	dist       float64
	path       []roadnet.VertexID
}

func (s *scripted) TryDist(u, v roadnet.VertexID) (float64, error) {
	s.calls++
	if s.calls <= s.failBefore {
		return 0, errFlaky
	}
	return s.dist, nil
}

func (s *scripted) TryPath(u, v roadnet.VertexID) ([]roadnet.VertexID, error) {
	s.calls++
	if s.calls <= s.failBefore {
		return nil, errFlaky
	}
	return s.path, nil
}

func fastOpts() RetryOptions {
	return RetryOptions{BaseBackoff: time.Microsecond, MaxBackoff: 4 * time.Microsecond}
}

// TestRetryRecovers: failures shorter than the attempt budget are
// invisible to the caller — the true value comes back.
func TestRetryRecovers(t *testing.T) {
	inner := &scripted{failBefore: 2, dist: 7.5}
	r := NewRetry(inner, fastOpts())
	if d := r.Dist(1, 2); d != 7.5 {
		t.Fatalf("Dist = %v, want 7.5 after recovery", d)
	}
	retries, exhausted := r.RetryStats()
	if retries != 2 || exhausted != 0 {
		t.Fatalf("stats = %d retries, %d exhausted; want 2/0", retries, exhausted)
	}
}

// TestRetryExhausts: persistent failure degrades to the documented
// sentinels (+Inf dist, nil path) instead of blocking forever.
func TestRetryExhausts(t *testing.T) {
	inner := &scripted{failBefore: 1 << 30}
	r := NewRetry(inner, fastOpts())
	if d := r.Dist(1, 2); !math.IsInf(d, 1) {
		t.Fatalf("Dist = %v, want +Inf on exhaustion", d)
	}
	if p := r.Path(1, 2); p != nil {
		t.Fatalf("Path = %v, want nil on exhaustion", p)
	}
	retries, exhausted := r.RetryStats()
	if exhausted != 2 {
		t.Fatalf("exhausted = %d, want 2", exhausted)
	}
	// Default budget is 4 attempts: 3 backoff retries per lookup.
	if retries != 6 {
		t.Fatalf("retries = %d, want 6 (3 per exhausted lookup)", retries)
	}
	if inner.calls != 8 {
		t.Fatalf("inner saw %d attempts, want 8 (4 per lookup)", inner.calls)
	}
}

// TestRetryBudgetOption: MaxAttempts bounds the tries exactly.
func TestRetryBudgetOption(t *testing.T) {
	inner := &scripted{failBefore: 1 << 30}
	opt := fastOpts()
	opt.MaxAttempts = 2
	r := NewRetry(inner, opt)
	r.Dist(1, 2)
	if inner.calls != 2 {
		t.Fatalf("inner saw %d attempts, want 2", inner.calls)
	}
}

// stubOracle is a minimal concrete Oracle for unwrap tests.
type stubOracle struct{ d float64 }

func (s *stubOracle) Dist(u, v roadnet.VertexID) float64            { return s.d }
func (s *stubOracle) Path(u, v roadnet.VertexID) []roadnet.VertexID { return nil }

// wrapped is a Fallible that also exposes the oracle it decorates, like
// faults.FlakyOracle does.
type wrapped struct {
	scripted
	inner Oracle
}

func (w *wrapped) Unwrap() Oracle { return w.inner }

// plainWrap is an Oracle-only decorator.
type plainWrap struct{ inner Oracle }

func (p *plainWrap) Dist(u, v roadnet.VertexID) float64            { return p.inner.Dist(u, v) }
func (p *plainWrap) Path(u, v roadnet.VertexID) []roadnet.VertexID { return p.inner.Path(u, v) }
func (p *plainWrap) Unwrap() Oracle                                { return p.inner }

// TestUnwrapPeels: Unwrap walks arbitrary decorator stacks down to the
// concrete oracle, including through Retry's Fallible indirection.
func TestUnwrapPeels(t *testing.T) {
	base := &stubOracle{d: 3}
	if got := Unwrap(base); got != Oracle(base) {
		t.Fatal("Unwrap of a bare oracle changed it")
	}
	if got := Unwrap(&plainWrap{inner: &plainWrap{inner: base}}); got != Oracle(base) {
		t.Fatal("Unwrap failed to peel stacked decorators")
	}
	r := NewRetry(&wrapped{inner: base}, fastOpts())
	if got := Unwrap(r); got != Oracle(base) {
		t.Fatal("Unwrap failed to peel Retry over an oracle-wrapping Fallible")
	}
	// A Fallible that wraps no oracle: Retry.Unwrap reports nil and
	// Unwrap stops at the Retry itself rather than returning nil.
	r2 := NewRetry(&scripted{}, fastOpts())
	if got := Unwrap(r2); got != Oracle(r2) {
		t.Fatalf("Unwrap over a bare Fallible = %v, want the Retry facade", got)
	}
}
