package sp

import (
	"repro/internal/roadnet"
)

// Dijkstra is a single-source shortest-path engine with reusable buffers.
// Search state is invalidated between queries with an epoch stamp rather
// than an O(n) clear, so repeated queries on large graphs stay cheap.
//
// Not safe for concurrent use.
type Dijkstra struct {
	g      *roadnet.Graph
	dist   []float64
	parent []roadnet.VertexID
	stamp  []uint32
	epoch  uint32
	heap   distHeap
}

// NewDijkstra returns a Dijkstra engine for g.
func NewDijkstra(g *roadnet.Graph) *Dijkstra {
	n := g.N()
	return &Dijkstra{
		g:      g,
		dist:   make([]float64, n),
		parent: make([]roadnet.VertexID, n),
		stamp:  make([]uint32, n),
	}
}

// Graph returns the underlying graph.
func (d *Dijkstra) Graph() *roadnet.Graph { return d.g }

func (d *Dijkstra) reset() {
	d.epoch++
	if d.epoch == 0 { // wrapped: clear stamps explicitly
		for i := range d.stamp {
			d.stamp[i] = 0
		}
		d.epoch = 1
	}
	d.heap = d.heap[:0]
}

func (d *Dijkstra) seen(v roadnet.VertexID) bool { return d.stamp[v] == d.epoch }

func (d *Dijkstra) relax(v roadnet.VertexID, dist float64, from roadnet.VertexID) {
	if !d.seen(v) || dist < d.dist[v] {
		d.stamp[v] = d.epoch
		d.dist[v] = dist
		d.parent[v] = from
		d.heap.push(distItem{v, dist})
	}
}

// Dist returns the shortest-path cost from u to v, terminating the search as
// soon as v is settled.
func (d *Dijkstra) Dist(u, v roadnet.VertexID) float64 {
	if u == v {
		return 0
	}
	d.reset()
	d.relax(u, 0, -1)
	for len(d.heap) > 0 {
		it := d.heap.pop()
		if it.dist > d.dist[it.v] || !d.seen(it.v) {
			continue // stale entry
		}
		if it.v == v {
			return it.dist
		}
		ts, ws := d.g.Neighbors(it.v)
		for i, t := range ts {
			d.relax(t, it.dist+ws[i], it.v)
		}
		// Mark settled by bumping stored dist guard: we rely on lazy
		// deletion; nothing else to do.
	}
	if d.seen(v) {
		return d.dist[v]
	}
	return Inf
}

// Path returns a shortest path from u to v, or nil if unreachable.
func (d *Dijkstra) Path(u, v roadnet.VertexID) []roadnet.VertexID {
	if u == v {
		return []roadnet.VertexID{u}
	}
	if dist := d.Dist(u, v); dist == Inf {
		return nil
	}
	return d.walkParents(u, v)
}

// walkParents reconstructs the path from the parent pointers of the most
// recent search. The search must have settled v.
func (d *Dijkstra) walkParents(u, v roadnet.VertexID) []roadnet.VertexID {
	var rev []roadnet.VertexID
	for at := v; at != -1; at = d.parent[at] {
		rev = append(rev, at)
		if at == u {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// All computes shortest-path costs from u to every vertex. The returned
// slice is freshly allocated; unreachable vertices hold +Inf.
func (d *Dijkstra) All(u roadnet.VertexID) []float64 {
	d.reset()
	d.relax(u, 0, -1)
	for len(d.heap) > 0 {
		it := d.heap.pop()
		if it.dist > d.dist[it.v] || !d.seen(it.v) {
			continue
		}
		ts, ws := d.g.Neighbors(it.v)
		for i, t := range ts {
			d.relax(t, it.dist+ws[i], it.v)
		}
	}
	out := make([]float64, d.g.N())
	for i := range out {
		if d.seen(roadnet.VertexID(i)) {
			out[i] = d.dist[i]
		} else {
			out[i] = Inf
		}
	}
	return out
}

// WithinRadius returns all vertices whose network distance from u is at most
// r, paired with their distances. The search is truncated at radius r, so
// cost is proportional to the ball size, not the graph size. Used by the
// dispatcher to find servers that can satisfy the waiting-time constraint.
func (d *Dijkstra) WithinRadius(u roadnet.VertexID, r float64) (verts []roadnet.VertexID, dists []float64) {
	d.reset()
	d.relax(u, 0, -1)
	for len(d.heap) > 0 {
		it := d.heap.pop()
		if it.dist > d.dist[it.v] || !d.seen(it.v) {
			continue
		}
		if it.dist > r {
			break
		}
		verts = append(verts, it.v)
		dists = append(dists, it.dist)
		ts, ws := d.g.Neighbors(it.v)
		for i, t := range ts {
			nd := it.dist + ws[i]
			if nd <= r {
				d.relax(t, nd, it.v)
			}
		}
	}
	return verts, dists
}

// distItem is a heap entry.
type distItem struct {
	v    roadnet.VertexID
	dist float64
}

// distHeap is a binary min-heap of distItems with lazy deletion. A
// hand-rolled heap avoids the interface boxing of container/heap on this
// very hot path.
type distHeap []distItem

func (h *distHeap) push(it distItem) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p].dist <= (*h)[i].dist {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *distHeap) pop() distItem {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && old[l].dist < old[small].dist {
			small = l
		}
		if r < n && old[r].dist < old[small].dist {
			small = r
		}
		if small == i {
			break
		}
		old[i], old[small] = old[small], old[i]
		i = small
	}
	return top
}
