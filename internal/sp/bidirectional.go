package sp

import (
	"repro/internal/roadnet"
)

// Bidirectional is a bidirectional Dijkstra engine. On road networks it
// typically settles far fewer vertices than unidirectional Dijkstra,
// which matters when no precomputed index (hub labels) is available.
//
// Not safe for concurrent use.
type Bidirectional struct {
	g   *roadnet.Graph
	fwd side
	bwd side
}

type side struct {
	dist   []float64
	parent []roadnet.VertexID
	stamp  []uint32
	epoch  uint32
	heap   distHeap
}

func newSide(n int) side {
	return side{
		dist:   make([]float64, n),
		parent: make([]roadnet.VertexID, n),
		stamp:  make([]uint32, n),
	}
}

func (s *side) reset() {
	s.epoch++
	if s.epoch == 0 {
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 1
	}
	s.heap = s.heap[:0]
}

func (s *side) seen(v roadnet.VertexID) bool { return s.stamp[v] == s.epoch }

func (s *side) relax(v roadnet.VertexID, d float64, from roadnet.VertexID) {
	if !s.seen(v) || d < s.dist[v] {
		s.stamp[v] = s.epoch
		s.dist[v] = d
		s.parent[v] = from
		s.heap.push(distItem{v, d})
	}
}

// NewBidirectional returns a bidirectional Dijkstra engine for g.
func NewBidirectional(g *roadnet.Graph) *Bidirectional {
	return &Bidirectional{g: g, fwd: newSide(g.N()), bwd: newSide(g.N())}
}

// Dist returns the shortest-path cost from u to v.
func (b *Bidirectional) Dist(u, v roadnet.VertexID) float64 {
	d, _ := b.search(u, v)
	return d
}

// Path returns a shortest path from u to v, or nil if unreachable.
func (b *Bidirectional) Path(u, v roadnet.VertexID) []roadnet.VertexID {
	if u == v {
		return []roadnet.VertexID{u}
	}
	d, meet := b.search(u, v)
	if d == Inf {
		return nil
	}
	// Forward half: u .. meet.
	var rev []roadnet.VertexID
	for at := meet; at != -1; at = b.fwd.parent[at] {
		rev = append(rev, at)
		if at == u {
			break
		}
	}
	path := make([]roadnet.VertexID, 0, len(rev)+4)
	for i := len(rev) - 1; i >= 0; i-- {
		path = append(path, rev[i])
	}
	// Backward half: meet .. v (parents point toward v).
	for at := b.bwd.parent[meet]; ; at = b.bwd.parent[at] {
		if at == -1 {
			break
		}
		path = append(path, at)
		if at == v {
			break
		}
	}
	return path
}

// search runs the bidirectional search and returns the shortest distance and
// the vertex where the two frontiers met.
func (b *Bidirectional) search(u, v roadnet.VertexID) (float64, roadnet.VertexID) {
	if u == v {
		return 0, u
	}
	b.fwd.reset()
	b.bwd.reset()
	b.fwd.relax(u, 0, -1)
	b.bwd.relax(v, 0, -1)

	best := Inf
	meet := roadnet.VertexID(-1)
	update := func(w roadnet.VertexID) {
		if b.fwd.seen(w) && b.bwd.seen(w) {
			if d := b.fwd.dist[w] + b.bwd.dist[w]; d < best {
				best = d
				meet = w
			}
		}
	}

	for len(b.fwd.heap) > 0 || len(b.bwd.heap) > 0 {
		// Termination: when the sum of the two frontier minima exceeds
		// the best meeting distance, no better path exists.
		fMin, bMin := Inf, Inf
		if len(b.fwd.heap) > 0 {
			fMin = b.fwd.heap[0].dist
		}
		if len(b.bwd.heap) > 0 {
			bMin = b.bwd.heap[0].dist
		}
		if fMin+bMin >= best {
			break
		}
		// Expand the smaller frontier.
		if fMin <= bMin {
			it := b.fwd.heap.pop()
			if it.dist > b.fwd.dist[it.v] {
				continue
			}
			ts, ws := b.g.Neighbors(it.v)
			for i, t := range ts {
				b.fwd.relax(t, it.dist+ws[i], it.v)
				update(t)
			}
		} else {
			it := b.bwd.heap.pop()
			if it.dist > b.bwd.dist[it.v] {
				continue
			}
			ts, ws := b.g.Neighbors(it.v)
			for i, t := range ts {
				b.bwd.relax(t, it.dist+ws[i], it.v)
				update(t)
			}
		}
	}
	return best, meet
}
