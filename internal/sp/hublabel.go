package sp

import (
	"sort"
	"sync"

	"repro/internal/roadnet"
)

// HubLabels is a 2-hop labeling distance index built with pruned landmark
// labeling (Akiba et al.), the practical hub-labeling construction the paper
// refers to ("we implement the state-of-art hub-labeling algorithm — a fast
// and practical algorithm to heuristically construct the distance labeling
// on large road networks, where each vertex records a set of intermediate
// vertices and their distance to them", §VI).
//
// Each vertex stores a sorted list of (hub, distance) pairs; a distance
// query intersects the two endpoint lists in a single merge pass.
// HubLabels is a SharedOracle: distance queries read the immutable labels
// and are safe for unsynchronized concurrent use, while path queries fall
// back to an internal A* engine serialized by a mutex.
type HubLabels struct {
	g      *roadnet.Graph
	hubs   [][]int32   // per-vertex sorted hub ranks
	dists  [][]float64 // parallel distances
	labels int         // total label entries, for stats

	pathMu sync.Mutex
	astar  *AStar // for Path; guarded by pathMu
}

// NewHubLabels builds the index. Vertices are ranked by degree (descending,
// ties by ID), a cheap ordering that works well on road networks. Build time
// is roughly one pruned Dijkstra per vertex.
func NewHubLabels(g *roadnet.Graph) *HubLabels {
	n := g.N()
	order := make([]roadnet.VertexID, n)
	for i := range order {
		order[i] = roadnet.VertexID(i)
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := g.Degree(order[a]), g.Degree(order[b])
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	rank := make([]int32, n) // vertex -> rank (0 = most important)
	for r, v := range order {
		rank[v] = int32(r)
	}

	hl := &HubLabels{
		g:     g,
		hubs:  make([][]int32, n),
		dists: make([][]float64, n),
		astar: NewAStar(g),
	}

	// Pruned Dijkstra state (epoch-stamped).
	dist := make([]float64, n)
	stamp := make([]uint32, n)
	var epoch uint32
	var heap distHeap

	for r := 0; r < n; r++ {
		root := order[r]
		epoch++
		heap = heap[:0]
		dist[root] = 0
		stamp[root] = epoch
		heap.push(distItem{root, 0})
		for len(heap) > 0 {
			it := heap.pop()
			if stamp[it.v] != epoch || it.dist > dist[it.v] {
				continue
			}
			// Prune: if existing labels already certify a distance
			// <= it.dist via a higher-ranked hub, skip.
			if hl.queryRanked(root, it.v, int32(r)) <= it.dist {
				continue
			}
			// Label it.v with hub rank r. Ranks are assigned in
			// increasing order, so appending keeps lists sorted.
			hl.hubs[it.v] = append(hl.hubs[it.v], int32(r))
			hl.dists[it.v] = append(hl.dists[it.v], it.dist)
			hl.labels++

			ts, ws := g.Neighbors(it.v)
			for i, t := range ts {
				nd := it.dist + ws[i]
				if stamp[t] != epoch || nd < dist[t] {
					stamp[t] = epoch
					dist[t] = nd
					heap.push(distItem{t, nd})
				}
			}
		}
	}
	return hl
}

// queryRanked is the query used during construction: a pure label
// intersection with no same-vertex shortcut. During the pruned Dijkstra from
// the rank-r root, both endpoints carry only labels of hubs ranked < r, so
// the intersection answers "is there already a witness path via a more
// important hub?" — including for the root itself, which must not be pruned
// before labeling itself (its intersection with itself is initially empty).
func (hl *HubLabels) queryRanked(a, b roadnet.VertexID, _ int32) float64 {
	ha, da := hl.hubs[a], hl.dists[a]
	hb, db := hl.hubs[b], hl.dists[b]
	best := Inf
	i, j := 0, 0
	for i < len(ha) && j < len(hb) {
		switch {
		case ha[i] == hb[j]:
			if d := da[i] + db[j]; d < best {
				best = d
			}
			i++
			j++
		case ha[i] < hb[j]:
			i++
		default:
			j++
		}
	}
	return best
}

// Dist returns the shortest-path cost from u to v by intersecting label
// lists. Safe for concurrent use after construction.
func (hl *HubLabels) Dist(u, v roadnet.VertexID) float64 {
	if u == v {
		return 0
	}
	hu, du := hl.hubs[u], hl.dists[u]
	hv, dv := hl.hubs[v], hl.dists[v]
	best := Inf
	i, j := 0, 0
	for i < len(hu) && j < len(hv) {
		switch {
		case hu[i] == hv[j]:
			if d := du[i] + dv[j]; d < best {
				best = d
			}
			i++
			j++
		case hu[i] < hv[j]:
			i++
		default:
			j++
		}
	}
	return best
}

// Path returns a shortest path from u to v via the internal A* engine.
// Hub labels certify distances; explicit paths are recovered on demand,
// matching the paper's design where "a second version of the road network is
// stored in memory in a weighted adjacency list" for route tracking.
// Concurrent calls serialize on an internal mutex.
func (hl *HubLabels) Path(u, v roadnet.VertexID) []roadnet.VertexID {
	hl.pathMu.Lock()
	defer hl.pathMu.Unlock()
	return hl.astar.Path(u, v)
}

// ConcurrencySafe marks HubLabels as a SharedOracle.
func (hl *HubLabels) ConcurrencySafe() {}

// AvgLabelSize returns the mean number of label entries per vertex, a
// standard index-quality statistic.
func (hl *HubLabels) AvgLabelSize() float64 {
	if hl.g.N() == 0 {
		return 0
	}
	return float64(hl.labels) / float64(hl.g.N())
}
