package sp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/roadnet"
)

func testGraph(t testing.TB, seed int64) *roadnet.Graph {
	t.Helper()
	g, err := roadnet.Grid(roadnet.GridOptions{
		Rows: 12, Cols: 12, Spacing: 300, Jitter: 0.25, WeightVar: 0.2, DropFrac: 0.08, Seed: seed,
	})
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	return g
}

// TestEnginesAgree cross-validates every shortest-path engine against the
// Floyd–Warshall matrix on random vertex pairs.
func TestEnginesAgree(t *testing.T) {
	g := testGraph(t, 1)
	m, err := NewMatrix(g)
	if err != nil {
		t.Fatal(err)
	}
	engines := map[string]Oracle{
		"dijkstra":      NewDijkstra(g),
		"bidirectional": NewBidirectional(g),
		"astar":         NewAStar(g),
		"hublabels":     NewHubLabels(g),
		"alt":           NewALT(g, 8),
		"arcflags":      NewArcFlags(g, 4),
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		u := roadnet.VertexID(rng.Intn(g.N()))
		v := roadnet.VertexID(rng.Intn(g.N()))
		want := m.Dist(u, v)
		for name, e := range engines {
			if got := e.Dist(u, v); math.Abs(got-want) > 1e-6 {
				t.Fatalf("%s.Dist(%d,%d) = %v, want %v", name, u, v, got, want)
			}
		}
	}
}

// TestPathsAreShortest verifies that returned paths walk edge-by-edge to
// exactly the reported distance.
func TestPathsAreShortest(t *testing.T) {
	g := testGraph(t, 3)
	m, err := NewMatrix(g)
	if err != nil {
		t.Fatal(err)
	}
	engines := map[string]Oracle{
		"dijkstra":      NewDijkstra(g),
		"bidirectional": NewBidirectional(g),
		"astar":         NewAStar(g),
		"hublabels":     NewHubLabels(g),
		"alt":           NewALT(g, 8),
		"arcflags":      NewArcFlags(g, 4),
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		u := roadnet.VertexID(rng.Intn(g.N()))
		v := roadnet.VertexID(rng.Intn(g.N()))
		want := m.Dist(u, v)
		for name, e := range engines {
			p := e.Path(u, v)
			if want == Inf {
				if p != nil {
					t.Fatalf("%s.Path(%d,%d) non-nil for unreachable pair", name, u, v)
				}
				continue
			}
			if len(p) == 0 || p[0] != u || p[len(p)-1] != v {
				t.Fatalf("%s.Path(%d,%d) endpoints wrong: %v", name, u, v, p)
			}
			if got := pathCost(g, p); math.Abs(got-want) > 1e-6 {
				t.Fatalf("%s.Path(%d,%d) walks to %v, want %v", name, u, v, got, want)
			}
		}
	}
}

// TestTriangleInequality is a property test: oracle distances on a graph
// must satisfy d(u,w) <= d(u,v) + d(v,w).
func TestTriangleInequality(t *testing.T) {
	g := testGraph(t, 5)
	m, err := NewMatrix(g)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	f := func(a, b, c uint16) bool {
		u := roadnet.VertexID(int(a) % n)
		v := roadnet.VertexID(int(b) % n)
		w := roadnet.VertexID(int(c) % n)
		duw, duv, dvw := m.Dist(u, w), m.Dist(u, v), m.Dist(v, w)
		if duv == Inf || dvw == Inf {
			return true
		}
		return duw <= duv+dvw+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestSymmetry: the graph is undirected, so distances are symmetric.
func TestSymmetry(t *testing.T) {
	g := testGraph(t, 6)
	d := NewDijkstra(g)
	n := g.N()
	f := func(a, b uint16) bool {
		u := roadnet.VertexID(int(a) % n)
		v := roadnet.VertexID(int(b) % n)
		x, y := d.Dist(u, v), d.Dist(v, u)
		if x == Inf && y == Inf {
			return true
		}
		return math.Abs(x-y) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestDisconnected checks Inf/nil reporting across components.
func TestDisconnected(t *testing.T) {
	b := roadnet.NewBuilder(4)
	b.SetCoord(0, 0, 0)
	b.SetCoord(1, 1, 0)
	b.SetCoord(2, 10, 0)
	b.SetCoord(3, 11, 0)
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for name, e := range map[string]Oracle{
		"dijkstra":      NewDijkstra(g),
		"bidirectional": NewBidirectional(g),
		"astar":         NewAStar(g),
		"hublabels":     NewHubLabels(g),
		"alt":           NewALT(g, 4),
		"arcflags":      NewArcFlags(g, 2),
	} {
		if d := e.Dist(0, 2); d != Inf {
			t.Errorf("%s: cross-component distance %v, want Inf", name, d)
		}
		if p := e.Path(0, 3); p != nil {
			t.Errorf("%s: cross-component path %v, want nil", name, p)
		}
		if d := e.Dist(0, 1); math.Abs(d-1) > 1e-9 {
			t.Errorf("%s: same-component distance %v, want 1", name, d)
		}
	}
}

// TestWithinRadius checks the truncated search returns exactly the ball.
func TestWithinRadius(t *testing.T) {
	g := testGraph(t, 8)
	d := NewDijkstra(g)
	m, err := NewMatrix(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		u := roadnet.VertexID(rng.Intn(g.N()))
		r := 200 + rng.Float64()*1500
		verts, dists := d.WithinRadius(u, r)
		got := make(map[roadnet.VertexID]float64, len(verts))
		for j, v := range verts {
			got[v] = dists[j]
		}
		for v := 0; v < g.N(); v++ {
			want := m.Dist(u, roadnet.VertexID(v))
			gd, ok := got[roadnet.VertexID(v)]
			if want <= r && !ok {
				t.Fatalf("WithinRadius(%d, %.0f) missing vertex %d at %.1f", u, r, v, want)
			}
			if ok && math.Abs(gd-want) > 1e-6 {
				t.Fatalf("WithinRadius distance mismatch at %d: %v vs %v", v, gd, want)
			}
			if !ok && want <= r {
				t.Fatalf("missing %d", v)
			}
			if ok && want > r+1e-9 {
				t.Fatalf("WithinRadius(%d, %.0f) included vertex %d at %.1f", u, r, v, want)
			}
		}
	}
}

// TestHubLabelStats sanity-checks label sizes stay moderate on road-like
// graphs (they grow roughly with log n on planar networks).
func TestHubLabelStats(t *testing.T) {
	g := testGraph(t, 10)
	hl := NewHubLabels(g)
	avg := hl.AvgLabelSize()
	if avg <= 1 {
		t.Fatalf("average label size %v suspiciously small", avg)
	}
	if avg > 200 {
		t.Fatalf("average label size %v suspiciously large for a %d-vertex grid", avg, g.N())
	}
}

// TestDistSelfIsZero covers the trivial cases across engines.
func TestDistSelfIsZero(t *testing.T) {
	g := testGraph(t, 11)
	for name, e := range map[string]Oracle{
		"dijkstra":      NewDijkstra(g),
		"bidirectional": NewBidirectional(g),
		"astar":         NewAStar(g),
		"hublabels":     NewHubLabels(g),
		"alt":           NewALT(g, 4),
		"arcflags":      NewArcFlags(g, 2),
	} {
		if d := e.Dist(3, 3); d != 0 {
			t.Errorf("%s: Dist(v,v)=%v", name, d)
		}
		if p := e.Path(3, 3); len(p) != 1 || p[0] != 3 {
			t.Errorf("%s: Path(v,v)=%v", name, p)
		}
	}
}

// TestEpochWraparound forces the epoch counter to wrap and checks queries
// stay correct (the stamp-clearing path).
func TestEpochWraparound(t *testing.T) {
	g := testGraph(t, 12)
	d := NewDijkstra(g)
	// Private field access is not possible; instead run enough queries to
	// cross a small artificial wrap by directly manipulating the counter.
	d.epoch = math.MaxUint32 - 3
	m, err := NewMatrix(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 10; i++ {
		u := roadnet.VertexID(rng.Intn(g.N()))
		v := roadnet.VertexID(rng.Intn(g.N()))
		if got, want := d.Dist(u, v), m.Dist(u, v); math.Abs(got-want) > 1e-6 {
			t.Fatalf("after wrap: Dist(%d,%d)=%v want %v", u, v, got, want)
		}
	}
}

func BenchmarkDijkstraDist(b *testing.B) {
	g := testGraph(b, 20)
	d := NewDijkstra(g)
	rng := rand.New(rand.NewSource(21))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := roadnet.VertexID(rng.Intn(g.N()))
		v := roadnet.VertexID(rng.Intn(g.N()))
		d.Dist(u, v)
	}
}

func BenchmarkBidirectionalDist(b *testing.B) {
	g := testGraph(b, 20)
	d := NewBidirectional(g)
	rng := rand.New(rand.NewSource(21))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := roadnet.VertexID(rng.Intn(g.N()))
		v := roadnet.VertexID(rng.Intn(g.N()))
		d.Dist(u, v)
	}
}

func BenchmarkALTDist(b *testing.B) {
	g := testGraph(b, 20)
	a := NewALT(g, 8)
	rng := rand.New(rand.NewSource(21))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := roadnet.VertexID(rng.Intn(g.N()))
		v := roadnet.VertexID(rng.Intn(g.N()))
		a.Dist(u, v)
	}
}

func TestArcFlagsStats(t *testing.T) {
	g := testGraph(t, 23)
	a := NewArcFlags(g, 4)
	if a.BoundaryVertices() == 0 {
		t.Fatal("no boundary vertices found on a partitioned grid")
	}
	if a.BoundaryVertices() >= g.N() {
		t.Fatalf("all %d vertices boundary — partition degenerate", g.N())
	}
}

func BenchmarkArcFlagsDist(b *testing.B) {
	g := testGraph(b, 20)
	a := NewArcFlags(g, 4)
	rng := rand.New(rand.NewSource(21))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := roadnet.VertexID(rng.Intn(g.N()))
		v := roadnet.VertexID(rng.Intn(g.N()))
		a.Dist(u, v)
	}
}

func TestALTLandmarkCount(t *testing.T) {
	g := testGraph(t, 22)
	if got := NewALT(g, 0).NumLandmarks(); got != 1 {
		t.Fatalf("k=0 clamped to %d landmarks, want 1", got)
	}
	if got := NewALT(g, 100).NumLandmarks(); got > 16 {
		t.Fatalf("k=100 gave %d landmarks, want <= 16", got)
	}
}

func BenchmarkHubLabelDist(b *testing.B) {
	g := testGraph(b, 20)
	hl := NewHubLabels(g)
	rng := rand.New(rand.NewSource(21))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := roadnet.VertexID(rng.Intn(g.N()))
		v := roadnet.VertexID(rng.Intn(g.N()))
		hl.Dist(u, v)
	}
}
