package sp

import (
	"repro/internal/roadnet"
)

// AStar is an A* engine using the Euclidean distance between vertex
// coordinates as the heuristic. The generators in internal/roadnet guarantee
// edge weights are at least the Euclidean length between their endpoints,
// so the heuristic is admissible and A* returns exact shortest paths for
// those graphs. For arbitrary graphs the caller must ensure admissibility.
//
// Not safe for concurrent use.
type AStar struct {
	g      *roadnet.Graph
	dist   []float64 // g-cost
	parent []roadnet.VertexID
	stamp  []uint32
	epoch  uint32
	heap   distHeap // keyed by f = g + h
}

// NewAStar returns an A* engine for g.
func NewAStar(g *roadnet.Graph) *AStar {
	n := g.N()
	return &AStar{
		g:      g,
		dist:   make([]float64, n),
		parent: make([]roadnet.VertexID, n),
		stamp:  make([]uint32, n),
	}
}

func (a *AStar) reset() {
	a.epoch++
	if a.epoch == 0 {
		for i := range a.stamp {
			a.stamp[i] = 0
		}
		a.epoch = 1
	}
	a.heap = a.heap[:0]
}

func (a *AStar) seen(v roadnet.VertexID) bool { return a.stamp[v] == a.epoch }

// Dist returns the shortest-path cost from u to v.
func (a *AStar) Dist(u, v roadnet.VertexID) float64 {
	d, _ := a.search(u, v)
	return d
}

// Path returns a shortest path from u to v, or nil if unreachable.
func (a *AStar) Path(u, v roadnet.VertexID) []roadnet.VertexID {
	if u == v {
		return []roadnet.VertexID{u}
	}
	d, ok := a.search(u, v)
	if !ok || d == Inf {
		return nil
	}
	var rev []roadnet.VertexID
	for at := v; at != -1; at = a.parent[at] {
		rev = append(rev, at)
		if at == u {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

func (a *AStar) search(u, v roadnet.VertexID) (float64, bool) {
	if u == v {
		return 0, true
	}
	a.reset()
	a.stamp[u] = a.epoch
	a.dist[u] = 0
	a.parent[u] = -1
	a.heap.push(distItem{u, a.g.EuclideanDist(u, v)})
	for len(a.heap) > 0 {
		it := a.heap.pop()
		g := a.dist[it.v]
		if it.dist > g+a.g.EuclideanDist(it.v, v)+1e-9 {
			continue // stale
		}
		if it.v == v {
			return g, true
		}
		ts, ws := a.g.Neighbors(it.v)
		for i, t := range ts {
			ng := g + ws[i]
			if !a.seen(t) || ng < a.dist[t] {
				a.stamp[t] = a.epoch
				a.dist[t] = ng
				a.parent[t] = it.v
				a.heap.push(distItem{t, ng + a.g.EuclideanDist(t, v)})
			}
		}
	}
	return Inf, false
}
