package sp

import (
	"time"

	"repro/internal/roadnet"
)

// Fallible is an oracle whose lookups can fail transiently — a remote
// distance service, a backend shard mid-failover, or a fault-injection
// wrapper (faults.FlakyOracle). Retry adapts a Fallible back into the
// infallible Oracle interface the schedulers consume.
type Fallible interface {
	// TryDist is Dist with an error channel: (d, nil) on success,
	// (anything, err) on a transient failure worth retrying.
	TryDist(u, v roadnet.VertexID) (float64, error)
	// TryPath is Path with an error channel.
	TryPath(u, v roadnet.VertexID) ([]roadnet.VertexID, error)
}

// Unwrapper is implemented by oracle wrappers (Retry, faults.FlakyOracle,
// and any future facade) that decorate another oracle. Consumers that
// need the concrete oracle underneath — dispatch's cache-stats dedup
// walks wrappers to find the cache.Oracle/SharedWorker inside — peel
// with Unwrap until it stops returning.
type Unwrapper interface {
	Unwrap() Oracle
}

// Unwrap peels every Unwrapper layer off o and returns the innermost
// oracle. Returns o itself when it wraps nothing.
func Unwrap(o Oracle) Oracle {
	for {
		u, ok := o.(Unwrapper)
		if !ok {
			return o
		}
		inner := u.Unwrap()
		if inner == nil {
			return o
		}
		o = inner
	}
}

// RetryOptions bounds Retry's persistence.
type RetryOptions struct {
	// MaxAttempts is the total number of tries per lookup (first try
	// included). Default 4.
	MaxAttempts int
	// BaseBackoff is the sleep after the first failure; it doubles per
	// subsequent failure, capped at MaxBackoff. Default 100µs (these
	// are in-process oracles, not network calls — the backoff exists
	// to let a stalled backend shard drain, not to be polite to a
	// remote API).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth. Default 5ms.
	MaxBackoff time.Duration
	// Seed drives the deterministic jitter stream (splitmix64 counter,
	// never math/rand): each backoff is scaled into [50%, 150%] so
	// retries from many shards don't resynchronize against a
	// periodically failing backend.
	Seed uint64
}

func (o RetryOptions) withDefaults() RetryOptions {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 100 * time.Microsecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Millisecond
	}
	return o
}

// Retry adapts a Fallible into an Oracle with bounded retries,
// exponential backoff, and deterministic jitter. When the attempt
// budget is exhausted it degrades instead of blocking the scheduler:
// Dist reports +Inf (unreachable) and Path reports nil — the documented
// "can't serve this pair" sentinels, which the kinetic-tree trial path
// already treats as an infeasible candidate. A degraded lookup can
// therefore lose a match but can never corrupt a schedule or report a
// blown service-guarantee window as served.
//
// Thread-safety: per-goroutine (it mutates the jitter counter and its
// inner Fallible is typically a per-goroutine facade). Build one per
// shard, like any other per-goroutine engine.
type Retry struct {
	inner Fallible
	opt   RetryOptions

	jit       uint64 // deterministic jitter counter
	retries   int    // backoff sleeps taken (attempts beyond the first)
	exhausted int    // lookups degraded after the full budget failed
}

// NewRetry wraps inner with the given options (zero fields defaulted).
func NewRetry(inner Fallible, opt RetryOptions) *Retry {
	return &Retry{inner: inner, opt: opt.withDefaults()}
}

// Unwrap exposes the wrapped oracle when the Fallible is itself a
// wrapper around one (the common case: faults.FlakyOracle over a cache
// facade). Returns nil when the Fallible is not an oracle wrapper,
// which sp.Unwrap treats as "innermost reached".
func (r *Retry) Unwrap() Oracle {
	if u, ok := r.inner.(Unwrapper); ok {
		return u.Unwrap()
	}
	if o, ok := r.inner.(Oracle); ok {
		return o
	}
	return nil
}

// RetryStats reports the facade's lifetime counters. Read at quiescence.
func (r *Retry) RetryStats() (retries, exhausted int) { return r.retries, r.exhausted }

// backoff sleeps for attempt i (1-based failure count) with ±50% jitter.
func (r *Retry) backoff(failure int) {
	d := r.opt.BaseBackoff << (failure - 1)
	if d > r.opt.MaxBackoff || d <= 0 {
		d = r.opt.MaxBackoff
	}
	r.jit++
	// splitmix64 finalizer, same as the cache stripe hash.
	x := r.opt.Seed + r.jit*0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	// Scale into [0.5, 1.5): d/2 + frac*d with frac in [0,1).
	frac := float64(x>>11) / (1 << 53)
	d = d/2 + time.Duration(frac*float64(d))
	time.Sleep(d)
}

// Dist retries TryDist up to the budget, then degrades to +Inf.
func (r *Retry) Dist(u, v roadnet.VertexID) float64 {
	for attempt := 1; ; attempt++ {
		d, err := r.inner.TryDist(u, v)
		if err == nil {
			return d
		}
		if attempt >= r.opt.MaxAttempts {
			r.exhausted++
			return Inf
		}
		r.retries++
		r.backoff(attempt)
	}
}

// Path retries TryPath up to the budget, then degrades to nil.
func (r *Retry) Path(u, v roadnet.VertexID) []roadnet.VertexID {
	for attempt := 1; ; attempt++ {
		p, err := r.inner.TryPath(u, v)
		if err == nil {
			return p
		}
		if attempt >= r.opt.MaxAttempts {
			r.exhausted++
			return nil
		}
		r.retries++
		r.backoff(attempt)
	}
}
