package ingest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/dispatch"
	"repro/internal/obs"
	"repro/internal/roadnet"
	"repro/internal/sim"
	"repro/internal/sp"
)

// testWorld builds a small city, an oracle factory, and a deterministic
// time-sorted request stream (one request every 5 simulated seconds) —
// the same fixture shape the dispatch equivalence tests use.
func testWorld(t testing.TB, trips int) (*roadnet.Graph, dispatch.OracleFactory, []sim.Request) {
	t.Helper()
	g, err := roadnet.Grid(roadnet.GridOptions{
		Rows: 20, Cols: 20, Spacing: 400, Jitter: 0.2, WeightVar: 0.1, DropFrac: 0.05, Seed: 7,
	})
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	factory := func() sp.Oracle {
		return cache.New(sp.NewBidirectional(g), g.N(), 1<<20, 1<<14)
	}
	reqs := make([]sim.Request, 0, trips)
	nv := int32(g.N())
	state := int64(12345) // LCG, stable across Go versions
	next := func(mod int32) int32 {
		state = state*6364136223846793005 + 1442695040888963407
		v := int32((state >> 33) % int64(mod))
		if v < 0 {
			v += mod
		}
		return v
	}
	for len(reqs) < trips {
		s := roadnet.VertexID(next(nv))
		e := roadnet.VertexID(next(nv))
		if s == e || g.EuclideanDist(s, e) < 800 {
			continue
		}
		// Pairs share a timestamp so the equivalence runs exercise the
		// gateway's tie rule (equal times released in ID order); the slice
		// itself is (Time, ID)-sorted, the direct-feed reference order.
		reqs = append(reqs, sim.Request{
			ID:      int64(len(reqs)),
			Time:    float64(len(reqs)/2) * 10,
			Pickup:  s,
			Dropoff: e,
		})
	}
	return g, factory, reqs
}

func baseConfig(g *roadnet.Graph, factory dispatch.OracleFactory) sim.Config {
	return sim.Config{
		Graph:     g,
		Oracle:    factory(),
		Servers:   25,
		Capacity:  4,
		Algorithm: sim.AlgoTreeSlack,
		Seed:      42,
	}
}

// feed splits reqs round-robin over `producers` concurrent Submit
// goroutines — the partitioning Drive uses — and blocks until all are
// submitted and closed.
func feed(gw *Gateway, reqs []sim.Request, producers int) {
	handles := gw.Producers(producers)
	var wg sync.WaitGroup
	for pi, p := range handles {
		wg.Add(1)
		go func(pi int, p *Producer) {
			defer wg.Done()
			for i := pi; i < len(reqs); i += producers {
				p.Submit(reqs[i])
			}
			p.Close()
		}(pi, p)
	}
	wg.Wait()
}

// TestIngressEquivalence: with shedding disabled (Block policy) the
// gateway must hand the engine the exact time-sorted single-producer
// sequence no matter how many producers race the front door, so
// assignments stay bit-identical to the sequential simulator at every
// producers × workers combination — on both the immediate (Submit) and
// batch-window (Enqueue) paths.
func TestIngressEquivalence(t *testing.T) {
	g, factory, reqs := testWorld(t, 120)

	// Sequential single-producer baseline.
	seq, err := sim.New(baseConfig(g, factory))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int, len(reqs))
	for i, r := range reqs {
		matched, veh := seq.Submit(r)
		if !matched {
			veh = -1
		}
		want[i] = veh
	}

	// Batch-window baseline: the engine fed directly, single producer.
	wantBatch := make(map[int64]int, len(reqs))
	{
		cfg := baseConfig(g, factory)
		cfg.BatchWindow = 30
		e, err := dispatch.New(cfg, factory)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range reqs {
			e.Enqueue(r)
		}
		e.Flush()
		for _, r := range reqs {
			veh, ok := e.Assignment(r.ID)
			if !ok {
				t.Fatalf("baseline batch: request %d never dispatched", r.ID)
			}
			wantBatch[r.ID] = veh
		}
		e.Close()
	}

	for _, producers := range []int{1, 4, 8} {
		for _, workers := range []int{1, 4, 8} {
			for _, batch := range []float64{0, 30} {
				name := fmt.Sprintf("producers=%d/workers=%d/batch=%g", producers, workers, batch)
				t.Run(name, func(t *testing.T) {
					cfg := baseConfig(g, factory)
					cfg.Workers = workers
					cfg.Shards = workers
					cfg.BatchWindow = batch
					e, err := dispatch.New(cfg, factory)
					if err != nil {
						t.Fatal(err)
					}
					defer e.Close()

					gw := New(Config{Queues: e.Shards(), Depth: 8, Policy: Block})
					go feed(gw, reqs, producers)
					handed := 0
					gw.Drain(func(r sim.Request) {
						if r.ID != reqs[handed].ID {
							t.Errorf("handoff %d: got request %d, want %d (stamped order broken)",
								handed, r.ID, reqs[handed].ID)
						}
						handed++
						e.Enqueue(r)
					})
					e.Flush()
					if handed != len(reqs) {
						t.Fatalf("handed off %d of %d requests", handed, len(reqs))
					}

					if batch == 0 {
						// Immediate mode must match the sequential
						// simulator bit for bit.
						for i, r := range reqs {
							veh, ok := e.Assignment(r.ID)
							if !ok {
								t.Fatalf("request %d never dispatched", r.ID)
							}
							if veh != want[i] {
								t.Fatalf("request %d assigned to %d, sequential chose %d", r.ID, veh, want[i])
							}
						}
					} else {
						// Batch mode must match the direct single-producer
						// Enqueue feed bit for bit.
						for _, r := range reqs {
							veh, ok := e.Assignment(r.ID)
							if !ok {
								t.Fatalf("request %d never dispatched", r.ID)
							}
							if veh != wantBatch[r.ID] {
								t.Fatalf("request %d assigned to %d, direct batch feed chose %d",
									r.ID, veh, wantBatch[r.ID])
							}
						}
					}
					m := gw.Metrics()
					if m.Admitted != len(reqs) || m.Shed() != 0 {
						t.Fatalf("admitted=%d shed=%d, want %d/0", m.Admitted, m.Shed(), len(reqs))
					}
					if m.IngressQueuePeak == 0 || m.IngressQueuePeak > 8 {
						t.Fatalf("queue peak %d outside (0, depth]", m.IngressQueuePeak)
					}
					if err := e.Drain(); err != nil {
						t.Fatal(err)
					}
					if err := e.CheckInvariants(); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// TestIngressSequentialSink: the gateway can front the sequential
// simulator too — multi-producer ingest over a single-threaded matcher —
// with the same bit-identical outcome.
func TestIngressSequentialSink(t *testing.T) {
	g, factory, reqs := testWorld(t, 60)

	seq, err := sim.New(baseConfig(g, factory))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int, len(reqs))
	for i, r := range reqs {
		_, want[i] = seq.Submit(r)
	}

	gated, err := sim.New(baseConfig(g, factory))
	if err != nil {
		t.Fatal(err)
	}
	gw := New(Config{Queues: 4, Depth: 16})
	go feed(gw, reqs, 4)
	i := 0
	gw.Drain(func(r sim.Request) {
		if _, veh := gated.Submit(r); veh != want[i] {
			t.Errorf("request %d assigned to %d, direct feed chose %d", r.ID, veh, want[i])
		}
		i++
	})
	if i != len(reqs) {
		t.Fatalf("handed off %d of %d", i, len(reqs))
	}
}

// TestShedOldest: with a shedding queue and no drain running, pushing past
// capacity evicts the oldest entries and counts them; the survivors drain
// in stamped order.
func TestShedOldest(t *testing.T) {
	gw := New(Config{Queues: 1, Depth: 4, Policy: ShedOldest})
	p := gw.Producers(1)[0]
	const total = 10
	for i := 0; i < total; i++ {
		if !p.Submit(sim.Request{ID: int64(i), Time: float64(i)}) {
			t.Fatalf("shed-oldest refused submission %d", i)
		}
	}
	p.Close()
	var got []int64
	gw.Drain(func(r sim.Request) { got = append(got, r.ID) })
	m := gw.Metrics()
	if m.ShedOverflow != total-4 {
		t.Fatalf("ShedOverflow=%d, want %d", m.ShedOverflow, total-4)
	}
	if m.Admitted != 4 {
		t.Fatalf("Admitted=%d, want 4", m.Admitted)
	}
	want := []int64{6, 7, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("drained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drained %v, want %v (newest survive, stamped order)", got, want)
		}
	}
}

// TestDeadlineShedNeverHandsOffBlown: under ShedDeadline, no request whose
// waiting-time window is already blown (by the gateway's logical clock)
// may reach the sink — the acceptance criterion for deadline shedding —
// while fresh requests pass through and the sheds are counted.
func TestDeadlineShedNeverHandsOffBlown(t *testing.T) {
	const wait = 600
	gw := New(Config{Queues: 2, Depth: 64, Policy: ShedDeadline, WaitSeconds: wait})
	ps := gw.Producers(2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		// A fast feed that advances the logical clock far ahead.
		for i := 0; i < 50; i++ {
			ps[0].Submit(sim.Request{ID: int64(i), Time: float64(i) * 100})
		}
		ps[0].Close()
	}()
	go func() {
		defer wg.Done()
		// A laggard whose requests are generated early but submitted as
		// the clock races past their window.
		for i := 0; i < 50; i++ {
			ps[1].Submit(sim.Request{ID: int64(1000 + i), Time: float64(i) * 2})
		}
		ps[1].Close()
	}()
	// Queue capacity (2 × 64) exceeds the 100 submissions, so nothing
	// blocks; finishing the producers first makes the logical clock final
	// and the handoff-lag assertion exact.
	wg.Wait()
	handed := 0
	gw.Drain(func(r sim.Request) {
		handed++
		if lag := gw.Now() - r.Time; lag > wait {
			t.Errorf("request %d handed off %v seconds late (window %v)", r.ID, lag, float64(wait))
		}
	})
	m := gw.Metrics()
	if m.Admitted != handed {
		t.Fatalf("Admitted=%d but sink saw %d", m.Admitted, handed)
	}
	if m.Admitted+m.ShedDeadline != 100 {
		t.Fatalf("admitted %d + shed %d != 100 submissions", m.Admitted, m.ShedDeadline)
	}
	if m.ShedDeadline == 0 {
		t.Fatal("laggard stream should have shed something")
	}
	if m.Admitted == 0 {
		t.Fatal("fresh stream should have been admitted")
	}
}

// TestDeadlinePerRequestOverride: a request's own WaitSeconds overrides
// the fleet default in the deadline check.
func TestDeadlinePerRequestOverride(t *testing.T) {
	gw := New(Config{Queues: 1, Depth: 8, Policy: ShedDeadline, WaitSeconds: 10000})
	ps := gw.Producers(2)
	ps[0].Submit(sim.Request{ID: 0, Time: 5000}) // advances the clock
	// Fleet window (10000) would admit this 4999-second-late request from
	// the second producer, but its personal 60-second window is long blown.
	if ps[1].Submit(sim.Request{ID: 1, Time: 1, WaitSeconds: 60}) {
		t.Fatal("blown per-request window was admitted")
	}
	ps[0].Close()
	ps[1].Close()
	gw.Drain(func(sim.Request) {})
	if m := gw.Metrics(); m.ShedDeadline != 1 || m.Admitted != 1 {
		t.Fatalf("admitted=%d shedDeadline=%d, want 1/1", m.Admitted, m.ShedDeadline)
	}
}

// TestProducerClampsTime: a producer's out-of-order event time is clamped
// to its previous one, like the engines clamp against their clock.
func TestProducerClampsTime(t *testing.T) {
	gw := New(Config{Queues: 1, Depth: 8})
	p := gw.Producers(1)[0]
	p.Submit(sim.Request{ID: 0, Time: 100})
	p.Submit(sim.Request{ID: 1, Time: 50}) // clamped to 100
	p.Close()
	var times []float64
	gw.Drain(func(r sim.Request) { times = append(times, r.Time) })
	if len(times) != 2 || times[0] != 100 || times[1] != 100 {
		t.Fatalf("times=%v, want [100 100]", times)
	}
}

// TestStampedOrderTotal: equal event times are ordered by request ID no
// matter which producer or queue they arrived through.
func TestStampedOrderTotal(t *testing.T) {
	gw := New(Config{Queues: 3, Depth: 8})
	ps := gw.Producers(2)
	// Interleave equal-time submissions across producers, IDs reversed
	// relative to submission order.
	ps[0].Submit(sim.Request{ID: 5, Time: 1})
	ps[1].Submit(sim.Request{ID: 2, Time: 1})
	ps[0].Submit(sim.Request{ID: 9, Time: 1})
	ps[1].Submit(sim.Request{ID: 0, Time: 1})
	ps[0].Close()
	ps[1].Close()
	var got []int64
	gw.Drain(func(r sim.Request) { got = append(got, r.ID) })
	want := []int64{0, 2, 5, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drained %v, want %v", got, want)
		}
	}
}

// TestStampHeapOrdering pins the hand-rolled heap's property directly:
// pushing adversarially ordered stamps (duplicate times, duplicate
// (time, ID) pairs, interleaved pushes and pops) always pops in
// nondecreasing stamped order.
func TestStampHeapOrdering(t *testing.T) {
	state := int64(99)
	next := func(mod int64) int64 {
		state = state*6364136223846793005 + 1442695040888963407
		v := (state >> 33) % mod
		if v < 0 {
			v += mod
		}
		return v
	}
	// pop must return a minimum of the heap's current contents: no
	// remaining element may precede it in stamped order.
	popMin := func(h *stampHeap) stamped {
		t.Helper()
		top := h.pop()
		for _, s := range *h {
			if s.before(top) {
				t.Fatalf("pop returned %+v with smaller %+v still in heap", top, s)
			}
		}
		return top
	}
	var h stampHeap
	popped := 0
	for i := 0; i < 2000; i++ {
		// Small value ranges force heavy time and (time, ID) collisions so
		// every tiebreak level of stamped.before is exercised.
		h.push(stamped{
			req: sim.Request{ID: next(7), Time: float64(next(5))},
			seq: uint64(i),
		})
		if next(3) == 0 {
			popMin(&h)
			popped++
		}
	}
	// The final drain is what Drain's release loop runs; it must come out
	// in nondecreasing stamped order.
	prev, ok := stamped{}, false
	for h.Len() > 0 {
		s := popMin(&h)
		popped++
		if ok && s.before(prev) {
			t.Fatalf("drain out of order: %+v after %+v", s, prev)
		}
		prev, ok = s, true
	}
	if popped != 2000 {
		t.Fatalf("popped %d stamps, pushed 2000", popped)
	}
}

// TestGatewayBackpressureStress drives many producers through tiny queues
// with the blocking policy so the full producer-block/drain-free cycle
// runs under the race detector.
func TestGatewayBackpressureStress(t *testing.T) {
	const producers, perProducer = 8, 200
	gw := New(Config{Queues: 4, Depth: 2, Policy: Block})
	reqs := make([]sim.Request, producers*perProducer)
	for i := range reqs {
		reqs[i] = sim.Request{ID: int64(i), Time: float64(i) / 10}
	}
	go feed(gw, reqs, producers)
	seen := make(map[int64]bool, len(reqs))
	last := math.Inf(-1)
	gw.Drain(func(r sim.Request) {
		if r.Time < last {
			t.Errorf("handoff went back in time: %v after %v", r.Time, last)
		}
		last = r.Time
		if seen[r.ID] {
			t.Errorf("request %d handed off twice", r.ID)
		}
		seen[r.ID] = true
	})
	if len(seen) != len(reqs) {
		t.Fatalf("handed off %d of %d", len(seen), len(reqs))
	}
	if m := gw.Metrics(); m.Shed() != 0 {
		t.Fatalf("blocking policy shed %d requests", m.Shed())
	}
}

// TestParsePolicy covers the CLI spellings.
func TestParsePolicy(t *testing.T) {
	for _, p := range []Policy{Block, ShedOldest, ShedDeadline, Adaptive} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestShardIndexKeying: the gateway keys queues with dispatch's partition
// function, including negative IDs.
func TestShardIndexKeying(t *testing.T) {
	if dispatch.ShardIndex(7, 4) != 3 {
		t.Fatalf("ShardIndex(7,4)=%d", dispatch.ShardIndex(7, 4))
	}
	if got := dispatch.ShardIndex(-3, 4); got < 0 || got >= 4 {
		t.Fatalf("ShardIndex(-3,4)=%d out of range", got)
	}
	// A negative-ID request must not panic the queue lookup.
	gw := New(Config{Queues: 4, Depth: 4})
	p := gw.Producers(1)[0]
	p.Submit(sim.Request{ID: -3, Time: 1})
	p.Close()
	n := 0
	gw.Drain(func(sim.Request) { n++ })
	if n != 1 {
		t.Fatalf("drained %d, want 1", n)
	}
}

// Compile-time check: the dispatch engine is a valid gateway sink on both
// paths (Enqueue covers immediate and batch modes).
var _ interface{ Enqueue(sim.Request) } = (*dispatch.Engine)(nil)

// TestIngressEquivalenceTraced: lifecycle tracing and live counters record
// but never branch, so a fully instrumented pipeline (traced gateway +
// traced engine) must produce assignments bit-identical to the untraced
// run at every producers × workers combination — and the trace must
// actually contain the events it claims to capture.
func TestIngressEquivalenceTraced(t *testing.T) {
	g, factory, reqs := testWorld(t, 120)

	// Untraced sequential baseline.
	seq, err := sim.New(baseConfig(g, factory))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int, len(reqs))
	for i, r := range reqs {
		matched, veh := seq.Submit(r)
		if !matched {
			veh = -1
		}
		want[i] = veh
	}

	for _, producers := range []int{1, 4} {
		for _, workers := range []int{1, 4} {
			name := fmt.Sprintf("producers=%d/workers=%d", producers, workers)
			t.Run(name, func(t *testing.T) {
				tracer := obs.NewTracer(1 << 16) // hold every event: no drops
				live := &obs.Live{}
				cfg := baseConfig(g, factory)
				cfg.Workers = workers
				cfg.Shards = workers
				cfg.Trace = tracer
				cfg.Live = live
				e, err := dispatch.New(cfg, factory)
				if err != nil {
					t.Fatal(err)
				}
				defer e.Close()

				gw := New(Config{
					Queues: e.Shards(), Depth: 8, Policy: Block,
					Trace: tracer, Live: live,
				})
				go feed(gw, reqs, producers)
				gw.Drain(func(r sim.Request) { e.Enqueue(r) })

				for i, r := range reqs {
					veh, ok := e.Assignment(r.ID)
					if !ok {
						t.Fatalf("request %d never dispatched", r.ID)
					}
					if veh != want[i] {
						t.Fatalf("request %d assigned to %d, untraced sequential chose %d",
							r.ID, veh, want[i])
					}
				}

				// The trace must hold the full lifecycle: every request was
				// admitted, queued, released, trialed, and resolved.
				var buf bytes.Buffer
				written, dropped, err := tracer.Drain(&buf)
				if err != nil {
					t.Fatal(err)
				}
				if dropped != 0 {
					t.Fatalf("%d events dropped with oversized rings", dropped)
				}
				kinds := make(map[string]int)
				for _, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
					var ev struct {
						Event string `json:"event"`
					}
					if err := json.Unmarshal(line, &ev); err != nil {
						t.Fatalf("bad trace line %q: %v", line, err)
					}
					kinds[ev.Event]++
				}
				for _, k := range []string{"admitted", "queued", "released"} {
					if kinds[k] != len(reqs) {
						t.Fatalf("%d %q events, want %d (kinds: %v)", kinds[k], k, len(reqs), kinds)
					}
				}
				// Every shard emits one fan-out trial event per request.
				if kinds["trialed"] != len(reqs)*workers {
					t.Fatalf("%d \"trialed\" events, want %d (one per shard per request)",
						kinds["trialed"], len(reqs)*workers)
				}
				if kinds["matched"]+kinds["rejected"] != len(reqs) {
					t.Fatalf("matched+rejected = %d, want %d", kinds["matched"]+kinds["rejected"], len(reqs))
				}
				if written != sum(kinds) {
					t.Fatalf("written=%d but counted %d", written, sum(kinds))
				}

				// Live counters must agree with the ground truth.
				snap := live.Snapshot()
				if snap.Admitted != int64(len(reqs)) || snap.Requests != int64(len(reqs)) {
					t.Fatalf("live admitted=%d requests=%d, want %d", snap.Admitted, snap.Requests, len(reqs))
				}
				if int(snap.Matched) != kinds["matched"] || int(snap.Rejected) != kinds["rejected"] {
					t.Fatalf("live matched=%d rejected=%d, trace says %d/%d",
						snap.Matched, snap.Rejected, kinds["matched"], kinds["rejected"])
				}
			})
		}
	}
}

func sum(m map[string]int) (n int) {
	for _, v := range m {
		n += v
	}
	return n
}
