package ingest

import "sync"

// queue is one bounded admission queue: multi-producer (any producer whose
// requests key to this shard), single-consumer (the drainer). A mutexed
// ring buffer — producers contend only with producers mapped to the same
// shard and with the drainer's sweep, which is the point of keying queues
// by dispatch.ShardIndex instead of funnelling every producer through one
// lock.
type queue struct {
	mu      sync.Mutex
	notFull sync.Cond
	buf     []stamped
	head    int // index of the oldest element
	n       int // occupied count

	peak     int // deepest the queue ever got
	overflow int // shed-oldest evictions
}

func newQueue(depth int) *queue {
	q := &queue{buf: make([]stamped, depth)}
	q.notFull.L = &q.mu
	return q
}

// push enqueues s. When the ring is full: with shedOldest it evicts the
// oldest entry (FIFO head, counted as overflow) to make room; otherwise it
// blocks until the drainer frees space. It reports whether an eviction
// happened.
func (q *queue) push(s stamped, shedOldest bool) (evicted bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == len(q.buf) {
		if shedOldest {
			q.buf[q.head] = stamped{}
			q.head = (q.head + 1) % len(q.buf)
			q.n--
			q.overflow++
			evicted = true
			break
		}
		q.notFull.Wait()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = s
	q.n++
	if q.n > q.peak {
		q.peak = q.n
	}
	return evicted
}

// drainInto moves every queued entry into the drainer's heap and frees any
// blocked producers.
func (q *queue) drainInto(h *stampHeap) {
	q.mu.Lock()
	for ; q.n > 0; q.n-- {
		h.push(q.buf[q.head])
		q.buf[q.head] = stamped{}
		q.head = (q.head + 1) % len(q.buf)
	}
	q.mu.Unlock()
	q.notFull.Broadcast()
}

// len reports the current depth.
func (q *queue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// stats reports the peak depth and shed-oldest eviction count.
func (q *queue) stats() (peak, overflow int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.peak, q.overflow
}
