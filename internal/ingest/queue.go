package ingest

import "sync"

// queue is one bounded admission queue: multi-producer (any producer whose
// requests key to this shard), single-consumer (the drainer). A mutexed
// ring buffer — producers contend only with producers mapped to the same
// shard and with the drainer's sweep, which is the point of keying queues
// by dispatch.ShardIndex instead of funnelling every producer through one
// lock.
type queue struct {
	mu      sync.Mutex
	notFull sync.Cond
	buf     []stamped
	head    int // index of the oldest element
	n       int // occupied count

	peak     int   // deepest the queue ever got
	overflow int   // shed-oldest evictions
	evicted  []int // evictions by victim's producer index
	rr       int32 // rotating tie-break cursor for fair eviction
}

func newQueue(depth int) *queue {
	if depth < 1 {
		// A zero-capacity queue can admit nothing and would deadlock the
		// eviction loop; one slot is the smallest queue that can make
		// progress.
		depth = 1
	}
	q := &queue{buf: make([]stamped, depth)}
	q.notFull.L = &q.mu
	return q
}

// push enqueues s. When the ring is full: with evict it sheds one queued
// entry (fair victim selection, see evictLocked) to make room; otherwise
// it blocks until the drainer frees space. It returns the evicted entry
// so the caller can account and trace the shed.
func (q *queue) push(s stamped, evict bool) (evicted bool, victim stamped) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == len(q.buf) {
		if evict {
			victim = q.evictLocked(s.prod)
			q.overflow++
			evicted = true
			break
		}
		q.notFull.Wait()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = s
	q.n++
	if q.n > q.peak {
		q.peak = q.n
	}
	return evicted, victim
}

// evictLocked removes and returns one entry to make room, fairly across
// producers: the victim is the oldest entry of whichever producer holds
// the most slots in this queue, so a flooding producer evicts its own
// backlog before it can touch a polite producer's. Ties prefer the
// incoming producer (self-eviction keeps the single-producer behavior
// identical to plain shed-oldest), then rotate through the remaining
// tied producers so repeated ties don't always pick the same one.
// Requires q.mu held and q.n > 0.
func (q *queue) evictLocked(incoming int32) stamped {
	// Occupancy census. Producer ids are small registration indices, so
	// a grow-on-demand slice is the whole data structure; the scan is
	// O(depth) under a lock already paid for by the push.
	maxID := incoming
	for k := 0; k < q.n; k++ {
		if p := q.buf[(q.head+k)%len(q.buf)].prod; p > maxID {
			maxID = p
		}
	}
	counts := make([]int, maxID+1)
	if len(q.evicted) < int(maxID+1) {
		q.evicted = append(q.evicted, make([]int, int(maxID+1)-len(q.evicted))...)
	}
	maxN := 0
	for k := 0; k < q.n; k++ {
		p := q.buf[(q.head+k)%len(q.buf)].prod
		counts[p]++
		if counts[p] > maxN {
			maxN = counts[p]
		}
	}
	victim := int32(-1)
	if int(incoming) < len(counts) && counts[incoming] == maxN {
		victim = incoming
	} else {
		nProd := int32(len(counts))
		for off := int32(0); off < nProd; off++ {
			p := (q.rr + off) % nProd
			if counts[p] == maxN {
				victim = p
				q.rr = (p + 1) % nProd
				break
			}
		}
	}
	for k := 0; k < q.n; k++ {
		idx := (q.head + k) % len(q.buf)
		if q.buf[idx].prod != victim {
			continue
		}
		out := q.buf[idx]
		// Shift the entries older than the victim forward one slot and
		// advance head past them, preserving FIFO order of the rest.
		for j := k; j > 0; j-- {
			cur := (q.head + j) % len(q.buf)
			prev := (q.head + j - 1) % len(q.buf)
			q.buf[cur] = q.buf[prev]
		}
		q.buf[q.head] = stamped{}
		q.head = (q.head + 1) % len(q.buf)
		q.n--
		q.evicted[victim]++
		return out
	}
	// Unreachable: maxN > 0 guarantees the victim has an entry.
	panic("ingest: fair eviction found no victim entry")
}

// drainInto moves every queued entry into the drainer's heap and frees any
// blocked producers.
func (q *queue) drainInto(h *stampHeap) {
	q.mu.Lock()
	for ; q.n > 0; q.n-- {
		h.push(q.buf[q.head])
		q.buf[q.head] = stamped{}
		q.head = (q.head + 1) % len(q.buf)
	}
	q.mu.Unlock()
	q.notFull.Broadcast()
}

// len reports the current depth.
func (q *queue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// stats reports the peak depth and shed-oldest eviction count.
func (q *queue) stats() (peak, overflow int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.peak, q.overflow
}

// evictions reports the per-producer eviction counts (victim's index).
func (q *queue) evictions() []int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]int(nil), q.evicted...)
}
