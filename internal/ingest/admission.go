package ingest

import (
	"time"

	"repro/internal/obs"
)

// Adaptive-admission controller tuning. Levels are per mille.
const (
	// ctrlMinSamples release observations (or ctrlMaxSweeps drain
	// sweeps, whichever first — a starved drainer still has to react to
	// backlog) between adjustments.
	ctrlMinSamples = 32
	ctrlMaxSweeps  = 64
	// Additive increase per hot evaluation; decrease is multiplicative
	// (halving), the classic AIMD shape: react fast on overload onset,
	// back off gently so recovery doesn't oscillate.
	ctrlStep  = 50
	ctrlMaxPM = 950
)

// controller is the drainer-owned half of Adaptive admission. It watches
// two signals — the wall-clock gateway residence of recent handoffs
// (p99 over a sliding window of ctrlMinSamples+ observations) and the
// post-sweep backlog — and steers the shed level producers apply:
//
//	          p99 > SLO  or  backlog > capacity          → raise (+step)
//	p99 < SLO/2 and backlog < capacity/4 (both calm)     → decay (halve)
//	                 anywhere between                    → hold
//
// The dead band between SLO/2 and SLO (and between the backlog marks)
// is the hysteresis that prevents flapping: the level only moves when
// the system is decisively hot or decisively calm, and transitions
// between the shedding and open states are counted for observability.
//
// Single-writer: only the drain goroutine touches it; the resulting
// level crosses to producers through Gateway.shedPM.
type controller struct {
	slo       time.Duration
	hiBacklog int
	loBacklog int

	win    *obs.Histogram // residence observations since the last adjust
	sweeps int

	pm       int64
	shedding bool

	peakPM      int64
	transitions int
}

func newController(slo time.Duration, capacity int) *controller {
	if slo <= 0 {
		slo = 500 * time.Millisecond
	}
	if capacity < 4 {
		capacity = 4
	}
	return &controller{
		slo:       slo,
		hiBacklog: capacity,
		loBacklog: capacity / 4,
		win:       obs.NewHistogram(),
	}
}

// observe records one handoff's wall-clock gateway residence (released
// and wall-SLO-shed requests both count — the blown ones are the
// overload evidence).
func (c *controller) observe(wait time.Duration) { c.win.Record(wait.Nanoseconds()) }

// maybeAdjust runs at the end of every drain sweep with the post-sweep
// backlog; it re-evaluates the shed level once enough evidence has
// accumulated and reports whether the level changed.
func (c *controller) maybeAdjust(backlog int) (pm int64, changed bool) {
	c.sweeps++
	if c.win.Count() < ctrlMinSamples && c.sweeps < ctrlMaxSweeps {
		return c.pm, false
	}
	samples := c.win.Count()
	p99 := time.Duration(c.win.Quantile(0.99))
	*c.win = obs.Histogram{}
	c.sweeps = 0

	old := c.pm
	hot := (samples > 0 && p99 > c.slo) || backlog > c.hiBacklog
	calm := (samples == 0 || p99 < c.slo/2) && backlog < c.loBacklog
	switch {
	case hot:
		c.pm += ctrlStep
		if c.pm > ctrlMaxPM {
			c.pm = ctrlMaxPM
		}
		if !c.shedding {
			c.shedding = true
			c.transitions++
		}
	case calm && c.pm > 0:
		c.pm /= 2
		if c.pm < ctrlStep/2 {
			c.pm = 0
		}
		if c.pm == 0 && c.shedding {
			c.shedding = false
			c.transitions++
		}
	}
	if c.pm > c.peakPM {
		c.peakPM = c.pm
	}
	return c.pm, c.pm != old
}
