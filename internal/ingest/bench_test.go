package ingest

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/sim"
)

// BenchmarkIngressFanIn measures the gateway alone — N producers pushing a
// pre-built stream through small per-shard queues into a no-op sink — so
// queue contention and the stamped-order drain are isolated from matching
// cost. Run under -race in CI so the fan-in path is exercised by the
// detector on every push.
func BenchmarkIngressFanIn(b *testing.B) {
	const total = 4096
	reqs := make([]sim.Request, total)
	for i := range reqs {
		reqs[i] = sim.Request{ID: int64(i), Time: float64(i) / 50}
	}
	for _, producers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("producers=%d", producers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gw := New(Config{Queues: 4, Depth: 64, Policy: Block})
				var wg sync.WaitGroup
				wg.Add(1)
				go func() {
					defer wg.Done()
					feed(gw, reqs, producers)
				}()
				n := 0
				gw.Drain(func(sim.Request) { n++ })
				wg.Wait()
				if n != total {
					b.Fatalf("handed off %d of %d", n, total)
				}
			}
			b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "req/s")
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
		})
	}
}
