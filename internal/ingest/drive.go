package ingest

import (
	"sync"

	"repro/internal/sim"
)

// Source is a pull-based request stream, time-sorted, not required to be
// safe for concurrent use — Drive pulls it from one goroutine.
// workload.Generator implements it; SliceSource adapts a prepared slice.
type Source interface {
	Next() (sim.Request, bool)
}

// SliceSource streams a prepared request slice.
type SliceSource []sim.Request

// Next pops the stream head.
func (s *SliceSource) Next() (sim.Request, bool) {
	if len(*s) == 0 {
		return sim.Request{}, false
	}
	req := (*s)[0]
	*s = (*s)[1:]
	return req, true
}

// Drive is the open-loop load driver: it pulls src sequentially — so the
// stream content is deterministic for a fixed source regardless of
// producer count — and fans the requests out round-robin to `producers`
// concurrent Submit goroutines, closing every producer when the stream
// ends. Each producer's sub-stream inherits the source's time order, which
// is the per-producer monotonicity Submit requires.
//
// Drive blocks until every request is submitted and every producer is
// closed; run it concurrently with gw.Drain:
//
//	go ingest.Drive(gw, src, 8)
//	gw.Drain(func(r sim.Request) { eng.Enqueue(r) })
func Drive(gw *Gateway, src Source, producers int) {
	if producers < 1 {
		producers = 1
	}
	handles := gw.Producers(producers)
	chans := make([]chan sim.Request, producers)
	for i := range chans {
		chans[i] = make(chan sim.Request, 64)
	}
	var wg sync.WaitGroup
	for i, p := range handles {
		wg.Add(1)
		go func(ch chan sim.Request, p *Producer) {
			defer wg.Done()
			for req := range ch {
				p.Submit(req)
			}
			p.Close()
		}(chans[i], p)
	}
	for i := 0; ; i++ {
		req, ok := src.Next()
		if !ok {
			break
		}
		chans[i%producers] <- req
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
}
