package ingest

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/faults"
	"repro/internal/sim"
)

// Source is a pull-based request stream, time-sorted, not required to be
// safe for concurrent use — Drive pulls it from one goroutine.
// workload.Generator implements it; SliceSource adapts a prepared slice.
type Source interface {
	Next() (sim.Request, bool)
}

// SliceSource streams a prepared request slice.
type SliceSource []sim.Request

// Next pops the stream head.
func (s *SliceSource) Next() (sim.Request, bool) {
	if len(*s) == 0 {
		return sim.Request{}, false
	}
	req := (*s)[0]
	*s = (*s)[1:]
	return req, true
}

// DriveStats accounts for every request Drive pulled from its source, so
// callers (and the faults invariant checker) can reconcile the gateway's
// admission counts against what actually entered the system.
type DriveStats struct {
	Sourced   int // requests pulled from the source
	Submitted int // Producer.Submit calls made (admitted or shed at admission)
	Dropped   int // lost to injected crashes or panics before admission
	Discarded int // routed to a producer that had already died by panic
}

// Drive is the open-loop load driver: it pulls src sequentially — so the
// stream content is deterministic for a fixed source regardless of
// producer count — and fans the requests out round-robin to `producers`
// concurrent Submit goroutines, closing every producer when the stream
// ends. Each producer's sub-stream inherits the source's time order, which
// is the per-producer monotonicity Submit requires.
//
// Drive blocks until every request is submitted and every producer is
// closed; run it concurrently with gw.Drain:
//
//	go func() { errc <- ingest.Drive(gw, src, 8) }()
//	gw.Drain(func(r sim.Request) { eng.Enqueue(r) })
//
// A producer goroutine that panics (a buggy Source-side callback, or an
// injected fault) does not deadlock the pipeline: its watermark is
// released, the requests already routed to it are discarded, and the
// panic surfaces here as an error after the remaining producers finish.
func Drive(gw *Gateway, src Source, producers int) error {
	_, err := DriveInjected(gw, src, producers, nil)
	return err
}

// DriveInjected is Drive with a fault-injection seam: each producer
// goroutine consults its faults.ProducerHook before every submission
// (timestamp skew/collapse, crash drops, injected panics). A nil
// injector — or one with an empty plan — is the pass-through
// configuration, byte-identical in behavior to Drive.
func DriveInjected(gw *Gateway, src Source, producers int, inj *faults.Injector) (DriveStats, error) {
	if producers < 1 {
		producers = 1
	}
	handles := gw.Producers(producers)
	chans := make([]chan sim.Request, producers)
	for i := range chans {
		chans[i] = make(chan sim.Request, 64)
	}
	var submitted, dropped, discarded atomic.Int64
	errc := make(chan error, producers)
	var wg sync.WaitGroup
	for i, p := range handles {
		wg.Add(1)
		go func(idx int, ch chan sim.Request, p *Producer, hook *faults.ProducerHook) {
			defer wg.Done()
			defer func() {
				r := recover()
				if r == nil {
					return
				}
				errc <- fmt.Errorf("ingest: producer %d panicked: %v", idx, r)
				// Release this producer's watermark so the drain can
				// finish on the survivors' submissions, then discard
				// whatever the router had already queued for us —
				// otherwise the round-robin send blocks forever on a
				// reader that no longer exists.
				p.Close()
				for range ch {
					discarded.Add(1)
				}
			}()
			for req := range ch {
				t, act := hook.BeforeSubmit(req.Time)
				switch act {
				case faults.ActionDrop:
					dropped.Add(1)
					p.Skip(t)
				case faults.ActionPanic:
					// The triggering request is lost with the producer;
					// account for it before unwinding.
					dropped.Add(1)
					panic(fmt.Sprintf("injected producer fault at request %d", req.ID))
				default:
					req.Time = t
					p.Submit(req)
					submitted.Add(1)
				}
			}
			p.Close()
		}(i, chans[i], p, inj.Producer())
	}
	var stats DriveStats
	for i := 0; ; i++ {
		req, ok := src.Next()
		if !ok {
			break
		}
		stats.Sourced++
		chans[i%producers] <- req
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	close(errc)
	var errs []error
	for err := range errc {
		errs = append(errs, err)
	}
	stats.Submitted = int(submitted.Load())
	stats.Dropped = int(dropped.Load())
	stats.Discarded = int(discarded.Load())
	return stats, errors.Join(errs...)
}
