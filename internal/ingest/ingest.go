// Package ingest is the concurrent front door of the dispatcher: a
// multi-producer request gateway that sits between many request sources
// (API handlers, replayed city feeds, the internal/workload generator) and
// a single-consumer matching engine (dispatch.Engine or sim.Simulator),
// whose exported methods are driven from one goroutine.
//
// Producers submit into per-shard bounded MPSC queues keyed by the same
// partitioning function the dispatch engine uses (dispatch.ShardIndex), so
// a request's queue affinity follows the fleet partition. An admission
// stage stamps every arrival with a logical clock — the request's own
// event time, its unique ID, and a Lamport-style admission tick — which
// totally orders concurrent arrivals no matter how the producer goroutines
// interleave. The drain protocol releases admitted requests to the engine
// in stamped order behind a producer watermark: a request is handed off
// only once every open producer has advanced past its event time, so the
// sequence the engine sees is exactly the (Time, ID)-sorted single-producer
// sequence, and with shedding off the resulting assignments are
// bit-identical to feeding the engine directly (TestIngressEquivalence
// enforces this at 1/4/8 producers × 1/4/8 workers). Note the tie rule:
// requests with equal event times are released in ID order, so a direct
// feed is equivalent only if it also orders ties by ID — trace.ReadCSV and
// the workload generator both produce (Time, ID)-sorted streams.
//
// Backpressure is configurable per Config.Policy: Block stalls a producer
// on a full queue (the lossless default), ShedOldest evicts the oldest
// queued request to admit the new one (per-producer fair: the victim comes
// from the producer occupying the most queue slots, so one flooding
// producer cannot evict a polite one's requests), ShedDeadline additionally
// refuses — at admission and again at handoff — any request whose
// waiting-time window has already been blown by gateway lag, so the engine
// never spends trial insertions on a rider the service guarantee has
// already lost. Adaptive replaces the fixed queue-depth backpressure with
// an SLO-driven admission controller: the drainer measures the p99 gateway
// residence and the matching backlog, and steers a shed probability
// (per-mille, AIMD with hysteresis bands) that producers apply at
// admission, so goodput degrades smoothly under overload instead of
// cliff-diving when queues fill.
package ingest

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dispatch"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Policy selects what a producer does when its target queue is full, and
// whether deadline-blown requests are shed.
type Policy int

const (
	// Block stalls the producer until the drain frees queue space. No
	// request is ever dropped; this is the policy under which the gateway
	// is assignment-equivalent to the single-producer path.
	Block Policy = iota
	// ShedOldest evicts the oldest request in the full queue and admits
	// the new one, bounding producer latency at the price of dropped
	// riders (counted as ShedOverflow).
	ShedOldest
	// ShedDeadline blocks on overflow like Block, but refuses any request
	// whose waiting-time window is already blown by gateway lag — at
	// admission, and again at handoff for requests the window expired on
	// while they were queued (counted as ShedDeadline).
	ShedDeadline
	// Adaptive is SLO-driven admission: producers shed incoming requests
	// with a probability the drainer's controller steers from the live
	// p99 gateway residence and matching backlog (counted as
	// ShedAdaptive), full queues evict fairly like ShedOldest (counted
	// as ShedOverflow), blown simulated-time windows are refused like
	// ShedDeadline (counted as ShedDeadline), and requests whose
	// wall-clock residence exceeded Config.WallSLO are shed at handoff
	// (counted as ShedAdaptive) — so everything the engine receives is
	// still inside both its service-guarantee window and the operator's
	// latency SLO.
	Adaptive
)

func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case ShedOldest:
		return "shed-oldest"
	case ShedDeadline:
		return "deadline"
	case Adaptive:
		return "adaptive"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy maps the CLI spellings (block, shed-oldest, deadline,
// adaptive) to a Policy.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range []Policy{Block, ShedOldest, ShedDeadline, Adaptive} {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("ingest: unknown shed policy %q", s)
}

// Config parameterizes a Gateway. Zero values select the defaults noted
// per field.
type Config struct {
	// Queues is the number of admission queues; pass the engine's shard
	// count so queue affinity follows the fleet partition (default 1).
	Queues int
	// Depth is each queue's capacity in requests (default 256).
	Depth int
	// Policy is the backpressure policy (default Block).
	Policy Policy
	// WaitSeconds is the fleet-default waiting-time window used by
	// ShedDeadline for requests without a per-request override
	// (default 600, matching sim.Config).
	WaitSeconds float64
	// WallSLO is the wall-clock gateway-residence target the Adaptive
	// policy steers toward: the controller raises the shed probability
	// while the measured p99 residence exceeds it, and requests that
	// individually blow it are shed at handoff (default 500ms; ignored
	// by the other policies).
	WallSLO time.Duration

	// Trace, when non-nil, captures request lifecycle events (admitted,
	// queued, released, shed) into per-producer and drainer ring buffers.
	// Tracing changes no control flow: assignments stay bit-identical to
	// an untraced run (TestIngressEquivalenceTraced).
	Trace *obs.Tracer
	// Live, when non-nil, receives atomically readable progress counters
	// (admitted, shed, backlog) for mid-run observation.
	Live *obs.Live
	// SLO, when non-nil, receives one outcome per request the gateway
	// settles against the wall-clock SLO: good for releases within
	// WallSLO, bad for late releases, wall-SLO handoff sheds, and
	// adaptive admission sheds. Simulated-time deadline sheds and
	// overflow evictions are deliberately excluded — they are capacity
	// policy, not latency-contract outcomes.
	SLO *obs.SLOTracker
}

func (c Config) withDefaults() Config {
	if c.Queues <= 0 {
		c.Queues = 1
	}
	if c.Depth <= 0 {
		c.Depth = 256
	}
	if c.WaitSeconds == 0 {
		c.WaitSeconds = 600
	}
	if c.WallSLO <= 0 {
		c.WallSLO = 500 * time.Millisecond
	}
	return c
}

// stamped is a request plus its admission stamp. The total order over
// stamps — event time, then request ID, then admission tick — is what the
// drain releases in; (T, ID) is producer-interleaving-independent, and the
// Lamport tick only breaks ties between duplicate (T, ID) pairs so the
// order stays total on adversarial input.
type stamped struct {
	req     sim.Request
	seq     uint64    // Lamport admission tick, unique per admitted request
	wall    time.Time // admission wall time, for the IngressWait metric
	prod    int32     // submitting producer's index, for fair eviction
	admitNs int64     // tracer-epoch admission offset, for the queue_wait span (0 = tracing off)
}

// before reports whether a precedes b in stamped order.
func (a stamped) before(b stamped) bool {
	if a.req.Time != b.req.Time {
		return a.req.Time < b.req.Time
	}
	if a.req.ID != b.req.ID {
		return a.req.ID < b.req.ID
	}
	return a.seq < b.seq
}

// Gateway is the multi-producer request front door. Producers (one handle
// per goroutine) push concurrently; one goroutine drains. The Gateway is
// not reusable after Drain returns.
type Gateway struct {
	cfg    Config
	queues []*queue
	wake   chan struct{} // producer -> drainer nudge, capacity 1

	seq     atomic.Uint64 // Lamport admission clock
	nowBits atomic.Uint64 // float64 bits of the max event time admitted

	mu        sync.Mutex
	producers []*Producer

	// Adaptive-admission shared state: the drainer's controller stores
	// the current shed probability (per mille) and producers read it at
	// admission; the shed counter has both producer writers (admission
	// sheds) and the drainer (wall-SLO handoff sheds).
	shedPM       atomic.Int64
	shedAdaptive atomic.Int64

	// Drainer-owned state; touched only by Drain's goroutine.
	heap         stampHeap
	admitted     int
	ctrl         *controller    // nil unless Policy == Adaptive
	shedDeadline atomic.Int64   // admission-side sheds come from producers
	waitHist     *obs.Histogram // gateway residence wall time, ns
	lagHist      *obs.Histogram // release lag in simulated ms, Now()-req.Time
	drainRing    *obs.Ring      // release/shed lifecycle events (nil = off)
}

// New creates a gateway. The engine it will feed is not bound here; Drain
// takes the handoff sink.
func New(cfg Config) *Gateway {
	cfg = cfg.withDefaults()
	g := &Gateway{
		cfg:       cfg,
		wake:      make(chan struct{}, 1),
		waitHist:  obs.NewHistogram(),
		lagHist:   obs.NewHistogram(),
		drainRing: cfg.Trace.Ring("drain"),
	}
	for i := 0; i < cfg.Queues; i++ {
		g.queues = append(g.queues, newQueue(cfg.Depth))
	}
	if cfg.Policy == Adaptive {
		g.ctrl = newController(cfg.WallSLO, cfg.Queues*cfg.Depth)
	}
	// The drainer's merge heap holds at most one full sweep of every
	// queue; sizing it up front keeps push from growing the backing
	// array request by request on the drain hot path.
	g.heap = make(stampHeap, 0, cfg.Queues*cfg.Depth)
	return g
}

// Queues returns the admission-queue count.
func (g *Gateway) Queues() int { return len(g.queues) }

// Now returns the gateway's logical clock: the highest event time any
// producer has submitted. It only advances, so lateness computed against
// it is a lower bound on a request's true lag.
func (g *Gateway) Now() float64 {
	return math.Float64frombits(g.nowBits.Load())
}

// advanceNow lifts the logical clock to at least t.
func (g *Gateway) advanceNow(t float64) {
	for {
		old := g.nowBits.Load()
		if math.Float64frombits(old) >= t {
			return
		}
		if g.nowBits.CompareAndSwap(old, math.Float64bits(t)) {
			return
		}
	}
}

// window resolves a request's waiting-time budget in seconds.
func (g *Gateway) window(req sim.Request) float64 {
	if req.WaitSeconds > 0 {
		return req.WaitSeconds
	}
	return g.cfg.WaitSeconds
}

// Producers registers n producer handles; each handle is then owned by
// one goroutine. Registration is safe concurrently with Drain — the drain
// releases nothing until at least one producer exists — but every handle
// must be registered before the first producer closes, or the drain may
// finish without it.
func (g *Gateway) Producers(n int) []*Producer {
	g.mu.Lock()
	out := make([]*Producer, n)
	for i := range out {
		p := &Producer{gw: g, id: int32(len(g.producers))}
		p.ring = g.cfg.Trace.Ring(fmt.Sprintf("producer-%d", len(g.producers)))
		p.watermark.Store(math.Float64bits(math.Inf(-1)))
		g.producers = append(g.producers, p)
		out[i] = p
	}
	g.mu.Unlock()
	g.nudge()
	return out
}

// watermarkFloor returns the smallest watermark over all producers — the
// event time below which no further submission can arrive. +Inf once every
// producer has closed; -Inf while any producer has yet to submit, or
// before any producer is registered at all (so a drain that races producer
// registration releases nothing prematurely).
func (g *Gateway) watermarkFloor() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.producers) == 0 {
		return math.Inf(-1)
	}
	floor := math.Inf(1)
	for _, p := range g.producers {
		if w := math.Float64frombits(p.watermark.Load()); w < floor {
			floor = w
		}
	}
	return floor
}

// nudge wakes the drainer without blocking.
func (g *Gateway) nudge() {
	select {
	case g.wake <- struct{}{}:
	default:
	}
}

// Producer is one goroutine's submission handle.
type Producer struct {
	gw        *Gateway
	id        int32         // registration index, carried on stamps
	ring      *obs.Ring     // this producer's lifecycle events (nil = off)
	watermark atomic.Uint64 // float64 bits; monotone, single-writer
	last      float64       // last submitted event time (clamp floor)
	acc       int64         // adaptive-shed error accumulator (per mille)
	started   bool
	closed    bool
}

// Submit admits one request, stamping it into total order and enqueueing
// it on its shard queue. Event times must be nondecreasing per producer;
// an out-of-order time is clamped to the producer's previous one, exactly
// as the engines clamp against their clock. It reports whether the request
// was admitted — false only when ShedDeadline refuses a request whose
// window is already blown (a shed-oldest eviction drops the queue head,
// not the submission).
//
// Submit may block when the target queue is full and the policy is Block
// or ShedDeadline; the drain frees it.
func (p *Producer) Submit(req sim.Request) bool {
	if p.closed {
		panic("ingest: Submit on a closed Producer")
	}
	admitStart := p.ring.SpanStart()
	if !p.started {
		p.started = true
		p.last = math.Inf(-1)
	}
	if req.Time < p.last {
		req.Time = p.last
	}
	p.last = req.Time
	// Watermark before enqueue: once a drainer observes this store, the
	// request is either already in its queue or will carry an event time
	// >= the watermark, which is what makes strict-below-floor release
	// order-safe.
	p.watermark.Store(math.Float64bits(req.Time))
	g := p.gw
	g.advanceNow(req.Time)
	policy := g.cfg.Policy
	if policy == ShedDeadline || policy == Adaptive {
		if lag := g.Now() - req.Time; lag > g.window(req) {
			g.shedDeadline.Add(1)
			g.cfg.Live.AddShedDeadline(1)
			p.ring.Emit(obs.KindShed, req.ID, req.Time, obs.ShedReasonDeadlineAdmit)
			g.nudge() // the watermark advanced; release may be unblocked
			return false
		}
	}
	if policy == Adaptive {
		// Deterministic probabilistic shed: a per-producer error
		// accumulator against the controller's per-mille level, so a
		// level of 250 sheds exactly every 4th request per producer —
		// no RNG, same discipline as the obs counter sampling.
		if pm := g.shedPM.Load(); pm > 0 {
			p.acc += pm
			if p.acc >= 1000 {
				p.acc -= 1000
				g.shedAdaptive.Add(1)
				g.cfg.Live.AddShedAdaptive(1)
				g.cfg.Live.AddSLOBad(1)
				g.cfg.SLO.Observe(false)
				p.ring.Emit(obs.KindShed, req.ID, req.Time, obs.ShedReasonAdaptive)
				g.nudge()
				return false
			}
		}
	}
	s := stamped{req: req, seq: g.seq.Add(1), wall: time.Now(), prod: p.id, admitNs: p.ring.SpanStart()} //vetkit:allow determinism admission wall stamp: feeds the wall-clock SLO policy, which is wall-time by definition
	p.ring.Emit(obs.KindAdmitted, req.ID, req.Time, int64(s.seq))
	g.cfg.Live.AddAdmitted(1)
	qi := dispatch.ShardIndex(req.ID, len(g.queues))
	q := g.queues[qi]
	// Nudge on both sides of the push: before, so a push that blocks on a
	// full queue always has a drainer sweep pending to free it; after, so
	// the enqueued request itself is noticed. Under ShedOldest/Adaptive
	// the push makes room by fairly evicting a queued entry, so the
	// submitted request itself is always admitted.
	g.nudge()
	if evicted, victim := q.push(s, policy == ShedOldest || policy == Adaptive); evicted {
		g.cfg.Live.AddShedOverflow(1)
		// The eviction happened under this producer's push, so its ring
		// is the single-writer home for the victim's shed event even
		// when the victim was admitted by another producer.
		p.ring.Emit(obs.KindShed, victim.req.ID, victim.req.Time, obs.ShedReasonOverflow)
	}
	p.ring.Emit(obs.KindQueued, req.ID, req.Time, int64(qi))
	p.ring.EmitSpan(obs.Span{
		ID: obs.SpanID(req.ID, obs.StageAdmit, 0), Parent: obs.RootSpanID(req.ID),
		Req: req.ID, Stage: obs.StageAdmit, T: req.Time, Arg: int64(qi),
		Start: admitStart,
	})
	g.nudge()
	return true
}

// Skip advances the producer's watermark and the gateway clock past t
// without submitting anything — the accounting for a request lost
// upstream of admission (a crashed producer in a fault plan, a request
// dropped by an upstream filter). Without it the drain would hold every
// other producer's releases behind this producer's stalled watermark.
func (p *Producer) Skip(t float64) {
	if p.closed {
		panic("ingest: Skip on a closed Producer")
	}
	if !p.started {
		p.started = true
		p.last = math.Inf(-1)
	}
	if t < p.last {
		t = p.last
	}
	p.last = t
	p.watermark.Store(math.Float64bits(t))
	p.gw.advanceNow(t)
	p.gw.nudge()
}

// Close marks the producer finished: its watermark rises to +Inf so the
// drain can release everything behind it. Close is idempotent.
func (p *Producer) Close() {
	if p.closed {
		return
	}
	p.closed = true
	p.watermark.Store(math.Float64bits(math.Inf(1)))
	p.gw.nudge()
}

// Drain consumes the gateway: it releases admitted requests to sink in
// stamped order, blocking as needed, and returns once every producer has
// closed and every queue is empty. It must be called from exactly one
// goroutine, concurrently with the producers.
//
// Release discipline: a request is handed to sink only when its event time
// is strictly below the producer watermark floor (or unconditionally once
// all producers closed), so no later submission can ever precede it in
// stamped order.
//
// Memory caveat: every sweep moves queued requests into the drainer's
// reorder heap even while the watermark floor blocks their release, so
// gateway memory is bounded by producer time-skew, not by Queues x Depth —
// under Block, a producer lagging far behind the others lets the heap grow
// by one entry per submission the fast producers make. ingest.Drive bounds
// that skew structurally (round-robin fan-out over small buffered
// channels); external producers under Block should likewise keep their
// event times loosely synchronized or bound their own skew.
func (g *Gateway) Drain(sink func(sim.Request)) {
	for {
		// Floor first, queues second: any request with an event time below
		// the floor read here was already enqueued when the floor was
		// computed (its producer's watermark had to advance past it), so
		// the sweep below cannot miss it.
		floor := g.watermarkFloor()
		for _, q := range g.queues {
			q.drainInto(&g.heap)
		}
		// Backlog signal for the adaptive controller: everything resident
		// after the sweep, before releases — what has piled up since the
		// drainer last came around (i.e. while the engine was matching).
		backlog := g.heap.Len()
		released := false
		for g.heap.Len() > 0 {
			// Strictly below the floor: an event time equal to the floor
			// could still be preceded (in ID order) by an in-flight
			// submission at the same time. A +Inf floor releases all.
			if top := g.heap.peek(); top.req.Time >= floor {
				break
			}
			s := g.heap.pop()
			released = true
			lag := g.Now() - s.req.Time
			policy := g.cfg.Policy
			if (policy == ShedDeadline || policy == Adaptive) && lag > g.window(s.req) {
				g.shedDeadline.Add(1)
				g.cfg.Live.AddShedDeadline(1)
				g.drainRing.Emit(obs.KindShed, s.req.ID, s.req.Time, obs.ShedReasonDeadlineRelease)
				continue
			}
			relStart := g.drainRing.SpanStart()
			wait := time.Since(s.wall) //vetkit:allow determinism wall-clock SLO wait: the Adaptive policy sheds on real elapsed time by design
			if policy == Adaptive && wait > g.cfg.WallSLO {
				// The request already blew the operator's latency SLO
				// inside the gateway; handing it to the engine would
				// only report a blown promise as served. Shedding here
				// is also what makes measured goodput honest: every
				// release is within-SLO by construction.
				g.shedAdaptive.Add(1)
				g.cfg.Live.AddShedAdaptive(1)
				g.cfg.Live.AddSLOBad(1)
				g.cfg.SLO.Observe(false)
				g.drainRing.Emit(obs.KindShed, s.req.ID, s.req.Time, obs.ShedReasonWallSLO)
				g.ctrl.observe(wait)
				continue
			}
			if g.ctrl != nil {
				g.ctrl.observe(wait)
			}
			g.admitted++
			g.waitHist.Record(wait.Nanoseconds())
			g.lagHist.Record(int64(lag * 1000)) // simulated seconds -> ms
			if good := wait <= g.cfg.WallSLO; good {
				g.cfg.Live.AddSLOGood(1)
				g.cfg.SLO.Observe(true)
			} else {
				g.cfg.Live.AddSLOBad(1)
				g.cfg.SLO.Observe(false)
			}
			g.drainRing.Emit(obs.KindReleased, s.req.ID, s.req.Time, wait.Nanoseconds())
			g.drainRing.EmitSpan(obs.Span{
				ID: obs.SpanID(s.req.ID, obs.StageQueueWait, 0), Parent: obs.RootSpanID(s.req.ID),
				Req: s.req.ID, Stage: obs.StageQueueWait, T: s.req.Time, Arg: int64(s.seq),
				Start: s.admitNs, End: relStart,
			})
			// Close the release span before the sink call: the engine's
			// match span starts inside sink, and the analyzer partitions
			// wall time, so release must not overlap it.
			g.drainRing.EmitSpan(obs.Span{
				ID: obs.SpanID(s.req.ID, obs.StageRelease, 0), Parent: obs.RootSpanID(s.req.ID),
				Req: s.req.ID, Stage: obs.StageRelease, T: s.req.Time, Arg: wait.Nanoseconds(),
				Start: relStart,
			})
			sink(s.req)
		}
		if g.ctrl != nil {
			if pm, changed := g.ctrl.maybeAdjust(backlog); changed {
				g.shedPM.Store(pm)
				g.cfg.Live.SetShedLevel(pm)
			}
		}
		g.cfg.Live.SetBacklog(int64(g.heap.Len()))
		if g.cfg.SLO != nil {
			g.cfg.Live.SetBurnPM(g.cfg.SLO.BurnPerMille())
		}
		if math.IsInf(floor, 1) && g.heap.Len() == 0 && g.queuesEmpty() {
			return
		}
		if !released {
			<-g.wake
		}
	}
}

func (g *Gateway) queuesEmpty() bool {
	for _, q := range g.queues {
		if q.len() > 0 {
			return false
		}
	}
	return true
}

// MetricsInto folds the gateway's ingress counters into m. Call after
// Drain returns (or between fan-ins, when producers are quiescent).
func (g *Gateway) MetricsInto(m *sim.Metrics) {
	m.Admitted += g.admitted
	m.ShedDeadline += int(g.shedDeadline.Load())
	peak := 0
	overflow := 0
	for _, q := range g.queues {
		p, o := q.stats()
		if p > peak {
			peak = p
		}
		overflow += o
	}
	if peak > m.IngressQueuePeak {
		m.IngressQueuePeak = peak
	}
	m.ShedOverflow += overflow
	m.ShedAdaptive += int(g.shedAdaptive.Load())
	if g.ctrl != nil {
		if pm := int(g.ctrl.peakPM); pm > m.AdmissionShedPeakPM {
			m.AdmissionShedPeakPM = pm
		}
		m.AdmissionTransitions += g.ctrl.transitions
	}
	m.IngressWait.Merge(g.waitHist)
	m.ReleaseLagMs.Merge(g.lagHist)
	if g.cfg.SLO != nil {
		snap := g.cfg.SLO.Snapshot()
		m.SLOGood += int(snap.Good)
		m.SLOBad += int(snap.Bad)
		if snap.Objective > m.SLOObjective {
			m.SLOObjective = snap.Objective
		}
	}
}

// ShedByProducer reports, per producer index, how many of that
// producer's queued requests were evicted by overflow shedding — the
// fairness ledger. Call at quiescence.
func (g *Gateway) ShedByProducer() []int {
	g.mu.Lock()
	n := len(g.producers)
	g.mu.Unlock()
	out := make([]int, n)
	for _, q := range g.queues {
		for pid, c := range q.evictions() {
			if pid < len(out) {
				out[pid] += c
			}
		}
	}
	return out
}

// Metrics returns a fresh sim.Metrics carrying only the gateway's ingress
// counters.
func (g *Gateway) Metrics() *sim.Metrics {
	m := sim.NewMetrics()
	g.MetricsInto(m)
	return m
}

// stampHeap is a min-heap over stamped order; drainer-local, so no
// locking. Hand-rolled rather than container/heap (the codebase norm
// elsewhere) because this sits on the gateway's fan-in hot path — the
// interface-based API would box every stamped value per push/pop, and the
// raw gateway moves millions of requests a second (BenchmarkIngressFanIn).
// TestStampHeapOrdering pins the heap property.
type stampHeap []stamped

func (h stampHeap) Len() int { return len(h) }

func (h stampHeap) peek() stamped { return h[0] }

func (h *stampHeap) push(s stamped) {
	*h = append(*h, s)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h)[i].before((*h)[parent]) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *stampHeap) pop() stamped {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = stamped{}
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && (*h)[l].before((*h)[small]) {
			small = l
		}
		if r < n && (*h)[r].before((*h)[small]) {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}
