package ingest

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/sim"
)

// req builds the minimal request the gateway itself inspects.
func req(id int64, t float64) sim.Request { return sim.Request{ID: id, Time: t} }

// drainAll drains the gateway after all producers closed and returns the
// released IDs in handoff order.
func drainAll(g *Gateway) []int64 {
	var out []int64
	g.Drain(func(r sim.Request) { out = append(out, r.ID) })
	return out
}

// TestFairEvictionProtectsPolite floods one producer against a polite one
// through a single depth-4 queue: every overflow eviction must land on the
// flooder's own backlog, never on the polite producer's lone request.
func TestFairEvictionProtectsPolite(t *testing.T) {
	gw := New(Config{Queues: 1, Depth: 4, Policy: ShedOldest})
	ps := gw.Producers(2)
	polite, flood := ps[0], ps[1]

	polite.Submit(req(0, 0))
	for i := int64(1); i <= 10; i++ {
		flood.Submit(req(i, float64(i)))
	}
	polite.Close()
	flood.Close()

	got := drainAll(gw)
	want := []int64{0, 8, 9, 10}
	if len(got) != len(want) {
		t.Fatalf("released %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("released %v, want %v", got, want)
		}
	}
	shed := gw.ShedByProducer()
	if shed[0] != 0 || shed[1] != 7 {
		t.Fatalf("ShedByProducer = %v, want [0 7]", shed)
	}
	m := gw.Metrics()
	if m.Admitted != 4 || m.ShedOverflow != 7 {
		t.Fatalf("admitted=%d overflow=%d, want 4/7", m.Admitted, m.ShedOverflow)
	}
}

// TestFairEvictionTieRotation pins the tie-break rules: an incoming
// producer tied at max occupancy self-evicts; otherwise the rotating
// cursor spreads eviction over the tied producers instead of always
// hitting the lowest index.
func TestFairEvictionTieRotation(t *testing.T) {
	gw := New(Config{Queues: 1, Depth: 4, Policy: ShedOldest})
	ps := gw.Producers(3)

	ps[0].Submit(req(0, 0))
	ps[0].Submit(req(1, 1))
	ps[1].Submit(req(2, 2))
	ps[1].Submit(req(3, 3))
	// Full: p0 and p1 hold two slots each. Three submissions from p2:
	// cursor picks p0 (ID 0), then p1 (ID 2); by the third, p2 itself is
	// tied at max and self-evicts (ID 4).
	ps[2].Submit(req(4, 4))
	ps[2].Submit(req(5, 5))
	ps[2].Submit(req(6, 6))
	for _, p := range ps {
		p.Close()
	}

	got := drainAll(gw)
	want := []int64{1, 3, 5, 6}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("released %v, want %v", got, want)
		}
	}
	shed := gw.ShedByProducer()
	if shed[0] != 1 || shed[1] != 1 || shed[2] != 1 {
		t.Fatalf("ShedByProducer = %v, want [1 1 1]", shed)
	}
}

// TestFairEvictionMidQueueRemoval evicts a victim from the middle of the
// ring and checks the older entries shift without reordering the rest.
func TestFairEvictionMidQueueRemoval(t *testing.T) {
	q := newQueue(4)
	push := func(id int64, tm float64, prod int32) (bool, stamped) {
		return q.push(stamped{req: req(id, tm), prod: prod}, true)
	}
	push(0, 0, 1)
	push(1, 1, 0)
	push(2, 2, 0)
	push(3, 3, 1)
	// Incoming p0 is tied at max with p1; self-eviction takes p0's oldest,
	// ID 1, sitting mid-queue behind p1's head entry.
	evicted, victim := push(4, 4, 0)
	if !evicted || victim.req.ID != 1 {
		t.Fatalf("evicted=%v victim=%d, want ID 1", evicted, victim.req.ID)
	}
	var h stampHeap
	q.drainInto(&h)
	want := []int64{0, 2, 3, 4}
	for _, w := range want {
		if got := h.pop().req.ID; got != w {
			t.Fatalf("FIFO order broken after mid-queue eviction: got %d want %d", got, w)
		}
	}
}

// TestQueueDepthClamp: a zero/negative depth clamps to one slot — the
// smallest queue that can still make progress under eviction.
func TestQueueDepthClamp(t *testing.T) {
	q := newQueue(0)
	if len(q.buf) != 1 {
		t.Fatalf("newQueue(0) depth = %d, want 1", len(q.buf))
	}
	if evicted, _ := q.push(stamped{req: req(1, 1)}, true); evicted {
		t.Fatal("first push into one-slot queue evicted")
	}
	evicted, victim := q.push(stamped{req: req(2, 2)}, true)
	if !evicted || victim.req.ID != 1 {
		t.Fatalf("one-slot queue: evicted=%v victim=%v, want eviction of ID 1", evicted, victim.req.ID)
	}
	if q.len() != 1 {
		t.Fatalf("queue len = %d, want 1", q.len())
	}
}

// TestDepthOneGateway runs a whole gateway on one-slot queues.
func TestDepthOneGateway(t *testing.T) {
	gw := New(Config{Queues: 1, Depth: 1, Policy: ShedOldest})
	p := gw.Producers(1)[0]
	for i := int64(0); i < 5; i++ {
		p.Submit(req(i, float64(i)))
	}
	p.Close()
	got := drainAll(gw)
	if len(got) != 1 || got[0] != 4 {
		t.Fatalf("released %v, want [4]", got)
	}
	if m := gw.Metrics(); m.ShedOverflow != 4 {
		t.Fatalf("overflow = %d, want 4", m.ShedOverflow)
	}
}

// TestDeadlineShedBoundary pins the window boundary: a request whose lag
// exactly equals its window is still admitted and still released — only
// strictly blown windows shed.
func TestDeadlineShedBoundary(t *testing.T) {
	// Exactly at the boundary, admission and release both pass.
	gw := New(Config{Queues: 1, Policy: ShedDeadline, WaitSeconds: 100})
	ps := gw.Producers(2)
	if !ps[0].Submit(req(0, 100)) {
		t.Fatal("clock-setting request shed")
	}
	if !ps[1].Submit(req(1, 0)) { // lag == 100 == window: boundary admits
		t.Fatal("request at exact window boundary shed at admission")
	}
	ps[0].Close()
	ps[1].Close()
	if got := drainAll(gw); len(got) != 2 {
		t.Fatalf("released %v, want both requests", got)
	}
	if m := gw.Metrics(); m.ShedDeadline != 0 {
		t.Fatalf("deadline sheds = %d, want 0", m.ShedDeadline)
	}

	// One tick past the boundary, admission refuses.
	gw = New(Config{Queues: 1, Policy: ShedDeadline, WaitSeconds: 100})
	ps = gw.Producers(2)
	ps[0].Submit(req(0, 100.5))
	if ps[1].Submit(req(1, 0)) { // lag == 100.5 > window
		t.Fatal("blown-window request admitted")
	}
	ps[0].Close()
	ps[1].Close()
	if got := drainAll(gw); len(got) != 1 || got[0] != 0 {
		t.Fatalf("released %v, want [0]", got)
	}
	if m := gw.Metrics(); m.ShedDeadline != 1 {
		t.Fatalf("deadline sheds = %d, want 1", m.ShedDeadline)
	}
}

// TestShedContentionConservation hammers tiny queues from many producers
// concurrently with the drain and checks nothing is lost or duplicated:
// every submission is either released exactly once or counted shed.
// Run under -race this doubles as the eviction-path race test.
func TestShedContentionConservation(t *testing.T) {
	const producers, each = 8, 200
	gw := New(Config{Queues: 2, Depth: 2, Policy: ShedOldest})
	ps := gw.Producers(producers)
	var wg sync.WaitGroup
	for pi, p := range ps {
		wg.Add(1)
		go func(pi int, p *Producer) {
			defer wg.Done()
			for j := 0; j < each; j++ {
				p.Submit(req(int64(pi*1000+j), float64(j)))
			}
			p.Close()
		}(pi, p)
	}
	seen := make(map[int64]bool)
	gw.Drain(func(r sim.Request) {
		if seen[r.ID] {
			t.Errorf("request %d released twice", r.ID)
		}
		seen[r.ID] = true
	})
	wg.Wait()

	m := gw.Metrics()
	if m.Admitted != len(seen) {
		t.Fatalf("metrics admitted=%d but %d unique releases", m.Admitted, len(seen))
	}
	if total := m.Admitted + m.ShedOverflow; total != producers*each {
		t.Fatalf("admitted=%d + overflow=%d = %d, want %d",
			m.Admitted, m.ShedOverflow, total, producers*each)
	}
	bySrc := 0
	for _, c := range gw.ShedByProducer() {
		bySrc += c
	}
	if bySrc != m.ShedOverflow {
		t.Fatalf("fairness ledger sums to %d, metrics overflow %d", bySrc, m.ShedOverflow)
	}
}

// TestAdmissionControllerHysteresis unit-tests the AIMD controller: hot
// evaluations climb additively to the cap, the dead band holds, calm
// evaluations halve to zero, and shedding-state transitions are counted.
func TestAdmissionControllerHysteresis(t *testing.T) {
	c := newController(100*time.Millisecond, 100)
	feed := func(d time.Duration, n int) {
		for i := 0; i < n; i++ {
			c.observe(d)
		}
	}

	feed(200*time.Millisecond, ctrlMinSamples)
	pm, changed := c.maybeAdjust(0)
	if !changed || pm != ctrlStep {
		t.Fatalf("first hot adjust: pm=%d changed=%v, want %d/true", pm, changed, ctrlStep)
	}
	for i := 0; i < 40; i++ {
		feed(200*time.Millisecond, ctrlMinSamples)
		pm, _ = c.maybeAdjust(200)
	}
	if pm != ctrlMaxPM {
		t.Fatalf("sustained heat: pm=%d, want clamp at %d", pm, ctrlMaxPM)
	}

	// Dead band: p99 between SLO/2 and SLO, backlog between the marks.
	feed(75*time.Millisecond, ctrlMinSamples)
	if pm, changed = c.maybeAdjust(50); changed || pm != ctrlMaxPM {
		t.Fatalf("dead band moved the level: pm=%d changed=%v", pm, changed)
	}

	// Calm: halve down to zero.
	steps := 0
	for pm != 0 {
		feed(10*time.Millisecond, ctrlMinSamples)
		pm, _ = c.maybeAdjust(0)
		if steps++; steps > 20 {
			t.Fatalf("calm decay never reached zero (pm=%d)", pm)
		}
	}
	if c.peakPM != ctrlMaxPM {
		t.Fatalf("peakPM = %d, want %d", c.peakPM, ctrlMaxPM)
	}
	if c.transitions != 2 {
		t.Fatalf("transitions = %d, want 2 (open->shedding->open)", c.transitions)
	}
}

// TestAdmissionControllerStarvedDrainer: with zero release observations,
// the sweep-count fallback still reacts to a growing backlog.
func TestAdmissionControllerStarvedDrainer(t *testing.T) {
	c := newController(100*time.Millisecond, 100)
	for i := 0; i < ctrlMaxSweeps-1; i++ {
		if _, changed := c.maybeAdjust(200); changed {
			t.Fatalf("adjusted before the sweep quota at sweep %d", i)
		}
	}
	pm, changed := c.maybeAdjust(200)
	if !changed || pm != ctrlStep {
		t.Fatalf("starved evaluation: pm=%d changed=%v, want %d/true", pm, changed, ctrlStep)
	}
}

// TestAdaptiveShedDeterministic: the per-producer error accumulator sheds
// exactly floor(level/1000) of the stream with no RNG — level 250 drops
// every 4th submission.
func TestAdaptiveShedDeterministic(t *testing.T) {
	gw := New(Config{Queues: 1, Depth: 64, Policy: Adaptive})
	gw.shedPM.Store(250)
	p := gw.Producers(1)[0]
	var refused []int64
	for i := int64(1); i <= 12; i++ {
		if !p.Submit(req(i, float64(i))) {
			refused = append(refused, i)
		}
	}
	p.Close()
	want := []int64{4, 8, 12}
	if len(refused) != len(want) {
		t.Fatalf("refused %v, want %v", refused, want)
	}
	for i := range want {
		if refused[i] != want[i] {
			t.Fatalf("refused %v, want %v", refused, want)
		}
	}
	if got := gw.shedAdaptive.Load(); got != 3 {
		t.Fatalf("shedAdaptive = %d, want 3", got)
	}
	if got := drainAll(gw); len(got) != 9 {
		t.Fatalf("released %d requests, want 9", len(got))
	}
}

// TestAdaptiveOverloadEndToEnd drives an overloaded gateway (slow sink,
// tight wall SLO) and checks the adaptive policy's books balance: every
// submission is released or shed, releases are within-SLO by
// construction, and the controller demonstrably engaged.
func TestAdaptiveOverloadEndToEnd(t *testing.T) {
	const producers, each = 2, 200
	gw := New(Config{
		Queues:  1,
		Depth:   64,
		Policy:  Adaptive,
		WallSLO: 2 * time.Millisecond,
	})
	ps := gw.Producers(producers)
	var wg sync.WaitGroup
	for pi, p := range ps {
		wg.Add(1)
		go func(pi int, p *Producer) {
			defer wg.Done()
			for j := 0; j < each; j++ {
				p.Submit(req(int64(pi*1000+j), float64(j)))
			}
			p.Close()
		}(pi, p)
	}
	released := 0
	gw.Drain(func(sim.Request) {
		released++
		time.Sleep(500 * time.Microsecond) // matcher far slower than arrivals
	})
	wg.Wait()

	m := gw.Metrics()
	if m.Admitted != released {
		t.Fatalf("metrics admitted=%d, sink saw %d", m.Admitted, released)
	}
	if total := m.Admitted + m.Shed(); total != producers*each {
		t.Fatalf("released=%d + shed=%d = %d, want %d",
			m.Admitted, m.Shed(), total, producers*each)
	}
	if m.ShedAdaptive == 0 {
		t.Fatal("overloaded adaptive gateway shed nothing via the SLO path")
	}
	if m.AdmissionShedPeakPM == 0 {
		t.Fatal("controller never raised the shed level under overload")
	}
	if m.AdmissionTransitions == 0 {
		t.Fatal("controller never transitioned into shedding")
	}
}

// TestDriveProducerPanic: an injected panic in one producer goroutine
// must surface as an error, release its watermark so the drain finishes
// on the survivors, and account for every routed request.
func TestDriveProducerPanic(t *testing.T) {
	const n, producers = 100, 4
	gw := New(Config{Queues: 2, Depth: 16})
	src := make(SliceSource, 0, n)
	for i := 0; i < n; i++ {
		src = append(src, req(int64(i), float64(i)))
	}
	inj := faults.New(faults.Plan{
		Name: "panic-test", Seed: 1,
		Producer: faults.ProducerPlan{PanicAt: 3},
	})

	var stats DriveStats
	var derr error
	done := make(chan struct{})
	go func() {
		stats, derr = DriveInjected(gw, &src, producers, inj)
		close(done)
	}()
	released := 0
	gw.Drain(func(sim.Request) { released++ })
	<-done

	if derr == nil || !strings.Contains(derr.Error(), "panicked") {
		t.Fatalf("Drive error = %v, want producer panic surfaced", derr)
	}
	// Producer 0 owns IDs 0,4,...,96 (25 requests): two submitted before
	// the panic, the panicking one dropped, the rest discarded.
	if stats.Sourced != n || stats.Submitted != 77 || stats.Dropped != 1 || stats.Discarded != 22 {
		t.Fatalf("stats = %+v, want sourced=100 submitted=77 dropped=1 discarded=22", stats)
	}
	if released != stats.Submitted {
		t.Fatalf("released %d, want every submitted request (%d)", released, stats.Submitted)
	}
	if s := inj.Stats(); s.Panics != 1 {
		t.Fatalf("injector stats = %v, want 1 panic", s)
	}
}

// TestDriveCrashPlanConservation: crash-span drops advance the watermark
// (via Skip) instead of stalling the drain, and the books balance.
func TestDriveCrashPlanConservation(t *testing.T) {
	const n, producers = 200, 4
	plan, err := faults.ParsePlan("producer-crash")
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(plan)
	gw := New(Config{Queues: 2, Depth: 32})
	src := make(SliceSource, 0, n)
	for i := 0; i < n; i++ {
		src = append(src, req(int64(i), float64(i/2)))
	}

	var stats DriveStats
	done := make(chan struct{})
	go func() {
		var derr error
		stats, derr = DriveInjected(gw, &src, producers, inj)
		if derr != nil {
			t.Errorf("DriveInjected: %v", derr)
		}
		close(done)
	}()
	released := 0
	gw.Drain(func(sim.Request) { released++ })
	<-done

	s := inj.Stats()
	if s.Crashes == 0 || s.Dropped == 0 {
		t.Fatalf("crash plan injected nothing: %v", s)
	}
	if stats.Dropped != s.Dropped {
		t.Fatalf("drive dropped %d, injector says %d", stats.Dropped, s.Dropped)
	}
	if stats.Submitted != n-stats.Dropped {
		t.Fatalf("submitted=%d, want sourced-dropped=%d", stats.Submitted, n-stats.Dropped)
	}
	if released != stats.Submitted {
		t.Fatalf("released %d, want %d (Block policy loses nothing admitted)", released, stats.Submitted)
	}
}
