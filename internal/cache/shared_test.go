package cache

import (
	"sync"
	"testing"

	"repro/internal/roadnet"
	"repro/internal/sp"
)

// The stack's compile-time contracts: Shared is a concurrency-safe oracle
// and a worker source; the facades are plain per-goroutine oracles.
var (
	_ sp.SharedOracle = (*Shared)(nil)
	_ sp.WorkerSource = (*Shared)(nil)
	_ sp.Oracle       = (*SharedWorker)(nil)
	_ sp.SharedOracle = (*sp.Matrix)(nil)
	_ sp.SharedOracle = (*sp.HubLabels)(nil)
)

// testGraph is a small connected grid for cache tests.
func testGraph(t testing.TB) *roadnet.Graph {
	t.Helper()
	g, err := roadnet.Grid(roadnet.GridOptions{
		Rows: 8, Cols: 8, Spacing: 500, Jitter: 0.1, WeightVar: 0.1, Seed: 3,
	})
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	return g
}

// TestSharedCrossWorkerHits: a distance computed through one worker facade
// must be a cache hit for every other facade — the whole point of the
// shared stack.
func TestSharedCrossWorkerHits(t *testing.T) {
	g := testGraph(t)
	var engines []*countingOracle
	s := NewShared(func() sp.Oracle {
		e := &countingOracle{inner: sp.NewBidirectional(g)}
		engines = append(engines, e)
		return e
	}, g.N(), 1<<16, 1<<10, 4)

	a, b := s.NewWorker(), s.NewWorker()
	want := a.Dist(0, 20)
	if got := b.Dist(0, 20); got != want {
		t.Fatalf("worker B Dist = %v, worker A computed %v", got, want)
	}
	// Symmetric priming: the reverse direction is also a hit.
	if got := b.Dist(20, 0); got != want {
		t.Fatalf("reverse Dist = %v, want %v", got, want)
	}
	total := 0
	for _, e := range engines {
		total += e.dists
	}
	if total != 1 {
		t.Fatalf("inner engines ran %d distance queries, want 1 (the rest served from the shared cache)", total)
	}
	hits, misses := s.DistStats()
	if misses != 1 || hits != 2 {
		t.Fatalf("DistStats = (%d hits, %d misses), want (2, 1)", hits, misses)
	}
}

// TestSharedWorkerPathsArePrivate: path caches are per worker — a path
// learned by one facade is recomputed by another — and each facade primes
// its own reverse direction.
func TestSharedWorkerPathsArePrivate(t *testing.T) {
	g := testGraph(t)
	var engines []*countingOracle
	s := NewShared(func() sp.Oracle {
		e := &countingOracle{inner: sp.NewBidirectional(g)}
		engines = append(engines, e)
		return e
	}, g.N(), 1<<16, 1<<10, 4)

	a, b := s.NewWorker(), s.NewWorker()
	p := a.Path(0, 20)
	if len(p) == 0 || p[0] != 0 || p[len(p)-1] != 20 {
		t.Fatalf("bad path %v", p)
	}
	rev := a.Path(20, 0) // reverse-primed, must not touch the engine
	if len(rev) != len(p) || rev[0] != 20 || rev[len(rev)-1] != 0 {
		t.Fatalf("reverse path %v does not mirror %v", rev, p)
	}
	if engines[0].paths != 1 {
		t.Fatalf("worker A engine ran %d path queries, want 1", engines[0].paths)
	}
	b.Path(0, 20)
	if engines[1].paths != 1 {
		t.Fatalf("worker B engine ran %d path queries, want 1 (path caches are private)", engines[1].paths)
	}
	ph, pm := s.PathStats()
	if ph != 1 || pm != 2 {
		t.Fatalf("aggregate PathStats = (%d, %d), want (1 hit, 2 misses)", ph, pm)
	}
}

// TestSharedDirectFacade: Shared itself answers Dist/Path (pooled engines)
// and agrees with a plain engine.
func TestSharedDirectFacade(t *testing.T) {
	g := testGraph(t)
	s := NewSharedDefault(func() sp.Oracle { return sp.NewBidirectional(g) }, g.N())
	ref := sp.NewDijkstra(g)
	for _, pair := range [][2]roadnet.VertexID{{0, 63}, {5, 40}, {7, 7}} {
		u, v := pair[0], pair[1]
		if got, want := s.Dist(u, v), ref.Dist(u, v); got != want {
			t.Fatalf("Dist(%d,%d) = %v, want %v", u, v, got, want)
		}
		p := s.Path(u, v)
		if p[0] != u || p[len(p)-1] != v {
			t.Fatalf("Path(%d,%d) endpoints wrong: %v", u, v, p)
		}
	}
}

// TestSharedConcurrent: facades on separate goroutines plus direct Shared
// queries, under -race. Every worker must observe identical distances.
func TestSharedConcurrent(t *testing.T) {
	g := testGraph(t)
	s := NewShared(func() sp.Oracle { return sp.NewBidirectional(g) }, g.N(), 1<<14, 1<<8, 8)
	ref := sp.NewDijkstra(g)
	n := roadnet.VertexID(int32(g.N()))

	const workers = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		w := s.NewWorker()
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			state := seed
			for q := 0; q < 300; q++ {
				state = state*6364136223846793005 + 1442695040888963407
				u := roadnet.VertexID(uint64(state>>16) % uint64(n))
				v := roadnet.VertexID(uint64(state>>40) % uint64(n))
				w.Dist(u, v)
				if q%29 == 0 {
					w.Path(u, v)
				}
				if q%13 == 0 {
					s.Dist(v, u) // direct facade racing the workers
				}
			}
			errs <- nil
		}(int64(i + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// The cache must hold exact values: spot-check against Dijkstra.
	for _, pair := range [][2]roadnet.VertexID{{1, 50}, {10, 33}} {
		u, v := pair[0], pair[1]
		if got, want := s.Dist(u, v), ref.Dist(u, v); got != want {
			t.Fatalf("post-stress Dist(%d,%d) = %v, want %v", u, v, got, want)
		}
	}
	if h, m := s.DistStats(); h+m == 0 {
		t.Fatal("no distance lookups recorded")
	}
}
