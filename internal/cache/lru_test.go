package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/roadnet"
	"repro/internal/sp"
)

func TestLRUBasic(t *testing.T) {
	c := NewLRU[int](2)
	if _, ok := c.Get(1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(1, 100)
	c.Put(2, 200)
	if v, ok := c.Get(1); !ok || v != 100 {
		t.Fatalf("Get(1)=%v,%v", v, ok)
	}
	c.Put(3, 300) // evicts 2 (1 was just used)
	if _, ok := c.Get(2); ok {
		t.Fatal("2 should have been evicted")
	}
	if v, ok := c.Get(1); !ok || v != 100 {
		t.Fatalf("1 evicted wrongly: %v,%v", v, ok)
	}
	if v, ok := c.Get(3); !ok || v != 300 {
		t.Fatalf("3 missing: %v,%v", v, ok)
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := NewLRU[string](2)
	c.Put(1, "a")
	c.Put(1, "b")
	if c.Len() != 1 {
		t.Fatalf("Len=%d", c.Len())
	}
	if v, _ := c.Get(1); v != "b" {
		t.Fatalf("value %q", v)
	}
}

func TestLRUCapacityClamp(t *testing.T) {
	c := NewLRU[int](0)
	if c.Cap() != 1 {
		t.Fatalf("Cap=%d, want clamp to 1", c.Cap())
	}
	c.Put(1, 1)
	c.Put(2, 2)
	if c.Len() != 1 {
		t.Fatalf("Len=%d", c.Len())
	}
}

func TestLRUStats(t *testing.T) {
	c := NewLRU[int](4)
	c.Put(1, 1)
	c.Get(1)
	c.Get(2)
	c.Get(3)
	h, m := c.Stats()
	if h != 1 || m != 2 {
		t.Fatalf("stats %d/%d, want 1/2", h, m)
	}
	if r := c.HitRate(); r < 0.33 || r > 0.34 {
		t.Fatalf("hit rate %f", r)
	}
}

// TestLRUNeverExceedsCapacity is a property test: random workloads keep the
// size bounded and the internal list consistent.
func TestLRUNeverExceedsCapacity(t *testing.T) {
	f := func(keys []uint8, capSeed uint8) bool {
		capacity := int(capSeed%31) + 1
		c := NewLRU[uint8](capacity)
		for _, k := range keys {
			if k%3 == 0 {
				c.Get(uint64(k))
			} else {
				c.Put(uint64(k), k)
			}
			if c.Len() > capacity {
				return false
			}
			if err := c.checkInvariants(); err != nil {
				t.Logf("invariant: %v", err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestLRUMatchesReference checks the eviction order against a simple
// reference implementation on random traces.
func TestLRUMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const capacity = 8
	c := NewLRU[int](capacity)
	type refEntry struct {
		key uint64
		val int
	}
	var ref []refEntry // front = most recent
	refGet := func(k uint64) (int, bool) {
		for i, e := range ref {
			if e.key == k {
				ref = append(ref[:i], ref[i+1:]...)
				ref = append([]refEntry{e}, ref...)
				return e.val, true
			}
		}
		return 0, false
	}
	refPut := func(k uint64, v int) {
		if _, ok := refGet(k); ok {
			ref[0].val = v
			return
		}
		if len(ref) == capacity {
			ref = ref[:capacity-1]
		}
		ref = append([]refEntry{{k, v}}, ref...)
	}
	for i := 0; i < 5000; i++ {
		k := uint64(rng.Intn(20))
		if rng.Intn(2) == 0 {
			v := rng.Int()
			c.Put(k, v)
			refPut(k, v)
		} else {
			got, gok := c.Get(k)
			want, wok := refGet(k)
			if gok != wok || (gok && got != want) {
				t.Fatalf("step %d: Get(%d) = %v,%v want %v,%v", i, k, got, gok, want, wok)
			}
		}
	}
}

// countingOracle counts how many Dist/Path calls reach the inner engine.
type countingOracle struct {
	inner        sp.Oracle
	dists, paths int
}

func (c *countingOracle) Dist(u, v roadnet.VertexID) float64 {
	c.dists++
	return c.inner.Dist(u, v)
}

func (c *countingOracle) Path(u, v roadnet.VertexID) []roadnet.VertexID {
	c.paths++
	return c.inner.Path(u, v)
}

func TestCachedOracleCorrectAndCaching(t *testing.T) {
	g, err := roadnet.Grid(roadnet.GridOptions{Rows: 8, Cols: 8, Spacing: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	inner := &countingOracle{inner: sp.NewDijkstra(g)}
	o := New(inner, g.N(), 1000, 100)
	ref := sp.NewDijkstra(g)

	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		u := roadnet.VertexID(rng.Intn(g.N()))
		v := roadnet.VertexID(rng.Intn(g.N()))
		if got, want := o.Dist(u, v), ref.Dist(u, v); got != want {
			t.Fatalf("cached Dist(%d,%d)=%v want %v", u, v, got, want)
		}
	}
	if inner.dists >= 2000 {
		t.Fatalf("cache ineffective: %d inner calls for 2000 queries", inner.dists)
	}
	hits, misses := o.DistStats()
	if hits == 0 || hits+misses == 0 {
		t.Fatalf("no cache hits recorded (h=%d m=%d)", hits, misses)
	}

	// Symmetric priming: a (u,v) query should make (v,u) a hit.
	o2 := New(&countingOracle{inner: sp.NewDijkstra(g)}, g.N(), 1000, 100)
	o2.Dist(3, 5)
	h0, _ := o2.dists.Stats()
	o2.Dist(5, 3)
	h1, _ := o2.dists.Stats()
	if h1 != h0+1 {
		t.Fatal("reverse direction was not primed")
	}
}

func TestCachedOraclePaths(t *testing.T) {
	g, err := roadnet.Grid(roadnet.GridOptions{Rows: 6, Cols: 6, Spacing: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	inner := &countingOracle{inner: sp.NewDijkstra(g)}
	o := New(inner, g.N(), 100, 10)
	p1 := o.Path(0, 20)
	p2 := o.Path(0, 20)
	if inner.paths != 1 {
		t.Fatalf("path cache miss count %d, want 1", inner.paths)
	}
	if len(p1) != len(p2) {
		t.Fatal("cached path differs")
	}
	if p := o.Path(4, 4); len(p) != 1 || p[0] != 4 {
		t.Fatalf("Path(v,v) = %v", p)
	}
}

func BenchmarkLRUPutGet(b *testing.B) {
	c := NewLRU[float64](1 << 16)
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(rng.Intn(1 << 18))
		if _, ok := c.Get(k); !ok {
			c.Put(k, float64(k))
		}
	}
}
