package cache

import "sync"

// DefaultStripes is the stripe count used when callers pass 0 to
// NewStripedLRU. 32 stripes keep lock contention negligible for worker
// pools far larger than any host this runs on, at the cost of 32 small
// mutexes.
const DefaultStripes = 32

// StripedLRU is a concurrency-safe LRU assembled from independently locked
// stripes: a key is hashed to one stripe, and that stripe's mutex guards a
// private single-threaded LRU together with its hit/miss counters. Two
// lookups contend only when their keys land on the same stripe, so
// throughput scales with the stripe count until the hash distribution is
// exhausted.
//
// Recency and eviction are per stripe, not global: each stripe evicts its
// own least-recently-used entry when it fills. With a hash that spreads
// keys uniformly the behaviour converges to a global LRU as capacity grows,
// which is the regime the paper's ten-million-entry distance cache lives
// in.
//
// Safe for concurrent use by any number of goroutines.
type StripedLRU[V any] struct {
	stripes []lruStripe[V]
	mask    uint64
}

// lruStripe pads each lock+LRU pair to a full 64-byte cache line (mutex 8 +
// pointer 8 + pad 48) so stripes on adjacent indices don't false-share.
type lruStripe[V any] struct {
	mu  sync.Mutex
	lru *LRU[V]
	_   [64 - 16]byte
}

// NewStripedLRU returns a striped LRU with the given total capacity spread
// over the given number of stripes. The stripe count is rounded up to a
// power of two (0 selects DefaultStripes); capacity below the stripe count
// is raised so every stripe holds at least one entry.
func NewStripedLRU[V any](capacity, stripes int) *StripedLRU[V] {
	if stripes <= 0 {
		stripes = DefaultStripes
	}
	n := 1
	for n < stripes {
		n <<= 1
	}
	if capacity < 1 {
		capacity = 1
	}
	perStripe := (capacity + n - 1) / n
	c := &StripedLRU[V]{
		stripes: make([]lruStripe[V], n),
		mask:    uint64(n - 1),
	}
	for i := range c.stripes {
		c.stripes[i].lru = NewLRU[V](perStripe)
	}
	return c
}

// mix is the splitmix64 finalizer. The cache keys id(s)·|V| + id(e) are
// highly structured (nearby vertices share high bits), so stripe selection
// needs a real bit mixer or neighbouring queries would pile onto a handful
// of stripes.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (c *StripedLRU[V]) stripe(key uint64) *lruStripe[V] {
	return &c.stripes[mix(key)&c.mask]
}

// Get returns the value stored under key and marks it most recently used
// within its stripe.
func (c *StripedLRU[V]) Get(key uint64) (V, bool) {
	s := c.stripe(key)
	s.mu.Lock()
	v, ok := s.lru.Get(key)
	s.mu.Unlock()
	return v, ok
}

// Put stores value under key, evicting the stripe's least recently used
// entry if that stripe is full.
func (c *StripedLRU[V]) Put(key uint64, value V) {
	s := c.stripe(key)
	s.mu.Lock()
	s.lru.Put(key, value)
	s.mu.Unlock()
}

// Len returns the total number of cached entries across all stripes.
func (c *StripedLRU[V]) Len() int {
	total := 0
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.Lock()
		total += s.lru.Len()
		s.mu.Unlock()
	}
	return total
}

// Cap returns the total capacity across all stripes (the requested
// capacity rounded up to a multiple of the stripe count).
func (c *StripedLRU[V]) Cap() int {
	total := 0
	for i := range c.stripes {
		total += c.stripes[i].lru.Cap()
	}
	return total
}

// Stripes returns the stripe count.
func (c *StripedLRU[V]) Stripes() int { return len(c.stripes) }

// Stats returns the cumulative hit and miss counts of Get, aggregated over
// all stripes. Each stripe's counters are incremented and read under its
// mutex, so no increment is ever lost; concurrent callers see a sum of
// per-stripe snapshots taken in stripe order.
func (c *StripedLRU[V]) Stats() (hits, misses uint64) {
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.Lock()
		h, m := s.lru.Stats()
		s.mu.Unlock()
		hits += h
		misses += m
	}
	return hits, misses
}

// HitRate returns hits/(hits+misses), or 0 before any lookups.
func (c *StripedLRU[V]) HitRate() float64 {
	hits, misses := c.Stats()
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// checkInvariants validates every stripe's internal consistency; tests call
// it after concurrent stress.
func (c *StripedLRU[V]) checkInvariants() error {
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.Lock()
		err := s.lru.checkInvariants()
		s.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}
