package cache

import (
	"testing"

	"repro/internal/roadnet"
	"repro/internal/sp"
)

// distinctPairs returns want ordered pairs with u < v, so the oracle's
// reverse-direction priming can never turn a planned first-touch miss into
// a hit.
func distinctPairs(t *testing.T, g *roadnet.Graph, want int) [][2]roadnet.VertexID {
	t.Helper()
	var pairs [][2]roadnet.VertexID
	n := roadnet.VertexID(g.N())
	for u := roadnet.VertexID(0); u < n && len(pairs) < want; u++ {
		for v := u + 1; v < n && len(pairs) < want; v++ {
			pairs = append(pairs, [2]roadnet.VertexID{u, v})
		}
	}
	if len(pairs) < want {
		t.Fatalf("graph too small for %d distinct pairs", want)
	}
	return pairs
}

// TestOracleDistLatencySampling: the caching oracle times exactly 1 in
// distSampleEvery Dist lookups, attributing each sample to the cache
// outcome of that specific call.
func TestOracleDistLatencySampling(t *testing.T) {
	g := testGraph(t)
	o := New(sp.NewBidirectional(g), g.N(), 1<<20, 1<<10)
	pairs := distinctPairs(t, g, 4*distSampleEvery)

	for _, p := range pairs {
		o.Dist(p[0], p[1]) // first touch: all misses
	}
	hit, miss := o.DistLatency()
	if hit.Count() != 0 || miss.Count() != 4 {
		t.Fatalf("after miss pass: hit=%d miss=%d samples, want 0/4", hit.Count(), miss.Count())
	}
	for _, p := range pairs {
		o.Dist(p[0], p[1]) // repeat: all hits
	}
	if hit.Count() != 4 || miss.Count() != 4 {
		t.Fatalf("after hit pass: hit=%d miss=%d samples, want 4/4", hit.Count(), miss.Count())
	}
	if hit.Min() < 0 || miss.Min() < 0 {
		t.Fatal("negative sampled latency")
	}
	// u == v short-circuits before the sampler and must not advance its
	// cadence.
	before := hit.Count() + miss.Count()
	for i := 0; i < 10*distSampleEvery; i++ {
		o.Dist(3, 3)
	}
	if got := hit.Count() + miss.Count(); got != before {
		t.Fatalf("u==v lookups advanced the sampler: %d -> %d samples", before, got)
	}
}

// TestSharedDistLatencySampling: every worker facade samples on its own
// deterministic cadence, Shared.DistLatency merges all of them, and a
// distance published by one facade is a sampled *hit* for the next — while
// direct pooled Shared.Dist calls stay unsampled (their sampler state
// would race).
func TestSharedDistLatencySampling(t *testing.T) {
	g := testGraph(t)
	s := NewShared(func() sp.Oracle { return sp.NewBidirectional(g) }, g.N(), 1<<20, 1<<10, 0)
	w1, w2 := s.NewWorker(), s.NewWorker()
	pairs := distinctPairs(t, g, 2*distSampleEvery)

	for _, p := range pairs {
		w1.Dist(p[0], p[1]) // misses, computed on w1's engine
	}
	for _, p := range pairs {
		w2.Dist(p[0], p[1]) // hits: w1 published to the shared cache
	}
	hit, miss := s.DistLatency()
	if miss.Count() != 2 || hit.Count() != 2 {
		t.Fatalf("merged samples hit=%d miss=%d, want 2/2", hit.Count(), miss.Count())
	}

	for i := 0; i < 4*distSampleEvery; i++ {
		s.Dist(pairs[0][0], pairs[0][1])
	}
	hit, miss = s.DistLatency()
	if hit.Count()+miss.Count() != 4 {
		t.Fatalf("direct Shared.Dist calls were sampled: hit=%d miss=%d", hit.Count(), miss.Count())
	}
}
