// Package cache provides the LRU caching layer the paper places in front of
// the shortest-path engine (§VI): "we implement two LRU caches using a
// single hash table, one storing up to ten million shortest distances and
// the other storing up to ten thousand shortest paths ... indexed only by
// the starting and destination points ... by defining the index for two
// vertices s and e as i = id(s)·|V| + id(e)".
package cache

import "fmt"

// LRU is a fixed-capacity least-recently-used map from uint64 keys to
// values of type V, implemented as a hash map over entries in an intrusive
// doubly-linked list. The zero value is not usable; use NewLRU.
//
// Not safe for concurrent use.
type LRU[V any] struct {
	capacity int
	table    map[uint64]int // key -> slot
	entries  []lruEntry[V]  // slot-addressed; head/tail form the recency list
	head     int            // most recently used, -1 when empty
	tail     int            // least recently used, -1 when empty
	free     []int          // recycled slots
	hits     uint64
	misses   uint64
}

type lruEntry[V any] struct {
	key        uint64
	value      V
	prev, next int
}

// NewLRU returns an LRU with the given capacity (minimum 1).
func NewLRU[V any](capacity int) *LRU[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU[V]{
		capacity: capacity,
		table:    make(map[uint64]int, capacity),
		head:     -1,
		tail:     -1,
	}
}

// Len returns the number of cached entries.
func (c *LRU[V]) Len() int { return len(c.table) }

// Cap returns the configured capacity.
func (c *LRU[V]) Cap() int { return c.capacity }

// Stats returns the cumulative hit and miss counts of Get.
func (c *LRU[V]) Stats() (hits, misses uint64) { return c.hits, c.misses }

// HitRate returns hits/(hits+misses), or 0 before any lookups.
func (c *LRU[V]) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Get returns the value stored under key and marks it most recently used.
func (c *LRU[V]) Get(key uint64) (V, bool) {
	slot, ok := c.table[key]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.hits++
	c.moveToFront(slot)
	return c.entries[slot].value, true
}

// Put stores value under key, evicting the least recently used entry if the
// cache is full. Storing an existing key updates its value and recency.
func (c *LRU[V]) Put(key uint64, value V) {
	if slot, ok := c.table[key]; ok {
		c.entries[slot].value = value
		c.moveToFront(slot)
		return
	}
	if len(c.table) >= c.capacity {
		c.evict()
	}
	var slot int
	if n := len(c.free); n > 0 {
		slot = c.free[n-1]
		c.free = c.free[:n-1]
		c.entries[slot] = lruEntry[V]{key: key, value: value, prev: -1, next: -1}
	} else {
		slot = len(c.entries)
		c.entries = append(c.entries, lruEntry[V]{key: key, value: value, prev: -1, next: -1})
	}
	c.table[key] = slot
	c.pushFront(slot)
}

func (c *LRU[V]) evict() {
	slot := c.tail
	if slot < 0 {
		return
	}
	c.unlink(slot)
	delete(c.table, c.entries[slot].key)
	var zero V
	c.entries[slot].value = zero // drop references for GC
	c.free = append(c.free, slot)
}

func (c *LRU[V]) pushFront(slot int) {
	c.entries[slot].prev = -1
	c.entries[slot].next = c.head
	if c.head >= 0 {
		c.entries[c.head].prev = slot
	}
	c.head = slot
	if c.tail < 0 {
		c.tail = slot
	}
}

func (c *LRU[V]) unlink(slot int) {
	e := &c.entries[slot]
	if e.prev >= 0 {
		c.entries[e.prev].next = e.next
	} else {
		c.head = e.next
	}
	if e.next >= 0 {
		c.entries[e.next].prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = -1, -1
}

func (c *LRU[V]) moveToFront(slot int) {
	if c.head == slot {
		return
	}
	c.unlink(slot)
	c.pushFront(slot)
}

// checkInvariants validates internal consistency; used by tests.
func (c *LRU[V]) checkInvariants() error {
	count := 0
	prev := -1
	for at := c.head; at != -1; at = c.entries[at].next {
		if c.entries[at].prev != prev {
			return fmt.Errorf("cache: bad prev link at slot %d", at)
		}
		if got, ok := c.table[c.entries[at].key]; !ok || got != at {
			return fmt.Errorf("cache: table mismatch for key %d", c.entries[at].key)
		}
		prev = at
		count++
		if count > len(c.table) {
			return fmt.Errorf("cache: list longer than table (cycle?)")
		}
	}
	if prev != c.tail {
		return fmt.Errorf("cache: tail mismatch: walked to %d, tail is %d", prev, c.tail)
	}
	if count != len(c.table) {
		return fmt.Errorf("cache: list has %d entries, table has %d", count, len(c.table))
	}
	if len(c.table) > c.capacity {
		return fmt.Errorf("cache: size %d exceeds capacity %d", len(c.table), c.capacity)
	}
	return nil
}
