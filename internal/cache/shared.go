package cache

import (
	"sync"

	"repro/internal/obs"
	"repro/internal/roadnet"
	"repro/internal/sp"
)

// Shared is the fleet-wide oracle stack: one concurrency-safe striped
// distance cache consulted by every worker in the system, combined with
// per-worker path caches and per-worker inner engines behind the usual
// Dist/Path facade.
//
// The layering (engine → shared distance cache → per-worker path cache):
//
//	           ┌────────────────────────────────┐
//	           │ Shared striped distance cache  │  one per fleet
//	           └──────┬──────────┬──────────────┘
//	                  │          │        miss ⇒ compute on the
//	┌─────────────────┴──┐  ┌────┴───────────────┐ caller's engine,
//	│ Worker facade 0    │  │ Worker facade 1 …  │ publish to all
//	│ path LRU + engine  │  │ path LRU + engine  │
//	└────────────────────┘  └────────────────────┘
//
// Distances are what the matching loop asks for millions of times (the
// paper sizes its caches 10M distances vs 10K paths, §VI), and a distance
// learned by one dispatch shard — d(pickup, dropoff), say — is exactly the
// distance every other shard will need for the same trip. Sharing the
// distance cache recovers the cross-shard hit rate that private per-shard
// caches lose, without serializing the hot path: the cache is striped, and
// each worker's engine and path cache stay private.
//
// Shared itself implements sp.Oracle and sp.SharedOracle — Dist and Path
// may be called from any goroutine, with misses computed on engines drawn
// from an internal pool — so it can drop in wherever a single oracle is
// expected (the sequential simulator, tooling). Hot worker pools should
// instead hold one NewWorker facade per goroutine, which adds a private
// lock-free path cache and a dedicated engine.
type Shared struct {
	newEngine func() sp.Oracle
	n         uint64
	dists     *StripedLRU[float64]
	paths     *StripedLRU[[]roadnet.VertexID] // for direct Shared.Path calls
	pathCap   int
	pool      sync.Pool // engines for direct Dist/Path calls

	mu      sync.Mutex
	workers []*SharedWorker // registered facades, for stats aggregation
}

// NewShared builds a shared oracle stack for a graph with n vertices.
// newEngine must return a fresh inner engine on every call (engines are
// per-goroutine; see the sp.Oracle taxonomy). distEntries sizes the shared
// striped distance cache, pathEntries each path cache, and stripes the
// stripe count (0 = DefaultStripes). Capacities below 1 are clamped to 1.
func NewShared(newEngine func() sp.Oracle, n, distEntries, pathEntries, stripes int) *Shared {
	if pathEntries < 1 {
		pathEntries = 1
	}
	s := &Shared{
		newEngine: newEngine,
		n:         uint64(n),
		dists:     NewStripedLRU[float64](distEntries, stripes),
		paths:     NewStripedLRU[[]roadnet.VertexID](pathEntries, stripes),
		pathCap:   pathEntries,
	}
	s.pool.New = func() any { return newEngine() }
	return s
}

// NewSharedDefault builds a shared stack with the paper's default
// capacities and the default stripe count.
func NewSharedDefault(newEngine func() sp.Oracle, n int) *Shared {
	return NewShared(newEngine, n, DefaultDistEntries, DefaultPathEntries, 0)
}

func (s *Shared) key(u, v roadnet.VertexID) uint64 {
	return uint64(u)*s.n + uint64(v)
}

// sharedDist is the one distance lookup path: consult the shared striped
// cache, compute on the supplied engine on a miss, and publish the result
// under both directions (the graph is undirected, so cost is symmetric).
// The second return reports whether the lookup was served from the cache
// (u == v counts as a hit; it never reaches the cache).
func (s *Shared) sharedDist(engine sp.Oracle, u, v roadnet.VertexID) (float64, bool) {
	if u == v {
		return 0, true
	}
	k := s.key(u, v)
	if d, ok := s.dists.Get(k); ok {
		return d, true
	}
	d := engine.Dist(u, v)
	s.dists.Put(k, d)
	s.dists.Put(s.key(v, u), d)
	return d, false
}

// Dist returns the shortest-path cost from u to v, consulting the shared
// distance cache first and computing misses on a pooled engine. Safe for
// concurrent use. Direct calls are not latency-sampled (sampler state is
// single-writer); hot loops go through SharedWorker facades, which are.
func (s *Shared) Dist(u, v roadnet.VertexID) float64 {
	engine := s.pool.Get().(sp.Oracle)
	d, _ := s.sharedDist(engine, u, v)
	s.pool.Put(engine)
	return d
}

// Path returns a shortest path from u to v, consulting the stack's own
// striped path cache first. Safe for concurrent use. The returned slice is
// shared with the cache and must not be modified.
func (s *Shared) Path(u, v roadnet.VertexID) []roadnet.VertexID {
	if u == v {
		return []roadnet.VertexID{u}
	}
	k := s.key(u, v)
	if p, ok := s.paths.Get(k); ok {
		return p
	}
	engine := s.pool.Get().(sp.Oracle)
	p := engine.Path(u, v)
	s.pool.Put(engine)
	s.paths.Put(k, p)
	s.paths.Put(s.key(v, u), reversePath(p))
	return p
}

// ConcurrencySafe marks Shared as an sp.SharedOracle.
func (s *Shared) ConcurrencySafe() {}

// NewWorker returns a facade for the exclusive use of one goroutine: its
// Dist consults the shared striped distance cache (publishing misses for
// every other worker), while Path runs against a private path cache and a
// private inner engine. Facades may be created concurrently.
func (s *Shared) NewWorker() *SharedWorker {
	w := &SharedWorker{
		shared:  s,
		engine:  s.newEngine(),
		paths:   NewLRU[[]roadnet.VertexID](s.pathCap),
		sampler: newDistSampler(),
	}
	s.mu.Lock()
	s.workers = append(s.workers, w)
	s.mu.Unlock()
	return w
}

// NewWorkerOracle implements sp.WorkerSource.
func (s *Shared) NewWorkerOracle() sp.Oracle { return s.NewWorker() }

// DistStats returns hit/miss counts of the shared distance cache,
// aggregated losslessly across its stripes.
func (s *Shared) DistStats() (hits, misses uint64) { return s.dists.Stats() }

// PathStats returns hit/miss counts summed over the stack's own path cache
// and every worker facade's private path cache. Worker path caches are
// single-threaded, so call this only while the workers are quiescent (the
// dispatch engine reads stats between fan-outs, from the driving
// goroutine).
func (s *Shared) PathStats() (hits, misses uint64) {
	hits, misses = s.paths.Stats()
	s.mu.Lock()
	workers := s.workers
	s.mu.Unlock()
	for _, w := range workers {
		h, m := w.paths.Stats()
		hits += h
		misses += m
	}
	return hits, misses
}

// DistLatency returns fresh histograms merging the sampled distance-lookup
// latency of every worker facade, split by shared-cache outcome. Worker
// samplers are single-threaded, so — like PathStats — call this only while
// the workers are quiescent.
func (s *Shared) DistLatency() (hit, miss *obs.Histogram) {
	hit, miss = obs.NewHistogram(), obs.NewHistogram()
	s.mu.Lock()
	workers := s.workers
	s.mu.Unlock()
	for _, w := range workers {
		hit.Merge(w.sampler.hit)
		miss.Merge(w.sampler.miss)
	}
	return hit, miss
}

// SharedWorker is a per-goroutine facade over a Shared stack. It implements
// sp.Oracle; like the plain engines it must not be shared across
// goroutines (its inner engine and path cache are private and unlocked),
// but all facades of one stack read and feed the same distance cache.
type SharedWorker struct {
	shared  *Shared
	engine  sp.Oracle
	paths   *LRU[[]roadnet.VertexID]
	sampler *distSampler
}

// Dist returns the shortest-path cost from u to v via the shared distance
// cache, computing misses on this worker's private engine.
func (w *SharedWorker) Dist(u, v roadnet.VertexID) float64 {
	start := w.sampler.start()
	d, hit := w.shared.sharedDist(w.engine, u, v)
	w.sampler.record(start, hit)
	return d
}

// Path returns a shortest path from u to v via this worker's private path
// cache, priming the reverse direction as cache.Oracle.Path does. The
// returned slice is shared with the cache and must not be modified.
func (w *SharedWorker) Path(u, v roadnet.VertexID) []roadnet.VertexID {
	if u == v {
		return []roadnet.VertexID{u}
	}
	k := w.shared.key(u, v)
	if p, ok := w.paths.Get(k); ok {
		return p
	}
	p := w.engine.Path(u, v)
	w.paths.Put(k, p)
	w.paths.Put(w.shared.key(v, u), reversePath(p))
	return p
}

// Shared returns the stack this facade belongs to, which carries the
// aggregate cache statistics.
func (w *SharedWorker) Shared() *Shared { return w.shared }
