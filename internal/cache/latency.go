package cache

import (
	"time"

	"repro/internal/obs"
)

// distSampleEvery makes the latency instrumentation cheap enough for the
// distance hot path (millions of lookups per run): 1 in every 64 Dist
// calls is timed, the rest pay one counter increment and a branch. The
// counter is deterministic — which calls get sampled depends only on call
// order, never on timing — so sampling cannot perturb control flow, and
// traced/instrumented runs stay bit-identical.
const distSampleEvery = 64

// distSampler records sampled distance-lookup latency split by cache
// outcome. Single-writer, like the oracle that owns it.
type distSampler struct {
	n    uint64
	hit  *obs.Histogram
	miss *obs.Histogram
}

func newDistSampler() *distSampler {
	return &distSampler{hit: obs.NewHistogram(), miss: obs.NewHistogram()}
}

// start marks the beginning of one Dist call, returning the zero Time for
// the (majority of) unsampled calls.
func (d *distSampler) start() time.Time {
	d.n++
	if d.n%distSampleEvery != 0 {
		return time.Time{}
	}
	return time.Now() //vetkit:allow determinism latency sampler: wall time feeds only the hit/miss latency histograms, never cache contents
}

// record finishes a sampled call; no-op for unsampled ones.
func (d *distSampler) record(start time.Time, hit bool) {
	if start.IsZero() {
		return
	}
	ns := time.Since(start).Nanoseconds() //vetkit:allow determinism latency sampler: measures the call it brackets, never cache contents
	if hit {
		d.hit.Record(ns)
	} else {
		d.miss.Record(ns)
	}
}
