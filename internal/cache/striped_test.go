package cache

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestStripedLRUBasic(t *testing.T) {
	c := NewStripedLRU[int](64, 4)
	if c.Stripes() != 4 {
		t.Fatalf("Stripes=%d, want 4", c.Stripes())
	}
	if c.Cap() != 64 {
		t.Fatalf("Cap=%d, want 64", c.Cap())
	}
	if _, ok := c.Get(1); ok {
		t.Fatal("empty cache returned a value")
	}
	c.Put(1, 100)
	c.Put(2, 200)
	if v, ok := c.Get(1); !ok || v != 100 {
		t.Fatalf("Get(1) = (%d, %v), want (100, true)", v, ok)
	}
	c.Put(1, 101) // update
	if v, _ := c.Get(1); v != 101 {
		t.Fatalf("updated value = %d, want 101", v)
	}
	if c.Len() != 2 {
		t.Fatalf("Len=%d, want 2", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("Stats = (%d, %d), want (2, 1)", hits, misses)
	}
	if got := c.HitRate(); got != 2.0/3.0 {
		t.Fatalf("HitRate=%v, want 2/3", got)
	}
}

func TestStripedLRUStripeRounding(t *testing.T) {
	// Stripe count rounds up to a power of two; 0 selects the default.
	if got := NewStripedLRU[int](10, 5).Stripes(); got != 8 {
		t.Fatalf("stripes(5) rounded to %d, want 8", got)
	}
	if got := NewStripedLRU[int](10, 0).Stripes(); got != DefaultStripes {
		t.Fatalf("stripes(0) = %d, want %d", got, DefaultStripes)
	}
	// Tiny capacity still gives every stripe at least one slot.
	c := NewStripedLRU[int](1, 8)
	if c.Cap() < c.Stripes() {
		t.Fatalf("Cap=%d smaller than stripe count %d", c.Cap(), c.Stripes())
	}
}

func TestStripedLRUEviction(t *testing.T) {
	c := NewStripedLRU[int](16, 4)
	for k := uint64(0); k < 10_000; k++ {
		c.Put(k, int(k))
	}
	if c.Len() > c.Cap() {
		t.Fatalf("Len=%d exceeds Cap=%d after churn", c.Len(), c.Cap())
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestStripedLRUConcurrent is the -race stress test: goroutines hammer
// overlapping key ranges with Get/Put while others poll Stats/Len, then the
// counters must account for every single Get losslessly.
func TestStripedLRUConcurrent(t *testing.T) {
	const (
		goroutines = 8
		opsEach    = 5_000
		keyspace   = 1 << 10
	)
	c := NewStripedLRU[uint64](256, 8)
	var gets atomic.Uint64
	var wg, readers sync.WaitGroup
	stop := make(chan struct{})

	// Readers of the aggregate views race against the mutators.
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Stats()
				c.HitRate()
				c.Len()
			}
		}()
	}

	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			state := seed*0x9e3779b97f4a7c15 + 1
			for i := 0; i < opsEach; i++ {
				state = state*6364136223846793005 + 1442695040888963407
				k := (state >> 16) % keyspace
				if state&1 == 0 {
					c.Put(k, k*2)
					continue
				}
				if v, ok := c.Get(k); ok && v != k*2 {
					t.Errorf("Get(%d) returned %d, want %d", k, v, k*2)
				}
				gets.Add(1)
			}
		}(uint64(g + 1))
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	hits, misses := c.Stats()
	if hits+misses != gets.Load() {
		t.Fatalf("lossy counters: hits+misses = %d, issued %d Gets", hits+misses, gets.Load())
	}
	if c.Len() > c.Cap() {
		t.Fatalf("Len=%d exceeds Cap=%d", c.Len(), c.Cap())
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}
