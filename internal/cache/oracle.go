package cache

import (
	"repro/internal/obs"
	"repro/internal/roadnet"
	"repro/internal/sp"
)

// Default capacities from the paper (§VI): "one storing up to ten million
// shortest distances and the other storing up to ten thousand shortest paths
// (separate caches are used because more distances can be stored in memory,
// and shortest distance is needed more often than shortest path)".
const (
	DefaultDistEntries = 10_000_000
	DefaultPathEntries = 10_000
)

// Oracle wraps an sp.Oracle with the paper's two LRU caches, both indexed
// by the combined key id(s)·|V| + id(e).
//
// Not safe for concurrent use (neither are the wrapped engines).
type Oracle struct {
	inner   sp.Oracle
	n       uint64
	dists   *LRU[float64]
	paths   *LRU[[]roadnet.VertexID]
	sampler *distSampler
}

// New returns a caching wrapper around inner for a graph with n vertices,
// with the given cache capacities. Capacities below 1 are clamped to 1.
func New(inner sp.Oracle, n int, distEntries, pathEntries int) *Oracle {
	return &Oracle{
		inner:   inner,
		n:       uint64(n),
		dists:   NewLRU[float64](distEntries),
		paths:   NewLRU[[]roadnet.VertexID](pathEntries),
		sampler: newDistSampler(),
	}
}

// NewDefault returns a caching wrapper with the paper's default capacities.
func NewDefault(inner sp.Oracle, n int) *Oracle {
	return New(inner, n, DefaultDistEntries, DefaultPathEntries)
}

func (o *Oracle) key(u, v roadnet.VertexID) uint64 {
	return uint64(u)*o.n + uint64(v)
}

// Dist returns the shortest-path cost from u to v, consulting the distance
// cache first.
func (o *Oracle) Dist(u, v roadnet.VertexID) float64 {
	if u == v {
		return 0
	}
	start := o.sampler.start()
	k := o.key(u, v)
	if d, ok := o.dists.Get(k); ok {
		o.sampler.record(start, true)
		return d
	}
	d := o.inner.Dist(u, v)
	o.dists.Put(k, d)
	// The graph is undirected; a shortest path cost is symmetric, so prime
	// the reverse direction too.
	o.dists.Put(o.key(v, u), d)
	o.sampler.record(start, false)
	return d
}

// Path returns a shortest path from u to v, consulting the path cache first.
// The returned slice is shared with the cache and must not be modified.
func (o *Oracle) Path(u, v roadnet.VertexID) []roadnet.VertexID {
	if u == v {
		return []roadnet.VertexID{u}
	}
	k := o.key(u, v)
	if p, ok := o.paths.Get(k); ok {
		return p
	}
	p := o.inner.Path(u, v)
	o.paths.Put(k, p)
	// The graph is undirected, so the reverse of a shortest path is a
	// shortest path (and an unreachable pair is unreachable both ways):
	// prime the opposite direction as Dist does.
	o.paths.Put(o.key(v, u), reversePath(p))
	return p
}

// reversePath returns a reversed copy of p; nil (unreachable) stays nil.
func reversePath(p []roadnet.VertexID) []roadnet.VertexID {
	if p == nil {
		return nil
	}
	r := make([]roadnet.VertexID, len(p))
	for i, v := range p {
		r[len(p)-1-i] = v
	}
	return r
}

// DistStats returns hit/miss counts of the distance cache.
func (o *Oracle) DistStats() (hits, misses uint64) { return o.dists.Stats() }

// PathStats returns hit/miss counts of the path cache.
func (o *Oracle) PathStats() (hits, misses uint64) { return o.paths.Stats() }

// DistLatency returns the sampled distance-lookup latency distributions,
// split by cache outcome (1 in distSampleEvery calls is timed). The
// returned histograms are live — read them only while the oracle is
// quiescent.
func (o *Oracle) DistLatency() (hit, miss *obs.Histogram) {
	return o.sampler.hit, o.sampler.miss
}
