package cache

import (
	"testing"

	"repro/internal/roadnet"
	"repro/internal/sp"
)

// TestOraclePathReversePrime: Path must prime the reversed direction the
// way Dist always has — the second lookup direction is served from the
// cache, reversed, without touching the engine.
func TestOraclePathReversePrime(t *testing.T) {
	g := testGraph(t)
	inner := &countingOracle{inner: sp.NewBidirectional(g)}
	o := New(inner, g.N(), 1<<10, 1<<10)

	p := o.Path(0, 20)
	if len(p) < 2 || p[0] != 0 || p[len(p)-1] != 20 {
		t.Fatalf("bad path %v", p)
	}
	rev := o.Path(20, 0)
	if inner.paths != 1 {
		t.Fatalf("engine ran %d path queries, want 1 (reverse must be primed)", inner.paths)
	}
	if len(rev) != len(p) {
		t.Fatalf("reverse path length %d, want %d", len(rev), len(p))
	}
	for i := range p {
		if rev[i] != p[len(p)-1-i] {
			t.Fatalf("reverse path %v is not the mirror of %v", rev, p)
		}
	}
	hits, misses := o.PathStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("PathStats = (%d, %d), want (1, 1)", hits, misses)
	}
}

// TestOraclePathUnreachable: an unreachable pair is cached as nil under
// both directions, and lookups keep working — repeat queries in either
// direction return nil from the cache without re-running the search.
func TestOraclePathUnreachable(t *testing.T) {
	// Two disconnected components: 0—1 and 2—3.
	b := roadnet.NewBuilder(0)
	for i := 0; i < 4; i++ {
		b.AddVertex(float64(i)*1000, 0)
	}
	b.AddEdge(0, 1, 1000)
	b.AddEdge(2, 3, 1000)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	inner := &countingOracle{inner: sp.NewDijkstra(g)}
	o := New(inner, g.N(), 16, 16)

	if d := o.Dist(0, 2); d != sp.Inf {
		t.Fatalf("Dist(0,2) = %v, want +Inf", d)
	}
	if p := o.Path(0, 2); p != nil {
		t.Fatalf("Path(0,2) = %v, want nil", p)
	}
	engineCalls := inner.paths
	// Both directions must now be cache hits that still report unreachable.
	if p := o.Path(0, 2); p != nil {
		t.Fatalf("cached Path(0,2) = %v, want nil", p)
	}
	if p := o.Path(2, 0); p != nil {
		t.Fatalf("cached Path(2,0) = %v, want nil", p)
	}
	if inner.paths != engineCalls {
		t.Fatalf("engine re-ran an unreachable path query (%d calls, want %d)", inner.paths, engineCalls)
	}
	// Reachable queries still work around the cached nils.
	if p := o.Path(2, 3); len(p) != 2 || p[0] != 2 || p[1] != 3 {
		t.Fatalf("Path(2,3) = %v, want [2 3]", p)
	}
	if d := o.Dist(1, 0); d != 1000 {
		t.Fatalf("Dist(1,0) = %v, want 1000", d)
	}
}
