package dispatch

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// TestCityScaleEquivalence is the pooling/tuning half of the equivalence
// story: assignments must be bit-identical to the sequential baseline with
// node pooling on or off, at 1/4/8 workers, in immediate and batch mode,
// and with auto-tuned sharding and cell size. Run under -race this also
// shakes out any cross-goroutine reuse of a pooled node. The baseline is
// computed with pooling disabled, so a pooled run that leaked stale state
// into a recycled node would diverge from it.
func TestCityScaleEquivalence(t *testing.T) {
	g, factory, reqs := testWorld(t, 150)
	defer core.SetNodePooling(true)

	core.SetNodePooling(false)
	seq, err := sim.New(baseConfig(g, factory, sim.AlgoTreeSlack))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int, len(reqs))
	for i, r := range reqs {
		matched, veh := seq.Submit(r)
		if !matched {
			veh = -1
		}
		want[i] = veh
	}
	seq.Drain()
	if err := seq.CheckInvariants(); err != nil {
		t.Fatalf("sequential baseline invariants: %v", err)
	}

	// Batch mode matches each window at its flush instant, so it has its
	// own sequential baseline: the same greedy pass over the
	// flush-stamped stream (still with pooling off).
	const window = 20.0
	ft := greedyFlushTimes(reqs, window)
	seqB, err := sim.New(baseConfig(g, factory, sim.AlgoTreeSlack))
	if err != nil {
		t.Fatal(err)
	}
	wantBatch := make([]int, len(reqs))
	for i, r := range reqs {
		r.Time = ft[i]
		matched, veh := seqB.Submit(r)
		if !matched {
			veh = -1
		}
		wantBatch[i] = veh
	}

	for _, pooling := range []bool{false, true} {
		for _, workers := range []int{1, 4, 8} {
			for _, mode := range []struct {
				name  string
				batch float64
				tune  bool
			}{
				{"immediate", 0, false},
				{"batch", window, false},
				{"autotune", 0, true},
			} {
				core.SetNodePooling(pooling)
				cfg := baseConfig(g, factory, sim.AlgoTreeSlack)
				cfg.Workers = workers
				cfg.Shards = workers
				cfg.BatchWindow = mode.batch
				if mode.tune {
					cfg.Shards = 0 // let the tuner derive it
					cfg.AutoTune = true
				}
				e, err := New(cfg, factory)
				if err != nil {
					t.Fatal(err)
				}
				label := func() string {
					p := "pool=off"
					if pooling {
						p = "pool=on"
					}
					return p + " " + mode.name
				}()
				if mode.batch > 0 {
					for _, r := range reqs {
						e.Enqueue(r)
					}
					e.Flush()
					for i, r := range reqs {
						veh, ok := e.Assignment(r.ID)
						if !ok {
							t.Fatalf("%s workers=%d: request %d never resolved", label, workers, i)
						}
						if veh != wantBatch[i] {
							t.Fatalf("%s workers=%d: request %d assigned to %d, baseline chose %d",
								label, workers, i, veh, wantBatch[i])
						}
					}
				} else {
					for i, r := range reqs {
						matched, veh := e.Submit(r)
						if !matched {
							veh = -1
						}
						if veh != want[i] {
							t.Fatalf("%s workers=%d: request %d assigned to %d, baseline chose %d",
								label, workers, i, veh, want[i])
						}
					}
				}
				if err := e.Drain(); err != nil {
					t.Fatalf("%s workers=%d: drain: %v", label, workers, err)
				}
				if err := e.CheckInvariants(); err != nil {
					t.Fatalf("%s workers=%d: invariants: %v", label, workers, err)
				}
				e.Close()
			}
		}
	}
}
