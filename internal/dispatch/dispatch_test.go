package dispatch

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/roadnet"
	"repro/internal/sim"
	"repro/internal/sp"
)

// testWorld builds a small city, a per-caller oracle factory, and a
// deterministic request stream (one request every 5 simulated seconds).
func testWorld(t testing.TB, trips int) (*roadnet.Graph, OracleFactory, []sim.Request) {
	t.Helper()
	g, err := roadnet.Grid(roadnet.GridOptions{
		Rows: 20, Cols: 20, Spacing: 400, Jitter: 0.2, WeightVar: 0.1, DropFrac: 0.05, Seed: 7,
	})
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	factory := func() sp.Oracle {
		return cache.New(sp.NewBidirectional(g), g.N(), 1<<20, 1<<14)
	}
	reqs := make([]sim.Request, 0, trips)
	nv := int32(g.N())
	state := int64(12345) // LCG, stable across Go versions
	next := func(mod int32) int32 {
		state = state*6364136223846793005 + 1442695040888963407
		v := int32((state >> 33) % int64(mod))
		if v < 0 {
			v += mod
		}
		return v
	}
	for len(reqs) < trips {
		s := roadnet.VertexID(next(nv))
		e := roadnet.VertexID(next(nv))
		if s == e || g.EuclideanDist(s, e) < 800 {
			continue
		}
		reqs = append(reqs, sim.Request{
			ID:      int64(len(reqs)),
			Time:    float64(len(reqs)) * 5,
			Pickup:  s,
			Dropoff: e,
		})
	}
	return g, factory, reqs
}

func baseConfig(g *roadnet.Graph, factory OracleFactory, algo sim.Algorithm) sim.Config {
	return sim.Config{
		Graph:     g,
		Oracle:    factory(),
		Servers:   25,
		Capacity:  4,
		Algorithm: algo,
		Seed:      42,
	}
}

// floatsClose compares totals that may differ in summation order across
// shard counts.
func floatsClose(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}

func compareMetrics(t *testing.T, label string, seq, got *sim.Metrics) {
	t.Helper()
	if seq.Requests != got.Requests || seq.Matched != got.Matched || seq.Rejected != got.Rejected {
		t.Errorf("%s: counts diverge: seq req/match/rej=%d/%d/%d got %d/%d/%d",
			label, seq.Requests, seq.Matched, seq.Rejected, got.Requests, got.Matched, got.Rejected)
	}
	if seq.Completed != got.Completed || seq.Violations != got.Violations {
		t.Errorf("%s: completed/violations diverge: seq %d/%d got %d/%d",
			label, seq.Completed, seq.Violations, got.Completed, got.Violations)
	}
	if seq.TrialCalls != got.TrialCalls || seq.TrialFailures != got.TrialFailures || seq.OverBudget != got.OverBudget {
		t.Errorf("%s: trial counters diverge: seq %d/%d/%d got %d/%d/%d",
			label, seq.TrialCalls, seq.TrialFailures, seq.OverBudget, got.TrialCalls, got.TrialFailures, got.OverBudget)
	}
	if seq.TreeNodesMax != got.TreeNodesMax {
		t.Errorf("%s: TreeNodesMax %d vs %d", label, seq.TreeNodesMax, got.TreeNodesMax)
	}
	if !seq.Occupancy.Equal(got.Occupancy) {
		t.Errorf("%s: occupancy distributions diverge: seq %v got %v",
			label, seq.Occupancy, got.Occupancy)
	}
	// Match-latency values are wall times and differ across engines, but
	// both record exactly one sample per request.
	if seq.MatchLatency.Count() != got.MatchLatency.Count() {
		t.Errorf("%s: match-latency sample counts diverge: seq %d got %d",
			label, seq.MatchLatency.Count(), got.MatchLatency.Count())
	}
	for _, f := range []struct {
		name     string
		seq, got float64
	}{
		{"TotalWaitMeters", seq.TotalWaitMeters, got.TotalWaitMeters},
		{"TotalRideMeters", seq.TotalRideMeters, got.TotalRideMeters},
		{"TotalShortestLen", seq.TotalShortestLen, got.TotalShortestLen},
		{"TotalVehicleMeters", seq.TotalVehicleMeters, got.TotalVehicleMeters},
	} {
		if !floatsClose(f.seq, f.got) {
			t.Errorf("%s: %s diverges: %v vs %v", label, f.name, f.seq, f.got)
		}
	}
}

// TestSequentialEquivalence: for a fixed seed, the engine must produce the
// identical per-request vehicle assignments and metrics as the sequential
// Simulator, at every worker/shard combination, for both a kinetic-tree and
// a stateless algorithm.
func TestSequentialEquivalence(t *testing.T) {
	cases := []struct {
		algo  sim.Algorithm
		trips int
	}{
		{sim.AlgoTreeSlack, 120},
		{sim.AlgoBranchBound, 60},
	}
	grids := []struct{ workers, shards int }{
		{1, 1}, {4, 4}, {8, 8}, {2, 5}, {4, 8},
	}
	for _, tc := range cases {
		t.Run(tc.algo.String(), func(t *testing.T) {
			g, factory, reqs := testWorld(t, tc.trips)

			seq, err := sim.New(baseConfig(g, factory, tc.algo))
			if err != nil {
				t.Fatal(err)
			}
			want := make([]int, len(reqs))
			for i, r := range reqs {
				matched, veh := seq.Submit(r)
				if !matched {
					veh = -1
				}
				want[i] = veh
			}
			seq.Drain()
			if err := seq.CheckInvariants(); err != nil {
				t.Fatalf("sequential invariants: %v", err)
			}

			for _, wc := range grids {
				cfg := baseConfig(g, factory, tc.algo)
				cfg.Workers = wc.workers
				cfg.Shards = wc.shards
				e, err := New(cfg, factory)
				if err != nil {
					t.Fatal(err)
				}
				for i, r := range reqs {
					matched, veh := e.Submit(r)
					if !matched {
						veh = -1
					}
					if veh != want[i] {
						t.Fatalf("workers=%d shards=%d: request %d assigned to %d, sequential chose %d",
							wc.workers, wc.shards, i, veh, want[i])
					}
				}
				e.Drain()
				if err := e.CheckInvariants(); err != nil {
					t.Fatalf("workers=%d shards=%d: invariants: %v", wc.workers, wc.shards, err)
				}
				compareMetrics(t, algoLabel(tc.algo, wc.workers, wc.shards), seq.Metrics(), e.Metrics())
				e.Close()
			}
		})
	}
}

func algoLabel(a sim.Algorithm, workers, shards int) string {
	return a.String() + "/w" + string(rune('0'+workers)) + "s" + string(rune('0'+shards))
}

// TestSharedCacheEquivalence: assignments must be bit-identical whether the
// shards run cold private caches (OracleFactory) or one fleet-wide shared
// distance cache (cache.Shared via cfg.Oracle), at 1/4/8 workers — exact
// distances do not depend on which cache served them. The shared
// configuration must also report an aggregate hit rate at least as high as
// the per-shard one on the multi-shard runs.
func TestSharedCacheEquivalence(t *testing.T) {
	g, factory, reqs := testWorld(t, 120)

	run := func(workers int, shared bool) ([]int, *sim.Metrics) {
		cfg := baseConfig(g, factory, sim.AlgoTreeSlack)
		cfg.Workers = workers
		cfg.Shards = workers
		var e *Engine
		var err error
		if shared {
			cfg.Oracle = cache.NewShared(func() sp.Oracle {
				return sp.NewBidirectional(g)
			}, g.N(), 1<<20, 1<<14, 8)
			e, err = New(cfg, nil)
		} else {
			e, err = New(cfg, factory)
		}
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		got := make([]int, len(reqs))
		for i, r := range reqs {
			matched, veh := e.Submit(r)
			if !matched {
				veh = -1
			}
			got[i] = veh
		}
		e.Drain()
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("workers=%d shared=%v: invariants: %v", workers, shared, err)
		}
		return got, e.Metrics()
	}

	want, _ := run(1, false)
	for _, workers := range []int{1, 4, 8} {
		perShard, pm := run(workers, false)
		sharedGot, sm := run(workers, true)
		for i := range want {
			if perShard[i] != want[i] {
				t.Fatalf("workers=%d per-shard: request %d assigned to %d, baseline chose %d",
					workers, i, perShard[i], want[i])
			}
			if sharedGot[i] != want[i] {
				t.Fatalf("workers=%d shared-cache: request %d assigned to %d, baseline chose %d",
					workers, i, sharedGot[i], want[i])
			}
		}
		if sm.DistCacheHits+sm.DistCacheMisses == 0 {
			t.Fatalf("workers=%d: shared run reported no distance-cache traffic", workers)
		}
		if workers > 1 && sm.DistCacheHitRate() < pm.DistCacheHitRate() {
			t.Errorf("workers=%d: shared hit rate %.4f below per-shard %.4f",
				workers, sm.DistCacheHitRate(), pm.DistCacheHitRate())
		}
	}
}

// TestBatchDeterminismAcrossWorkers: batch-window matching is defined by a
// deterministic greedy pass, so assignments must be identical at every
// worker/shard count.
func TestBatchDeterminismAcrossWorkers(t *testing.T) {
	g, factory, reqs := testWorld(t, 100)
	run := func(workers, shards int) (map[int64]int, *sim.Metrics) {
		cfg := baseConfig(g, factory, sim.AlgoTreeSlack)
		cfg.Workers = workers
		cfg.Shards = shards
		cfg.BatchWindow = 30 // six requests per window at one per 5s
		e, err := New(cfg, factory)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		m, err := e.Run(reqs)
		if err != nil {
			t.Fatalf("workers=%d: run: %v", workers, err)
		}
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("workers=%d: invariants: %v", workers, err)
		}
		got := make(map[int64]int, len(reqs))
		for _, r := range reqs {
			veh, ok := e.Assignment(r.ID)
			if !ok {
				t.Fatalf("workers=%d: request %d never dispatched", workers, r.ID)
			}
			got[r.ID] = veh
		}
		return got, m
	}
	wantAssign, wantMetrics := run(1, 1)
	if wantMetrics.Matched == 0 {
		t.Fatal("batch run matched nothing — workload broken")
	}
	for _, wc := range []struct{ workers, shards int }{{4, 4}, {8, 3}} {
		gotAssign, gotMetrics := run(wc.workers, wc.shards)
		for id, want := range wantAssign {
			if gotAssign[id] != want {
				t.Fatalf("workers=%d shards=%d: request %d assigned to %d, baseline chose %d",
					wc.workers, wc.shards, id, gotAssign[id], want)
			}
		}
		if wantMetrics.Matched != gotMetrics.Matched || wantMetrics.Rejected != gotMetrics.Rejected ||
			wantMetrics.Completed != gotMetrics.Completed || wantMetrics.Violations != gotMetrics.Violations {
			t.Fatalf("workers=%d shards=%d: batch metrics diverge: %v vs %v",
				wc.workers, wc.shards, wantMetrics, gotMetrics)
		}
	}
}

// TestBatchConflictResolution: two requests in one window contending for
// the same (only) vehicle — the earlier one wins it outright, the later one
// must be resolved against the post-commit state, not its stale phase-1
// trial.
func TestBatchConflictResolution(t *testing.T) {
	g, factory, _ := testWorld(t, 1)
	cfg := baseConfig(g, factory, sim.AlgoTreeSlack)
	cfg.Servers = 1
	cfg.Workers = 2
	cfg.Shards = 1
	cfg.BatchWindow = 60
	e, err := New(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Place both trips near the vehicle so both are individually feasible.
	loc := sim.Placements(cfg)[0].Loc
	oracle := factory()
	var a, b roadnet.VertexID = -1, -1
	for d := 0; d < g.N(); d++ {
		dd := oracle.Dist(loc, roadnet.VertexID(d))
		if dd > 1200 && dd < 3000 {
			if a < 0 {
				a = roadnet.VertexID(d)
			} else if roadnet.VertexID(d) != a {
				b = roadnet.VertexID(d)
				break
			}
		}
	}
	if a < 0 || b < 0 {
		t.Skip("graph too small to stage the conflict")
	}
	e.Enqueue(sim.Request{ID: 1, Time: 1, Pickup: loc, Dropoff: a})
	e.Enqueue(sim.Request{ID: 2, Time: 2, Pickup: loc, Dropoff: b})
	e.Flush()
	if veh, ok := e.Assignment(1); !ok || veh != 0 {
		t.Fatalf("first request should win the only vehicle, got (%d, %v)", veh, ok)
	}
	if _, ok := e.Assignment(2); !ok {
		t.Fatal("second request was never resolved")
	}
	m := e.Metrics()
	if m.Requests != 2 {
		t.Fatalf("Requests=%d, want 2", m.Requests)
	}
	e.Drain()
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestCancel: a request cancelled inside its batch window is never
// dispatched; one already flushed cannot be cancelled.
func TestCancel(t *testing.T) {
	g, factory, reqs := testWorld(t, 3)
	cfg := baseConfig(g, factory, sim.AlgoTreeSlack)
	cfg.Workers = 2
	cfg.Shards = 2
	cfg.BatchWindow = 1000
	e, err := New(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	e.Enqueue(reqs[0])
	e.Enqueue(reqs[1])
	if e.Pending() != 2 {
		t.Fatalf("Pending=%d, want 2", e.Pending())
	}
	if !e.Cancel(reqs[0].ID) {
		t.Fatal("cancel of a pending request failed")
	}
	if e.Cancel(reqs[0].ID) {
		t.Fatal("double cancel succeeded")
	}
	if e.Cancel(999) {
		t.Fatal("cancel of an unknown request succeeded")
	}
	e.Flush()
	if e.Pending() != 0 {
		t.Fatalf("Pending=%d after flush", e.Pending())
	}
	if _, ok := e.Assignment(reqs[0].ID); ok {
		t.Fatal("cancelled request was dispatched")
	}
	if _, ok := e.Assignment(reqs[1].ID); !ok {
		t.Fatal("surviving request was not dispatched")
	}
	if e.Cancel(reqs[1].ID) {
		t.Fatal("cancelled a request that was already flushed")
	}
	if m := e.Metrics(); m.Requests != 1 {
		t.Fatalf("Requests=%d, want 1 (cancelled requests are never submitted)", m.Requests)
	}
}

// TestNewValidation covers the constructor's misuse errors.
func TestNewValidation(t *testing.T) {
	g, factory, _ := testWorld(t, 1)
	cfg := baseConfig(g, factory, sim.AlgoTreeSlack)
	cfg.Workers = 4
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("multi-worker engine without an OracleFactory must be rejected")
	}
	cfg.Workers = 1
	cfg.Oracle = nil
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("engine without any oracle must be rejected")
	}
	cfg.Servers = 0
	if _, err := New(cfg, factory); err == nil {
		t.Fatal("zero servers must be rejected")
	}
	bad := cfg
	bad.Graph = nil
	if _, err := New(bad, factory); err == nil {
		t.Fatal("missing graph must be rejected")
	}
}

// TestShardsClampedToFleet: more shards than vehicles must not create empty
// shards that break the global-ID arithmetic.
func TestShardsClampedToFleet(t *testing.T) {
	g, factory, reqs := testWorld(t, 10)
	cfg := baseConfig(g, factory, sim.AlgoTreeSlack)
	cfg.Servers = 3
	cfg.Workers = 4
	cfg.Shards = 16
	e, err := New(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Shards() != 3 {
		t.Fatalf("Shards=%d, want clamp to 3", e.Shards())
	}
	if _, err := e.Run(reqs); err != nil {
		t.Fatal(err)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchTracedEquivalence: the batch planner's instrumentation (stage
// timers, live counters, matched/rejected trace events) records but never
// branches, so a traced batch run must assign identically to the untraced
// one — and the stage histograms must actually have been fed.
func TestBatchTracedEquivalence(t *testing.T) {
	g, factory, reqs := testWorld(t, 100)
	run := func(tracer *obs.Tracer, live *obs.Live) (map[int64]int, *sim.Metrics) {
		cfg := baseConfig(g, factory, sim.AlgoTreeSlack)
		cfg.Workers = 4
		cfg.Shards = 4
		cfg.BatchWindow = 30
		cfg.Trace = tracer
		cfg.Live = live
		e, err := New(cfg, factory)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		m, err := e.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[int64]int, len(reqs))
		for _, r := range reqs {
			veh, ok := e.Assignment(r.ID)
			if !ok {
				t.Fatalf("request %d never dispatched", r.ID)
			}
			got[r.ID] = veh
		}
		return got, m
	}

	want, _ := run(nil, nil)
	tracer := obs.NewTracer(1 << 16)
	live := &obs.Live{}
	got, m := run(tracer, live)
	for id, veh := range want {
		if got[id] != veh {
			t.Fatalf("request %d assigned to %d traced, %d untraced", id, got[id], veh)
		}
	}

	// Stage timers: one flush-latency and one phase-1 sample per flush, and
	// per-flush phase-1 time can never exceed the whole flush's.
	if m.FlushLatency.Count() == 0 {
		t.Fatal("no flush-latency samples after a batch run")
	}
	if m.Phase1Latency.Count() != m.FlushLatency.Count() {
		t.Fatalf("phase1 samples %d != flush samples %d",
			m.Phase1Latency.Count(), m.FlushLatency.Count())
	}
	if m.Phase1Latency.Sum() > m.FlushLatency.Sum() {
		t.Fatalf("phase-1 time %d ns exceeds total flush time %d ns",
			m.Phase1Latency.Sum(), m.FlushLatency.Sum())
	}
	if uint64(m.ConflictsRepaired) != m.RepairLatency.Count() {
		t.Fatalf("%d conflicts repaired but %d repair-latency samples",
			m.ConflictsRepaired, m.RepairLatency.Count())
	}

	// Live counters match the final metrics.
	snap := live.Snapshot()
	if snap.Requests != int64(m.Requests) || snap.Matched != int64(m.Matched) ||
		snap.Rejected != int64(m.Rejected) || snap.Conflicts != int64(m.ConflictsRepaired) {
		t.Fatalf("live %+v diverges from metrics req=%d matched=%d rejected=%d conflicts=%d",
			snap, m.Requests, m.Matched, m.Rejected, m.ConflictsRepaired)
	}
	if uint64(snap.Flushes) != m.FlushLatency.Count() {
		t.Fatalf("live flushes %d != flush samples %d", snap.Flushes, m.FlushLatency.Count())
	}

	// The trace resolved every request exactly once.
	events := 0
	var buf bytes.Buffer
	written, dropped, err := tracer.Drain(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("%d events dropped with oversized rings", dropped)
	}
	resolved := 0
	for _, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		var ev struct {
			Event string `json:"event"`
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		events++
		if ev.Event == "matched" || ev.Event == "rejected" {
			resolved++
		}
	}
	if resolved != len(reqs) {
		t.Fatalf("%d matched/rejected events, want %d", resolved, len(reqs))
	}
	if written != events {
		t.Fatalf("written=%d but read %d lines", written, events)
	}
}
