package dispatch

import (
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/roadnet"
	"repro/internal/sim"
	"repro/internal/sp"
)

// greedyFlushTimes replicates the engine's batch-window bookkeeping
// (Enqueue clamping, boundary flushes, final Flush) and returns the flush
// instant each request is matched at. Stamping the stream with these times
// and replaying it through the sequential Simulator is the definitional
// greedy arrival-order pass the batch planner must reproduce.
func greedyFlushTimes(reqs []sim.Request, window float64) []float64 {
	out := make([]float64, len(reqs))
	clock, start := 0.0, 0.0
	var pending []int
	flush := func(t float64) {
		if t < clock {
			t = clock
		}
		clock = t
		for _, j := range pending {
			out[j] = t
		}
		pending = pending[:0]
	}
	arrived := make([]float64, len(reqs))
	for i := range reqs {
		rt := reqs[i].Time
		if rt < clock {
			rt = clock
		}
		arrived[i] = rt
		if len(pending) == 0 {
			start = rt
		} else if rt >= start+window {
			flush(start + window)
			start = rt
		}
		pending = append(pending, i)
	}
	final := clock
	for _, j := range pending {
		if arrived[j] > final {
			final = arrived[j]
		}
	}
	flush(final)
	return out
}

// TestBatchIncrementalRepairEquivalence: with incremental conflict repair,
// batch-mode assignments must stay bit-identical to the sequential greedy
// arrival-order pass (the sequential Simulator fed the flush-stamped
// stream) at 1/4/8 workers, the repair path must actually fire, and the
// repair metrics must be identical at every parallelism.
func TestBatchIncrementalRepairEquivalence(t *testing.T) {
	g, factory, reqs := testWorld(t, 120)
	const window = 60 // twelve requests per window at one per 5 s

	// Sequential greedy reference: every request matched at its window's
	// flush instant, in arrival order, against the live fleet.
	ft := greedyFlushTimes(reqs, window)
	cfg := baseConfig(g, factory, sim.AlgoTreeSlack)
	cfg.Servers = 12 // scarce fleet so windows contend for the same vehicles
	seq, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int, len(reqs))
	for i, r := range reqs {
		r.Time = ft[i]
		matched, veh := seq.Submit(r)
		if !matched {
			veh = -1
		}
		want[i] = veh
	}

	var conflicts, saved int
	for _, workers := range []int{1, 4, 8} {
		cfg := baseConfig(g, factory, sim.AlgoTreeSlack)
		cfg.Servers = 12
		cfg.Workers = workers
		cfg.Shards = workers
		cfg.BatchWindow = window
		e, err := New(cfg, factory)
		if err != nil {
			t.Fatal(err)
		}
		for i := range reqs {
			e.Enqueue(reqs[i])
		}
		e.Flush()
		for i, r := range reqs {
			veh, ok := e.Assignment(r.ID)
			if !ok {
				t.Fatalf("workers=%d: request %d never dispatched", workers, r.ID)
			}
			if veh != want[i] {
				t.Fatalf("workers=%d: request %d assigned to %d, sequential greedy chose %d",
					workers, i, veh, want[i])
			}
		}
		if err := e.Drain(); err != nil {
			t.Fatalf("workers=%d: drain: %v", workers, err)
		}
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("workers=%d: invariants: %v", workers, err)
		}
		m := e.Metrics()
		if m.ConflictsRepaired == 0 {
			t.Fatalf("workers=%d: no conflicts repaired — the workload never exercised the repair path", workers)
		}
		if m.RetrialTrialsSaved <= 0 {
			t.Fatalf("workers=%d: RetrialTrialsSaved=%d, want > 0 (repair must beat full re-fan-out)",
				workers, m.RetrialTrialsSaved)
		}
		if workers == 1 {
			conflicts, saved = m.ConflictsRepaired, m.RetrialTrialsSaved
		} else if m.ConflictsRepaired != conflicts || m.RetrialTrialsSaved != saved {
			t.Fatalf("workers=%d: repair metrics diverge: %d/%d vs %d/%d at workers=1",
				workers, m.ConflictsRepaired, m.RetrialTrialsSaved, conflicts, saved)
		}
		e.Close()
	}
}

// TestEnqueueOutOfOrder: a request whose timestamp lags the engine clock
// must be clamped, as Submit does — otherwise it drags batchStart behind
// the clock after a flush and every subsequent window boundary is
// distorted (flushed early, splitting windows that should be whole).
func TestEnqueueOutOfOrder(t *testing.T) {
	g, factory, reqs := testWorld(t, 5)
	cfg := baseConfig(g, factory, sim.AlgoTreeSlack)
	cfg.BatchWindow = 30
	e, err := New(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Flush a first window to move the clock to 5.
	a := reqs[0]
	a.Time = 5
	e.Enqueue(a)
	e.Flush()
	if e.clock != 5 {
		t.Fatalf("clock=%v after flush, want 5", e.clock)
	}

	// A late-arriving timestamp from before the flush starts the next
	// window. Unclamped it would set batchStart=1 and make the window
	// [1, 31) even though no request can be matched before the clock.
	b := reqs[1]
	b.Time = 1
	e.Enqueue(b)
	if e.batchStart != 5 {
		t.Fatalf("batchStart=%v after stale enqueue, want clamp to clock 5", e.batchStart)
	}

	// 32 is inside the clamped window [5, 35) and must NOT trigger a
	// flush; with the unclamped start it would have been flushed at 31.
	c := reqs[2]
	c.Time = 32
	e.Enqueue(c)
	if e.Pending() != 2 {
		t.Fatalf("Pending=%d, want 2 (stale timestamp distorted the window boundary)", e.Pending())
	}

	// 35 crosses the boundary: the window flushes and both members resolve.
	d := reqs[3]
	d.Time = 35
	e.Enqueue(d)
	if e.Pending() != 1 {
		t.Fatalf("Pending=%d after boundary crossing, want 1", e.Pending())
	}
	if e.clock != 35 {
		t.Fatalf("clock=%v after boundary flush, want 35", e.clock)
	}
	for _, id := range []int64{b.ID, c.ID} {
		if _, ok := e.Assignment(id); !ok {
			t.Fatalf("request %d was not resolved by the boundary flush", id)
		}
	}
	e.Flush()
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchACRTAttribution: batch mode must attribute search time per
// request the way immediate mode does — one ACRT sample per submitted
// request (its share of the phase-1 fan-out plus any repair retrial), not
// one sample per flush — so ACRT is comparable across the two modes.
func TestBatchACRTAttribution(t *testing.T) {
	g, factory, reqs := testWorld(t, 60)
	for _, window := range []float64{0, 30} {
		cfg := baseConfig(g, factory, sim.AlgoTreeSlack)
		cfg.BatchWindow = window
		e, err := New(cfg, factory)
		if err != nil {
			t.Fatal(err)
		}
		m, err := e.Run(reqs)
		if err != nil {
			t.Fatalf("window=%v: run: %v", window, err)
		}
		if m.Requests != len(reqs) {
			t.Fatalf("window=%v: Requests=%d, want %d", window, m.Requests, len(reqs))
		}
		if m.ACRTSamples != m.Requests {
			t.Fatalf("window=%v: ACRTSamples=%d, Requests=%d — search time not attributed per request",
				window, m.ACRTSamples, m.Requests)
		}
		if m.ACRT() <= 0 {
			t.Fatalf("window=%v: ACRT=%v, want > 0", window, m.ACRT())
		}
		e.Close()
	}
}

// longHaulWorld is a 120 km line city: one committed trip across it keeps
// a vehicle busy for ~2.4 drain rounds, long enough to outlive a
// one-round cap.
func longHaulWorld(t *testing.T) *roadnet.Graph {
	t.Helper()
	const n = 61
	b := roadnet.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.SetCoord(roadnet.VertexID(i), float64(i)*2000, 0)
	}
	for i := 0; i+1 < n; i++ {
		b.AddEdge(roadnet.VertexID(i), roadnet.VertexID(i+1), 2000)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestDrainLongSchedule: a schedule that outlives the drain-round cap must
// surface an explicit truncation error (from Drain and CheckInvariants)
// instead of silently abandoning in-flight passengers, and the same
// schedule must run to completion under the default cap.
func TestDrainLongSchedule(t *testing.T) {
	line := longHaulWorld(t)
	factory := func() sp.Oracle {
		return cache.New(sp.NewBidirectional(line), line.N(), 1<<20, 1<<14)
	}

	run := func(roundCap int) (*Engine, error) {
		cfg := sim.Config{
			Graph:     line,
			Oracle:    factory(),
			Servers:   1,
			Capacity:  4,
			Algorithm: sim.AlgoTreeSlack,
			Seed:      42,
		}
		e, err := New(cfg, factory)
		if err != nil {
			t.Fatal(err)
		}
		e.drainRoundCap = roundCap

		// One trip from the vehicle's start to the far end of the line:
		// >50.4 km of driving, beyond one 3600 s round at 14 m/s.
		loc := sim.Placements(cfg)[0].Loc
		far := roadnet.VertexID(0)
		if line.EuclideanDist(loc, roadnet.VertexID(line.N()-1)) > line.EuclideanDist(loc, far) {
			far = roadnet.VertexID(line.N() - 1)
		}
		if matched, _ := e.Submit(sim.Request{ID: 1, Time: 0, Pickup: loc, Dropoff: far}); !matched {
			t.Fatal("long-haul request was not matched")
		}
		return e, e.Drain()
	}

	e, err := run(1)
	if err == nil {
		t.Fatal("Drain with a 1-round cap finished a >1-round schedule without error")
	}
	if !strings.Contains(err.Error(), "still busy") {
		t.Fatalf("truncation error %q does not name the stuck vehicles", err)
	}
	if cerr := e.CheckInvariants(); cerr == nil {
		t.Fatal("CheckInvariants did not surface the drain truncation")
	}
	e.Close()

	e, err = run(0) // default cap
	if err != nil {
		t.Fatalf("Drain under the default cap: %v", err)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m := e.Metrics(); m.Completed != 1 {
		t.Fatalf("Completed=%d after full drain, want 1", m.Completed)
	}
	e.eachVehicle(func(v *sim.Vehicle) {
		if v.Busy() {
			t.Fatal("vehicle still busy after a clean drain")
		}
	})
	e.Close()
}
