package dispatch

import (
	"time"

	"repro/internal/sim"
	"repro/internal/spatial"
)

// Batch-window matching: instead of dispatching every request the moment it
// arrives, the engine collects arrivals for Config.BatchWindow seconds and
// matches the whole window at once — the standard batching route to
// real-time throughput at city scale (Simonetto et al.; Vakayil et al.).
// Within a window the batch is matched greedily in arrival order, so the
// outcome is deterministic and independent of worker/shard count; requests
// can be cancelled at any point before their window is flushed.

// Enqueue adds a request to the current batch window. If the request's
// arrival time falls past the window boundary, the pending batch is flushed
// at the boundary first. Immediate-mode engines (BatchWindow <= 0) simply
// dispatch the request.
func (e *Engine) Enqueue(req sim.Request) {
	if e.cfg.BatchWindow <= 0 {
		e.Submit(req)
		return
	}
	if len(e.pending) == 0 {
		e.batchStart = req.Time
	} else if req.Time >= e.batchStart+e.cfg.BatchWindow {
		e.flushAt(e.batchStart + e.cfg.BatchWindow)
		e.batchStart = req.Time
	}
	e.pending = append(e.pending, req)
}

// Cancel withdraws a request that is still waiting in the batch window.
// It reports whether the request was found and removed; a request that was
// already flushed (committed or rejected) cannot be cancelled. Cancelled
// requests are never counted as submitted.
func (e *Engine) Cancel(reqID int64) bool {
	for i := range e.pending {
		if e.pending[i].ID == reqID {
			e.pending = append(e.pending[:i], e.pending[i+1:]...)
			return true
		}
	}
	return false
}

// Pending returns the number of requests waiting in the current window.
func (e *Engine) Pending() int { return len(e.pending) }

// Flush matches the pending batch immediately, without waiting for the
// window boundary.
func (e *Engine) Flush() {
	if len(e.pending) == 0 {
		return
	}
	t := e.clock
	for i := range e.pending {
		if e.pending[i].Time > t {
			t = e.pending[i].Time
		}
	}
	e.flushAt(t)
}

// flushAt matches the pending batch against the fleet state at time t.
//
// Phase 1 fans out: each shard runs every request's trial insertions over
// its own vehicles, all against the quiescent start-of-flush state, and
// records each request's candidate vehicle set. Phase 2 walks the batch
// greedily in arrival order: a request none of whose candidates have been
// committed to this flush keeps its phase-1 result (trial candidates stay
// valid until their vehicle mutates, and commits don't move vehicles, so
// candidate sets are stable for the whole flush); a request with a dirty
// candidate re-fans its trials out against the updated fleet, because a
// committed vehicle's incremental cost for a later request may have
// changed in either direction. A request rejected in phase 1 stays
// rejected — adding a trip to a tree never makes a previously infeasible
// insertion feasible. The outcome is exactly the matching a sequential
// greedy pass over the batch would produce, at fan-out parallelism, and is
// therefore identical at every worker/shard count.
func (e *Engine) flushAt(t float64) {
	batch := e.pending
	e.pending = nil
	if t < e.clock {
		t = e.clock
	}
	e.clock = t

	started := time.Now()
	waits := make([]float64, len(batch))
	epss := make([]float64, len(batch))
	radii := make([]float64, len(batch))
	pxs := make([]float64, len(batch))
	pys := make([]float64, len(batch))
	for i := range batch {
		batch[i].Time = t // the whole window is matched at the flush instant
		waits[i], epss[i] = e.shards[0].w.Budget(batch[i])
		radii[i] = e.shards[0].w.CandidateRadius(waits[i])
		pxs[i], pys[i] = e.cfg.Graph.Coord(batch[i].Pickup)
	}

	// Phase 1: per-shard bests and candidate sets for every request.
	bests := make([][]shardBest, len(batch))
	cands := make([][][]spatial.ObjectID, len(batch))
	for i := range bests {
		bests[i] = make([]shardBest, len(e.shards))
		cands[i] = make([][]spatial.ObjectID, len(e.shards))
	}
	e.parallel(func(s *shard) {
		s.drainReportsUntil(&e.cfg, t)
		for i, req := range batch {
			bests[i][s.id], cands[i][s.id] = s.trial(&e.cfg, req, pxs[i], pys[i], waits[i], epss[i], radii[i], true)
		}
	})
	e.metrics.AddACRT(time.Since(started))

	// Phase 2: greedy arrival-order commits with conflict resolution.
	dirty := make(map[int]bool)
	for i, req := range batch {
		e.metrics.Requests++
		best := reduce(bests[i])
		if best.veh >= 0 && conflicted(cands[i], dirty) {
			// A candidate was taken by an earlier request in this batch;
			// re-run the fan-out against the updated fleet.
			retrial := time.Now()
			fresh := make([]shardBest, len(e.shards))
			req := req
			e.parallel(func(s *shard) {
				fresh[s.id], _ = s.trial(&e.cfg, req, pxs[i], pys[i], waits[i], epss[i], radii[i], false)
			})
			best = reduce(fresh)
			e.metrics.AddACRT(time.Since(retrial))
		}
		if best.veh < 0 {
			e.metrics.Rejected++
			e.assigned[req.ID] = -1
			continue
		}
		s := e.shards[best.veh%len(e.shards)]
		s.w.Commit(s.vehicle(best.veh), best.trial)
		dirty[best.veh] = true
		e.assigned[req.ID] = best.veh
	}
}

// conflicted reports whether any of a request's candidate vehicles has been
// committed to during the current flush.
func conflicted(perShard [][]spatial.ObjectID, dirty map[int]bool) bool {
	if len(dirty) == 0 {
		return false
	}
	for _, ids := range perShard {
		for _, id := range ids {
			if dirty[int(id)] {
				return true
			}
		}
	}
	return false
}
