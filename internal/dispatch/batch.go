package dispatch

import (
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Batch-window matching: instead of dispatching every request the moment it
// arrives, the engine collects arrivals for Config.BatchWindow seconds and
// matches the whole window at once — the standard batching route to
// real-time throughput at city scale (Simonetto et al.; Vakayil et al.).
// Within a window the batch is matched greedily in arrival order, so the
// outcome is deterministic and independent of worker/shard count; requests
// can be cancelled at any point before their window is flushed.

// Enqueue adds a request to the current batch window. If the request's
// arrival time falls past the window boundary, the pending batch is flushed
// at the boundary first. Immediate-mode engines (BatchWindow <= 0) simply
// dispatch the request. A timestamp earlier than the engine clock is
// clamped to it, exactly as Submit does — otherwise a late-arriving
// request after a flush would drag the next window's start time backwards
// and distort every boundary that follows.
func (e *Engine) Enqueue(req sim.Request) {
	if e.cfg.BatchWindow <= 0 {
		e.Submit(req)
		return
	}
	if req.Time < e.clock {
		req.Time = e.clock // tolerate slightly out-of-order input
	}
	if len(e.pending) == 0 {
		e.batchStart = req.Time
	} else if req.Time >= e.batchStart+e.cfg.BatchWindow {
		e.flushAt(e.batchStart + e.cfg.BatchWindow)
		e.batchStart = req.Time
	}
	e.pending = append(e.pending, req)
}

// Cancel withdraws a request that is still waiting in the batch window.
// It reports whether the request was found and removed; a request that was
// already flushed (committed or rejected) cannot be cancelled. Cancelled
// requests are never counted as submitted.
func (e *Engine) Cancel(reqID int64) bool {
	for i := range e.pending {
		if e.pending[i].ID == reqID {
			e.pending = append(e.pending[:i], e.pending[i+1:]...)
			return true
		}
	}
	return false
}

// Pending returns the number of requests waiting in the current window.
func (e *Engine) Pending() int { return len(e.pending) }

// Flush matches the pending batch immediately, without waiting for the
// window boundary.
func (e *Engine) Flush() {
	if len(e.pending) == 0 {
		return
	}
	t := e.clock
	for i := range e.pending {
		if e.pending[i].Time > t {
			t = e.pending[i].Time
		}
	}
	e.flushAt(t)
}

// flushAt matches the pending batch against the fleet state at time t.
//
// Phase 1 fans out: each shard runs every request's trial insertions over
// its own vehicles, all against the quiescent start-of-flush state, and
// retains every feasible candidate's trial outcome — not just the
// per-shard best. Phase 2 walks the batch greedily in arrival order. A
// request none of whose feasible candidates have been committed to this
// flush keeps its cheapest retained trial (trial candidates stay valid
// until their vehicle mutates, and commits don't move vehicles, so
// candidate sets are stable for the whole flush). A request with dirty
// candidates is repaired incrementally: only the dirty
// previously-feasible candidates are re-trialed on their owning shards —
// a committed vehicle's incremental cost for a later request may have
// changed in either direction — and the fresh results are merged with the
// surviving clean trials under the same deterministic (cost, vehicle ID)
// total order. Candidates infeasible at the start of the flush are never
// revisited, and a request rejected in phase 1 stays rejected: adding a
// trip to a schedule never makes a previously infeasible insertion
// feasible. The outcome is exactly the matching a sequential greedy pass
// over the batch would produce — a full re-fan-out would merely recompute
// the clean trials and get identical results — at fan-out parallelism,
// and is therefore identical at every worker/shard count.
func (e *Engine) flushAt(t float64) {
	flushStart := time.Now() //vetkit:allow determinism flush latency metric only; assignment decisions depend solely on the virtual clock t
	flushSpanStart := e.ring.SpanStart()
	batch := e.pending
	e.pending = nil
	if t < e.clock {
		t = e.clock
	}
	e.clock = t

	// The whole flush working set lives in engine scratch, so steady-state
	// windows allocate nothing here beyond first-window growth.
	fs := &e.flush
	n, ns := len(batch), len(e.shards)
	fs.waits = grow(fs.waits, n)
	fs.epss = grow(fs.epss, n)
	fs.radii = grow(fs.radii, n)
	fs.pxs = grow(fs.pxs, n)
	fs.pys = grow(fs.pys, n)
	waits, epss, radii, pxs, pys := fs.waits, fs.epss, fs.radii, fs.pxs, fs.pys
	for i := range batch {
		batch[i].Time = t // the whole window is matched at the flush instant
		waits[i], epss[i] = e.shards[0].w.Budget(batch[i])
		radii[i] = e.shards[0].w.CandidateRadius(waits[i])
		pxs[i], pys[i] = e.cfg.Graph.Coord(batch[i].Pickup)
	}

	// Phase 1: retained per-vehicle trial outcomes for every request, with
	// per-request search time so ACRT stays attributable per request the
	// way immediate mode records it. Retention trades memory for repair
	// speed: a dense window holds O(requests × feasible candidates)
	// trials (each tree-mode trial a full candidate tree) instead of the
	// per-shard bests alone, released request by request as phase 2
	// consumes them.
	fs.p1flat = grow(fs.p1flat, n*ns)
	fs.durflat = grow(fs.durflat, n*ns)
	fs.p1 = grow(fs.p1, n)
	fs.durs = grow(fs.durs, n)
	p1, durs := fs.p1, fs.durs
	for i := range p1 {
		p1[i] = fs.p1flat[i*ns : (i+1)*ns]
		durs[i] = fs.durflat[i*ns : (i+1)*ns]
	}
	phase1Start := time.Now() //vetkit:allow determinism phase-1 latency metric only
	e.parallel(func(s *shard) {
		s.drainReportsUntil(&e.cfg, t)
		for i, req := range batch {
			started := time.Now() //vetkit:allow determinism per-trial duration metric only
			p1[i][s.id] = s.trialRetain(&e.cfg, req, pxs[i], pys[i], waits[i], epss[i], radii[i])
			durs[i][s.id] = time.Since(started) //vetkit:allow determinism per-trial duration metric only
		}
	})
	e.metrics.Phase1Latency.Record(time.Since(phase1Start).Nanoseconds()) //vetkit:allow determinism phase-1 latency metric only

	// Phase 2: greedy arrival-order commits with incremental conflict
	// repair.
	clear(fs.dirty)
	dirty := fs.dirty
	dirtyIDs := fs.dirtyIDs // per-shard retrial sets (scratch)
	fresh := fs.fresh
	needy := fs.needy[:0] // shards with dirty candidates (scratch)
	for i, req := range batch {
		e.metrics.Requests++
		e.live.AddRequests(1)
		// Per-request search latency, attributed the way immediate mode
		// records it: the shards ran this request's phase-1 trials
		// concurrently when a pool exists (wall ≈ the slowest shard) and
		// back-to-back otherwise (wall = the sum), plus the repair
		// retrial's wall time below.
		var search time.Duration
		for _, d := range durs[i] {
			if e.tasks == nil {
				search += d
			} else if d > search {
				search = d
			}
		}
		best, dirtyCount, trialed := planRequest(p1[i], dirty, dirtyIDs)
		if dirtyCount > 0 {
			// Incremental repair: re-trial only the dirty candidates on
			// their owning shards — usually one shard, run inline — and
			// merge with the surviving clean trials. A full re-fan-out
			// would have re-run all `trialed` insertions for this request.
			retrial := time.Now() //vetkit:allow determinism repair latency metric only; repair outcome depends on trials, not time
			repairStart := e.ring.SpanStart()
			needy = needy[:0]
			for sid, ids := range dirtyIDs {
				if len(ids) > 0 {
					needy = append(needy, e.shards[sid])
				}
			}
			req := req
			e.parallelOn(needy, func(s *shard) {
				fresh[s.id] = s.retrial(&e.cfg, req, pxs[i], pys[i], waits[i], epss[i], dirtyIDs[s.id])
			})
			for _, s := range needy {
				if better(fresh[s.id], best) {
					best = fresh[s.id]
				}
			}
			repairNs := time.Since(retrial) //vetkit:allow determinism repair latency metric only
			search += repairNs
			e.ring.EmitSpan(obs.Span{
				ID:     obs.SpanID(req.ID, obs.StageRepair, 0),
				Parent: obs.RootSpanID(req.ID),
				Req:    req.ID, Stage: obs.StageRepair, T: req.Time,
				Arg: int64(dirtyCount), Start: repairStart,
			})
			e.metrics.RepairLatency.Record(repairNs.Nanoseconds())
			e.metrics.ConflictsRepaired++
			e.live.AddConflicts(1)
			e.metrics.RetrialTrialsSaved += trialed - dirtyCount
		}
		e.metrics.AddACRT(search)
		if best.veh < 0 {
			e.metrics.Rejected++
			e.live.AddRejected(1)
			e.ring.Emit(obs.KindRejected, req.ID, req.Time, -1)
			e.assigned[req.ID] = -1
		} else {
			s := e.shards[ShardIndex(int64(best.veh), len(e.shards))]
			s.w.Commit(s.vehicle(best.veh), best.trial)
			dirty[best.veh] = true
			e.assigned[req.ID] = best.veh
			e.ring.Emit(obs.KindMatched, req.ID, req.Time, int64(best.veh))
		}
		// This request's retained trials (and any repair retrials) are
		// consumed: sweep-release every candidate tree — the committed one
		// was consumed by Commit, so its release is a no-op — and hand the
		// retention buffers back to their shards for the next flush.
		if dirtyCount > 0 {
			for _, s := range needy {
				fresh[s.id].trial.Release()
				fresh[s.id] = shardBest{veh: -1}
			}
		}
		for sid := range p1[i] {
			p := &p1[i][sid]
			for j := range p.feas {
				p.feas[j].trial.Release()
			}
			if p.feas != nil {
				clear(p.feas) // drop candidate pointers before pooling
				e.shards[sid].feasFree = append(e.shards[sid].feasFree, p.feas[:0])
			}
			*p = phase1{}
		}
	}
	fs.needy = needy[:0]
	// Recycle the window's request buffer for the next Enqueue run.
	e.pending = batch[:0]
	e.metrics.FlushLatency.Record(time.Since(flushStart).Nanoseconds()) //vetkit:allow determinism flush latency metric only
	// Fleet-level flush span (Req < 0): the whole window's wall time, one
	// per flush, keyed by the engine's flush counter.
	e.ring.EmitSpan(obs.Span{
		ID:  obs.SpanID(-1, obs.StageFlush, e.flushSeq),
		Req: -1, Stage: obs.StageFlush, T: t,
		Arg: int64(n), Start: flushSpanStart,
	})
	e.flushSeq++
	e.live.AddFlushes(1)
}

// planRequest resolves one batch request against the flush's dirty set. It
// returns the cheapest retained trial among the request's clean candidates
// (veh -1 if none), fills dirtyIDs with the dirty previously-feasible
// candidates per shard (the incremental-repair retrial sets), and reports
// how many trial insertions phase 1 performed for this request — the
// number a full re-fan-out would re-run.
func planRequest(p1 []phase1, dirty map[int]bool, dirtyIDs [][]int) (clean shardBest, dirtyCount, trialed int) {
	clean = shardBest{veh: -1}
	for s, p := range p1 {
		dirtyIDs[s] = dirtyIDs[s][:0]
		trialed += p.trialed
		for _, vt := range p.feas {
			if dirty[vt.veh] {
				dirtyIDs[s] = append(dirtyIDs[s], vt.veh)
				dirtyCount++
				continue
			}
			if b := (shardBest{veh: vt.veh, trial: vt.trial}); better(b, clean) {
				clean = b
			}
		}
	}
	return clean, dirtyCount, trialed
}
