// Package dispatch is the sharded concurrent dispatch engine: the paper's
// kinetic-tree matching loop — trial-insert a request into every candidate
// vehicle's tree and keep the cheapest — is embarrassingly parallel across
// vehicles, so the engine partitions the fleet into shards and fans each
// request's trial insertions out over a worker pool.
//
// Each shard owns its vehicles, their kinetic trees, a private slice of the
// spatial index, and a per-goroutine sp.Oracle, so no unsynchronized oracle
// state is ever shared between goroutines. The shard oracles come in two
// flavours: fully private stacks built by an OracleFactory (each shard
// re-learns every distance), or — preferred — per-shard facades over one
// fleet-wide cache.Shared stack, so that every shard consults and feeds the
// same concurrency-safe striped distance cache and a distance learned by
// one shard (d(pickup, dropoff), say) is a hit for all the others. Trials
// reduce to the globally cheapest feasible candidate with deterministic
// tie-breaking (cost, then vehicle ID), and the winner commits on its
// owning shard. For a fixed seed the engine produces bit-identical match
// assignments to the sequential sim.Simulator at any worker/shard count
// and under either cache layout, because both drive the same sim.Worker
// primitives over the same seed-determined fleet and exact distances do
// not depend on which cache served them.
//
// A batch-window mode (Config.BatchWindow) collects requests for a fixed
// window and matches the batch greedily in arrival order with incremental
// intra-batch conflict repair — only candidates dirtied by an earlier
// commit in the flush are re-trialed; see batch.go. Requests may be
// cancelled while they wait in the window.
package dispatch

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/sp"
	"repro/internal/spatial"
)

// ShardIndex is the engine's partitioning function: it maps an entity ID
// to its owning shard in [0, n). Vehicles live on shard ID mod n, and the
// ingress gateway (internal/ingest) keys its per-shard admission queues
// with the same function, so a request stream's queue affinity follows the
// fleet partition. Negative IDs are folded into range so arbitrary request
// IDs are safe to key with.
func ShardIndex(id int64, n int) int {
	s := int(id % int64(n))
	if s < 0 {
		s += n
	}
	return s
}

// OracleFactory builds one shortest-path oracle per shard. Factories must
// return independent instances: shard oracles answer queries concurrently,
// and the stock per-goroutine sp/cache implementations are not
// thread-safe. A factory that closes over one cache.Shared stack and
// returns per-shard facades (shared.NewWorker) gives the shards a common
// distance cache; passing the stack as cfg.Oracle with a nil factory does
// the same thing (see New).
type OracleFactory func() sp.Oracle

// Engine is the sharded concurrent dispatcher. The exported methods are
// driven from one goroutine (like sim.Simulator); the concurrency is
// internal, across shards.
type Engine struct {
	cfg      sim.Config
	shards   []*shard
	workers  int
	tasks    chan func()
	wg       sync.WaitGroup
	closed   bool
	clock    float64
	metrics  *sim.Metrics // request-level counters; shard metrics merge in
	assigned map[int64]int
	ring     *obs.Ring // engine-level lifecycle events (nil = tracing off)
	live     *obs.Live // live counters (nil = off)

	// Batch-window state (batch.go).
	pending    []sim.Request
	batchStart float64
	flushSeq   int64 // flushes performed; the flush span's instance key

	// Distinct oracle stacks behind the shards, deduplicated once at
	// construction (the shard oracles never change), so Metrics() does not
	// rebuild the dedup set on every call.
	cacheStatsers []sim.CacheStatser
	latStatsers   []sim.CacheLatencyStatser

	// Reusable scratch. The exported API is driven from one goroutine and
	// the pool is quiescent between fan-outs, so per-call buffers can live
	// on the engine instead of being remade per request/flush.
	bests []shardBest // per-shard fan-out winners (Submit)
	busy  []bool      // per-shard busy flags (Drain)
	flush flushScratch

	drainRoundCap int   // test hook; 0 selects sim.DefaultDrainRoundCap
	drainErr      error // sticky Drain truncation error, surfaced by CheckInvariants
}

// flushScratch is the per-flush working set of batch.go, reused across
// windows so a steady request stream allocates nothing per flush beyond
// first-window growth.
type flushScratch struct {
	waits, epss, radii, pxs, pys []float64
	p1                           [][]phase1 // rows into p1flat
	p1flat                       []phase1
	durs                         [][]time.Duration // rows into durflat
	durflat                      []time.Duration
	dirty                        map[int]bool
	dirtyIDs                     [][]int
	fresh                        []shardBest
	needy                        []*shard
}

// grow returns s resized to n elements, reusing its backing array when
// large enough. Contents are unspecified; callers overwrite every element.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// shard owns a partition of the fleet. All of a shard's state is touched by
// at most one goroutine at a time: the pool runs one task per shard, and
// commits happen between fan-outs.
type shard struct {
	id       int
	nshards  int
	w        *sim.Worker
	grid     *spatial.GridIndex
	vehicles []*sim.Vehicle // local slice; global ID = local*nshards + id
	reports  sim.ReportHeap
	cand     []spatial.ObjectID // scratch
	feasFree [][]vehTrial       // recycled phase-1 retention buffers
	ring     *obs.Ring          // per-shard trial events; single-writer because
	// the pool runs at most one task per shard and fan-outs are serialized
	fault *faults.WorkerHook // injected stalls/slow trials (nil = off);
	// single-writer for the same reason as ring
}

// feasBuf pops a recycled phase-1 retention buffer (nil when none are
// free). Buffers are returned by the batch planner after it consumes a
// request's retained trials; the handoff is race-free because the planner
// runs between fan-outs, when the pool is quiescent.
func (s *shard) feasBuf() []vehTrial {
	if n := len(s.feasFree); n > 0 {
		b := s.feasFree[n-1]
		s.feasFree = s.feasFree[:n-1]
		return b
	}
	return nil
}

// vehicle returns the shard's vehicle with the given global ID.
func (s *shard) vehicle(global int) *sim.Vehicle { return s.vehicles[global/s.nshards] }

// New builds an engine over cfg. cfg.Workers sizes the worker pool
// (default 1), cfg.Shards the fleet partition count (default = workers).
// oracles supplies one private oracle per shard. With a nil factory the
// engine derives the shard oracles from cfg.Oracle by its thread-safety
// class (see the sp.Oracle taxonomy):
//
//   - sp.WorkerSource (e.g. *cache.Shared): every shard gets its own
//     facade, so all shards consult the single shared distance cache;
//   - sp.SharedOracle (Matrix, HubLabels): all shards use it directly;
//   - any other oracle is per-goroutine and only legal when the pool is
//     sequential (Workers <= 1).
func New(cfg sim.Config, oracles OracleFactory) (*Engine, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("dispatch: Graph is required")
	}
	if cfg.Servers <= 0 {
		return nil, fmt.Errorf("dispatch: need at least one server, got %d", cfg.Servers)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	nshards := cfg.Shards
	if nshards <= 0 {
		if cfg.AutoTune {
			nshards = sim.DeriveShards(cfg.Servers, workers)
		} else {
			nshards = workers
		}
	}
	if nshards > cfg.Servers {
		nshards = cfg.Servers
	}
	if oracles == nil {
		switch o := cfg.Oracle.(type) {
		case nil:
			return nil, fmt.Errorf("dispatch: Oracle or OracleFactory is required")
		case sp.WorkerSource:
			oracles = func() sp.Oracle { return o.NewWorkerOracle() }
		case sp.SharedOracle:
			oracles = func() sp.Oracle { return o }
		default:
			if workers > 1 {
				return nil, fmt.Errorf("dispatch: %d workers need an OracleFactory or a concurrency-safe cfg.Oracle (per-goroutine oracles cannot be shared)", workers)
			}
			oracles = func() sp.Oracle { return o } //vetkit:allow oracletaxonomy workers == 1 on this branch (guarded above): a single worker cannot share
		}
	}

	e := &Engine{
		cfg:      cfg,
		workers:  workers,
		metrics:  sim.NewMetrics(),
		assigned: make(map[int64]int),
		ring:     cfg.Trace.Ring("engine"),
		live:     cfg.Live,
	}
	minX, minY, maxX, maxY := cfg.Graph.Bounds()
	for i := 0; i < nshards; i++ {
		w := sim.NewWorker(cfg, oracles(), sim.NewMetrics())
		grid, err := spatial.NewGridIndex(minX, minY, maxX, maxY, w.CellSize())
		if err != nil {
			return nil, err
		}
		ring := cfg.Trace.Ring(fmt.Sprintf("shard-%d", i))
		w.SetTrace(ring, cfg.Live)
		e.shards = append(e.shards, &shard{
			id: i, nshards: nshards, w: w, grid: grid, ring: ring,
			fault: cfg.Faults.Worker(),
		})
	}
	// Identical seed-determined placement to sim.New: vehicle i lives on
	// shard i mod nshards.
	for i, p := range sim.Placements(cfg) {
		s := e.shards[i%nshards]
		v := s.w.NewVehicle(i, p.Loc)
		s.vehicles = append(s.vehicles, v)
		x, y := cfg.Graph.Coord(p.Loc)
		s.grid.Insert(spatial.ObjectID(i), x, y)
		s.reports.Push(sim.Report{Due: p.FirstReport, Veh: i})
	}
	e.metrics.SetTuning(nshards, e.shards[0].w.CellSize(), cfg.AutoTune)
	e.bests = make([]shardBest, nshards)
	e.busy = make([]bool, nshards)
	e.flush.dirty = make(map[int]bool)
	e.flush.dirtyIDs = make([][]int, nshards)
	e.flush.fresh = make([]shardBest, nshards)
	e.flush.needy = make([]*shard, 0, nshards)
	e.dedupStatsers()
	if workers > 1 {
		e.tasks = make(chan func(), nshards)
		for i := 0; i < workers; i++ {
			e.wg.Add(1)
			go func() {
				defer e.wg.Done()
				for fn := range e.tasks {
					fn()
				}
			}()
		}
	}
	return e, nil
}

// Close stops the worker pool. The engine must not be used afterwards.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	if e.tasks != nil {
		close(e.tasks)
		e.wg.Wait()
	}
}

// Shards returns the fleet partition count.
func (e *Engine) Shards() int { return len(e.shards) }

// Workers returns the trial worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// parallel runs fn once per shard, concurrently when a pool exists, and
// returns when every shard is done. Shard state is only ever touched from
// inside fn, so no further synchronization is needed.
func (e *Engine) parallel(fn func(s *shard)) { e.parallelOn(e.shards, fn) }

// parallelOn is parallel restricted to the given shards. A single shard —
// the common incremental-repair case — runs inline on the caller,
// skipping the pool round-trip; the pool is quiescent between fan-outs,
// so the caller touching one shard's state is as safe as the sequential
// path.
func (e *Engine) parallelOn(shards []*shard, fn func(s *shard)) {
	if e.tasks == nil || len(shards) == 1 {
		for _, s := range shards {
			fn(s)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(shards))
	for _, s := range shards {
		s := s
		e.tasks <- func() {
			defer wg.Done()
			fn(s)
		}
	}
	wg.Wait()
}

// drainReportsUntil advances the shard's vehicles whose position report is
// due before t and refreshes their index entries, exactly as the sequential
// simulator does fleet-wide. Due vehicles are rescheduled in place with
// ReplaceMin, so the loop allocates nothing.
func (s *shard) drainReportsUntil(g *sim.Config, t float64) {
	interval := s.w.ReportInterval()
	for s.reports.Len() > 0 && s.reports.Min().Due <= t {
		r := s.reports.Min()
		v := s.vehicle(r.Veh)
		s.w.AdvanceTo(v, r.Due)
		x, y := g.Graph.Coord(v.Loc())
		s.grid.Update(spatial.ObjectID(r.Veh), x, y)
		s.reports.ReplaceMin(sim.Report{Due: r.Due + interval, Veh: r.Veh})
	}
}

// shardBest is one shard's cheapest feasible candidate for a request.
type shardBest struct {
	veh   int // global vehicle ID, -1 if none feasible
	trial sim.Trial
}

// trial runs the request's trial insertions over this shard's candidate
// vehicles and returns the shard-local winner. Candidates arrive from the
// grid in ascending ID order and win on strictly smaller cost, so the
// shard winner is its lowest-ID cheapest vehicle — the same rule the
// sequential scan applies globally.
func (s *shard) trial(cfg *sim.Config, req sim.Request, px, py, waitMeters, eps, radius float64) shardBest {
	spanStart := s.ring.SpanStart()
	s.drainReportsUntil(cfg, req.Time)
	s.cand = s.grid.Within(s.cand[:0], px, py, radius)
	s.fault.BeforeFanout(req.ID, req.Time)
	best := shardBest{veh: -1}
	for _, id := range s.cand {
		v := s.vehicle(int(id))
		s.fault.BeforeTrial(req.ID, req.Time)
		s.w.AdvanceTo(v, req.Time)
		tr, ok := s.w.Trial(v, req, px, py, waitMeters, eps)
		if !ok {
			continue
		}
		if b := (shardBest{veh: int(id), trial: tr}); better(b, best) {
			best.trial.Release() // dethroned candidate will never commit
			best = b
		} else {
			tr.Release()
		}
	}
	s.ring.Emit(obs.KindTrialed, req.ID, req.Time, int64(len(s.cand)))
	// Immediate-mode phase-1 span: one per shard, nested under the match
	// span the engine emits around the whole fan-out.
	s.ring.EmitSpan(obs.Span{
		ID:     obs.SpanID(req.ID, obs.StagePhase1, int64(s.id)),
		Parent: obs.SpanID(req.ID, obs.StageMatch, 0),
		Req:    req.ID, Stage: obs.StagePhase1, T: req.Time,
		Arg: int64(len(s.cand)), Start: spanStart,
	})
	return best
}

// vehTrial is one candidate vehicle's retained trial outcome.
type vehTrial struct {
	veh   int // global vehicle ID
	trial sim.Trial
}

// phase1 is a shard's retained phase-1 state for one batch request: every
// feasible candidate's trial outcome in ascending vehicle ID order, plus
// the number of trial insertions performed (feasible or not) — what a
// full re-fan-out of the request would cost.
type phase1 struct {
	feas    []vehTrial
	trialed int
}

// trialRetain runs the request's trial insertions over this shard's
// candidate vehicles like trial, but retains every feasible candidate's
// outcome instead of only the shard best — the state the batch planner
// needs for incremental conflict repair (retained trials stay committable
// until their vehicle mutates; see sim.Trial's retention semantics).
func (s *shard) trialRetain(cfg *sim.Config, req sim.Request, px, py, waitMeters, eps, radius float64) phase1 {
	spanStart := s.ring.SpanStart()
	s.drainReportsUntil(cfg, req.Time)
	s.cand = s.grid.Within(s.cand[:0], px, py, radius)
	s.fault.BeforeFanout(req.ID, req.Time)
	before := s.w.Metrics().TrialCalls
	feas := s.feasBuf()
	for _, id := range s.cand {
		v := s.vehicle(int(id))
		s.fault.BeforeTrial(req.ID, req.Time)
		s.w.AdvanceTo(v, req.Time)
		if tr, ok := s.w.Trial(v, req, px, py, waitMeters, eps); ok {
			feas = append(feas, vehTrial{veh: int(id), trial: tr})
		}
	}
	s.ring.Emit(obs.KindTrialed, req.ID, req.Time, int64(len(s.cand)))
	// Batch-mode phase-1 span: no per-request match span exists in batch
	// mode, so the shard span parents straight to the request root.
	s.ring.EmitSpan(obs.Span{
		ID:     obs.SpanID(req.ID, obs.StagePhase1, int64(s.id)),
		Parent: obs.RootSpanID(req.ID),
		Req:    req.ID, Stage: obs.StagePhase1, T: req.Time,
		Arg: int64(len(s.cand)), Start: spanStart,
	})
	return phase1{feas: feas, trialed: s.w.Metrics().TrialCalls - before}
}

// retrial re-runs trial insertions for just the given dirty candidates —
// vehicles owned by this shard that were committed to earlier in the
// current flush — against the updated fleet state. The batch planner
// merges the result with the request's surviving clean phase-1 trials.
func (s *shard) retrial(cfg *sim.Config, req sim.Request, px, py, waitMeters, eps float64, ids []int) shardBest {
	best := shardBest{veh: -1}
	for _, id := range ids {
		v := s.vehicle(id)
		s.fault.BeforeTrial(req.ID, req.Time)
		s.w.AdvanceTo(v, req.Time)
		tr, ok := s.w.Trial(v, req, px, py, waitMeters, eps)
		if !ok {
			continue
		}
		if b := (shardBest{veh: id, trial: tr}); better(b, best) {
			best.trial.Release() // dethroned candidate will never commit
			best = b
		} else {
			tr.Release()
		}
	}
	return best
}

// better reports whether a beats b under the engine's deterministic
// matching order: cheapest cost, ties broken toward the lower vehicle ID.
// Infeasible entries (veh < 0) never win. This is a total order over
// distinct vehicles, so any reduction using it is independent of shard
// count and completion order.
func better(a, b shardBest) bool {
	if a.veh < 0 {
		return false
	}
	if b.veh < 0 {
		return true
	}
	return a.trial.Cost < b.trial.Cost || (a.trial.Cost == b.trial.Cost && a.veh < b.veh)
}

// reduce picks the global winner from per-shard bests under the better
// order.
func reduce(bests []shardBest) shardBest {
	out := shardBest{veh: -1}
	for _, b := range bests {
		if better(b, out) {
			out = b
		}
	}
	return out
}

// Submit matches one request immediately: it fans the trial insertions out
// across the shards, reduces to the globally cheapest feasible vehicle, and
// commits on the owning shard. It reports whether the request was matched
// and to which vehicle.
func (e *Engine) Submit(req sim.Request) (matched bool, vehID int) {
	matchStart := e.ring.SpanStart()
	if req.Time < e.clock {
		req.Time = e.clock // tolerate slightly out-of-order input
	}
	e.clock = req.Time
	e.metrics.Requests++
	e.live.AddRequests(1)

	waitMeters, eps := e.shards[0].w.Budget(req)
	radius := e.shards[0].w.CandidateRadius(waitMeters)
	px, py := e.cfg.Graph.Coord(req.Pickup)

	started := time.Now() //vetkit:allow determinism ACRT metric only; the fan-out result is reduced deterministically
	e.parallel(func(s *shard) {
		e.bests[s.id] = s.trial(&e.cfg, req, px, py, waitMeters, eps, radius)
	})
	best := reduce(e.bests)
	e.metrics.AddACRT(time.Since(started)) //vetkit:allow determinism ACRT metric only

	if best.veh >= 0 {
		s := e.shards[ShardIndex(int64(best.veh), len(e.shards))]
		s.w.Commit(s.vehicle(best.veh), best.trial)
	}
	// Losing shard winners will never commit; the committed trial's
	// candidate was consumed above, so its release is a no-op. Entries are
	// zeroed so the scratch buffer retains no candidate pointers.
	for i := range e.bests {
		e.bests[i].trial.Release()
		e.bests[i] = shardBest{veh: -1}
	}

	if best.veh < 0 {
		e.metrics.Rejected++
		e.live.AddRejected(1)
		e.ring.Emit(obs.KindRejected, req.ID, req.Time, -1)
		e.emitMatchSpan(req, matchStart, -1)
		e.assigned[req.ID] = -1
		return false, -1
	}
	e.ring.Emit(obs.KindMatched, req.ID, req.Time, int64(best.veh))
	e.emitMatchSpan(req, matchStart, int64(best.veh))
	e.assigned[req.ID] = best.veh
	return true, best.veh
}

// emitMatchSpan closes the immediate-mode match span around one Submit:
// fan-out, reduce, and commit. The per-shard phase1 spans nest under it.
func (e *Engine) emitMatchSpan(req sim.Request, start int64, veh int64) {
	e.ring.EmitSpan(obs.Span{
		ID:     obs.SpanID(req.ID, obs.StageMatch, 0),
		Parent: obs.RootSpanID(req.ID),
		Req:    req.ID, Stage: obs.StageMatch, T: req.Time,
		Arg: veh, Start: start,
	})
}

// Assignment reports the vehicle a request was matched to (-1 if it was
// rejected) and whether the request has been dispatched at all.
func (e *Engine) Assignment(reqID int64) (vehID int, dispatched bool) {
	v, ok := e.assigned[reqID]
	return v, ok
}

// Run replays all requests (sorted by time) and then lets the fleet finish
// its committed schedules. With a positive BatchWindow the stream is
// matched in windows; otherwise each request is matched on arrival. It
// returns the metrics, plus Drain's truncation error if the fleet could
// not finish within the drain-round sanity cap — the metrics are still
// returned, but they omit the stuck vehicles' completions.
func (e *Engine) Run(reqs []sim.Request) (*sim.Metrics, error) {
	if e.cfg.BatchWindow > 0 {
		for i := range reqs {
			e.Enqueue(reqs[i])
		}
		e.Flush()
	} else {
		for i := range reqs {
			e.Submit(reqs[i])
		}
	}
	err := e.Drain()
	return e.Metrics(), err
}

// Drain advances every vehicle until its committed schedule is finished,
// mirroring sim.Simulator.Drain round for round. A fleet still busy after
// the sanity cap (sim.DefaultDrainRoundCap rounds of sim.DrainStep
// seconds) is wedged; Drain returns an explicit error naming the stuck
// vehicles instead of silently dropping their in-flight passengers, and
// CheckInvariants reports the same error afterwards.
func (e *Engine) Drain() error {
	e.drainErr = nil // a drain that completes clears any earlier truncation
	rounds := e.drainRoundCap
	if rounds <= 0 {
		rounds = sim.DefaultDrainRoundCap
	}
	busy := e.busy
	idle := false
	for round := 0; round < rounds && !idle; round++ {
		e.clock += sim.DrainStep
		e.parallel(func(s *shard) {
			busy[s.id] = false
			for _, v := range s.vehicles {
				if v.Busy() {
					s.w.AdvanceTo(v, e.clock)
					busy[s.id] = busy[s.id] || v.Busy()
				}
			}
		})
		idle = true
		for _, b := range busy {
			idle = idle && !b
		}
	}
	if !idle {
		stuck := 0
		e.eachVehicle(func(v *sim.Vehicle) {
			if v.Busy() {
				stuck++
			}
		})
		e.drainErr = fmt.Errorf("dispatch: drain truncated after %d rounds (%.0f s): %d vehicles still busy", rounds, float64(rounds)*sim.DrainStep, stuck)
	}
	// Peak occupancy per vehicle; the histogram is order-insensitive, so
	// visiting in global ID order matches the sequential path exactly.
	e.eachVehicle(func(v *sim.Vehicle) {
		e.metrics.AddOccupancy(v.PeakOnboard())
	})
	return e.drainErr
}

// eachVehicle visits the fleet in global ID order.
func (e *Engine) eachVehicle(fn func(v *sim.Vehicle)) {
	total := 0
	for _, s := range e.shards {
		total += len(s.vehicles)
	}
	for i := 0; i < total; i++ {
		fn(e.shards[ShardIndex(int64(i), len(e.shards))].vehicle(i))
	}
}

// Metrics merges the engine's request-level counters with the per-shard
// trial and service metrics, and folds in the aggregate shortest-path
// cache counters across every distinct oracle stack the shards use.
// Shards merge in shard order, so the result is deterministic for a fixed
// shard count.
func (e *Engine) Metrics() *sim.Metrics {
	out := sim.NewMetrics()
	out.Merge(e.metrics)
	for _, s := range e.shards {
		out.Merge(s.w.Metrics())
	}
	out.SetCacheStats(e.cacheStats())
	out.SetDistLatency(e.distLatency())
	return out
}

// dedupStatsers resolves the distinct cache stacks behind the shard
// oracles once, at construction: a cache.SharedWorker facade resolves to
// its fleet-wide stack (which aggregates every facade), and stacks shared
// by several shards (one cache.Shared, or one oracle instance reused
// across shards) are recorded once, in shard order. The shard oracles
// never change, so Metrics()/distLatency()/cacheStats() can walk these
// lists instead of rebuilding the dedup set per call.
func (e *Engine) dedupStatsers() {
	seenLat := make(map[sim.CacheLatencyStatser]bool, len(e.shards))
	seenCS := make(map[sim.CacheStatser]bool, len(e.shards))
	for _, s := range e.shards {
		// Peel decorator facades (sp.Retry, faults.FlakyOracle) so a
		// shard oracle wrapped for fault tolerance still reports its
		// cache stack's stats.
		o := sp.Unwrap(s.w.Oracle())
		var cls sim.CacheLatencyStatser
		if w, ok := o.(*cache.SharedWorker); ok {
			cls = w.Shared()
		} else if c, ok := o.(sim.CacheLatencyStatser); ok {
			cls = c
		}
		if cls != nil && !seenLat[cls] {
			seenLat[cls] = true
			e.latStatsers = append(e.latStatsers, cls)
		}
		var cs sim.CacheStatser
		if w, ok := o.(*cache.SharedWorker); ok {
			cs = w.Shared() // aggregates the striped cache and all facades
		} else if c, ok := o.(sim.CacheStatser); ok {
			cs = c
		}
		if cs != nil && !seenCS[cs] {
			seenCS[cs] = true
			e.cacheStatsers = append(e.cacheStatsers, cs)
		}
	}
}

// distLatency merges the sampled distance-lookup latency over the distinct
// cache stacks behind the shard oracles (deduplicated at construction by
// dedupStatsers). Must be called from the driving goroutine between
// fan-outs, when the shards are quiescent.
func (e *Engine) distLatency() (hit, miss *obs.Histogram) {
	hit, miss = obs.NewHistogram(), obs.NewHistogram()
	for _, cls := range e.latStatsers {
		h, m := cls.DistLatency()
		hit.Merge(h)
		miss.Merge(m)
	}
	return hit, miss
}

// cacheStats sums hit/miss counters over the distinct cache stacks behind
// the shard oracles (deduplicated at construction by dedupStatsers).
// Quiescent-only, like distLatency.
func (e *Engine) cacheStats() (distHits, distMisses, pathHits, pathMisses uint64) {
	for _, cs := range e.cacheStatsers {
		dh, dm := cs.DistStats()
		ph, pm := cs.PathStats()
		distHits += dh
		distMisses += dm
		pathHits += ph
		pathMisses += pm
	}
	return
}

// CheckInvariants verifies the cross-cutting invariants over the whole
// fleet, mirroring sim.Simulator.CheckInvariants.
func (e *Engine) CheckInvariants() error {
	if e.drainErr != nil {
		return e.drainErr
	}
	if m := e.Metrics(); m.Violations > 0 {
		return fmt.Errorf("dispatch: %d service-guarantee violations", m.Violations)
	}
	var firstErr error
	e.eachVehicle(func(v *sim.Vehicle) {
		if firstErr != nil {
			return
		}
		s := e.shards[ShardIndex(int64(v.ID()), len(e.shards))]
		if err := s.w.CheckVehicle(v); err != nil {
			firstErr = fmt.Errorf("dispatch: vehicle %d: %w", v.ID(), err)
		}
	})
	return firstErr
}
