// Package unitchecker implements the side of the `go vet -vettool`
// protocol a custom analysis driver must speak, on the standard library
// alone (the x/tools implementation cannot be vendored into this offline
// module). The go command:
//
//   - probes `tool -V=full` for a content-addressed version line (used as
//     the cache key for vet results);
//   - probes `tool -flags` for a JSON description of the tool's flags;
//   - then invokes `tool <file>.cfg` once per package, with a JSON config
//     naming the source files, the import map, and the export-data file
//     of every dependency (see cmd/go/internal/work.vetConfig).
//
// The driver typechecks the package against compiler export data, runs
// the vetkit analyzers, prints findings as file:line:col lines on stderr
// and exits 2 when any survive — which go vet reports and turns into a
// nonzero exit. Dependency invocations (VetxOnly) short-circuit: the
// vetkit passes keep no cross-package facts, so only an empty facts file
// is written to satisfy the protocol and enable go's result caching.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/internal/analysis/vetkit"
)

// config mirrors cmd/go/internal/work.vetConfig (the fields this driver
// consumes; unknown fields are ignored by encoding/json).
type config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a vettool binary: parse the protocol
// arguments, run the analyzers, exit. It does not return.
func Main(analyzers ...*vetkit.Analyzer) {
	args := os.Args[1:]
	if len(args) == 1 && args[0] == "-V=full" {
		printVersion()
		os.Exit(0)
	}
	if len(args) == 1 && args[0] == "-flags" {
		// No tool-specific flags: suppression is per-site via
		// //vetkit:allow, not per-run via flags.
		fmt.Println("[]")
		os.Exit(0)
	}
	if len(args) == 0 || !strings.HasSuffix(args[len(args)-1], ".cfg") {
		fmt.Fprintf(os.Stderr, "%s: expected -V=full, -flags, or a .cfg file (this tool is driven by go vet -vettool=%s)\n",
			progname(), progname())
		os.Exit(1)
	}
	os.Exit(run(args[len(args)-1], analyzers))
}

func progname() string {
	name := os.Args[0]
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name
}

// printVersion emits the `name version devel buildID=<hash>` line the go
// command parses; hashing the executable makes vet result caching
// content-addressed, so a rebuilt vetkit invalidates stale cached runs.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", progname(), h.Sum(nil))
}

func run(cfgFile string, analyzers []*vetkit.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return fail(err)
	}
	var cfg config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fail(fmt.Errorf("parsing %s: %w", cfgFile, err))
	}

	// The protocol expects a facts file even from a fact-free tool; its
	// presence is also what lets the go command cache this invocation.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("vetkit: no facts\n"), 0o666); err != nil {
			return fail(err)
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency pass: no facts to compute, nothing to report
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			return fail(err)
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		return compilerImporter.Import(importPath)
	})

	var typeErr error
	tcfg := types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil || typeErr != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0 // the compile step reports the error; vet stays quiet
		}
		if typeErr == nil {
			typeErr = err
		}
		return fail(typeErr)
	}

	diags, err := vetkit.Run(&vetkit.Target{Fset: fset, Files: files, Pkg: pkg, Info: info}, analyzers)
	if err != nil {
		return fail(err)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Rule)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintf(os.Stderr, "%s: %v\n", progname(), err)
	return 1
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
