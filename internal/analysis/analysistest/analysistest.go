// Package analysistest runs a vetkit analyzer over fixture packages and
// checks its diagnostics against // want "regexp" comments, mirroring the
// x/tools package of the same name (reimplemented on the standard library
// because the module builds offline).
//
// Fixtures live under testdata/src/<pkg> relative to the test. Imports
// between fixture packages resolve against sibling fixture directories;
// standard-library imports typecheck from $GOROOT/src via the source
// importer. A `// want "re"` trailing comment expects one diagnostic on
// its line whose message matches the regexp; multiple quoted regexps
// expect multiple diagnostics. Lines without a want comment must produce
// no diagnostics — allowlisted-negative fixtures prove suppression by
// carrying a //vetkit:allow annotation and no want.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis/vetkit"
)

// Run analyzes each fixture package under testdata/src and reports
// mismatches between diagnostics and want comments as test errors.
func Run(t *testing.T, a *vetkit.Analyzer, fixtures ...string) {
	t.Helper()
	l := newLoader("testdata/src")
	for _, fix := range fixtures {
		pkg := l.load(fix)
		if pkg.err != nil {
			t.Errorf("fixture %s: %v", fix, pkg.err)
			continue
		}
		diags, err := vetkit.Run(&vetkit.Target{Fset: l.fset, Files: pkg.files, Pkg: pkg.pkg, Info: pkg.info}, []*vetkit.Analyzer{a})
		if err != nil {
			t.Errorf("fixture %s: %v", fix, err)
			continue
		}
		check(t, l.fset, fix, pkg.files, diags)
	}
}

type pkgEntry struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
	err   error
}

type loader struct {
	dir   string
	fset  *token.FileSet
	cache map[string]*pkgEntry
	std   types.Importer
}

func newLoader(dir string) *loader {
	fset := token.NewFileSet()
	return &loader{
		dir:   dir,
		fset:  fset,
		cache: map[string]*pkgEntry{},
		std:   importer.ForCompiler(fset, "source", nil),
	}
}

// Import lets fixture packages import each other by fixture path.
func (l *loader) Import(path string) (*types.Package, error) {
	e := l.load(path)
	return e.pkg, e.err
}

func (l *loader) load(path string) *pkgEntry {
	if e, ok := l.cache[path]; ok {
		return e
	}
	e := &pkgEntry{}
	l.cache[path] = e

	dir := filepath.Join(l.dir, path)
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		e.pkg, e.err = l.std.Import(path)
		return e
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		e.err = err
		return e
	}
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, ent.Name()), nil, parser.ParseComments)
		if err != nil {
			e.err = err
			return e
		}
		e.files = append(e.files, f)
	}

	e.info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	cfg := types.Config{Importer: l}
	e.pkg, e.err = cfg.Check(path, l.fset, e.files, e.info)
	return e
}

// wantRe matches the quoted regexps of a want comment.
var wantRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// check compares diagnostics with the fixture's want comments.
func check(t *testing.T, fset *token.FileSet, fix string, files []*ast.File, diags []vetkit.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	expects := map[key][]*regexp.Regexp{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				k := key{filepath.Base(pos.Filename), pos.Line}
				for _, q := range wantRe.FindAllString(strings.TrimPrefix(text, "want "), -1) {
					pat := q[1 : len(q)-1]
					if q[0] == '"' {
						if unq, err := strconv.Unquote(q); err == nil {
							pat = unq
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %s: %v", pos.Filename, pos.Line, q, err)
						continue
					}
					expects[k] = append(expects[k], re)
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{filepath.Base(pos.Filename), pos.Line}
		matched := false
		for i, re := range expects[k] {
			if re.MatchString(d.Message) {
				expects[k] = append(expects[k][:i], expects[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic at %s:%d [%s]: %s", fix, pos.Filename, pos.Line, d.Rule, d.Message)
		}
	}
	for k, res := range expects {
		for _, re := range res {
			t.Errorf("%s: missing diagnostic at %s:%d matching %q", fix, k.file, k.line, re)
		}
	}
}
