package oracletaxonomy_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/oracletaxonomy"
)

func TestOracleTaxonomy(t *testing.T) {
	analysistest.Run(t, oracletaxonomy.Analyzer, "taxo", "dispatch")
}
