// Package oracletaxonomy turns the thread-safety taxonomy documented on
// sp.Oracle into a compile-time check. The taxonomy (internal/sp/oracle.go,
// README "Invariants"): per-goroutine engines reuse internal search buffers
// and must never be shared across goroutines; only sp.SharedOracle
// implementations may be, and sp.WorkerSource bridges the two classes by
// handing out per-goroutine facades over shared state.
//
// The pass flags the two ways a per-goroutine oracle leaks across that
// boundary in this codebase's shapes:
//
//   - a value whose static type implements sp.Oracle but not
//     sp.SharedOracle captured by (or passed to) a `go` statement;
//   - a factory closure that returns a captured per-goroutine oracle —
//     every call hands out the same instance, so a per-shard fan-out
//     would share unsynchronized search state;
//   - (in package dispatch) a struct field declared as plain sp.Oracle:
//     dispatch structs are shared across shards, so oracle-valued fields
//     must be sp.SharedOracle or derived per shard from a WorkerSource.
//
// Values obtained from a WorkerSource facade mint — NewWorkerOracle, or
// the concrete NewWorker it conventionally delegates to — are exempt: a
// facade is for the exclusive use of one goroutine, and handing it to one
// is the intended pattern.
package oracletaxonomy

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/vetkit"
)

var Analyzer = &vetkit.Analyzer{
	Name: "oracletaxonomy",
	Doc: "per-goroutine sp.Oracle values must not cross goroutine boundaries: " +
		"share only sp.SharedOracle implementations or WorkerSource facades",
	Run: run,
}

type checker struct {
	pass   *vetkit.Pass
	oracle *types.Interface // sp.Oracle
	shared *types.Interface // sp.SharedOracle
	wsrc   *types.Interface // sp.WorkerSource
	fromWS map[types.Object]bool
}

func run(pass *vetkit.Pass) error {
	c := &checker{
		pass:   pass,
		oracle: vetkit.NamedInterface(pass.Pkg, "sp", "Oracle"),
		shared: vetkit.NamedInterface(pass.Pkg, "sp", "SharedOracle"),
		wsrc:   vetkit.NamedInterface(pass.Pkg, "sp", "WorkerSource"),
		fromWS: map[types.Object]bool{},
	}
	if c.oracle == nil || c.shared == nil {
		return nil // package graph does not involve the sp taxonomy
	}
	for _, f := range pass.Files {
		ast.Inspect(f, c.markWorkerSourced)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, c.visit)
	}
	return nil
}

// perGoroutine reports whether T is an oracle of the unshared class.
func (c *checker) perGoroutine(T types.Type) bool {
	return T != nil && vetkit.Implements(T, c.oracle) && !vetkit.Implements(T, c.shared)
}

// facadeMint names the methods that hand out per-goroutine facades from a
// WorkerSource: the interface method, plus the concrete NewWorker it
// conventionally delegates to (cache.Shared.NewWorkerOracle wraps
// cache.Shared.NewWorker).
var facadeMint = map[string]bool{"NewWorkerOracle": true, "NewWorker": true}

// markWorkerSourced records variables initialized straight from a
// WorkerSource facade mint; those facades are per-goroutine by contract
// and exempt from the capture checks.
func (c *checker) markWorkerSourced(n ast.Node) bool {
	assign, ok := n.(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != len(assign.Rhs) {
		return true
	}
	for i, rhs := range assign.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !facadeMint[sel.Sel.Name] {
			continue
		}
		if c.wsrc != nil && !vetkit.Implements(c.pass.TypesInfo.TypeOf(sel.X), c.wsrc) {
			continue
		}
		if id, ok := assign.Lhs[i].(*ast.Ident); ok {
			c.fromWS[c.pass.TypesInfo.ObjectOf(id)] = true
		}
	}
	return true
}

func (c *checker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.GoStmt:
		c.checkGo(n)
	case *ast.FuncLit:
		c.checkFactory(n)
	case *ast.StructType:
		c.checkDispatchField(n)
	}
	return true
}

// checkGo flags per-goroutine oracles crossing into a spawned goroutine,
// either as call arguments or as free variables of a function literal.
func (c *checker) checkGo(g *ast.GoStmt) {
	for _, arg := range g.Call.Args {
		if c.perGoroutine(c.pass.TypesInfo.TypeOf(arg)) && !c.exemptIdent(arg) {
			c.pass.Reportf(arg.Pos(),
				"per-goroutine oracle passed to a goroutine: its type implements sp.Oracle but not sp.SharedOracle; share a SharedOracle or hand out WorkerSource facades")
		}
	}
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	// One finding per captured variable, at its first use in the literal.
	first := map[*types.Var]*ast.Ident{}
	for id, obj := range c.captured(lit) {
		if !c.perGoroutine(obj.Type()) || c.fromWS[obj] {
			continue
		}
		if prev, ok := first[obj]; !ok || id.Pos() < prev.Pos() {
			first[obj] = id
		}
	}
	for _, id := range first {
		c.pass.Reportf(id.Pos(),
			"per-goroutine oracle %s captured by a goroutine: its type implements sp.Oracle but not sp.SharedOracle; share a SharedOracle or hand out WorkerSource facades", id.Name)
	}
}

// checkFactory flags closures that return a captured per-goroutine oracle:
// such a "factory" yields the same instance on every call, so fan-outs
// that call it once per shard end up sharing unsynchronized search state.
func (c *checker) checkFactory(lit *ast.FuncLit) {
	captured := c.captured(lit)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return false // nested literal gets its own visit
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			id, ok := res.(*ast.Ident)
			if !ok {
				continue
			}
			obj, isCaptured := captured[id]
			if isCaptured && c.perGoroutine(obj.Type()) && !c.fromWS[obj] {
				c.pass.Reportf(res.Pos(),
					"factory closure returns the captured per-goroutine oracle %s on every call: callers sharing the factory share its unsynchronized search state; return a fresh instance or a WorkerSource facade", id.Name)
			}
		}
		return true
	})
}

// checkDispatchField flags plain sp.Oracle struct fields in the dispatch
// package: its structs are shared across shards by construction.
func (c *checker) checkDispatchField(st *ast.StructType) {
	if vetkit.PkgBase(c.pass.Pkg.Path()) != "dispatch" {
		return
	}
	oracleNamed := vetkit.NamedType(c.pass.Pkg, "sp", "Oracle")
	if oracleNamed == nil {
		return
	}
	for _, field := range st.Fields.List {
		if t := c.pass.TypesInfo.TypeOf(field.Type); t != nil && types.Identical(t, oracleNamed) {
			c.pass.Reportf(field.Pos(),
				"dispatch struct field declared as plain sp.Oracle: dispatch structs are shared across shards; declare it sp.SharedOracle or derive per-shard facades from an sp.WorkerSource")
		}
	}
}

// exemptIdent reports whether e is an identifier bound to a WorkerSource
// facade.
func (c *checker) exemptIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && c.fromWS[c.pass.TypesInfo.ObjectOf(id)]
}

// captured returns the identifiers inside lit that refer to variables
// declared outside it.
func (c *checker) captured(lit *ast.FuncLit) map[*ast.Ident]*types.Var {
	out := map[*ast.Ident]*types.Var{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() >= lit.End() {
			out[id] = v
		}
		return true
	})
	return out
}
