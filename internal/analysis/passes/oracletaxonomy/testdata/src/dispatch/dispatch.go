// Package dispatch is named after the real dispatch package: its structs
// are shared across shards, so oracle-valued fields must not be the
// per-goroutine interface.
package dispatch

import "sp"

type engine struct {
	oracle sp.Oracle // want `dispatch struct field declared as plain sp\.Oracle`
	shared sp.SharedOracle
	src    sp.WorkerSource
}

func (e *engine) use() float64 { return e.shared.Dist(0, 1) }
