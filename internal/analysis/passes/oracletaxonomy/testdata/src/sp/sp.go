// Package sp mirrors the real shortest-path oracle taxonomy: Oracle is the
// per-goroutine class, SharedOracle the concurrency-safe class, and
// WorkerSource mints per-goroutine facades over shared state.
package sp

type Oracle interface {
	Dist(u, v int) float64
}

type SharedOracle interface {
	Oracle
	ConcurrencySafe()
}

type WorkerSource interface {
	NewWorkerOracle() Oracle
}
