package taxo

import "sp"

// perG implements sp.Oracle only: it reuses internal search buffers.
type perG struct{ buf []int }

func (p *perG) Dist(u, v int) float64 { return float64(len(p.buf)) }

// safe implements sp.SharedOracle.
type safe struct{}

func (s *safe) Dist(u, v int) float64 { return 0 }
func (s *safe) ConcurrencySafe()      {}

// source implements sp.WorkerSource; NewWorkerOracle delegates to the
// concrete NewWorker, as cache.Shared does.
type source struct{ shared safe }

func (s *source) NewWorkerOracle() sp.Oracle { return s.NewWorker() }
func (s *source) NewWorker() *perG           { return &perG{} }

func capture(o *perG) {
	go func() {
		o.Dist(1, 2) // want `per-goroutine oracle o captured by a goroutine`
		o.Dist(3, 4) // second use: deduplicated, no second finding
	}()
}

func captureAllowed(o *perG) {
	go func() {
		o.Dist(1, 2) //vetkit:allow oracletaxonomy fixture hands ownership to exactly one goroutine
	}()
}

func passArg(o *perG, run func(sp.Oracle)) {
	go run(o) // want `per-goroutine oracle passed to a goroutine`
}

func sharedOK(s *safe) {
	go func() { s.Dist(1, 2) }()
}

func facadeViaInterface(src *source) {
	w := src.NewWorkerOracle()
	go func() { w.Dist(1, 2) }()
}

func facadeViaConcrete(src *source) {
	w := src.NewWorker()
	go func() { w.Dist(1, 2) }()
}

func leakyFactory(o *perG) func() sp.Oracle {
	return func() sp.Oracle { return o } // want `factory closure returns the captured per-goroutine oracle o`
}

func freshFactory() func() sp.Oracle {
	return func() sp.Oracle { return &perG{} }
}
