// Package notdet is outside the deterministic package set: identical code
// to the positive fixture must produce no findings here.
package notdet

import "time"

func wallClock() time.Duration {
	start := time.Now()
	return time.Since(start)
}

func mapAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
