// Package core is a determinism fixture named after an in-scope package:
// vetkit scopes by package base name, so this self-contained "core"
// exercises every rule exactly as repro/internal/core would.
package core

import (
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()      // want `wall-clock read \(time\.Now\) in deterministic package core`
	return time.Since(start) // want `wall-clock read \(time\.Since\) in deterministic package core`
}

func wallClockAllowed() time.Time {
	return time.Now() //vetkit:allow determinism fixture proves a trailing annotation suppresses the finding on its own line
}

func globalRand() int {
	return rand.Intn(10) // want `global math/rand state \(rand\.Intn\)`
}

func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // constructors never touch the global Source
	return r.Intn(10)
}

func racingSelect(a, b chan int) int {
	select { // want `select over 2 channels in deterministic package core`
	case x := <-a:
		return x
	case x := <-b:
		return x
	}
}

func singleSelect(a chan int) int {
	select {
	case x := <-a:
		return x
	default:
		return -1
	}
}

func mapAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append into out under map iteration`
	}
	return out
}

func mapAppendAllowed(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) //vetkit:allow determinism the caller sorts the returned keys
	}
	return out
}

func mapLastWrite(m map[string]int) string {
	var last string
	for k := range m {
		last = k // want `write to last under map iteration`
	}
	return last
}

func mapFloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `non-integer accumulation into sum under map iteration`
	}
	return sum
}

func mapSend(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send under map iteration`
	}
}

func mapPick(m map[string]int) string {
	for k := range m {
		return k // want `return leaks a map iteration variable`
	}
	return ""
}

func mapIntSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // commutative integer accumulation: exempt
	}
	return total
}

func mapInvert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k // map-index store: exempt, distinct slots per key
	}
	return out
}
