// Package determinism enforces the pipeline's bit-identical reproducibility
// contract: every equivalence suite (ingress, batch repair, pooling, fault
// matrix) asserts that a fixed seed produces identical assignments, so no
// output-affecting control flow in the deterministic packages may read the
// wall clock, global PRNG state, or unordered map/select scheduling.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/vetkit"
)

// deterministicPkgs are the package base names (repro/internal/<name>)
// whose outputs feed the equivalence suites. obs, trace, spatial, roadnet,
// mip and exp are deliberately outside the set: they either never touch
// assignment order or are measurement-only.
var deterministicPkgs = map[string]bool{
	"core": true, "dispatch": true, "ingest": true, "sim": true,
	"workload": true, "faults": true, "sp": true, "cache": true,
}

// randConstructors are math/rand package-level functions that only build
// explicitly-seeded generators and never touch the global Source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

var Analyzer = &vetkit.Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, global math/rand, multi-channel selects, " +
		"and order-dependent writes under map iteration in the deterministic packages",
	Run: run,
}

func run(pass *vetkit.Pass) error {
	if !deterministicPkgs[vetkit.PkgBase(pass.Pkg.Path())] {
		return nil
	}
	d := &checker{pass: pass, reported: map[token.Pos]bool{}}
	for _, f := range pass.Files {
		ast.Inspect(f, d.visit)
	}
	return nil
}

type checker struct {
	pass     *vetkit.Pass
	reported map[token.Pos]bool // nested map-range walks may revisit a write
}

func (d *checker) reportOnce(pos token.Pos, format string, args ...any) {
	if !d.reported[pos] {
		d.reported[pos] = true
		d.pass.Reportf(pos, format, args...)
	}
}

func (d *checker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.SelectorExpr:
		d.checkSelector(n)
	case *ast.SelectStmt:
		d.checkSelect(n)
	case *ast.RangeStmt:
		d.checkMapRange(n)
	}
	return true
}

// checkSelector flags wall-clock reads and global math/rand use.
func (d *checker) checkSelector(sel *ast.SelectorExpr) {
	fn, ok := d.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			d.reportOnce(sel.Pos(),
				"wall-clock read (time.%s) in deterministic package %s: outputs must depend only on the seed and the input stream",
				fn.Name(), vetkit.PkgBase(d.pass.Pkg.Path()))
		}
	case "math/rand", "math/rand/v2":
		// Only package-level functions share the global Source; methods on
		// an explicitly seeded *rand.Rand have a receiver and are fine.
		if fn.Type().(*types.Signature).Recv() == nil && !randConstructors[fn.Name()] {
			d.reportOnce(sel.Pos(),
				"global math/rand state (rand.%s) in deterministic package %s: use an explicitly seeded rand.New(rand.NewSource(seed))",
				fn.Name(), vetkit.PkgBase(d.pass.Pkg.Path()))
		}
	}
}

// checkSelect flags selects that race two ready channels: which case fires
// is scheduler-chosen, so any output derived from it is nondeterministic.
// Single-channel selects (with or without default) are fine.
func (d *checker) checkSelect(sel *ast.SelectStmt) {
	comms := 0
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
			comms++
		}
	}
	if comms >= 2 {
		d.reportOnce(sel.Pos(),
			"select over %d channels in deterministic package %s: case choice between ready channels is scheduler-dependent",
			comms, vetkit.PkgBase(d.pass.Pkg.Path()))
	}
}

// checkMapRange flags order-dependent writes performed while ranging over a
// map. Order-independent updates are deliberately exempt: stores into a map
// (m2[k] = v), deletes, and commutative integer accumulation (+=, -=, |=,
// &=, ^=, ++, --). Everything else that mutates state declared outside the
// loop — appends, plain assignments, float accumulation, channel sends, and
// returns that leak the iteration variables — depends on Go's randomized
// map iteration order.
func (d *checker) checkMapRange(rs *ast.RangeStmt) {
	if _, ok := d.pass.TypesInfo.TypeOf(rs.X).Underlying().(*types.Map); !ok {
		return
	}
	local := func(obj types.Object) bool {
		return obj == nil || (obj.Pos() >= rs.Pos() && obj.Pos() < rs.End())
	}
	loopVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			loopVars[d.pass.TypesInfo.ObjectOf(id)] = true
		}
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				d.checkWrite(rs, n.Tok, lhs, rhsFor(n, i), local)
			}
		case *ast.IncDecStmt:
			if !d.integer(n.X) {
				d.checkWrite(rs, token.ASSIGN, n.X, nil, local)
			}
		case *ast.SendStmt:
			d.reportOnce(n.Pos(), "channel send under map iteration: delivery order follows the randomized map order")
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if d.mentionsAny(res, loopVars) {
					d.reportOnce(n.Pos(), "return leaks a map iteration variable: which entry is returned depends on map order")
					break
				}
			}
		}
		return true
	})
}

func rhsFor(n *ast.AssignStmt, i int) ast.Expr {
	if len(n.Rhs) == len(n.Lhs) {
		return n.Rhs[i]
	}
	if len(n.Rhs) == 1 {
		return n.Rhs[0]
	}
	return nil
}

// checkWrite classifies one assignment target inside a map-range body.
func (d *checker) checkWrite(rs *ast.RangeStmt, tok token.Token, lhs, rhs ast.Expr, local func(types.Object) bool) {
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	// Stores into a map are order-independent (last write per key wins and
	// keys from distinct iterations are distinct map slots).
	if idx, ok := lhs.(*ast.IndexExpr); ok {
		if _, isMap := d.pass.TypesInfo.TypeOf(idx.X).Underlying().(*types.Map); isMap {
			return
		}
	}
	root := vetkit.RootIdent(lhs)
	if root == nil || local(d.pass.TypesInfo.ObjectOf(root)) {
		return
	}
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		if d.integer(lhs) {
			return // commutative and associative: order cannot matter
		}
		d.reportOnce(lhs.Pos(),
			"non-integer accumulation into %s under map iteration: floating-point reduction order follows the randomized map order", vetkit.Render(lhs))
	case token.ASSIGN, token.DEFINE:
		if call, ok := rhs.(*ast.CallExpr); ok {
			if fid, ok := call.Fun.(*ast.Ident); ok && fid.Name == "append" {
				d.reportOnce(lhs.Pos(),
					"append into %s under map iteration: element order follows the randomized map order (sort the keys first)", vetkit.Render(lhs))
				return
			}
		}
		d.reportOnce(lhs.Pos(),
			"write to %s under map iteration: the surviving value depends on the randomized map order", vetkit.Render(lhs))
	default:
		d.reportOnce(lhs.Pos(),
			"write to %s under map iteration: the surviving value depends on the randomized map order", vetkit.Render(lhs))
	}
}

func (d *checker) integer(e ast.Expr) bool {
	t := d.pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func (d *checker) mentionsAny(e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objs[d.pass.TypesInfo.ObjectOf(id)] {
			found = true
		}
		return !found
	})
	return found
}
