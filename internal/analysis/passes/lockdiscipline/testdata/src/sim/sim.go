// Package sim mirrors the real sim.Metrics merge contract: aggregation
// goes through Merge, and raw field access is legal only here.
package sim

type Metrics struct {
	Assigned int64
	Rejected int64
}

// Merge is the documented aggregation path.
func (m *Metrics) Merge(o *Metrics) {
	m.Assigned += o.Assigned
	m.Rejected += o.Rejected
}
