// Package obs mirrors the real obs.Histogram merge contract.
package obs

type Histogram struct {
	counts [64]uint64
}

// Merge is the documented aggregation path.
func (h *Histogram) Merge(o *Histogram) {
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
}

// CopyFrom replaces h's contents with o's.
func (h *Histogram) CopyFrom(o *Histogram) { *h = *o }

// Attribution mirrors the real critical-path aggregate: combine only via
// Merge.
type Attribution struct {
	Requests int
	QueueNs  int64
	Stages   map[string]*StageStats
}

// StageStats is one stage's aggregate inside an Attribution; it has no
// standalone merge — Attribution.Merge folds it.
type StageStats struct {
	Spans   int
	TotalNs int64
	Contrib *Histogram
}

// Merge is the documented aggregation path.
func (a *Attribution) Merge(o *Attribution) {
	a.Requests += o.Requests
	a.QueueNs += o.QueueNs
	for name, os := range o.Stages {
		st := a.Stages[name]
		if st == nil {
			st = &StageStats{Contrib: &Histogram{}}
			a.Stages[name] = st
		}
		st.Spans += os.Spans
		st.TotalNs += os.TotalNs
		st.Contrib.Merge(os.Contrib)
	}
}
