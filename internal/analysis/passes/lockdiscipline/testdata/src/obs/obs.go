// Package obs mirrors the real obs.Histogram merge contract.
package obs

type Histogram struct {
	counts [64]uint64
}

// Merge is the documented aggregation path.
func (h *Histogram) Merge(o *Histogram) {
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
}

// CopyFrom replaces h's contents with o's.
func (h *Histogram) CopyFrom(o *Histogram) { *h = *o }
