package agg

import (
	"sync"

	"obs"
	"sim"
)

type counters struct {
	mu sync.Mutex
	n  int
}

func lockByValueParam(c counters) int { // want `by-value parameter copies agg\.counters, which contains sync\.Mutex`
	return c.n
}

func lockByValueCopy(c *counters) int {
	snapshot := *c // want `assignment copies agg\.counters, which contains sync\.Mutex`
	return snapshot.n
}

func lockRangeCopy(cs []counters) int {
	total := 0
	for _, c := range cs { // want `range value copies agg\.counters, which contains sync\.Mutex`
		total += c.n
	}
	return total
}

func lockByPointer(c *counters) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func metricsByValue(m sim.Metrics) int64 { // want `by-value parameter copies sim\.Metrics by value`
	return m.Assigned
}

func handMerge(dst, src *sim.Metrics) {
	dst.Assigned += src.Assigned // want `field-by-field merge of sim\.Metrics`
}

func allowedHandMerge(dst, src *sim.Metrics) {
	dst.Assigned += src.Assigned //vetkit:allow lockdiscipline fixture stands in for a documented one-field migration shim
}

func mergeViaAPI(dst, src *sim.Metrics, h, g *obs.Histogram) {
	dst.Merge(src)
	h.Merge(g)
}

func attributionByValue(a obs.Attribution) int { // want `by-value parameter copies obs\.Attribution by value`
	return a.Requests
}

func attributionHandMerge(dst, src *obs.Attribution) {
	dst.Requests += src.Requests // want `field-by-field merge of obs\.Attribution`
}

func stageStatsByValue(s obs.StageStats) int { // want `by-value parameter copies obs\.StageStats by value`
	return s.Spans
}

func stageStatsHandMerge(dst, src *obs.StageStats) {
	dst.TotalNs += src.TotalNs // want `field-by-field merge of obs\.StageStats`
}

func attributionMergeViaAPI(dst, src *obs.Attribution) {
	dst.Merge(src)
}
