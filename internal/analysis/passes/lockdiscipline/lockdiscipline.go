// Package lockdiscipline enforces two copy/merge invariants repo-wide:
//
//   - lock-by-value: a value whose type (transitively) contains a sync
//     primitive must not be copied — by assignment, by-value parameter or
//     receiver, or range value variable. Copies fork the lock state.
//   - merge discipline: sim.Metrics, obs.Histogram, and the critical-path
//     aggregates obs.Attribution / obs.StageStats aggregate only through
//     their documented merge functions (Metrics.Merge,
//     Histogram.Merge/CopyFrom, Attribution.Merge — StageStats rides
//     inside an Attribution and has no standalone merge). Value copies
//     alias the histogram pointers inside, and field-by-field merges
//     silently miss fields added later — both have bitten concurrent
//     metric aggregation before, so they are banned outside the defining
//     packages.
package lockdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/vetkit"
)

var Analyzer = &vetkit.Analyzer{
	Name: "lockdiscipline",
	Doc: "no lock-containing values copied by value; sim.Metrics, obs.Histogram, " +
		"and obs.Attribution/StageStats merge only via their documented merge functions",
	Run: run,
}

// mergeOnly lists types whose aggregation must go through their merge
// functions, as (package base, type name, merge spelling).
var mergeOnly = []struct{ pkg, name, via string }{
	{"sim", "Metrics", "Metrics.Merge"},
	{"obs", "Histogram", "Histogram.Merge or CopyFrom"},
	{"obs", "Attribution", "Attribution.Merge"},
	{"obs", "StageStats", "Attribution.Merge"},
}

type checker struct {
	pass *vetkit.Pass
	seen map[types.Type]bool
}

func run(pass *vetkit.Pass) error {
	c := &checker{pass: pass}
	for _, f := range pass.Files {
		ast.Inspect(f, c.visit)
	}
	return nil
}

func (c *checker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.FuncDecl:
		if n.Recv != nil {
			c.checkFields(n.Recv, "receiver")
		}
		if n.Type.Params != nil {
			c.checkFields(n.Type.Params, "parameter")
		}
	case *ast.FuncLit:
		if n.Type.Params != nil {
			c.checkFields(n.Type.Params, "parameter")
		}
	case *ast.AssignStmt:
		c.checkAssign(n)
	case *ast.RangeStmt:
		if n.Value != nil {
			c.checkCopy(n.Value.Pos(), c.pass.TypesInfo.TypeOf(n.Value), "range value copies")
		}
	}
	return true
}

// checkFields flags by-value parameters and receivers of guarded types.
func (c *checker) checkFields(fl *ast.FieldList, kind string) {
	for _, field := range fl.List {
		t := c.pass.TypesInfo.TypeOf(field.Type)
		c.checkCopy(field.Type.Pos(), t, "by-value "+kind+" copies")
	}
}

// checkAssign flags assignments that copy a guarded value and hand-rolled
// field-by-field merges of merge-only types.
func (c *checker) checkAssign(n *ast.AssignStmt) {
	for i, rhs := range n.Rhs {
		if copiesExisting(rhs) {
			c.checkCopy(rhs.Pos(), c.pass.TypesInfo.TypeOf(rhs), "assignment copies")
		}
		if i < len(n.Lhs) {
			c.checkHandMerge(n, n.Lhs[i], rhs)
		}
	}
}

// copiesExisting reports whether evaluating e yields a copy of an existing
// value (as opposed to a fresh composite literal, call result, pointer, or
// zero value).
func copiesExisting(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name != "nil"
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.ParenExpr:
		return copiesExisting(x.X)
	default:
		return false
	}
}

// checkCopy reports a diagnostic when t is a non-pointer type that must
// not be copied by value.
func (c *checker) checkCopy(pos token.Pos, t types.Type, how string) {
	if t == nil {
		return
	}
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return
	}
	if path := c.lockPath(t); path != "" {
		c.pass.Reportf(pos, "%s %s, which contains %s: copying forks the lock state; use a pointer", how, typeName(t), path)
		return
	}
	if mo := c.mergeOnlyType(t); mo != nil && !c.inDefiningPkg(t) {
		c.pass.Reportf(pos, "%s %s by value: it aggregates only through %s (value copies alias its internal histograms)", how, typeName(t), mo.via)
	}
}

// checkHandMerge flags `dst.F += src.F` / `dst.F = src.F` where dst and
// src are distinct values of the same merge-only type: a field-by-field
// merge outside the documented merge function.
func (c *checker) checkHandMerge(n *ast.AssignStmt, lhs, rhs ast.Expr) {
	lsel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return
	}
	lbase := deref(c.pass.TypesInfo.TypeOf(lsel.X))
	mo := c.mergeOnlyType(lbase)
	if mo == nil || c.inDefiningPkg(lbase) {
		return
	}
	found := false
	ast.Inspect(rhs, func(rn ast.Node) bool {
		rsel, ok := rn.(*ast.SelectorExpr)
		if !ok || found {
			return !found
		}
		rbase := deref(c.pass.TypesInfo.TypeOf(rsel.X))
		if rsel.Sel.Name == lsel.Sel.Name &&
			rbase != nil && types.Identical(rbase, lbase) &&
			vetkit.Render(rsel.X) != vetkit.Render(lsel.X) {
			found = true
		}
		return !found
	})
	if found {
		c.pass.Reportf(n.Pos(),
			"field-by-field merge of %s (%s from another instance): use %s so fields added later are not silently dropped",
			typeName(lbase), lsel.Sel.Name, mo.via)
	}
}

// mergeOnlyType returns the mergeOnly entry matching t, or nil.
func (c *checker) mergeOnlyType(t types.Type) *struct{ pkg, name, via string } {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	for i := range mergeOnly {
		m := &mergeOnly[i]
		if named.Obj().Name() == m.name && vetkit.PkgBase(named.Obj().Pkg().Path()) == m.pkg {
			return m
		}
	}
	return nil
}

// inDefiningPkg reports whether the pass is analyzing the package that
// declares t (whose internals legitimately touch raw fields).
func (c *checker) inDefiningPkg(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == c.pass.Pkg
}

// lockPath returns a description of the sync primitive t transitively
// contains by value, or "".
func (c *checker) lockPath(t types.Type) string {
	c.seen = map[types.Type]bool{}
	return c.findLock(t)
}

func (c *checker) findLock(t types.Type) string {
	if t == nil || c.seen[t] {
		return ""
	}
	c.seen[t] = true
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "sync" {
			switch named.Obj().Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Map", "Pool":
				return "sync." + named.Obj().Name()
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if p := c.findLock(u.Field(i).Type()); p != "" {
				return p
			}
		}
	case *types.Array:
		return c.findLock(u.Elem())
	}
	return ""
}

func deref(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

func typeName(t types.Type) string {
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
		return vetkit.PkgBase(named.Obj().Pkg().Path()) + "." + named.Obj().Name()
	}
	return t.String()
}
