package lockdiscipline_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/lockdiscipline"
)

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, lockdiscipline.Analyzer, "agg", "sim", "obs")
}
