package poolownership_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/poolownership"
)

func TestPoolOwnership(t *testing.T) {
	analysistest.Run(t, poolownership.Analyzer, "core")
}
