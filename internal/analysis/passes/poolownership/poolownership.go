// Package poolownership enforces the kinetic-tree node pool's ownership
// rules (internal/core/nodepool.go): a pooled node is released exactly
// once, by its owner, and a released candidate must never be committed
// afterwards. Violations recycle live nodes — a later trial rewrites them
// under the feet of a committed tree, which the Commit staleness check
// cannot detect.
//
// Three intraprocedural checks, deliberately conservative (straight-line
// statement sequences only; branch-dependent ownership transfers are not
// modeled, which keeps the pass free of false positives on the real tree):
//
//   - double release: two releases of the same expression in one
//     statement sequence with no intervening reassignment;
//   - commit after release: a Commit call consuming an expression that
//     was already released earlier in the sequence;
//   - leak on early return: a node obtained from newNode that can reach a
//     return statement before the function ever uses it (no release, no
//     escape into a structure or call).
package poolownership

import (
	"go/ast"

	"repro/internal/analysis/vetkit"
)

// scopePkgs are the packages that own pooled nodes or retained trials:
// core allocates and frees treeNodes, sim wraps candidates in Trials, and
// dispatch releases losing candidates per the retention contract.
var scopePkgs = map[string]bool{"core": true, "sim": true, "dispatch": true}

var Analyzer = &vetkit.Analyzer{
	Name: "poolownership",
	Doc: "pooled kinetic-tree nodes are released exactly once and never " +
		"committed after release; early returns must not strand fresh nodes",
	Run: run,
}

// releaseFuncs are the free functions that consume node ownership.
var releaseFuncs = map[string]bool{"freeNode": true, "freeTree": true, "freeForest": true}

func run(pass *vetkit.Pass) error {
	if !scopePkgs[vetkit.PkgBase(pass.Pkg.Path())] {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *vetkit.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			checkSequence(pass, n.List)
		case *ast.CaseClause:
			checkSequence(pass, n.Body)
		case *ast.CommClause:
			checkSequence(pass, n.Body)
		}
		return true
	})
}

// releasedExpr returns the rendered expression whose ownership stmt
// consumes, when stmt is a top-level release call: freeNode(x)/freeTree(x)/
// freeForest(x) or x.Release().
func releasedExpr(stmt ast.Stmt) (string, *ast.CallExpr) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", nil
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return "", nil
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if releaseFuncs[fun.Name] && len(call.Args) == 1 {
			return vetkit.Render(call.Args[0]), call
		}
	case *ast.SelectorExpr:
		if fun.Sel.Name == "Release" && len(call.Args) == 0 {
			return vetkit.Render(fun.X), call
		}
	}
	return "", nil
}

// commitArgs returns the rendered arguments of a Commit call in stmt, if
// any (Tree.Commit(c) and Worker.Commit(v, tr) both consume candidates).
func commitArgs(stmt ast.Stmt) []string {
	var out []string
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Commit" {
			return true
		}
		for _, a := range call.Args {
			out = append(out, vetkit.Render(a))
		}
		return true
	})
	return out
}

// assignedRoots returns the root identifiers stmt assigns to (which resets
// ownership tracking for every expression rooted at them).
func assignedRoots(stmt ast.Stmt) map[string]bool {
	out := map[string]bool{}
	collect := func(e ast.Expr) {
		if id := vetkit.RootIdent(e); id != nil {
			out[id.Name] = true
		}
	}
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			collect(lhs)
		}
	case *ast.IncDecStmt:
		collect(s.X)
	case *ast.RangeStmt:
		if s.Key != nil {
			collect(s.Key)
		}
		if s.Value != nil {
			collect(s.Value)
		}
	}
	return out
}

// checkSequence runs the double-release, commit-after-release, and
// leak-on-early-return checks over one straight-line statement list.
func checkSequence(pass *vetkit.Pass, stmts []ast.Stmt) {
	released := map[string]ast.Node{} // rendered expr -> releasing call
	for _, stmt := range stmts {
		// Reassignment of a root identifier hands its old value away (or
		// replaces it): drop every tracked expression rooted there.
		if roots := assignedRoots(stmt); len(roots) > 0 {
			for expr := range released {
				if id := exprRoot(expr); roots[id] {
					delete(released, expr)
				}
			}
		}
		for _, arg := range commitArgs(stmt) {
			if rel, ok := released[arg]; ok {
				pass.Reportf(stmt.Pos(),
					"%s committed after being released at %s: its nodes may already be rewritten by a later trial, and the Commit staleness check cannot detect that",
					arg, pass.Fset.Position(rel.Pos()))
			}
		}
		if expr, call := releasedExpr(stmt); call != nil {
			if prev, ok := released[expr]; ok {
				pass.Reportf(call.Pos(),
					"%s released twice (previous release at %s): a pooled node must be released exactly once, by its owner",
					expr, pass.Fset.Position(prev.Pos()))
			}
			released[expr] = call
		}
		checkLeak(pass, stmt, stmts)
	}
}

// checkLeak flags nodes from newNode() that can reach a return before the
// function uses them at all: the node is neither released nor escaped, so
// it is lost to the pool (and to the GC accounting the pool exists for).
func checkLeak(pass *vetkit.Pass, stmt ast.Stmt, stmts []ast.Stmt) {
	assign, ok := stmt.(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	fun, ok := call.Fun.(*ast.Ident)
	if !ok || fun.Name != "newNode" {
		return
	}
	node, ok := assign.Lhs[0].(*ast.Ident)
	if !ok || node.Name == "_" {
		return
	}

	// Scan the statements after the acquisition. The first statement that
	// mentions the node ends the window: from there on, ownership is the
	// mentioning code's problem (released, escaped, or handed off).
	idx := -1
	for i, s := range stmts {
		if s == stmt {
			idx = i
			break
		}
	}
	for _, s := range stmts[idx+1:] {
		if mentions(s, node.Name) {
			return
		}
		if ret := firstReturn(s); ret != nil {
			pass.Reportf(ret.Pos(),
				"return may leak pooled node %s (acquired from newNode at %s and never used, released, or escaped before this return)",
				node.Name, pass.Fset.Position(call.Pos()))
			return
		}
	}
}

// mentions reports whether the statement references the identifier name.
func mentions(s ast.Stmt, name string) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// firstReturn returns a return statement contained anywhere in s, or nil.
func firstReturn(s ast.Stmt) *ast.ReturnStmt {
	var ret *ast.ReturnStmt
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a return inside a closure does not exit this function
		}
		if r, ok := n.(*ast.ReturnStmt); ok && ret == nil {
			ret = r
		}
		return ret == nil
	})
	return ret
}

// exprRoot extracts the leading identifier of a rendered expression
// ("best.trial" -> "best").
func exprRoot(rendered string) string {
	for i := 0; i < len(rendered); i++ {
		if rendered[i] == '.' || rendered[i] == '[' {
			return rendered[:i]
		}
	}
	return rendered
}
