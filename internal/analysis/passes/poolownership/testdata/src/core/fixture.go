// Package core is a poolownership fixture named after the package that
// owns the real node pool; the shapes below mirror nodepool.go's contract.
package core

type node struct{ next *node }

func newNode() *node   { return &node{} }
func freeNode(n *node) { n.next = nil }

type tree struct{ root *node }

func (t *tree) Commit(n *node) { t.root = n }
func (t *tree) Release()       { t.root = nil }

func doubleRelease(n *node) {
	freeNode(n)
	freeNode(n) // want `n released twice \(previous release at`
}

func allowedDoubleRelease(n *node) {
	freeNode(n)
	//vetkit:allow poolownership fixture proves the annotation-above form suppresses the release below
	freeNode(n)
}

func releaseReacquire(n *node) {
	freeNode(n)
	n = newNode() // reassignment hands the old value away: tracking resets
	freeNode(n)
}

func commitAfterRelease(t *tree, n *node) {
	freeNode(n)
	t.Commit(n) // want `n committed after being released at`
}

func commitThenRelease(t *tree, n *node) {
	t.Commit(n)
	freeNode(n)
}

func methodDoubleRelease(t *tree) {
	t.Release()
	t.Release() // want `t released twice \(previous release at`
}

func leakOnEarlyReturn(cond bool) *node {
	n := newNode()
	if cond {
		return nil // want `return may leak pooled node n`
	}
	return n
}

func releasedBeforeReturn(cond bool) *node {
	n := newNode()
	if cond {
		freeNode(n)
		return nil
	}
	return n
}
