// Package vetkit is the analysis framework behind cmd/vetkit: a minimal,
// dependency-free analogue of golang.org/x/tools/go/analysis (the module
// builds offline, so the x/tools driver cannot be vendored). It defines
// the Analyzer/Pass contract the passes under internal/analysis/passes
// implement, the //vetkit:allow suppression annotation, and the shared
// runner that applies suppressions and validates annotations.
//
// The checked invariants themselves — bit-identical determinism, the
// sp.Oracle thread-safety taxonomy, exactly-once kinetic-tree node
// release, and lock/merge discipline — are documented in the README's
// "Invariants" section; each analyzer's Doc string names the rule it
// enforces.
package vetkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. Name doubles as the rule name accepted by
// //vetkit:allow annotations.
type Analyzer struct {
	Name string // short lower-case rule name, e.g. "determinism"
	Doc  string // one-paragraph description of the invariant enforced
	Run  func(*Pass) error
}

// Pass carries one package's syntax and type information through an
// Analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding, attributed to the rule that produced it.
type Diagnostic struct {
	Pos     token.Pos
	Rule    string
	Message string
}

// Reportf records a finding at pos. Findings covered by a matching
// //vetkit:allow annotation are filtered by the runner, not here.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     pos,
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// PkgBase returns the last segment of a package path: the taxonomy the
// passes scope themselves with ("repro/internal/core" and an analysistest
// fixture package "core" are both base "core").
func PkgBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// Target is one typechecked package handed to Run.
type Target struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Run executes the analyzers over one package, applies //vetkit:allow
// suppressions, and returns the surviving diagnostics sorted by position:
// the passes' own findings, malformed-annotation diagnostics, and one
// diagnostic per allow annotation that suppressed nothing (an annotation
// on the wrong line is a lie about the code and must not linger).
//
// Unused-allow validation only covers rules whose analyzer is in this
// run, so a single-analyzer analysistest run does not false-positive on
// another rule's annotations.
func Run(t *Target, analyzers []*Analyzer) ([]Diagnostic, error) {
	allows, allowDiags := ParseAllows(t.Fset, t.Files)

	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      t.Fset,
			Files:     t.Files,
			Pkg:       t.Pkg,
			TypesInfo: t.Info,
			diags:     &raw,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}

	out := allowDiags
	for _, d := range raw {
		if allows.suppress(t.Fset.Position(d.Pos), d.Rule) {
			continue
		}
		out = append(out, d)
	}
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	out = append(out, allows.unused(ran)...)

	sort.SliceStable(out, func(i, j int) bool { return less(t.Fset, out[i], out[j]) })
	return out, nil
}

func less(fset *token.FileSet, a, b Diagnostic) bool {
	pa, pb := fset.Position(a.Pos), fset.Position(b.Pos)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	if pa.Line != pb.Line {
		return pa.Line < pb.Line
	}
	return pa.Column < pb.Column
}

// --- shared type helpers used by several passes ---

// NamedInterface resolves the named interface type `name` declared in a
// package whose base is pkgBase, looking through the target package and
// everything it imports. It returns nil when no such interface is in the
// type graph (the pass then has nothing to check).
func NamedInterface(pkg *types.Package, pkgBase, name string) *types.Interface {
	for _, p := range append([]*types.Package{pkg}, allImports(pkg)...) {
		if PkgBase(p.Path()) != pkgBase {
			continue
		}
		obj := p.Scope().Lookup(name)
		if obj == nil {
			continue
		}
		if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
			return iface
		}
	}
	return nil
}

// NamedType resolves the named (non-interface) type `name` declared in a
// package whose base is pkgBase, or nil.
func NamedType(pkg *types.Package, pkgBase, name string) types.Type {
	for _, p := range append([]*types.Package{pkg}, allImports(pkg)...) {
		if PkgBase(p.Path()) != pkgBase {
			continue
		}
		if obj := p.Scope().Lookup(name); obj != nil {
			if _, ok := obj.(*types.TypeName); ok {
				return obj.Type()
			}
		}
	}
	return nil
}

// allImports returns the transitive imports of pkg.
func allImports(pkg *types.Package) []*types.Package {
	seen := map[*types.Package]bool{pkg: true}
	var out []*types.Package
	var walk func(p *types.Package)
	walk = func(p *types.Package) {
		for _, imp := range p.Imports() {
			if !seen[imp] {
				seen[imp] = true
				out = append(out, imp)
				walk(imp)
			}
		}
	}
	walk(pkg)
	return out
}

// Implements reports whether T or *T satisfies iface.
func Implements(T types.Type, iface *types.Interface) bool {
	if iface == nil || T == nil {
		return false
	}
	if types.Implements(T, iface) {
		return true
	}
	if _, ok := T.Underlying().(*types.Pointer); !ok {
		return types.Implements(types.NewPointer(T), iface)
	}
	return false
}
