package vetkit

import "go/ast"

// RootIdent walks selector/index/star/paren chains to the base identifier
// of an lvalue-ish expression, or nil when there is none (e.g. a call).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// Render prints a compact source form of a selector/index chain for
// diagnostics and for syntactic expression identity ("same lvalue").
func Render(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return Render(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return Render(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + Render(x.X)
	case *ast.ParenExpr:
		return Render(x.X)
	default:
		return "state"
	}
}
