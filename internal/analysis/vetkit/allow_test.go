package vetkit

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

// TestParseAllowsRejectsMalformed covers every malformed-annotation shape:
// each must be rejected with its own clear diagnostic, never silently
// ignored or silently accepted.
func TestParseAllowsRejectsMalformed(t *testing.T) {
	cases := []struct {
		name    string
		comment string
		wantMsg string // substring of the expected diagnostic; "" = valid
	}{
		{"spaced directive", "// vetkit:allow determinism timing metric", "no space allowed between // and vetkit:allow"},
		{"missing rule", "//vetkit:allow", "missing rule name"},
		{"missing rule with spaces", "//vetkit:allow   ", "missing rule name"},
		{"unknown rule", "//vetkit:allow nosuchrule because reasons", `unknown rule "nosuchrule"`},
		{"missing reason", "//vetkit:allow determinism", "missing reason"},
		{"missing reason with spaces", "//vetkit:allow determinism   ", "missing reason"},
		{"valid", "//vetkit:allow determinism timing metric only", ""},
		{"unrelated word", "//vetkit:allowed is not a directive", ""},
		{"plain comment", "// nothing to see", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fset, files := parseOne(t, "package p\n\nvar x = 1 "+tc.comment+"\n")
			allows, diags := ParseAllows(fset, files)
			if tc.wantMsg == "" {
				if len(diags) != 0 {
					t.Fatalf("valid annotation rejected: %v", diags)
				}
				return
			}
			if len(diags) != 1 {
				t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
			}
			if d := diags[0]; d.Rule != "allow" || !strings.Contains(d.Message, tc.wantMsg) {
				t.Errorf("diagnostic [%s] %q does not contain %q", d.Rule, d.Message, tc.wantMsg)
			}
			if len(allows.all) != 0 {
				t.Errorf("malformed annotation was also accepted: %+v", allows.all)
			}
		})
	}
}

// returnsAnalyzer reports a synthetic finding on every return statement:
// enough structure to drive the suppression and unused-allow machinery.
var returnsAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "test double: one finding per return statement",
	Run: func(p *Pass) error {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if r, ok := n.(*ast.ReturnStmt); ok {
					p.Reportf(r.Pos(), "synthetic finding")
				}
				return true
			})
		}
		return nil
	},
}

func runOn(t *testing.T, src string) []Diagnostic {
	t.Helper()
	fset, files := parseOne(t, src)
	diags, err := Run(&Target{
		Fset:  fset,
		Files: files,
		Pkg:   types.NewPackage("p", "p"),
		Info:  &types.Info{},
	}, []*Analyzer{returnsAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

func TestAllowSuppressesSameLine(t *testing.T) {
	diags := runOn(t, `package p

func f() int {
	return 1 //vetkit:allow determinism covered by the equivalence suite
}
`)
	if len(diags) != 0 {
		t.Fatalf("trailing annotation did not suppress: %v", diags)
	}
}

func TestAllowSuppressesLineBelow(t *testing.T) {
	diags := runOn(t, `package p

func f() int {
	//vetkit:allow determinism covered by the equivalence suite
	return 1
}
`)
	if len(diags) != 0 {
		t.Fatalf("annotation-above form did not suppress: %v", diags)
	}
}

// TestAllowOnWrongLine pins the failure mode the unused-allow check exists
// for: an annotation that drifted away from its finding suppresses nothing,
// the finding comes back, and the stale annotation is itself diagnosed.
func TestAllowOnWrongLine(t *testing.T) {
	diags := runOn(t, `package p

//vetkit:allow determinism this sits two lines above the return
func f() int {
	return 1
}
`)
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want finding + unused allow: %v", len(diags), diags)
	}
	if diags[0].Rule != "allow" || !strings.Contains(diags[0].Message, "matches no finding on this line or the line below") {
		t.Errorf("unused-allow diagnostic missing, got [%s] %q", diags[0].Rule, diags[0].Message)
	}
	if diags[1].Rule != "determinism" || diags[1].Message != "synthetic finding" {
		t.Errorf("original finding not restored, got [%s] %q", diags[1].Rule, diags[1].Message)
	}
}

// TestAllowWrongRule: an annotation naming a different rule neither
// suppresses the finding nor counts as unused (its analyzer is not in the
// run, so analysistest-style single-pass runs stay quiet about it).
func TestAllowWrongRule(t *testing.T) {
	diags := runOn(t, `package p

func f() int {
	return 1 //vetkit:allow poolownership wrong rule for this finding
}
`)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want the unsuppressed finding only: %v", len(diags), diags)
	}
	if diags[0].Rule != "determinism" {
		t.Errorf("surviving diagnostic has rule %s, want determinism", diags[0].Rule)
	}
}

// TestUnusedAllow: a well-formed annotation whose analyzer ran but which
// suppressed nothing is reported, so fixed violations shed their stale
// annotations.
func TestUnusedAllow(t *testing.T) {
	diags := runOn(t, `package p

var x = 1 //vetkit:allow determinism nothing on this line to suppress
`)
	if len(diags) != 1 || diags[0].Rule != "allow" {
		t.Fatalf("got %v, want one unused-allow diagnostic", diags)
	}
	if !strings.Contains(diags[0].Message, "fix the annotation's placement or delete it") {
		t.Errorf("unexpected message %q", diags[0].Message)
	}
}
