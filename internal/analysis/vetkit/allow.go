package vetkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Rules is the registry of rule names //vetkit:allow may suppress — the
// analyzer names shipped by cmd/vetkit. Annotations naming anything else
// are rejected so a typo cannot silently disable nothing.
var Rules = []string{"determinism", "lockdiscipline", "oracletaxonomy", "poolownership"}

func knownRule(name string) bool {
	for _, r := range Rules {
		if r == name {
			return true
		}
	}
	return false
}

// Allow is one parsed //vetkit:allow annotation. It suppresses findings of
// the named rule on its own line and on the line directly below it (the
// annotation-above-the-statement form).
type Allow struct {
	Pos    token.Pos
	File   string
	Line   int
	Rule   string
	Reason string
	used   bool
}

// Allows indexes the valid annotations of one package.
type Allows struct {
	byLoc map[string][]*Allow // "file:line:rule" -> annotations
	all   []*Allow
}

// allowDirective splits a comment into (text, true) when it carries the
// allow marker, tolerating the malformed spaced form so it can be
// diagnosed rather than silently ignored.
func allowDirective(c *ast.Comment) (string, bool, bool) {
	text, ok := strings.CutPrefix(c.Text, "//")
	if !ok {
		return "", false, false
	}
	trimmed := strings.TrimLeft(text, " \t")
	if !strings.HasPrefix(trimmed, "vetkit:allow") {
		return "", false, false
	}
	rest := strings.TrimPrefix(trimmed, "vetkit:allow")
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false, false // e.g. "vetkit:allowed", some other word
	}
	spaced := trimmed != text // "// vetkit:allow" is not a valid directive
	return strings.TrimSpace(rest), spaced, true
}

// ParseAllows extracts every //vetkit:allow annotation from the files and
// returns the valid ones plus a diagnostic (rule "allow") for each
// malformed annotation: directive with leading space, missing rule name,
// unknown rule name, or missing reason.
func ParseAllows(fset *token.FileSet, files []*ast.File) (*Allows, []Diagnostic) {
	out := &Allows{byLoc: map[string][]*Allow{}}
	var diags []Diagnostic
	bad := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{Pos: pos, Rule: "allow", Message: fmt.Sprintf(format, args...)})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, spaced, ok := allowDirective(c)
				if !ok {
					continue
				}
				if spaced {
					bad(c.Pos(), "malformed //vetkit:allow: no space allowed between // and vetkit:allow (directives are machine-read)")
					continue
				}
				rule, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				if rule == "" {
					bad(c.Pos(), "malformed //vetkit:allow: missing rule name (want //vetkit:allow <rule> <reason>)")
					continue
				}
				if !knownRule(rule) {
					bad(c.Pos(), "//vetkit:allow names unknown rule %q (known rules: %s)", rule, strings.Join(Rules, ", "))
					continue
				}
				if reason == "" {
					bad(c.Pos(), "//vetkit:allow %s: missing reason — every suppression must say why the finding is safe", rule)
					continue
				}
				p := fset.Position(c.Pos())
				a := &Allow{Pos: c.Pos(), File: p.Filename, Line: p.Line, Rule: rule, Reason: reason}
				out.all = append(out.all, a)
				for _, line := range []int{a.Line, a.Line + 1} {
					key := locKey(a.File, line, rule)
					out.byLoc[key] = append(out.byLoc[key], a)
				}
			}
		}
	}
	return out, diags
}

func locKey(file string, line int, rule string) string {
	return fmt.Sprintf("%s:%d:%s", file, line, rule)
}

// suppress reports whether a finding of rule at pos is covered by an
// annotation, marking the annotation used.
func (a *Allows) suppress(pos token.Position, rule string) bool {
	matches := a.byLoc[locKey(pos.Filename, pos.Line, rule)]
	if len(matches) == 0 {
		return false
	}
	for _, m := range matches {
		m.used = true
	}
	return true
}

// unused returns one diagnostic per annotation that suppressed no finding
// of a rule whose analyzer actually ran: either the annotated violation
// was fixed (delete the annotation) or the annotation sits on the wrong
// line and is suppressing nothing.
func (a *Allows) unused(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	sort.Slice(a.all, func(i, j int) bool {
		if a.all[i].File != a.all[j].File {
			return a.all[i].File < a.all[j].File
		}
		return a.all[i].Line < a.all[j].Line
	})
	for _, al := range a.all {
		if !al.used && ran[al.Rule] {
			out = append(out, Diagnostic{
				Pos:  al.Pos,
				Rule: "allow",
				Message: fmt.Sprintf("//vetkit:allow %s matches no finding on this line or the line below — fix the annotation's placement or delete it",
					al.Rule),
			})
		}
	}
	return out
}
