// Package spatial provides the "simple grid-based spatial index" over moving
// servers described in the paper (§IV): the index is updated only when a
// vehicle crosses a cell boundary, and for each request it identifies the
// vehicles possibly within the waiting-time radius of the pickup point; the
// caller then confirms candidates against their exact locations.
package spatial

import (
	"fmt"
	"math"
	"slices"
	"sync"
)

// ObjectID identifies a moving object (a server/vehicle) in the index.
type ObjectID int32

// GridIndex partitions the bounding box of the road network into square
// cells and tracks which cell each object occupies.
//
// Safe for concurrent use: queries (Within, Len, Stats) take a read lock
// and writes (Insert, Update, Remove) a write lock, so any number of
// concurrent readers can run against a vehicle-relocation writer. The
// sequential simulator and the dispatch shards still drive their indexes
// from one goroutine at a time — the lock is uncontended there — but the
// index no longer relies on it, so a concurrent front door can consult
// fleet positions while position reports relocate vehicles.
// Cells are sorted ID slices rather than maps: queries dominate the
// workload (every request scans the cells under its candidate disk, while
// the index mutates only on cell crossings), and a slice walk appends in
// order with no map-iteration overhead and no per-query closure for a
// sort. Membership updates pay an O(cell population) shift, which stays
// cheap because cell populations are bounded by the auto-tuned cell size.
type GridIndex struct {
	mu         sync.RWMutex
	minX, minY float64
	cellSize   float64
	cols, rows int
	cells      [][]ObjectID
	loc        map[ObjectID]int // object -> cell index
	moves      uint64           // cell-crossing updates, for stats
	updates    uint64           // total Update calls
}

// NewGridIndex creates an index covering [minX,maxX] x [minY,maxY] with the
// given cell size in meters.
func NewGridIndex(minX, minY, maxX, maxY, cellSize float64) (*GridIndex, error) {
	if cellSize <= 0 {
		return nil, fmt.Errorf("spatial: cell size must be positive, got %v", cellSize)
	}
	if maxX < minX || maxY < minY {
		return nil, fmt.Errorf("spatial: invalid bounds (%v,%v)-(%v,%v)", minX, minY, maxX, maxY)
	}
	cols := int((maxX-minX)/cellSize) + 1
	rows := int((maxY-minY)/cellSize) + 1
	g := &GridIndex{
		minX:     minX,
		minY:     minY,
		cellSize: cellSize,
		cols:     cols,
		rows:     rows,
		cells:    make([][]ObjectID, cols*rows),
		loc:      make(map[ObjectID]int),
	}
	return g, nil
}

func (g *GridIndex) cellOf(x, y float64) int {
	cx := int((x - g.minX) / g.cellSize)
	cy := int((y - g.minY) / g.cellSize)
	if cx < 0 {
		cx = 0
	}
	if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.rows {
		cy = g.rows - 1
	}
	return cy*g.cols + cx
}

// Len returns the number of indexed objects.
func (g *GridIndex) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.loc)
}

// Insert adds an object at (x, y). Inserting an existing ID is an Update.
func (g *GridIndex) Insert(id ObjectID, x, y float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.loc[id]; ok {
		g.update(id, x, y)
		return
	}
	c := g.cellOf(x, y)
	g.cellInsert(c, id)
	g.loc[id] = c
}

// cellInsert adds id to cell c, keeping the cell sorted.
func (g *GridIndex) cellInsert(c int, id ObjectID) {
	cell := g.cells[c]
	i, _ := slices.BinarySearch(cell, id)
	cell = append(cell, 0)
	copy(cell[i+1:], cell[i:])
	cell[i] = id
	g.cells[c] = cell
}

// cellRemove deletes id from cell c if present.
func (g *GridIndex) cellRemove(c int, id ObjectID) {
	cell := g.cells[c]
	if i, ok := slices.BinarySearch(cell, id); ok {
		g.cells[c] = append(cell[:i], cell[i+1:]...)
	}
}

// Update moves an object to (x, y). The index mutates only when the object
// crosses a cell boundary, which is what keeps maintenance cheap for
// vehicles reporting locations every 20–60 seconds.
func (g *GridIndex) Update(id ObjectID, x, y float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.update(id, x, y)
}

// update is Update under a held write lock.
func (g *GridIndex) update(id ObjectID, x, y float64) {
	g.updates++
	old, ok := g.loc[id]
	c := g.cellOf(x, y)
	if ok && old == c {
		return
	}
	if ok {
		g.cellRemove(old, id)
	}
	g.cellInsert(c, id)
	g.loc[id] = c
	g.moves++
}

// Remove deletes an object from the index. Removing an absent ID is a no-op.
func (g *GridIndex) Remove(id ObjectID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.loc[id]; ok {
		g.cellRemove(c, id)
		delete(g.loc, id)
	}
}

// Within appends to dst the IDs of all objects whose cells intersect the
// disk of radius r around (x, y), and returns the extended slice. This is a
// superset of the objects truly within r (cell-level filtering); the caller
// confirms candidates, matching the paper's "identifies the vehicles
// possibly within w of the request, asks the vehicle's actual location, and
// then tests".
//
// The appended candidates are in ascending ObjectID order, so callers that
// need deterministic iteration (tie-breaking across runs, or merging the
// per-shard results of a partitioned fleet) can consume them directly
// without re-sorting.
func (g *GridIndex) Within(dst []ObjectID, x, y, r float64) []ObjectID {
	if r < 0 {
		return dst
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	start := len(dst)
	cx0 := int(math.Floor((x - r - g.minX) / g.cellSize))
	cx1 := int(math.Floor((x + r - g.minX) / g.cellSize))
	cy0 := int(math.Floor((y - r - g.minY) / g.cellSize))
	cy1 := int(math.Floor((y + r - g.minY) / g.cellSize))
	if cx0 < 0 {
		cx0 = 0
	}
	if cy0 < 0 {
		cy0 = 0
	}
	if cx1 >= g.cols {
		cx1 = g.cols - 1
	}
	if cy1 >= g.rows {
		cy1 = g.rows - 1
	}
	for cy := cy0; cy <= cy1; cy++ {
		for cx := cx0; cx <= cx1; cx++ {
			dst = append(dst, g.cells[cy*g.cols+cx]...)
		}
	}
	if cy1 == cy0 && cx1 == cx0 {
		return dst // a single sorted cell: already in order
	}
	// Each cell is sorted, so the appended run is a small number of sorted
	// runs; the pattern-defeating sort exploits that.
	slices.Sort(dst[start:])
	return dst
}

// Stats returns the total number of Update calls and how many of them
// actually crossed a cell boundary.
func (g *GridIndex) Stats() (updates, crossings uint64) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.updates, g.moves
}
