package spatial

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestGridIndexValidation(t *testing.T) {
	if _, err := NewGridIndex(0, 0, 10, 10, 0); err == nil {
		t.Fatal("expected error for zero cell size")
	}
	if _, err := NewGridIndex(10, 0, 0, 10, 5); err == nil {
		t.Fatal("expected error for inverted bounds")
	}
}

func TestInsertUpdateRemove(t *testing.T) {
	g, err := NewGridIndex(0, 0, 1000, 1000, 100)
	if err != nil {
		t.Fatal(err)
	}
	g.Insert(1, 50, 50)
	g.Insert(2, 950, 950)
	if g.Len() != 2 {
		t.Fatalf("Len=%d", g.Len())
	}
	got := g.Within(nil, 0, 0, 200)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("Within corner: %v", got)
	}
	g.Update(1, 940, 940)
	got = g.Within(nil, 1000, 1000, 200)
	if len(got) != 2 {
		t.Fatalf("after move: %v", got)
	}
	g.Remove(1)
	g.Remove(99) // no-op
	if g.Len() != 1 {
		t.Fatalf("Len after remove=%d", g.Len())
	}
}

func TestUpdateOnlyCrossingsMutate(t *testing.T) {
	g, err := NewGridIndex(0, 0, 1000, 1000, 100)
	if err != nil {
		t.Fatal(err)
	}
	g.Insert(1, 50, 50)
	g.Update(1, 60, 60)  // same cell
	g.Update(1, 55, 58)  // same cell
	g.Update(1, 250, 50) // crossing
	updates, crossings := g.Stats()
	if updates != 3 {
		t.Fatalf("updates=%d", updates)
	}
	if crossings != 1 {
		t.Fatalf("crossings=%d, want 1", crossings)
	}
}

// TestWithinIsSuperset: Within must return every object truly within the
// radius (it may return more — cell-level filtering).
func TestWithinIsSuperset(t *testing.T) {
	const size = 5000.0
	g, err := NewGridIndex(0, 0, size, size, 333)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	type pos struct{ x, y float64 }
	objs := map[ObjectID]pos{}
	for i := 0; i < 300; i++ {
		p := pos{rng.Float64() * size, rng.Float64() * size}
		objs[ObjectID(i)] = p
		g.Insert(ObjectID(i), p.x, p.y)
	}
	f := func(qx16, qy16, r16 uint16) bool {
		qx := float64(qx16) / 65535 * size
		qy := float64(qy16) / 65535 * size
		r := float64(r16) / 65535 * size / 2
		got := map[ObjectID]bool{}
		for _, id := range g.Within(nil, qx, qy, r) {
			got[id] = true
		}
		for id, p := range objs {
			if math.Hypot(p.x-qx, p.y-qy) <= r && !got[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWithinOutOfBoundsQueries(t *testing.T) {
	g, err := NewGridIndex(0, 0, 100, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	g.Insert(1, 5, 5)
	if got := g.Within(nil, -500, -500, 600); len(got) != 1 {
		t.Fatalf("out-of-bounds query missed object: %v", got)
	}
	if got := g.Within(nil, 50, 50, -1); got != nil {
		t.Fatalf("negative radius should return nothing, got %v", got)
	}
}

func TestInsertExistingActsAsUpdate(t *testing.T) {
	g, err := NewGridIndex(0, 0, 100, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	g.Insert(1, 5, 5)
	g.Insert(1, 95, 95)
	if g.Len() != 1 {
		t.Fatalf("Len=%d", g.Len())
	}
	if got := g.Within(nil, 95, 95, 5); len(got) != 1 {
		t.Fatalf("object not at new position: %v", got)
	}
	if got := g.Within(nil, 5, 5, 5); len(got) != 0 {
		t.Fatalf("stale entry at old position: %v", got)
	}
}

func BenchmarkWithin(b *testing.B) {
	g, _ := NewGridIndex(0, 0, 50000, 50000, 1000)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 10000; i++ {
		g.Insert(ObjectID(i), rng.Float64()*50000, rng.Float64()*50000)
	}
	var buf []ObjectID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.Within(buf[:0], rng.Float64()*50000, rng.Float64()*50000, 8400)
	}
}

func BenchmarkUpdate(b *testing.B) {
	g, _ := NewGridIndex(0, 0, 50000, 50000, 1000)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 10000; i++ {
		g.Insert(ObjectID(i), rng.Float64()*50000, rng.Float64()*50000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := ObjectID(rng.Intn(10000))
		g.Update(id, rng.Float64()*50000, rng.Float64()*50000)
	}
}

// TestWithinSortedOrder: appended candidates arrive in ascending ObjectID
// order, and a non-empty dst prefix is left untouched and unsorted-into.
func TestWithinSortedOrder(t *testing.T) {
	const size = 3000.0
	g, err := NewGridIndex(0, 0, size, size, 250)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		g.Insert(ObjectID(i), rng.Float64()*size, rng.Float64()*size)
	}
	for q := 0; q < 50; q++ {
		got := g.Within(nil, rng.Float64()*size, rng.Float64()*size, 400+rng.Float64()*800)
		for i := 1; i < len(got); i++ {
			if got[i-1] >= got[i] {
				t.Fatalf("query %d: unsorted or duplicate result %v", q, got)
			}
		}
	}
	// Prefix preservation: only the appended region is sorted.
	prefix := []ObjectID{9999}
	got := g.Within(prefix, size/2, size/2, size)
	if got[0] != 9999 {
		t.Fatalf("dst prefix clobbered: %v", got[:3])
	}
	for i := 2; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("appended region unsorted: %v", got[1:])
		}
	}
}

// TestConcurrentReadersDuringRelocation closes the race-test gap the
// dispatch PRs left: many goroutines query the index (Within, Len, Stats)
// while a relocation writer streams position Updates that cross cell
// boundaries, and a churn writer Inserts/Removes objects. Run under
// -race in CI; the index must stay internally consistent (every query
// yields valid, sorted, duplicate-free IDs).
func TestConcurrentReadersDuringRelocation(t *testing.T) {
	const (
		objects = 200
		readers = 4
		rounds  = 40
	)
	g, err := NewGridIndex(0, 0, 10000, 10000, 250)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < objects; i++ {
		g.Insert(ObjectID(i), float64(i*37%10000), float64(i*91%10000))
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Relocation writer: every object drifts across cell boundaries.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for r := 0; r < rounds; r++ {
			for i := 0; i < objects; i++ {
				g.Update(ObjectID(i), rng.Float64()*10000, rng.Float64()*10000)
			}
		}
		close(stop)
	}()

	// Churn writer: a disjoint ID range is inserted and removed.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(2))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := ObjectID(objects + i%50)
			g.Insert(id, rng.Float64()*10000, rng.Float64()*10000)
			g.Remove(id)
		}
	}()

	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var buf []ObjectID
			for {
				select {
				case <-stop:
					return
				default:
				}
				buf = g.Within(buf[:0], rng.Float64()*10000, rng.Float64()*10000, 1500)
				for i, id := range buf {
					if id < 0 || int(id) >= objects+50 {
						errs <- fmt.Errorf("Within returned out-of-range ID %d", id)
						return
					}
					// Strictly increasing implies sorted and duplicate-free.
					if i > 0 && buf[i-1] >= id {
						errs <- fmt.Errorf("Within not sorted: %d before %d", buf[i-1], id)
						return
					}
				}
				if n := g.Len(); n < objects {
					errs <- fmt.Errorf("Len=%d below the %d permanent objects", n, objects)
					return
				}
				g.Stats()
			}
		}(int64(r) + 10)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	updates, crossings := g.Stats()
	if updates < objects*rounds || crossings == 0 {
		t.Fatalf("writer made %d updates / %d crossings — relocation never ran", updates, crossings)
	}
}
