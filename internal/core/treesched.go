package core

import (
	"repro/internal/sp"
)

// TreeScheduler adapts the kinetic tree to the Scheduler interface: it
// builds a fresh tree for the instance by inserting its trips one at a time.
// Because the tree materializes every valid schedule, the resulting best
// branch is the optimal schedule (exactly, for the basic and slack variants;
// within the 2(m+1)θ bound for the hotspot variant), which makes this
// adapter the cross-validation target against the brute-force, branch-and-
// bound, and MIP schedulers.
type TreeScheduler struct {
	oracle sp.Oracle
	opts   TreeOptions
}

// NewTreeScheduler returns a kinetic-tree scheduler with the given variant
// options.
func NewTreeScheduler(oracle sp.Oracle, opts TreeOptions) *TreeScheduler {
	return &TreeScheduler{oracle: oracle, opts: opts}
}

// Name implements Scheduler.
func (s *TreeScheduler) Name() string {
	switch {
	case s.opts.HotspotTheta > 0:
		return "ktree-hotspot"
	case s.opts.Slack:
		return "ktree-slack"
	default:
		return "ktree"
	}
}

// Schedule implements Scheduler.
func (s *TreeScheduler) Schedule(inst *Instance) Result {
	opts := s.opts
	opts.Capacity = inst.Capacity
	tree := NewTree(s.oracle, inst.Origin, inst.Odo, opts)
	// Insert onboard trips first: they raise the vehicle's base load, which
	// the capacity checks of subsequently inserted pickups must observe
	// (in the live system passengers board strictly before later requests
	// arrive, so this is the only order that occurs).
	perm := make([]int, 0, len(inst.Trips)) // tree slot -> instance index
	for i := range inst.Trips {
		if inst.Trips[i].OnBoard {
			perm = append(perm, i)
		}
	}
	for i := range inst.Trips {
		if !inst.Trips[i].OnBoard {
			perm = append(perm, i)
		}
	}
	for _, i := range perm {
		cand, ok, err := tree.TrialInsert(inst.Trips[i])
		if err != nil || !ok {
			return Result{}
		}
		tree.Commit(cand)
	}
	cost, order, ok := tree.Best()
	if !ok {
		// No trips pending: the empty schedule is trivially optimal.
		return Result{OK: true, Exact: true}
	}
	// Map tree-internal trip slots back to instance indices.
	for i := range order {
		order[i].Trip = perm[order[i].Trip]
	}
	return Result{OK: true, Cost: cost, Order: order, Exact: opts.HotspotTheta == 0}
}
