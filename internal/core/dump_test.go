package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/roadnet"
)

func TestDumpAndStats(t *testing.T) {
	w := newTestWorld(t, 61)
	tree := NewTree(w.oracle, 0, 0, TreeOptions{Slack: true, Capacity: 4})

	var buf bytes.Buffer
	if err := tree.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(empty)") {
		t.Fatalf("empty dump: %q", buf.String())
	}

	for i, pair := range [][2]roadnet.VertexID{{5, 40}, {12, 33}} {
		ts, err := NewTripState(int64(i), pair[0], pair[1], 8000, 0.5, tree.Odo(), w.oracle)
		if err != nil {
			t.Fatal(err)
		}
		cand, ok, err := tree.TrialInsert(ts)
		if err != nil || !ok {
			t.Fatalf("insert %d failed (ok=%v err=%v)", i, ok, err)
		}
		tree.Commit(cand)
	}

	buf.Reset()
	if err := tree.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"2 active trips", "pickup(trip 0", "dropoff(trip 1", "Δmax", "*"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}

	st := tree.Stats()
	if st.Nodes != tree.Nodes() {
		t.Fatalf("Stats.Nodes %d != tree.Nodes %d", st.Nodes, tree.Nodes())
	}
	if st.Leaves < 1 {
		t.Fatalf("Stats.Leaves = %d", st.Leaves)
	}
	// Every schedule visits all 4 pending stops, one per depth level
	// (no hotspot merging here), so depth == pending stop count.
	if st.MaxDepth != 4 {
		t.Fatalf("MaxDepth = %d, want 4", st.MaxDepth)
	}
}
