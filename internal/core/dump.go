package core

import (
	"fmt"
	"io"
	"strings"
)

// Dump writes a human-readable rendering of the kinetic tree: one line per
// node, indented by depth, with per-stop arrival odometers and the slack
// aggregates. The cheapest branch is marked with '*' on its first stops.
// Intended for debugging and for the treeviz developer tool.
func (t *Tree) Dump(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "kinetic tree @vertex %d odo %.1f: %d active trips, %d nodes\n",
		t.loc, t.odo, t.ActiveTrips(), t.nodes); err != nil {
		return err
	}
	if t.Empty() {
		_, err := fmt.Fprintln(w, "  (empty)")
		return err
	}
	best := t.bestChild()
	var walk func(n *treeNode, at float64, depth int, onBest bool) error
	walk = func(n *treeNode, at float64, depth int, onBest bool) error {
		arrive := at + n.leg
		var sb strings.Builder
		sb.WriteString(strings.Repeat("  ", depth+1))
		if onBest {
			sb.WriteString("* ")
		} else {
			sb.WriteString("- ")
		}
		for i, s := range n.stops {
			if i > 0 {
				arrive += n.intra[i-1]
				sb.WriteString(" + ")
			}
			fmt.Fprintf(&sb, "%v@%.1f", s, arrive)
		}
		if t.opts.Slack {
			fmt.Fprintf(&sb, "  [Δmax %.1f Δmin %.1f]", n.dmax, n.dmin)
		}
		if _, err := fmt.Fprintln(w, sb.String()); err != nil {
			return err
		}
		// The best continuation below this node.
		var bc *treeNode
		if onBest {
			bestCostBelow := 0.0
			_ = bestCostBelow
			bcCost := 0.0
			for _, c := range n.children {
				total := c.leg + c.intraSum + bestCost(c.children)
				if bc == nil || total < bcCost {
					bc = c
					bcCost = total
				}
			}
		}
		for _, c := range n.children {
			if err := walk(c, arrive, depth+1, onBest && c == bc); err != nil {
				return err
			}
		}
		return nil
	}
	for _, c := range t.children {
		if err := walk(c, t.odo, 0, c == best); err != nil {
			return err
		}
	}
	return nil
}

// Stats summarizes the committed tree's shape.
type TreeStats struct {
	Nodes    int
	Leaves   int // number of alternative schedules materialized
	MaxDepth int
}

// Stats computes the tree-shape statistics.
func (t *Tree) Stats() TreeStats {
	var st TreeStats
	var walk func(n *treeNode, depth int)
	walk = func(n *treeNode, depth int) {
		st.Nodes++
		if depth > st.MaxDepth {
			st.MaxDepth = depth
		}
		if len(n.children) == 0 {
			st.Leaves++
			return
		}
		for _, c := range n.children {
			walk(c, depth+1)
		}
	}
	for _, c := range t.children {
		walk(c, 1)
	}
	return st
}
