package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/roadnet"
	"repro/internal/sp"
)

// testWorld bundles a small road network and an exact oracle for scheduler
// tests.
type testWorld struct {
	g      *roadnet.Graph
	oracle *sp.Matrix
}

func newTestWorld(t testing.TB, seed int64) *testWorld {
	t.Helper()
	g, err := roadnet.Grid(roadnet.GridOptions{
		Rows: 7, Cols: 7, Spacing: 500, Jitter: 0.2, WeightVar: 0.2, Seed: seed,
	})
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	m, err := sp.NewMatrix(g)
	if err != nil {
		t.Fatalf("matrix: %v", err)
	}
	return &testWorld{g: g, oracle: m}
}

// randomInstance generates a scheduling instance with nTrips trips whose
// budgets are drawn wide enough to usually (but not always) be feasible.
func (w *testWorld) randomInstance(rng *rand.Rand, nTrips, capacity int) *Instance {
	n := int32(w.g.N())
	origin := roadnet.VertexID(rng.Int31n(n))
	inst := &Instance{Origin: origin, Odo: rng.Float64() * 1000, Capacity: capacity}
	onboard := 0
	for i := 0; i < nTrips; i++ {
		var s, e roadnet.VertexID
		for {
			s = roadnet.VertexID(rng.Int31n(n))
			e = roadnet.VertexID(rng.Int31n(n))
			if s != e {
				break
			}
		}
		d := w.oracle.Dist(s, e)
		eps := 0.1 + rng.Float64()*0.5
		ts := TripState{
			ID:          int64(i),
			Pickup:      s,
			Dropoff:     e,
			ShortestLen: d,
			MaxRide:     (1 + eps) * d,
		}
		// A vehicle can only start with as many onboard passengers as
		// its capacity allows.
		if rng.Float64() < 0.3 && (capacity == 0 || onboard < capacity) {
			ts.OnBoard = true
			onboard++
			ts.DropDeadline = inst.Odo + w.oracle.Dist(origin, e)*(1.1+rng.Float64())
		} else {
			ts.WaitDeadline = inst.Odo + w.oracle.Dist(origin, s)*(0.8+rng.Float64()*1.5) + 200
		}
		inst.Trips = append(inst.Trips, ts)
	}
	return inst
}

// TestSchedulersAgree is the central cross-validation of the reproduction:
// brute force, branch and bound, MIP, and both exact kinetic-tree variants
// must report the same feasibility and the same optimal cost on random
// instances, and every returned order must validate.
func TestSchedulersAgree(t *testing.T) {
	w := newTestWorld(t, 1)
	rng := rand.New(rand.NewSource(2))
	schedulers := []Scheduler{
		NewBruteForce(w.oracle),
		NewBranchBound(w.oracle),
		NewMIPScheduler(w.oracle, 200000),
		NewTreeScheduler(w.oracle, TreeOptions{}),
		NewTreeScheduler(w.oracle, TreeOptions{Slack: true}),
	}
	feasibleSeen, infeasibleSeen := 0, 0
	for iter := 0; iter < 120; iter++ {
		nTrips := 1 + rng.Intn(3)
		capacity := 0
		if rng.Float64() < 0.5 {
			capacity = 1 + rng.Intn(3)
		}
		inst := w.randomInstance(rng, nTrips, capacity)
		ref := schedulers[0].Schedule(inst)
		if ref.OK {
			feasibleSeen++
			if _, err := ValidateOrder(inst, w.oracle, ref.Order); err != nil {
				t.Fatalf("iter %d: bruteforce order invalid: %v", iter, err)
			}
		} else {
			infeasibleSeen++
		}
		for _, s := range schedulers[1:] {
			got := s.Schedule(inst)
			if got.OK != ref.OK {
				t.Fatalf("iter %d: %s feasibility=%v, bruteforce=%v (inst=%+v)",
					iter, s.Name(), got.OK, ref.OK, inst)
			}
			if !ref.OK {
				continue
			}
			if math.Abs(got.Cost-ref.Cost) > 1e-4 {
				t.Fatalf("iter %d: %s cost=%.4f, bruteforce=%.4f", iter, s.Name(), got.Cost, ref.Cost)
			}
			cost, err := ValidateOrder(inst, w.oracle, got.Order)
			if err != nil {
				t.Fatalf("iter %d: %s order invalid: %v", iter, s.Name(), err)
			}
			if math.Abs(cost-got.Cost) > 1e-4 {
				t.Fatalf("iter %d: %s reported cost %.4f but order walks to %.4f", iter, s.Name(), got.Cost, cost)
			}
		}
	}
	if feasibleSeen < 20 || infeasibleSeen < 5 {
		t.Fatalf("unbalanced test mix: %d feasible, %d infeasible — tune generator", feasibleSeen, infeasibleSeen)
	}
}

// TestHotspotBound verifies the hotspot approximation never reports a cost
// below the optimum and respects the paper's additive 2(m+1)θ bound on
// instances where every pending stop lies inside one hotspot.
func TestHotspotBound(t *testing.T) {
	w := newTestWorld(t, 3)
	rng := rand.New(rand.NewSource(4))
	const theta = 3000.0
	exact := NewBruteForce(w.oracle)
	hs := NewTreeScheduler(w.oracle, TreeOptions{Slack: true, HotspotTheta: theta})
	checked := 0
	for iter := 0; iter < 150; iter++ {
		inst := w.randomInstance(rng, 1+rng.Intn(3), 0)
		// Loosen constraints so hotspot ordering freedom is the only
		// difference (the bound holds "when constraints of all points
		// in Sbest is larger than mθ", Theorem 3).
		for i := range inst.Trips {
			inst.Trips[i].MaxRide += 10 * theta
			if inst.Trips[i].OnBoard {
				inst.Trips[i].DropDeadline += 10 * theta
			} else {
				inst.Trips[i].WaitDeadline += 10 * theta
			}
		}
		ref := exact.Schedule(inst)
		got := hs.Schedule(inst)
		if !ref.OK {
			continue
		}
		if !got.OK {
			t.Fatalf("iter %d: hotspot infeasible where optimum exists", iter)
		}
		m := float64(len(inst.PendingStops()))
		bound := ref.Cost + 2*(m+1)*theta
		if got.Cost > bound+1e-4 {
			t.Fatalf("iter %d: hotspot cost %.1f exceeds bound %.1f (opt %.1f, m=%v)",
				iter, got.Cost, bound, ref.Cost, m)
		}
		if got.Cost < ref.Cost-1e-4 {
			t.Fatalf("iter %d: hotspot cost %.1f below optimum %.1f", iter, got.Cost, ref.Cost)
		}
		if _, err := ValidateOrder(inst, w.oracle, got.Order); err != nil {
			t.Fatalf("iter %d: hotspot order invalid: %v", iter, err)
		}
		checked++
	}
	if checked < 30 {
		t.Fatalf("only %d feasible hotspot cases checked", checked)
	}
}

// TestCapacityEnforced checks that no scheduler returns an order exceeding
// the vehicle capacity at any point.
func TestCapacityEnforced(t *testing.T) {
	w := newTestWorld(t, 5)
	rng := rand.New(rand.NewSource(6))
	schedulers := []Scheduler{
		NewBruteForce(w.oracle),
		NewBranchBound(w.oracle),
		NewMIPScheduler(w.oracle, 200000),
		NewTreeScheduler(w.oracle, TreeOptions{Slack: true}),
	}
	for iter := 0; iter < 60; iter++ {
		inst := w.randomInstance(rng, 3, 1) // capacity 1 with 3 trips
		for _, s := range schedulers {
			got := s.Schedule(inst)
			if !got.OK {
				continue
			}
			onboard := 0
			for i := range inst.Trips {
				if inst.Trips[i].OnBoard {
					onboard++
				}
			}
			for _, stop := range got.Order {
				if stop.Kind == Pickup {
					onboard++
				} else {
					onboard--
				}
				if onboard > inst.Capacity {
					t.Fatalf("iter %d: %s schedule exceeds capacity: %v", iter, s.Name(), got.Order)
				}
			}
		}
	}
}

// TestEmptyInstance checks the degenerate no-pending-stops case.
func TestEmptyInstance(t *testing.T) {
	w := newTestWorld(t, 7)
	inst := &Instance{Origin: 0, Odo: 0}
	for _, s := range []Scheduler{
		NewBruteForce(w.oracle),
		NewBranchBound(w.oracle),
		NewMIPScheduler(w.oracle, 0),
		NewTreeScheduler(w.oracle, TreeOptions{}),
	} {
		got := s.Schedule(inst)
		if !got.OK || got.Cost != 0 || len(got.Order) != 0 {
			t.Errorf("%s on empty instance: %+v", s.Name(), got)
		}
	}
}
