package core

import (
	"container/heap"
	"math"

	"repro/internal/sp"
)

// BranchBound is the best-first branch-and-bound scheduler of paper §III:
// it "systematically enumerates all candidate schedules", maintaining for
// each partial schedule the lower bound
//
//	dT(r, x_k) + Σ (minimum-cost edge incident to each unscheduled node)
//
// and "first expands the partial candidate with the lowest lower bound".
// Partial schedules whose bound exceeds the best complete schedule found so
// far are pruned.
type BranchBound struct {
	oracle sp.Oracle
}

// NewBranchBound returns a branch-and-bound scheduler using the given oracle.
func NewBranchBound(oracle sp.Oracle) *BranchBound { return &BranchBound{oracle: oracle} }

// Name implements Scheduler.
func (b *BranchBound) Name() string { return "branchbound" }

// bbNode is a partial schedule in the search tree.
type bbNode struct {
	seq   []int   // stop indices in visit order
	used  uint64  // bitmask of seq
	at    float64 // absolute odometer after the last stop
	bound float64 // at + Σ minIncident of remaining stops
	last  int     // graph point index (0 = origin)
}

type bbQueue []*bbNode

func (q bbQueue) Len() int           { return len(q) }
func (q bbQueue) Less(i, j int) bool { return q[i].bound < q[j].bound }
func (q bbQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *bbQueue) Push(x any)        { *q = append(*q, x.(*bbNode)) }
func (q *bbQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// Schedule implements Scheduler.
func (b *BranchBound) Schedule(inst *Instance) Result {
	g, ok := newStopGraph(inst, b.oracle)
	if !ok || len(g.stops) > MaxStops {
		return Result{}
	}
	ns := len(g.stops)
	if ns == 0 {
		return Result{OK: true, Exact: true}
	}
	w := newWalker(inst, b.oracle)

	remainingBound := func(used uint64) float64 {
		sum := 0.0
		for i := 0; i < ns; i++ {
			if used&(1<<uint(i)) == 0 {
				sum += g.minIncident[i+1]
			}
		}
		return sum
	}

	best := math.Inf(1)
	var bestSeq []int

	q := &bbQueue{}
	heap.Init(q)
	heap.Push(q, &bbNode{at: inst.Odo, bound: inst.Odo + remainingBound(0), last: 0})

	for q.Len() > 0 {
		node := heap.Pop(q).(*bbNode)
		if node.bound >= best {
			break // best-first: nothing cheaper remains
		}
		if len(node.seq) == ns {
			if node.at < best {
				best = node.at
				bestSeq = node.seq
			}
			continue
		}
		// Rebuild the branch state for this partial schedule.
		w.resetBranch()
		at := inst.Odo
		last := 0
		for _, si := range node.seq {
			at += g.dist[last][si+1]
			w.noteVisit(g.stops[si], at)
			last = si + 1
		}
		for si := 0; si < ns; si++ {
			if node.used&(1<<uint(si)) != 0 {
				continue
			}
			stop := g.stops[si]
			if stop.Kind == Dropoff && !inst.Trips[stop.Trip].OnBoard && w.pickAt[stop.Trip] < 0 {
				continue
			}
			nat := node.at + g.dist[node.last][si+1]
			if !w.feasibleAt(stop, nat) {
				continue
			}
			used := node.used | (1 << uint(si))
			bound := nat + remainingBound(used)
			if bound >= best {
				continue
			}
			seq := make([]int, len(node.seq)+1)
			copy(seq, node.seq)
			seq[len(node.seq)] = si
			heap.Push(q, &bbNode{seq: seq, used: used, at: nat, bound: bound, last: si + 1})
		}
	}
	if math.IsInf(best, 1) {
		return Result{}
	}
	order := make([]Stop, len(bestSeq))
	for i, si := range bestSeq {
		order[i] = g.stops[si]
	}
	return Result{OK: true, Cost: best - inst.Odo, Order: order, Exact: true}
}
