package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/roadnet"
)

// TestTreeLifecycle drives a kinetic tree through a long random sequence of
// trial insertions, commits, advances, and location updates, validating the
// complete tree after every mutation. This is the stateful API the simulator
// uses, exercised the way the paper describes: requests interleaved with
// server movement.
func TestTreeLifecycle(t *testing.T) {
	for _, variant := range []struct {
		name string
		opts TreeOptions
	}{
		{"basic", TreeOptions{Capacity: 4}},
		{"slack", TreeOptions{Slack: true, Capacity: 4}},
		{"hotspot", TreeOptions{Slack: true, HotspotTheta: 800, Capacity: 4}},
		{"unlimited", TreeOptions{Slack: true}},
		{"lazy", TreeOptions{Slack: true, Capacity: 4, LazyInvalidation: true}},
		{"lazy-basic", TreeOptions{Capacity: 4, LazyInvalidation: true}},
	} {
		t.Run(variant.name, func(t *testing.T) {
			w := newTestWorld(t, 11)
			rng := rand.New(rand.NewSource(12))
			n := int32(w.g.N())
			tree := NewTree(w.oracle, roadnet.VertexID(rng.Int31n(n)), 0, variant.opts)

			const wait = 4000.0
			const eps = 0.4
			accepted, rejected, advances := 0, 0, 0
			for step := 0; step < 400; step++ {
				switch op := rng.Intn(10); {
				case op < 5: // new request
					var s, e roadnet.VertexID
					for {
						s = roadnet.VertexID(rng.Int31n(n))
						e = roadnet.VertexID(rng.Int31n(n))
						if s != e {
							break
						}
					}
					ts, err := NewTripState(int64(step), s, e, wait, eps, tree.Odo(), w.oracle)
					if err != nil {
						t.Fatalf("step %d: trip state: %v", step, err)
					}
					cand, ok, err := tree.TrialInsert(ts)
					if err != nil {
						t.Fatalf("step %d: trial: %v", step, err)
					}
					if !ok {
						rejected++
						// Trial must leave the tree untouched.
						if err := tree.Validate(); err != nil {
							t.Fatalf("step %d: tree invalid after failed trial: %v", step, err)
						}
						continue
					}
					if cand.Cost < 0 {
						t.Fatalf("step %d: negative candidate cost %f", step, cand.Cost)
					}
					tree.Commit(cand)
					accepted++
				case op < 8: // advance to the next stop
					if tree.Empty() {
						continue
					}
					prevOdo := tree.Odo()
					served, err := tree.Advance()
					if err != nil {
						t.Fatalf("step %d: advance: %v", step, err)
					}
					if len(served) == 0 {
						t.Fatalf("step %d: advance served nothing", step)
					}
					if tree.Odo() < prevOdo {
						t.Fatalf("step %d: odometer went backwards", step)
					}
					advances++
				default: // move one hop toward the next scheduled stop
					if tree.Empty() {
						continue
					}
					target := tree.NextStops()[0].Vertex
					path := w.oracle.Path(tree.Loc(), target)
					if len(path) < 2 {
						continue
					}
					hop := w.oracle.Dist(path[0], path[1])
					tree.SetLocation(path[1], tree.Odo()+hop)
				}
				if err := tree.Validate(); err != nil {
					t.Fatalf("step %d (%s): tree invalid: %v", step, variant.name, err)
				}
				if c := tree.OnBoard(); variant.opts.Capacity > 0 && c > variant.opts.Capacity {
					t.Fatalf("step %d: %d passengers onboard exceeds capacity", step, c)
				}
			}
			if accepted < 20 {
				t.Fatalf("only %d requests accepted; test exercised too little", accepted)
			}
			if advances < 20 {
				t.Fatalf("only %d advances; test exercised too little", advances)
			}
			t.Logf("accepted=%d rejected=%d advances=%d", accepted, rejected, advances)
		})
	}
}

// TestTreeBestMatchesValidate cross-checks that the cost reported by Best
// equals the walked cost of its order, via an Instance reconstruction.
func TestTreeBestMatchesValidate(t *testing.T) {
	w := newTestWorld(t, 21)
	rng := rand.New(rand.NewSource(22))
	n := int32(w.g.N())
	tree := NewTree(w.oracle, roadnet.VertexID(5), 0, TreeOptions{Slack: true, Capacity: 6})
	var trips []TripState
	for i := 0; i < 4; i++ {
		s := roadnet.VertexID(rng.Int31n(n))
		e := roadnet.VertexID(rng.Int31n(n))
		if s == e {
			continue
		}
		ts, err := NewTripState(int64(i), s, e, 6000, 0.5, tree.Odo(), w.oracle)
		if err != nil {
			t.Fatal(err)
		}
		cand, ok, err := tree.TrialInsert(ts)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		tree.Commit(cand)
		trips = append(trips, ts)
	}
	if tree.Empty() {
		t.Skip("no trips accepted under this seed")
	}
	cost, order, ok := tree.Best()
	if !ok {
		t.Fatal("Best on non-empty tree returned !ok")
	}
	inst := &Instance{Origin: tree.Loc(), Odo: tree.Odo(), Trips: trips, Capacity: 6}
	walked, err := ValidateOrder(inst, w.oracle, order)
	if err != nil {
		t.Fatalf("best order invalid: %v", err)
	}
	if math.Abs(walked-cost) > 1e-6 {
		t.Fatalf("Best cost %.4f != walked %.4f", cost, walked)
	}
}

// TestTreeRejectsImpossibleRequest checks that a request whose pickup is
// beyond the waiting budget is rejected.
func TestTreeRejectsImpossibleRequest(t *testing.T) {
	w := newTestWorld(t, 31)
	tree := NewTree(w.oracle, 0, 0, TreeOptions{})
	// Find the farthest vertex from 0 and give a tiny waiting budget.
	far := roadnet.VertexID(1)
	for v := int32(2); v < int32(w.g.N()); v++ {
		if w.oracle.Dist(0, v) > w.oracle.Dist(0, far) {
			far = v
		}
	}
	ts, err := NewTripState(1, far, 0, 10 /* meters of wait */, 0.2, 0, w.oracle)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := tree.TrialInsert(ts); ok {
		t.Fatal("accepted a request whose pickup is out of waiting range")
	}
}
