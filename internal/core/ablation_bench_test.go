package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/roadnet"
)

// Ablation benchmarks for the design choices DESIGN.md §3 calls out:
// slack-time filtering, hotspot clustering, and eager vs. lazy invalidation.

// buildLoadedTree returns a tree carrying k accepted trips.
func buildLoadedTree(b *testing.B, w *testWorld, rng *rand.Rand, k int, opts TreeOptions) (*Tree, bool) {
	b.Helper()
	n := int32(w.g.N())
	tree := NewTree(w.oracle, roadnet.VertexID(rng.Int31n(n)), 0, opts)
	for tries := 0; tree.ActiveTrips() < k && tries < 300; tries++ {
		s := roadnet.VertexID(rng.Int31n(n))
		e := roadnet.VertexID(rng.Int31n(n))
		if s == e {
			continue
		}
		ts, err := NewTripState(int64(tries), s, e, 8400, 0.3, tree.Odo(), w.oracle)
		if err != nil {
			continue
		}
		cand, ok, err := tree.TrialInsert(ts)
		if err != nil || !ok {
			continue
		}
		tree.Commit(cand)
	}
	return tree, tree.ActiveTrips() == k
}

// BenchmarkAblationInsert compares trial-insertion cost across variants on
// identically loaded trees.
func BenchmarkAblationInsert(b *testing.B) {
	w := newTestWorld(b, 71)
	for _, variant := range []struct {
		name string
		opts TreeOptions
	}{
		{"basic", TreeOptions{Capacity: 6}},
		{"slack", TreeOptions{Slack: true, Capacity: 6}},
		{"hotspot", TreeOptions{Slack: true, HotspotTheta: 400, Capacity: 6}},
	} {
		for _, k := range []int{2, 4, 6} {
			b.Run(fmt.Sprintf("%s/trips=%d", variant.name, k), func(b *testing.B) {
				rng := rand.New(rand.NewSource(72))
				tree, ok := buildLoadedTree(b, w, rng, k, variant.opts)
				if !ok {
					b.Skipf("could not load %d trips", k)
				}
				n := int32(w.g.N())
				trials := make([]TripState, 16)
				for i := range trials {
					for {
						s := roadnet.VertexID(rng.Int31n(n))
						e := roadnet.VertexID(rng.Int31n(n))
						if s == e {
							continue
						}
						ts, err := NewTripState(int64(1000+i), s, e, 8400, 0.3, tree.Odo(), w.oracle)
						if err != nil {
							continue
						}
						trials[i] = ts
						break
					}
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_, _, err := tree.TrialInsert(trials[i%len(trials)])
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationMovement compares eager and lazy invalidation on the cost
// of per-hop location updates while carrying passengers.
func BenchmarkAblationMovement(b *testing.B) {
	w := newTestWorld(b, 73)
	for _, variant := range []struct {
		name string
		opts TreeOptions
	}{
		{"eager", TreeOptions{Slack: true, Capacity: 6}},
		{"lazy", TreeOptions{Slack: true, Capacity: 6, LazyInvalidation: true}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(74))
			tree, ok := buildLoadedTree(b, w, rng, 4, variant.opts)
			if !ok {
				b.Skip("could not load tree")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Drive one hop toward the next scheduled stop, serving
				// stops and rebuilding the tree (untimed) as trips finish.
				stops := tree.NextStops()
				if len(stops) == 0 {
					b.StopTimer()
					var ok bool
					tree, ok = buildLoadedTree(b, w, rng, 4, variant.opts)
					if !ok {
						b.Skip("could not rebuild tree")
					}
					b.StartTimer()
					continue
				}
				path := w.oracle.Path(tree.Loc(), stops[0].Vertex)
				if len(path) < 2 {
					b.StopTimer()
					if _, err := tree.Advance(); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					continue
				}
				hop := w.oracle.Dist(path[0], path[1])
				tree.SetLocation(path[1], tree.Odo()+hop)
			}
		})
	}
}

// BenchmarkAblationCommit measures the cost of adopting a candidate
// (including the slack-aggregate refresh pass).
func BenchmarkAblationCommit(b *testing.B) {
	w := newTestWorld(b, 75)
	rng := rand.New(rand.NewSource(76))
	tree, ok := buildLoadedTree(b, w, rng, 4, TreeOptions{Slack: true, Capacity: 6})
	if !ok {
		b.Skip("could not load tree")
	}
	n := int32(w.g.N())
	var trial TripState
	for {
		s := roadnet.VertexID(rng.Int31n(n))
		e := roadnet.VertexID(rng.Int31n(n))
		if s == e {
			continue
		}
		ts, err := NewTripState(999, s, e, 8400, 0.3, tree.Odo(), w.oracle)
		if err != nil {
			continue
		}
		if _, ok, _ := tree.TrialInsert(ts); ok {
			trial = ts
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Fresh trial each iteration (Commit consumes the candidate).
		clone, ok := buildLoadedTree(b, w, rand.New(rand.NewSource(76)), 4, TreeOptions{Slack: true, Capacity: 6})
		if !ok {
			b.Skip("could not rebuild tree")
		}
		cand, ok, err := clone.TrialInsert(trial)
		if err != nil || !ok {
			b.Skip("trial became infeasible")
		}
		b.StartTimer()
		clone.Commit(cand)
	}
}
