package core

import (
	"sync"
	"sync/atomic"
)

// Node pooling. A TrialInsert builds an entirely fresh candidate forest —
// the paper's "generating a new prefix tree based on the existing one"
// (§IV-B) — and the overwhelming majority of those forests are discarded:
// every losing candidate vehicle's tree, every placement that dies a
// feasibility check, and on Commit the whole previous committed tree. At
// city scale that churn dominates the allocation profile of the match hot
// path, so discarded nodes are recycled through a sync.Pool instead of
// being left to the garbage collector.
//
// Ownership rules (what keeps recycling sound):
//
//   - Candidate forests are node-disjoint from the tree they were built
//     from and from every other candidate: the inserter always creates
//     fresh nodes. Only the stops/intra *backing arrays* are shared
//     between a source node and its copies.
//   - Therefore a freed node's slice headers are nil'd and never written
//     through — the arrays may still be referenced by live nodes — and a
//     recycled node is handed out fully zeroed, indistinguishable from
//     `new(treeNode)`. Pooling on and off produce bit-identical trees.
//   - A node is released exactly once, by its owner: the inserter frees
//     placements it built and then rejected, Commit frees the replaced
//     committed forest, Advance frees the served node and its pruned
//     siblings, the eager/lazy revalidators free dead branches, and
//     engines free losing candidates via Candidate.Release. Commit marks
//     the adopted candidate consumed (children = nil), so a blanket
//     Release sweep after a commit never frees live nodes.
//   - A released candidate must never be committed afterwards: its nodes
//     may already be rewritten by a later trial, and the Commit staleness
//     check cannot detect that. Engines release a trial only once it has
//     definitively lost.

// nodePoolOff disables recycling when set (SetNodePooling(false)): newNode
// falls back to plain allocation and the free functions become no-ops.
// Exists so equivalence tests can prove pooled and unpooled runs produce
// bit-identical assignments.
var nodePoolOff atomic.Bool

// SetNodePooling toggles treeNode recycling (on by default). Safe to call
// concurrently, but toggling while trials are in flight may strand nodes
// in the pool or leak them to the GC — both harmless.
func SetNodePooling(on bool) { nodePoolOff.Store(!on) }

// NodePooling reports whether treeNode recycling is enabled.
func NodePooling() bool { return !nodePoolOff.Load() }

var nodePool = sync.Pool{New: func() any { return new(treeNode) }}

// newNode returns a zeroed node, recycled when pooling is on.
func newNode() *treeNode {
	if nodePoolOff.Load() {
		return new(treeNode)
	}
	return nodePool.Get().(*treeNode)
}

// freeNode scrubs n and returns it to the pool. The caller must own n and
// must have detached any live children first: the children header is
// dropped, not freed. Scrubbing nils the stops/intra headers without
// touching the backing arrays, which may outlive n through copies.
func freeNode(n *treeNode) {
	if nodePoolOff.Load() {
		return
	}
	*n = treeNode{}
	nodePool.Put(n)
}

// freeTree releases the whole subtree rooted at n, children first. Nil
// entries (a plainCopy aborted over budget) are skipped.
func freeTree(n *treeNode) {
	if n == nil || nodePoolOff.Load() {
		return
	}
	for _, c := range n.children {
		freeTree(c)
	}
	*n = treeNode{}
	nodePool.Put(n)
}

// freeForest releases every subtree of a dropped forest.
func freeForest(children []*treeNode) {
	if nodePoolOff.Load() {
		return
	}
	for _, c := range children {
		freeTree(c)
	}
}
