package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/mip"
	"repro/internal/sp"
)

// MIPScheduler formulates each instance as the mixed-integer program of
// paper §III-A and solves it with the internal simplex + branch-and-bound
// solver. Node 0 is the server's current position; D' holds dropoffs of
// onboard passengers, P pickups of waiting trips, D their dropoffs (pickup
// i in P matches dropoff i+n in D). Binary y_ij selects arc (i, j); B_i is
// the travel distance at which node i is reached. Constraint (5) is
// linearized with big-M coefficients à la Miller–Tucker–Zemlin, with
// M_ij = max{0, l_i + d_ij − e_j} from the per-node time windows.
//
// The paper's constraint set fixes incoming degrees only; as written it
// admits branching trees, so we add the (presumably intended) outgoing
// degree constraints Σ_j y_ij ≤ 1 and forbid arcs into node 0, which
// together force a Hamiltonian path from node 0. This is noted in DESIGN.md.
type MIPScheduler struct {
	oracle     sp.Oracle
	maxNodes   int
	timeBudget time.Duration
}

// NewMIPScheduler returns a MIP scheduler. maxNodes caps the branch & bound
// search per instance (0 = solver default).
func NewMIPScheduler(oracle sp.Oracle, maxNodes int) *MIPScheduler {
	return &MIPScheduler{oracle: oracle, maxNodes: maxNodes}
}

// SetTimeBudget bounds the wall-clock time of each Schedule call; when the
// budget is exhausted the best incumbent found so far is returned (Exact is
// false). Zero disables the bound.
func (m *MIPScheduler) SetTimeBudget(d time.Duration) { m.timeBudget = d }

// greedyWarmStart finds some valid schedule quickly with deadline-ordered,
// nearest-first DFS: it primes the branch & bound incumbent the way
// commercial solvers seed theirs with construction heuristics, which is
// what makes the bound prune effectively on loosely constrained instances.
func greedyWarmStart(inst *Instance, g *stopGraph, oracle sp.Oracle) (float64, []int, bool) {
	ns := len(g.stops)
	w := newWalker(inst, oracle)
	used := make([]bool, ns)
	seq := make([]int, 0, ns)
	order := make([]int, ns) // scratch for sorting candidates per level
	var rec func(last int, at float64) bool
	rec = func(last int, at float64) bool {
		if len(seq) == ns {
			return true
		}
		// Candidates sorted by distance from the current point.
		cands := order[:0]
		for si := 0; si < ns; si++ {
			if !used[si] {
				cands = append(cands, si)
			}
		}
		sort.Slice(cands, func(a, b int) bool {
			return g.dist[last][cands[a]+1] < g.dist[last][cands[b]+1]
		})
		for _, si := range cands {
			stop := g.stops[si]
			if stop.Kind == Dropoff && !inst.Trips[stop.Trip].OnBoard && w.pickAt[stop.Trip] < 0 {
				continue
			}
			nat := at + g.dist[last][si+1]
			if !w.feasibleAt(stop, nat) {
				continue
			}
			used[si] = true
			seq = append(seq, si)
			w.noteVisit(stop, nat)
			if rec(si+1, nat) {
				return true
			}
			w.unnoteVisit(stop)
			seq = seq[:len(seq)-1]
			used[si] = false
		}
		return false
	}
	if !rec(0, inst.Odo) {
		return 0, nil, false
	}
	cost := 0.0
	last := 0
	for _, si := range seq {
		cost += g.dist[last][si+1]
		last = si + 1
	}
	return cost, append([]int(nil), seq...), true
}

// Name implements Scheduler.
func (m *MIPScheduler) Name() string { return "mip" }

// Schedule implements Scheduler.
func (m *MIPScheduler) Schedule(inst *Instance) Result {
	g, ok := newStopGraph(inst, m.oracle)
	if !ok || len(g.stops) > MaxStops {
		return Result{}
	}
	ns := len(g.stops)
	if ns == 0 {
		return Result{OK: true, Exact: true}
	}

	// Node layout: 0 = origin, then the stops in stopGraph order (their
	// graph index is already si+1). Classify each node.
	n := ns + 1
	// window[i] = [e_i, l_i]: earliest/latest reach distances (relative to
	// now) used for big-M; deadline[i] is the hard latest-visit bound used
	// in constraints (7)/(8), +Inf if none.
	earliest := make([]float64, n)
	latest := make([]float64, n)
	deadline := make([]float64, n)
	rideCapIdx := make([]int, n) // for D nodes: graph index of matching pickup, else -1
	for i := range rideCapIdx {
		rideCapIdx[i] = -1
	}
	const inf = math.MaxFloat64 / 4
	now := inst.Odo
	for si, s := range g.stops {
		i := si + 1
		t := &inst.Trips[s.Trip]
		earliest[i] = g.dist[0][i]
		switch {
		case s.Kind == Pickup:
			// Constraint (7): B_i <= remaining waiting budget.
			deadline[i] = t.WaitDeadline - now
			latest[i] = deadline[i]
		case t.OnBoard:
			// Constraint (8): B_i <= remaining ride budget.
			deadline[i] = t.DropDeadline - now
			latest[i] = deadline[i]
		default:
			// D node: constraint (9) bounds the ride length relative
			// to the matching pickup.
			pi := g.pickupIndex(si)
			if pi < 0 {
				return Result{} // malformed instance
			}
			rideCapIdx[i] = pi + 1
			earliest[i] = g.dist[0][pi+1] + g.dist[pi+1][i]
			latest[i] = (inst.Trips[s.Trip].WaitDeadline - now) + t.MaxRide
			deadline[i] = inf
		}
		if latest[i] < 0 {
			return Result{} // already past a deadline
		}
	}

	model := &mip.Model{}
	// y[i][j] variables; j != i, j != 0 (no arcs into the origin). Arcs
	// that can never be taken are eliminated up front, which shrinks both
	// the binary count and the MTZ row count considerably on constrained
	// instances:
	//   - time windows: earliest[i] + d_ij > latest[j] means j's deadline
	//     cannot be met after visiting i;
	//   - precedence: the arc from a trip's dropoff to its own pickup.
	y := make([][]int, n)
	for i := 0; i < n; i++ {
		y[i] = make([]int, n)
		for j := 0; j < n; j++ {
			y[i][j] = -1
			if i == j || j == 0 {
				continue
			}
			if i > 0 && earliest[i]+g.dist[i][j] > latest[j]+slackEps {
				continue
			}
			if i == 0 && g.dist[0][j] > latest[j]+slackEps {
				continue
			}
			if pi := rideCapIdx[i]; pi >= 0 && pi == j {
				continue // dropoff_i -> pickup_i violates precedence
			}
			y[i][j] = model.AddVar(g.dist[i][j], mip.Binary, fmt.Sprintf("y_%d_%d", i, j))
		}
	}
	// A node with no incoming or no outgoing candidate arcs makes the
	// instance infeasible (constraint (2) cannot be satisfied).
	for j := 1; j < n; j++ {
		hasIn := false
		for i := 0; i < n; i++ {
			if y[i][j] >= 0 {
				hasIn = true
				break
			}
		}
		if !hasIn {
			return Result{}
		}
	}
	// B[i] continuous, B_0 = 0 fixed by omission (node 0 has no B var;
	// arcs from 0 use B_j >= d_0j directly).
	bvar := make([]int, n)
	bvar[0] = -1
	for i := 1; i < n; i++ {
		bvar[i] = model.AddVar(0, mip.Continuous, fmt.Sprintf("B_%d", i))
	}

	addc := func(idx []int, val []float64, s mip.Sense, rhs float64) {
		if err := model.AddConstraint(idx, val, s, rhs); err != nil {
			panic("core: building MIP: " + err.Error())
		}
	}

	// (2) exactly one incoming arc per non-origin node.
	for i := 1; i < n; i++ {
		var idx []int
		var val []float64
		for j := 0; j < n; j++ {
			if y[j][i] >= 0 {
				idx = append(idx, y[j][i])
				val = append(val, 1)
			}
		}
		addc(idx, val, mip.EQ, 1)
	}
	// (3) exactly one arc out of the origin.
	{
		var idx []int
		var val []float64
		for j := 1; j < n; j++ {
			if y[0][j] >= 0 {
				idx = append(idx, y[0][j])
				val = append(val, 1)
			}
		}
		if len(idx) == 0 {
			return Result{} // nothing reachable from the origin in time
		}
		addc(idx, val, mip.EQ, 1)
	}
	// Outgoing degree <= 1 for non-origin nodes (see doc comment).
	for i := 1; i < n; i++ {
		var idx []int
		var val []float64
		for j := 1; j < n; j++ {
			if y[i][j] >= 0 {
				idx = append(idx, y[i][j])
				val = append(val, 1)
			}
		}
		addc(idx, val, mip.LE, 1)
	}
	// (4)+(5) linearized: B_j >= B_i + d_ij - M_ij (1 - y_ij).
	for i := 0; i < n; i++ {
		for j := 1; j < n; j++ {
			if y[i][j] < 0 {
				continue
			}
			li := latest[i] // l_0 = 0
			if i == 0 {
				li = 0
			}
			M := li + g.dist[i][j] - earliest[j]
			if M < 0 {
				M = 0
			}
			// B_j - B_i + M y_ij <= M - d_ij + M  ... rearrange:
			// B_j >= B_i + d_ij - M + M*y_ij
			// =>  -B_j + B_i + M*y_ij <= M - d_ij
			if i == 0 {
				addc([]int{bvar[j], y[i][j]}, []float64{-1, M}, mip.LE, M-g.dist[i][j])
			} else {
				addc([]int{bvar[j], bvar[i], y[i][j]}, []float64{-1, 1, M}, mip.LE, M-g.dist[i][j])
			}
		}
	}
	// (7)/(8) hard deadlines; also valid bound B_i >= d_0i tightens the LP.
	for i := 1; i < n; i++ {
		if deadline[i] < inf {
			addc([]int{bvar[i]}, []float64{1}, mip.LE, deadline[i])
		}
		addc([]int{bvar[i]}, []float64{1}, mip.GE, g.dist[0][i])
	}
	// Position-based MTZ subtour elimination for zero-length arcs only.
	// The distance-based constraint (5) already excludes any cycle of
	// positive total length (summing B_j >= B_i + d_ij around the cycle
	// gives 0 >= length), so the only escapes are cycles whose arcs all
	// have d_ij = 0 — distinct stops at the same vertex. Order variables
	// u with u_j >= u_i + 1 - ns(1 - y_ij) on those arcs close the gap
	// without the O(n²) row blow-up of a full MTZ layer.
	var uvar []int
	needU := func(i int) int {
		if uvar == nil {
			uvar = make([]int, n)
			for k := range uvar {
				uvar[k] = -1
			}
		}
		if uvar[i] < 0 {
			uvar[i] = model.AddVar(0, mip.Continuous, fmt.Sprintf("u_%d", i))
			addc([]int{uvar[i]}, []float64{1}, mip.LE, float64(ns))
		}
		return uvar[i]
	}
	for i := 1; i < n; i++ {
		for j := 1; j < n; j++ {
			if y[i][j] < 0 || g.dist[i][j] > slackEps {
				continue
			}
			ui, uj := needU(i), needU(j)
			// u_j >= u_i + 1 - ns(1-y_ij)
			// => -u_j + u_i + ns*y_ij <= ns - 1
			addc([]int{uj, ui, y[i][j]}, []float64{-1, 1, float64(ns)}, mip.LE, float64(ns)-1)
		}
	}

	// (6)+(9) ride-length window for waiting dropoffs:
	// d(pickup, dropoff) <= B_drop - B_pick <= MaxRide.
	for i := 1; i < n; i++ {
		pi := rideCapIdx[i]
		if pi < 0 {
			continue
		}
		trip := g.stops[i-1].Trip
		addc([]int{bvar[i], bvar[pi]}, []float64{1, -1}, mip.LE, inst.Trips[trip].MaxRide)
		addc([]int{bvar[i], bvar[pi]}, []float64{1, -1}, mip.GE, g.dist[pi][i])
	}

	// Vehicle-capacity constraints (Table I "Capacity"): load variables
	// Q_i propagate along selected arcs, Q_i <= Capacity at pickups. The
	// paper's formulation omits these (its instances are pre-filtered by
	// capacity); we enforce them so all schedulers solve the same problem.
	if inst.Capacity > 0 {
		onboard0 := 0
		for i := range inst.Trips {
			if inst.Trips[i].OnBoard {
				onboard0++
			}
		}
		load := func(i int) float64 {
			if g.stops[i-1].Kind == Pickup {
				return 1
			}
			return -1
		}
		qvar := make([]int, n)
		qvar[0] = -1
		for i := 1; i < n; i++ {
			qvar[i] = model.AddVar(0, mip.Continuous, fmt.Sprintf("Q_%d", i))
			// 0 <= Q_i <= Capacity; pickups additionally need
			// Q_i >= 1, dropoffs Q_i <= Capacity-1... the simple
			// bounds suffice together with the propagation.
			addc([]int{qvar[i]}, []float64{1}, mip.LE, float64(inst.Capacity))
		}
		M := float64(inst.Capacity + 1)
		for i := 0; i < n; i++ {
			for j := 1; j < n; j++ {
				if y[i][j] < 0 {
					continue
				}
				if i == 0 {
					base := float64(onboard0) + load(j)
					// Q_j >= base - M(1-y) and <= base + M(1-y)
					addc([]int{qvar[j], y[i][j]}, []float64{-1, M}, mip.LE, M-base)
					addc([]int{qvar[j], y[i][j]}, []float64{1, M}, mip.LE, M+base)
				} else {
					addc([]int{qvar[j], qvar[i], y[i][j]}, []float64{-1, 1, M}, mip.LE, M-load(j))
					addc([]int{qvar[j], qvar[i], y[i][j]}, []float64{1, -1, M}, mip.LE, M+load(j))
				}
			}
		}
	}

	// Warm start: a greedy feasible schedule primes the incumbent so the
	// bound prunes, and guarantees a valid answer even if the search is
	// truncated by the node or time budget.
	warmCost, warmSeq, warmOK := greedyWarmStart(inst, g, m.oracle)
	opts := mip.SolveOptions{MaxNodes: m.maxNodes}
	if warmOK {
		opts.InitialBound = warmCost + 1e-6
	}
	if m.timeBudget > 0 {
		opts.Deadline = time.Now().Add(m.timeBudget) //vetkit:allow determinism operator time budget: the MIP deadline is an explicit wall-clock knob, zero (off) in equivalence runs
	}
	sol, err := model.Solve(opts)
	if err != nil || !sol.Found {
		if warmOK {
			// The solver found nothing better than the warm-started
			// incumbent. If the search completed (status Infeasible
			// means "no solution below the initial bound"), the greedy
			// schedule is proven optimal; on truncation it is just the
			// best known.
			order := make([]Stop, len(warmSeq))
			for i, si := range warmSeq {
				order[i] = g.stops[si]
			}
			proven := err == nil && sol != nil && sol.Status == mip.Infeasible
			return Result{OK: true, Cost: warmCost, Order: order, Exact: proven}
		}
		return Result{}
	}

	// Extract the path by following selected arcs from node 0.
	order := make([]Stop, 0, ns)
	visited := make([]bool, n)
	at := 0
	for len(order) < ns {
		next := -1
		for j := 1; j < n; j++ {
			if y[at][j] >= 0 && sol.X[y[at][j]] > 0.5 && !visited[j] {
				next = j
				break
			}
		}
		if next < 0 {
			return Result{} // disconnected selection: should not happen
		}
		visited[next] = true
		order = append(order, g.stops[next-1])
		at = next
	}
	// Recompute the cost from the order (the solver objective equals it,
	// but the walk revalidates the schedule end to end).
	cost, verr := ValidateOrder(inst, m.oracle, order)
	if verr != nil {
		return Result{}
	}
	return Result{OK: true, Cost: cost, Order: order, Exact: sol.Status == mip.Optimal}
}
