package core

import (
	"testing"
)

// TestNodePoolScrub proves a recycled treeNode carries no stale state: a
// freed node's slice headers and slack aggregates are zeroed before it
// reenters the pool, so a reuse can never alias a previous trial's stops
// or inherit its pruning bounds.
func TestNodePoolScrub(t *testing.T) {
	if !NodePooling() {
		t.Skip("node pooling disabled")
	}
	n := newNode()
	n.stops = []Stop{{Trip: 3, Kind: Pickup}, {Trip: 4, Kind: Dropoff}}
	n.intra = []float64{123.5}
	n.intraSum = 123.5
	n.leg = 42
	n.dmax = 7
	n.dmin = -7
	n.children = []*treeNode{newNode()}
	child := n.children[0]
	child.stops = []Stop{{Trip: 9}}

	// freeTree releases children first, then n — both must come back
	// indistinguishable from new(treeNode). We still hold the pointers,
	// so the scrub is directly observable.
	freeTree(n)
	for i, got := range []*treeNode{n, child} {
		if got.stops != nil || got.intra != nil || got.children != nil {
			t.Fatalf("node %d: freed node kept slice headers: %+v", i, got)
		}
		if got.leg != 0 || got.intraSum != 0 || got.dmax != 0 || got.dmin != 0 {
			t.Fatalf("node %d: freed node kept scalar state: %+v", i, got)
		}
	}

	// Whatever newNode hands out next — recycled or fresh — must be the
	// zero value.
	for i := 0; i < 4; i++ {
		m := newNode()
		if m.stops != nil || m.intra != nil || m.children != nil ||
			m.leg != 0 || m.intraSum != 0 || m.dmax != 0 || m.dmin != 0 {
			t.Fatalf("newNode returned dirty node: %+v", m)
		}
		freeNode(m)
	}
}

// TestNodePoolFreeIsHeaderOnly proves freeing never writes through a shared
// backing array: a copy node sharing the source's stops array is freed, and
// the source's stops must be untouched — the aliasing situation every
// descend-copy in TrialInsert creates.
func TestNodePoolFreeIsHeaderOnly(t *testing.T) {
	src := newNode()
	src.stops = []Stop{{Trip: 1, Kind: Pickup}, {Trip: 1, Kind: Dropoff}}

	cp := newNode()
	cp.stops = src.stops // slice-header copy, shared backing array
	freeNode(cp)

	if len(src.stops) != 2 || src.stops[0].Trip != 1 || src.stops[1].Kind != Dropoff {
		t.Fatalf("freeing an aliasing node corrupted the shared stops array: %+v", src.stops)
	}
	src.stops = nil
	freeNode(src)
}

// TestNodePoolToggle exercises the SetNodePooling gate: with pooling off,
// free functions are no-ops (nothing is scrubbed or recycled).
func TestNodePoolToggle(t *testing.T) {
	defer SetNodePooling(true)
	SetNodePooling(false)
	if NodePooling() {
		t.Fatal("SetNodePooling(false) did not disable pooling")
	}
	n := newNode()
	n.stops = []Stop{{Trip: 5}}
	freeNode(n)
	if len(n.stops) != 1 {
		t.Fatal("freeNode scrubbed a node while pooling was off")
	}
	SetNodePooling(true)
	if !NodePooling() {
		t.Fatal("SetNodePooling(true) did not re-enable pooling")
	}
}
