package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/roadnet"
)

// TestTreeMatchesBruteForceIncrementally is the strongest invariant of the
// kinetic tree: because the tree materializes every valid schedule, its best
// branch must equal the brute-force optimum of the equivalent rescheduling
// instance after every commit and every advance, throughout a long random
// lifecycle with interleaved movement. This is what makes the incremental
// structure a correct substitute for rescheduling from scratch (paper §IV).
func TestTreeMatchesBruteForceIncrementally(t *testing.T) {
	for _, variant := range []struct {
		name string
		opts TreeOptions
	}{
		{"basic", TreeOptions{Capacity: 5}},
		{"slack", TreeOptions{Slack: true, Capacity: 5}},
		{"lazy", TreeOptions{Slack: true, Capacity: 5, LazyInvalidation: true}},
	} {
		t.Run(variant.name, func(t *testing.T) {
			w := newTestWorld(t, 51)
			rng := rand.New(rand.NewSource(52))
			n := int32(w.g.N())
			tree := NewTree(w.oracle, roadnet.VertexID(rng.Int31n(n)), 0, variant.opts)
			bf := NewBruteForce(w.oracle)

			// instance reconstructs the rescheduling problem from the
			// tree's current state.
			instance := func() *Instance {
				return &Instance{
					Origin:   tree.Loc(),
					Odo:      tree.Odo(),
					Capacity: variant.opts.Capacity,
					Trips:    tree.ActiveTripStates(nil),
				}
			}

			checks := 0
			for step := 0; step < 250; step++ {
				switch op := rng.Intn(10); {
				case op < 5:
					s := roadnet.VertexID(rng.Int31n(n))
					e := roadnet.VertexID(rng.Int31n(n))
					if s == e {
						continue
					}
					ts, err := NewTripState(int64(step), s, e, 4500, 0.4, tree.Odo(), w.oracle)
					if err != nil {
						t.Fatal(err)
					}
					cand, ok, err := tree.TrialInsert(ts)
					if err != nil {
						t.Fatal(err)
					}
					if !ok {
						continue
					}
					tree.Commit(cand)
				case op < 8:
					if tree.Empty() {
						continue
					}
					if _, err := tree.Advance(); err != nil {
						t.Fatal(err)
					}
				default:
					if tree.Empty() {
						continue
					}
					target := tree.NextStops()[0].Vertex
					path := w.oracle.Path(tree.Loc(), target)
					if len(path) < 2 {
						continue
					}
					tree.SetLocation(path[1], tree.Odo()+w.oracle.Dist(path[0], path[1]))
				}
				if tree.Empty() {
					continue
				}
				treeCost, _, ok := tree.Best()
				if !ok {
					t.Fatalf("step %d: Best failed on non-empty tree", step)
				}
				res := bf.Schedule(instance())
				if !res.OK {
					t.Fatalf("step %d: brute force found no schedule where the tree has one", step)
				}
				if math.Abs(res.Cost-treeCost) > 1e-4 {
					t.Fatalf("step %d (%s): tree best %.4f != brute force %.4f",
						step, variant.name, treeCost, res.Cost)
				}
				checks++
			}
			if checks < 50 {
				t.Fatalf("only %d equivalence checks performed", checks)
			}
		})
	}
}
