package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/roadnet"
	"repro/internal/sp"
)

// TestValidateOrderRejects enumerates each way a schedule can be invalid and
// checks ValidateOrder reports it.
func TestValidateOrderRejects(t *testing.T) {
	w := newTestWorld(t, 41)
	d := func(u, v roadnet.VertexID) float64 { return w.oracle.Dist(u, v) }

	mk := func() *Instance {
		inst := &Instance{Origin: 0, Odo: 100}
		ts := TripState{
			ID: 1, Pickup: 5, Dropoff: 30,
			ShortestLen:  d(5, 30),
			MaxRide:      1.2 * d(5, 30),
			WaitDeadline: 100 + d(0, 5) + 500,
		}
		inst.Trips = []TripState{ts}
		return inst
	}
	pick := Stop{Trip: 0, Kind: Pickup, Vertex: 5}
	drop := Stop{Trip: 0, Kind: Dropoff, Vertex: 30}

	cases := []struct {
		name    string
		mutate  func(inst *Instance) []Stop
		errPart string
	}{
		{
			name:    "valid",
			mutate:  func(*Instance) []Stop { return []Stop{pick, drop} },
			errPart: "",
		},
		{
			name:    "missing stop",
			mutate:  func(*Instance) []Stop { return []Stop{pick} },
			errPart: "missing",
		},
		{
			name:    "duplicate stop",
			mutate:  func(*Instance) []Stop { return []Stop{pick, pick, drop} },
			errPart: "duplicate",
		},
		{
			name:    "dropoff before pickup",
			mutate:  func(*Instance) []Stop { return []Stop{drop, pick} },
			errPart: "violates",
		},
		{
			name: "waiting deadline exceeded",
			mutate: func(inst *Instance) []Stop {
				inst.Trips[0].WaitDeadline = 100 + d(0, 5)/2
				return []Stop{pick, drop}
			},
			errPart: "violates",
		},
		{
			name: "ride budget exceeded",
			mutate: func(inst *Instance) []Stop {
				inst.Trips[0].MaxRide = d(5, 30) / 2
				return []Stop{pick, drop}
			},
			errPart: "violates",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inst := mk()
			order := tc.mutate(inst)
			cost, err := ValidateOrder(inst, w.oracle, order)
			if tc.errPart == "" {
				if err != nil {
					t.Fatalf("valid schedule rejected: %v", err)
				}
				want := d(0, 5) + d(5, 30)
				if math.Abs(cost-want) > 1e-9 {
					t.Fatalf("cost %v, want %v", cost, want)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid schedule accepted (cost %v)", cost)
			}
			if !strings.Contains(err.Error(), tc.errPart) {
				t.Fatalf("error %q does not mention %q", err, tc.errPart)
			}
		})
	}
}

// TestOnboardDropDeadline checks the onboard branch of the walker.
func TestOnboardDropDeadline(t *testing.T) {
	w := newTestWorld(t, 42)
	d := w.oracle.Dist(0, 30)
	inst := &Instance{Origin: 0, Odo: 0}
	inst.Trips = []TripState{{
		ID: 1, Pickup: 5, Dropoff: 30,
		ShortestLen: d, MaxRide: 1.5 * d,
		OnBoard: true, DropDeadline: d - 1, // one meter too tight
	}}
	order := []Stop{{Trip: 0, Kind: Dropoff, Vertex: 30}}
	if _, err := ValidateOrder(inst, w.oracle, order); err == nil {
		t.Fatal("accepted dropoff past DropDeadline")
	}
	inst.Trips[0].DropDeadline = d + 1
	if _, err := ValidateOrder(inst, w.oracle, order); err != nil {
		t.Fatalf("rejected feasible dropoff: %v", err)
	}
}

// TestNewTripStateErrors covers the unreachable-dropoff path.
func TestNewTripStateErrors(t *testing.T) {
	b := roadnet.NewBuilder(3)
	b.SetCoord(0, 0, 0)
	b.SetCoord(1, 1, 0)
	b.SetCoord(2, 9, 9)
	b.AddEdge(0, 1, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := sp.NewMatrix(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTripState(1, 0, 2, 100, 0.2, 0, m); err == nil {
		t.Fatal("expected error for unreachable dropoff")
	}
	ts, err := NewTripState(1, 0, 1, 100, 0.2, 50, m)
	if err != nil {
		t.Fatal(err)
	}
	if ts.WaitDeadline != 150 {
		t.Fatalf("WaitDeadline %v, want 150", ts.WaitDeadline)
	}
	if ts.MaxRide != 1.2 {
		t.Fatalf("MaxRide %v, want 1.2", ts.MaxRide)
	}
	ts.MarkPickedUp(200)
	if !ts.OnBoard || ts.DropDeadline != 200+1.2 {
		t.Fatalf("MarkPickedUp: %+v", ts)
	}
}

// TestSchedulerCostsAreOrderWalks is a quick property: for any random
// feasible instance, the cost each scheduler reports equals walking its own
// order with ValidateOrder (no scheduler may misreport its cost).
func TestSchedulerCostsAreOrderWalks(t *testing.T) {
	w := newTestWorld(t, 43)
	rng := rand.New(rand.NewSource(44))
	schedulers := []Scheduler{
		NewBruteForce(w.oracle),
		NewBranchBound(w.oracle),
		NewMIPScheduler(w.oracle, 100000),
		NewTreeScheduler(w.oracle, TreeOptions{Slack: true}),
		NewTreeScheduler(w.oracle, TreeOptions{Slack: true, HotspotTheta: 500}),
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		inst := w.randomInstance(r, 1+r.Intn(3), 2+r.Intn(3))
		for _, s := range schedulers {
			res := s.Schedule(inst)
			if !res.OK {
				continue
			}
			walked, err := ValidateOrder(inst, w.oracle, res.Order)
			if err != nil {
				t.Logf("%s: invalid order: %v", s.Name(), err)
				return false
			}
			if math.Abs(walked-res.Cost) > 1e-4 {
				t.Logf("%s: cost %v != walked %v", s.Name(), res.Cost, walked)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestFixedDeadlineReduction checks the §VII reduction: a trip built from a
// completion deadline is served iff dropoff occurs by that deadline, for
// any valid schedule.
func TestFixedDeadlineReduction(t *testing.T) {
	w := newTestWorld(t, 45)
	d := w.oracle.Dist(3, 44)
	const eps = 0.25
	deadline := 2*d + (1+eps)*d // room for some pickup delay

	ts, err := NewTripStateWithDeadline(1, 3, 44, deadline, eps, 0, w.oracle)
	if err != nil {
		t.Fatal(err)
	}
	wantWait := WaitForDeadline(deadline, eps, d)
	if math.Abs(ts.WaitDeadline-wantWait) > 1e-9 {
		t.Fatalf("WaitDeadline %v, want %v", ts.WaitDeadline, wantWait)
	}
	// Worst valid schedule: picked up exactly at the wait deadline, ridden
	// at exactly (1+eps)d — completes exactly at the deadline.
	if got := ts.WaitDeadline + ts.MaxRide; math.Abs(got-deadline) > 1e-9 {
		t.Fatalf("worst-case completion %v != deadline %v", got, deadline)
	}
	// Unmeetable deadline is rejected.
	if _, err := NewTripStateWithDeadline(2, 3, 44, (1+eps)*d/2, eps, 0, w.oracle); err == nil {
		t.Fatal("accepted an unmeetable deadline")
	}
}
