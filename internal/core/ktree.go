package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/roadnet"
	"repro/internal/sp"
)

// TreeOptions selects the kinetic-tree variant (paper §IV–V).
type TreeOptions struct {
	// Slack enables min-max filtering with slack time (paper Theorem 1):
	// each node caches the detour tolerance of its subtree, letting
	// insertions prune whole subtrees without walking them.
	Slack bool
	// HotspotTheta, when positive, enables hotspot clustering (paper §V):
	// a point within HotspotTheta meters of every point of an adjacent
	// node is merged into that node instead of spawning alternative
	// orderings, bounding tree growth at clustered pickups/dropoffs with
	// cost error at most 2(m+1)·θ (paper Theorems 2–3).
	HotspotTheta float64
	// MaxTreeNodes, when positive, caps the size of a candidate tree; a
	// trial insertion that would exceed it fails. This emulates the
	// paper's 3 GB memory cutoff at which the basic variants "break off"
	// (Fig. 9c) without taking the process down.
	MaxTreeNodes int
	// Capacity is the maximum number of passengers carried simultaneously;
	// 0 means unlimited.
	Capacity int
	// LazyInvalidation defers pruning of branches invalidated by server
	// movement until the next request arrives, instead of pruning on every
	// location update (paper §IV-A: "The lazy invalidation option only
	// performs such pruning when necessary, i.e., only when there is a new
	// incoming request"). Movement updates then cost O(children) instead
	// of a subtree walk; the dead branches are carried until the next
	// TrialInsert, which revalidates before inserting.
	LazyInvalidation bool
}

// treeNode is one scheduled visit in the kinetic tree. With hotspot
// clustering a node may carry several stops, visited consecutively in
// stored order. Every root→leaf path of the tree is one valid schedule of
// all pending stops.
type treeNode struct {
	stops    []Stop
	leg      float64   // distance from the parent's last stop to stops[0]
	intra    []float64 // distances between consecutive stops, len = len(stops)-1
	intraSum float64
	children []*treeNode

	// Slack aggregates (valid when TreeOptions.Slack):
	// dmax is a sound upper bound on the detour the most lenient branch
	// of this subtree tolerates when inserted above this node (∆ in the
	// paper, computed window-aware so it never prunes a feasible branch);
	// dmin is a sound lower bound below which every branch survives.
	dmax float64
	dmin float64
}

func (n *treeNode) lastVertex() roadnet.VertexID { return n.stops[len(n.stops)-1].Vertex }

// size returns the number of nodes in the subtree.
func (n *treeNode) size() int {
	s := 1
	for _, c := range n.children {
		s += c.size()
	}
	return s
}

// Tree is the kinetic tree of one server: the materialization of all valid
// trip schedules from the server's current location onward (paper §IV).
// The root tracks the current location; each root→leaf path is a valid
// schedule. The zero value is not usable; use NewTree.
//
// Not safe for concurrent use.
type Tree struct {
	oracle sp.Oracle
	opts   TreeOptions

	loc      roadnet.VertexID
	odo      float64 // cumulative distance traveled by the server
	trips    []TripState
	done     []bool // trips completed (slots retained until tree empties)
	children []*treeNode

	pickAt  []float64 // walk scratch, len == len(trips)
	onboard int       // walk scratch: passengers in the vehicle at the branch point
	nodes   int       // node count of the committed tree
	stale   bool      // lazy invalidation: movement since the last revalidation
	ins     inserter  // per-trial scratch; reused so trials allocate no inserter
}

// resetWalk initializes the branch-walk scratch state to the root position:
// no branch pickups recorded, onboard count = passengers currently in the
// vehicle.
func (t *Tree) resetWalk() {
	for i := range t.pickAt {
		t.pickAt[i] = -1
	}
	t.onboard = 0
	for i := range t.trips {
		if !t.done[i] && t.trips[i].OnBoard {
			t.onboard++
		}
	}
}

// visitStop records stop s (visited at odometer `arrive`) in the walk state.
func (t *Tree) visitStop(s Stop, arrive float64) {
	if s.Kind == Pickup {
		t.pickAt[s.Trip] = arrive
		t.onboard++
	} else {
		t.onboard--
	}
}

// unvisitStop undoes visitStop when backtracking.
func (t *Tree) unvisitStop(s Stop) {
	if s.Kind == Pickup {
		t.pickAt[s.Trip] = -1
		t.onboard--
	} else {
		t.onboard++
	}
}

// NewTree returns an empty kinetic tree for a server at the given location
// with the given odometer reading.
func NewTree(oracle sp.Oracle, loc roadnet.VertexID, odo float64, opts TreeOptions) *Tree {
	return &Tree{oracle: oracle, opts: opts, loc: loc, odo: odo}
}

// Loc returns the server's current location vertex.
func (t *Tree) Loc() roadnet.VertexID { return t.loc }

// Odo returns the server's current odometer reading in meters.
func (t *Tree) Odo() float64 { return t.odo }

// Empty reports whether the tree has no pending stops.
func (t *Tree) Empty() bool { return len(t.children) == 0 }

// Nodes returns the node count of the committed tree.
func (t *Tree) Nodes() int { return t.nodes }

// ActiveTrips returns the number of accepted, not yet completed trips.
func (t *Tree) ActiveTrips() int {
	n := 0
	for i := range t.trips {
		if !t.done[i] {
			n++
		}
	}
	return n
}

// OnBoard returns the number of passengers currently in the vehicle.
func (t *Tree) OnBoard() int {
	n := 0
	for i := range t.trips {
		if !t.done[i] && t.trips[i].OnBoard {
			n++
		}
	}
	return n
}

// Trip returns the state of trip slot i.
func (t *Tree) Trip(i int) TripState { return t.trips[i] }

// ActiveTripStates appends copies of the accepted, uncompleted trips in
// slot order to out and returns the extended slice; used to reconstruct
// the equivalent rescheduling instance. Passing a recycled buffer makes
// the call allocation-free once the buffer has grown to fleet steady
// state.
func (t *Tree) ActiveTripStates(out []TripState) []TripState {
	for i := range t.trips {
		if !t.done[i] {
			out = append(out, t.trips[i])
		}
	}
	return out
}

// Candidate is the outcome of a successful TrialInsert: a fully built new
// tree that includes the trial trip, ready to be adopted with Commit. The
// originating tree is not modified until then.
type Candidate struct {
	Cost     float64 // total cost of the best schedule in the new tree
	tripIdx  int
	trip     TripState
	children []*treeNode
	nodes    int
}

// Release returns the candidate's nodes to the pool. Call it when the
// candidate has definitively lost — it will never be committed. Releasing
// a candidate that was already committed (or already released) is a no-op:
// Commit and Release both detach the forest, so a blanket release sweep
// over every trial of a request is safe after the winner commits.
func (c *Candidate) Release() {
	if c == nil || c.children == nil {
		return
	}
	freeForest(c.children)
	c.children = nil
	c.nodes = 0
}

// ErrTooManyTrips is returned when a server would exceed the per-server
// active-trip limit imposed by the walk bitmask width.
var ErrTooManyTrips = errors.New("core: too many active trips on one server")

// maxActiveTrips bounds concurrent trips per server. The paper's unlimited-
// capacity experiment peaks at 17 passengers; 64 gives ample headroom.
const maxActiveTrips = 64

// TrialInsert attempts to extend every valid schedule with the new trip,
// returning a Candidate holding the new tree, or ok=false if no valid
// augmented schedule exists. The receiver is left untouched either way
// (the paper's "we do this by generating a new prefix tree based on the
// existing one", §IV-B).
func (t *Tree) TrialInsert(trip TripState) (*Candidate, bool, error) {
	if t.ActiveTrips() >= maxActiveTrips {
		return nil, false, ErrTooManyTrips
	}
	idx := len(t.trips)
	t.trips = append(t.trips, trip)
	t.done = append(t.done, false)
	t.pickAt = append(t.pickAt, -1)
	defer func() {
		t.trips = t.trips[:idx]
		t.done = t.done[:idx]
		t.pickAt = t.pickAt[:idx]
	}()
	t.resetWalk()

	budget := t.opts.MaxTreeNodes
	if budget <= 0 {
		budget = math.MaxInt
	}
	if t.stale {
		// Lazy invalidation: prune dead branches now that a request
		// actually needs a consistent tree.
		t.revalidateLazy()
		t.resetWalk()
	}
	ins := &t.ins
	*ins = inserter{t: t, budget: budget}
	children, ok := ins.insertList(t.children, t.loc, t.odo, trip.Stops(idx))
	if ins.overBudget {
		return nil, false, fmt.Errorf("core: candidate tree exceeds %d nodes", t.opts.MaxTreeNodes)
	}
	if !ok {
		return nil, false, nil
	}
	cost := bestCost(children)
	return &Candidate{
		Cost:     cost,
		tripIdx:  idx,
		trip:     trip,
		children: children,
		nodes:    ins.created,
	}, true, nil
}

// Commit adopts a candidate produced by TrialInsert on this tree since
// the tree's last mutation (a Commit, Advance, or SetLocation).
// Intervening TrialInserts are harmless — they leave the tree untouched,
// so any number of candidates may be held and one of them committed (the
// batch planner retains candidates across a whole flush this way); the
// tripIdx check below rejects exactly the candidates that predate a
// mutation.
func (t *Tree) Commit(c *Candidate) {
	if c.tripIdx != len(t.trips) {
		panic("core: Commit with stale candidate")
	}
	t.trips = append(t.trips, c.trip)
	t.done = append(t.done, false)
	t.pickAt = append(t.pickAt, -1)
	old := t.children
	t.children = c.children
	// The candidate is consumed: detach its forest so a later Release
	// (engines sweep-release every trial of a request) cannot free the
	// nodes the tree now owns.
	c.children = nil
	// The replaced committed forest is dead. Its stops/intra arrays may
	// live on in other retained candidates' copies; freeing nils only the
	// headers.
	freeForest(old)
	t.refreshAll()
}

// refreshAll recomputes node counts and, if enabled, slack aggregates for
// the whole committed tree ("Only the chosen tree needs to have its ∆
// updated. This can be done through one tree traversal.", §IV-B).
func (t *Tree) refreshAll() {
	t.nodes = 0
	t.resetWalk()
	for _, c := range t.children {
		t.refresh(c, t.odo)
	}
}

func (t *Tree) refresh(n *treeNode, at float64) {
	t.nodes += 1
	arrive := at + n.leg
	ownLoose := math.Inf(1) // excludes waiting-trip dropoffs (window-aware)
	ownAll := math.Inf(1)
	for i, s := range n.stops {
		if i > 0 {
			arrive += n.intra[i-1]
		}
		d, windowed := t.slackOf(s, arrive)
		ownAll = math.Min(ownAll, d)
		if !windowed {
			ownLoose = math.Min(ownLoose, d)
		}
		t.visitStop(s, arrive)
	}
	childMax := math.Inf(-1)
	childMin := math.Inf(1)
	for _, c := range n.children {
		t.refresh(c, arrive)
		childMax = math.Max(childMax, c.dmax)
		childMin = math.Min(childMin, c.dmin)
	}
	for i := len(n.stops) - 1; i >= 0; i-- {
		t.unvisitStop(n.stops[i])
	}
	if len(n.children) == 0 {
		n.dmax = ownLoose
		n.dmin = ownAll
	} else {
		n.dmax = math.Min(ownLoose, childMax)
		n.dmin = math.Min(ownAll, childMin)
	}
}

// slackOf returns the remaining leniency of stop s when visited at odometer
// `arrive`, and whether the constraint window starts at the (branch-local)
// pickup rather than at the root — in which case a detour inserted above
// the pickup does not consume it.
func (t *Tree) slackOf(s Stop, arrive float64) (slack float64, windowed bool) {
	tr := &t.trips[s.Trip]
	if s.Kind == Pickup {
		return tr.WaitDeadline - arrive, false
	}
	if tr.OnBoard {
		return tr.DropDeadline - arrive, false
	}
	p := t.pickAt[s.Trip]
	if p < 0 {
		return math.Inf(-1), true // precedence violated; caller treats as infeasible
	}
	return p + tr.MaxRide - arrive, true
}

// feasibleStop reports whether stop s visited at odometer `arrive` meets its
// constraint given the current walk state.
func (t *Tree) feasibleStop(s Stop, arrive float64) bool {
	tr := &t.trips[s.Trip]
	if s.Kind == Pickup {
		if t.opts.Capacity > 0 && t.onboard >= t.opts.Capacity {
			return false
		}
		return arrive <= tr.WaitDeadline+slackEps
	}
	if tr.OnBoard {
		return arrive <= tr.DropDeadline+slackEps
	}
	p := t.pickAt[s.Trip]
	if p < 0 {
		return false
	}
	return arrive-p <= tr.MaxRide+slackEps
}

// inserter carries the node budget across one TrialInsert.
type inserter struct {
	t          *Tree
	budget     int
	created    int
	overBudget bool
}

func (ins *inserter) alloc() bool {
	ins.created++
	if ins.created > ins.budget {
		ins.overBudget = true
		return false
	}
	return true
}

// insertList inserts the pending stops P into the schedule forest
// `children` whose parent position is `from` at absolute odometer `at`.
// It returns the new forest; ok=false means no feasible placement exists
// anywhere at or below this position (the subtree cannot accommodate the
// new trip and must be pruned by the caller).
func (ins *inserter) insertList(children []*treeNode, from roadnet.VertexID, at float64, P []Stop) ([]*treeNode, bool) {
	t := ins.t
	var out []*treeNode
	mergedAny := false

	// Hotspot merge and descent options, per existing child.
	for _, c := range children {
		if ins.overBudget {
			freeForest(out)
			return nil, false
		}
		if t.opts.HotspotTheta > 0 && t.withinTheta(c, P[0].Vertex) {
			if m := ins.mergeInto(c, from, at, P); m != nil {
				out = append(out, m)
				mergedAny = true
				continue // merged: no alternative placements in this subtree
			}
			// Merge infeasible: fall through to normal descent.
		}
		// Descend: keep c, insert P at or below c's children.
		// Old stops keep their arrival times here; they were valid.
		arrive := at + c.leg
		for i, s := range c.stops {
			if i > 0 {
				arrive += c.intra[i-1]
			}
			t.visitStop(s, arrive)
		}
		nc, ok := ins.insertList(c.children, c.lastVertex(), arrive, P)
		for i := len(c.stops) - 1; i >= 0; i-- {
			t.unvisitStop(c.stops[i])
		}
		if ok {
			if !ins.alloc() {
				freeForest(nc)
				continue
			}
			nn := newNode()
			nn.stops = c.stops
			nn.leg = c.leg
			nn.intra = c.intra
			nn.intraSum = c.intraSum
			nn.children = nc
			nn.dmax = c.dmax
			nn.dmin = c.dmin
			out = append(out, nn)
		}
	}

	// Create a new node for P[0] immediately at this position, unless a
	// hotspot merge already placed it here ("once the point is combined
	// with any node, we stop trying to insert it to any other edges").
	if !mergedAny && !ins.overBudget {
		if n := ins.newNodeHere(children, from, at, P); n != nil {
			out = append(out, n)
		}
	}
	return out, len(out) > 0
}

// newNodeHere builds a node for P[0] as the immediate next stop at this
// position: its children are detour-checked copies of the existing children
// (paper's copyNodes), into which the remaining points P[1:] are inserted.
func (ins *inserter) newNodeHere(children []*treeNode, from roadnet.VertexID, at float64, P []Stop) *treeNode {
	t := ins.t
	leg := t.oracle.Dist(from, P[0].Vertex)
	if leg == sp.Inf {
		return nil
	}
	arrive := at + leg
	if !t.feasibleStop(P[0], arrive) {
		// Lemma 2: once dT(l, ..., s_k) exceeds the deadline it only
		// grows deeper in the tree, but siblings/other subtrees may
		// still work; just reject this placement.
		return nil
	}
	if !ins.alloc() {
		return nil
	}
	n := newNode()
	n.stops = []Stop{P[0]}
	n.leg = leg
	if d, windowed := t.slackOf(P[0], arrive); windowed {
		n.dmax = math.Inf(1)
		n.dmin = d
	} else {
		n.dmax = d
		n.dmin = d
	}

	// The new stop is part of the branch state for everything below it:
	// the copied children must see its pickup both for the load count and
	// for the new trip's ride window.
	t.visitStop(P[0], arrive)
	defer t.unvisitStop(P[0])
	if len(children) > 0 {
		shifted := make([]*treeNode, 0, len(children))
		for _, c := range children {
			newLeg := t.oracle.Dist(P[0].Vertex, c.stops[0].Vertex)
			if newLeg == sp.Inf {
				continue
			}
			detour := leg + newLeg - c.leg
			if t.opts.Slack && detour > c.dmax+slackEps {
				continue // Theorem 1: no branch below tolerates it
			}
			if cc := ins.copyShifted(c, newLeg, arrive, detour); cc != nil {
				shifted = append(shifted, cc)
			}
		}
		if len(shifted) == 0 {
			freeNode(n) // every continuation died: placement infeasible
			return nil
		}
		n.children = shifted
	}
	if len(P) > 1 {
		nc, ok := ins.insertList(n.children, P[0].Vertex, arrive, P[1:])
		if !ok {
			freeTree(n) // frees the shifted copies along with n
			return nil
		}
		// The shifted intermediates were only inputs to the deeper insert;
		// the output forest contains fresh copies of the survivors.
		old := n.children
		n.children = nc
		freeForest(old)
	}
	// Aggregate slack over the final children.
	if len(n.children) > 0 {
		childMax := math.Inf(-1)
		childMin := math.Inf(1)
		for _, c := range n.children {
			childMax = math.Max(childMax, c.dmax)
			childMin = math.Min(childMin, c.dmin)
		}
		n.dmax = math.Min(n.dmax, childMax)
		n.dmin = math.Min(n.dmin, childMin)
	}
	return n
}

// copyShifted deep-copies subtree c under a parent whose last stop is at
// odometer `at`, reached via a new leg of length newLeg, so that every stop
// below arrives `detour` later than before (detour may be negative). Stops
// are rechecked exactly; branches that no longer satisfy their constraints
// are pruned. Returns nil if no complete branch survives.
func (ins *inserter) copyShifted(c *treeNode, newLeg, at, detour float64) *treeNode {
	t := ins.t
	if !ins.alloc() {
		return nil
	}
	// Fast path (slack variant): if the detour is within the subtree's
	// all-branches tolerance, the entire subtree survives verbatim. With a
	// finite capacity this shortcut is unsound — a pickup inserted above
	// raises the load throughout the copied subtree regardless of detour —
	// so it applies only to unlimited-capacity vehicles.
	if t.opts.Slack && t.opts.Capacity == 0 && detour <= c.dmin-slackEps {
		return ins.plainCopy(c, newLeg, detour)
	}
	arrive := at + newLeg
	var visited []Stop
	okStops := true
	for i, s := range c.stops {
		if i > 0 {
			arrive += c.intra[i-1]
		}
		if !t.feasibleStop(s, arrive) {
			okStops = false
			break
		}
		t.visitStop(s, arrive)
		visited = append(visited, s)
	}
	var nn *treeNode
	if okStops {
		nn = newNode()
		nn.stops = c.stops
		nn.leg = newLeg
		nn.intra = c.intra
		nn.intraSum = c.intraSum
		nn.dmax = c.dmax - detour
		nn.dmin = c.dmin - detour
		if len(c.children) > 0 {
			for _, gc := range c.children {
				if t.opts.Slack && detour > gc.dmax+slackEps {
					continue
				}
				if cc := ins.copyShifted(gc, gc.leg, arrive, detour); cc != nil {
					nn.children = append(nn.children, cc)
				}
			}
			if len(nn.children) == 0 {
				freeNode(nn) // incomplete schedules are invalid
				nn = nil
			}
		}
	}
	for i := len(visited) - 1; i >= 0; i-- {
		t.unvisitStop(visited[i])
	}
	return nn
}

// plainCopy duplicates a subtree without constraint checks (used when the
// slack bound certifies every branch survives the detour).
func (ins *inserter) plainCopy(c *treeNode, newLeg, detour float64) *treeNode {
	nn := newNode()
	nn.stops = c.stops
	nn.leg = newLeg
	nn.intra = c.intra
	nn.intraSum = c.intraSum
	nn.dmax = c.dmax - detour
	nn.dmin = c.dmin - detour
	for _, gc := range c.children {
		if !ins.alloc() {
			freeTree(nn)
			return nil
		}
		cc := ins.plainCopy(gc, gc.leg, detour)
		if cc == nil { // a deeper copy ran over budget
			freeTree(nn)
			return nil
		}
		nn.children = append(nn.children, cc)
	}
	return nn
}

// withinTheta reports whether v is within the hotspot radius of every stop
// already in node c (paper §V: "the newly inserted point needs to be within
// θ to all the points of the hot spot").
func (t *Tree) withinTheta(c *treeNode, v roadnet.VertexID) bool {
	for _, s := range c.stops {
		if t.oracle.Dist(s.Vertex, v) > t.opts.HotspotTheta {
			return false
		}
	}
	return true
}

// mergeInto appends P[0] to the stops of child c (hotspot clustering) and
// re-validates the subtree under the induced detour, then inserts the
// remaining points P[1:] below. Returns nil if the merged subtree is
// infeasible.
func (ins *inserter) mergeInto(c *treeNode, from roadnet.VertexID, at float64, P []Stop) *treeNode {
	t := ins.t
	oldLast := c.lastVertex()
	add := t.oracle.Dist(oldLast, P[0].Vertex)
	if add == sp.Inf {
		return nil
	}
	if !ins.alloc() {
		return nil
	}
	// Validate c's own stops (unchanged arrivals) and the appended stop.
	arrive := at + c.leg
	var visited []Stop
	defer func() {
		for i := len(visited) - 1; i >= 0; i-- {
			t.unvisitStop(visited[i])
		}
	}()
	for i, s := range c.stops {
		if i > 0 {
			arrive += c.intra[i-1]
		}
		t.visitStop(s, arrive)
		visited = append(visited, s)
	}
	arrive += add
	if !t.feasibleStop(P[0], arrive) {
		return nil
	}
	stops := make([]Stop, len(c.stops)+1)
	copy(stops, c.stops)
	stops[len(c.stops)] = P[0]
	intra := make([]float64, len(c.intra)+1)
	copy(intra, c.intra)
	intra[len(c.intra)] = add
	nn := newNode()
	nn.stops = stops
	nn.leg = c.leg
	nn.intra = intra
	nn.intraSum = c.intraSum + add
	t.visitStop(P[0], arrive)
	visited = append(visited, P[0])
	// Children now depart from P[0].Vertex instead of oldLast and are
	// delayed by the detour through the merged stop.
	if len(c.children) > 0 {
		for _, gc := range c.children {
			newLeg := t.oracle.Dist(P[0].Vertex, gc.stops[0].Vertex)
			if newLeg == sp.Inf {
				continue
			}
			detour := add + newLeg - gc.leg
			if t.opts.Slack && detour > gc.dmax+slackEps {
				continue
			}
			if cc := ins.copyShifted(gc, newLeg, arrive, detour); cc != nil {
				nn.children = append(nn.children, cc)
			}
		}
		if len(nn.children) == 0 {
			freeNode(nn)
			return nil
		}
	}
	if len(P) > 1 {
		nc, ok := ins.insertList(nn.children, P[0].Vertex, arrive, P[1:])
		if !ok {
			freeTree(nn)
			return nil
		}
		old := nn.children
		nn.children = nc
		freeForest(old)
	}
	return nn
}

// bestCost returns the minimum total cost over all branches of the forest
// without materializing stop orders (the hot path of TrialInsert).
func bestCost(children []*treeNode) float64 {
	if len(children) == 0 {
		return 0
	}
	best := math.Inf(1)
	for _, c := range children {
		if total := c.leg + c.intraSum + bestCost(c.children); total < best {
			best = total
		}
	}
	return best
}

// bestSchedule returns the minimum total cost over all branches of the
// forest and the corresponding stop sequence. Cost is measured from the
// forest's parent position (legs include the first hop).
func bestSchedule(children []*treeNode, prefix []Stop) (float64, []Stop) {
	if len(children) == 0 {
		return 0, append([]Stop(nil), prefix...)
	}
	best := math.Inf(1)
	var bestOrder []Stop
	for _, c := range children {
		sub, order := bestSchedule(c.children, append(prefix, c.stops...))
		total := c.leg + c.intraSum + sub
		if total < best {
			best = total
			bestOrder = order
		}
	}
	return best, bestOrder
}

// Best returns the cost and stop order of the currently cheapest schedule,
// or ok=false when the tree is empty.
func (t *Tree) Best() (cost float64, order []Stop, ok bool) {
	if t.stale {
		t.revalidateLazy()
	}
	if t.Empty() {
		return 0, nil, false
	}
	cost, order = bestSchedule(t.children, nil)
	return cost, order, true
}

// NextStops returns the stops of the first node of the cheapest schedule —
// the server's immediate target(s) — or nil if the tree is empty.
func (t *Tree) NextStops() []Stop {
	c := t.bestChild()
	if c == nil {
		return nil
	}
	return c.stops
}

func (t *Tree) bestChild() *treeNode {
	var best *treeNode
	bc := math.Inf(1)
	for _, c := range t.children {
		if total := c.leg + c.intraSum + bestCost(c.children); total < bc {
			bc = total
			best = c
		}
	}
	return best
}

// Served reports one stop visited by Advance together with the odometer
// reading at which it was served.
type Served struct {
	Stop Stop
	Odo  float64
	Trip TripState // state after serving (pickups show their DropDeadline)
}

// Advance records that the server has reached and served the first node of
// its chosen (cheapest) schedule: trips picked up there become onboard,
// trips dropped off complete, the subtree rooted at that node becomes the
// new forest, and all sibling schedules are pruned (Lemma 1). It returns
// the stops served with their arrival odometers. The server's location and
// odometer move to the node's last stop.
func (t *Tree) Advance() ([]Served, error) {
	if t.stale {
		// Lazy invalidation: dead sibling branches must not be chosen
		// as the schedule to execute.
		t.revalidateLazy()
	}
	c := t.bestChild()
	if c == nil {
		return nil, errors.New("core: Advance on empty tree")
	}
	served := make([]Served, 0, len(c.stops))
	arrive := t.odo + c.leg
	for i, s := range c.stops {
		if i > 0 {
			arrive += c.intra[i-1]
		}
		tr := &t.trips[s.Trip]
		switch s.Kind {
		case Pickup:
			tr.MarkPickedUp(arrive)
		case Dropoff:
			t.done[s.Trip] = true
		}
		served = append(served, Served{Stop: s, Odo: arrive, Trip: *tr})
	}
	t.odo = arrive
	t.loc = c.lastVertex()
	old := t.children
	t.children = c.children
	// The served node and its pruned sibling schedules (Lemma 1) are dead.
	for _, sib := range old {
		if sib != c {
			freeTree(sib)
		}
	}
	c.children = nil
	freeNode(c)
	if t.Empty() {
		// All trips served: recycle the slot arrays.
		t.trips = t.trips[:0]
		t.done = t.done[:0]
		t.pickAt = t.pickAt[:0]
		t.nodes = 0
	} else {
		t.refreshAll()
	}
	return served, nil
}

// SetLocation moves the server to vertex v with the given odometer reading
// (odo must be non-decreasing). Root legs are recomputed; with eager
// invalidation (the default), subtrees whose leg grew are re-validated and
// pruned immediately, while lazy invalidation defers that work to the next
// TrialInsert (paper §IV-A). The branch the server is following shrinks and
// is never pruned.
func (t *Tree) SetLocation(v roadnet.VertexID, odo float64) {
	if v == t.loc && odo == t.odo {
		return
	}
	moved := odo - t.odo
	t.loc = v
	t.odo = odo
	if t.Empty() {
		return
	}
	if t.opts.LazyInvalidation {
		// Just retarget the root legs so Best/Advance keep working;
		// stale (possibly invalid) branches stay until the next request
		// forces a full revalidation.
		for _, c := range t.children {
			if d := t.oracle.Dist(v, c.stops[0].Vertex); d != sp.Inf {
				c.leg = d
			} else {
				// Degraded lookup (a bounded-retry oracle exhausted its
				// budget), not true unreachability: in a static network a
				// committed stop cannot become unreachable by the vehicle
				// moving toward it. Estimate the leg as "previous minus
				// distance traveled" — exact for the branch the server is
				// following, conservative-enough for the alternatives,
				// and corrected by the next successful lookup — instead
				// of corrupting the schedule with an infinite leg.
				if c.leg -= moved; c.leg < 0 {
					c.leg = 0
				}
			}
		}
		t.stale = true
		return
	}
	t.pruneEager(moved)
}

// pruneEager re-validates the root children against the current location
// using the detour shortcuts, which are sound because eager trees keep
// their legs and slack aggregates fresh on every movement.
func (t *Tree) pruneEager(moved float64) {
	t.resetWalk()
	ins := &t.ins
	*ins = inserter{t: t, budget: math.MaxInt}
	kept := t.children[:0]
	for _, c := range t.children {
		newLeg := t.oracle.Dist(t.loc, c.stops[0].Vertex)
		if newLeg == sp.Inf {
			// Degraded lookup, not true unreachability (see SetLocation's
			// lazy arm): this branch holds committed trips, so keep it on
			// the travel-adjusted previous leg rather than deleting the
			// schedule. The next movement re-tries the lookup.
			if c.leg -= moved; c.leg < 0 {
				c.leg = 0
			}
			kept = append(kept, c)
			continue
		}
		detour := newLeg - c.leg // relative to previous position
		if detour <= slackEps {
			// Arrivals only got earlier: still valid.
			c.leg = newLeg
			kept = append(kept, c)
			continue
		}
		if cc := ins.copyShifted(c, newLeg, t.odo, detour); cc != nil {
			kept = append(kept, cc)
		}
		freeTree(c) // replaced by the shifted copy (or pruned entirely)
	}
	t.children = kept
	t.refreshAll()
}

// revalidateLazy walks the whole tree with exact constraint checks and no
// slack shortcuts (the cached aggregates are stale after deferred
// movement), pruning branches that died since the last revalidation.
func (t *Tree) revalidateLazy() {
	t.resetWalk()
	kept := t.children[:0]
	for _, c := range t.children {
		if cc := t.revalidateNode(c, t.odo); cc != nil {
			kept = append(kept, cc)
		} else {
			freeTree(c)
		}
	}
	t.children = kept
	t.stale = false
	t.refreshAll()
}

// revalidateNode checks node n and its subtree at absolute odometer `at`
// (arrival of the parent's last stop), returning n with dead descendants
// pruned, or nil if no complete branch survives. It mutates in place — the
// lazy tree is not shared with any candidate.
func (t *Tree) revalidateNode(n *treeNode, at float64) *treeNode {
	arrive := at + n.leg
	var visited []Stop
	defer func() {
		for i := len(visited) - 1; i >= 0; i-- {
			t.unvisitStop(visited[i])
		}
	}()
	for i, s := range n.stops {
		if i > 0 {
			arrive += n.intra[i-1]
		}
		if !t.feasibleStop(s, arrive) {
			return nil
		}
		t.visitStop(s, arrive)
		visited = append(visited, s)
	}
	if len(n.children) == 0 {
		return n
	}
	kept := n.children[:0]
	for _, c := range n.children {
		if cc := t.revalidateNode(c, arrive); cc != nil {
			kept = append(kept, cc)
		} else {
			freeTree(c)
		}
	}
	n.children = kept
	if len(n.children) == 0 {
		return nil
	}
	return n
}

// Validate walks every branch and verifies that it is a valid schedule:
// all pending stops appear exactly once, pickups precede dropoffs, and all
// waiting/service constraints hold. Used by tests and available for
// paranoia checks in simulations.
func (t *Tree) Validate() error {
	if t.stale {
		// A lazily invalidated tree legitimately carries dead branches
		// between requests; validate the pruned view.
		t.revalidateLazy()
	}
	if t.Empty() {
		if t.ActiveTrips() != 0 {
			return fmt.Errorf("core: empty tree with %d active trips", t.ActiveTrips())
		}
		return nil
	}
	want := make(map[Stop]bool)
	for i := range t.trips {
		if t.done[i] {
			continue
		}
		for _, s := range t.trips[i].Stops(i) {
			want[s] = true
		}
	}
	t.resetWalk()
	seen := make(map[Stop]bool)
	var walk func(n *treeNode, at float64) error
	walk = func(n *treeNode, at float64) error {
		arrive := at + n.leg
		var visited []Stop
		defer func() {
			for i := len(visited) - 1; i >= 0; i-- {
				t.unvisitStop(visited[i])
			}
		}()
		for i, s := range n.stops {
			if i > 0 {
				arrive += n.intra[i-1]
			}
			if !want[s] {
				return fmt.Errorf("core: branch contains unexpected stop %v", s)
			}
			if seen[s] {
				return fmt.Errorf("core: stop %v repeated on a branch", s)
			}
			if !t.feasibleStop(s, arrive) {
				return fmt.Errorf("core: stop %v infeasible at odo %.2f", s, arrive)
			}
			seen[s] = true
			t.visitStop(s, arrive)
			visited = append(visited, s)
		}
		if len(n.children) == 0 {
			if len(seen) != len(want) {
				return fmt.Errorf("core: leaf schedule has %d stops, want %d", len(seen), len(want))
			}
		}
		for _, c := range n.children {
			if err := walk(c, arrive); err != nil {
				return err
			}
		}
		for _, s := range n.stops {
			delete(seen, s)
		}
		return nil
	}
	for _, c := range t.children {
		if err := walk(c, t.odo); err != nil {
			return err
		}
	}
	return nil
}
