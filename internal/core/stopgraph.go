package core

import (
	"repro/internal/sp"
)

// stopGraph is the complete graph over {origin} ∪ pending stops with
// shortest-path edge weights, shared by the brute-force, branch-and-bound,
// and MIP schedulers (paper §II: "We treat N as a complete graph with
// vertices being N and edge weights being the shortest path distances").
// Index 0 is the origin; stop i is at index i+1.
type stopGraph struct {
	inst  *Instance
	stops []Stop
	n     int         // len(stops) + 1
	dist  [][]float64 // n x n
	// minIncident[i] is the minimum-cost edge incident to point i,
	// the branch-and-bound lower-bound ingredient (paper §III).
	minIncident []float64
}

func newStopGraph(inst *Instance, oracle sp.Oracle) (*stopGraph, bool) {
	stops := inst.PendingStops()
	n := len(stops) + 1
	g := &stopGraph{inst: inst, stops: stops, n: n}
	g.dist = make([][]float64, n)
	verts := make([]int32, n)
	verts[0] = inst.Origin
	for i, s := range stops {
		verts[i+1] = s.Vertex
	}
	for i := 0; i < n; i++ {
		g.dist[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d := oracle.Dist(verts[i], verts[j])
			if d == sp.Inf {
				return nil, false
			}
			g.dist[i][j] = d
		}
	}
	g.minIncident = make([]float64, n)
	for i := 0; i < n; i++ {
		min := sp.Inf
		for j := 0; j < n; j++ {
			if i != j && g.dist[i][j] < min {
				min = g.dist[i][j]
			}
		}
		if min == sp.Inf {
			min = 0 // single-point graph
		}
		g.minIncident[i] = min
	}
	return g, true
}

// pickupIndex returns, for the stop at index si (0-based into stops), the
// stop index of its matching pickup, or -1 if the trip is onboard or the
// stop is itself a pickup.
func (g *stopGraph) pickupIndex(si int) int {
	s := g.stops[si]
	if s.Kind == Pickup || g.inst.Trips[s.Trip].OnBoard {
		return -1
	}
	for j, o := range g.stops {
		if o.Trip == s.Trip && o.Kind == Pickup {
			return j
		}
	}
	return -1
}
