package core

import (
	"math"

	"repro/internal/sp"
)

// BruteForce enumerates all stop permutations respecting pickup-before-
// dropoff precedence, abandoning a prefix as soon as a constraint is
// violated. It keeps the cheapest complete schedule. This is the paper's
// baseline (§II): "We enumerate all of the permutations and then check the
// constraints" — constraint checks let it "stop earlier on average", but it
// performs no cost-bound pruning (that is what distinguishes it from
// branch-and-bound in the evaluation).
type BruteForce struct {
	oracle sp.Oracle
}

// NewBruteForce returns a brute-force scheduler using the given oracle.
func NewBruteForce(oracle sp.Oracle) *BruteForce { return &BruteForce{oracle: oracle} }

// Name implements Scheduler.
func (b *BruteForce) Name() string { return "bruteforce" }

// MaxStops caps the instance size accepted by the exhaustive schedulers;
// beyond this the search space is astronomically large.
const MaxStops = 64

// Schedule implements Scheduler.
func (b *BruteForce) Schedule(inst *Instance) Result {
	g, ok := newStopGraph(inst, b.oracle)
	if !ok || len(g.stops) > MaxStops {
		return Result{}
	}
	if len(g.stops) == 0 {
		return Result{OK: true, Exact: true, Order: nil, Cost: 0}
	}
	s := bfSearch{g: g, w: newWalker(inst, b.oracle), best: math.Inf(1)}
	s.used = make([]bool, len(g.stops))
	s.seq = make([]int, 0, len(g.stops))
	s.rec(0, inst.Odo)
	if math.IsInf(s.best, 1) {
		return Result{}
	}
	order := make([]Stop, len(s.bestSeq))
	for i, si := range s.bestSeq {
		order[i] = g.stops[si]
	}
	return Result{OK: true, Cost: s.best - inst.Odo, Order: order, Exact: true}
}

type bfSearch struct {
	g       *stopGraph
	w       *walker
	used    []bool
	seq     []int
	best    float64 // best complete arrival odometer
	bestSeq []int
}

// rec extends the permutation from graph point `last` (0 = origin) at
// absolute odometer `at`.
func (s *bfSearch) rec(last int, at float64) {
	if len(s.seq) == len(s.g.stops) {
		if at < s.best {
			s.best = at
			s.bestSeq = append(s.bestSeq[:0], s.seq...)
		}
		return
	}
	for si := range s.g.stops {
		if s.used[si] {
			continue
		}
		stop := s.g.stops[si]
		// Precedence: a waiting trip's dropoff needs its pickup first.
		if stop.Kind == Dropoff && !s.g.inst.Trips[stop.Trip].OnBoard && s.w.pickAt[stop.Trip] < 0 {
			continue
		}
		nat := at + s.g.dist[last][si+1]
		if !s.w.feasibleAt(stop, nat) {
			continue
		}
		s.used[si] = true
		s.seq = append(s.seq, si)
		s.w.noteVisit(stop, nat)
		s.rec(si+1, nat)
		s.w.unnoteVisit(stop)
		s.seq = s.seq[:len(s.seq)-1]
		s.used[si] = false
	}
}
