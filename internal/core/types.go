// Package core implements the ridesharing matching algorithms of the paper:
// the brute-force and branch-and-bound schedulers (§II–III), the
// mixed-integer-programming scheduler (§III-A), and the kinetic tree in its
// basic, slack-time, and hotspot-clustering variants (§IV–V).
//
// All costs and times are expressed in meters of travel at constant speed
// (roadnet.Speed); "odometer" values are cumulative distances traveled by a
// server, so deadlines are absolute odometer readings. This follows the
// paper's convention that "most computations are done in terms of distance
// instead of time" (§VI).
package core

import (
	"fmt"

	"repro/internal/roadnet"
	"repro/internal/sp"
)

// StopKind distinguishes pickup from dropoff stops.
type StopKind int8

// Stop kinds.
const (
	Pickup StopKind = iota
	Dropoff
)

func (k StopKind) String() string {
	if k == Pickup {
		return "pickup"
	}
	return "dropoff"
}

// Stop is one scheduled visit: the pickup or dropoff point of a trip.
type Stop struct {
	Trip   int // index into Instance.Trips
	Kind   StopKind
	Vertex roadnet.VertexID
}

func (s Stop) String() string {
	return fmt.Sprintf("%s(trip %d @%d)", s.Kind, s.Trip, s.Vertex)
}

// TripState is a trip request together with its remaining service-guarantee
// budgets, expressed as absolute odometer deadlines of the serving vehicle.
type TripState struct {
	ID      int64 // external request identifier
	Pickup  roadnet.VertexID
	Dropoff roadnet.VertexID

	// ShortestLen is d(Pickup, Dropoff); MaxRide is (1+ε)·ShortestLen,
	// the service constraint on the in-vehicle distance (paper Def. 2,
	// condition 3).
	ShortestLen float64
	MaxRide     float64

	// OnBoard reports whether the passenger has been picked up.
	OnBoard bool

	// WaitDeadline is the absolute odometer reading by which the pickup
	// must occur (request odometer + w). Meaningful only when !OnBoard
	// (paper Def. 2, condition 2).
	WaitDeadline float64

	// DropDeadline is the absolute odometer reading by which the dropoff
	// must occur (pickup odometer + MaxRide). Meaningful only when
	// OnBoard.
	DropDeadline float64
}

// Stops returns the pending stops of the trip: the dropoff alone for an
// onboard passenger, pickup then dropoff otherwise.
func (t *TripState) Stops(idx int) []Stop {
	if t.OnBoard {
		return []Stop{{Trip: idx, Kind: Dropoff, Vertex: t.Dropoff}}
	}
	return []Stop{
		{Trip: idx, Kind: Pickup, Vertex: t.Pickup},
		{Trip: idx, Kind: Dropoff, Vertex: t.Dropoff},
	}
}

// Instance is one rescheduling problem: a server at Origin with odometer
// Odo must visit every pending stop of Trips in some valid order. This is
// the "new unfinished schedule" part of the augmented valid trip schedule
// (paper §I-A); by convention the new request, if any, is the last trip.
type Instance struct {
	Origin roadnet.VertexID
	Odo    float64
	Trips  []TripState
	// Capacity is the maximum number of passengers the vehicle may carry
	// simultaneously; 0 means unlimited (paper §VI-B "unlim").
	Capacity int
}

// PendingStops returns all stops that must be scheduled, grouped per trip
// in trip order.
func (in *Instance) PendingStops() []Stop {
	var out []Stop
	for i := range in.Trips {
		out = append(out, in.Trips[i].Stops(i)...)
	}
	return out
}

// Result is the outcome of scheduling an Instance.
type Result struct {
	// OK reports whether any valid schedule exists.
	OK bool
	// Cost is the total travel distance of the best schedule found,
	// from Origin through every stop in Order.
	Cost float64
	// Order is the stop sequence of the best schedule.
	Order []Stop
	// Exact reports whether Cost is proven optimal. It is false when a
	// truncated search (MIP node limit, hotspot approximation) returned
	// an incumbent without proof.
	Exact bool
}

// Scheduler computes a minimum-cost valid schedule for an instance.
type Scheduler interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Schedule solves the instance. Implementations may issue many
	// distance queries against their oracle; they must not retain inst.
	Schedule(inst *Instance) Result
}

// walker validates stop sequences incrementally. It carries the branch state
// shared by all the search algorithms: current odometer, and the odometer at
// which each waiting trip's pickup occurred on this branch.
type walker struct {
	inst    *Instance
	oracle  sp.Oracle
	pickAt  []float64 // per trip; -1 = not yet picked on this branch
	onboard int       // passengers in the vehicle at the current branch point
}

func newWalker(inst *Instance, oracle sp.Oracle) *walker {
	w := &walker{inst: inst, oracle: oracle, pickAt: make([]float64, len(inst.Trips))}
	w.resetBranch()
	return w
}

func (w *walker) resetBranch() {
	for i := range w.pickAt {
		w.pickAt[i] = -1
	}
	w.onboard = 0
	for i := range w.inst.Trips {
		if w.inst.Trips[i].OnBoard {
			w.onboard++
		}
	}
}

// feasibleAt reports whether visiting stop s at absolute odometer `at`
// satisfies the stop's constraint, given the branch state. It does not
// mutate state; call noteVisit after a successful check.
func (w *walker) feasibleAt(s Stop, at float64) bool {
	t := &w.inst.Trips[s.Trip]
	if s.Kind == Pickup {
		if w.inst.Capacity > 0 && w.onboard >= w.inst.Capacity {
			return false
		}
		return at <= t.WaitDeadline+slackEps
	}
	if t.OnBoard {
		return at <= t.DropDeadline+slackEps
	}
	p := w.pickAt[s.Trip]
	if p < 0 {
		return false // dropoff before pickup: precedence violation
	}
	return at-p <= t.MaxRide+slackEps
}

// noteVisit records the visit of s at odometer `at` in the branch state.
func (w *walker) noteVisit(s Stop, at float64) {
	if s.Kind == Pickup {
		w.pickAt[s.Trip] = at
		w.onboard++
	} else {
		w.onboard--
	}
}

// unnoteVisit undoes noteVisit when backtracking.
func (w *walker) unnoteVisit(s Stop) {
	if s.Kind == Pickup {
		w.pickAt[s.Trip] = -1
		w.onboard--
	} else {
		w.onboard++
	}
}

// slackEps absorbs floating-point noise in deadline comparisons so that a
// schedule exactly at its deadline is accepted.
const slackEps = 1e-6

// ValidateOrder checks that order is a valid schedule for inst and returns
// its total cost. It is the reference implementation of Definition 2 used by
// tests and by cross-validation of the schedulers.
func ValidateOrder(inst *Instance, oracle sp.Oracle, order []Stop) (float64, error) {
	// Every pending stop exactly once.
	need := make(map[Stop]int)
	for _, s := range inst.PendingStops() {
		need[s]++
	}
	for _, s := range order {
		if need[s] == 0 {
			return 0, fmt.Errorf("core: unexpected or duplicate stop %v", s)
		}
		need[s]--
	}
	// Walk the instance's own stop order, not the map, so the same stop is
	// named in the error on every run.
	for _, s := range inst.PendingStops() {
		if need[s] != 0 {
			return 0, fmt.Errorf("core: stop %v missing from schedule", s)
		}
	}
	w := newWalker(inst, oracle)
	at := inst.Odo
	from := inst.Origin
	for _, s := range order {
		leg := oracle.Dist(from, s.Vertex)
		if leg == sp.Inf {
			return 0, fmt.Errorf("core: stop %v unreachable from %d", s, from)
		}
		at += leg
		if !w.feasibleAt(s, at) {
			return 0, fmt.Errorf("core: stop %v violates its constraint at odo %.1f", s, at)
		}
		w.noteVisit(s, at)
		from = s.Vertex
	}
	return at - inst.Odo, nil
}

// NewTripState builds a TripState for a request made when the serving
// vehicle's odometer reads odoAtRequest: the pickup deadline is
// odoAtRequest + wait, and the ride budget is (1+eps)·d(pickup, dropoff).
func NewTripState(id int64, pickup, dropoff roadnet.VertexID, wait, eps, odoAtRequest float64, oracle sp.Oracle) (TripState, error) {
	d := oracle.Dist(pickup, dropoff)
	if d == sp.Inf {
		return TripState{}, fmt.Errorf("core: trip %d: dropoff %d unreachable from pickup %d", id, dropoff, pickup)
	}
	return TripState{
		ID:           id,
		Pickup:       pickup,
		Dropoff:      dropoff,
		ShortestLen:  d,
		MaxRide:      (1 + eps) * d,
		WaitDeadline: odoAtRequest + wait,
	}, nil
}

// MarkPickedUp converts a waiting trip to an onboard trip picked up at the
// given odometer reading.
func (t *TripState) MarkPickedUp(odoAtPickup float64) {
	t.OnBoard = true
	t.DropDeadline = odoAtPickup + t.MaxRide
}

// WaitForDeadline converts a fixed completion deadline into the equivalent
// waiting-time budget, per paper §VII: "Given a fixed deadline t, the
// maximal waiting time can be defined as w = t − (1+ε)d(s,e)", which lets
// the ridesharing algorithms solve fixed-deadline dial-a-ride problems.
// deadline and the result are in meters of server travel (time × speed);
// a non-positive result means the deadline is unmeetable even with a
// zero-wait pickup.
func WaitForDeadline(deadline, eps, shortestLen float64) float64 {
	return deadline - (1+eps)*shortestLen
}

// NewTripStateWithDeadline builds a TripState for a request that must be
// completed (dropped off) by the given absolute odometer deadline, using
// the §VII reduction to a waiting-time constraint.
func NewTripStateWithDeadline(id int64, pickup, dropoff roadnet.VertexID, deadline, eps, odoAtRequest float64, oracle sp.Oracle) (TripState, error) {
	d := oracle.Dist(pickup, dropoff)
	if d == sp.Inf {
		return TripState{}, fmt.Errorf("core: trip %d: dropoff %d unreachable from pickup %d", id, dropoff, pickup)
	}
	wait := WaitForDeadline(deadline-odoAtRequest, eps, d)
	if wait <= 0 {
		return TripState{}, fmt.Errorf("core: trip %d: deadline %.1f unmeetable (needs %.1f riding)", id, deadline, (1+eps)*d)
	}
	return NewTripState(id, pickup, dropoff, wait, eps, odoAtRequest, oracle)
}
