package obs

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// Live is the set of pipeline progress counters that may be read while the
// engines are running. Everything else in the metrics stack (histograms,
// sim.Metrics) is single-writer and only safe to read at quiescence; Live
// is the deliberately small atomic surface the interval reporter and the
// /metrics endpoint poll mid-run. All fields are updated with atomic adds
// by whichever goroutine owns the event and read with atomic loads.
//
// A nil *Live is the disabled state: every Add/Set is a no-op, so the
// pipeline threads the handle unconditionally.
type Live struct {
	Requests     atomic.Int64 // requests submitted to an engine
	Matched      atomic.Int64 // requests assigned a vehicle
	Rejected     atomic.Int64 // requests no vehicle could serve
	Admitted     atomic.Int64 // requests stamped into the gateway order
	ShedOverflow atomic.Int64 // requests shed for queue overflow
	ShedDeadline atomic.Int64 // requests shed for blown service windows
	ShedAdaptive atomic.Int64 // requests shed by the adaptive admission controller
	Completed    atomic.Int64 // trips dropped off
	Flushes      atomic.Int64 // batch windows flushed
	Conflicts    atomic.Int64 // batch conflicts repaired
	Backlog      atomic.Int64 // requests currently resident in gateway queues
	ShedLevel    atomic.Int64 // current adaptive shed probability, per mille
	SLOGood      atomic.Int64 // released within the wall-clock SLO
	SLOBad       atomic.Int64 // released late, or shed against the SLO budget
	BurnPM       atomic.Int64 // current SLO burn rate, per mille (1000 = on budget)
}

// AddRequests increments the submitted-requests counter (nil-safe).
func (l *Live) AddRequests(n int64) {
	if l != nil {
		l.Requests.Add(n)
	}
}

// AddMatched increments the matched counter (nil-safe).
func (l *Live) AddMatched(n int64) {
	if l != nil {
		l.Matched.Add(n)
	}
}

// AddRejected increments the rejected counter (nil-safe).
func (l *Live) AddRejected(n int64) {
	if l != nil {
		l.Rejected.Add(n)
	}
}

// AddAdmitted increments the admitted counter (nil-safe).
func (l *Live) AddAdmitted(n int64) {
	if l != nil {
		l.Admitted.Add(n)
	}
}

// AddShedOverflow increments the overflow-shed counter (nil-safe).
func (l *Live) AddShedOverflow(n int64) {
	if l != nil {
		l.ShedOverflow.Add(n)
	}
}

// AddShedDeadline increments the deadline-shed counter (nil-safe).
func (l *Live) AddShedDeadline(n int64) {
	if l != nil {
		l.ShedDeadline.Add(n)
	}
}

// AddShedAdaptive increments the adaptive-shed counter (nil-safe).
func (l *Live) AddShedAdaptive(n int64) {
	if l != nil {
		l.ShedAdaptive.Add(n)
	}
}

// SetShedLevel records the adaptive controller's current shed
// probability in per mille (nil-safe).
func (l *Live) SetShedLevel(pm int64) {
	if l != nil {
		l.ShedLevel.Store(pm)
	}
}

// AddCompleted increments the completed-trips counter (nil-safe).
func (l *Live) AddCompleted(n int64) {
	if l != nil {
		l.Completed.Add(n)
	}
}

// AddFlushes increments the flushed-windows counter (nil-safe).
func (l *Live) AddFlushes(n int64) {
	if l != nil {
		l.Flushes.Add(n)
	}
}

// AddConflicts increments the repaired-conflicts counter (nil-safe).
func (l *Live) AddConflicts(n int64) {
	if l != nil {
		l.Conflicts.Add(n)
	}
}

// SetBacklog records the current gateway queue residency (nil-safe).
func (l *Live) SetBacklog(n int64) {
	if l != nil {
		l.Backlog.Store(n)
	}
}

// AddSLOGood increments the within-SLO release counter (nil-safe).
func (l *Live) AddSLOGood(n int64) {
	if l != nil {
		l.SLOGood.Add(n)
	}
}

// AddSLOBad increments the SLO-budget-debit counter (nil-safe).
func (l *Live) AddSLOBad(n int64) {
	if l != nil {
		l.SLOBad.Add(n)
	}
}

// SetBurnPM records the current SLO burn rate in per mille (nil-safe).
func (l *Live) SetBurnPM(pm int64) {
	if l != nil {
		l.BurnPM.Store(pm)
	}
}

// LiveSnapshot is one consistent-enough read of the counters (each field
// individually atomic).
type LiveSnapshot struct {
	Requests     int64 `json:"requests"`
	Matched      int64 `json:"matched"`
	Rejected     int64 `json:"rejected"`
	Admitted     int64 `json:"admitted"`
	ShedOverflow int64 `json:"shed_overflow"`
	ShedDeadline int64 `json:"shed_deadline"`
	ShedAdaptive int64 `json:"shed_adaptive"`
	Completed    int64 `json:"completed"`
	Flushes      int64 `json:"flushes"`
	Conflicts    int64 `json:"conflicts"`
	Backlog      int64 `json:"backlog"`
	ShedLevel    int64 `json:"shed_level_pm"`
	SLOGood      int64 `json:"slo_good"`
	SLOBad       int64 `json:"slo_bad"`
	BurnPM       int64 `json:"slo_burn_pm"`
}

// Snapshot reads every counter (nil-safe: all zeros).
func (l *Live) Snapshot() LiveSnapshot {
	if l == nil {
		return LiveSnapshot{}
	}
	return LiveSnapshot{
		Requests:     l.Requests.Load(),
		Matched:      l.Matched.Load(),
		Rejected:     l.Rejected.Load(),
		Admitted:     l.Admitted.Load(),
		ShedOverflow: l.ShedOverflow.Load(),
		ShedDeadline: l.ShedDeadline.Load(),
		ShedAdaptive: l.ShedAdaptive.Load(),
		Completed:    l.Completed.Load(),
		Flushes:      l.Flushes.Load(),
		Conflicts:    l.Conflicts.Load(),
		Backlog:      l.Backlog.Load(),
		ShedLevel:    l.ShedLevel.Load(),
		SLOGood:      l.SLOGood.Load(),
		SLOBad:       l.SLOBad.Load(),
		BurnPM:       l.BurnPM.Load(),
	}
}

// Reporter periodically writes an interval snapshot as one JSON line. The
// snap callback supplies the payload (typically a LiveSnapshot, or any
// richer JSON-serializable view); each line is wrapped with a wall-clock
// offset so consumers can plot trajectories.
type Reporter struct {
	w        io.Writer
	interval time.Duration
	snap     func() any
	start    time.Time

	mu   sync.Mutex // serializes writes (ticker goroutine vs final Stop flush)
	done chan struct{}
	wg   sync.WaitGroup
	stop sync.Once
}

// reportLine is the envelope around each interval snapshot.
type reportLine struct {
	ElapsedMs int64 `json:"elapsed_ms"`
	Stats     any   `json:"stats"`
}

// NewReporter starts a goroutine that writes snap() to w every interval.
// Stop it with Stop, which writes one final line.
func NewReporter(w io.Writer, interval time.Duration, snap func() any) *Reporter {
	if interval <= 0 {
		interval = time.Second
	}
	r := &Reporter{
		w:        w,
		interval: interval,
		snap:     snap,
		start:    time.Now(),
		done:     make(chan struct{}),
	}
	r.wg.Add(1)
	go r.loop()
	return r
}

func (r *Reporter) loop() {
	defer r.wg.Done()
	t := time.NewTicker(r.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			r.emit()
		case <-r.done:
			return
		}
	}
}

func (r *Reporter) emit() {
	r.mu.Lock()
	defer r.mu.Unlock()
	line := reportLine{ElapsedMs: time.Since(r.start).Milliseconds(), Stats: r.snap()}
	b, err := json.Marshal(line)
	if err != nil {
		return
	}
	b = append(b, '\n')
	r.w.Write(b)
}

// Stop halts the interval goroutine and flushes exactly one final
// snapshot line, so the last partial interval is never dropped. Nil-safe
// and idempotent: extra calls return after the first has finished.
func (r *Reporter) Stop() {
	if r == nil {
		return
	}
	r.stop.Do(func() {
		close(r.done)
		r.wg.Wait()
		r.emit()
	})
}

// Server is the live observability HTTP endpoint: /metrics serves the
// metrics callback as JSON, and /debug/pprof/* serves the runtime
// profiles. It binds a private mux so enabling it never touches
// http.DefaultServeMux.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the observability endpoint on addr (e.g. "localhost:6060";
// ":0" picks a free port — read it back with Addr). The metrics callback
// is invoked per /metrics request and must be safe for concurrent use —
// hand it atomics (Live.Snapshot), not quiescent-only state.
//
// When a prom callback is supplied, the Prometheus text exposition of the
// same metrics is served at /metrics/prom, and at /metrics itself when
// the request asks for it (?format=prom, or an Accept header naming
// text/plain before application/json). The callback writes the exposition
// through a PromWriter per scrape and must likewise be concurrency-safe.
func Serve(addr string, metrics func() any, prom ...func(*PromWriter)) (*Server, error) {
	var promFn func(*PromWriter)
	if len(prom) > 0 {
		promFn = prom[0]
	}
	servProm := func(w http.ResponseWriter) {
		w.Header().Set("Content-Type", promContentType)
		pw := NewPromWriter(w)
		promFn(pw)
		pw.Flush()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if promFn != nil && wantsProm(req) {
			servProm(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(metrics())
	})
	if promFn != nil {
		mux.HandleFunc("/metrics/prom", func(w http.ResponseWriter, req *http.Request) {
			servProm(w)
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down. Nil-safe.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
