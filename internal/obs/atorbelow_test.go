package obs

import "testing"

// TestCountAtOrBelowExactSmall: values below 16 live in width-1 buckets,
// so the cumulative count is exact there.
func TestCountAtOrBelowExactSmall(t *testing.T) {
	h := NewHistogram()
	for v := int64(0); v < 10; v++ {
		h.Record(v)
	}
	for v := int64(0); v < 10; v++ {
		if got := h.CountAtOrBelow(v); got != uint64(v+1) {
			t.Fatalf("CountAtOrBelow(%d) = %d, want %d", v, got, v+1)
		}
	}
	if got := h.CountAtOrBelow(-1); got != 0 {
		t.Fatalf("CountAtOrBelow(-1) = %d, want 0", got)
	}
	if got := h.CountAtOrBelow(1 << 40); got != h.Count() {
		t.Fatalf("CountAtOrBelow(huge) = %d, want all %d", got, h.Count())
	}
}

// TestCountAtOrBelowSeparatedClusters: clusters in distinct octaves are
// split exactly by any value between them.
func TestCountAtOrBelowSeparatedClusters(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 5; i++ {
		h.Record(100)
		h.Record(1000)
	}
	if got := h.CountAtOrBelow(50); got != 0 {
		t.Fatalf("CountAtOrBelow(50) = %d, want 0", got)
	}
	if got := h.CountAtOrBelow(500); got != 5 {
		t.Fatalf("CountAtOrBelow(500) = %d, want 5", got)
	}
	if got := h.CountAtOrBelow(1000); got != 10 {
		t.Fatalf("CountAtOrBelow(1000) = %d (v == max), want 10", got)
	}
}

// TestCountAtOrBelowProperties: monotone in v, never above Count, never
// overcounting (errs low by design), and nil-safe.
func TestCountAtOrBelowProperties(t *testing.T) {
	var nilH *Histogram
	if got := nilH.CountAtOrBelow(5); got != 0 {
		t.Fatalf("nil CountAtOrBelow = %d, want 0", got)
	}
	h := NewHistogram()
	if got := h.CountAtOrBelow(5); got != 0 {
		t.Fatalf("empty CountAtOrBelow = %d, want 0", got)
	}
	vals := []int64{3, 17, 17, 130, 999, 4096, 70000}
	for _, v := range vals {
		h.Record(v)
	}
	prev := uint64(0)
	for v := int64(0); v < 1<<18; v += 97 {
		got := h.CountAtOrBelow(v)
		if got < prev {
			t.Fatalf("CountAtOrBelow regressed at %d: %d < %d", v, got, prev)
		}
		exact := uint64(0)
		for _, s := range vals {
			if s <= v {
				exact++
			}
		}
		if got > exact {
			t.Fatalf("CountAtOrBelow(%d) = %d overcounts exact %d", v, got, exact)
		}
		prev = got
	}
	if got := h.CountAtOrBelow(70000); got != uint64(len(vals)) {
		t.Fatalf("CountAtOrBelow(max) = %d, want %d", got, len(vals))
	}
}
