package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilTracerAndRingAreNoOps(t *testing.T) {
	var tr *Tracer
	r := tr.Ring("anything")
	if r != nil {
		t.Fatal("nil tracer should hand out nil rings")
	}
	r.Emit(KindMatched, 1, 2.0, 3) // must not panic
	var buf bytes.Buffer
	w, d, err := tr.Drain(&buf)
	if err != nil || w != 0 || d != 0 || buf.Len() != 0 {
		t.Fatalf("nil tracer drain = (%d, %d, %v), want zeros", w, d, err)
	}
}

func TestTracerDrainSortedJSONL(t *testing.T) {
	tr := NewTracer(16)
	a := tr.Ring("producer-0")
	b := tr.Ring("shard-1")
	a.Emit(KindGenerated, 10, 0.5, 0)
	b.Emit(KindTrialed, 10, 0.5, 7)
	a.Emit(KindAdmitted, 10, 0.5, 42)
	b.Emit(KindMatched, 10, 0.5, 3)

	var buf bytes.Buffer
	written, dropped, err := tr.Drain(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if written != 4 || dropped != 0 {
		t.Fatalf("drain = (%d written, %d dropped), want (4, 0)", written, dropped)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d JSONL lines, want 4", len(lines))
	}
	prevWall := int64(-1)
	srcs := map[string]int{}
	for _, line := range lines {
		var e jsonEvent
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %q is not JSON: %v", line, err)
		}
		if e.WallNs < prevWall {
			t.Fatalf("events not sorted by wall time: %d after %d", e.WallNs, prevWall)
		}
		prevWall = e.WallNs
		if e.Req != 10 {
			t.Fatalf("req = %d, want 10", e.Req)
		}
		srcs[e.Src]++
	}
	if srcs["producer-0"] != 2 || srcs["shard-1"] != 2 {
		t.Fatalf("source labels wrong: %v", srcs)
	}
}

func TestTracerRingWrapCountsDropped(t *testing.T) {
	tr := NewTracer(4)
	r := tr.Ring("w")
	for i := int64(0); i < 10; i++ {
		r.Emit(KindQueued, i, float64(i), 0)
	}
	var buf bytes.Buffer
	written, dropped, err := tr.Drain(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if written != 4 || dropped != 6 {
		t.Fatalf("drain = (%d written, %d dropped), want (4, 6)", written, dropped)
	}
	// The retained events must be the newest: reqs 6..9 in order.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	for i, line := range lines {
		var e jsonEvent
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatal(err)
		}
		if want := int64(6 + i); e.Req != want {
			t.Fatalf("retained event %d has req %d, want %d", i, e.Req, want)
		}
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{KindGenerated, KindAdmitted, KindQueued, KindReleased,
		KindTrialed, KindMatched, KindRejected, KindShed, KindCompleted}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if strings.HasPrefix(s, "Kind(") {
			t.Fatalf("kind %d has no name", k)
		}
		if seen[s] {
			t.Fatalf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	if !strings.HasPrefix(Kind(200).String(), "Kind(") {
		t.Fatal("unknown kind should fall back to numeric form")
	}
}
