// Package obs is the pipeline's observability layer: memory-bounded
// streaming statistics and request lifecycle tracing cheap enough to leave
// threaded through the hot path, plus live reporting (interval snapshots,
// an expvar-style /metrics + pprof HTTP endpoint) for watching a run while
// it happens instead of after.
//
// The paper's evaluation judges the matcher by response-time distributions
// (ACRT/ART, §VI), and the real-time matchers in the related work are
// judged on live operational percentiles — Simonetto et al. report
// per-batch solve-time and waiting-time distributions over the run, Yao &
// Bekhor profile matching cost as the fleet scales. This package supplies
// the substrate: Histogram replaces grow-forever sample slices with fixed
// 4 KB counter arrays, Tracer stamps per-request lifecycle events into
// single-writer ring buffers, Live carries atomically readable progress
// counters for concurrent readers, and Reporter/Serve expose both while
// the pipeline runs.
package obs

import (
	"fmt"
	"math"
	"math/bits"
)

// Log-linear bucket layout (HDR-histogram style): subCount sub-buckets per
// power of two, so every bucket's width is at most lo/subCount — a bounded
// relative error of 1/subCount = 12.5% — while the whole range of int64
// fits in a fixed array of numBuckets counters. Values below 2*subCount
// (i.e. < 16) land in width-1 buckets and are recorded exactly, which
// makes the histogram lossless for small counts such as per-vehicle
// occupancy.
const (
	subBits    = 3
	subCount   = 1 << subBits // 8 sub-buckets per octave
	numBuckets = (63-subBits)*subCount + 2*subCount
)

// Histogram is a streaming log-bucketed histogram over nonnegative int64
// values (negative values are clamped to 0). It retains no samples: memory
// is a fixed array of bucket counters, so recording is O(1), merging is
// O(numBuckets), and quantile queries walk the buckets once — the
// replacement for the O(n) sample slices and O(n log n) sort-per-quantile
// the metrics used to pay at city scale.
//
// Accuracy: min, max, count, and sum (hence the mean) are exact; a
// quantile is reported as the midpoint of the bucket holding the exact
// sample quantile, so its relative error is bounded by the bucket width —
// at most 12.5% (1/subCount), and zero for values below 16, which occupy
// exact width-1 buckets.
//
// Units are the caller's (the pipeline records nanoseconds for latencies,
// milliseconds for simulated-time lags, raw counts for occupancy).
//
// A Histogram is not safe for concurrent use; like the rest of
// sim.Metrics, each goroutine records into its own and the owners merge.
// Read-only methods tolerate a nil receiver (they report an empty
// distribution), so holders of optional histograms can query without
// nil checks.
type Histogram struct {
	counts [numBuckets]uint64
	count  uint64
	sum    int64
	min    int64
	max    int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a nonnegative value to its bucket.
func bucketIndex(v int64) int {
	if v < 2*subCount {
		return int(v) // exact width-1 buckets for 0..15
	}
	e := bits.Len64(uint64(v)) - 1
	return (e-subBits)*subCount + int(v>>uint(e-subBits))
}

// bucketBounds returns the inclusive lower bound and width of bucket idx.
func bucketBounds(idx int) (lo, width int64) {
	if idx < 2*subCount {
		return int64(idx), 1
	}
	scale := uint(idx/subCount - 1)
	return int64(subCount+idx%subCount) << scale, 1 << scale
}

// bucketRep is the value a bucket reports for the samples it holds: its
// midpoint (exact for width-1 buckets).
func bucketRep(idx int) int64 {
	lo, width := bucketBounds(idx)
	return lo + width/2
}

// Record adds one sample. Negative values clamp to 0.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[bucketIndex(v)]++
	h.count++
	h.sum += v
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the exact sum of all recorded samples.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the exact mean (integer division), or 0 when empty.
func (h *Histogram) Mean() int64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / int64(h.count)
}

// Min returns the exact smallest sample, or 0 when empty.
func (h *Histogram) Min() int64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the exact largest sample, or 0 when empty.
func (h *Histogram) Max() int64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the q-quantile (q in [0, 1]) under the same rank
// convention the metrics used on raw samples: the ceil(q*n)-th smallest
// sample. The result is the holding bucket's midpoint clamped to
// [Min, Max], so Quantile(1) is the exact maximum and small values
// (< 16) are exact.
//
// Edge cases are pinned behavior: a nil or empty histogram reports 0 for
// every q; q <= 0 reports the exact minimum and q >= 1 the exact maximum
// (out-of-range q clamps rather than erroring); NaN q reports 0; and a
// distribution held in a single bucket reports the same value — that
// bucket's clamped midpoint — for every in-range q.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil || h.count == 0 || math.IsNaN(q) {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(q * float64(h.count))
	if float64(rank) < q*float64(h.count) {
		rank++
	}
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < numBuckets; i++ {
		cum += h.counts[i]
		if cum >= rank {
			v := bucketRep(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// CountAtOrBelow returns how many recorded samples are <= v, to bucket
// resolution: the count includes every whole bucket whose upper bound
// is <= v, plus v's own bucket when v reaches its upper bound — so the
// answer is exact whenever v lands on a bucket boundary (all small
// values < 16, and every power-of-two/subCount grid point above) and
// otherwise errs low by at most one bucket's population. The overload
// benchmark uses it to count how many served requests met a wall-clock
// SLO. Nil-safe: 0.
func (h *Histogram) CountAtOrBelow(v int64) uint64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if v < 0 {
		return 0
	}
	if v >= h.max {
		return h.count
	}
	idx := bucketIndex(v)
	lo, width := bucketBounds(idx)
	var cum uint64
	for i := 0; i < idx; i++ {
		cum += h.counts[i]
	}
	if v == lo+width-1 {
		cum += h.counts[idx]
	}
	return cum
}

// TopMean returns the mean of the k largest recorded samples, each
// reported as its bucket's midpoint clamped to [Min, Max] — the same
// bucket-width error bound as Quantile. k clamps to Count; empty
// histograms (and k == 0) report 0.
func (h *Histogram) TopMean(k uint64) float64 {
	if h == nil || h.count == 0 || k == 0 {
		return 0
	}
	if k > h.count {
		k = h.count
	}
	need := k
	var sum float64
	for i := numBuckets - 1; i >= 0 && need > 0; i-- {
		c := h.counts[i]
		if c == 0 {
			continue
		}
		take := c
		if take > need {
			take = need
		}
		v := bucketRep(i)
		if v > h.max {
			v = h.max
		}
		if v < h.min {
			v = h.min
		}
		sum += float64(v) * float64(take)
		need -= take
	}
	return sum / float64(k)
}

// BucketCount is one non-empty histogram bucket: the inclusive value
// range [Lo, Hi] and how many samples landed in it.
type BucketCount struct {
	Lo, Hi int64
	Count  uint64
}

// Buckets returns the non-empty buckets in ascending value order —
// the same layout the Prometheus exposition serializes — for consumers
// that render the distribution itself (cmd/tracetool's histogram view).
// Nil-safe: an empty slice.
func (h *Histogram) Buckets() []BucketCount {
	if h == nil || h.count == 0 {
		return nil
	}
	var out []BucketCount
	for i := 0; i < numBuckets; i++ {
		if c := h.counts[i]; c != 0 {
			lo, width := bucketBounds(i)
			out = append(out, BucketCount{Lo: lo, Hi: lo + width - 1, Count: c})
		}
	}
	return out
}

// Merge folds o into h: bucket counters add, extremes combine. Merging is
// commutative and associative, and merging per-shard histograms is exactly
// equivalent to recording every shard's samples into one histogram.
// A nil o is a no-op.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.count += o.count
	h.sum += o.sum
}

// CopyFrom makes h an exact copy of o (empty when o is nil). Used by
// set-not-add stat paths that must stay idempotent on re-read.
func (h *Histogram) CopyFrom(o *Histogram) {
	if o == nil {
		*h = Histogram{}
		return
	}
	*h = *o
}

// Clone returns an independent copy (nil-safe, returning an empty
// histogram).
func (h *Histogram) Clone() *Histogram {
	c := &Histogram{}
	c.CopyFrom(h)
	return c
}

// Equal reports whether two histograms hold identical distributions
// (identical bucket counts and extremes). Nil receivers compare as empty.
func (h *Histogram) Equal(o *Histogram) bool {
	if h.Count() != o.Count() {
		return false
	}
	if h.Count() == 0 {
		return true
	}
	if h.min != o.min || h.max != o.max || h.sum != o.sum {
		return false
	}
	return h.counts == o.counts
}

// Summary is the JSON-serializable digest of a histogram: the quantiles
// the paper-style evaluation reports, without retaining samples.
type Summary struct {
	Count uint64 `json:"count"`
	Mean  int64  `json:"mean"`
	P50   int64  `json:"p50"`
	P90   int64  `json:"p90"`
	P99   int64  `json:"p99"`
	Max   int64  `json:"max"`
}

// Summary digests the histogram (nil-safe: an empty summary).
func (h *Histogram) Summary() Summary {
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

// String renders the digest, for log lines.
func (h *Histogram) String() string {
	s := h.Summary()
	return fmt.Sprintf("n=%d mean=%d p50=%d p90=%d p99=%d max=%d",
		s.Count, s.Mean, s.P50, s.P90, s.P99, s.Max)
}

// BucketError returns the maximum absolute error the histogram may report
// for a quantile whose exact value is v — half the width of v's bucket
// (0 for the exact small-value range). Tests use it to bound reported
// quantiles against exact sample quantiles.
func BucketError(v int64) int64 {
	if v < 0 {
		v = 0
	}
	_, width := bucketBounds(bucketIndex(v))
	return width / 2
}
