package obs

import (
	"os"
	"path/filepath"
	"testing"
)

func TestBenchResultRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := NewBenchResult("dispatch_throughput")
	r.Metrics["req_per_sec"] = 1234.5
	r.Metrics["p99_match_ns"] = 42000
	if err := WriteBench(dir, r); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "BENCH_dispatch_throughput.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ValidateBench(data)
	if err != nil {
		t.Fatalf("emitted file fails its own validation: %v", err)
	}
	if got.Name != r.Name || got.GOMAXPROCS != r.GOMAXPROCS || got.GoVersion != r.GoVersion {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, r)
	}
	if got.Metrics["req_per_sec"] != 1234.5 {
		t.Fatalf("metrics lost in round trip: %v", got.Metrics)
	}
	if got.GitSHA == "" {
		t.Fatal("git sha empty after round trip")
	}
}

func TestValidateBenchRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":       `{`,
		"missing name":   `{"unix_sec":1,"go_version":"go","gomaxprocs":1,"num_cpu":1,"git_sha":"x","metrics":{"a":1}}`,
		"missing sha":    `{"name":"n","unix_sec":1,"go_version":"go","gomaxprocs":1,"num_cpu":1,"git_sha":"","metrics":{"a":1}}`,
		"empty metrics":  `{"name":"n","unix_sec":1,"go_version":"go","gomaxprocs":1,"num_cpu":1,"git_sha":"x","metrics":{}}`,
		"negative value": `{"name":"n","unix_sec":1,"go_version":"go","gomaxprocs":1,"num_cpu":1,"git_sha":"x","metrics":{"a":-1}}`,
		"unknown field":  `{"name":"n","unix_sec":1,"go_version":"go","gomaxprocs":1,"num_cpu":1,"git_sha":"x","metrics":{"a":1},"extra":true}`,
		"zero procs":     `{"name":"n","unix_sec":1,"go_version":"go","gomaxprocs":0,"num_cpu":1,"git_sha":"x","metrics":{"a":1}}`,
	}
	for name, payload := range cases {
		if _, err := ValidateBench([]byte(payload)); err == nil {
			t.Errorf("%s: validation unexpectedly passed", name)
		}
	}
}

func TestBenchDirGatesOnEnv(t *testing.T) {
	t.Setenv("BENCH_JSON_DIR", "")
	if BenchDir() != "" {
		t.Fatal("BenchDir should be empty when env unset")
	}
	t.Setenv("BENCH_JSON_DIR", "/tmp/bench")
	if BenchDir() != "/tmp/bench" {
		t.Fatal("BenchDir should reflect the env var")
	}
}
