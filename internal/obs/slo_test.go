package obs

import (
	"math"
	"testing"
	"time"
)

// near absorbs the float error in 1 - objective.
func near(got, want float64) bool { return math.Abs(got-want) < 1e-9 }

func TestSLOTrackerNilSafe(t *testing.T) {
	var tr *SLOTracker
	tr.Observe(true)
	tr.Observe(false)
	if s := tr.Snapshot(); s != (SLOSnapshot{}) {
		t.Fatalf("nil snapshot = %+v, want zero", s)
	}
	if tr.BurnPerMille() != 0 || tr.Objective() != 0 {
		t.Fatal("nil tracker reported a burn rate or objective")
	}
}

func TestSLOTrackerObjectiveClamps(t *testing.T) {
	if got := NewSLOTracker(0.1, 0).Objective(); got != 0.5 {
		t.Fatalf("low objective clamped to %v, want 0.5", got)
	}
	if got := NewSLOTracker(1.5, 0).Objective(); got != 0.9999 {
		t.Fatalf("high objective clamped to %v, want 0.9999", got)
	}
	if got := NewSLOTracker(0.99, 0).Objective(); got != 0.99 {
		t.Fatalf("in-range objective rewritten to %v", got)
	}
}

func TestSLOTrackerAccounting(t *testing.T) {
	// A huge window so no slot rotates mid-test: lifetime and window
	// accounts must agree.
	tr := NewSLOTracker(0.9, time.Hour)
	for i := 0; i < 90; i++ {
		tr.Observe(true)
	}
	for i := 0; i < 10; i++ {
		tr.Observe(false)
	}
	s := tr.Snapshot()
	if s.Good != 90 || s.Bad != 10 || s.WindowGood != 90 || s.WindowBad != 10 {
		t.Fatalf("counts = %+v, want 90 good / 10 bad in both accounts", s)
	}
	// 10 bad out of 100 against a 10% budget: exactly on budget.
	if !near(s.BudgetConsumed, 1.0) {
		t.Fatalf("budget consumed = %v, want 1.0", s.BudgetConsumed)
	}
	if !near(s.BurnRate, 1.0) || tr.BurnPerMille() != 1000 {
		t.Fatalf("burn = %v (%d pm), want 1.0 (1000 pm)", s.BurnRate, tr.BurnPerMille())
	}
}

func TestSLOTrackerBurnExtremes(t *testing.T) {
	clean := NewSLOTracker(0.9, time.Hour)
	for i := 0; i < 50; i++ {
		clean.Observe(true)
	}
	if s := clean.Snapshot(); s.BurnRate != 0 || s.BudgetConsumed != 0 {
		t.Fatalf("clean window burns: %+v", s)
	}

	burning := NewSLOTracker(0.9, time.Hour)
	for i := 0; i < 50; i++ {
		burning.Observe(false)
	}
	// Every request bad against a 10% budget: burning 10x too fast.
	if s := burning.Snapshot(); !near(s.BurnRate, 10) || burning.BurnPerMille() != 10000 {
		t.Fatalf("all-bad burn = %v, want 10", s.BurnRate)
	}

	if s := NewSLOTracker(0.9, time.Hour).Snapshot(); s.BurnRate != 0 || s.BudgetConsumed != 0 {
		t.Fatalf("empty tracker = %+v, want zero rates", s)
	}
}

func TestSLOTrackerWindowRotation(t *testing.T) {
	// A tiny window: outcomes observed now must fall out of the rolling
	// account after the window elapses, while lifetime counters persist.
	tr := NewSLOTracker(0.9, 20*time.Millisecond)
	for i := 0; i < 10; i++ {
		tr.Observe(false)
	}
	time.Sleep(50 * time.Millisecond)
	s := tr.Snapshot()
	if s.Bad != 10 {
		t.Fatalf("lifetime bad = %d, want 10", s.Bad)
	}
	if s.WindowBad != 0 || s.BurnRate != 0 {
		t.Fatalf("window did not roll: %+v", s)
	}
	if s.BudgetConsumed == 0 {
		t.Fatal("lifetime budget account rolled with the window")
	}
}
