package obs

import (
	"testing"
)

// span is a test shorthand for a SpanRecord interval.
func span(req int64, stage string, start, end int64) SpanRecord {
	return SpanRecord{
		ID: SpanID(req, StageMatch, start), Req: req, Stage: stage,
		StartNs: start, EndNs: end,
	}
}

// immediateModeTrace is request 1 as the immediate-mode pipeline emits
// it: admit 10ns, queue_wait 90ns, release 10ns, a 10ns gap, then a
// 100ns match with two nested phase-1 shard spans (30ns and 60ns) and a
// 10ns injected stall overlapping them.
func immediateModeTrace() *Trace {
	return &Trace{Spans: []SpanRecord{
		span(1, "admit", 0, 10),
		span(1, "queue_wait", 10, 100),
		span(1, "release", 100, 110),
		span(1, "match", 120, 220),
		span(1, "phase1", 125, 155),
		span(1, "phase1", 125, 185),
		span(1, "fault_stall", 130, 140),
	}}
}

func TestAnalyzeImmediateModeDecomposition(t *testing.T) {
	a, paths := Analyze(immediateModeTrace())
	if len(paths) != 1 || a.Requests != 1 {
		t.Fatalf("got %d paths, %d requests, want 1/1", len(paths), a.Requests)
	}
	p := paths[0]
	if p.Req != 1 || p.StartNs != 0 || p.EndNs != 220 || p.TotalNs != 220 {
		t.Fatalf("path envelope = %+v, want [0, 220]", p)
	}
	want := map[string]int64{
		"admit": 10, "queue_wait": 90, "release": 10,
		// phase1 is the MAX over concurrent shard spans, not the sum.
		"phase1": 60,
		// match is self time: 100ns span minus the nested phase1 max.
		"match": 40,
		// overlay stage, reported but outside the wall partition.
		"fault_stall": 10,
	}
	for stage, ns := range want {
		if got := p.Contrib(stage); got != ns {
			t.Fatalf("contrib[%s] = %d, want %d (path %+v)", stage, got, ns, p.Contribs)
		}
	}
	if p.Dominant != "queue_wait" {
		t.Fatalf("dominant = %q, want queue_wait", p.Dominant)
	}
	// Wall partition: 210 attributed + 10 residual (the 110→120 gap);
	// the 10ns stall overlays and must not inflate either side.
	if a.QueueNs != 110 || a.ComputeNs != 100 || a.OtherNs != 10 {
		t.Fatalf("split = queue %d / compute %d / other %d, want 110/100/10",
			a.QueueNs, a.ComputeNs, a.OtherNs)
	}
	if got := a.Stages["other"].TotalNs; got != 10 {
		t.Fatalf("other stage total = %d, want 10", got)
	}
	if a.Total.Count() != 1 || a.Total.Max() != 220 {
		t.Fatalf("total histogram = %v", a.Total.Summary())
	}
}

func TestAnalyzeBatchModeAndFleetSpans(t *testing.T) {
	tr := &Trace{Spans: []SpanRecord{
		span(2, "admit", 0, 5),
		span(2, "queue_wait", 5, 10),
		span(2, "release", 10, 12),
		// Batch mode: phase1/repair parent to the root, no match span.
		span(2, "phase1", 20, 50),
		span(2, "repair", 50, 70),
		// Fleet-level flush span: counted for its stage, no request path.
		span(-1, "flush", 0, 100),
	}}
	a, paths := Analyze(tr)
	if len(paths) != 1 || paths[0].Req != 2 {
		t.Fatalf("fleet span leaked into request paths: %+v", paths)
	}
	if st := a.Stages["flush"]; st == nil || st.Spans != 1 || st.Requests != 0 {
		t.Fatalf("flush stage = %+v, want 1 span / 0 requests", st)
	}
	p := paths[0]
	if p.TotalNs != 70 || p.Dominant != "phase1" {
		t.Fatalf("path = %+v, want total 70 dominant phase1", p)
	}
	if a.QueueNs != 12 || a.ComputeNs != 50 || a.OtherNs != 8 {
		t.Fatalf("split = %d/%d/%d, want 12/50/8", a.QueueNs, a.ComputeNs, a.OtherNs)
	}
}

func TestAnalyzeMatchSelfTimeClampsAtZero(t *testing.T) {
	// A phase-1 span longer than its parent match span (possible when a
	// shard span closes after the reducer committed) must not go negative.
	tr := &Trace{Spans: []SpanRecord{
		span(3, "match", 0, 10),
		span(3, "phase1", 0, 30),
	}}
	_, paths := Analyze(tr)
	p := paths[0]
	if got := p.Contrib("match"); got != 0 {
		t.Fatalf("match self time = %d, want clamp to 0", got)
	}
	if got := p.Contrib("phase1"); got != 30 {
		t.Fatalf("phase1 = %d, want 30", got)
	}
	if p.Dominant != "phase1" {
		t.Fatalf("dominant = %q, want phase1", p.Dominant)
	}
}

func TestAnalyzeDominantTieBreaksByStageOrder(t *testing.T) {
	tr := &Trace{Spans: []SpanRecord{
		span(4, "admit", 0, 10),
		span(4, "match", 10, 20),
	}}
	_, paths := Analyze(tr)
	if got := paths[0].Dominant; got != "admit" {
		t.Fatalf("dominant on tie = %q, want the first stage in StageOrder (admit)", got)
	}
}

func TestAttributionMergeEqualsConcatenatedAnalysis(t *testing.T) {
	trA := immediateModeTrace()
	trB := &Trace{Spans: []SpanRecord{
		span(2, "admit", 0, 5),
		span(2, "queue_wait", 5, 10),
		span(2, "release", 10, 12),
		span(2, "phase1", 20, 50),
		span(2, "repair", 50, 70),
		span(-1, "flush", 0, 100),
	}}
	merged, _ := Analyze(trA)
	b, _ := Analyze(trB)
	merged.Merge(b)
	merged.Merge(nil) // nil is a no-op

	combined, _ := Analyze(&Trace{Spans: append(append([]SpanRecord{}, trA.Spans...), trB.Spans...)})
	if merged.Requests != combined.Requests ||
		merged.QueueNs != combined.QueueNs ||
		merged.ComputeNs != combined.ComputeNs ||
		merged.OtherNs != combined.OtherNs {
		t.Fatalf("merged totals %+v != combined %+v", merged, combined)
	}
	if !merged.Total.Equal(combined.Total) {
		t.Fatalf("merged total histogram diverged: %v vs %v",
			merged.Total.Summary(), combined.Total.Summary())
	}
	if len(merged.Stages) != len(combined.Stages) {
		t.Fatalf("stage sets differ: %v vs %v", merged.StageNames(), combined.StageNames())
	}
	for name, cs := range combined.Stages {
		ms := merged.Stages[name]
		if ms == nil {
			t.Fatalf("merged lost stage %q", name)
		}
		if ms.Spans != cs.Spans || ms.Requests != cs.Requests ||
			ms.Dominant != cs.Dominant || ms.TotalNs != cs.TotalNs {
			t.Fatalf("stage %q: merged %+v != combined %+v", name, ms, cs)
		}
		if !ms.Contrib.Equal(cs.Contrib) {
			t.Fatalf("stage %q contrib histogram diverged", name)
		}
	}
}

func TestStageNamesFollowCanonicalOrder(t *testing.T) {
	a, _ := Analyze(immediateModeTrace())
	names := a.StageNames()
	for i := 1; i < len(names); i++ {
		ri, rj := stageRank(names[i-1]), stageRank(names[i])
		if ri > rj || (ri == rj && names[i-1] > names[i]) {
			t.Fatalf("StageNames out of order: %v", names)
		}
	}
	if stageRank("made_up_stage") != len(StageOrder) {
		t.Fatal("unknown stages must rank last")
	}
}
