package obs

import (
	"sort"
)

// Critical-path analysis over drained span traces: decompose each
// request's wall time into per-stage contributions and aggregate the
// fleet-wide attribution. This is the answer to "which stage ate the
// latency budget" — the flat lifecycle events say what happened to a
// request, the span decomposition says where its wall time went.
//
// Decomposition rules, per request:
//
//   - admit, queue_wait, release, repair: the summed span durations
//     (each occurs at most once per request in the current pipeline).
//   - phase1: the *maximum* over the request's per-shard phase-1 spans —
//     the shards run concurrently under a worker pool, so the critical
//     path through the fan-out is the slowest shard, not the sum.
//   - match: the match span's self time — its duration minus the phase1
//     contribution nested inside it (immediate mode only; batch mode has
//     no per-request match span and attributes phase1/repair directly).
//   - other: the request's total wall (last span end - first span start)
//     minus everything attributed above — scheduling gaps, batch-window
//     residency, unspanned glue.
//   - fault_* and oracle_spike spans are reported as their own stages
//     but OVERLAP the stage they fired inside (a stall sleeps in the
//     middle of a phase-1 trial loop), so they are excluded from the
//     total/other arithmetic: they answer "how much injected latency did
//     this request absorb", not "which pipeline stage was on the path".

// Canonical stage-name order for deterministic reports. "other" is the
// analyzer's synthetic residual stage.
var StageOrder = []string{
	"admit", "queue_wait", "release", "match", "phase1", "repair",
	"flush", "fault_stall", "fault_slow_trial", "oracle_spike", "other",
}

// stageRank returns the stage's index in StageOrder (len(StageOrder) for
// unknown stages, which sort last).
func stageRank(stage string) int {
	for i, s := range StageOrder {
		if s == stage {
			return i
		}
	}
	return len(StageOrder)
}

// overlayStage reports whether the stage's spans overlap other stages
// (injected-fault latency) rather than partitioning the request's wall.
func overlayStage(stage string) bool {
	switch stage {
	case "fault_stall", "fault_slow_trial", "oracle_spike":
		return true
	}
	return false
}

// queueStage reports whether the stage is ingress-side (time spent
// getting to the matcher) as opposed to compute (time spent matching).
func queueStage(stage string) bool {
	switch stage {
	case "admit", "queue_wait", "release":
		return true
	}
	return false
}

// StageContrib is one stage's share of a request's critical path.
type StageContrib struct {
	Stage string `json:"stage"`
	Ns    int64  `json:"ns"`
}

// RequestPath is one request's critical-path decomposition plus its raw
// span tree (spans sorted by (StartNs, EndNs, ID)).
type RequestPath struct {
	Req      int64          `json:"req"`
	StartNs  int64          `json:"start_ns"`
	EndNs    int64          `json:"end_ns"`
	TotalNs  int64          `json:"total_ns"`
	Dominant string         `json:"dominant"`
	Contribs []StageContrib `json:"contribs"`
	Spans    []SpanRecord   `json:"-"`
}

// Contrib returns the request's contribution for one stage (0 when the
// stage is absent).
func (p *RequestPath) Contrib(stage string) int64 {
	for _, c := range p.Contribs {
		if c.Stage == stage {
			return c.Ns
		}
	}
	return 0
}

// StageStats is one stage's fleet-wide aggregate. Aggregate only through
// Attribution.Merge — the histogram inside follows the same merge
// discipline as the rest of the metrics stack.
type StageStats struct {
	Spans    int        // spans observed (including fleet-level Req < 0 spans)
	Requests int        // requests the stage contributed to
	Dominant int        // requests where this stage was the largest contributor
	TotalNs  int64      // summed contribution over all requests
	Contrib  *Histogram // per-request contribution, ns
}

// Attribution is the fleet-wide critical-path aggregate over a trace.
// Build with NewAttribution/Analyze and combine only via Merge.
type Attribution struct {
	Requests  int   // requests with at least one span
	QueueNs   int64 // summed admit + queue_wait + release contributions
	ComputeNs int64 // summed match + phase1 + repair contributions
	OtherNs   int64 // summed residual (unattributed) wall time
	Total     *Histogram
	Stages    map[string]*StageStats
}

// NewAttribution returns an empty aggregate.
func NewAttribution() *Attribution {
	return &Attribution{Total: NewHistogram(), Stages: map[string]*StageStats{}}
}

// stage returns (creating if needed) the named stage's aggregate.
func (a *Attribution) stage(name string) *StageStats {
	st := a.Stages[name]
	if st == nil {
		st = &StageStats{Contrib: NewHistogram()}
		a.Stages[name] = st
	}
	return st
}

// StageNames returns the stages present, in StageOrder (unknown stages
// last, alphabetical).
func (a *Attribution) StageNames() []string {
	names := make([]string, 0, len(a.Stages))
	for n := range a.Stages {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		ri, rj := stageRank(names[i]), stageRank(names[j])
		if ri != rj {
			return ri < rj
		}
		return names[i] < names[j]
	})
	return names
}

// Merge folds o into a: counters and totals add, histograms merge.
// Merging per-slice attributions equals analyzing the concatenated
// traces. A nil o is a no-op.
func (a *Attribution) Merge(o *Attribution) {
	if o == nil {
		return
	}
	a.Requests += o.Requests
	a.QueueNs += o.QueueNs
	a.ComputeNs += o.ComputeNs
	a.OtherNs += o.OtherNs
	a.Total.Merge(o.Total)
	for name, os := range o.Stages {
		st := a.stage(name)
		st.Spans += os.Spans
		st.Requests += os.Requests
		st.Dominant += os.Dominant
		st.TotalNs += os.TotalNs
		st.Contrib.Merge(os.Contrib)
	}
}

// Analyze decomposes a drained trace: the fleet-wide attribution plus
// each request's path, sorted by request ID. Fleet-level spans (Req < 0,
// e.g. flush and oracle_spike) count toward their stage's span totals
// but belong to no request path.
func Analyze(tr *Trace) (*Attribution, []RequestPath) {
	a := NewAttribution()
	byReq := map[int64][]SpanRecord{}
	for _, sp := range tr.Spans {
		a.stage(sp.Stage).Spans++
		if sp.Req >= 0 {
			byReq[sp.Req] = append(byReq[sp.Req], sp)
		}
	}
	reqs := make([]int64, 0, len(byReq))
	for req := range byReq {
		reqs = append(reqs, req)
	}
	sort.Slice(reqs, func(i, j int) bool { return reqs[i] < reqs[j] })

	paths := make([]RequestPath, 0, len(reqs))
	for _, req := range reqs {
		p := analyzeRequest(req, byReq[req])
		a.Requests++
		a.Total.Record(p.TotalNs)
		attributed := int64(0)
		for _, c := range p.Contribs {
			st := a.stage(c.Stage)
			st.Requests++
			st.TotalNs += c.Ns
			st.Contrib.Record(c.Ns)
			if c.Stage == p.Dominant {
				st.Dominant++
			}
			switch {
			case overlayStage(c.Stage):
				// excluded from the wall partition
			case queueStage(c.Stage):
				a.QueueNs += c.Ns
				attributed += c.Ns
			default:
				a.ComputeNs += c.Ns
				attributed += c.Ns
			}
		}
		if rest := p.TotalNs - attributed; rest > 0 {
			a.OtherNs += rest
			st := a.stage("other")
			st.Requests++
			st.TotalNs += rest
			st.Contrib.Record(rest)
		}
		paths = append(paths, p)
	}
	return a, paths
}

// analyzeRequest decomposes one request's spans per the package rules.
func analyzeRequest(req int64, spans []SpanRecord) RequestPath {
	sort.Slice(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.StartNs != b.StartNs {
			return a.StartNs < b.StartNs
		}
		if a.EndNs != b.EndNs {
			return a.EndNs < b.EndNs
		}
		return a.ID < b.ID
	})
	start, end := spans[0].StartNs, spans[0].EndNs
	sums := map[string]int64{}
	var phase1Max, matchDur int64
	for _, sp := range spans {
		if sp.StartNs < start {
			start = sp.StartNs
		}
		if sp.EndNs > end {
			end = sp.EndNs
		}
		d := sp.DurationNs()
		if d < 0 {
			d = 0
		}
		switch sp.Stage {
		case "phase1":
			if d > phase1Max {
				phase1Max = d
			}
		case "match":
			matchDur += d
		default:
			sums[sp.Stage] += d
		}
	}
	if phase1Max > 0 {
		sums["phase1"] = phase1Max
	}
	if matchDur > 0 {
		// Self time: the phase-1 fan-out is nested inside the match span.
		if self := matchDur - phase1Max; self > 0 {
			sums["match"] = self
		} else {
			sums["match"] = 0
		}
	}

	p := RequestPath{Req: req, StartNs: start, EndNs: end, TotalNs: end - start, Spans: spans}
	names := make([]string, 0, len(sums))
	for n := range sums {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		ri, rj := stageRank(names[i]), stageRank(names[j])
		if ri != rj {
			return ri < rj
		}
		return names[i] < names[j]
	})
	for _, n := range names {
		p.Contribs = append(p.Contribs, StageContrib{Stage: n, Ns: sums[n]})
		if overlayStage(n) {
			continue
		}
		if p.Dominant == "" || sums[n] > p.Contrib(p.Dominant) {
			p.Dominant = n
		}
	}
	return p
}
