package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Kind is a request lifecycle event type. The vocabulary follows a request
// through the pipeline: generated (left the workload source) → admitted
// (stamped into the gateway's total order) → queued (entered its shard
// admission queue) → released (handed from the gateway to the engine) →
// trialed (a shard ran its trial insertions) → matched / rejected / shed →
// completed (dropped off).
type Kind uint8

// Lifecycle event kinds. Arg carries the kind-specific detail noted per
// kind.
const (
	KindGenerated Kind = iota // Arg: 0
	KindAdmitted              // Arg: admission Lamport tick
	KindQueued                // Arg: admission queue index
	KindReleased              // Arg: gateway residence wall time, ns
	KindTrialed               // Arg: candidate vehicles trialed by this shard
	KindMatched               // Arg: winning vehicle ID
	KindRejected              // Arg: -1
	KindShed                  // Arg: shed reason (ShedReason* constants)
	KindCompleted             // Arg: serving vehicle ID
)

// Shed reasons carried in a KindShed event's Arg.
const (
	ShedReasonDeadlineAdmit   = 1 // window blown at admission
	ShedReasonDeadlineRelease = 2 // window blown while queued, caught at release
	ShedReasonOverflow        = 3 // evicted from a full admission queue
	ShedReasonAdaptive        = 4 // refused at admission by the adaptive controller
	ShedReasonWallSLO         = 5 // gateway residence exceeded the wall-clock SLO at release
)

func (k Kind) String() string {
	switch k {
	case KindGenerated:
		return "generated"
	case KindAdmitted:
		return "admitted"
	case KindQueued:
		return "queued"
	case KindReleased:
		return "released"
	case KindTrialed:
		return "trialed"
	case KindMatched:
		return "matched"
	case KindRejected:
		return "rejected"
	case KindShed:
		return "shed"
	case KindCompleted:
		return "completed"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one stamped lifecycle event. Wall is nanoseconds since the
// tracer's epoch, T the simulated time the event refers to, Src the
// emitting ring, and Seq the ring-local emission counter — (Wall, Src,
// Seq) totally orders a drain.
type Event struct {
	Req  int64
	Kind Kind
	T    float64 // simulated seconds
	Arg  int64
	Wall int64 // ns since tracer epoch
	Src  int32
	Seq  uint64
}

// Tracer captures request lifecycle events into per-writer ring buffers.
// Each pipeline stage that emits events owns one Ring (per producer, per
// shard, per drainer), so emission takes no locks; the rings retain the
// most recent RingCap events each and count what they overwrote, and
// Drain serializes everything retained to a JSONL sink.
//
// A nil *Tracer is the disabled state: Ring returns a nil *Ring, whose
// Emit is a no-op, so the pipeline threads trace handles unconditionally
// and pays one nil check per event when tracing is off. Tracing changes
// no control flow, so runs with tracing enabled produce bit-identical
// assignments to runs without (the ingress equivalence tests pin this).
type Tracer struct {
	epoch   time.Time
	ringCap int

	mu     sync.Mutex
	rings  []*Ring
	labels []string
}

// DefaultRingCap is the per-ring event retention when NewTracer is given
// a nonpositive capacity.
const DefaultRingCap = 4096

// NewTracer builds a tracer whose rings each retain the last ringCap
// events (DefaultRingCap when <= 0).
func NewTracer(ringCap int) *Tracer {
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	return &Tracer{epoch: time.Now(), ringCap: ringCap}
}

// Ring registers a new single-writer ring under the given label
// ("producer-3", "shard-0", "drain", ...). Safe to call concurrently.
// On a nil tracer it returns nil — the no-op ring.
func (t *Tracer) Ring(label string) *Ring {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := &Ring{
		tr: t, id: int32(len(t.rings)),
		buf:  make([]Event, t.ringCap),
		sbuf: make([]Span, t.ringCap),
	}
	t.rings = append(t.rings, r)
	t.labels = append(t.labels, label)
	return r
}

// Ring is one writer's event buffer. Exactly one goroutine at a time may
// Emit on a ring (the pipeline's stages are single-writer by
// construction: one producer goroutine, one drainer, one goroutine per
// shard per fan-out). A nil Ring ignores Emit — the tracing-off state.
type Ring struct {
	tr   *Tracer
	id   int32
	buf  []Event
	seq  uint64 // total events emitted; buf[seq % len(buf)] is next
	sbuf []Span
	sseq uint64 // total spans emitted; sbuf[sseq % len(sbuf)] is next
}

// Emit records one event. No-op on a nil ring.
func (r *Ring) Emit(k Kind, req int64, simT float64, arg int64) {
	if r == nil {
		return
	}
	r.buf[r.seq%uint64(len(r.buf))] = Event{
		Req:  req,
		Kind: k,
		T:    simT,
		Arg:  arg,
		Wall: int64(time.Since(r.tr.epoch)),
		Src:  r.id,
		Seq:  r.seq,
	}
	r.seq++
}

// jsonEvent is the JSONL serialization of an Event.
type jsonEvent struct {
	WallNs int64   `json:"wall_ns"`
	Src    string  `json:"src"`
	Seq    uint64  `json:"seq"`
	Event  string  `json:"event"`
	Req    int64   `json:"req"`
	T      float64 `json:"t"`
	Arg    int64   `json:"arg"`
}

// drainRow is one serialized record (event or span) with its sort key.
// Spans sort by their end offset; on a (wall, src) tie events come
// before spans, so the record order is total and deterministic for a
// given ring state.
type drainRow struct {
	wall   int64
	src    int32
	isSpan bool
	seq    uint64
	ev     Event
	sp     Span
}

func rowLess(a, b drainRow) bool {
	if a.wall != b.wall {
		return a.wall < b.wall
	}
	if a.src != b.src {
		return a.src < b.src
	}
	if a.isSpan != b.isSpan {
		return !a.isSpan
	}
	return a.seq < b.seq
}

// Drain serializes every retained event and span, sorted by (Wall, Src,
// events-before-spans, Seq) — a span's wall column is its end offset —
// as one JSON object per line, and reports how many records were written
// and how many had been overwritten in their rings before the drain
// (dropped). Call it only while the writers are quiescent — after the
// run, or between fan-outs from the driving goroutine. Nil-safe: a nil
// tracer drains nothing. ReadTrace parses the output back.
func (t *Tracer) Drain(w io.Writer) (written, dropped int, err error) {
	if t == nil {
		return 0, 0, nil
	}
	t.mu.Lock()
	rings := append([]*Ring(nil), t.rings...)
	labels := append([]string(nil), t.labels...)
	t.mu.Unlock()

	var rows []drainRow
	for _, r := range rings {
		n, retained := r.seq, r.seq
		if cap := uint64(len(r.buf)); retained > cap {
			retained = cap
		}
		dropped += int(n - retained)
		for i := n - retained; i < n; i++ {
			e := r.buf[i%uint64(len(r.buf))]
			rows = append(rows, drainRow{wall: e.Wall, src: e.Src, seq: e.Seq, ev: e})
		}
		n, retained = r.sseq, r.sseq
		if cap := uint64(len(r.sbuf)); retained > cap {
			retained = cap
		}
		dropped += int(n - retained)
		for i := n - retained; i < n; i++ {
			s := r.sbuf[i%uint64(len(r.sbuf))]
			rows = append(rows, drainRow{wall: s.End, src: s.Src, isSpan: true, seq: s.Seq, sp: s})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rowLess(rows[i], rows[j]) })

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, row := range rows {
		var rec any
		if row.isSpan {
			s := row.sp
			rec = jsonSpan{
				WallNs: s.End, Src: labels[s.Src], Seq: s.Seq,
				Span: s.Stage.String(), ID: s.ID, Parent: s.Parent,
				Req: s.Req, T: s.T, Arg: s.Arg, StartNs: s.Start,
			}
		} else {
			e := row.ev
			rec = jsonEvent{
				WallNs: e.Wall, Src: labels[e.Src], Seq: e.Seq,
				Event: e.Kind.String(), Req: e.Req, T: e.T, Arg: e.Arg,
			}
		}
		if err := enc.Encode(rec); err != nil {
			return written, dropped, err
		}
		written++
	}
	return written, dropped, bw.Flush()
}
