package obs

import (
	"sync"
	"time"
)

// SLOTracker is a rolling error-budget account for a latency SLO. The
// objective is "at least `objective` of requests are good" (good = the
// gateway released them within the wall-clock SLO); every outcome the
// pipeline observes debits or spares the error budget:
//
//   - good: released with residence <= the wall SLO;
//   - bad: released late, shed at handoff for blowing the wall SLO, or
//     refused by the adaptive admission controller (a shed rider is a
//     broken promise too).
//
// Lifetime counters answer "how much of the total budget is consumed";
// a short rolling window answers "how fast are we burning right now".
// The burn rate is the standard multi-window SLO signal: the window's
// bad fraction divided by the allowed fraction (1 - objective), so 1.0
// means exactly on budget, 10 means burning ten times too fast, and 0
// means a clean window.
//
// Concurrency: Observe is mutex-guarded — it is called from the gateway
// drainer per release and from producer goroutines on admission sheds.
// All methods are nil-safe no-ops so the pipeline threads the handle
// unconditionally, like Live.
type SLOTracker struct {
	objective float64
	window    time.Duration
	slot      time.Duration

	mu      sync.Mutex
	good    int64 // lifetime
	bad     int64
	slots   []sloSlot // rolling ring of window/len(slots) buckets
	cur     int       // index of the active slot
	curEnd  time.Time // active slot's end
	started bool
}

type sloSlot struct{ good, bad int64 }

// DefaultSLOWindow is the rolling burn-rate window when NewSLOTracker is
// given a nonpositive one.
const DefaultSLOWindow = 30 * time.Second

// NewSLOTracker builds a tracker for the given objective (fraction of
// requests that must be good, clamped into [0.5, 0.9999]; e.g. 0.99 =
// a 1% error budget) over a rolling window (DefaultSLOWindow when <= 0)
// split into 10 slots.
func NewSLOTracker(objective float64, window time.Duration) *SLOTracker {
	if objective < 0.5 {
		objective = 0.5
	}
	if objective > 0.9999 {
		objective = 0.9999
	}
	if window <= 0 {
		window = DefaultSLOWindow
	}
	const slots = 10
	return &SLOTracker{
		objective: objective,
		window:    window,
		slot:      window / slots,
		slots:     make([]sloSlot, slots),
	}
}

// Objective returns the configured good-fraction target (0 for nil).
func (t *SLOTracker) Objective() float64 {
	if t == nil {
		return 0
	}
	return t.objective
}

// rotate retires slots that fell out of the rolling window. Caller holds
// mu.
func (t *SLOTracker) rotate(now time.Time) {
	if !t.started {
		t.started = true
		t.curEnd = now.Add(t.slot)
		return
	}
	for !now.Before(t.curEnd) {
		t.cur = (t.cur + 1) % len(t.slots)
		t.slots[t.cur] = sloSlot{}
		t.curEnd = t.curEnd.Add(t.slot)
		// A long quiet gap: restart the window at now rather than
		// spinning through every elapsed slot.
		if now.Sub(t.curEnd) > t.window {
			for i := range t.slots {
				t.slots[i] = sloSlot{}
			}
			t.curEnd = now.Add(t.slot)
		}
	}
}

// Observe records one outcome. Nil-safe.
func (t *SLOTracker) Observe(good bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.rotate(time.Now())
	if good {
		t.good++
		t.slots[t.cur].good++
	} else {
		t.bad++
		t.slots[t.cur].bad++
	}
	t.mu.Unlock()
}

// SLOSnapshot is one consistent read of the tracker.
type SLOSnapshot struct {
	Objective      float64 `json:"objective"`
	Good           int64   `json:"good"`
	Bad            int64   `json:"bad"`
	BudgetConsumed float64 `json:"budget_consumed"` // fraction of lifetime error budget spent
	WindowGood     int64   `json:"window_good"`
	WindowBad      int64   `json:"window_bad"`
	BurnRate       float64 `json:"burn_rate"` // window bad-fraction / (1 - objective)
}

// Snapshot reads the lifetime and rolling-window accounts. Nil-safe:
// zeros.
func (t *SLOTracker) Snapshot() SLOSnapshot {
	if t == nil {
		return SLOSnapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rotate(time.Now())
	s := SLOSnapshot{Objective: t.objective, Good: t.good, Bad: t.bad}
	for _, sl := range t.slots {
		s.WindowGood += sl.good
		s.WindowBad += sl.bad
	}
	allowed := 1 - t.objective
	if total := t.good + t.bad; total > 0 {
		s.BudgetConsumed = float64(t.bad) / (float64(total) * allowed)
	}
	if wt := s.WindowGood + s.WindowBad; wt > 0 {
		s.BurnRate = (float64(s.WindowBad) / float64(wt)) / allowed
	}
	return s
}

// BurnPerMille returns the current burn rate scaled by 1000 (1000 =
// burning exactly at budget), for the Live gauge. Nil-safe: 0.
func (t *SLOTracker) BurnPerMille() int64 {
	return int64(t.Snapshot().BurnRate * 1000)
}
