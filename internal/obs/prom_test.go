package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func expose(t *testing.T, fn func(*PromWriter)) string {
	t.Helper()
	var b strings.Builder
	pw := NewPromWriter(&b)
	fn(pw)
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestPromCounterAndGauge(t *testing.T) {
	got := expose(t, func(pw *PromWriter) {
		pw.Counter("rides_matched_total", "Matched requests.", 5, map[string]string{"mode": "batch"})
		pw.Gauge("rides_burn", "Burn rate.", 1.5, nil)
	})
	want := "# HELP rides_matched_total Matched requests.\n" +
		"# TYPE rides_matched_total counter\n" +
		`rides_matched_total{mode="batch"} 5` + "\n" +
		"# HELP rides_burn Burn rate.\n" +
		"# TYPE rides_burn gauge\n" +
		"rides_burn 1.5\n"
	if got != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", got, want)
	}
}

func TestPromLabelSortingAndEscaping(t *testing.T) {
	got := expose(t, func(pw *PromWriter) {
		pw.Counter("m", "h", 1, map[string]string{
			"z": "a\\b\"c\nd",
			"a": "plain",
		})
	})
	if !strings.Contains(got, `m{a="plain",z="a\\b\"c\nd"} 1`) {
		t.Fatalf("labels not sorted/escaped:\n%s", got)
	}
}

func TestPromHistogramBuckets(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{1, 1, 3, 1000} {
		h.Record(v)
	}
	got := expose(t, func(pw *PromWriter) {
		pw.Histogram("rides_wait_ns", "Gateway wait.", h, map[string]string{"shard": "0"})
	})
	// Small values sit in exact width-1 buckets (le = value); 1000 lands
	// in the [960, 1023] log-linear bucket. Bucket counts are cumulative.
	want := "# HELP rides_wait_ns Gateway wait.\n" +
		"# TYPE rides_wait_ns histogram\n" +
		`rides_wait_ns_bucket{shard="0",le="1"} 2` + "\n" +
		`rides_wait_ns_bucket{shard="0",le="3"} 3` + "\n" +
		`rides_wait_ns_bucket{shard="0",le="1023"} 4` + "\n" +
		`rides_wait_ns_bucket{shard="0",le="+Inf"} 4` + "\n" +
		`rides_wait_ns_sum{shard="0"} 1005` + "\n" +
		`rides_wait_ns_count{shard="0"} 4` + "\n"
	if got != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", got, want)
	}
}

func TestPromHistogramNilAndEmptySkeleton(t *testing.T) {
	for name, h := range map[string]*Histogram{"nil": nil, "empty": NewHistogram()} {
		got := expose(t, func(pw *PromWriter) {
			pw.Histogram("e", "h", h, nil)
		})
		want := "# HELP e h\n# TYPE e histogram\n" +
			`e_bucket{le="+Inf"} 0` + "\n" +
			"e_sum 0\ne_count 0\n"
		if got != want {
			t.Fatalf("%s histogram exposition:\n%s\nwant:\n%s", name, got, want)
		}
	}
}

func TestWantsProm(t *testing.T) {
	req := func(target, accept string) *http.Request {
		r := httptest.NewRequest("GET", target, nil)
		if accept != "" {
			r.Header.Set("Accept", accept)
		}
		return r
	}
	cases := []struct {
		target, accept string
		want           bool
	}{
		{"/metrics", "", false},
		{"/metrics?format=prom", "", true},
		{"/metrics", "text/plain;version=0.0.4;q=0.5,*/*;q=0.1", true},
		{"/metrics", "text/plain, application/json", true},
		{"/metrics", "application/json, text/plain", false},
		{"/metrics", "application/json", false},
	}
	for _, c := range cases {
		if got := wantsProm(req(c.target, c.accept)); got != c.want {
			t.Fatalf("wantsProm(%q, Accept=%q) = %v, want %v", c.target, c.accept, got, c.want)
		}
	}
}

func TestServeNegotiatesPromAndJSON(t *testing.T) {
	l := &Live{}
	l.AddMatched(3)
	s, err := Serve("127.0.0.1:0",
		func() any { return l.Snapshot() },
		func(pw *PromWriter) {
			pw.Counter("rides_matched_total", "Matched.", l.Matched.Load(), nil)
		})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	get := func(path, accept string) (string, string) {
		req, _ := http.NewRequest("GET", "http://"+s.Addr()+path, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s status = %d", path, resp.StatusCode)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics", "")
	if ct != "application/json" || !strings.Contains(body, `"matched": 3`) {
		t.Fatalf("plain /metrics: ct=%q body=%s", ct, body)
	}
	for _, variant := range []struct{ path, accept string }{
		{"/metrics?format=prom", ""},
		{"/metrics", "text/plain;version=0.0.4"},
		{"/metrics/prom", ""},
	} {
		body, ct := get(variant.path, variant.accept)
		if ct != promContentType {
			t.Fatalf("GET %s Accept=%q: content type = %q", variant.path, variant.accept, ct)
		}
		if !strings.Contains(body, "rides_matched_total 3") {
			t.Fatalf("GET %s: exposition missing counter:\n%s", variant.path, body)
		}
	}
}
