package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"
)

// BenchResult is the machine-readable record a benchmark emits as
// BENCH_<name>.json — the unit the ROADMAP's perf trajectory accumulates.
// Metrics holds the benchmark's own numbers (req/s, p99 latency, hit
// rates, ...) keyed by metric name; the envelope pins enough environment
// (Go version, GOMAXPROCS, CPU count, git SHA) to compare runs across
// commits and machines.
type BenchResult struct {
	Name       string             `json:"name"`
	UnixSec    int64              `json:"unix_sec"`
	GoVersion  string             `json:"go_version"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	NumCPU     int                `json:"num_cpu"`
	GitSHA     string             `json:"git_sha"`
	Metrics    map[string]float64 `json:"metrics"`
}

// NewBenchResult builds a result envelope for the named benchmark with
// the environment fields filled in.
func NewBenchResult(name string) *BenchResult {
	return &BenchResult{
		Name:       name,
		UnixSec:    time.Now().Unix(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GitSHA:     gitSHA(),
		Metrics:    map[string]float64{},
	}
}

// gitSHA resolves the commit under test: CI exports it (GITHUB_SHA, or
// BENCH_GIT_SHA as an explicit override), otherwise ask git, otherwise
// "unknown".
func gitSHA() string {
	for _, k := range []string{"BENCH_GIT_SHA", "GITHUB_SHA"} {
		if v := os.Getenv(k); v != "" {
			return v
		}
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// BenchDir returns the directory benchmark JSON should be written to, or
// "" when emission is disabled. Gated on the BENCH_JSON_DIR environment
// variable so a plain `go test -bench` stays side-effect free; CI sets it.
func BenchDir() string { return os.Getenv("BENCH_JSON_DIR") }

// WriteBench serializes r to <dir>/BENCH_<name>.json. Callers typically
// pass BenchDir() and skip the call when it is empty.
func WriteBench(dir string, r *BenchResult) error {
	if r.Name == "" {
		return fmt.Errorf("obs: bench result has no name")
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	return os.WriteFile(filepath.Join(dir, "BENCH_"+r.Name+".json"), b, 0o644)
}

// ValidateBench parses and schema-checks one BENCH_*.json payload,
// returning the result when it is well-formed. CI's benchmark smoke step
// runs this (via cmd/benchcheck) over every emitted file.
func ValidateBench(data []byte) (*BenchResult, error) {
	var r BenchResult
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("obs: bench json: %w", err)
	}
	switch {
	case r.Name == "":
		return nil, fmt.Errorf("obs: bench json: missing name")
	case r.UnixSec <= 0:
		return nil, fmt.Errorf("obs: bench json: missing unix_sec")
	case r.GoVersion == "":
		return nil, fmt.Errorf("obs: bench json: missing go_version")
	case r.GOMAXPROCS <= 0:
		return nil, fmt.Errorf("obs: bench json: missing gomaxprocs")
	case r.NumCPU <= 0:
		return nil, fmt.Errorf("obs: bench json: missing num_cpu")
	case r.GitSHA == "":
		return nil, fmt.Errorf("obs: bench json: missing git_sha")
	case len(r.Metrics) == 0:
		return nil, fmt.Errorf("obs: bench json: empty metrics")
	}
	for k, v := range r.Metrics {
		if v != v || v < 0 {
			return nil, fmt.Errorf("obs: bench json: metric %q is %v", k, v)
		}
	}
	return &r, nil
}
