package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile mirrors the metrics' historical rank convention on raw
// samples: the ceil(q*n)-th smallest.
func exactQuantile(sorted []int64, q float64) int64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return sorted[idx]
}

func TestHistogramSmallValuesExact(t *testing.T) {
	h := NewHistogram()
	var vals []int64
	for v := int64(0); v < 16; v++ {
		for i := int64(0); i <= v; i++ { // v+1 copies of v
			h.Record(v)
			vals = append(vals, v)
		}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	if h.Count() != uint64(len(vals)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(vals))
	}
	if h.Min() != 0 || h.Max() != 15 {
		t.Fatalf("min/max = %d/%d, want 0/15", h.Min(), h.Max())
	}
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		want := exactQuantile(vals, q)
		if got := h.Quantile(q); got != want {
			t.Errorf("Quantile(%g) = %d, want exact %d (small values are lossless)", q, got, want)
		}
	}
	var sum int64
	for _, v := range vals {
		sum += v
	}
	if h.Sum() != sum || h.Mean() != sum/int64(len(vals)) {
		t.Fatalf("sum/mean = %d/%d, want %d/%d", h.Sum(), h.Mean(), sum, sum/int64(len(vals)))
	}
}

func TestHistogramNegativeClampsToZero(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	if h.Count() != 1 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("negative record not clamped: %s", h)
	}
}

func TestHistogramEmptyAndNil(t *testing.T) {
	var nilH *Histogram
	for name, h := range map[string]*Histogram{"nil": nilH, "empty": NewHistogram()} {
		if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
			t.Errorf("%s histogram not all-zero", name)
		}
		if h.Quantile(0.99) != 0 {
			t.Errorf("%s histogram quantile != 0", name)
		}
		if s := h.Summary(); s != (Summary{}) {
			t.Errorf("%s summary = %+v, want zero", name, s)
		}
	}
}

// TestHistogramQuantileAccuracy is the documented-accuracy property test:
// across seeds and several value distributions, every reported quantile
// must land within BucketError (half the holding bucket's width, i.e. the
// 12.5% relative-error bound) of the exact sample quantile.
func TestHistogramQuantileAccuracy(t *testing.T) {
	quantiles := []float64{0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1}
	distributions := map[string]func(r *rand.Rand) int64{
		"uniform-small": func(r *rand.Rand) int64 { return r.Int63n(100) },
		"uniform-wide":  func(r *rand.Rand) int64 { return r.Int63n(10_000_000_000) },
		"exponential":   func(r *rand.Rand) int64 { return int64(r.ExpFloat64() * 5e6) },
		"lognormal":     func(r *rand.Rand) int64 { return int64(math.Exp(r.NormFloat64()*2 + 10)) },
		"heavy-tail": func(r *rand.Rand) int64 {
			if r.Intn(100) == 0 {
				return r.Int63n(1 << 40)
			}
			return r.Int63n(1000)
		},
	}
	for name, gen := range distributions {
		for seed := int64(1); seed <= 8; seed++ {
			r := rand.New(rand.NewSource(seed))
			h := NewHistogram()
			n := 1000 + r.Intn(4000)
			vals := make([]int64, n)
			for i := range vals {
				v := gen(r)
				vals[i] = v
				h.Record(v)
			}
			sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
			for _, q := range quantiles {
				want := exactQuantile(vals, q)
				got := h.Quantile(q)
				if tol := BucketError(want); got < want-tol || got > want+tol {
					t.Errorf("%s seed=%d n=%d: Quantile(%g) = %d, exact %d, tolerance ±%d",
						name, seed, n, q, got, want, tol)
				}
			}
			if h.Min() != vals[0] || h.Max() != vals[n-1] {
				t.Errorf("%s seed=%d: min/max = %d/%d, want exact %d/%d",
					name, seed, h.Min(), h.Max(), vals[0], vals[n-1])
			}
		}
	}
}

// TestHistogramMergeIsUnion checks the merge law the sharded metrics rely
// on: merging per-shard histograms is identical to recording the union of
// their samples, for any split, and merge is commutative.
func TestHistogramMergeIsUnion(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		r := rand.New(rand.NewSource(seed))
		whole := NewHistogram()
		parts := []*Histogram{NewHistogram(), NewHistogram(), NewHistogram()}
		for i := 0; i < 3000; i++ {
			v := int64(r.ExpFloat64() * 1e6)
			whole.Record(v)
			parts[r.Intn(len(parts))].Record(v)
		}
		ab := parts[0].Clone()
		ab.Merge(parts[1])
		ab.Merge(parts[2])
		if !ab.Equal(whole) {
			t.Fatalf("seed %d: merged parts != whole: %s vs %s", seed, ab, whole)
		}
		ba := parts[2].Clone()
		ba.Merge(parts[0])
		ba.Merge(parts[1])
		if !ba.Equal(ab) {
			t.Fatalf("seed %d: merge is not commutative", seed)
		}
		// Merging an empty or nil histogram changes nothing.
		ab.Merge(NewHistogram())
		ab.Merge(nil)
		if !ab.Equal(whole) {
			t.Fatalf("seed %d: empty/nil merge changed the histogram", seed)
		}
	}
}

func TestHistogramCloneAndCopyFrom(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{3, 17, 200, 1 << 30} {
		h.Record(v)
	}
	c := h.Clone()
	if !c.Equal(h) {
		t.Fatal("clone differs from original")
	}
	c.Record(99)
	if c.Equal(h) {
		t.Fatal("clone shares state with original")
	}
	c.CopyFrom(h)
	if !c.Equal(h) {
		t.Fatal("CopyFrom did not restore equality")
	}
	c.CopyFrom(nil)
	if c.Count() != 0 {
		t.Fatal("CopyFrom(nil) should empty the histogram")
	}
}

func TestBucketErrorBound(t *testing.T) {
	for v := int64(0); v < 16; v++ {
		if BucketError(v) != 0 {
			t.Fatalf("BucketError(%d) = %d, want 0 (exact range)", v, BucketError(v))
		}
	}
	// Relative error bound: half-width / value <= 1/(2*subCount)... the
	// documented bound is width/lo <= 1/subCount = 12.5%.
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		v := int64(16) + r.Int63n(1<<50)
		lo, width := bucketBounds(bucketIndex(v))
		if v < lo || v >= lo+width {
			t.Fatalf("value %d outside its bucket [%d, %d)", v, lo, lo+width)
		}
		if float64(width) > float64(lo)/float64(subCount)+1e-9 {
			t.Fatalf("bucket width %d exceeds 12.5%% of lo %d", width, lo)
		}
	}
}

// TestQuantileEdgeCases pins the documented edge behavior: nil/empty
// report 0, out-of-range q clamps to the exact extremes, NaN reports 0,
// and a single-bucket distribution is constant across in-range q.
func TestQuantileEdgeCases(t *testing.T) {
	var nilH *Histogram
	empty := NewHistogram()
	for _, q := range []float64{-1, 0, 0.5, 1, 2, math.NaN()} {
		if nilH.Quantile(q) != 0 || empty.Quantile(q) != 0 {
			t.Fatalf("nil/empty Quantile(%v) != 0", q)
		}
	}

	h := NewHistogram()
	for _, v := range []int64{7, 100, 5000} {
		h.Record(v)
	}
	if got := h.Quantile(0); got != 7 {
		t.Fatalf("Quantile(0) = %d, want the exact minimum 7", got)
	}
	if got := h.Quantile(-3); got != 7 {
		t.Fatalf("Quantile(-3) = %d, want clamp to the minimum", got)
	}
	if got := h.Quantile(1); got != 5000 {
		t.Fatalf("Quantile(1) = %d, want the exact maximum 5000", got)
	}
	if got := h.Quantile(1.7); got != 5000 {
		t.Fatalf("Quantile(1.7) = %d, want clamp to the maximum", got)
	}
	if got := h.Quantile(math.NaN()); got != 0 {
		t.Fatalf("Quantile(NaN) = %d, want 0", got)
	}

	// All mass in one bucket: every in-range q reports the same value,
	// the bucket's midpoint clamped to [Min, Max].
	single := NewHistogram()
	for i := 0; i < 10; i++ {
		single.Record(1000)
	}
	want := single.Quantile(0.5)
	for _, q := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
		if got := single.Quantile(q); got != want {
			t.Fatalf("single-bucket Quantile(%v) = %d, want constant %d", q, got, want)
		}
	}
	if want < single.Min() || want > single.Max() {
		t.Fatalf("single-bucket quantile %d outside [%d, %d]", want, single.Min(), single.Max())
	}
}

func TestBucketIndexMonotonic(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 15, 16, 17, 31, 32, 100, 1 << 20, 1<<62 + 12345} {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d", v)
		}
		if idx < 0 || idx >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range [0,%d)", v, idx, numBuckets)
		}
		prev = idx
	}
}
