package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// Prometheus text exposition (format version 0.0.4, which OpenMetrics
// scrapers also accept) for the obs metric surface, so a stock
// Prometheus can scrape the same endpoint the JSON consumers read.
// Counters and gauges map directly; the log-linear Histogram is exported
// as a native histogram metric family — cumulative `_bucket{le="..."}`
// series over the non-empty buckets plus `+Inf`, `_sum`, and `_count` —
// so PromQL's histogram_quantile sees the true bucket layout instead of
// a lossy quantile digest.

// promContentType is the scrape response content type.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// wantsProm reports whether an HTTP request to /metrics asked for the
// Prometheus exposition instead of JSON: ?format=prom, or an Accept
// header that names text/plain before application/json (what a
// Prometheus scraper sends).
func wantsProm(req *http.Request) bool {
	if req.URL.Query().Get("format") == "prom" {
		return true
	}
	accept := req.Header.Get("Accept")
	plain := strings.Index(accept, "text/plain")
	jsonAt := strings.Index(accept, "application/json")
	return plain >= 0 && (jsonAt < 0 || plain < jsonAt)
}

// PromWriter renders metric families in the Prometheus text format. Use
// one writer per scrape; families are written in call order, and Flush
// must be called last. Metric and label names are the caller's
// responsibility ([a-zA-Z_:][a-zA-Z0-9_:]*); label values are escaped
// here.
type PromWriter struct {
	w   *bufio.Writer
	err error
}

// NewPromWriter wraps w for one exposition.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: bufio.NewWriter(w)}
}

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

// Flush flushes the buffered exposition and returns the first error.
func (p *PromWriter) Flush() error {
	if err := p.w.Flush(); err != nil && p.err == nil {
		p.err = err
	}
	return p.err
}

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	if _, err := fmt.Fprintf(p.w, format, args...); err != nil {
		p.err = err
	}
}

// escapeLabelValue escapes a label value per the text format: backslash,
// double quote, and newline.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// labelString renders a label set as {k="v",...} with keys sorted for a
// deterministic exposition ("" when empty).
func labelString(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, k, escapeLabelValue(labels[k]))
	}
	b.WriteByte('}')
	return b.String()
}

func (p *PromWriter) header(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Counter writes one counter family with a single series.
func (p *PromWriter) Counter(name, help string, v int64, labels map[string]string) {
	p.header(name, help, "counter")
	p.printf("%s%s %d\n", name, labelString(labels), v)
}

// Gauge writes one gauge family with a single series.
func (p *PromWriter) Gauge(name, help string, v float64, labels map[string]string) {
	p.header(name, help, "gauge")
	p.printf("%s%s %g\n", name, labelString(labels), v)
}

// Histogram writes one histogram family from an obs Histogram: a
// cumulative `le` bucket series per non-empty log-linear bucket (le is
// the bucket's inclusive upper bound), the mandatory `le="+Inf"` series,
// and the exact `_sum` and `_count`. Empty and nil histograms export
// just the +Inf/zero skeleton so the family is always present. The
// caller must read the histogram at quiescence or hand in a Clone —
// PromWriter does not add locking the type itself doesn't have.
func (p *PromWriter) Histogram(name, help string, h *Histogram, labels map[string]string) {
	p.header(name, help, "histogram")
	base := labelString(labels)
	// Re-render labels with le appended, preserving sorted-key order of
	// the base set (le goes last for readability; order is not
	// significant to scrapers).
	series := func(le string, cum uint64) {
		if base == "" {
			p.printf("%s_bucket{le=\"%s\"} %d\n", name, le, cum)
			return
		}
		p.printf("%s_bucket%s %d\n", name,
			base[:len(base)-1]+`,le="`+le+`"}`, cum)
	}
	var cum uint64
	if h != nil {
		for i := 0; i < numBuckets; i++ {
			c := h.counts[i]
			if c == 0 {
				continue
			}
			cum += c
			lo, width := bucketBounds(i)
			series(fmt.Sprintf("%d", lo+width-1), cum)
		}
	}
	series("+Inf", cum)
	p.printf("%s_sum%s %d\n%s_count%s %d\n", name, base, h.Sum(), name, base, h.Count())
}
