package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Causal spans: in addition to point-in-time lifecycle events, every ring
// can record parent-linked intervals — the stages a request's wall time
// was actually spent in. The span tree for one request follows the
// pipeline:
//
//	request (synthetic root, never emitted)
//	├── admit        producer-side admission (stamp, shed checks, enqueue)
//	├── queue_wait   admission to drain pop — gateway residency
//	├── release      drain-side handoff processing (deadline/SLO checks)
//	├── match        immediate mode: fan-out + reduce + commit
//	│   └── phase1   per-shard trial insertions (one span per shard)
//	├── phase1       batch mode: per-shard phase-1 trials (parent = root)
//	├── repair       batch mode: incremental conflict-repair retrial
//	└── fault_*      injected stalls/slow trials (internal/faults)
//
// Span IDs are pure functions of (request, stage, instance) — SpanID —
// so writers on different rings parent-link without sharing any state:
// the drainer can parent a queue_wait span to the same root the engine
// parents its match span to, with no coordination and no control-flow
// change. Emission follows the same single-writer ring discipline as
// events, a nil ring ignores everything, and Drain interleaves spans
// with events in one (wall, src, seq) order — so traced runs stay
// bit-identical to untraced ones.
type Span struct {
	ID     uint64
	Parent uint64
	Req    int64
	Stage  Stage
	T      float64 // simulated seconds
	Arg    int64   // stage-specific detail (candidates trialed, queue index, ...)
	Start  int64   // ns since tracer epoch
	End    int64   // ns since tracer epoch
	Src    int32
	Seq    uint64
}

// Stage identifies which pipeline stage a span's interval covers.
type Stage uint8

// Span stages. StageRequest is the synthetic per-request root — it is
// never emitted; analyzers materialize it from RootSpanID parent links.
const (
	StageRequest Stage = iota
	StageAdmit
	StageQueueWait
	StageRelease
	StageMatch
	StageFlush
	StagePhase1
	StageRepair
	StageFaultStall
	StageFaultSlow
	StageOracleSpike
)

func (s Stage) String() string {
	switch s {
	case StageRequest:
		return "request"
	case StageAdmit:
		return "admit"
	case StageQueueWait:
		return "queue_wait"
	case StageRelease:
		return "release"
	case StageMatch:
		return "match"
	case StageFlush:
		return "flush"
	case StagePhase1:
		return "phase1"
	case StageRepair:
		return "repair"
	case StageFaultStall:
		return "fault_stall"
	case StageFaultSlow:
		return "fault_slow_trial"
	case StageOracleSpike:
		return "oracle_spike"
	}
	return fmt.Sprintf("Stage(%d)", int(s))
}

// spanSalt is the splitmix64 increment, reused as a mixing constant so
// distinct (req, stage, inst) triples land far apart before finalizing.
const spanSalt = 0x9e3779b97f4a7c15

// splitmix64 is the same finalizer the cache stripe hash and the fault
// injector use.
func splitmix64(x uint64) uint64 {
	x += spanSalt
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SpanID derives the deterministic span ID for one (request, stage,
// instance) occurrence — e.g. inst is the shard index for phase1 spans.
// Any writer can therefore compute the ID of a span another ring emits
// (or the parent link to it) without coordination. IDs are never 0: 0 is
// the no-parent sentinel.
func SpanID(req int64, stage Stage, inst int64) uint64 {
	return splitmix64(uint64(req)*spanSalt^uint64(stage)<<56^uint64(inst)) | 1
}

// RootSpanID is the synthetic per-request root every top-level span
// parents to.
func RootSpanID(req int64) uint64 { return SpanID(req, StageRequest, 0) }

// SpanStart captures the current wall offset (ns since the tracer epoch)
// for a span about to be opened. 0 on a nil ring — tracing off — which
// callers simply thread through to EmitSpan, itself a no-op then, so the
// disabled path stays one nil check with no time syscall.
func (r *Ring) SpanStart() int64 {
	if r == nil {
		return 0
	}
	return int64(time.Since(r.tr.epoch))
}

// EmitSpan records one span. The caller fills ID, Parent, Stage, Req, T,
// Arg, and Start (from SpanStart); End defaults to now when zero, so
// most call sites close the span at the emit instant and only spans
// measured against an earlier captured offset (queue_wait) set it
// explicitly. Src and Seq are stamped here. No-op on a nil ring.
func (r *Ring) EmitSpan(sp Span) {
	if r == nil {
		return
	}
	if sp.End == 0 {
		sp.End = int64(time.Since(r.tr.epoch))
	}
	sp.Src = r.id
	sp.Seq = r.sseq
	r.sbuf[r.sseq%uint64(len(r.sbuf))] = sp
	r.sseq++
}

// jsonSpan is the JSONL serialization of a Span. WallNs is the span's
// end, so a drained file stays globally sorted by one wall column across
// events and spans.
type jsonSpan struct {
	WallNs  int64   `json:"wall_ns"`
	Src     string  `json:"src"`
	Seq     uint64  `json:"seq"`
	Span    string  `json:"span"`
	ID      uint64  `json:"id"`
	Parent  uint64  `json:"parent"`
	Req     int64   `json:"req"`
	T       float64 `json:"t"`
	Arg     int64   `json:"arg"`
	StartNs int64   `json:"start_ns"`
}

// EventRecord is one parsed event line of a drained trace. Src is the
// ring label (the numeric ring ID does not survive serialization).
type EventRecord struct {
	WallNs int64
	Src    string
	Seq    uint64
	Event  string
	Req    int64
	T      float64
	Arg    int64
}

// SpanRecord is one parsed span line of a drained trace.
type SpanRecord struct {
	ID      uint64
	Parent  uint64
	Req     int64
	Stage   string
	T       float64
	Arg     int64
	StartNs int64
	EndNs   int64
	Src     string
	Seq     uint64
}

// DurationNs is the span's wall duration.
func (s SpanRecord) DurationNs() int64 { return s.EndNs - s.StartNs }

// Trace is a drained trace read back from JSONL: the inverse of
// Tracer.Drain, and the input format of the critical-path analyzer and
// cmd/tracetool. Slices preserve file order (the drain's global
// (wall, src, seq) order).
type Trace struct {
	Events []EventRecord
	Spans  []SpanRecord
}

// jsonLine is the superset of jsonEvent and jsonSpan used to classify
// each line on read: exactly one of Event/Span is non-empty.
type jsonLine struct {
	WallNs  int64   `json:"wall_ns"`
	Src     string  `json:"src"`
	Seq     uint64  `json:"seq"`
	Event   string  `json:"event"`
	Span    string  `json:"span"`
	ID      uint64  `json:"id"`
	Parent  uint64  `json:"parent"`
	Req     int64   `json:"req"`
	T       float64 `json:"t"`
	Arg     int64   `json:"arg"`
	StartNs int64   `json:"start_ns"`
}

// ReadTrace parses a drained JSONL trace. Blank lines are skipped; a
// line that is valid JSON but neither an event nor a span, or not JSON
// at all, is an error naming the line number.
func ReadTrace(r io.Reader) (*Trace, error) {
	tr := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var jl jsonLine
		if err := json.Unmarshal(line, &jl); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", lineno, err)
		}
		switch {
		case jl.Span != "":
			tr.Spans = append(tr.Spans, SpanRecord{
				ID: jl.ID, Parent: jl.Parent, Req: jl.Req, Stage: jl.Span,
				T: jl.T, Arg: jl.Arg, StartNs: jl.StartNs, EndNs: jl.WallNs,
				Src: jl.Src, Seq: jl.Seq,
			})
		case jl.Event != "":
			tr.Events = append(tr.Events, EventRecord{
				WallNs: jl.WallNs, Src: jl.Src, Seq: jl.Seq, Event: jl.Event,
				Req: jl.Req, T: jl.T, Arg: jl.Arg,
			})
		default:
			return nil, fmt.Errorf("obs: trace line %d: neither event nor span", lineno)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: trace read: %w", err)
	}
	return tr, nil
}
