package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLiveNilSafe(t *testing.T) {
	var l *Live
	l.AddRequests(1)
	l.AddMatched(1)
	l.AddRejected(1)
	l.AddAdmitted(1)
	l.AddShedOverflow(1)
	l.AddShedDeadline(1)
	l.AddCompleted(1)
	l.AddFlushes(1)
	l.AddConflicts(1)
	l.SetBacklog(5)
	if s := l.Snapshot(); s != (LiveSnapshot{}) {
		t.Fatalf("nil Live snapshot = %+v, want zero", s)
	}
}

func TestLiveCountersConcurrent(t *testing.T) {
	l := &Live{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.AddRequests(1)
				l.AddMatched(1)
			}
		}()
	}
	wg.Wait()
	s := l.Snapshot()
	if s.Requests != 8000 || s.Matched != 8000 {
		t.Fatalf("snapshot = %+v, want 8000 requests/matched", s)
	}
}

// syncBuffer guards a bytes.Buffer: the reporter goroutine writes while
// the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestReporterEmitsIntervalLines(t *testing.T) {
	l := &Live{}
	l.AddRequests(7)
	var buf syncBuffer
	r := NewReporter(&buf, 10*time.Millisecond, func() any { return l.Snapshot() })
	time.Sleep(35 * time.Millisecond)
	r.Stop()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 2 { // a few ticks plus the final Stop line
		t.Fatalf("got %d report lines, want >= 2", len(lines))
	}
	for _, line := range lines {
		var rl struct {
			ElapsedMs int64        `json:"elapsed_ms"`
			Stats     LiveSnapshot `json:"stats"`
		}
		if err := json.Unmarshal([]byte(line), &rl); err != nil {
			t.Fatalf("report line %q is not JSON: %v", line, err)
		}
		if rl.Stats.Requests != 7 {
			t.Fatalf("report line carries requests=%d, want 7", rl.Stats.Requests)
		}
	}
	var nilR *Reporter
	nilR.Stop() // must not panic
}

// TestReporterStopFlushesOnceIdempotent: Stop writes exactly one final
// snapshot line — including when no interval ever elapsed — and repeated
// Stops add nothing.
func TestReporterStopFlushesOnceIdempotent(t *testing.T) {
	l := &Live{}
	l.AddRequests(3)
	var buf syncBuffer
	r := NewReporter(&buf, time.Hour, func() any { return l.Snapshot() })
	r.Stop()
	r.Stop()
	r.Stop()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d report lines after 3 Stops, want exactly 1 final flush:\n%s",
			len(lines), buf.String())
	}
	var rl struct {
		Stats LiveSnapshot `json:"stats"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rl); err != nil || rl.Stats.Requests != 3 {
		t.Fatalf("final line %q bad: %v", lines[0], err)
	}
}

func TestServeMetricsAndPprof(t *testing.T) {
	l := &Live{}
	l.AddMatched(3)
	s, err := Serve("127.0.0.1:0", func() any { return l.Snapshot() })
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	var snap LiveSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics body is not JSON: %v\n%s", err, body)
	}
	if snap.Matched != 3 {
		t.Fatalf("/metrics matched = %d, want 3", snap.Matched)
	}

	resp, err = http.Get("http://" + s.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", resp.StatusCode)
	}
}
