package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestNilRingSpanNoOps(t *testing.T) {
	var r *Ring
	if got := r.SpanStart(); got != 0 {
		t.Fatalf("nil SpanStart = %d, want 0", got)
	}
	r.EmitSpan(Span{ID: 1, Req: 1, Stage: StageMatch}) // must not panic
}

func TestSpanIDDeterministicNonzeroDistinct(t *testing.T) {
	seen := map[uint64]string{}
	add := func(name string, id uint64) {
		if id == 0 {
			t.Fatalf("%s: SpanID is 0 (the no-parent sentinel)", name)
		}
		if prev, dup := seen[id]; dup {
			t.Fatalf("SpanID collision: %s == %s", name, prev)
		}
		seen[id] = name
	}
	for req := int64(-1); req < 30; req++ {
		for _, st := range []Stage{StageRequest, StageAdmit, StageQueueWait, StageRelease, StageMatch, StageFlush, StagePhase1, StageRepair} {
			for inst := int64(0); inst < 4; inst++ {
				add(st.String(), SpanID(req, st, inst))
			}
		}
	}
	if SpanID(7, StagePhase1, 2) != SpanID(7, StagePhase1, 2) {
		t.Fatal("SpanID is not deterministic")
	}
	if RootSpanID(7) != SpanID(7, StageRequest, 0) {
		t.Fatal("RootSpanID disagrees with SpanID(req, StageRequest, 0)")
	}
}

func TestEmitSpanDefaultsAndStamps(t *testing.T) {
	tr := NewTracer(8)
	r := tr.Ring("w")
	start := r.SpanStart()
	r.EmitSpan(Span{ID: SpanID(1, StageMatch, 0), Req: 1, Stage: StageMatch, Start: start})
	r.EmitSpan(Span{ID: SpanID(2, StageMatch, 0), Req: 2, Stage: StageMatch, Start: start, End: start + 5})
	sp0, sp1 := r.sbuf[0], r.sbuf[1]
	if sp0.End < start {
		t.Fatalf("End did not default to now: End=%d < Start=%d", sp0.End, start)
	}
	if sp1.End != start+5 {
		t.Fatalf("explicit End was overwritten: %d", sp1.End)
	}
	if sp0.Src != r.id || sp1.Src != r.id {
		t.Fatal("Src not stamped with the ring ID")
	}
	if sp0.Seq != 0 || sp1.Seq != 1 {
		t.Fatalf("Seq not ring-local: %d, %d", sp0.Seq, sp1.Seq)
	}
}

func TestDrainInterleavesEventsAndSpans(t *testing.T) {
	tr := NewTracer(16)
	r := tr.Ring("w")
	r.Emit(KindAdmitted, 1, 0.5, 9)
	start := r.SpanStart()
	r.EmitSpan(Span{
		ID: SpanID(1, StageAdmit, 0), Parent: RootSpanID(1),
		Req: 1, Stage: StageAdmit, T: 0.5, Arg: 3, Start: start,
	})
	r.Emit(KindReleased, 1, 0.5, 11)

	var buf bytes.Buffer
	written, dropped, err := tr.Drain(&buf)
	if err != nil || written != 3 || dropped != 0 {
		t.Fatalf("Drain = (%d, %d, %v), want (3, 0, nil)", written, dropped, err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if len(got.Events) != 2 || len(got.Spans) != 1 {
		t.Fatalf("parsed %d events + %d spans, want 2 + 1", len(got.Events), len(got.Spans))
	}
	sp := got.Spans[0]
	if sp.Stage != "admit" || sp.Req != 1 || sp.Arg != 3 || sp.Src != "w" {
		t.Fatalf("span fields lost in round-trip: %+v", sp)
	}
	if sp.ID != SpanID(1, StageAdmit, 0) || sp.Parent != RootSpanID(1) {
		t.Fatalf("span IDs lost in round-trip: %+v", sp)
	}
	if sp.StartNs != start || sp.EndNs < sp.StartNs {
		t.Fatalf("span interval wrong: [%d, %d], start was %d", sp.StartNs, sp.EndNs, start)
	}
	// Global sort: the span's wall column is its End, which falls between
	// the two events' emission instants.
	var walls []int64
	for _, e := range got.Events {
		walls = append(walls, e.WallNs)
	}
	if !(walls[0] <= sp.EndNs && sp.EndNs <= walls[1]) {
		t.Fatalf("span not interleaved by End: events at %v, span end %d", walls, sp.EndNs)
	}
}

func TestSpanRingWrapCountsDropped(t *testing.T) {
	tr := NewTracer(4)
	r := tr.Ring("w")
	for i := int64(0); i < 10; i++ {
		r.EmitSpan(Span{ID: SpanID(i, StageMatch, 0), Req: i, Stage: StageMatch})
	}
	var buf bytes.Buffer
	written, dropped, err := tr.Drain(&buf)
	if err != nil || written != 4 || dropped != 6 {
		t.Fatalf("Drain = (%d, %d, %v), want (4, 6, nil)", written, dropped, err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if len(got.Spans) != 4 || got.Spans[0].Req != 6 {
		t.Fatalf("retained wrong spans: %+v", got.Spans)
	}
}

func TestReadTraceRejectsBadLines(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("not json\n")); err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("malformed JSON: err = %v, want line-numbered error", err)
	}
	if _, err := ReadTrace(strings.NewReader("{}\n")); err == nil || !strings.Contains(err.Error(), "neither event nor span") {
		t.Fatalf("classless line: err = %v", err)
	}
	tr, err := ReadTrace(strings.NewReader("\n\n"))
	if err != nil || len(tr.Events)+len(tr.Spans) != 0 {
		t.Fatalf("blank lines: (%+v, %v), want empty trace", tr, err)
	}
}

func TestStageStrings(t *testing.T) {
	want := map[Stage]string{
		StageRequest: "request", StageAdmit: "admit", StageQueueWait: "queue_wait",
		StageRelease: "release", StageMatch: "match", StageFlush: "flush",
		StagePhase1: "phase1", StageRepair: "repair", StageFaultStall: "fault_stall",
		StageFaultSlow: "fault_slow_trial", StageOracleSpike: "oracle_spike",
	}
	for st, s := range want {
		if st.String() != s {
			t.Fatalf("Stage(%d).String() = %q, want %q", st, st.String(), s)
		}
	}
	if got := Stage(250).String(); got != "Stage(250)" {
		t.Fatalf("unknown stage = %q", got)
	}
}
