package faults

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Totals is the quiescent-state accounting the harness hands the
// invariant checker alongside the drained trace: what the driver
// sourced and deliberately lost, and what the gateway/engine metrics
// claim happened. The checker cross-validates these against the
// lifecycle events so a fault can neither lose a request silently nor
// double-count one.
type Totals struct {
	// Sourced is the number of requests the driver pulled from its
	// Source; Dropped is how many of those were deliberately lost
	// before admission (crash-span drops plus post-panic discards —
	// ingest.DriveStats.Dropped + .Discarded).
	Sourced int
	Dropped int
	// Released is the gateway's handoff count (sim.Metrics.Admitted:
	// the gateway counts a request admitted when it releases it).
	Released int
	// Shed counters as the metrics report them.
	ShedOverflow int
	ShedDeadline int
	ShedAdaptive int
	// Engine outcomes.
	Matched  int
	Rejected int
	// Drained is true when the harness ran the engine to quiescence
	// (every matched trip completed) before draining the trace, which
	// arms the matched ⇔ completed check.
	Drained bool
}

// Report is the checker's tally of the trace, for tests that want to
// assert a fault actually fired (e.g. overflow sheds > 0 under a storm).
type Report struct {
	Events    int
	Requests  int
	Admitted  int
	Released  int
	Matched   int
	Rejected  int
	Completed int
	// Shed counts by obs.ShedReason* value.
	Shed map[int64]int
}

// traceLine mirrors obs's JSONL schema. Span is set on span lines,
// which carry interval attribution, not lifecycle claims — the checker
// skips them (cmd/tracetool is their consumer).
type traceLine struct {
	WallNs int64   `json:"wall_ns"`
	Src    string  `json:"src"`
	Seq    uint64  `json:"seq"`
	Event  string  `json:"event"`
	Span   string  `json:"span"`
	Req    int64   `json:"req"`
	T      float64 `json:"t"`
	Arg    int64   `json:"arg"`
}

// reqState accumulates one request's lifecycle events.
type reqState struct {
	admitted, queued, released   int
	matched, rejected, completed int
	shedAdmit, shedPost          int // pre-admission vs post-admission sheds
}

// Shed reasons, mirrored from obs (faults can't import obs constants
// into comparisons without the dependency being explicit; these are the
// Arg values of KindShed events).
const (
	shedDeadlineAdmit   = 1
	shedDeadlineRelease = 2
	shedOverflow        = 3
	shedAdaptive        = 4
	shedWallSLO         = 5
)

// Check reads a drained JSONL trace and verifies the pipeline's
// robustness invariants against it and the Totals:
//
//   - no duplicated request: at most one admission, one release, one
//     terminal engine outcome per request ID;
//   - causal legality: released ⇒ admitted, matched/rejected ⇒
//     released, completed ⇒ matched;
//   - conservation: every admitted request reaches exactly one of
//     {released, shed-post-admission}, in aggregate and per request —
//     nothing admitted is lost, nothing is handed off twice;
//   - source accounting: admissions + pre-admission sheds equal
//     Sourced − Dropped, so faults can only lose what they declared;
//   - watermark monotonicity: the drain ring's release sequence is
//     nondecreasing in (event time, request ID) — the stamped total
//     order survived every fault;
//   - metrics agreement: trace counts match the gateway/engine
//     counters (Released/Shed*/Matched/Rejected);
//   - service guarantee (when Totals.Drained): matched ⇔ completed —
//     no request reported served without its trip finishing, which
//     paired with the gateway's release-side window check means no
//     blown window is ever reported as served.
//
// The trace must be complete (drain with dropped == 0): ring overwrite
// would surface here as spurious conservation failures.
func Check(r io.Reader, tot Totals) (Report, error) {
	rep := Report{Shed: map[int64]int{}}
	states := map[int64]*reqState{}
	type release struct {
		seq uint64
		t   float64
		req int64
	}
	var releases []release
	var errs []string
	fail := func(format string, args ...any) { errs = append(errs, fmt.Sprintf(format, args...)) }

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev traceLine
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return rep, fmt.Errorf("faults: bad trace line %q: %w", line, err)
		}
		if ev.Span != "" {
			continue
		}
		rep.Events++
		st := states[ev.Req]
		if st == nil {
			st = &reqState{}
			states[ev.Req] = st
		}
		switch ev.Event {
		case "admitted":
			st.admitted++
			rep.Admitted++
		case "queued":
			st.queued++
		case "released":
			st.released++
			rep.Released++
			releases = append(releases, release{seq: ev.Seq, t: ev.T, req: ev.Req})
		case "matched":
			st.matched++
			rep.Matched++
		case "rejected":
			st.rejected++
			rep.Rejected++
		case "completed":
			st.completed++
			rep.Completed++
		case "shed":
			rep.Shed[ev.Arg]++
			switch ev.Arg {
			case shedDeadlineAdmit, shedAdaptive:
				st.shedAdmit++
			case shedDeadlineRelease, shedOverflow, shedWallSLO:
				st.shedPost++
			default:
				fail("req %d: unknown shed reason %d", ev.Req, ev.Arg)
			}
		case "generated", "trialed":
			// informational stages, no lifecycle constraint
		default:
			fail("req %d: unknown event %q", ev.Req, ev.Event)
		}
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	rep.Requests = len(states)

	for id, st := range states {
		if st.admitted > 1 {
			fail("req %d: admitted %d times (duplicated)", id, st.admitted)
		}
		if st.released > 1 {
			fail("req %d: released %d times (duplicated handoff)", id, st.released)
		}
		if st.queued > st.admitted {
			fail("req %d: queued %d times but admitted %d", id, st.queued, st.admitted)
		}
		if st.released > 0 && st.admitted == 0 {
			fail("req %d: released without admission", id)
		}
		if st.matched+st.rejected > 1 {
			fail("req %d: %d matched + %d rejected engine outcomes", id, st.matched, st.rejected)
		}
		if st.matched+st.rejected > st.released {
			fail("req %d: engine outcome without release", id)
		}
		if st.completed > 0 && st.matched == 0 {
			fail("req %d: completed without match", id)
		}
		if st.admitted == 1 && st.released+st.shedPost != 1 {
			fail("req %d: admitted but reached %d release + %d post-admission shed terminals (want exactly 1)",
				id, st.released, st.shedPost)
		}
		if st.admitted == 0 && st.shedPost > 0 {
			fail("req %d: post-admission shed without admission", id)
		}
		if tot.Drained && st.matched == 1 && st.completed == 0 {
			fail("req %d: matched but never completed (served promise lost)", id)
		}
	}

	// Watermark monotonicity over the drain ring's emission order.
	sort.Slice(releases, func(i, j int) bool { return releases[i].seq < releases[j].seq })
	for i := 1; i < len(releases); i++ {
		a, b := releases[i-1], releases[i]
		if b.t < a.t || (b.t == a.t && b.req < a.req) {
			fail("release order regression: (t=%.3f req=%d) released after (t=%.3f req=%d)",
				b.t, b.req, a.t, a.req)
		}
	}

	// Aggregate conservation and metrics agreement.
	shedPost := rep.Shed[shedDeadlineRelease] + rep.Shed[shedOverflow] + rep.Shed[shedWallSLO]
	shedAdmit := rep.Shed[shedDeadlineAdmit] + rep.Shed[shedAdaptive]
	if rep.Admitted != rep.Released+shedPost {
		fail("conservation: admitted=%d != released=%d + post-admission shed=%d",
			rep.Admitted, rep.Released, shedPost)
	}
	if submitted := tot.Sourced - tot.Dropped; rep.Admitted+shedAdmit != submitted {
		fail("source accounting: admitted=%d + admission shed=%d != sourced=%d - dropped=%d",
			rep.Admitted, shedAdmit, tot.Sourced, tot.Dropped)
	}
	if rep.Released != tot.Released {
		fail("metrics disagree: trace released=%d, metrics released=%d", rep.Released, tot.Released)
	}
	if rep.Matched != tot.Matched {
		fail("metrics disagree: trace matched=%d, metrics matched=%d", rep.Matched, tot.Matched)
	}
	if rep.Rejected != tot.Rejected {
		fail("metrics disagree: trace rejected=%d, metrics rejected=%d", rep.Rejected, tot.Rejected)
	}
	if rep.Matched+rep.Rejected != rep.Released {
		fail("engine outcomes: matched=%d + rejected=%d != released=%d",
			rep.Matched, rep.Rejected, rep.Released)
	}
	if got := rep.Shed[shedOverflow]; got != tot.ShedOverflow {
		fail("metrics disagree: trace overflow sheds=%d, metrics=%d", got, tot.ShedOverflow)
	}
	if got := rep.Shed[shedDeadlineAdmit] + rep.Shed[shedDeadlineRelease]; got != tot.ShedDeadline {
		fail("metrics disagree: trace deadline sheds=%d, metrics=%d", got, tot.ShedDeadline)
	}
	if got := rep.Shed[shedAdaptive] + rep.Shed[shedWallSLO]; got != tot.ShedAdaptive {
		fail("metrics disagree: trace adaptive sheds=%d, metrics=%d", got, tot.ShedAdaptive)
	}

	if len(errs) > 0 {
		return rep, errors.New("faults: invariants violated:\n  " + strings.Join(errs, "\n  "))
	}
	return rep, nil
}
