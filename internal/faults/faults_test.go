package faults

import (
	"strings"
	"testing"
	"time"
)

// run feeds n submissions at times 0,1,2,... through a fresh hook and
// returns the verdict stream.
func runProducer(h *ProducerHook, n int) (times []float64, acts []Action) {
	for i := 0; i < n; i++ {
		t, a := h.BeforeSubmit(float64(i))
		times = append(times, t)
		acts = append(acts, a)
	}
	return times, acts
}

// TestDeterminism: the same plan replayed over the same call sequence
// makes identical decisions — the whole point of counter-driven faults.
func TestDeterminism(t *testing.T) {
	for _, name := range PlanNames() {
		plan, err := ParsePlan(name)
		if err != nil {
			t.Fatal(err)
		}
		a := New(plan)
		b := New(plan)
		for p := 0; p < 3; p++ { // three producer streams each
			ta, aa := runProducer(a.Producer(), 100)
			tb, ab := runProducer(b.Producer(), 100)
			for i := range ta {
				if ta[i] != tb[i] || aa[i] != ab[i] {
					t.Fatalf("plan %s producer %d diverged at call %d: (%v,%v) vs (%v,%v)",
						name, p, i, ta[i], aa[i], tb[i], ab[i])
				}
			}
		}
		oa, ob := a.Oracle(), b.Oracle()
		for i := 0; i < 500; i++ {
			if oa.FailDist() != ob.FailDist() {
				t.Fatalf("plan %s oracle diverged at lookup %d", name, i)
			}
		}
		if sa, sb := a.Stats(), b.Stats(); sa != sb {
			t.Fatalf("plan %s stats diverged: %v vs %v", name, sa, sb)
		}
	}
}

// TestNilSafety: nil injectors and nil hooks are complete pass-throughs.
func TestNilSafety(t *testing.T) {
	var in *Injector
	ph, wh, oh := in.Producer(), in.Worker(), in.Oracle()
	if ph != nil || wh != nil || oh != nil {
		t.Fatal("nil injector handed out non-nil hooks")
	}
	if tm, act := ph.BeforeSubmit(42.5); tm != 42.5 || act != ActionSubmit {
		t.Fatalf("nil ProducerHook rewrote the submission: %v %v", tm, act)
	}
	wh.BeforeFanout(1, 0) // must not panic
	wh.BeforeTrial(1, 0)
	if oh.FailDist() {
		t.Fatal("nil OracleHook failed a lookup")
	}
	oh.Spike()
	if !in.Stats().Zero() {
		t.Fatal("nil injector reported stats")
	}
	if in.Plan().Enabled() {
		t.Fatal("nil injector reported an enabled plan")
	}
}

// TestDisabledPlanPassThrough: an all-zero plan never alters anything.
func TestDisabledPlanPassThrough(t *testing.T) {
	in := New(Plan{})
	h := in.Producer()
	times, acts := runProducer(h, 200)
	for i := range times {
		if times[i] != float64(i) || acts[i] != ActionSubmit {
			t.Fatalf("disabled plan touched submission %d: %v %v", i, times[i], acts[i])
		}
	}
	o := in.Oracle()
	for i := 0; i < 200; i++ {
		if o.FailDist() {
			t.Fatal("disabled plan failed a lookup")
		}
	}
	if !in.Stats().Zero() {
		t.Fatalf("disabled plan accumulated stats: %v", in.Stats())
	}
}

// TestCrashSpan: a crash drops a contiguous span of CrashSpan requests.
func TestCrashSpan(t *testing.T) {
	in := New(Plan{Seed: 9, Producer: ProducerPlan{CrashEvery: 10, CrashSpan: 3}})
	_, acts := runProducer(in.Producer(), 40)
	runs, drops, cur := 0, 0, 0
	for _, a := range acts {
		if a == ActionDrop {
			drops++
			cur++
			continue
		}
		if cur > 0 {
			// An interior span is always exactly CrashSpan wide; only the
			// stream's end may cut one short.
			if cur != 3 {
				t.Fatalf("crash span of %d drops, want 3", cur)
			}
			runs++
			cur = 0
		}
	}
	if cur > 0 {
		if cur > 3 {
			t.Fatalf("trailing crash span of %d drops, want <= 3", cur)
		}
		runs++
	}
	s := in.Stats()
	if runs == 0 || s.Crashes != runs || s.Dropped != drops {
		t.Fatalf("runs=%d drops=%d stats=%v, want matching contiguous spans", runs, drops, s)
	}
}

// TestSkewOnlyOddProducers: skew applies to odd registration indices and
// preserves per-producer monotonicity.
func TestSkewOnlyOddProducers(t *testing.T) {
	in := New(Plan{Seed: 2, Producer: ProducerPlan{SkewSeconds: 150}})
	even, odd := in.Producer(), in.Producer()
	for i := 0; i < 10; i++ {
		if tm, _ := even.BeforeSubmit(float64(i)); tm != float64(i) {
			t.Fatalf("even producer skewed: %v", tm)
		}
		if tm, _ := odd.BeforeSubmit(float64(i)); tm != float64(i)+150 {
			t.Fatalf("odd producer time = %v, want %v", tm, float64(i)+150)
		}
	}
	if s := in.Stats(); s.Skewed != 10 {
		t.Fatalf("skewed = %d, want 10", s.Skewed)
	}
}

// TestBurstCollapse: the BurstLen submissions after an anchor collapse
// onto the anchor's timestamp, and never move a timestamp forward.
func TestBurstCollapse(t *testing.T) {
	in := New(Plan{Seed: 3, Producer: ProducerPlan{BurstEvery: 7, BurstLen: 3}})
	times, _ := runProducer(in.Producer(), 50)
	s := in.Stats()
	if s.Bursted == 0 {
		t.Fatal("burst plan never collapsed a timestamp")
	}
	collapsed := 0
	for i, tm := range times {
		if tm > float64(i) {
			t.Fatalf("burst moved a timestamp forward: call %d -> %v", i, tm)
		}
		if tm < float64(i) {
			collapsed++
		}
	}
	if collapsed != s.Bursted {
		t.Fatalf("%d collapsed timestamps, stats say %d", collapsed, s.Bursted)
	}
}

// TestOracleErrorBurst: failures come in runs of exactly ErrBurst per
// ErrEvery-wide window.
func TestOracleErrorBurst(t *testing.T) {
	in := New(Plan{Seed: 6, Oracle: OraclePlan{ErrEvery: 16, ErrBurst: 2}})
	h := in.Oracle()
	fails := 0
	maxRun, run := 0, 0
	for i := 0; i < 16*8; i++ {
		if h.FailDist() {
			fails++
			run++
			if run > maxRun {
				maxRun = run
			}
		} else {
			run = 0
		}
	}
	if fails != 2*8 {
		t.Fatalf("fails = %d over 8 windows, want 16", fails)
	}
	if maxRun != 2 {
		t.Fatalf("longest failure run = %d, want exactly the burst length 2", maxRun)
	}
}

// TestWorkerSchedules: stall and slow-trial counters fire at the plan
// period.
func TestWorkerSchedules(t *testing.T) {
	in := New(Plan{Seed: 4, Worker: WorkerPlan{
		StallEvery: 8, Stall: time.Microsecond,
		SlowEvery: 4, Slow: time.Microsecond,
	}})
	h := in.Worker()
	for i := 0; i < 64; i++ {
		h.BeforeFanout(int64(i), 0)
		h.BeforeTrial(int64(i), 0)
	}
	if s := in.Stats(); s.Stalls != 8 || s.SlowTrials != 16 {
		t.Fatalf("stalls=%d slow=%d, want 8/16", s.Stalls, s.SlowTrials)
	}
}

// TestPhaseDecorrelation: sibling streams under one seed get distinct
// phases, so scheduled faults don't strike every stream in lockstep.
func TestPhaseDecorrelation(t *testing.T) {
	seen := map[uint64]bool{}
	for idx := uint64(0); idx < 16; idx++ {
		p := phaseFor(1, 0x70726f64, idx)
		if seen[p] {
			t.Fatalf("phase collision at stream %d", idx)
		}
		seen[p] = true
	}
}

// TestParsePlan covers the name registry and its error path.
func TestParsePlan(t *testing.T) {
	for _, name := range []string{"", "none"} {
		p, err := ParsePlan(name)
		if err != nil || p.Enabled() {
			t.Fatalf("ParsePlan(%q) = %v, %v; want disabled zero plan", name, p, err)
		}
	}
	names := PlanNames()
	if len(names) < 8 {
		t.Fatalf("shipped plan library too small: %v", names)
	}
	for _, name := range names {
		p, err := ParsePlan(name)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Enabled() {
			t.Fatalf("shipped plan %q injects nothing", name)
		}
		if p.Name != name {
			t.Fatalf("plan %q carries name %q", name, p.Name)
		}
	}
	if _, err := ParsePlan("nonsense"); err == nil || !strings.Contains(err.Error(), "unknown plan") {
		t.Fatalf("ParsePlan(nonsense) err = %v", err)
	}
}
