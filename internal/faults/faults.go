// Package faults is a deterministic, seed-driven fault-injection layer
// for the ingress → dispatch → oracle pipeline. It exposes hooks at the
// three seams where production deployments actually fail:
//
//   - ingress producers: crash/restart (a contiguous span of requests is
//     lost), clock skew (a subset of producers stamps event times ahead
//     of the others), and burst storms (timestamp collapse so many
//     requests carry the same event time);
//   - dispatch workers: per-shard fan-out stalls and slowed trial
//     insertions;
//   - oracle lookups: latency spikes and transient errors that a
//     bounded-retry facade (sp.Retry over faults.FlakyOracle) must
//     absorb or degrade from gracefully.
//
// Every decision is made by the deterministic counter pattern used for
// obs latency sampling (cache.Oracle's 1-in-64 dist sampler): a plain
// per-hook counter plus a splitmix64 phase derived from (plan seed,
// stream id), compared against a modulus window. No wall clocks, no
// math/rand — the same plan over the same workload injects the same
// faults in the same places, so failures found under a plan reproduce.
//
// All hook types are nil-safe: a nil *Injector hands out nil hooks, and
// every hook method on a nil receiver is a no-op that returns the
// pass-through answer. Wiring the hooks into a pipeline with faults
// disabled is therefore bit-identical to not wiring them at all (the
// equivalence tests prove it), which keeps the instrumented build the
// only build.
package faults

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// ErrInjected is the transient error FlakyOracle returns for an
// injected lookup failure. sp.Retry treats it like any other error:
// bounded retries with exponential backoff, then degradation to the
// unreachable sentinel.
var ErrInjected = errors.New("faults: injected transient oracle error")

// Action is a ProducerHook's verdict on one submission.
type Action int

const (
	// ActionSubmit passes the request through (possibly with a skewed
	// or collapsed timestamp).
	ActionSubmit Action = iota
	// ActionDrop loses the request before admission, as a crashed
	// producer would. The driver must advance the producer's watermark
	// past the dropped timestamp (Producer.Skip) or the drain stalls.
	ActionDrop
	// ActionPanic instructs the driver to panic the producer goroutine
	// — exercising ingest.Drive's recovery path, not simulating a
	// graceful failure.
	ActionPanic
)

// ProducerPlan configures ingress-seam faults. Zero values disable the
// corresponding fault.
type ProducerPlan struct {
	// SkewSeconds is added to every odd-indexed producer's event
	// timestamps, modelling a fleet where half the submitters have a
	// fast clock. Skew is constant per producer, so per-producer
	// monotonicity is preserved while the cross-producer watermark
	// floor lags.
	SkewSeconds float64
	// BurstEvery > 0 anchors a burst every BurstEvery-th submission:
	// the next BurstLen requests have their timestamps collapsed onto
	// the anchor's, forcing stamped-order ties through the (time, ID,
	// seq) comparator.
	BurstEvery int
	BurstLen   int
	// CrashEvery > 0 crashes the producer every CrashEvery-th
	// submission, dropping that request and the following CrashSpan-1
	// ("restart" loses a contiguous span, not scattered singles).
	CrashEvery int
	CrashSpan  int
	// PanicAt > 0 makes producer 0's PanicAt-th submission return
	// ActionPanic. Only producer 0 panics so the other producers'
	// watermark release path is what the recovery test observes.
	PanicAt int
}

func (p ProducerPlan) enabled() bool {
	return p.SkewSeconds != 0 || p.BurstEvery > 0 || p.CrashEvery > 0 || p.PanicAt > 0
}

// WorkerPlan configures dispatch-seam faults (latency only: a stalled
// worker is slow, not wrong, so assignments stay bit-identical to the
// fault-free run and the equivalence suites double as fault tests).
type WorkerPlan struct {
	// StallEvery > 0 sleeps Stall before every StallEvery-th fan-out
	// on each shard.
	StallEvery int
	Stall      time.Duration
	// SlowEvery > 0 sleeps Slow before every SlowEvery-th trial
	// insertion on each shard.
	SlowEvery int
	Slow      time.Duration
}

func (p WorkerPlan) enabled() bool { return p.StallEvery > 0 || p.SlowEvery > 0 }

// OraclePlan configures oracle-seam faults.
type OraclePlan struct {
	// ErrEvery > 0 fails a distance lookup whenever its counter falls
	// in the first ErrBurst slots of each ErrEvery-wide window —
	// consecutive failures, so ErrBurst relative to the retry budget
	// decides whether sp.Retry recovers or degrades to unreachable.
	ErrEvery int
	ErrBurst int
	// SpikeEvery > 0 sleeps Spike before every SpikeEvery-th lookup
	// (dist or path), modelling a slow backend shard.
	SpikeEvery int
	Spike      time.Duration
}

func (p OraclePlan) enabled() bool { return p.ErrEvery > 0 || p.SpikeEvery > 0 }

// Plan is one named, seeded fault scenario.
type Plan struct {
	Name     string
	Seed     uint64
	Producer ProducerPlan
	Worker   WorkerPlan
	Oracle   OraclePlan
}

// Enabled reports whether the plan injects anything at all.
func (p Plan) Enabled() bool {
	return p.Producer.enabled() || p.Worker.enabled() || p.Oracle.enabled()
}

// Injector hands out per-stream hooks for one Plan. Hook registration
// (Producer/Worker/Oracle calls) is mutex-guarded; the hooks themselves
// are single-writer like the obs rings — each belongs to exactly one
// goroutine at a time (one producer, one shard, one oracle facade) and
// must not be shared. Stats may be read only at quiescence.
//
// All methods are nil-safe: a nil *Injector returns nil hooks.
type Injector struct {
	plan  Plan
	trace *obs.Tracer // nil = injections are not spanned

	mu        sync.Mutex
	producers []*ProducerHook
	workers   []*WorkerHook
	oracles   []*OracleHook
}

// New builds an injector for plan. New(Plan{}) is a valid "inject
// nothing" injector; nil *Injector works too and is cheaper.
func New(plan Plan) *Injector { return &Injector{plan: plan} }

// Plan returns the plan the injector was built with (zero Plan for nil).
func (in *Injector) Plan() Plan {
	if in == nil {
		return Plan{}
	}
	return in.plan
}

// SetTrace attaches a tracer so latency injections (worker stalls, slow
// trials, oracle spikes) are recorded as overlay spans — how much
// injected latency each request absorbed, attributable next to the
// pipeline stages in the same trace. Error injections (FailDist) are
// deliberately not spanned: they have no duration, and their effect
// already surfaces as retry latency inside the stage that absorbed them.
// Call before the first hook registration; hooks registered earlier stay
// unspanned. Nil-safe on both sides.
func (in *Injector) SetTrace(t *obs.Tracer) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.trace = t
	in.mu.Unlock()
}

// Producer registers and returns the hook for the next producer, in
// registration order (producer 0, 1, ...). Returns nil on a nil
// injector.
func (in *Injector) Producer() *ProducerHook {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	h := &ProducerHook{
		plan:  in.plan.Producer,
		id:    len(in.producers),
		phase: phaseFor(in.plan.Seed, 0x70726f64, uint64(len(in.producers))),
	}
	in.producers = append(in.producers, h)
	return h
}

// Worker registers and returns the hook for the next dispatch shard, in
// registration order. Returns nil on a nil injector.
func (in *Injector) Worker() *WorkerHook {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	h := &WorkerHook{
		plan:  in.plan.Worker,
		phase: phaseFor(in.plan.Seed, 0x776f726b, uint64(len(in.workers))),
		ring:  in.trace.Ring(fmt.Sprintf("fault-worker-%d", len(in.workers))),
	}
	in.workers = append(in.workers, h)
	return h
}

// Oracle registers and returns the hook for the next oracle facade, in
// registration order. Returns nil on a nil injector.
func (in *Injector) Oracle() *OracleHook {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	h := &OracleHook{
		plan:  in.plan.Oracle,
		phase: phaseFor(in.plan.Seed, 0x6f72636c, uint64(len(in.oracles))),
		ring:  in.trace.Ring(fmt.Sprintf("fault-oracle-%d", len(in.oracles))),
	}
	in.oracles = append(in.oracles, h)
	return h
}

// phaseFor decorrelates streams: different (seam, stream index) pairs
// under the same seed start their counter windows at different offsets,
// so e.g. all producers don't crash on the same submission index.
func phaseFor(seed, seam, idx uint64) uint64 {
	return splitmix64(seed ^ seam*0x9e3779b97f4a7c15 ^ idx)
}

// splitmix64 is the same finalizer the cache stripe hash uses.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Stats aggregates injection counts across every hook the injector
// handed out. Read only at quiescence (after Drive/Drain return).
type Stats struct {
	Crashes      int // producer crash events (each drops a span)
	Dropped      int // requests lost to crashes
	Skewed       int // requests with skewed timestamps
	Bursted      int // requests with collapsed timestamps
	Panics       int // ActionPanic verdicts issued
	Stalls       int // worker fan-out stalls
	SlowTrials   int // slowed trial insertions
	OracleErrors int // injected transient lookup errors
	OracleSpikes int // injected lookup latency spikes
}

// Zero reports whether nothing was injected.
func (s Stats) Zero() bool { return s == Stats{} }

func (s Stats) String() string {
	return fmt.Sprintf(
		"crashes=%d dropped=%d skewed=%d bursted=%d panics=%d stalls=%d slow-trials=%d oracle-errors=%d oracle-spikes=%d",
		s.Crashes, s.Dropped, s.Skewed, s.Bursted, s.Panics, s.Stalls, s.SlowTrials, s.OracleErrors, s.OracleSpikes)
}

// Stats sums the counters of every registered hook. Nil-safe.
func (in *Injector) Stats() Stats {
	var s Stats
	if in == nil {
		return s
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, h := range in.producers {
		s.Crashes += h.crashes
		s.Dropped += h.dropped
		s.Skewed += h.skewed
		s.Bursted += h.bursted
		s.Panics += h.panics
	}
	for _, h := range in.workers {
		s.Stalls += h.stalls
		s.SlowTrials += h.slow
	}
	for _, h := range in.oracles {
		s.OracleErrors += h.fails
		s.OracleSpikes += h.spikes
	}
	return s
}

// ProducerHook decides the fate of each submission of one producer.
// Single-writer: owned by that producer's goroutine.
type ProducerHook struct {
	plan  ProducerPlan
	id    int
	phase uint64

	n         uint64 // submissions seen
	crashLeft int    // remaining drops in the current crash span
	burstLeft int    // remaining collapses in the current burst
	burstT    float64

	crashes, dropped, skewed, bursted, panics int
}

// BeforeSubmit inspects the next submission's event time and returns
// the (possibly rewritten) time plus the verdict. Nil-safe pass-through.
func (h *ProducerHook) BeforeSubmit(t float64) (float64, Action) {
	if h == nil {
		return t, ActionSubmit
	}
	h.n++
	if h.plan.PanicAt > 0 && h.id == 0 && h.n == uint64(h.plan.PanicAt) {
		h.panics++
		return t, ActionPanic
	}
	if h.crashLeft > 0 {
		h.crashLeft--
		h.dropped++
		return t, ActionDrop
	}
	if h.plan.CrashEvery > 0 && (h.n+h.phase)%uint64(h.plan.CrashEvery) == 0 {
		span := h.plan.CrashSpan
		if span < 1 {
			span = 1
		}
		h.crashes++
		h.crashLeft = span - 1
		h.dropped++
		return t, ActionDrop
	}
	if h.plan.SkewSeconds != 0 && h.id%2 == 1 {
		t += h.plan.SkewSeconds
		h.skewed++
	}
	if h.burstLeft > 0 {
		h.burstLeft--
		h.bursted++
		// Collapse onto the anchor. The producer's own monotone clamp
		// makes this safe: the anchor was this producer's most recent
		// accepted time, so t >= burstT and rewriting to burstT keeps
		// the per-producer sequence nondecreasing.
		if t > h.burstT {
			t = h.burstT
		}
	} else if h.plan.BurstEvery > 0 && h.plan.BurstLen > 0 &&
		(h.n+h.phase)%uint64(h.plan.BurstEvery) == 0 {
		h.burstLeft = h.plan.BurstLen
		h.burstT = t
	}
	return t, ActionSubmit
}

// WorkerHook injects latency into one dispatch shard. Single-writer:
// a shard processes one task at a time.
type WorkerHook struct {
	plan  WorkerPlan
	phase uint64
	ring  *obs.Ring // injection overlay spans (nil = unspanned)

	fanouts, trials uint64
	stalls, slow    int
	emitted         int64 // spans emitted; the per-hook span instance key
}

// BeforeFanout stalls the shard on its scheduled fan-outs, identified by
// the request whose fan-out is stalled. Nil-safe.
func (h *WorkerHook) BeforeFanout(reqID int64, t float64) {
	if h == nil {
		return
	}
	h.fanouts++
	if h.plan.StallEvery > 0 && (h.fanouts+h.phase)%uint64(h.plan.StallEvery) == 0 {
		h.stalls++
		start := h.ring.SpanStart()
		time.Sleep(h.plan.Stall)
		h.ring.EmitSpan(obs.Span{
			// inst mixes the hook's phase so concurrent hooks hitting the
			// same request never collide on an ID; fault spans are leaves,
			// nothing parent-links to them.
			ID:     obs.SpanID(reqID, obs.StageFaultStall, h.emitted^int64(h.phase)),
			Parent: obs.RootSpanID(reqID),
			Req:    reqID, Stage: obs.StageFaultStall, T: t,
			Arg: h.plan.Stall.Nanoseconds(), Start: start,
		})
		h.emitted++
	}
}

// BeforeTrial slows the shard's scheduled trial insertions, identified
// by the request whose trial is slowed. Nil-safe.
func (h *WorkerHook) BeforeTrial(reqID int64, t float64) {
	if h == nil {
		return
	}
	h.trials++
	if h.plan.SlowEvery > 0 && (h.trials+h.phase)%uint64(h.plan.SlowEvery) == 0 {
		h.slow++
		start := h.ring.SpanStart()
		time.Sleep(h.plan.Slow)
		h.ring.EmitSpan(obs.Span{
			ID:     obs.SpanID(reqID, obs.StageFaultSlow, h.emitted^int64(h.phase)),
			Parent: obs.RootSpanID(reqID),
			Req:    reqID, Stage: obs.StageFaultSlow, T: t,
			Arg: h.plan.Slow.Nanoseconds(), Start: start,
		})
		h.emitted++
	}
}

// OracleHook injects failures and latency into one oracle facade.
// Single-writer: each dispatch shard (or the sequential simulator)
// owns its own facade, matching the sp thread-safety taxonomy.
type OracleHook struct {
	plan  OraclePlan
	phase uint64
	ring  *obs.Ring // injection overlay spans (nil = unspanned)

	dists, lookups uint64
	fails, spikes  int
	emitted        int64 // spans emitted; the per-hook span instance key
}

// FailDist reports whether the next distance lookup should fail with
// ErrInjected. Nil-safe: never fails.
func (h *OracleHook) FailDist() bool {
	if h == nil {
		return false
	}
	h.dists++
	if h.plan.ErrEvery > 0 &&
		int((h.dists+h.phase)%uint64(h.plan.ErrEvery)) < h.plan.ErrBurst {
		h.fails++
		return true
	}
	return false
}

// Spike sleeps on the scheduled lookups (dist and path share the
// counter). Nil-safe.
func (h *OracleHook) Spike() {
	if h == nil {
		return
	}
	h.lookups++
	if h.plan.SpikeEvery > 0 && (h.lookups+h.phase)%uint64(h.plan.SpikeEvery) == 0 {
		h.spikes++
		start := h.ring.SpanStart()
		time.Sleep(h.plan.Spike)
		// Fleet-level span (Req < 0): the oracle facade does not know
		// which request's lookup it slowed.
		h.ring.EmitSpan(obs.Span{
			ID:  obs.SpanID(-1, obs.StageOracleSpike, h.emitted^int64(h.phase)),
			Req: -1, Stage: obs.StageOracleSpike,
			Arg: h.plan.Spike.Nanoseconds(), Start: start,
		})
		h.emitted++
	}
}

// plans is the shipped scenario library. Window sizes are tuned for the
// test worlds (a few hundred requests, 4-ish producers/shards) so every
// plan actually fires there; larger runs just fire more often.
var plans = map[string]Plan{
	"producer-crash": {
		Name: "producer-crash", Seed: 1,
		Producer: ProducerPlan{CrashEvery: 25, CrashSpan: 4},
	},
	"clock-skew": {
		Name: "clock-skew", Seed: 2,
		Producer: ProducerPlan{SkewSeconds: 150},
	},
	"burst-storm": {
		Name: "burst-storm", Seed: 3,
		Producer: ProducerPlan{BurstEvery: 15, BurstLen: 6},
	},
	"worker-stall": {
		Name: "worker-stall", Seed: 4,
		Worker: WorkerPlan{StallEvery: 8, Stall: 2 * time.Millisecond},
	},
	"slow-oracle": {
		Name: "slow-oracle", Seed: 5,
		Oracle: OraclePlan{SpikeEvery: 128, Spike: 200 * time.Microsecond},
	},
	// flaky-oracle's burst (2) is under sp.Retry's default attempt
	// budget (4), so every lookup recovers and assignments stay
	// bit-identical to the fault-free run.
	"flaky-oracle": {
		Name: "flaky-oracle", Seed: 6,
		Oracle: OraclePlan{ErrEvery: 48, ErrBurst: 2},
	},
	// oracle-degraded's burst (8) exceeds the budget: lookups landing
	// early in a window exhaust retries and degrade to unreachable,
	// which the engine must absorb as failed trials, never as a blown
	// window reported served.
	"oracle-degraded": {
		Name: "oracle-degraded", Seed: 7,
		Oracle: OraclePlan{ErrEvery: 40, ErrBurst: 8},
	},
	"chaos": {
		Name: "chaos", Seed: 8,
		Producer: ProducerPlan{
			CrashEvery: 40, CrashSpan: 3,
			SkewSeconds: 60,
			BurstEvery:  20, BurstLen: 5,
		},
		Worker: WorkerPlan{
			StallEvery: 12, Stall: time.Millisecond,
			SlowEvery: 96, Slow: 50 * time.Microsecond,
		},
		Oracle: OraclePlan{
			ErrEvery: 64, ErrBurst: 2,
			SpikeEvery: 256, Spike: 100 * time.Microsecond,
		},
	},
}

// PlanNames lists the shipped plan names, sorted.
func PlanNames() []string {
	names := make([]string, 0, len(plans))
	for n := range plans {
		names = append(names, n) //vetkit:allow determinism sort.Strings below makes the returned order deterministic
	}
	sort.Strings(names)
	return names
}

// ParsePlan resolves a shipped plan by name. "" and "none" mean no
// faults (zero Plan, Enabled() == false).
func ParsePlan(name string) (Plan, error) {
	switch name {
	case "", "none":
		return Plan{}, nil
	}
	if p, ok := plans[name]; ok {
		return p, nil
	}
	return Plan{}, fmt.Errorf("faults: unknown plan %q (have %s)",
		name, strings.Join(PlanNames(), ", "))
}
