package faults_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/dispatch"
	"repro/internal/faults"
	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/roadnet"
	"repro/internal/sim"
	"repro/internal/sp"
)

// testWorld mirrors the ingest/dispatch equivalence fixture: a jittered
// 20x20 grid city and a deterministic (Time, ID)-sorted request stream.
func testWorld(t testing.TB, trips int) (*roadnet.Graph, dispatch.OracleFactory, []sim.Request) {
	t.Helper()
	g, err := roadnet.Grid(roadnet.GridOptions{
		Rows: 20, Cols: 20, Spacing: 400, Jitter: 0.2, WeightVar: 0.1, DropFrac: 0.05, Seed: 7,
	})
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	factory := func() sp.Oracle {
		return cache.New(sp.NewBidirectional(g), g.N(), 1<<20, 1<<14)
	}
	reqs := make([]sim.Request, 0, trips)
	nv := int32(g.N())
	state := int64(12345)
	next := func(mod int32) int32 {
		state = state*6364136223846793005 + 1442695040888963407
		v := int32((state >> 33) % int64(mod))
		if v < 0 {
			v += mod
		}
		return v
	}
	for len(reqs) < trips {
		s := roadnet.VertexID(next(nv))
		e := roadnet.VertexID(next(nv))
		if s == e || g.EuclideanDist(s, e) < 800 {
			continue
		}
		reqs = append(reqs, sim.Request{
			ID:      int64(len(reqs)),
			Time:    float64(len(reqs)/2) * 10,
			Pickup:  s,
			Dropoff: e,
		})
	}
	return g, factory, reqs
}

// runPipeline drives the full ingress -> dispatch -> oracle pipeline
// under one injector and policy, returns the merged metrics, drive
// stats, and the drained trace.
func runPipeline(t *testing.T, policy ingest.Policy, inj *faults.Injector) (*sim.Metrics, ingest.DriveStats, *bytes.Buffer) {
	t.Helper()
	g, factory, reqs := testWorld(t, 100)
	tracer := obs.NewTracer(1 << 14)
	// Retry sits above the per-shard cache facade so an injected failure
	// can never poison a cache entry; tight backoffs keep the degraded
	// plans fast.
	opts := sp.RetryOptions{Seed: 99, BaseBackoff: 10 * time.Microsecond, MaxBackoff: 100 * time.Microsecond}
	wrapped := func() sp.Oracle { return faults.WrapOracle(factory(), inj.Oracle(), opts) }

	cfg := sim.Config{
		Graph:     g,
		Oracle:    wrapped(),
		Servers:   20,
		Capacity:  4,
		Algorithm: sim.AlgoTreeSlack,
		Seed:      42,
		Workers:   4,
		Shards:    4,
		Trace:     tracer,
		Faults:    inj,
	}
	e, err := dispatch.New(cfg, wrapped)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	gw := ingest.New(ingest.Config{
		Queues: e.Shards(),
		Depth:  32,
		Policy: policy,
		Trace:  tracer,
	})
	src := make(ingest.SliceSource, len(reqs))
	copy(src, reqs)
	var ds ingest.DriveStats
	done := make(chan error, 1)
	go func() {
		var derr error
		ds, derr = ingest.DriveInjected(gw, &src, 4, inj)
		done <- derr
	}()
	gw.Drain(func(r sim.Request) { e.Enqueue(r) })
	if derr := <-done; derr != nil {
		t.Fatalf("drive: %v", derr)
	}
	if err := e.Drain(); err != nil {
		t.Fatalf("engine drain: %v", err)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("engine invariants: %v", err)
	}

	m := e.Metrics()
	gw.MetricsInto(m)
	var buf bytes.Buffer
	if _, dropped, err := tracer.Drain(&buf); err != nil || dropped != 0 {
		t.Fatalf("trace drain: dropped=%d err=%v", dropped, err)
	}
	return m, ds, &buf
}

// assignments reads back every dispatched request's vehicle (or -1).
func checkTotals(t *testing.T, m *sim.Metrics, ds ingest.DriveStats, trace *bytes.Buffer) faults.Report {
	t.Helper()
	rep, err := faults.Check(trace, faults.Totals{
		Sourced:      ds.Sourced,
		Dropped:      ds.Dropped + ds.Discarded,
		Released:     m.Admitted,
		ShedOverflow: m.ShedOverflow,
		ShedDeadline: m.ShedDeadline,
		ShedAdaptive: m.ShedAdaptive,
		Matched:      m.Matched,
		Rejected:     m.Rejected,
		Drained:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestFaultMatrix runs every shipped plan against the full pipeline
// under both a lossless and the adaptive policy, checks the pipeline's
// conservation/monotonicity/no-loss invariants against the drained
// trace, and confirms each plan actually injected its faults.
func TestFaultMatrix(t *testing.T) {
	fired := map[string]func(faults.Stats) bool{
		"producer-crash":  func(s faults.Stats) bool { return s.Crashes > 0 && s.Dropped > 0 },
		"clock-skew":      func(s faults.Stats) bool { return s.Skewed > 0 },
		"burst-storm":     func(s faults.Stats) bool { return s.Bursted > 0 },
		"worker-stall":    func(s faults.Stats) bool { return s.Stalls > 0 },
		"slow-oracle":     func(s faults.Stats) bool { return s.OracleSpikes > 0 },
		"flaky-oracle":    func(s faults.Stats) bool { return s.OracleErrors > 0 },
		"oracle-degraded": func(s faults.Stats) bool { return s.OracleErrors > 0 },
		"chaos":           func(s faults.Stats) bool { return !s.Zero() },
	}
	for _, name := range faults.PlanNames() {
		plan, err := faults.ParsePlan(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, policy := range []ingest.Policy{ingest.Block, ingest.Adaptive} {
			t.Run(fmt.Sprintf("%s/%s", name, policy), func(t *testing.T) {
				inj := faults.New(plan)
				m, ds, trace := runPipeline(t, policy, inj)
				rep := checkTotals(t, m, ds, trace)
				if rep.Released == 0 {
					t.Fatal("pipeline released nothing under the fault plan")
				}
				check, ok := fired[name]
				if !ok {
					t.Fatalf("no firing expectation for plan %q", name)
				}
				if s := inj.Stats(); !check(s) {
					t.Fatalf("plan %s never fired: %v", name, s)
				}
			})
		}
	}
}

// TestFaultLatencyPlansBitIdentical: latency-only fault plans (stalls,
// spikes) and transient oracle errors inside the retry budget must not
// change a single assignment relative to the fault-free run.
func TestFaultLatencyPlansBitIdentical(t *testing.T) {
	baseline := map[int64]int{}
	{
		g, factory, reqs := testWorld(t, 100)
		cfg := sim.Config{
			Graph: g, Oracle: factory(), Servers: 20, Capacity: 4,
			Algorithm: sim.AlgoTreeSlack, Seed: 42, Workers: 4, Shards: 4,
		}
		e, err := dispatch.New(cfg, factory)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range reqs {
			e.Enqueue(r)
		}
		e.Flush()
		for _, r := range reqs {
			veh, ok := e.Assignment(r.ID)
			if !ok {
				veh = -1
			}
			baseline[r.ID] = veh
		}
		e.Close()
	}

	for _, name := range []string{"worker-stall", "slow-oracle", "flaky-oracle"} {
		t.Run(name, func(t *testing.T) {
			plan, err := faults.ParsePlan(name)
			if err != nil {
				t.Fatal(err)
			}
			inj := faults.New(plan)
			g, factory, reqs := testWorld(t, 100)
			opts := sp.RetryOptions{Seed: 99, BaseBackoff: 10 * time.Microsecond, MaxBackoff: 100 * time.Microsecond}
			wrapped := func() sp.Oracle { return faults.WrapOracle(factory(), inj.Oracle(), opts) }
			cfg := sim.Config{
				Graph: g, Oracle: wrapped(), Servers: 20, Capacity: 4,
				Algorithm: sim.AlgoTreeSlack, Seed: 42, Workers: 4, Shards: 4,
				Faults: inj,
			}
			e, err := dispatch.New(cfg, wrapped)
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			gw := ingest.New(ingest.Config{Queues: e.Shards(), Depth: 32})
			src := make(ingest.SliceSource, len(reqs))
			copy(src, reqs)
			done := make(chan error, 1)
			go func() {
				_, derr := ingest.DriveInjected(gw, &src, 4, inj)
				done <- derr
			}()
			gw.Drain(func(r sim.Request) { e.Enqueue(r) })
			if derr := <-done; derr != nil {
				t.Fatal(derr)
			}
			e.Flush()
			for _, r := range reqs {
				veh, ok := e.Assignment(r.ID)
				if !ok {
					veh = -1
				}
				if veh != baseline[r.ID] {
					t.Fatalf("plan %s changed assignment of request %d: %d != %d",
						name, r.ID, veh, baseline[r.ID])
				}
			}
			if s := inj.Stats(); s.Zero() {
				t.Fatalf("plan %s never fired", name)
			}
		})
	}
}

// TestFaultDisabledEquivalence: wiring every hook with a nil injector —
// including the Retry/FlakyOracle facade — is bit-identical to the
// un-hooked pipeline, so the instrumented build can ship as the only
// build (the PR 5 traced-equivalence discipline, extended to faults).
func TestFaultDisabledEquivalence(t *testing.T) {
	run := func(hooked bool) map[int64]int {
		g, factory, reqs := testWorld(t, 100)
		oracleFactory := factory
		var inj *faults.Injector // stays nil: the disabled configuration
		if hooked {
			oracleFactory = func() sp.Oracle {
				return faults.WrapOracle(factory(), inj.Oracle(), sp.RetryOptions{})
			}
		}
		cfg := sim.Config{
			Graph: g, Oracle: oracleFactory(), Servers: 20, Capacity: 4,
			Algorithm: sim.AlgoTreeSlack, Seed: 42, Workers: 4, Shards: 4,
			Faults: inj,
		}
		e, err := dispatch.New(cfg, oracleFactory)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		gw := ingest.New(ingest.Config{Queues: e.Shards(), Depth: 32})
		src := make(ingest.SliceSource, len(reqs))
		copy(src, reqs)
		done := make(chan error, 1)
		go func() {
			_, derr := ingest.DriveInjected(gw, &src, 4, inj)
			done <- derr
		}()
		gw.Drain(func(r sim.Request) { e.Enqueue(r) })
		if derr := <-done; derr != nil {
			t.Fatal(derr)
		}
		e.Flush()
		out := make(map[int64]int, len(reqs))
		for _, r := range reqs {
			veh, ok := e.Assignment(r.ID)
			if !ok {
				veh = -1
			}
			out[r.ID] = veh
		}
		return out
	}
	bare := run(false)
	wired := run(true)
	for id, veh := range bare {
		if wired[id] != veh {
			t.Fatalf("request %d: hooked pipeline assigned %d, bare assigned %d", id, wired[id], veh)
		}
	}
}
