package faults

import (
	"repro/internal/roadnet"
	"repro/internal/sp"
)

// FlakyOracle wraps a real oracle with an OracleHook: distance lookups
// fail with ErrInjected on the hook's schedule, and both lookup kinds
// absorb the hook's latency spikes. It implements sp.Fallible so
// sp.Retry can sit on top, forming the retryable facade the dispatch
// shards consume:
//
//	sp.NewRetry(faults.NewFlakyOracle(shared.NewWorkerOracle(), inj.Oracle()), opts)
//
// Only TryDist injects errors. A transiently-nil Path on a reachable
// pair would corrupt vehicle motion (paths drive the kinetic tree's leg
// geometry), whereas a +Inf Dist is the ordinary "infeasible candidate"
// sentinel the trial path already handles — so the error seam is the
// one the system can provably degrade from.
//
// Per-goroutine, like the facades it wraps; the hook is single-writer.
type FlakyOracle struct {
	inner sp.Oracle
	hook  *OracleHook
}

// NewFlakyOracle wraps inner. A nil hook makes every lookup pass
// straight through (the faults-disabled equivalence configuration).
func NewFlakyOracle(inner sp.Oracle, hook *OracleHook) *FlakyOracle {
	return &FlakyOracle{inner: inner, hook: hook}
}

// Unwrap exposes the wrapped oracle for sp.Unwrap peeling.
func (f *FlakyOracle) Unwrap() sp.Oracle { return f.inner }

// TryDist implements sp.Fallible.
func (f *FlakyOracle) TryDist(u, v roadnet.VertexID) (float64, error) {
	if f.hook.FailDist() {
		return 0, ErrInjected
	}
	f.hook.Spike()
	return f.inner.Dist(u, v), nil
}

// TryPath implements sp.Fallible. Latency only — see the type comment.
func (f *FlakyOracle) TryPath(u, v roadnet.VertexID) ([]roadnet.VertexID, error) {
	f.hook.Spike()
	return f.inner.Path(u, v), nil
}

// WrapOracle is the one-call spelling of the retryable facade: inner
// behind a FlakyOracle driven by hook, behind sp.Retry with opt. Works
// with a nil hook (pass-through, still bit-identical — proven by the
// disabled-equivalence test), so callers can wire it unconditionally.
func WrapOracle(inner sp.Oracle, hook *OracleHook, opt sp.RetryOptions) sp.Oracle {
	return sp.NewRetry(NewFlakyOracle(inner, hook), opt)
}
