package mip

import (
	"math"
	"math/rand"
	"testing"
)

func solveLPOrFail(t *testing.T, lp *LP) ([]float64, float64) {
	t.Helper()
	x, obj, st, err := SolveLP(lp)
	if err != nil {
		t.Fatalf("SolveLP: %v", err)
	}
	if st != LPOptimal {
		t.Fatalf("SolveLP status %v", st)
	}
	return x, obj
}

func TestSolveLPSimple(t *testing.T) {
	// minimize -x - 2y  s.t. x + y <= 4, x <= 2, y <= 3, x,y >= 0.
	// Optimum at (1, 3): obj -7.
	lp := &LP{
		NumVars: 2,
		Cost:    []float64{-1, -2},
		Rows:    [][]float64{{1, 1}, {1, 0}, {0, 1}},
		Senses:  []Sense{LE, LE, LE},
		RHS:     []float64{4, 2, 3},
	}
	x, obj := solveLPOrFail(t, lp)
	if math.Abs(obj-(-7)) > 1e-7 {
		t.Fatalf("obj=%v want -7 (x=%v)", obj, x)
	}
}

func TestSolveLPEqualityAndGE(t *testing.T) {
	// minimize x + y  s.t. x + y = 5, x >= 2. Optimum 5 with x in [2,5].
	lp := &LP{
		NumVars: 2,
		Cost:    []float64{1, 1},
		Rows:    [][]float64{{1, 1}, {1, 0}},
		Senses:  []Sense{EQ, GE},
		RHS:     []float64{5, 2},
	}
	x, obj := solveLPOrFail(t, lp)
	if math.Abs(obj-5) > 1e-7 || x[0] < 2-1e-7 {
		t.Fatalf("obj=%v x=%v", obj, x)
	}
}

func TestSolveLPInfeasible(t *testing.T) {
	lp := &LP{
		NumVars: 1,
		Cost:    []float64{1},
		Rows:    [][]float64{{1}, {1}},
		Senses:  []Sense{LE, GE},
		RHS:     []float64{1, 2},
	}
	_, _, st, err := SolveLP(lp)
	if err != nil || st != LPInfeasible {
		t.Fatalf("status=%v err=%v, want infeasible", st, err)
	}
}

func TestSolveLPUnbounded(t *testing.T) {
	lp := &LP{
		NumVars: 1,
		Cost:    []float64{-1},
		Rows:    [][]float64{{-1}},
		Senses:  []Sense{LE},
		RHS:     []float64{0},
	}
	_, _, st, err := SolveLP(lp)
	if err != nil || st != LPUnbounded {
		t.Fatalf("status=%v err=%v, want unbounded", st, err)
	}
}

func TestSolveLPNegativeRHS(t *testing.T) {
	// x >= 0, -x <= -3  =>  x >= 3; minimize x => 3.
	lp := &LP{
		NumVars: 1,
		Cost:    []float64{1},
		Rows:    [][]float64{{-1}},
		Senses:  []Sense{LE},
		RHS:     []float64{-3},
	}
	_, obj := solveLPOrFail(t, lp)
	if math.Abs(obj-3) > 1e-7 {
		t.Fatalf("obj=%v want 3", obj)
	}
}

func TestSolveLPValidation(t *testing.T) {
	bad := []*LP{
		{NumVars: 0},
		{NumVars: 1, Cost: []float64{1, 2}},
		{NumVars: 1, Cost: []float64{1}, Rows: [][]float64{{1, 2}}, Senses: []Sense{LE}, RHS: []float64{1}},
		{NumVars: 1, Cost: []float64{1}, Rows: [][]float64{{1}}, Senses: []Sense{LE}, RHS: []float64{}},
	}
	for i, lp := range bad {
		if _, _, _, err := SolveLP(lp); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestMIPKnapsack(t *testing.T) {
	// maximize 10a + 6b + 4c  s.t. a+b+c <= 2 (binary)  => minimize -().
	m := &Model{}
	a := m.AddVar(-10, Binary, "a")
	b := m.AddVar(-6, Binary, "b")
	c := m.AddVar(-4, Binary, "c")
	if err := m.AddConstraint([]int{a, b, c}, []float64{1, 1, 1}, LE, 2); err != nil {
		t.Fatal(err)
	}
	sol, err := m.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !sol.Found {
		t.Fatalf("status=%v", sol.Status)
	}
	if math.Abs(sol.Objective-(-16)) > 1e-7 {
		t.Fatalf("objective %v want -16 (x=%v)", sol.Objective, sol.X)
	}
	if sol.X[a] != 1 || sol.X[b] != 1 || sol.X[c] != 0 {
		t.Fatalf("x=%v", sol.X)
	}
}

func TestMIPInfeasible(t *testing.T) {
	m := &Model{}
	a := m.AddVar(1, Binary, "a")
	if err := m.AddConstraint([]int{a}, []float64{1}, GE, 2); err != nil {
		t.Fatal(err)
	}
	sol, err := m.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible || sol.Found {
		t.Fatalf("status=%v found=%v", sol.Status, sol.Found)
	}
}

func TestMIPMixedContinuous(t *testing.T) {
	// minimize y + 0.5 z  s.t. z >= 3 - 2y, y binary, z >= 0.
	// y=1 -> z >= 1 -> cost 1.5; y=0 -> z >= 3 -> cost 1.5. Either optimal.
	m := &Model{}
	y := m.AddVar(1, Binary, "y")
	z := m.AddVar(0.5, Continuous, "z")
	if err := m.AddConstraint([]int{z, y}, []float64{1, 2}, GE, 3); err != nil {
		t.Fatal(err)
	}
	sol, err := m.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-1.5) > 1e-7 {
		t.Fatalf("obj=%v status=%v", sol.Objective, sol.Status)
	}
}

func TestMIPConstraintValidation(t *testing.T) {
	m := &Model{}
	m.AddVar(1, Binary, "a")
	if err := m.AddConstraint([]int{5}, []float64{1}, LE, 1); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if err := m.AddConstraint([]int{0}, []float64{1, 2}, LE, 1); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

// TestMIPMatchesBruteForce cross-validates the solver against exhaustive
// enumeration on random small binary programs.
func TestMIPMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 60; iter++ {
		nv := 2 + rng.Intn(5) // binaries
		nc := 1 + rng.Intn(4) // constraints
		m := &Model{}
		costs := make([]float64, nv)
		for j := 0; j < nv; j++ {
			costs[j] = math.Round(rng.Float64()*20 - 10)
			m.AddVar(costs[j], Binary, "")
		}
		type row struct {
			coef []float64
			s    Sense
			rhs  float64
		}
		rows := make([]row, nc)
		for i := range rows {
			coef := make([]float64, nv)
			for j := range coef {
				coef[j] = math.Round(rng.Float64()*10 - 5)
			}
			s := []Sense{LE, GE}[rng.Intn(2)]
			rhs := math.Round(rng.Float64()*10 - 3)
			rows[i] = row{coef, s, rhs}
			idx := make([]int, nv)
			for j := range idx {
				idx[j] = j
			}
			if err := m.AddConstraint(idx, coef, s, rhs); err != nil {
				t.Fatal(err)
			}
		}
		// Brute force over 2^nv assignments.
		bestObj := math.Inf(1)
		for mask := 0; mask < 1<<nv; mask++ {
			obj := 0.0
			feasible := true
			for _, r := range rows {
				lhs := 0.0
				for j := 0; j < nv; j++ {
					if mask&(1<<j) != 0 {
						lhs += r.coef[j]
					}
				}
				switch r.s {
				case LE:
					feasible = feasible && lhs <= r.rhs+1e-9
				case GE:
					feasible = feasible && lhs >= r.rhs-1e-9
				}
			}
			if !feasible {
				continue
			}
			for j := 0; j < nv; j++ {
				if mask&(1<<j) != 0 {
					obj += costs[j]
				}
			}
			if obj < bestObj {
				bestObj = obj
			}
		}
		sol, err := m.Solve(SolveOptions{MaxNodes: 100000})
		if err != nil {
			t.Fatal(err)
		}
		if math.IsInf(bestObj, 1) {
			if sol.Found {
				t.Fatalf("iter %d: solver found %v on infeasible program", iter, sol.Objective)
			}
			continue
		}
		if !sol.Found {
			t.Fatalf("iter %d: solver reported infeasible, brute force found %v", iter, bestObj)
		}
		if math.Abs(sol.Objective-bestObj) > 1e-6 {
			t.Fatalf("iter %d: solver %v != brute force %v", iter, sol.Objective, bestObj)
		}
	}
}

// TestMIPInitialBoundPrunes verifies the incumbent-seeding option prunes
// without losing the optimum when the bound is loose, and suppresses
// solutions when the bound is tighter than the optimum.
func TestMIPInitialBoundPrunes(t *testing.T) {
	build := func() *Model {
		m := &Model{}
		a := m.AddVar(-5, Binary, "a")
		b := m.AddVar(-3, Binary, "b")
		if err := m.AddConstraint([]int{a, b}, []float64{1, 1}, LE, 1); err != nil {
			t.Fatal(err)
		}
		return m
	}
	sol, err := build().Solve(SolveOptions{InitialBound: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Found || sol.Objective != -5 {
		t.Fatalf("loose bound: %+v", sol)
	}
	sol, err = build().Solve(SolveOptions{InitialBound: -10})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Found {
		t.Fatalf("bound tighter than optimum must find nothing: %+v", sol)
	}
}

func BenchmarkMIPSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := &Model{}
		vars := make([]int, 8)
		for j := range vars {
			vars[j] = m.AddVar(float64(j%3)-1, Binary, "")
		}
		coef := []float64{1, 1, 1, 1, 1, 1, 1, 1}
		if err := m.AddConstraint(vars, coef, LE, 4); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Solve(SolveOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
