// Package mip is a small exact mixed-integer programming solver: a dense
// two-phase primal simplex for the LP relaxations and depth-first branch &
// bound over binary variables. It stands in for the commercial "traditional
// solvers" the paper applies to its mixed-integer formulation (§III-A); the
// per-request scheduling models are small (tens of binaries), well within
// range of a dense tableau implementation.
package mip

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Sense is the relational operator of a linear constraint.
type Sense int8

// Constraint senses.
const (
	LE Sense = iota // <=
	GE              // >=
	EQ              // ==
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return fmt.Sprintf("Sense(%d)", int8(s))
}

// LP is a linear program in the form
//
//	minimize  c·x
//	subject to  A x (<=,>=,==) b,  x >= 0.
//
// Rows are stored densely.
type LP struct {
	NumVars int
	Cost    []float64   // len NumVars
	Rows    [][]float64 // each len NumVars
	Senses  []Sense
	RHS     []float64
	// Deadline, when non-zero, aborts the solve with LPIterLimit once
	// exceeded (checked every few hundred pivots).
	Deadline time.Time
}

// LPStatus reports the outcome of an LP solve.
type LPStatus int8

// LP solve outcomes.
const (
	LPOptimal LPStatus = iota
	LPInfeasible
	LPUnbounded
	LPIterLimit
)

func (s LPStatus) String() string {
	switch s {
	case LPOptimal:
		return "optimal"
	case LPInfeasible:
		return "infeasible"
	case LPUnbounded:
		return "unbounded"
	case LPIterLimit:
		return "iteration-limit"
	}
	return fmt.Sprintf("LPStatus(%d)", int8(s))
}

const (
	eps       = 1e-9
	pivotEps  = 1e-7 // minimum magnitude for a pivot element
	iterLimit = 50000
)

// ErrBadModel reports a structurally invalid LP.
var ErrBadModel = errors.New("mip: malformed model")

// SolveLP solves the LP with a two-phase dense tableau simplex.
// On LPOptimal it returns the variable values and the objective.
func SolveLP(lp *LP) (x []float64, obj float64, status LPStatus, err error) {
	if err := validateLP(lp); err != nil {
		return nil, 0, LPInfeasible, err
	}
	t, err := newTableau(lp)
	if err != nil {
		return nil, 0, LPInfeasible, err
	}
	t.deadline = lp.Deadline

	// Phase 1: minimize the sum of artificial variables.
	if t.nArtificial > 0 {
		t.setPhase1Objective()
		st := t.iterate()
		if st == LPIterLimit {
			return nil, 0, LPIterLimit, nil
		}
		if t.objectiveValue() > 1e-6 {
			return nil, 0, LPInfeasible, nil
		}
		t.driveOutArtificials()
	}

	// Phase 2: original objective.
	t.setPhase2Objective(lp.Cost)
	st := t.iterate()
	switch st {
	case LPUnbounded:
		return nil, 0, LPUnbounded, nil
	case LPIterLimit:
		return nil, 0, LPIterLimit, nil
	}
	x = t.solution(lp.NumVars)
	return x, t.objectiveValue(), LPOptimal, nil
}

func validateLP(lp *LP) error {
	if lp.NumVars <= 0 {
		return fmt.Errorf("%w: NumVars=%d", ErrBadModel, lp.NumVars)
	}
	if len(lp.Cost) != lp.NumVars {
		return fmt.Errorf("%w: cost length %d != NumVars %d", ErrBadModel, len(lp.Cost), lp.NumVars)
	}
	if len(lp.Rows) != len(lp.Senses) || len(lp.Rows) != len(lp.RHS) {
		return fmt.Errorf("%w: rows/senses/rhs lengths %d/%d/%d", ErrBadModel, len(lp.Rows), len(lp.Senses), len(lp.RHS))
	}
	for i, r := range lp.Rows {
		if len(r) != lp.NumVars {
			return fmt.Errorf("%w: row %d has %d coefficients, want %d", ErrBadModel, i, len(r), lp.NumVars)
		}
	}
	return nil
}

// tableau is a dense simplex tableau stored flat in row-major order for
// cache efficiency. Columns: structural variables, then slack/surplus, then
// artificial, then RHS. The last row is the objective.
type tableau struct {
	m, n        int // constraint rows, total variable columns
	nStruct     int
	nArtificial int
	artStart    int       // column index of first artificial
	a           []float64 // (m+1) x (n+1) flat; row m is the cost row, col n is RHS
	stride      int       // n+1
	basis       []int     // basic variable per row
	iters       int
	deadline    time.Time
}

// row returns the slice view of row i.
func (t *tableau) row(i int) []float64 { return t.a[i*t.stride : (i+1)*t.stride] }

func newTableau(lp *LP) (*tableau, error) {
	m := len(lp.Rows)
	// Count extra columns.
	nSlack := 0
	nArt := 0
	// Normalize to b >= 0 first, then decide columns.
	rows := make([][]float64, m)
	senses := make([]Sense, m)
	rhs := make([]float64, m)
	for i := range lp.Rows {
		rows[i] = append([]float64(nil), lp.Rows[i]...)
		senses[i] = lp.Senses[i]
		rhs[i] = lp.RHS[i]
		if rhs[i] < 0 {
			for j := range rows[i] {
				rows[i][j] = -rows[i][j]
			}
			rhs[i] = -rhs[i]
			switch senses[i] {
			case LE:
				senses[i] = GE
			case GE:
				senses[i] = LE
			}
		}
		switch senses[i] {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	n := lp.NumVars + nSlack + nArt
	t := &tableau{
		m:           m,
		n:           n,
		nStruct:     lp.NumVars,
		nArtificial: nArt,
		artStart:    lp.NumVars + nSlack,
		basis:       make([]int, m),
	}
	t.stride = n + 1
	t.a = make([]float64, (m+1)*t.stride)
	slackCol := lp.NumVars
	artCol := t.artStart
	for i := 0; i < m; i++ {
		ri := t.row(i)
		copy(ri, rows[i])
		ri[n] = rhs[i]
		switch senses[i] {
		case LE:
			ri[slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			ri[slackCol] = -1
			slackCol++
			ri[artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			ri[artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
	}
	return t, nil
}

// setPhase1Objective installs minimize(sum of artificials) and prices it out
// against the starting basis.
func (t *tableau) setPhase1Objective() {
	obj := t.row(t.m)
	for j := range obj {
		obj[j] = 0
	}
	for j := t.artStart; j < t.n; j++ {
		obj[j] = 1
	}
	// Price out basic artificials: subtract their rows from the cost row.
	for i := 0; i < t.m; i++ {
		if t.basis[i] >= t.artStart {
			ri := t.row(i)
			for j := range obj {
				obj[j] -= ri[j]
			}
		}
	}
}

// setPhase2Objective installs the original cost vector (artificial columns
// get a prohibitive cost so they never re-enter) and prices it out.
func (t *tableau) setPhase2Objective(cost []float64) {
	obj := t.row(t.m)
	for j := range obj {
		obj[j] = 0
	}
	copy(obj, cost)
	for j := t.artStart; j < t.n; j++ {
		obj[j] = 1e30 // block artificials from entering
	}
	for i := 0; i < t.m; i++ {
		c := obj[t.basis[i]]
		if c != 0 {
			ri := t.row(i)
			for j := range obj {
				obj[j] -= c * ri[j]
			}
		}
	}
}

// objectiveValue returns the current objective (the tableau stores its
// negation in the RHS of the cost row).
func (t *tableau) objectiveValue() float64 { return -t.a[t.m*t.stride+t.n] }

// iterate runs simplex pivots until optimality, unboundedness, or the
// iteration limit. Dantzig pricing initially, switching to Bland's rule to
// guarantee termination if cycling is suspected.
func (t *tableau) iterate() LPStatus {
	blandAfter := 20 * (t.m + t.n)
	for {
		t.iters++
		if t.iters > iterLimit {
			return LPIterLimit
		}
		if t.iters%256 == 0 && !t.deadline.IsZero() && time.Now().After(t.deadline) {
			return LPIterLimit
		}
		useBland := t.iters > blandAfter
		col := t.chooseColumn(useBland)
		if col < 0 {
			return LPOptimal
		}
		row := t.ratioTest(col, useBland)
		if row < 0 {
			return LPUnbounded
		}
		t.pivot(row, col)
	}
}

func (t *tableau) chooseColumn(bland bool) int {
	obj := t.row(t.m)
	if bland {
		for j := 0; j < t.n; j++ {
			if obj[j] < -eps {
				return j
			}
		}
		return -1
	}
	best, bestVal := -1, -eps
	for j := 0; j < t.n; j++ {
		if obj[j] < bestVal {
			bestVal = obj[j]
			best = j
		}
	}
	return best
}

func (t *tableau) ratioTest(col int, bland bool) int {
	best := -1
	bestRatio := math.Inf(1)
	for i := 0; i < t.m; i++ {
		a := t.a[i*t.stride+col]
		if a <= pivotEps {
			continue
		}
		ratio := t.a[i*t.stride+t.n] / a
		if ratio < bestRatio-eps {
			bestRatio = ratio
			best = i
		} else if ratio < bestRatio+eps && best >= 0 {
			// Tie-break: Bland (lowest basis index) for termination,
			// otherwise largest pivot for stability.
			if bland {
				if t.basis[i] < t.basis[best] {
					best = i
				}
			} else if a > t.a[best*t.stride+col] {
				best = i
			}
		}
	}
	return best
}

func (t *tableau) pivot(row, col int) {
	r := t.row(row)
	inv := 1 / r[col]
	for j := range r {
		r[j] *= inv
	}
	r[col] = 1 // exact
	for i := 0; i <= t.m; i++ {
		if i == row {
			continue
		}
		ri := t.row(i)
		f := ri[col]
		if f == 0 {
			continue
		}
		for j := range ri {
			ri[j] -= f * r[j]
		}
		ri[col] = 0 // exact
	}
	t.basis[row] = col
}

// driveOutArtificials pivots basic artificial variables (at value zero after
// a feasible phase 1) out of the basis where possible.
func (t *tableau) driveOutArtificials() {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artStart {
			continue
		}
		// Find any non-artificial column with a usable pivot in row i.
		pivoted := false
		ri := t.row(i)
		for j := 0; j < t.artStart; j++ {
			if math.Abs(ri[j]) > pivotEps {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row; zero it so it can't affect later pivots.
			for j := range ri {
				ri[j] = 0
			}
			// Keep the artificial as formal basis of the null row.
		}
	}
}

// solution extracts the values of the first k structural variables.
func (t *tableau) solution(k int) []float64 {
	x := make([]float64, k)
	for i := 0; i < t.m; i++ {
		if b := t.basis[i]; b < k {
			x[b] = t.a[i*t.stride+t.n]
		}
	}
	// Clamp small negatives from roundoff.
	for i := range x {
		if x[i] < 0 && x[i] > -1e-7 {
			x[i] = 0
		}
	}
	return x
}
