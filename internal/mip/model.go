package mip

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// VarKind distinguishes continuous from binary decision variables.
type VarKind int8

// Variable kinds.
const (
	Continuous VarKind = iota
	Binary             // integer in {0, 1}
)

// Model is a mixed-integer program under construction:
//
//	minimize  c·x
//	subject to  A x (<=,>=,==) b,  x >= 0,  x_j in {0,1} for binary j.
//
// Upper bounds other than the implicit binary bound must be expressed as
// constraints. The zero value is an empty model ready for use.
type Model struct {
	costs  []float64
	kinds  []VarKind
	names  []string
	rows   []sparseRow
	senses []Sense
	rhs    []float64
}

type sparseRow struct {
	idx []int
	val []float64
}

// AddVar adds a variable with the given objective coefficient and kind,
// returning its index. The name is used in diagnostics only.
func (m *Model) AddVar(cost float64, kind VarKind, name string) int {
	m.costs = append(m.costs, cost)
	m.kinds = append(m.kinds, kind)
	m.names = append(m.names, name)
	return len(m.costs) - 1
}

// NumVars returns the number of variables added so far.
func (m *Model) NumVars() int { return len(m.costs) }

// AddConstraint adds the row sum_i val[i]*x[idx[i]] (sense) rhs.
// Indices must reference existing variables.
func (m *Model) AddConstraint(idx []int, val []float64, sense Sense, rhs float64) error {
	if len(idx) != len(val) {
		return fmt.Errorf("mip: constraint has %d indices but %d values", len(idx), len(val))
	}
	for _, i := range idx {
		if i < 0 || i >= len(m.costs) {
			return fmt.Errorf("mip: constraint references variable %d, model has %d", i, len(m.costs))
		}
	}
	m.rows = append(m.rows, sparseRow{
		idx: append([]int(nil), idx...),
		val: append([]float64(nil), val...),
	})
	m.senses = append(m.senses, sense)
	m.rhs = append(m.rhs, rhs)
	return nil
}

// Status reports the outcome of a MIP solve.
type Status int8

// MIP solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	NodeLimit // search truncated; Solution holds the incumbent if Found
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case NodeLimit:
		return "node-limit"
	}
	return fmt.Sprintf("Status(%d)", int8(s))
}

// Solution is the result of Model.Solve.
type Solution struct {
	Status    Status
	Found     bool      // an integral incumbent exists
	Objective float64   // incumbent objective when Found
	X         []float64 // incumbent variable values when Found
	Nodes     int       // branch & bound nodes explored
}

// SolveOptions tunes the branch & bound search.
type SolveOptions struct {
	// MaxNodes caps the number of explored nodes (0 = default 100000).
	MaxNodes int
	// InitialBound primes the incumbent objective; nodes whose LP bound
	// is not better are pruned. Use +Inf (or 0 value via NaN check) for none.
	InitialBound float64
	// Deadline, when non-zero, stops the search once exceeded; the best
	// incumbent found so far is returned with Status == NodeLimit.
	Deadline time.Time
}

// Solve runs depth-first branch & bound with LP relaxations.
func (m *Model) Solve(opt SolveOptions) (*Solution, error) {
	maxNodes := opt.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 100000
	}
	incumbent := math.Inf(1)
	if opt.InitialBound != 0 && !math.IsNaN(opt.InitialBound) {
		incumbent = opt.InitialBound
	}

	sol := &Solution{Status: Infeasible}
	// fixed[j]: -1 unfixed, 0 or 1 fixed (binaries only).
	fixed := make([]int8, m.NumVars())
	for i := range fixed {
		fixed[i] = -1
	}

	var hitLimit bool
	var unbounded bool

	var rec func()
	rec = func() {
		if sol.Nodes >= maxNodes {
			hitLimit = true
			return
		}
		if !opt.Deadline.IsZero() && sol.Nodes%4 == 0 && time.Now().After(opt.Deadline) {
			hitLimit = true
			return
		}
		sol.Nodes++
		lp := m.buildLP(fixed)
		lp.Deadline = opt.Deadline
		// Objective constant contributed by fixed binaries: the LP's
		// objective omits them, so every bound/incumbent comparison must
		// add it back.
		fixedConst := 0.0
		for j, f := range fixed {
			if m.kinds[j] == Binary && f > 0 {
				fixedConst += m.costs[j]
			}
		}
		if lp.NumVars == 0 {
			// Every variable fixed: evaluate the assignment directly.
			obj, feasible := m.evalFixed(fixed)
			if feasible && obj < incumbent-1e-7 {
				incumbent = obj
				sol.Found = true
				sol.Objective = obj
				sol.X = m.expand(nil, fixed)
			}
			return
		}
		x, obj, st, err := SolveLP(lp)
		if err != nil {
			// Structural errors cannot occur for rows built here.
			panic("mip: internal LP build error: " + err.Error())
		}
		obj += fixedConst
		switch st {
		case LPInfeasible:
			return
		case LPUnbounded:
			unbounded = true
			return
		case LPIterLimit:
			hitLimit = true
			return
		}
		if obj >= incumbent-1e-7 {
			return // bound: cannot improve
		}
		branch := m.pickBranch(x, fixed)
		if branch < 0 {
			// Integral: new incumbent.
			incumbent = obj
			sol.Found = true
			sol.Objective = obj
			sol.X = m.expand(x, fixed)
			return
		}
		// Explore the side suggested by the fractional value first.
		first, second := int8(0), int8(1)
		if x[m.compactIndex(branch, fixed)] > 0.5 {
			first, second = 1, 0
		}
		for _, side := range []int8{first, second} {
			if hitLimit || unbounded {
				return
			}
			fixed[branch] = side
			rec()
			fixed[branch] = -1
		}
	}
	rec()

	switch {
	case unbounded:
		sol.Status = Unbounded
	case hitLimit:
		sol.Status = NodeLimit
	case sol.Found:
		sol.Status = Optimal
	default:
		sol.Status = Infeasible
	}
	return sol, nil
}

// evalFixed evaluates objective and feasibility of a fully fixed assignment.
func (m *Model) evalFixed(fixed []int8) (obj float64, feasible bool) {
	for j, c := range m.costs {
		obj += c * float64(fixed[j])
	}
	for r, row := range m.rows {
		lhs := 0.0
		for k, j := range row.idx {
			lhs += row.val[k] * float64(fixed[j])
		}
		switch m.senses[r] {
		case LE:
			if lhs > m.rhs[r]+1e-9 {
				return 0, false
			}
		case GE:
			if lhs < m.rhs[r]-1e-9 {
				return 0, false
			}
		case EQ:
			if math.Abs(lhs-m.rhs[r]) > 1e-9 {
				return 0, false
			}
		}
	}
	return obj, true
}

// buildLP materializes the LP relaxation under the current fixings:
// fixed binaries are substituted out, remaining binaries get 0 <= x <= 1.
func (m *Model) buildLP(fixed []int8) *LP {
	// Map model variable -> compact LP column.
	col := make([]int, m.NumVars())
	n := 0
	for j := range col {
		if m.kinds[j] == Binary && fixed[j] >= 0 {
			col[j] = -1
		} else {
			col[j] = n
			n++
		}
	}
	lp := &LP{NumVars: n, Cost: make([]float64, n)}
	for j, c := range m.costs {
		if col[j] >= 0 {
			lp.Cost[col[j]] = c
		}
	}
	for r, row := range m.rows {
		dense := make([]float64, n)
		rhs := m.rhs[r]
		for k, j := range row.idx {
			if col[j] >= 0 {
				dense[col[j]] += row.val[k]
			} else {
				rhs -= row.val[k] * float64(fixed[j])
			}
		}
		lp.Rows = append(lp.Rows, dense)
		lp.Senses = append(lp.Senses, m.senses[r])
		lp.RHS = append(lp.RHS, rhs)
	}
	// Binary upper bounds for unfixed binaries.
	for j, k := range m.kinds {
		if k == Binary && col[j] >= 0 {
			dense := make([]float64, n)
			dense[col[j]] = 1
			lp.Rows = append(lp.Rows, dense)
			lp.Senses = append(lp.Senses, LE)
			lp.RHS = append(lp.RHS, 1)
		}
	}
	return lp
}

// compactIndex maps a model variable to its column in the LP built under the
// given fixings. The variable must be unfixed.
func (m *Model) compactIndex(j int, fixed []int8) int {
	n := 0
	for i := 0; i < j; i++ {
		if !(m.kinds[i] == Binary && fixed[i] >= 0) {
			n++
		}
	}
	return n
}

// pickBranch returns the unfixed binary with the most fractional LP value,
// or -1 if all binaries are integral.
func (m *Model) pickBranch(x []float64, fixed []int8) int {
	best := -1
	bestFrac := 1e-6
	n := 0
	for j := range m.kinds {
		if m.kinds[j] == Binary && fixed[j] >= 0 {
			continue
		}
		if m.kinds[j] == Binary {
			v := x[n]
			frac := math.Min(v, 1-v)
			if frac > bestFrac {
				bestFrac = frac
				best = j
			}
		}
		n++
	}
	return best
}

// expand reconstitutes a full-length solution vector from a compact LP
// solution plus the fixings, rounding binaries.
func (m *Model) expand(x []float64, fixed []int8) []float64 {
	out := make([]float64, m.NumVars())
	n := 0
	for j := range out {
		if m.kinds[j] == Binary && fixed[j] >= 0 {
			out[j] = float64(fixed[j])
			continue
		}
		v := x[n]
		n++
		if m.kinds[j] == Binary {
			v = math.Round(v)
		}
		out[j] = v
	}
	return out
}

// String summarizes the model for diagnostics.
func (m *Model) String() string {
	nb := 0
	for _, k := range m.kinds {
		if k == Binary {
			nb++
		}
	}
	return fmt.Sprintf("mip.Model{vars: %d (%d binary), constraints: %d}", m.NumVars(), nb, len(m.rows))
}

// Names returns variable names sorted by index; used in tests/diagnostics.
func (m *Model) Names() []string {
	out := append([]string(nil), m.names...)
	sort.SliceStable(out, func(i, j int) bool { return false }) // keep order; defensive copy only
	return out
}
