// Package trace generates and loads trip-request workloads. The paper's
// evaluation replays 432,327 real Shanghai taxi trips from May 29, 2009;
// that dataset is proprietary, so this package provides a synthetic
// generator reproducing the workload properties the matching algorithms are
// sensitive to — request rate over the day (two rush-hour peaks), spatial
// clustering of pickups/dropoffs (hotspots such as airports and the CBD,
// which drive kinetic-tree blow-up and hotspot-clustering benefit), and the
// trip length distribution — together with a CSV loader that accepts the
// real data where available. The substitution is documented in DESIGN.md §5.
package trace

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"

	"repro/internal/roadnet"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ShanghaiTrips is the size of the paper's one-day trip dataset.
const ShanghaiTrips = 432327

// GenOptions configures Generate.
type GenOptions struct {
	// Trips is the number of requests to generate over the horizon.
	Trips int
	// HorizonSeconds is the span of request times (default 86400, one day).
	HorizonSeconds float64
	// Hotspots is the number of high-demand clusters (default 8).
	Hotspots int
	// HotspotSigma is the spatial spread of a cluster in meters
	// (default 800).
	HotspotSigma float64
	// HotspotFrac is the fraction of trip endpoints drawn from clusters
	// rather than uniformly (default 0.6).
	HotspotFrac float64
	// MinTripMeters rejects trips shorter than this Euclidean length
	// (default 1000), mimicking minimum taxi trips.
	MinTripMeters float64
	Seed          int64
}

func (o GenOptions) withDefaults() GenOptions {
	if o.HorizonSeconds == 0 {
		o.HorizonSeconds = 86400
	}
	if o.Hotspots == 0 {
		o.Hotspots = 8
	}
	if o.HotspotSigma == 0 {
		o.HotspotSigma = 800
	}
	if o.HotspotFrac == 0 {
		o.HotspotFrac = 0.6
	}
	if o.MinTripMeters == 0 {
		o.MinTripMeters = 1000
	}
	return o
}

// rateAt returns the relative request intensity at time-of-day t (seconds):
// the repo-wide demand curve, shared with the streaming generator so that
// replayed and streamed demand stay the same shape.
func rateAt(t, horizon float64) float64 {
	return workload.DayCurve(t, horizon)
}

// Generate produces a request stream on g, sorted by time. Endpoints are
// drawn from a mixture of uniform traffic and Gaussian hotspot clusters and
// snapped to the nearest vertex.
func Generate(g *roadnet.Graph, opt GenOptions) ([]sim.Request, error) {
	opt = opt.withDefaults()
	if opt.Trips <= 0 {
		return nil, fmt.Errorf("trace: Trips must be positive, got %d", opt.Trips)
	}
	if g.N() < 2 {
		return nil, fmt.Errorf("trace: graph too small (%d vertices)", g.N())
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	locator := roadnet.NewVertexLocator(g, 8)
	minX, minY, maxX, maxY := g.Bounds()

	type hotspot struct{ x, y float64 }
	spots := make([]hotspot, opt.Hotspots)
	for i := range spots {
		spots[i] = hotspot{
			x: minX + rng.Float64()*(maxX-minX),
			y: minY + rng.Float64()*(maxY-minY),
		}
	}
	samplePoint := func() (float64, float64) {
		if rng.Float64() < opt.HotspotFrac && len(spots) > 0 {
			s := spots[rng.Intn(len(spots))]
			return s.x + rng.NormFloat64()*opt.HotspotSigma,
				s.y + rng.NormFloat64()*opt.HotspotSigma
		}
		return minX + rng.Float64()*(maxX-minX), minY + rng.Float64()*(maxY-minY)
	}

	// Sample request times by rejection against the day curve.
	maxRate := 0.0
	for i := 0; i < 200; i++ {
		t := opt.HorizonSeconds * float64(i) / 200
		maxRate = math.Max(maxRate, rateAt(t, opt.HorizonSeconds))
	}
	times := make([]float64, 0, opt.Trips)
	for len(times) < opt.Trips {
		t := rng.Float64() * opt.HorizonSeconds
		if rng.Float64()*maxRate <= rateAt(t, opt.HorizonSeconds) {
			times = append(times, t)
		}
	}
	sort.Float64s(times)

	reqs := make([]sim.Request, 0, opt.Trips)
	for i := 0; i < opt.Trips; i++ {
		var s, e roadnet.VertexID
		for tries := 0; ; tries++ {
			sx, sy := samplePoint()
			ex, ey := samplePoint()
			s = locator.Nearest(sx, sy)
			e = locator.Nearest(ex, ey)
			if s != e && g.EuclideanDist(s, e) >= opt.MinTripMeters {
				break
			}
			if tries > 100 {
				return nil, fmt.Errorf("trace: cannot sample trips >= %.0fm on this graph", opt.MinTripMeters)
			}
		}
		reqs = append(reqs, sim.Request{
			ID:      int64(i),
			Time:    times[i],
			Pickup:  s,
			Dropoff: e,
		})
	}
	return reqs, nil
}

// WriteCSV writes requests as "id,time,pickup,dropoff" rows with a header.
func WriteCSV(w io.Writer, reqs []sim.Request) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	if err := cw.Write([]string{"id", "time", "pickup", "dropoff"}); err != nil {
		return err
	}
	for i := range reqs {
		r := &reqs[i]
		rec := []string{
			strconv.FormatInt(r.ID, 10),
			strconv.FormatFloat(r.Time, 'f', 3, 64),
			strconv.FormatInt(int64(r.Pickup), 10),
			strconv.FormatInt(int64(r.Dropoff), 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCSV loads requests written by WriteCSV (or hand-prepared data in the
// same format) and returns them sorted by time.
func ReadCSV(r io.Reader, g *roadnet.Graph) ([]sim.Request, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if header[0] != "id" {
		return nil, fmt.Errorf("trace: unexpected header %v", header)
	}
	var reqs []sim.Request
	seen := make(map[int64]int)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		id, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad id %q", line, rec[0])
		}
		t, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad time %q", line, rec[1])
		}
		pu, err := strconv.ParseInt(rec[2], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad pickup %q", line, rec[2])
		}
		do, err := strconv.ParseInt(rec[3], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad dropoff %q", line, rec[3])
		}
		if pu < 0 || int(pu) >= g.N() || do < 0 || int(do) >= g.N() {
			return nil, fmt.Errorf("trace: line %d: vertex out of range", line)
		}
		// IDs are load-bearing for ordering: replay and the ingress gateway
		// both break timestamp ties by ID, and a duplicate would make the
		// multi-producer order nondeterministic (the gateway falls through
		// to its scheduling-dependent admission tick). Reject rather than
		// silently lose the bit-identical replay guarantee.
		if prev, ok := seen[id]; ok {
			return nil, fmt.Errorf("trace: line %d: duplicate id %d (first on line %d)", line, id, prev)
		}
		seen[id] = line
		reqs = append(reqs, sim.Request{ID: id, Time: t, Pickup: roadnet.VertexID(pu), Dropoff: roadnet.VertexID(do)})
	}
	// (Time, ID) rather than stable-by-Time: real traces have coarse
	// (second-granularity) timestamps, so ties are routine, and breaking
	// them by ID makes the replay order independent of CSV row order and
	// identical to the ingress gateway's stamped release order — which is
	// what keeps gateway runs bit-identical to direct replay.
	sort.Slice(reqs, func(i, j int) bool {
		if reqs[i].Time != reqs[j].Time {
			return reqs[i].Time < reqs[j].Time
		}
		return reqs[i].ID < reqs[j].ID
	})
	return reqs, nil
}
