package trace

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"

	"repro/internal/roadnet"
	"repro/internal/sim"
)

func testGraph(t testing.TB) *roadnet.Graph {
	t.Helper()
	g, err := roadnet.Grid(roadnet.GridOptions{
		Rows: 15, Cols: 15, Spacing: 400, Jitter: 0.2, WeightVar: 0.1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGenerateBasicProperties(t *testing.T) {
	g := testGraph(t)
	reqs, err := Generate(g, GenOptions{Trips: 1000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 1000 {
		t.Fatalf("got %d requests", len(reqs))
	}
	if !sort.SliceIsSorted(reqs, func(i, j int) bool { return reqs[i].Time < reqs[j].Time }) {
		t.Fatal("requests not sorted by time")
	}
	for i, r := range reqs {
		if r.Pickup == r.Dropoff {
			t.Fatalf("request %d: pickup == dropoff", i)
		}
		if r.Time < 0 || r.Time > 86400 {
			t.Fatalf("request %d: time %f outside horizon", i, r.Time)
		}
		if g.EuclideanDist(r.Pickup, r.Dropoff) < 1000 {
			t.Fatalf("request %d: trip shorter than MinTripMeters", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g := testGraph(t)
	a, err := Generate(g, GenOptions{Trips: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(g, GenOptions{Trips: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs between identical seeds", i)
		}
	}
	c, err := Generate(g, GenOptions{Trips: 200, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i].Pickup == c[i].Pickup && a[i].Dropoff == c[i].Dropoff {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestGenerateRushHourShape(t *testing.T) {
	g := testGraph(t)
	reqs, err := Generate(g, GenOptions{Trips: 5000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Bucket per hour; rush hours (8-9, 17-19) must beat the 2-4 AM trough.
	var byHour [24]int
	for _, r := range reqs {
		byHour[int(r.Time/3600)%24]++
	}
	trough := byHour[2] + byHour[3]
	morning := byHour[8] + byHour[9]
	evening := byHour[17] + byHour[18]
	if morning <= 2*trough || evening <= 2*trough {
		t.Fatalf("no rush-hour shape: trough=%d morning=%d evening=%d", trough, morning, evening)
	}
}

func TestGenerateHotspotClustering(t *testing.T) {
	g := testGraph(t)
	clustered, err := Generate(g, GenOptions{Trips: 2000, Seed: 6, HotspotFrac: 0.9, Hotspots: 3, HotspotSigma: 300})
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := Generate(g, GenOptions{Trips: 2000, Seed: 6, HotspotFrac: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	// Clustered workloads reuse far fewer distinct pickup vertices.
	distinct := func(reqs []sim.Request) int {
		m := map[roadnet.VertexID]bool{}
		for _, r := range reqs {
			m[r.Pickup] = true
		}
		return len(m)
	}
	dc, du := distinct(clustered), distinct(uniform)
	if float64(dc) > 0.8*float64(du) {
		t.Fatalf("clustering ineffective: %d distinct clustered vs %d uniform", dc, du)
	}
}

func TestGenerateValidation(t *testing.T) {
	g := testGraph(t)
	if _, err := Generate(g, GenOptions{Trips: 0}); err == nil {
		t.Fatal("expected error for zero trips")
	}
	small, err := roadnet.Grid(roadnet.GridOptions{Rows: 2, Cols: 2, Spacing: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 10 m blocks cannot yield 1,000 m trips.
	if _, err := Generate(small, GenOptions{Trips: 10}); err == nil {
		t.Fatal("expected error for unsatisfiable minimum trip length")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	g := testGraph(t)
	reqs, err := Generate(g, GenOptions{Trips: 150, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("round trip length %d vs %d", len(got), len(reqs))
	}
	for i := range got {
		if got[i].ID != reqs[i].ID || got[i].Pickup != reqs[i].Pickup || got[i].Dropoff != reqs[i].Dropoff {
			t.Fatalf("request %d differs after round trip", i)
		}
		if math.Abs(got[i].Time-reqs[i].Time) > 0.01 {
			t.Fatalf("request %d time drifted: %f vs %f", i, got[i].Time, reqs[i].Time)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	g := testGraph(t)
	cases := []string{
		"",
		"bogus,header,x,y\n",
		"id,time,pickup,dropoff\nnot-a-number,0,0,1\n",
		"id,time,pickup,dropoff\n1,xyz,0,1\n",
		"id,time,pickup,dropoff\n1,0,999999,1\n",
		"id,time,pickup,dropoff\n1,0,0\n",
		// Duplicate id: IDs break timestamp ties for replay and gateway
		// ordering, so a duplicate would make the order nondeterministic.
		"id,time,pickup,dropoff\n1,0,0,1\n1,5,0,1\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c), g); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// TestReadCSVSortsTiesByID: coarse real-trace timestamps make ties routine;
// the loader must order them by ID regardless of row order, matching the
// ingress gateway's stamped release order.
func TestReadCSVSortsTiesByID(t *testing.T) {
	g := testGraph(t)
	in := "id,time,pickup,dropoff\n7,100,0,1\n3,100,1,2\n9,50,2,3\n"
	got, err := ReadCSV(strings.NewReader(in), g)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{9, 3, 7}
	for i, id := range want {
		if got[i].ID != id {
			t.Fatalf("order %v, want %v", []int64{got[0].ID, got[1].ID, got[2].ID}, want)
		}
	}
}
